// Lagmachine: watch a denial-of-service construct take a game server down.
//
// This example runs the Lag workload's logic-gate construct array through
// the benchmark harness on two deployment environments at once — both
// deployments are one spec list that core.RunParallel drains concurrently —
// and prints the tick-by-tick alternation between near-idle and multi-second
// ticks: the pattern that maximizes the Instability Ratio and, on a starved
// cloud node, starves client connections until the server crashes.
//
//	go run ./examples/lagmachine
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	profiles := []env.Profile{
		env.DAS5TwoCore, // survives with extreme but stable alternation
		env.AWSLarge,    // burstable credits run out; clients time out; crash
	}
	specs := make([]core.RunSpec, len(profiles))
	for i, p := range profiles {
		specs[i] = core.RunSpec{
			Flavor:   server.Vanilla,
			Workload: workload.Lag.DefaultSpec(),
			Env:      p,
			Duration: 10 * time.Second,
			Seed:     3,
		}
	}

	// One scheduler, both deployments; results come back in spec order and
	// a crashing run is a result, not a dead process.
	results := core.RunParallel(specs, 0)

	fmt.Println("The same lag machine, two deployments:")
	fmt.Println()
	for i, res := range results {
		fmt.Printf("--- %s ---\n", profiles[i].Name)
		for t, pt := range res.Series {
			if t >= 10 {
				break
			}
			marker := ""
			if pt.DurMS > float64(server.TickBudget)/float64(time.Millisecond) {
				marker = " OVERLOADED"
			}
			fmt.Printf("  tick %3d: %8.1f ms%s\n", t+1, pt.DurMS, marker)
		}
		if res.Crashed {
			fmt.Printf("  SERVER CRASHED: %s\n\n", res.CrashReason)
			continue
		}
		fmt.Printf("  survived; ISR=%.3f  trace: %s\n\n",
			res.ISR, report.Sparkline(res.TickMS, 48))
	}
}
