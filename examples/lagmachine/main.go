// Lagmachine: watch a denial-of-service construct take a game server down.
//
// This example drives the MLG engine directly (no benchmark harness): it
// builds the Lag workload's logic-gate construct array, connects one player,
// and prints the tick-by-tick alternation between near-idle and multi-second
// ticks — the pattern that maximizes the Instability Ratio and, on a starved
// cloud node, starves client connections until the server crashes.
//
//	go run ./examples/lagmachine
package main

import (
	"fmt"
	"time"

	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/server"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	run := func(profile env.Profile) {
		fmt.Printf("--- %s ---\n", profile.Name)
		w := workload.NewWorld(workload.Lag, 1)
		clock := env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
		machine := env.NewMachine(profile, 3)
		cfg := server.DefaultConfig(server.Vanilla)
		cfg.ClientTimeout = profile.ConnTimeout
		s := server.New(w, cfg, machine, clock)
		if err := workload.Install(s, workload.Lag.DefaultSpec()); err != nil {
			panic(err)
		}

		// Let the construct's start-up cascade settle, then connect a player
		// (crash semantics require connected clients).
		for i := 0; i < 60; i++ {
			s.Tick()
		}
		s.ResetStats()
		s.Connect("victim")

		for i := 0; i < 40; i++ {
			rec := s.Tick()
			marker := ""
			if rec.Dur > server.TickBudget {
				marker = " OVERLOADED"
			}
			if i < 10 || rec.Crashed {
				fmt.Printf("  tick %3d: %8.1f ms%s\n",
					rec.Tick, float64(rec.Dur)/float64(time.Millisecond), marker)
			}
			if rec.Crashed {
				_, reason := s.Crashed()
				fmt.Printf("  SERVER CRASHED: %s\n\n", reason)
				return
			}
		}
		trace := s.TickDurations()
		// Ne derives from the elapsed wall time (overloaded ticks stretch it).
		var elapsed time.Duration
		for _, d := range trace {
			if d < server.TickBudget {
				d = server.TickBudget
			}
			elapsed += d
		}
		isr := metrics.ISRTrace(trace, elapsed)
		fmt.Printf("  survived; ISR=%.3f  trace: %s\n\n",
			isr, report.Sparkline(metrics.DurationsToMS(trace), 48))
	}

	fmt.Println("The same lag machine, two deployments:")
	fmt.Println()
	run(env.DAS5TwoCore) // survives with extreme but stable alternation
	run(env.AWSLarge)    // burstable credits run out; clients time out; crash
}
