// Cloudcompare: should you host your MLG on AWS, Azure, or your own
// hardware? This example reproduces the paper's actionable insight I3
// ("players should choose their cloud environment depending on their MLG,
// and should consider self-hosting") by running every flavor on every
// deployment environment under the player-based workload and ranking them.
//
//	go run ./examples/cloudcompare
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/server"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	envs := []env.Profile{env.DAS5TwoCore, env.AzureD2, env.AWSLarge}
	const iterations = 5

	fmt.Println("Players workload (25 bots), 5 iterations per combination")
	fmt.Println()

	type rowT struct {
		flavor, env string
		isr         metrics.Summary
		tick        metrics.Summary
	}
	// The whole flavor x environment x iteration grid is one spec list that
	// a single scheduler drains across GOMAXPROCS workers; runs are
	// hermetic, so the ranking is identical to the old serial loop, just
	// many times sooner.
	var specs []core.RunSpec
	for _, f := range server.Flavors() {
		for _, p := range envs {
			for it := 0; it < iterations; it++ {
				specs = append(specs, core.RunSpec{
					Flavor:    f,
					Workload:  workload.Players.DefaultSpec(),
					Env:       p,
					Duration:  30 * time.Second,
					Iteration: it,
					Seed:      7,
				})
			}
		}
	}
	results := core.RunParallel(specs, 0)

	var rows []rowT
	for i := 0; i < len(results); i += iterations {
		cell := results[i : i+iterations]
		rows = append(rows, rowT{
			flavor: cell[0].Flavor, env: cell[0].Environment,
			isr:  metrics.Summarize(core.ISRs(cell)),
			tick: metrics.Summarize(core.MeanTicks(cell)),
		})
	}

	var table [][]string
	for _, r := range rows {
		table = append(table, []string{r.flavor, r.env,
			report.F(r.isr.Median), report.F(r.isr.IQR),
			report.F(r.tick.Median), report.F(r.tick.IQR)})
	}
	fmt.Println(report.Table(
		[]string{"MLG", "environment", "ISR median", "ISR IQR", "tick ms median", "tick IQR"}, table))

	// Per-flavor recommendation: lowest median ISR wins.
	fmt.Println("recommended environment per MLG (lowest median ISR):")
	for _, f := range server.Flavors() {
		best := ""
		bestISR := 2.0
		for _, r := range rows {
			if r.flavor == f.Name && r.isr.Median < bestISR {
				best, bestISR = r.env, r.isr.Median
			}
		}
		fmt.Printf("  %-10s -> %s (ISR %.4f)\n", f.Name, best, bestISR)
	}
	fmt.Println("\nnote how self-hosting wins across the board — the paper's insight I3.")
}
