// Liveserver: the full real-network stack in one process — an MLG server
// listening on TCP, a Yardstick-style bot swarm connecting to it over real
// sockets, chat-probe response times measured end to end, and the Table 1
// control plane (controller + worker) orchestrating the run.
//
//	go run ./examples/liveserver
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/bot"
	"repro/internal/control"
	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/report"
)

// mlgWorker adapts a live server to the control-plane Worker interface.
type mlgWorker struct {
	s  *server.Server
	ln net.Listener
}

func (w *mlgWorker) SetServer(name string) error  { log.Printf("worker: server = %s", name); return nil }
func (w *mlgWorker) SetJMX(string) error          { return nil }
func (w *mlgWorker) SetIteration(it string) error { log.Printf("worker: iteration %s", it); return nil }
func (w *mlgWorker) Initialize() error            { go w.s.Serve(w.ln); go w.s.Run(); return nil }
func (w *mlgWorker) LogStart() error              { return nil }
func (w *mlgWorker) LogStop() error               { return nil }
func (w *mlgWorker) StopServer() error            { w.s.Stop(); return nil }
func (w *mlgWorker) Connect() error               { return nil }
func (w *mlgWorker) Convert() error               { return nil }
func (w *mlgWorker) Exit()                        {}

// swarmWorker runs the player emulation side.
type swarmWorker struct {
	addr    string
	clients []*bot.Client
}

func (w *swarmWorker) SetServer(string) error    { return nil }
func (w *swarmWorker) SetJMX(string) error       { return nil }
func (w *swarmWorker) SetIteration(string) error { return nil }
func (w *swarmWorker) Initialize() error         { return nil }
func (w *swarmWorker) LogStart() error           { return nil }
func (w *swarmWorker) LogStop() error            { return nil }
func (w *swarmWorker) StopServer() error         { return nil }
func (w *swarmWorker) Convert() error            { return nil }
func (w *swarmWorker) Exit()                     {}
func (w *swarmWorker) Connect() error {
	for i := 0; i < 5; i++ {
		c, err := bot.Connect(w.addr, bot.Config{
			Name:     fmt.Sprintf("bot-%02d", i),
			Behavior: bot.RandomWalk,
			AreaSide: 32, BaseY: 30,
			ProbeEvery: 250 * time.Millisecond,
			Seed:       int64(i) * 7919,
		})
		if err != nil {
			return err
		}
		w.clients = append(w.clients, c)
	}
	return nil
}

func main() {
	// The system under test: a real TCP server in wall-clock mode.
	gameLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	w := world.New(world.NewNoiseGenerator(world.PaperControlSeed))
	srv := server.New(w, server.DefaultConfig(server.Vanilla), nil, env.RealClock{})
	mlg := &mlgWorker{s: srv, ln: gameLn}
	swarm := &swarmWorker{addr: gameLn.Addr().String()}

	// The control plane: a controller plus two workers, exactly the Table 1
	// message flow.
	ctrlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctrl := control.NewController()
	go ctrl.Serve(ctrlLn)
	if _, err := control.NewClient(ctrlLn.Addr().String(), mlg); err != nil {
		log.Fatal(err)
	}
	if _, err := control.NewClient(ctrlLn.Addr().String(), swarm); err != nil {
		log.Fatal(err)
	}
	if err := ctrl.WaitForWorkers(2, 5*time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("running one 8-second iteration over the control plane...")
	if err := ctrl.RunIteration(0, 1, 0, "Minecraft", 8*time.Second); err != nil {
		log.Fatal(err)
	}

	var rtts []float64
	for _, c := range swarm.clients {
		for _, p := range c.Probes() {
			rtts = append(rtts, float64(p.RTT)/float64(time.Millisecond))
		}
		c.Close()
	}
	s := metrics.Summarize(rtts)
	fmt.Printf("end-to-end response time over TCP, %d probes [ms]:\n", s.N)
	fmt.Println(report.BoxRow("loopback swarm", s, s.P95*1.3+1, 60))
	fmt.Printf("median=%.2f p95=%.2f max=%.2f\n", s.Median, s.P95, s.Max)
}
