// Quickstart: run one Meterstick benchmark iteration and read its results.
//
// This is the smallest end-to-end use of the library: pick a system under
// test (the Vanilla MLG flavor), a workload (the Farm world of resource-farm
// constructs), a deployment environment (an AWS t3.large model), run for 60
// virtual seconds, and inspect tick times, the Instability Ratio and the
// chat-probe response times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/workload"
)

func main() {
	spec := core.RunSpec{
		Flavor:   server.Vanilla,
		Workload: workload.Farm.DefaultSpec(),
		Env:      env.AWSLarge,
		Duration: 60 * time.Second,
		Seed:     42,
	}

	fmt.Printf("benchmarking %s under the %s workload on %s...\n",
		spec.Flavor.Name, spec.Workload.Kind, spec.Env.Name)
	res := core.Run(spec)

	fmt.Printf("\nInstability Ratio (ISR): %.4f\n", res.ISR)
	t := res.TickSummary
	fmt.Printf("tick time [ms]: mean=%.1f median=%.1f p95=%.1f max=%.1f\n",
		t.Mean, t.Median, t.P95, t.Max)
	fmt.Printf("overloaded ticks (>50 ms): %d of %d\n", res.Overloaded, len(res.TickMS))

	r := res.ResponseSummary
	fmt.Printf("response time [ms]: median=%.1f p95=%.1f max=%.1f over %d probes\n",
		r.Median, r.P95, r.Max, r.N)
	switch {
	case r.P95 > 118:
		fmt.Println("=> the 95th percentile is UNPLAYABLE (>118 ms)")
	case r.P95 > 60:
		fmt.Println("=> the 95th percentile has NOTICEABLE delay (>60 ms)")
	default:
		fmt.Println("=> response times are below the noticeable threshold")
	}

	fmt.Printf("farm throughput: %d items collected, %d entities alive at end\n",
		res.ItemsCollected, res.FinalEntities)
}
