package metrics

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics Meterstick reports for a sample,
// matching the whisker-box presentation used in Figures 7, 10 and 12 of the
// paper: 5th/25th/50th/75th/95th percentiles, arithmetic mean, extremes, and
// the interquartile range.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	P5     float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	IQR    float64
	StdDev float64
}

// Summarize computes a Summary of the sample. An empty sample yields the zero
// Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
		P5:     percentileSorted(sorted, 5),
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		P95:    percentileSorted(sorted, 95),
		StdDev: StdDev(sorted),
	}
	s.IQR = s.P75 - s.P25
	return s
}

// Mean returns the arithmetic mean of the sample, or 0 for an empty sample.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum float64
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// StdDev returns the population standard deviation of the sample. As Table 6
// notes, standard deviation measures dispersion, not stability: it is not
// order dependent, which is exactly the property ISR adds.
func StdDev(sample []float64) float64 {
	if len(sample) < 2 {
		return 0
	}
	m := Mean(sample)
	var ss float64
	for _, v := range sample {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(sample)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the sample using
// linear interpolation between closest ranks. It copies and sorts internally;
// use Summarize when several percentiles of the same sample are needed.
func Percentile(sample []float64, p float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Welford is a streaming mean/variance accumulator. The system-metrics
// collector uses it to aggregate 2 Hz samples without retaining them all.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a new observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations folded in so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running arithmetic mean.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation, or 0 before any Add.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 before any Add.
func (w *Welford) Max() float64 { return w.max }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
