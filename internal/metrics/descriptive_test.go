package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(sample)
	if s.N != 10 {
		t.Errorf("N = %d, want 10", s.N)
	}
	if !almostEqual(s.Mean, 5.5, 1e-9) {
		t.Errorf("Mean = %v, want 5.5", s.Mean)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Errorf("Min/Max = %v/%v, want 1/10", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 5.5, 1e-9) {
		t.Errorf("Median = %v, want 5.5", s.Median)
	}
	if s.IQR <= 0 {
		t.Errorf("IQR = %v, want > 0", s.IQR)
	}
	if !almostEqual(s.P25, 3.25, 1e-9) || !almostEqual(s.P75, 7.75, 1e-9) {
		t.Errorf("P25/P75 = %v/%v, want 3.25/7.75", s.P25, s.P75)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Median != 42 || s.Min != 42 || s.Max != 42 {
		t.Errorf("Summarize(single) = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	sample := []float64{9, 1, 5, 3}
	Summarize(sample)
	want := []float64{9, 1, 5, 3}
	for i := range sample {
		if sample[i] != want[i] {
			t.Fatalf("input mutated: %v", sample)
		}
	}
}

func TestPercentileEdges(t *testing.T) {
	sample := []float64{10, 20, 30, 40}
	if got := Percentile(sample, 0); got != 10 {
		t.Errorf("P0 = %v, want 10", got)
	}
	if got := Percentile(sample, 100); got != 40 {
		t.Errorf("P100 = %v, want 40", got)
	}
	if got := Percentile(sample, 50); !almostEqual(got, 25, 1e-9) {
		t.Errorf("P50 = %v, want 25", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestStdDevKnownValue(t *testing.T) {
	sample := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(sample); !almostEqual(got, 2, 1e-9) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev(single) = %v, want 0", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = float64(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			cur := Percentile(sample, p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		s := Summarize(sample)
		return s.P5 >= s.Min && s.P95 <= s.Max && s.Median >= s.P25 && s.Median <= s.P75
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Welford matches batch mean/stddev.
func TestWelfordMatchesBatchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(1000)
		sample := make([]float64, n)
		var w Welford
		for i := range sample {
			sample[i] = rng.NormFloat64()*10 + 50
			w.Add(sample[i])
		}
		if !almostEqual(w.Mean(), Mean(sample), 1e-6) {
			t.Fatalf("Welford mean %v != batch %v", w.Mean(), Mean(sample))
		}
		if !almostEqual(w.StdDev(), StdDev(sample), 1e-6) {
			t.Fatalf("Welford stddev %v != batch %v", w.StdDev(), StdDev(sample))
		}
		sorted := append([]float64(nil), sample...)
		sort.Float64s(sorted)
		if w.Min() != sorted[0] || w.Max() != sorted[len(sorted)-1] {
			t.Fatalf("Welford min/max mismatch")
		}
	}
}

func TestWelfordZero(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.StdDev() != 0 || w.Variance() != 0 {
		t.Error("zero Welford should report zeros")
	}
	w.Add(3)
	if w.N() != 1 || w.Mean() != 3 || w.Variance() != 0 {
		t.Errorf("after one Add: %+v", w)
	}
}
