package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestAllanVarianceConstantTrace(t *testing.T) {
	trace := []float64{50, 50, 50, 50}
	if got := AllanVariance(trace); got != 0 {
		t.Errorf("Allan variance of constant trace = %v, want 0", got)
	}
	if got := AllanVariance([]float64{1}); got != 0 {
		t.Errorf("Allan variance of single sample = %v, want 0", got)
	}
}

func TestAllanVarianceKnownValue(t *testing.T) {
	// Alternating 0/2: every consecutive difference is ±2, squared = 4.
	// σ²_A = (N-1)·4 / (2(N-1)) = 2.
	trace := []float64{0, 2, 0, 2, 0, 2}
	if got := AllanVariance(trace); !almostEqual(got, 2, 1e-9) {
		t.Errorf("Allan variance = %v, want 2", got)
	}
	if got := AllanDeviation(trace); !almostEqual(got, math.Sqrt2, 1e-9) {
		t.Errorf("Allan deviation = %v, want √2", got)
	}
}

func TestRFC3550JitterConvergesToConstantDelta(t *testing.T) {
	// For a long alternating trace with |Δ| = d everywhere, the smoothed
	// estimator converges to d.
	trace := make([]float64, 2000)
	for i := range trace {
		if i%2 == 0 {
			trace[i] = 50
		} else {
			trace[i] = 150
		}
	}
	if got := RFC3550Jitter(trace); !almostEqual(got, 100, 0.5) {
		t.Errorf("jitter = %v, want ≈100", got)
	}
	if got := RFC3550Jitter([]float64{50}); got != 0 {
		t.Errorf("jitter of single sample = %v, want 0", got)
	}
}

func TestCycleToCycleJitter(t *testing.T) {
	trace := []float64{50, 80, 30, 30}
	got := CycleToCycleJitter(trace)
	want := []float64{30, 50, 0}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("jitter[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := MaxCycleToCycleJitter(trace); got != 50 {
		t.Errorf("max jitter = %v, want 50", got)
	}
	if got := CycleToCycleJitter([]float64{1}); got != nil {
		t.Errorf("jitter of single = %v, want nil", got)
	}
}

// Empirically validate the Table 6 property claims.

func TestTable6OrderDependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trace := make([]float64, 500)
	var dur float64
	for i := range trace {
		trace[i] = 50
		if i%25 == 0 {
			trace[i] = 800
		}
		dur += math.Max(50, trace[i])
	}
	shuffled := append([]float64(nil), trace...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	// Standard deviation is order independent: identical across orderings.
	if a, b := StdDev(trace), StdDev(shuffled); !almostEqual(a, b, 1e-9) {
		t.Errorf("stddev should be order independent: %v vs %v", a, b)
	}

	// Order-dependent metrics (Allan, jitter, ISR) distinguish clustered from
	// spread outliers.
	clustered := FrontLoadedOutlierTrace(500, 20, 16, 50)
	spread := SpreadOutlierTrace(500, 20, 16, 50)
	if a, b := AllanVariance(clustered), AllanVariance(spread); a >= b {
		t.Errorf("Allan variance not order dependent: clustered %v >= spread %v", a, b)
	}
	ne := int(dur / 50)
	if a, b := ISR(clustered, 50, ne), ISR(spread, 50, ne); a >= b {
		t.Errorf("ISR not order dependent: clustered %v >= spread %v", a, b)
	}
}

func TestTable6Normalization(t *testing.T) {
	// Scale a spiky trace by 10×: stddev/Allan/jitter scale with it, ISR does
	// not exceed 1 regardless.
	rng := rand.New(rand.NewSource(3))
	small := make([]float64, 400)
	big := make([]float64, 400)
	var dur float64
	for i := range small {
		v := 50 + rng.Float64()*100
		small[i], big[i] = v, v*10
		dur += math.Max(50, v*10)
	}
	if StdDev(big) <= StdDev(small) {
		t.Error("stddev should scale with trace magnitude")
	}
	if RFC3550Jitter(big) <= RFC3550Jitter(small) {
		t.Error("jitter should scale with trace magnitude")
	}
	if isr := ISR(big, 50, int(dur/50)); isr < 0 || isr > 1 {
		t.Errorf("ISR out of [0,1]: %v", isr)
	}
}

func TestTable6Rows(t *testing.T) {
	rows := Table6()
	if len(rows) != 4 {
		t.Fatalf("Table6 rows = %d, want 4", len(rows))
	}
	byName := map[string]MetricProperties{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["Standard deviation"]; r.OrderDependent || r.IrregularSampling || r.Normalized {
		t.Errorf("stddev row wrong: %+v", r)
	}
	if r := byName["Allan variance"]; !r.OrderDependent || r.IrregularSampling || r.Normalized {
		t.Errorf("Allan row wrong: %+v", r)
	}
	if r := byName["Jitter"]; !r.OrderDependent || !r.IrregularSampling || r.Normalized {
		t.Errorf("jitter row wrong: %+v", r)
	}
	if r := byName["ISR"]; !r.OrderDependent || !r.IrregularSampling || !r.Normalized {
		t.Errorf("ISR row wrong: %+v", r)
	}
}
