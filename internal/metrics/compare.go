package metrics

import "math"

// This file implements the variability metrics ISR is compared against in
// Table 6 of the paper: Allan variance and RFC 3550 smoothed jitter. Standard
// deviation lives in descriptive.go. The properties the table contrasts:
//
//	metric              order-dependent   irregular sampling   normalized
//	standard deviation  no                no                   no
//	Allan variance      yes               no                   no
//	jitter (RFC 3550)   yes               yes                  no
//	ISR                 yes               yes                  yes

// AllanVariance computes the (non-overlapping, two-sample) Allan variance of
// a trace:
//
//	σ²_A = 1/(2(N-1)) Σ (x_{i+1} - x_i)²
//
// Allan variance is order dependent but assumes a constant sampling frequency
// and a continuous domain — properties that do not hold for tick-duration
// traces, which is why the paper introduces ISR instead.
func AllanVariance(trace []float64) float64 {
	if len(trace) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(trace); i++ {
		d := trace[i] - trace[i-1]
		sum += d * d
	}
	return sum / (2 * float64(len(trace)-1))
}

// AllanDeviation is the square root of the Allan variance.
func AllanDeviation(trace []float64) float64 {
	return math.Sqrt(AllanVariance(trace))
}

// RFC3550Jitter computes the smoothed interarrival jitter estimator from
// RFC 3550 §6.4.1, applied to a trace of tick durations:
//
//	J_i = J_{i-1} + (|D_i| - J_{i-1}) / 16
//
// where D_i is the difference between consecutive values. The final smoothed
// estimate is returned. Jitter is order dependent and tolerates irregular
// sampling, but is not normalized: it is an average, defined per packet (here
// per tick), not for an entire sampling duration.
func RFC3550Jitter(trace []float64) float64 {
	if len(trace) < 2 {
		return 0
	}
	var j float64
	for i := 1; i < len(trace); i++ {
		d := math.Abs(trace[i] - trace[i-1])
		j += (d - j) / 16
	}
	return j
}

// CycleToCycleJitter returns the series |t_i - t_{i-1}| of absolute
// differences between consecutive tick durations: the raw cycle-to-cycle
// jitter ISR is built from (§4.1). Reports of this metric traditionally give
// the maximum or a moving average; ISR instead sums and normalizes it.
func CycleToCycleJitter(trace []float64) []float64 {
	if len(trace) < 2 {
		return nil
	}
	out := make([]float64, len(trace)-1)
	for i := 1; i < len(trace); i++ {
		out[i-1] = math.Abs(trace[i] - trace[i-1])
	}
	return out
}

// MaxCycleToCycleJitter returns the largest absolute difference between
// consecutive ticks in the trace, a conventional way of reporting jitter.
func MaxCycleToCycleJitter(trace []float64) float64 {
	var max float64
	for _, d := range CycleToCycleJitter(trace) {
		if d > max {
			max = d
		}
	}
	return max
}

// MetricProperties describes a variability metric's properties as contrasted
// in Table 6.
type MetricProperties struct {
	Name              string
	OrderDependent    bool
	IrregularSampling bool
	Normalized        bool
}

// Table6 returns the metric-property comparison exactly as printed in Table 6
// of the paper. The properties are also validated empirically by the test
// suite (order dependence via trace shuffling, normalization via range
// checks).
func Table6() []MetricProperties {
	return []MetricProperties{
		{Name: "Standard deviation", OrderDependent: false, IrregularSampling: false, Normalized: false},
		{Name: "Allan variance", OrderDependent: true, IrregularSampling: false, Normalized: false},
		{Name: "Jitter", OrderDependent: true, IrregularSampling: true, Normalized: false},
		{Name: "ISR", OrderDependent: true, IrregularSampling: true, Normalized: true},
	}
}
