// Package metrics implements the performance-variability metrics used by the
// Meterstick benchmark: the novel Instability Ratio (ISR) from the paper's
// Equation 1, its closed-form analytic model, and the comparison metrics from
// Table 6 (standard deviation, Allan variance, RFC 3550 jitter), together with
// the descriptive statistics (percentiles, IQR, summaries) used throughout the
// evaluation.
//
// All metrics operate on tick-duration traces expressed in milliseconds as
// float64. Helpers convert from time.Duration slices.
package metrics

import (
	"math"
	"time"
)

// TickBudgetMS is the intended delay between ticks (b in Equation 1) for an
// MLG running at its intended 20 Hz frequency: 50 ms.
const TickBudgetMS = 50.0

// ISR computes the Instability Ratio of a tick-duration trace, exactly as
// defined in Equation 1 of the paper:
//
//	ISR = Σ_{i=1}^{Na} |max(b,t_i) - max(b,t_{i-1})| / (Ne × 2b)
//
// ticks holds the observed tick durations t_i in milliseconds, b is the
// intended tick period in milliseconds, and expected is Ne, the number of
// ticks the trace would contain if the game had never been overloaded
// (duration / b). The sum starts at i=1 so a trace with fewer than two ticks
// has no consecutive pair and an ISR of 0.
//
// The result is in [0, 1]: 0 means a perfectly constant tick period, 1 means
// tick periods alternate between the intended value and extremely large
// values, the maximum-variability pattern.
func ISR(ticks []float64, b float64, expected int) float64 {
	if len(ticks) < 2 || expected <= 0 || b <= 0 {
		return 0
	}
	var sum float64
	prev := math.Max(b, ticks[0])
	for _, t := range ticks[1:] {
		cur := math.Max(b, t)
		sum += math.Abs(cur - prev)
		prev = cur
	}
	isr := sum / (float64(expected) * 2 * b)
	if isr > 1 {
		// The definition bounds ISR by 1; numerical pathologies (e.g. a
		// trace longer than its claimed expected length) are clamped so the
		// metric stays interpretable.
		isr = 1
	}
	return isr
}

// ISRTrace computes ISR for a trace of time.Duration tick durations observed
// over a run of the given wall-clock length, using the standard 50 ms budget.
func ISRTrace(ticks []time.Duration, runLength time.Duration) float64 {
	return ISR(DurationsToMS(ticks), TickBudgetMS, ExpectedTicks(runLength, 50*time.Millisecond))
}

// ExpectedTicks returns Ne: the number of ticks a run of the given length
// would contain at the intended tick period b.
func ExpectedTicks(runLength, b time.Duration) int {
	if b <= 0 {
		return 0
	}
	return int(runLength / b)
}

// DurationsToMS converts a duration slice to float64 milliseconds.
func DurationsToMS(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// ISRModel evaluates the closed-form model from §4.2 of the paper: a trace in
// which one out of every lambda ticks has duration s×b while all others have
// duration exactly b yields
//
//	ISR = (s-1) / (s+lambda-1)
//
// This is the function plotted in Figure 6a. s must be >= 1 and lambda >= 1;
// out-of-domain inputs return 0.
func ISRModel(s, lambda float64) float64 {
	if s < 1 || lambda < 1 {
		return 0
	}
	return (s - 1) / (s + lambda - 1)
}

// SyntheticOutlierTrace builds the §4.2 model trace: total ticks of duration
// b, where every lambda-th tick (1-indexed positions lambda, 2·lambda, ...)
// has duration s×b instead. It is used by the Figure 6 reproduction and by
// tests that validate ISR against the analytic model.
func SyntheticOutlierTrace(total, lambda int, s, b float64) []float64 {
	trace := make([]float64, total)
	for i := range trace {
		if lambda > 0 && (i+1)%lambda == 0 {
			trace[i] = s * b
		} else {
			trace[i] = b
		}
	}
	return trace
}

// FrontLoadedOutlierTrace builds the "Low ISR" trace from Figure 6b: total
// ticks of duration b with `outliers` consecutive ticks of duration s×b
// placed at the very start of the trace. Because the outliers are adjacent,
// only two tick-to-tick transitions differ from zero and ISR stays small even
// though the value distribution is identical to the spread-out trace.
func FrontLoadedOutlierTrace(total, outliers int, s, b float64) []float64 {
	trace := make([]float64, total)
	for i := range trace {
		if i < outliers {
			trace[i] = s * b
		} else {
			trace[i] = b
		}
	}
	return trace
}

// SpreadOutlierTrace builds the "High ISR" trace from Figure 6b: total ticks
// of duration b with `outliers` single ticks of duration s×b spread evenly
// over the trace. Every outlier contributes two large transitions, maximizing
// the cycle-to-cycle jitter sum for the given distribution of values.
func SpreadOutlierTrace(total, outliers int, s, b float64) []float64 {
	trace := make([]float64, total)
	for i := range trace {
		trace[i] = b
	}
	if outliers <= 0 {
		return trace
	}
	step := total / (outliers + 1)
	if step < 1 {
		step = 1
	}
	for k := 1; k <= outliers; k++ {
		idx := k * step
		if idx >= total {
			idx = total - 1
		}
		trace[idx] = s * b
	}
	return trace
}
