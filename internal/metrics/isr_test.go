package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestISRConstantTraceIsZero(t *testing.T) {
	trace := make([]float64, 1200)
	for i := range trace {
		trace[i] = 50
	}
	if got := ISR(trace, 50, 1200); got != 0 {
		t.Fatalf("ISR of constant trace = %v, want 0", got)
	}
}

func TestISRConstantOverloadedTraceIsZero(t *testing.T) {
	// Uniformly slow but stable: ISR must be 0. The paper lists this as an
	// explicit limitation: ISR does not capture "extremely poor but stable
	// performance".
	trace := make([]float64, 600)
	for i := range trace {
		trace[i] = 400
	}
	if got := ISR(trace, 50, 1200); got != 0 {
		t.Fatalf("ISR of constant overloaded trace = %v, want 0", got)
	}
}

func TestISRSubBudgetTicksClampToBudget(t *testing.T) {
	// Ticks faster than b have period b (the game waits for the next
	// scheduled tick start), so alternating 10ms/40ms ticks are NOT unstable.
	trace := make([]float64, 100)
	for i := range trace {
		if i%2 == 0 {
			trace[i] = 10
		} else {
			trace[i] = 40
		}
	}
	if got := ISR(trace, 50, 100); got != 0 {
		t.Fatalf("ISR of sub-budget alternating trace = %v, want 0 (max(b,t) clamps)", got)
	}
}

func TestISRMaximumVariabilityApproachesOne(t *testing.T) {
	// Alternating between b and an extremely large value drives ISR toward 1.
	// With s = 2001 and lambda = 2 the model gives (s-1)/(s+1) ≈ 0.999.
	trace := SyntheticOutlierTrace(2000, 2, 2001, 50)
	ne := 0
	for _, tt := range trace {
		ne += int(tt / 50)
	}
	got := ISR(trace, 50, ne)
	if got < 0.95 || got > 1 {
		t.Fatalf("ISR of alternation trace = %v, want near 1", got)
	}
}

func TestISRMatchesAnalyticModel(t *testing.T) {
	// §4.2: a trace where 1 in lambda ticks has duration s·b gives
	// ISR = (s-1)/(s+lambda-1), where Ne accounts for the longer outlier
	// periods (the trace occupies s·b per outlier).
	cases := []struct {
		s      float64
		lambda int
	}{
		{2, 2}, {2, 10}, {2, 100},
		{10, 5}, {10, 25}, {10, 50},
		{20, 2}, {20, 25}, {20, 100},
	}
	for _, c := range cases {
		// Build a long trace so edge effects vanish.
		cycles := 2000
		total := cycles * c.lambda
		trace := SyntheticOutlierTrace(total, c.lambda, c.s, 50)
		// Expected ticks if never overloaded: total duration / b. Each cycle
		// of lambda ticks has lambda-1 normal ticks and one of s·b.
		duration := float64(cycles) * (float64(c.lambda-1) + c.s) * 50
		ne := int(duration / 50)
		got := ISR(trace, 50, ne)
		want := ISRModel(c.s, float64(c.lambda))
		if !almostEqual(got, want, 0.01*want+1e-9) {
			t.Errorf("ISR(s=%v, lambda=%d) = %v, want %v", c.s, c.lambda, got, want)
		}
	}
}

func TestISRModelPaperExample(t *testing.T) {
	// "a tick exceeding b by a factor 10 (s=10) every 25 ticks (λ=25)
	// results in an ISR value of 0.26" — (10-1)/(10+25-1) = 9/34 ≈ 0.265.
	got := ISRModel(10, 25)
	if !almostEqual(got, 0.2647, 0.001) {
		t.Fatalf("ISRModel(10,25) = %v, want ≈0.265", got)
	}
}

func TestISRFigure6bOrderSensitivity(t *testing.T) {
	// Figure 6b: 1000 ticks, five outliers with scaling factor 20. Identical
	// distributions; front-loaded outliers give ISR ≈ 0.009, evenly spread
	// outliers give ISR ≈ 0.15 — an order of magnitude apart.
	const total, outliers = 1000, 5
	const s, b = 20.0, 50.0
	duration := (float64(total-outliers) + float64(outliers)*s) * b
	ne := int(duration / b)

	low := ISR(FrontLoadedOutlierTrace(total, outliers, s, b), b, ne)
	high := ISR(SpreadOutlierTrace(total, outliers, s, b), b, ne)

	if !almostEqual(low, 0.009, 0.003) {
		t.Errorf("front-loaded ISR = %v, want ≈0.009", low)
	}
	// Each spread outlier contributes two 950 ms transitions:
	// 5×2×950 / (1095×100) ≈ 0.087. (The paper reports 0.15 for its plotted
	// trace, whose outlier spacing differs slightly; the claim that matters —
	// an order of magnitude above the front-loaded trace — holds either way.)
	if !almostEqual(high, 0.087, 0.01) {
		t.Errorf("spread ISR = %v, want ≈0.087", high)
	}
	if high < 9*low {
		t.Errorf("spread ISR (%v) should be an order of magnitude above front-loaded (%v)", high, low)
	}
}

func TestISRDegenerateInputs(t *testing.T) {
	if got := ISR(nil, 50, 100); got != 0 {
		t.Errorf("ISR(nil) = %v, want 0", got)
	}
	if got := ISR([]float64{50}, 50, 100); got != 0 {
		t.Errorf("ISR(single tick) = %v, want 0", got)
	}
	if got := ISR([]float64{50, 100}, 0, 100); got != 0 {
		t.Errorf("ISR with b=0 = %v, want 0", got)
	}
	if got := ISR([]float64{50, 100}, 50, 0); got != 0 {
		t.Errorf("ISR with Ne=0 = %v, want 0", got)
	}
}

func TestISRTraceDurationHelper(t *testing.T) {
	ticks := make([]time.Duration, 1200)
	for i := range ticks {
		ticks[i] = 50 * time.Millisecond
	}
	if got := ISRTrace(ticks, time.Minute); got != 0 {
		t.Fatalf("ISRTrace stable minute = %v, want 0", got)
	}
	// One huge spike mid-trace must produce a positive ISR.
	ticks[600] = 2 * time.Second
	if got := ISRTrace(ticks, time.Minute); got <= 0 {
		t.Fatalf("ISRTrace with spike = %v, want > 0", got)
	}
}

func TestExpectedTicks(t *testing.T) {
	if got := ExpectedTicks(time.Minute, 50*time.Millisecond); got != 1200 {
		t.Fatalf("ExpectedTicks(60s, 50ms) = %d, want 1200", got)
	}
	if got := ExpectedTicks(time.Second, 0); got != 0 {
		t.Fatalf("ExpectedTicks with b=0 = %d, want 0", got)
	}
}

// Property: ISR is always within [0, 1] for arbitrary traces.
func TestISRBoundedProperty(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		if len(raw) < 2 {
			return true
		}
		trace := make([]float64, len(raw))
		var dur float64
		for i, v := range raw {
			trace[i] = float64(v%5000) + 1
			dur += math.Max(50, trace[i])
		}
		ne := int(dur / 50)
		isr := ISR(trace, 50, ne)
		return isr >= 0 && isr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ISR is order dependent — sorting a spiky trace never increases
// its ISR (sorted order minimizes total variation for a fixed multiset).
func TestISRSortedMinimizesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 50 + rng.Intn(500)
		trace := make([]float64, n)
		var dur float64
		for i := range trace {
			trace[i] = 50
			if rng.Float64() < 0.1 {
				trace[i] = 50 * (1 + rng.Float64()*30)
			}
			dur += math.Max(50, trace[i])
		}
		ne := int(dur / 50)
		shuffled := ISR(trace, 50, ne)

		sorted := append([]float64(nil), trace...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		if s := ISR(sorted, 50, ne); s > shuffled+1e-12 {
			t.Fatalf("trial %d: sorted ISR %v > unsorted ISR %v", trial, s, shuffled)
		}
	}
}

// Property: adding an outlier to a constant trace strictly increases ISR.
func TestISROutlierIncreasesProperty(t *testing.T) {
	f := func(pos uint8, scale uint8) bool {
		trace := make([]float64, 300)
		for i := range trace {
			trace[i] = 50
		}
		p := 1 + int(pos)%298
		s := 2 + float64(scale%40)
		trace[p] = 50 * s
		return ISR(trace, 50, 300) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestISRModelProperties(t *testing.T) {
	// Monotone increasing in s, decreasing in lambda.
	if !(ISRModel(20, 10) > ISRModel(10, 10) && ISRModel(10, 10) > ISRModel(2, 10)) {
		t.Error("ISRModel not increasing in s")
	}
	if !(ISRModel(10, 2) > ISRModel(10, 25) && ISRModel(10, 25) > ISRModel(10, 100)) {
		t.Error("ISRModel not decreasing in lambda")
	}
	if got := ISRModel(1, 10); got != 0 {
		t.Errorf("ISRModel(s=1) = %v, want 0 (no outliers)", got)
	}
	if got := ISRModel(0.5, 10); got != 0 {
		t.Errorf("ISRModel out of domain = %v, want 0", got)
	}
	// Limit s -> inf approaches 1 for lambda small.
	if got := ISRModel(1e9, 2); got < 0.999 {
		t.Errorf("ISRModel(s→∞, λ=2) = %v, want →1", got)
	}
}

func TestSyntheticTraceBuilders(t *testing.T) {
	tr := SyntheticOutlierTrace(10, 5, 3, 50)
	wantOutliers := 2
	n := 0
	for _, v := range tr {
		if v == 150 {
			n++
		} else if v != 50 {
			t.Fatalf("unexpected value %v", v)
		}
	}
	if n != wantOutliers {
		t.Fatalf("outliers = %d, want %d", n, wantOutliers)
	}

	fl := FrontLoadedOutlierTrace(10, 3, 4, 50)
	for i, v := range fl {
		want := 50.0
		if i < 3 {
			want = 200
		}
		if v != want {
			t.Fatalf("front-loaded[%d] = %v, want %v", i, v, want)
		}
	}

	sp := SpreadOutlierTrace(100, 5, 20, 50)
	n = 0
	for _, v := range sp {
		if v == 1000 {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("spread outliers = %d, want 5", n)
	}
}
