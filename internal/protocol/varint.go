// Package protocol implements the MLG wire protocol (component 4 of the
// paper's reference architecture, Figure 2): a varint-framed binary packet
// protocol over TCP, in the style of the Minecraft protocol. Clients and the
// player emulator speak it against the game server; the control plane uses
// its own line protocol (package control).
//
// Frame layout: varint payload length, then payload = varint packet ID
// followed by the packet body. Strings are varint-length-prefixed UTF-8;
// floats are IEEE 754 bits big-endian.
package protocol

import (
	"errors"
	"io"
)

// Varint limits.
const maxVarintBytes = 5

// ErrVarintTooLong reports a malformed varint of more than 5 bytes.
var ErrVarintTooLong = errors.New("protocol: varint too long")

// ErrVarintTruncated reports a buffer that ended in the middle of a varint:
// the bytes seen so far are a valid prefix, the encoding just is not all
// there. Distinct from ErrVarintTooLong, which means the input really is
// malformed no matter how much more of it arrives.
var ErrVarintTruncated = errors.New("protocol: truncated varint")

// AppendVarint appends the zigzag-free unsigned LEB128 encoding of v
// (interpreted as uint32, the Minecraft convention) to dst.
func AppendVarint(dst []byte, v int32) []byte {
	u := uint32(v)
	for {
		b := byte(u & 0x7F)
		u >>= 7
		if u != 0 {
			dst = append(dst, b|0x80)
		} else {
			return append(dst, b)
		}
	}
}

// ReadVarint decodes a varint from r.
func ReadVarint(r io.ByteReader) (int32, error) {
	var result uint32
	for i := 0; i < maxVarintBytes; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		result |= uint32(b&0x7F) << (7 * i)
		if b&0x80 == 0 {
			return int32(result), nil
		}
	}
	return 0, ErrVarintTooLong
}

// VarintLen returns the encoded size of v in bytes.
func VarintLen(v int32) int {
	u := uint32(v)
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}
