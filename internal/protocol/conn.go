package protocol

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrameSize bounds a single packet frame; larger frames are rejected as
// malformed (protects against corrupt length prefixes).
const MaxFrameSize = 4 << 20

// Conn frames packets over a byte stream. It is safe for one concurrent
// reader and one concurrent writer. Byte and message counters feed the
// Table 8 network statistics.
type Conn struct {
	rw io.ReadWriteCloser
	br *bufio.Reader

	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte

	statsMu      sync.Mutex
	msgsOut      int64
	bytesOut     int64
	entityMsgs   int64
	entityBytes  int64
	msgsIn       int64
	bytesIn      int64
	lastActivity time.Time
}

// NewConn wraps a stream (usually a *net.TCPConn) in a packet framer.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{
		rw: rw,
		br: bufio.NewReaderSize(rw, 32<<10),
		bw: bufio.NewWriterSize(rw, 32<<10),
	}
}

// Dial connects a packet conn to a TCP address.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("protocol dial: %w", err)
	}
	return NewConn(c), nil
}

// WritePacket frames and sends one packet, returning the frame size in
// bytes. It flushes immediately: game traffic is latency sensitive.
func (c *Conn) WritePacket(p Packet) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()

	c.wbuf = c.wbuf[:0]
	c.wbuf = AppendVarint(c.wbuf, int32(p.ID()))
	c.wbuf = p.MarshalBody(c.wbuf)

	frame := VarintLen(int32(len(c.wbuf))) + len(c.wbuf)
	var hdr [maxVarintBytes]byte
	n := AppendVarint(hdr[:0], int32(len(c.wbuf)))
	if _, err := c.bw.Write(n); err != nil {
		return 0, err
	}
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}

	c.statsMu.Lock()
	c.msgsOut++
	c.bytesOut += int64(frame)
	if EntityRelated(p) {
		c.entityMsgs++
		c.entityBytes += int64(frame)
	}
	c.lastActivity = time.Now()
	c.statsMu.Unlock()
	return frame, nil
}

// ReadPacket reads and decodes the next packet, returning it and the frame
// size in bytes.
func (c *Conn) ReadPacket() (Packet, int, error) {
	length, err := ReadVarint(c.br)
	if err != nil {
		return nil, 0, err
	}
	if length < 1 || length > MaxFrameSize {
		return nil, 0, fmt.Errorf("protocol: bad frame length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return nil, 0, err
	}
	id, body, err := readVarintBytes(payload)
	if err != nil {
		return nil, 0, err
	}
	p, err := New(PacketID(id))
	if err != nil {
		return nil, 0, err
	}
	if err := p.UnmarshalBody(body); err != nil {
		return nil, 0, fmt.Errorf("protocol: decode %#x: %w", id, err)
	}
	frame := VarintLen(length) + int(length)
	c.statsMu.Lock()
	c.msgsIn++
	c.bytesIn += int64(frame)
	c.lastActivity = time.Now()
	c.statsMu.Unlock()
	return p, frame, nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }

// Stats is a snapshot of the connection's traffic counters.
type Stats struct {
	MsgsOut, BytesOut       int64
	EntityMsgs, EntityBytes int64
	MsgsIn, BytesIn         int64
}

// Stats returns a snapshot of the traffic counters.
func (c *Conn) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return Stats{
		MsgsOut: c.msgsOut, BytesOut: c.bytesOut,
		EntityMsgs: c.entityMsgs, EntityBytes: c.entityBytes,
		MsgsIn: c.msgsIn, BytesIn: c.bytesIn,
	}
}
