package protocol

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrameSize bounds a single packet frame; larger frames are rejected as
// malformed (protects against corrupt length prefixes).
const MaxFrameSize = 4 << 20

// maxPooledReadBuf caps the payload buffer a connection keeps between
// reads. Frames up to this size reuse the pooled buffer; larger (legal but
// rare) frames get a transient allocation instead, so one oversized frame
// cannot pin up to MaxFrameSize (4 MiB) per connection for its lifetime —
// at 10k connections that pin would cost 40 GiB.
const maxPooledReadBuf = 64 << 10

// Conn frames packets over a byte stream. It is safe for one concurrent
// reader and one concurrent writer. Byte and message counters feed the
// Table 8 network statistics; they are plain atomics so the hot write path
// pays no stats mutex.
type Conn struct {
	rw   io.ReadWriteCloser
	br   *bufio.Reader
	rbuf []byte // pooled payload buffer, owned by the reader goroutine

	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte
	// batchDepth suspends the flush-per-packet discipline while > 0: writes
	// accumulate in bw and go out on the closing FlushBatch (or when the
	// buffer fills). Guarded by wmu.
	batchDepth int
	// aw, when non-nil, switches the connection into async-writer mode (see
	// StartWriter): writes stage into pending and enqueue at the flush
	// boundary instead of touching the socket. All three guarded by wmu.
	aw           *connWriter
	pending      []byte
	pendingStats outStats

	msgsOut      atomic.Int64
	bytesOut     atomic.Int64
	entityMsgs   atomic.Int64
	entityBytes  atomic.Int64
	msgsIn       atomic.Int64
	bytesIn      atomic.Int64
	lastActivity atomic.Int64 // unix nanoseconds
}

// NewConn wraps a stream (usually a *net.TCPConn) in a packet framer.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{
		rw: rw,
		br: bufio.NewReaderSize(rw, 32<<10),
		bw: bufio.NewWriterSize(rw, 32<<10),
	}
}

// Dial connects a packet conn to a TCP address.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("protocol dial: %w", err)
	}
	return NewConn(c), nil
}

// noteOut records outbound traffic for one packet of the given frame size.
func (c *Conn) noteOut(frame int, entity bool) {
	c.msgsOut.Add(1)
	c.bytesOut.Add(int64(frame))
	if entity {
		c.entityMsgs.Add(1)
		c.entityBytes.Add(int64(frame))
	}
	c.lastActivity.Store(time.Now().UnixNano())
}

// flushLocked flushes unless a batch is open; caller holds wmu.
func (c *Conn) flushLocked() error {
	if c.batchDepth > 0 {
		return nil
	}
	return c.bw.Flush()
}

// WritePacket frames and sends one packet, returning the frame size in
// bytes. Outside a batch it flushes immediately (game traffic is latency
// sensitive); inside a BeginBatch/FlushBatch window the bytes ride the
// batch. In async-writer mode nothing touches the socket: the frame stages
// onto the in-progress batch and, at the flush boundary, enqueues onto the
// bounded writer queue — a full queue returns ErrBacklog, a dead peer the
// writer's sticky error.
func (c *Conn) WritePacket(p Packet) (int, error) {
	c.wmu.Lock()
	c.wbuf = AppendFrame(c.wbuf[:0], p)
	frame := len(c.wbuf)
	if c.aw != nil {
		c.appendAsyncLocked(c.wbuf, EntityRelated(p))
		var err error
		if c.batchDepth == 0 {
			err = c.enqueueLocked()
		}
		c.wmu.Unlock()
		return frame, err
	}
	if _, err := c.bw.Write(c.wbuf); err != nil {
		c.wmu.Unlock()
		return 0, err
	}
	if err := c.flushLocked(); err != nil {
		c.wmu.Unlock()
		return 0, err
	}
	c.wmu.Unlock()
	c.noteOut(frame, EntityRelated(p))
	return frame, nil
}

// WriteFrame sends an already-encoded frame as a raw byte copy — the
// broadcast fast path: the packet was marshalled once (EncodeFrame) and
// fans out to N connections without re-encoding. Flush and async-mode
// discipline match WritePacket.
func (c *Conn) WriteFrame(f Frame) (int, error) {
	c.wmu.Lock()
	if c.aw != nil {
		c.appendAsyncLocked(f.data, f.entity)
		var err error
		if c.batchDepth == 0 {
			err = c.enqueueLocked()
		}
		c.wmu.Unlock()
		return len(f.data), err
	}
	if _, err := c.bw.Write(f.data); err != nil {
		c.wmu.Unlock()
		return 0, err
	}
	if err := c.flushLocked(); err != nil {
		c.wmu.Unlock()
		return 0, err
	}
	c.wmu.Unlock()
	c.noteOut(len(f.data), f.entity)
	return len(f.data), nil
}

// BeginBatch opens a batch window: subsequent writes accumulate in the
// connection's buffer instead of flushing per packet. Batches nest; each
// BeginBatch must be paired with a FlushBatch. The server's dissemination
// phase wraps each player's per-tick sends in one batch, turning a
// flush (syscall) per packet into one per player per tick.
func (c *Conn) BeginBatch() {
	c.wmu.Lock()
	c.batchDepth++
	c.wmu.Unlock()
}

// FlushBatch closes the innermost batch window and, when the last one
// closes, flushes everything accumulated. In async-writer mode the closing
// flush enqueues the batch instead of writing it: ErrBacklog means the
// whole batch was dropped (the peer is not draining), any other error is
// the writer's sticky fault.
func (c *Conn) FlushBatch() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.batchDepth > 0 {
		c.batchDepth--
	}
	if c.batchDepth == 0 {
		if c.aw != nil {
			return c.enqueueLocked()
		}
		return c.bw.Flush()
	}
	return nil
}

// ReadPacket reads and decodes the next packet, returning it and the frame
// size in bytes. The payload is staged in a buffer reused across calls, not
// allocated per packet; decoded packets copy what they keep.
func (c *Conn) ReadPacket() (Packet, int, error) {
	length, err := ReadVarint(c.br)
	if err != nil {
		return nil, 0, err
	}
	if length < 1 || length > MaxFrameSize {
		return nil, 0, fmt.Errorf("protocol: bad frame length %d", length)
	}
	// Stage the payload in the pooled buffer, capped at maxPooledReadBuf:
	// oversized frames use a transient allocation so they never ratchet the
	// per-connection buffer up toward MaxFrameSize for good. Decoded packets
	// copy what they keep, so the transient buffer is garbage immediately.
	var payload []byte
	if int(length) > maxPooledReadBuf {
		payload = make([]byte, length)
	} else {
		if cap(c.rbuf) < int(length) {
			c.rbuf = make([]byte, length)
		}
		payload = c.rbuf[:length]
	}
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return nil, 0, err
	}
	id, body, err := readVarintBytes(payload)
	if err != nil {
		return nil, 0, err
	}
	p, err := New(PacketID(id))
	if err != nil {
		return nil, 0, err
	}
	if err := p.UnmarshalBody(body); err != nil {
		return nil, 0, fmt.Errorf("protocol: decode %#x: %w", id, err)
	}
	frame := VarintLen(length) + int(length)
	c.msgsIn.Add(1)
	c.bytesIn.Add(int64(frame))
	c.lastActivity.Store(time.Now().UnixNano())
	return p, frame, nil
}

// SetReadDeadline bounds the next ReadPacket when the underlying stream
// supports deadlines (net.Conn, net.Pipe); otherwise it is a no-op. The
// server's per-connection read loop uses it as the idle timeout that reaps
// silent peers.
func (c *Conn) SetReadDeadline(t time.Time) error {
	if d, ok := c.rw.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

// Close shuts down the async writer (if running), reclaiming any queued
// batches, and closes the underlying stream — which also unblocks a writer
// goroutine stalled inside a socket write.
func (c *Conn) Close() error {
	c.wmu.Lock()
	aw := c.aw
	c.wmu.Unlock()
	if aw != nil {
		aw.stop()
	}
	err := c.rw.Close()
	if aw != nil {
		<-aw.done
	}
	return err
}

// Stats is a snapshot of the connection's traffic counters.
type Stats struct {
	MsgsOut, BytesOut       int64
	EntityMsgs, EntityBytes int64
	MsgsIn, BytesIn         int64
}

// Stats returns a snapshot of the traffic counters. The counters are
// independent atomics, so a snapshot taken during writes is not a single
// consistent cut; loading the entity counters before the totals (writers
// add totals first, noteOut) keeps the invariant EntityMsgs <= MsgsOut and
// EntityBytes <= BytesOut regardless of interleaving.
func (c *Conn) Stats() Stats {
	entityMsgs, entityBytes := c.entityMsgs.Load(), c.entityBytes.Load()
	return Stats{
		EntityMsgs: entityMsgs, EntityBytes: entityBytes,
		MsgsOut: c.msgsOut.Load(), BytesOut: c.bytesOut.Load(),
		MsgsIn: c.msgsIn.Load(), BytesIn: c.bytesIn.Load(),
	}
}
