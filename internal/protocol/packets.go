package protocol

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PacketID identifies a packet type on the wire.
type PacketID int32

// Packet IDs. One shared namespace for both directions keeps the codec
// simple; direction legality is enforced by the endpoints.
const (
	IDHandshake      PacketID = 0x00 // client → server: protocol hello
	IDLogin          PacketID = 0x01 // client → server: player name
	IDLoginSuccess   PacketID = 0x02 // server → client: assigned player ID
	IDKeepAlive      PacketID = 0x03 // both: liveness probe
	IDChat           PacketID = 0x04 // both: chat message (response-time probe)
	IDPlayerMove     PacketID = 0x05 // client → server: position update
	IDPlayerAction   PacketID = 0x06 // client → server: dig/place
	IDBlockChange    PacketID = 0x07 // server → client: terrain state update
	IDChunkData      PacketID = 0x08 // server → client: bulk terrain
	IDSpawnEntity    PacketID = 0x09 // server → client: entity created
	IDEntityMove     PacketID = 0x0A // server → client: entity position update
	IDDestroyEntity  PacketID = 0x0B // server → client: entity removed
	IDPlayerPosition PacketID = 0x0C // server → client: authoritative position
	IDTimeUpdate     PacketID = 0x0D // server → client: tick number
	IDDisconnect     PacketID = 0x0E // server → client: connection closing
	IDEntityMoveRel  PacketID = 0x0F // server → client: delta-encoded entity move
	IDWorldStream    PacketID = 0x10 // server → client: bulk terrain/light refresh
)

// ProtocolVersion is the protocol revision both sides must agree on.
const ProtocolVersion = 1

// Packet is one protocol message.
type Packet interface {
	// ID returns the packet's wire identifier.
	ID() PacketID
	// MarshalBody appends the packet body to dst.
	MarshalBody(dst []byte) []byte
	// UnmarshalBody parses the packet body.
	UnmarshalBody(src []byte) error
}

// EntityRelated reports whether a packet carries entity state — the
// classification behind Table 8 ("percentage of network messages that are
// related to entities").
func EntityRelated(p Packet) bool {
	switch p.ID() {
	case IDSpawnEntity, IDEntityMove, IDEntityMoveRel, IDDestroyEntity:
		return true
	default:
		return false
	}
}

// --- body encoding helpers ---

func appendString(dst []byte, s string) []byte {
	dst = AppendVarint(dst, int32(len(s)))
	return append(dst, s...)
}

func readString(src []byte) (string, []byte, error) {
	n, rest, err := readVarintBytes(src)
	if err != nil {
		return "", nil, err
	}
	if n < 0 || int(n) > len(rest) {
		return "", nil, fmt.Errorf("protocol: string length %d exceeds buffer %d", n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}

func readVarintBytes(src []byte) (int32, []byte, error) {
	var result uint32
	for i := 0; i < maxVarintBytes; i++ {
		if i >= len(src) {
			// The buffer ran out mid-encoding: a short read, not an overlong
			// varint.
			return 0, nil, ErrVarintTruncated
		}
		b := src[i]
		result |= uint32(b&0x7F) << (7 * i)
		if b&0x80 == 0 {
			return int32(result), src[i+1:], nil
		}
	}
	return 0, nil, ErrVarintTooLong
}

func appendF64(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

func readF64(src []byte) (float64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("protocol: short float64")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(src)), src[8:], nil
}

func appendI64(dst []byte, v int64) []byte { return binary.BigEndian.AppendUint64(dst, uint64(v)) }

func readI64(src []byte) (int64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("protocol: short int64")
	}
	return int64(binary.BigEndian.Uint64(src)), src[8:], nil
}

func appendI32(dst []byte, v int32) []byte { return binary.BigEndian.AppendUint32(dst, uint32(v)) }

func readI32(src []byte) (int32, []byte, error) {
	if len(src) < 4 {
		return 0, nil, fmt.Errorf("protocol: short int32")
	}
	return int32(binary.BigEndian.Uint32(src)), src[4:], nil
}

func readU8(src []byte) (byte, []byte, error) {
	if len(src) < 1 {
		return 0, nil, fmt.Errorf("protocol: short byte")
	}
	return src[0], src[1:], nil
}

// --- packet definitions ---

// Handshake opens a connection.
type Handshake struct {
	Version int32
}

func (*Handshake) ID() PacketID { return IDHandshake }
func (p *Handshake) MarshalBody(dst []byte) []byte {
	return AppendVarint(dst, p.Version)
}
func (p *Handshake) UnmarshalBody(src []byte) error {
	v, _, err := readVarintBytes(src)
	p.Version = v
	return err
}

// Login carries the player name.
type Login struct {
	Name string
}

func (*Login) ID() PacketID                    { return IDLogin }
func (p *Login) MarshalBody(dst []byte) []byte { return appendString(dst, p.Name) }
func (p *Login) UnmarshalBody(src []byte) error {
	s, _, err := readString(src)
	p.Name = s
	return err
}

// LoginSuccess assigns the player's entity ID and spawn position.
type LoginSuccess struct {
	PlayerID int32
	X, Y, Z  float64
}

func (*LoginSuccess) ID() PacketID { return IDLoginSuccess }
func (p *LoginSuccess) MarshalBody(dst []byte) []byte {
	dst = AppendVarint(dst, p.PlayerID)
	dst = appendF64(dst, p.X)
	dst = appendF64(dst, p.Y)
	return appendF64(dst, p.Z)
}
func (p *LoginSuccess) UnmarshalBody(src []byte) error {
	var err error
	if p.PlayerID, src, err = readVarintBytes(src); err != nil {
		return err
	}
	if p.X, src, err = readF64(src); err != nil {
		return err
	}
	if p.Y, src, err = readF64(src); err != nil {
		return err
	}
	p.Z, _, err = readF64(src)
	return err
}

// KeepAlive is the liveness probe; the client echoes the nonce.
type KeepAlive struct {
	Nonce int64
}

func (*KeepAlive) ID() PacketID                    { return IDKeepAlive }
func (p *KeepAlive) MarshalBody(dst []byte) []byte { return appendI64(dst, p.Nonce) }
func (p *KeepAlive) UnmarshalBody(src []byte) error {
	v, _, err := readI64(src)
	p.Nonce = v
	return err
}

// Chat is a chat message. Meterstick's response-time probe sends a chat
// message and measures the time until the sender receives its own message
// back (§3.5.1).
type Chat struct {
	Sender string
	Text   string
	// SentUnixNano is the client's send timestamp, echoed back by the
	// server, letting the probe compute round-trip time statelessly.
	SentUnixNano int64
}

func (*Chat) ID() PacketID { return IDChat }
func (p *Chat) MarshalBody(dst []byte) []byte {
	dst = appendString(dst, p.Sender)
	dst = appendString(dst, p.Text)
	return appendI64(dst, p.SentUnixNano)
}
func (p *Chat) UnmarshalBody(src []byte) error {
	var err error
	if p.Sender, src, err = readString(src); err != nil {
		return err
	}
	if p.Text, src, err = readString(src); err != nil {
		return err
	}
	p.SentUnixNano, _, err = readI64(src)
	return err
}

// PlayerMove is a client movement input.
type PlayerMove struct {
	X, Y, Z float64
}

func (*PlayerMove) ID() PacketID { return IDPlayerMove }
func (p *PlayerMove) MarshalBody(dst []byte) []byte {
	dst = appendF64(dst, p.X)
	dst = appendF64(dst, p.Y)
	return appendF64(dst, p.Z)
}
func (p *PlayerMove) UnmarshalBody(src []byte) error {
	var err error
	if p.X, src, err = readF64(src); err != nil {
		return err
	}
	if p.Y, src, err = readF64(src); err != nil {
		return err
	}
	p.Z, _, err = readF64(src)
	return err
}

// Player actions.
const (
	ActionDig   = 0
	ActionPlace = 1
)

// PlayerAction is a terrain modification request (dig or place).
type PlayerAction struct {
	Action  uint8
	X, Y, Z int32
	BlockID uint8
}

func (*PlayerAction) ID() PacketID { return IDPlayerAction }
func (p *PlayerAction) MarshalBody(dst []byte) []byte {
	dst = append(dst, p.Action)
	dst = appendI32(dst, p.X)
	dst = appendI32(dst, p.Y)
	dst = appendI32(dst, p.Z)
	return append(dst, p.BlockID)
}
func (p *PlayerAction) UnmarshalBody(src []byte) error {
	var err error
	if p.Action, src, err = readU8(src); err != nil {
		return err
	}
	if p.X, src, err = readI32(src); err != nil {
		return err
	}
	if p.Y, src, err = readI32(src); err != nil {
		return err
	}
	if p.Z, src, err = readI32(src); err != nil {
		return err
	}
	p.BlockID, _, err = readU8(src)
	return err
}

// BlockChange is a terrain state update.
type BlockChange struct {
	X, Y, Z int32
	BlockID uint8
	Meta    uint8
}

func (*BlockChange) ID() PacketID { return IDBlockChange }
func (p *BlockChange) MarshalBody(dst []byte) []byte {
	dst = appendI32(dst, p.X)
	dst = appendI32(dst, p.Y)
	dst = appendI32(dst, p.Z)
	return append(dst, p.BlockID, p.Meta)
}
func (p *BlockChange) UnmarshalBody(src []byte) error {
	var err error
	if p.X, src, err = readI32(src); err != nil {
		return err
	}
	if p.Y, src, err = readI32(src); err != nil {
		return err
	}
	if p.Z, src, err = readI32(src); err != nil {
		return err
	}
	if p.BlockID, src, err = readU8(src); err != nil {
		return err
	}
	p.Meta, _, err = readU8(src)
	return err
}

// ChunkData is a bulk terrain transfer (sent on join and chunk load).
type ChunkData struct {
	ChunkX, ChunkZ int32
	Data           []byte
}

func (*ChunkData) ID() PacketID { return IDChunkData }
func (p *ChunkData) MarshalBody(dst []byte) []byte {
	dst = appendI32(dst, p.ChunkX)
	dst = appendI32(dst, p.ChunkZ)
	dst = AppendVarint(dst, int32(len(p.Data)))
	return append(dst, p.Data...)
}
func (p *ChunkData) UnmarshalBody(src []byte) error {
	var err error
	if p.ChunkX, src, err = readI32(src); err != nil {
		return err
	}
	if p.ChunkZ, src, err = readI32(src); err != nil {
		return err
	}
	var n int32
	if n, src, err = readVarintBytes(src); err != nil {
		return err
	}
	if int(n) > len(src) || n < 0 {
		return fmt.Errorf("protocol: chunk data length %d exceeds buffer", n)
	}
	p.Data = append([]byte(nil), src[:n]...)
	return nil
}

// SpawnEntity announces a new entity.
type SpawnEntity struct {
	EntityID int32
	Kind     uint8
	X, Y, Z  float64
}

func (*SpawnEntity) ID() PacketID { return IDSpawnEntity }
func (p *SpawnEntity) MarshalBody(dst []byte) []byte {
	dst = AppendVarint(dst, p.EntityID)
	dst = append(dst, p.Kind)
	dst = appendF64(dst, p.X)
	dst = appendF64(dst, p.Y)
	return appendF64(dst, p.Z)
}
func (p *SpawnEntity) UnmarshalBody(src []byte) error {
	var err error
	if p.EntityID, src, err = readVarintBytes(src); err != nil {
		return err
	}
	if p.Kind, src, err = readU8(src); err != nil {
		return err
	}
	if p.X, src, err = readF64(src); err != nil {
		return err
	}
	if p.Y, src, err = readF64(src); err != nil {
		return err
	}
	p.Z, _, err = readF64(src)
	return err
}

// EntityMove updates an entity's position.
type EntityMove struct {
	EntityID int32
	X, Y, Z  float64
}

func (*EntityMove) ID() PacketID { return IDEntityMove }
func (p *EntityMove) MarshalBody(dst []byte) []byte {
	dst = AppendVarint(dst, p.EntityID)
	dst = appendF64(dst, p.X)
	dst = appendF64(dst, p.Y)
	return appendF64(dst, p.Z)
}
func (p *EntityMove) UnmarshalBody(src []byte) error {
	var err error
	if p.EntityID, src, err = readVarintBytes(src); err != nil {
		return err
	}
	if p.X, src, err = readF64(src); err != nil {
		return err
	}
	if p.Y, src, err = readF64(src); err != nil {
		return err
	}
	p.Z, _, err = readF64(src)
	return err
}

// DestroyEntity removes an entity.
type DestroyEntity struct {
	EntityID int32
}

func (*DestroyEntity) ID() PacketID                    { return IDDestroyEntity }
func (p *DestroyEntity) MarshalBody(dst []byte) []byte { return AppendVarint(dst, p.EntityID) }
func (p *DestroyEntity) UnmarshalBody(src []byte) error {
	v, _, err := readVarintBytes(src)
	p.EntityID = v
	return err
}

// PlayerPosition is the server's authoritative position correction.
type PlayerPosition struct {
	X, Y, Z float64
}

func (*PlayerPosition) ID() PacketID { return IDPlayerPosition }
func (p *PlayerPosition) MarshalBody(dst []byte) []byte {
	dst = appendF64(dst, p.X)
	dst = appendF64(dst, p.Y)
	return appendF64(dst, p.Z)
}
func (p *PlayerPosition) UnmarshalBody(src []byte) error {
	var err error
	if p.X, src, err = readF64(src); err != nil {
		return err
	}
	if p.Y, src, err = readF64(src); err != nil {
		return err
	}
	p.Z, _, err = readF64(src)
	return err
}

// TimeUpdate carries the server's tick number.
type TimeUpdate struct {
	Tick int64
}

func (*TimeUpdate) ID() PacketID                    { return IDTimeUpdate }
func (p *TimeUpdate) MarshalBody(dst []byte) []byte { return appendI64(dst, p.Tick) }
func (p *TimeUpdate) UnmarshalBody(src []byte) error {
	v, _, err := readI64(src)
	p.Tick = v
	return err
}

// Disconnect closes the connection with a reason.
type Disconnect struct {
	Reason string
}

func (*Disconnect) ID() PacketID                    { return IDDisconnect }
func (p *Disconnect) MarshalBody(dst []byte) []byte { return appendString(dst, p.Reason) }
func (p *Disconnect) UnmarshalBody(src []byte) error {
	s, _, err := readString(src)
	p.Reason = s
	return err
}

// EntityMoveRel is a compact delta-encoded entity movement update, the
// high-frequency packet real MLG protocols use for entity position streams
// (full EntityMove packets are reserved for teleports).
type EntityMoveRel struct {
	EntityID   int32
	DX, DY, DZ int8 // deltas in 1/32 block
}

func (*EntityMoveRel) ID() PacketID { return IDEntityMoveRel }
func (p *EntityMoveRel) MarshalBody(dst []byte) []byte {
	dst = AppendVarint(dst, p.EntityID)
	return append(dst, byte(p.DX), byte(p.DY), byte(p.DZ))
}
func (p *EntityMoveRel) UnmarshalBody(src []byte) error {
	var err error
	if p.EntityID, src, err = readVarintBytes(src); err != nil {
		return err
	}
	if len(src) < 3 {
		return fmt.Errorf("protocol: short entity move rel")
	}
	p.DX, p.DY, p.DZ = int8(src[0]), int8(src[1]), int8(src[2])
	return nil
}

// WorldStream is a bulk terrain/light refresh blob: the steady background
// stream (chunk-border loads, lighting batches, sound/particle state) that
// dominates an MLG's byte volume even though it is a small share of its
// message count (Table 8).
type WorldStream struct {
	Data []byte
}

func (*WorldStream) ID() PacketID { return IDWorldStream }
func (p *WorldStream) MarshalBody(dst []byte) []byte {
	dst = AppendVarint(dst, int32(len(p.Data)))
	return append(dst, p.Data...)
}
func (p *WorldStream) UnmarshalBody(src []byte) error {
	n, rest, err := readVarintBytes(src)
	if err != nil {
		return err
	}
	if n < 0 || int(n) > len(rest) {
		return fmt.Errorf("protocol: world stream length %d exceeds buffer", n)
	}
	p.Data = append([]byte(nil), rest[:n]...)
	return nil
}

// New constructs an empty packet of the given ID, for decode dispatch.
func New(id PacketID) (Packet, error) {
	switch id {
	case IDHandshake:
		return &Handshake{}, nil
	case IDLogin:
		return &Login{}, nil
	case IDLoginSuccess:
		return &LoginSuccess{}, nil
	case IDKeepAlive:
		return &KeepAlive{}, nil
	case IDChat:
		return &Chat{}, nil
	case IDPlayerMove:
		return &PlayerMove{}, nil
	case IDPlayerAction:
		return &PlayerAction{}, nil
	case IDBlockChange:
		return &BlockChange{}, nil
	case IDChunkData:
		return &ChunkData{}, nil
	case IDSpawnEntity:
		return &SpawnEntity{}, nil
	case IDEntityMove:
		return &EntityMove{}, nil
	case IDDestroyEntity:
		return &DestroyEntity{}, nil
	case IDPlayerPosition:
		return &PlayerPosition{}, nil
	case IDTimeUpdate:
		return &TimeUpdate{}, nil
	case IDDisconnect:
		return &Disconnect{}, nil
	case IDEntityMoveRel:
		return &EntityMoveRel{}, nil
	case IDWorldStream:
		return &WorldStream{}, nil
	case IDShardHello:
		return &ShardHello{}, nil
	case IDChunkMirror:
		return &ChunkMirror{}, nil
	case IDEntityHandoff:
		return &EntityHandoff{}, nil
	case IDShardBarrier:
		return &ShardBarrier{}, nil
	case IDEntityMirror:
		return &EntityMirror{}, nil
	default:
		return nil, fmt.Errorf("protocol: unknown packet id %#x", int32(id))
	}
}
