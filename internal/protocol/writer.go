package protocol

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Async per-connection writers. In synchronous mode (the default) every
// WritePacket/WriteFrame/FlushBatch performs the socket write on the
// caller's goroutine — which means one slow or dead TCP peer can block the
// server's tick loop for as long as the kernel send buffer stays full.
// StartWriter moves the socket I/O onto a dedicated writer goroutine behind
// a bounded queue of ready-to-write byte batches:
//
//   - The caller's writes only append to an in-progress batch buffer; the
//     batch is handed to the queue at the flush boundary (FlushBatch, or
//     immediately for writes outside a batch window). Enqueueing never
//     blocks.
//   - The queue is bounded in both batches and bytes. When the peer cannot
//     keep up the flush boundary fails fast with ErrBacklog and the batch's
//     bytes are reclaimed into the buffer pool — the caller decides what to
//     resend (the game server falls back to a keyframe).
//   - Each socket write runs under a write deadline. A peer that keeps a
//     write stalled past it kills the writer: the error sticks, every
//     queued batch is reclaimed, and all subsequent writes report the
//     fault so the caller can disconnect the peer.
//
// Traffic counters are applied when a batch is accepted into the queue,
// never for dropped batches, so Stats reflect bytes actually handed to the
// writer.

// ErrBacklog reports that the peer's bounded writer queue could not accept
// a batch: the peer is not draining its connection fast enough. The batch
// was dropped and its buffer reclaimed; nothing partial was queued.
var ErrBacklog = errors.New("protocol: writer queue full (slow peer)")

// ErrWriterClosed reports a write on a connection whose async writer has
// been shut down.
var ErrWriterClosed = errors.New("protocol: writer closed")

// WriterConfig bounds one connection's async writer.
type WriterConfig struct {
	// MaxBatches caps the number of queued batches (default 64).
	MaxBatches int
	// MaxBytes caps the queued bytes across all batches, including the one
	// being enqueued (default 1 MiB).
	MaxBytes int
	// WriteTimeout bounds each socket write; a peer that keeps one write
	// blocked past it faults the writer. Zero disables the deadline.
	WriteTimeout time.Duration
}

func (c WriterConfig) withDefaults() WriterConfig {
	if c.MaxBatches <= 0 {
		c.MaxBatches = 64
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 1 << 20
	}
	return c
}

// writeDeadliner is the subset of net.Conn the writer needs for deadlines;
// in-memory test conns that don't implement it simply get no deadline.
type writeDeadliner interface {
	SetWriteDeadline(time.Time) error
}

// outStats accumulates the traffic counters of an in-progress batch; they
// are applied to the connection's atomics only when the batch is accepted
// into the queue (dropped batches never count).
type outStats struct {
	msgs, bytes             int64
	entityMsgs, entityBytes int64
}

func (o *outStats) add(frame int, entity bool) {
	o.msgs++
	o.bytes += int64(frame)
	if entity {
		o.entityMsgs++
		o.entityBytes += int64(frame)
	}
}

// connWriter is the bounded queue + goroutine behind one async connection.
type connWriter struct {
	cfg WriterConfig

	mu          sync.Mutex
	cond        *sync.Cond
	queue       [][]byte
	queuedBytes int
	free        [][]byte // reclaimed batch buffers, reused for new batches
	err         error    // sticky fault: first write/deadline error
	closed      bool
	done        chan struct{} // closed when the writer goroutine exits
}

// StartWriter switches the connection into async-writer mode: all
// subsequent WritePacket/WriteFrame/FlushBatch calls enqueue onto a bounded
// queue drained by a dedicated goroutine and never block on the socket.
// Call it once, after any synchronous handshake traffic; starting an
// already-async connection is a no-op.
func (c *Conn) StartWriter(cfg WriterConfig) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.aw != nil {
		return
	}
	aw := &connWriter{cfg: cfg.withDefaults(), done: make(chan struct{})}
	aw.cond = sync.NewCond(&aw.mu)
	c.aw = aw
	go c.writerLoop(aw)
}

// WriterQueueDepth returns the async writer's current backlog in batches
// and bytes (0, 0 in synchronous mode) — the per-connection queue-depth
// gauge the server's tick counters sample.
func (c *Conn) WriterQueueDepth() (batches, bytes int) {
	c.wmu.Lock()
	aw := c.aw
	c.wmu.Unlock()
	if aw == nil {
		return 0, 0
	}
	aw.mu.Lock()
	defer aw.mu.Unlock()
	return len(aw.queue), aw.queuedBytes
}

// WriterErr returns the async writer's sticky fault: non-nil once a socket
// write failed or missed its deadline. Synchronous connections return nil.
func (c *Conn) WriterErr() error {
	c.wmu.Lock()
	aw := c.aw
	c.wmu.Unlock()
	if aw == nil {
		return nil
	}
	aw.mu.Lock()
	defer aw.mu.Unlock()
	return aw.err
}

// stop shuts the writer down and reclaims every queued batch. The writer
// goroutine may be blocked inside a socket write; closing the underlying
// stream (the caller's next step) unblocks it.
func (aw *connWriter) stop() {
	aw.mu.Lock()
	aw.closed = true
	aw.queue = nil
	aw.queuedBytes = 0
	aw.cond.Broadcast()
	aw.mu.Unlock()
}

// getBatchLocked returns an empty batch buffer, reusing a reclaimed one
// when available. Caller holds c.wmu.
func (c *Conn) getBatchLocked() []byte {
	aw := c.aw
	aw.mu.Lock()
	defer aw.mu.Unlock()
	if n := len(aw.free); n > 0 {
		buf := aw.free[n-1]
		aw.free = aw.free[:n-1]
		return buf[:0]
	}
	return make([]byte, 0, 4<<10)
}

// appendAsyncLocked stages frame bytes onto the connection's in-progress
// batch. Caller holds c.wmu and has verified async mode.
func (c *Conn) appendAsyncLocked(frame []byte, entity bool) {
	if c.pending == nil {
		c.pending = c.getBatchLocked()
	}
	c.pending = append(c.pending, frame...)
	c.pendingStats.add(len(frame), entity)
}

// enqueueLocked hands the in-progress batch to the writer queue. It never
// blocks: a full queue drops the batch, reclaims its buffer and returns
// ErrBacklog; a faulted writer returns its sticky error. Counters are
// applied only on acceptance. Caller holds c.wmu.
func (c *Conn) enqueueLocked() error {
	aw := c.aw
	buf, st := c.pending, c.pendingStats
	c.pending, c.pendingStats = nil, outStats{}

	aw.mu.Lock()
	if buf == nil {
		err := aw.err
		aw.mu.Unlock()
		return err
	}
	if aw.err != nil || aw.closed {
		err := aw.err
		if err == nil {
			err = ErrWriterClosed
		}
		aw.free = append(aw.free, buf)
		aw.mu.Unlock()
		return err
	}
	if len(aw.queue) >= aw.cfg.MaxBatches || aw.queuedBytes+len(buf) > aw.cfg.MaxBytes {
		aw.free = append(aw.free, buf)
		aw.mu.Unlock()
		return ErrBacklog
	}
	aw.queue = append(aw.queue, buf)
	aw.queuedBytes += len(buf)
	aw.cond.Signal()
	aw.mu.Unlock()

	c.msgsOut.Add(st.msgs)
	c.bytesOut.Add(st.bytes)
	c.entityMsgs.Add(st.entityMsgs)
	c.entityBytes.Add(st.entityBytes)
	c.lastActivity.Store(time.Now().UnixNano())
	return nil
}

// writerLoop drains the queue onto the socket: each wakeup takes every
// queued batch and writes them as one coalesced buffer under the configured
// deadline. Coalescing matters under broadcast bursts — N small frames
// enqueued back to back (chat fan-out) cost one syscall instead of N, and
// the queue's batch slots free up N at a time. The first failed write faults
// the writer: remaining batches are reclaimed and the loop exits — a
// stalled peer costs one blocked goroutine for at most WriteTimeout, never
// a blocked caller.
func (c *Conn) writerLoop(aw *connWriter) {
	defer close(aw.done)
	var taken [][]byte // this round's batches, owned until reclaimed
	var wbuf []byte    // coalesced write buffer, reused across rounds
	for {
		aw.mu.Lock()
		for len(aw.queue) == 0 && !aw.closed && aw.err == nil {
			aw.cond.Wait()
		}
		if aw.closed || aw.err != nil {
			aw.queue = nil
			aw.queuedBytes = 0
			aw.mu.Unlock()
			return
		}
		taken = append(taken[:0], aw.queue...)
		aw.queue = nil
		aw.queuedBytes = 0
		aw.mu.Unlock()

		buf := taken[0]
		if len(taken) > 1 {
			wbuf = wbuf[:0]
			for _, b := range taken {
				wbuf = append(wbuf, b...)
			}
			buf = wbuf
		}
		if aw.cfg.WriteTimeout > 0 {
			if d, ok := c.rw.(writeDeadliner); ok {
				d.SetWriteDeadline(time.Now().Add(aw.cfg.WriteTimeout))
			}
		}
		_, werr := c.rw.Write(buf)
		aw.mu.Lock()
		aw.free = append(aw.free, taken...)
		if werr != nil {
			aw.err = fmt.Errorf("protocol: async write: %w", werr)
			aw.queue = nil
			aw.queuedBytes = 0
			aw.mu.Unlock()
			return
		}
		aw.mu.Unlock()
	}
}
