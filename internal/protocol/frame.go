package protocol

// Encode-once broadcast frames. A broadcast packet (block change, chat,
// keep-alive, time update, entity move) historically was re-marshalled once
// per recipient; a Frame is the packet's complete wire representation —
// length prefix, ID varint, body — produced exactly once and then written
// to N connections as a raw byte copy via Conn.WriteFrame.

// Frame is one packet pre-encoded to its full wire form. The zero Frame is
// empty and must not be written.
type Frame struct {
	data   []byte
	entity bool
}

// EncodeFrame marshals p once into a reusable Frame.
func EncodeFrame(p Packet) Frame {
	return Frame{data: AppendFrame(nil, p), entity: EntityRelated(p)}
}

// Len returns the frame's size on the wire in bytes.
func (f Frame) Len() int { return len(f.data) }

// EntityRelated reports whether the framed packet carries entity state (the
// Table 8 classification), preserved so per-connection stats stay exact on
// the raw-copy path.
func (f Frame) EntityRelated() bool { return f.entity }

// AppendFrame appends p's complete wire frame (length prefix, packet ID,
// body) to dst and returns the extended slice. The body is marshalled
// directly into dst; the length prefix is spliced in front afterwards, so
// the packet is encoded exactly once with no intermediate buffer.
func AppendFrame(dst []byte, p Packet) []byte {
	payloadStart := len(dst)
	dst = AppendVarint(dst, int32(p.ID()))
	dst = p.MarshalBody(dst)
	n := len(dst) - payloadStart

	var hdr [maxVarintBytes]byte
	h := AppendVarint(hdr[:0], int32(n))
	dst = append(dst, h...) // grow by the header size
	copy(dst[payloadStart+len(h):], dst[payloadStart:payloadStart+n])
	copy(dst[payloadStart:], h)
	return dst
}
