package protocol

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	cases := []int32{0, 1, 127, 128, 255, 300, 16383, 16384, 1<<28 - 1, -1, -100}
	for _, v := range cases {
		enc := AppendVarint(nil, v)
		if len(enc) != VarintLen(v) {
			t.Errorf("VarintLen(%d) = %d, encoded %d bytes", v, VarintLen(v), len(enc))
		}
		got, err := ReadVarint(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
}

func TestVarintRoundTripProperty(t *testing.T) {
	f := func(v int32) bool {
		got, err := ReadVarint(bytes.NewReader(AppendVarint(nil, v)))
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestVarintTooLong(t *testing.T) {
	if _, err := ReadVarint(bytes.NewReader([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80})); err != ErrVarintTooLong {
		t.Fatalf("err = %v, want ErrVarintTooLong", err)
	}
}

// allPackets returns one populated instance of every packet type.
func allPackets() []Packet {
	return []Packet{
		&Handshake{Version: ProtocolVersion},
		&Login{Name: "bot-17"},
		&LoginSuccess{PlayerID: 42, X: 1.5, Y: 11, Z: -3.25},
		&KeepAlive{Nonce: -99887766},
		&Chat{Sender: "bot-17", Text: "probe-00042", SentUnixNano: 1234567890123},
		&PlayerMove{X: 10.25, Y: 11, Z: -4.75},
		&PlayerAction{Action: ActionPlace, X: 5, Y: 12, Z: -7, BlockID: 12},
		&BlockChange{X: -100, Y: 30, Z: 200, BlockID: 8, Meta: 3},
		&ChunkData{ChunkX: -2, ChunkZ: 5, Data: []byte{1, 2, 3, 4, 5}},
		&SpawnEntity{EntityID: 900, Kind: 1, X: 0.5, Y: 20, Z: 0.5},
		&EntityMove{EntityID: 900, X: 1.5, Y: 19, Z: 0.5},
		&DestroyEntity{EntityID: 900},
		&PlayerPosition{X: 16.5, Y: 11, Z: 16.5},
		&TimeUpdate{Tick: 123456},
		&Disconnect{Reason: "server stopping"},
		&EntityMoveRel{EntityID: 900, DX: 3, DY: -2, DZ: 1},
		&WorldStream{Data: []byte{9, 8, 7}},
	}
}

func TestAllPacketsRoundTrip(t *testing.T) {
	for _, p := range allPackets() {
		body := p.MarshalBody(nil)
		fresh, err := New(p.ID())
		if err != nil {
			t.Fatalf("New(%#x): %v", int32(p.ID()), err)
		}
		if err := fresh.UnmarshalBody(body); err != nil {
			t.Fatalf("unmarshal %T: %v", p, err)
		}
		if !reflect.DeepEqual(p, fresh) {
			t.Errorf("%T round trip: sent %+v, got %+v", p, p, fresh)
		}
	}
}

func TestNewRejectsUnknownID(t *testing.T) {
	if _, err := New(PacketID(0x7F)); err == nil {
		t.Fatal("expected error for unknown packet id")
	}
}

func TestEntityRelatedClassification(t *testing.T) {
	wantEntity := map[PacketID]bool{
		IDSpawnEntity: true, IDEntityMove: true, IDEntityMoveRel: true,
		IDDestroyEntity: true,
	}
	for _, p := range allPackets() {
		if got := EntityRelated(p); got != wantEntity[p.ID()] {
			t.Errorf("EntityRelated(%T) = %v", p, got)
		}
	}
}

func TestTruncatedBodiesError(t *testing.T) {
	for _, p := range allPackets() {
		body := p.MarshalBody(nil)
		if len(body) == 0 {
			continue
		}
		fresh, _ := New(p.ID())
		if err := fresh.UnmarshalBody(body[:len(body)-1]); err == nil {
			// Some truncations remain decodable (e.g. trailing string bytes);
			// only fixed-width tails must error. Skip packets ending in a
			// string.
			switch p.(type) {
			case *Login, *Disconnect, *ChunkData, *WorldStream:
				continue
			}
			t.Errorf("%T decoded truncated body without error", p)
		}
	}
}

func TestConnOverPipe(t *testing.T) {
	client, server := net.Pipe()
	cc, sc := NewConn(client), NewConn(server)
	defer cc.Close()
	defer sc.Close()

	done := make(chan error, 1)
	go func() {
		for _, p := range allPackets() {
			if _, err := cc.WritePacket(p); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	for _, want := range allPackets() {
		got, frame, err := sc.ReadPacket()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if frame <= 0 {
			t.Fatal("non-positive frame size")
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("write: %v", err)
	}

	ws, rs := cc.Stats(), sc.Stats()
	if ws.MsgsOut != int64(len(allPackets())) {
		t.Errorf("writer MsgsOut = %d", ws.MsgsOut)
	}
	if rs.MsgsIn != int64(len(allPackets())) {
		t.Errorf("reader MsgsIn = %d", rs.MsgsIn)
	}
	if ws.BytesOut != rs.BytesIn {
		t.Errorf("bytes out %d != bytes in %d", ws.BytesOut, rs.BytesIn)
	}
	if ws.EntityMsgs != 4 {
		t.Errorf("entity msgs = %d, want 4", ws.EntityMsgs)
	}
	if ws.EntityBytes <= 0 || ws.EntityBytes >= ws.BytesOut {
		t.Errorf("entity bytes = %d of %d", ws.EntityBytes, ws.BytesOut)
	}
}

func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		sc := NewConn(c)
		defer sc.Close()
		for {
			p, _, err := sc.ReadPacket()
			if err != nil {
				return
			}
			// Echo chats back; that is the response-time probe path.
			if chat, ok := p.(*Chat); ok {
				if _, err := sc.WritePacket(chat); err != nil {
					return
				}
			}
		}
	}()

	cc, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	sent := &Chat{Sender: "probe", Text: "hello", SentUnixNano: 777}
	if _, err := cc.WritePacket(sent); err != nil {
		t.Fatal(err)
	}
	got, _, err := cc.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sent) {
		t.Fatalf("echo mismatch: %+v", got)
	}
}

func TestReadPacketRejectsBadFrame(t *testing.T) {
	client, server := net.Pipe()
	sc := NewConn(server)
	go func() {
		// A frame claiming an absurd length.
		client.Write(AppendVarint(nil, MaxFrameSize+1))
		client.Close()
	}()
	if _, _, err := sc.ReadPacket(); err == nil {
		t.Fatal("expected error on oversized frame")
	}
}

// Property: chat packets of arbitrary content survive the wire.
func TestChatRoundTripProperty(t *testing.T) {
	f := func(sender, text string, ts int64) bool {
		p := &Chat{Sender: sender, Text: text, SentUnixNano: ts}
		fresh := &Chat{}
		if err := fresh.UnmarshalBody(p.MarshalBody(nil)); err != nil {
			return false
		}
		return reflect.DeepEqual(p, fresh)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
