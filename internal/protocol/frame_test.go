package protocol

import (
	"bytes"
	"reflect"
	"testing"
)

// TestAppendFrameMatchesWritePacket: the encode-once frame of every packet
// type must be byte-identical to what the per-packet WritePacket path puts
// on the wire.
func TestAppendFrameMatchesWritePacket(t *testing.T) {
	for _, p := range allPackets() {
		var buf bytes.Buffer
		c := NewConn(rwc{&buf})
		n, err := c.WritePacket(p)
		if err != nil {
			t.Fatalf("%T: write: %v", p, err)
		}
		frame := AppendFrame(nil, p)
		if !bytes.Equal(frame, buf.Bytes()) {
			t.Errorf("%T: AppendFrame %x != WritePacket %x", p, frame, buf.Bytes())
		}
		if n != len(frame) {
			t.Errorf("%T: WritePacket size %d, frame size %d", p, n, len(frame))
		}
		f := EncodeFrame(p)
		if f.Len() != len(frame) {
			t.Errorf("%T: EncodeFrame.Len %d, want %d", p, f.Len(), len(frame))
		}
		if f.EntityRelated() != EntityRelated(p) {
			t.Errorf("%T: frame entity classification diverges", p)
		}
	}
}

// TestBatchedFrameStreamByteIdentical: a full packet sequence written with
// encode-once frames inside one batch must produce the exact byte stream of
// the legacy flush-per-packet path, and decode back to the same packets.
func TestBatchedFrameStreamByteIdentical(t *testing.T) {
	pkts := allPackets()

	var perPacket bytes.Buffer
	ca := NewConn(rwc{&perPacket})
	for _, p := range pkts {
		if _, err := ca.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}

	var batched bytes.Buffer
	cb := NewConn(rwc{&batched})
	cb.BeginBatch()
	for _, p := range pkts {
		if _, err := cb.WriteFrame(EncodeFrame(p)); err != nil {
			t.Fatal(err)
		}
	}
	if batched.Len() != 0 {
		t.Fatalf("batch leaked %d bytes before FlushBatch", batched.Len())
	}
	if err := cb.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(perPacket.Bytes(), batched.Bytes()) {
		t.Fatalf("batched stream differs from per-packet stream\nper-packet: %x\nbatched:    %x",
			perPacket.Bytes(), batched.Bytes())
	}

	// The batched stream must decode back to the same packets.
	cr := NewConn(rwc{&batched})
	for _, want := range pkts {
		got, _, err := cr.ReadPacket()
		if err != nil {
			t.Fatalf("decode %T from batched stream: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batched round trip: sent %+v, got %+v", want, got)
		}
	}
}

// TestNestedBatchesFlushOnce: inner FlushBatch must not flush while an
// outer batch is open.
func TestNestedBatchesFlushOnce(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(rwc{&buf})
	c.BeginBatch()
	c.BeginBatch()
	if _, err := c.WriteFrame(EncodeFrame(&KeepAlive{Nonce: 7})); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("inner FlushBatch flushed while outer batch open")
	}
	if err := c.FlushBatch(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("outer FlushBatch did not flush")
	}
}

// TestWriteFrameStats: the raw-copy path must keep the Table 8 counters
// exact, including the entity classification.
func TestWriteFrameStats(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(rwc{&buf})
	move := EncodeFrame(&EntityMove{EntityID: 9, X: 1, Y: 2, Z: 3})
	chat := EncodeFrame(&Chat{Sender: "a", Text: "hi"})
	c.WriteFrame(move)
	c.WriteFrame(move)
	c.WriteFrame(chat)
	st := c.Stats()
	if st.MsgsOut != 3 || st.EntityMsgs != 2 {
		t.Fatalf("msgs = %d (entity %d), want 3 (2)", st.MsgsOut, st.EntityMsgs)
	}
	wantBytes := int64(2*move.Len() + chat.Len())
	if st.BytesOut != wantBytes || st.EntityBytes != int64(2*move.Len()) {
		t.Fatalf("bytes = %d (entity %d), want %d (%d)",
			st.BytesOut, st.EntityBytes, wantBytes, 2*move.Len())
	}
	if int64(buf.Len()) != wantBytes {
		t.Fatalf("wire bytes %d, want %d", buf.Len(), wantBytes)
	}
}

// TestReadVarintBytesTruncatedVsOverlong: a buffer that merely ends
// mid-varint is a truncation, not a malformed overlong encoding.
func TestReadVarintBytesTruncatedVsOverlong(t *testing.T) {
	for _, src := range [][]byte{nil, {}, {0x80}, {0xFF, 0xFF}, {0x80, 0x80, 0x80, 0x80}} {
		if _, _, err := readVarintBytes(src); err != ErrVarintTruncated {
			t.Errorf("readVarintBytes(%x) err = %v, want ErrVarintTruncated", src, err)
		}
	}
	for _, src := range [][]byte{
		{0x80, 0x80, 0x80, 0x80, 0x80},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
	} {
		if _, _, err := readVarintBytes(src); err != ErrVarintTooLong {
			t.Errorf("readVarintBytes(%x) err = %v, want ErrVarintTooLong", src, err)
		}
	}
}

// TestReadPacketReusesBuffer: decoded packets must own their data — nothing
// may alias the connection's pooled read buffer across packets.
func TestReadPacketReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(rwc{&buf})
	first := &Chat{Sender: "alice", Text: "first message"}
	second := &Chat{Sender: "bob", Text: "second message"}
	c.WritePacket(first)
	c.WritePacket(second)

	p1, _, err := c.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := c.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if got := p1.(*Chat); got.Sender != "alice" || got.Text != "first message" {
		t.Fatalf("first packet corrupted by buffer reuse: %+v", got)
	}
	if got := p2.(*Chat); got.Sender != "bob" || got.Text != "second message" {
		t.Fatalf("second packet wrong: %+v", got)
	}
}
