package protocol

// Inter-shard packets. A sharded deployment splits the world into disjoint
// chunk ranges, one server process per range; the shards keep each other
// consistent over the same varint-framed codec the players use, so the
// transport (frame reader, batched async writers, backlog shedding) is
// shared code. IDs start at 0x11, above the client-facing range.

import (
	"encoding/binary"
	"fmt"
)

// Inter-shard packet IDs.
const (
	IDShardHello    PacketID = 0x11 // shard → shard: session handshake
	IDChunkMirror   PacketID = 0x12 // owner → neighbour: halo chunk image
	IDEntityHandoff PacketID = 0x13 // owner → new owner: migrating entity
	IDShardBarrier  PacketID = 0x14 // shard → shard: end-of-tick marker
	IDEntityMirror  PacketID = 0x15 // owner → neighbour: halo entity ghost
)

// ShardHello opens an inter-shard session: each side announces its shard
// index and the cluster size so misconfigured peers fail fast.
type ShardHello struct {
	Shard  int32
	Shards int32
	Tick   int64
}

func (*ShardHello) ID() PacketID { return IDShardHello }
func (p *ShardHello) MarshalBody(dst []byte) []byte {
	dst = appendI32(dst, p.Shard)
	dst = appendI32(dst, p.Shards)
	return appendI64(dst, p.Tick)
}
func (p *ShardHello) UnmarshalBody(src []byte) error {
	var err error
	if p.Shard, src, err = readI32(src); err != nil {
		return err
	}
	if p.Shards, src, err = readI32(src); err != nil {
		return err
	}
	p.Tick, _, err = readI64(src)
	return err
}

// ChunkMirror carries one boundary chunk's full RLE image from its owner to
// a neighbouring shard's halo copy. Sent only for chunks whose content
// changed since the last mirror, so steady-state boundary traffic is small.
type ChunkMirror struct {
	ChunkX, ChunkZ int32
	Data           []byte
}

func (*ChunkMirror) ID() PacketID { return IDChunkMirror }
func (p *ChunkMirror) MarshalBody(dst []byte) []byte {
	dst = appendI32(dst, p.ChunkX)
	dst = appendI32(dst, p.ChunkZ)
	dst = AppendVarint(dst, int32(len(p.Data)))
	return append(dst, p.Data...)
}
func (p *ChunkMirror) UnmarshalBody(src []byte) error {
	var err error
	if p.ChunkX, src, err = readI32(src); err != nil {
		return err
	}
	if p.ChunkZ, src, err = readI32(src); err != nil {
		return err
	}
	n, rest, err := readVarintBytes(src)
	if err != nil {
		return err
	}
	if n < 0 || int(n) > len(rest) {
		return fmt.Errorf("protocol: chunk mirror length %d exceeds buffer", n)
	}
	p.Data = append([]byte(nil), rest[:n]...)
	return nil
}

// EntityHandoff migrates one entity to the shard owning its new chunk. The
// fields mirror entity.Handoff: everything the receiving store needs to
// continue the entity bit-identically, keyed by its spawn identity rather
// than any store-local ID.
type EntityHandoff struct {
	Kind           uint8
	X, Y, Z        float64
	VX, VY, VZ     float64
	OnGround       bool
	Age            int32
	ItemType       uint8
	Fuse           int32
	SeedKey        uint64
	WanderCooldown int32
}

func (*EntityHandoff) ID() PacketID { return IDEntityHandoff }
func (p *EntityHandoff) MarshalBody(dst []byte) []byte {
	dst = append(dst, p.Kind)
	for _, f := range [6]float64{p.X, p.Y, p.Z, p.VX, p.VY, p.VZ} {
		dst = appendF64(dst, f)
	}
	if p.OnGround {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendI32(dst, p.Age)
	dst = append(dst, p.ItemType)
	dst = appendI32(dst, p.Fuse)
	dst = binary.BigEndian.AppendUint64(dst, p.SeedKey)
	return appendI32(dst, p.WanderCooldown)
}
func (p *EntityHandoff) UnmarshalBody(src []byte) error {
	var err error
	if p.Kind, src, err = readU8(src); err != nil {
		return err
	}
	fs := [6]*float64{&p.X, &p.Y, &p.Z, &p.VX, &p.VY, &p.VZ}
	for _, f := range fs {
		if *f, src, err = readF64(src); err != nil {
			return err
		}
	}
	var og byte
	if og, src, err = readU8(src); err != nil {
		return err
	}
	p.OnGround = og != 0
	if p.Age, src, err = readI32(src); err != nil {
		return err
	}
	if p.ItemType, src, err = readU8(src); err != nil {
		return err
	}
	if p.Fuse, src, err = readI32(src); err != nil {
		return err
	}
	if len(src) < 8 {
		return fmt.Errorf("protocol: entity handoff truncated")
	}
	p.SeedKey = binary.BigEndian.Uint64(src)
	p.WanderCooldown, _, err = readI32(src[8:])
	return err
}

// EntityMirror is a halo entity ghost: the position of one live entity
// standing in an owned chunk within HaloWidth of a shard boundary, resent
// every tick. Ghosts exist for visibility only — clients near the boundary
// see entities across it — and are never simulated by the receiving shard,
// which keeps the determinism contract intact (only the owner draws the
// entity's decision streams).
type EntityMirror struct {
	Kind    uint8
	X, Y, Z float64
}

func (*EntityMirror) ID() PacketID { return IDEntityMirror }
func (p *EntityMirror) MarshalBody(dst []byte) []byte {
	dst = append(dst, p.Kind)
	dst = appendF64(dst, p.X)
	dst = appendF64(dst, p.Y)
	return appendF64(dst, p.Z)
}
func (p *EntityMirror) UnmarshalBody(src []byte) error {
	var err error
	if p.Kind, src, err = readU8(src); err != nil {
		return err
	}
	if p.X, src, err = readF64(src); err != nil {
		return err
	}
	if p.Y, src, err = readF64(src); err != nil {
		return err
	}
	p.Z, _, err = readF64(src)
	return err
}

// ShardBarrier marks the end of a shard's outbound traffic for one tick:
// after the barrier for tick T, the peer has every mirror and handoff T
// produced and may start its own tick T+1. The lockstep cluster driver uses
// it to sequence shards deterministically.
type ShardBarrier struct {
	Tick int64
	// Handoffs is the number of EntityHandoff packets preceding this
	// barrier, a cheap integrity check on the session stream.
	Handoffs int32
}

func (*ShardBarrier) ID() PacketID { return IDShardBarrier }
func (p *ShardBarrier) MarshalBody(dst []byte) []byte {
	dst = appendI64(dst, p.Tick)
	return appendI32(dst, p.Handoffs)
}
func (p *ShardBarrier) UnmarshalBody(src []byte) error {
	var err error
	if p.Tick, src, err = readI64(src); err != nil {
		return err
	}
	p.Handoffs, _, err = readI32(src)
	return err
}
