package protocol

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// stalledPeer returns an async conn whose peer never reads, plus the peer
// end (close both via t.Cleanup). The writer goroutine will block inside its
// first socket write until the pipe is closed or a deadline fires.
func stalledPeer(t *testing.T, cfg WriterConfig) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	c := NewConn(a)
	c.StartWriter(cfg)
	t.Cleanup(func() { c.Close(); b.Close() })
	return c, b
}

// waitFor polls until ok() or the deadline.
func waitFor(t *testing.T, d time.Duration, ok func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWriterOverflowReturnsBacklog(t *testing.T) {
	c, _ := stalledPeer(t, WriterConfig{MaxBatches: 2, MaxBytes: 1 << 20})

	// The first accepted batch is popped by the writer goroutine, which then
	// blocks inside the pipe write. Wait for that pop so the queue state is
	// deterministic before filling it.
	if _, err := c.WritePacket(&KeepAlive{Nonce: 1}); err != nil {
		t.Fatalf("first write: %v", err)
	}
	waitFor(t, time.Second, func() bool {
		n, _ := c.WriterQueueDepth()
		return n == 0
	}, "writer never popped the first batch")

	for i := 0; i < 2; i++ {
		if _, err := c.WritePacket(&KeepAlive{Nonce: int64(i)}); err != nil {
			t.Fatalf("fill write %d: %v", i, err)
		}
	}
	if _, err := c.WritePacket(&KeepAlive{Nonce: 9}); !errors.Is(err, ErrBacklog) {
		t.Fatalf("overflow write: got %v, want ErrBacklog", err)
	}

	// Dropped batches must not count: 3 accepted (1 in flight + 2 queued).
	if st := c.Stats(); st.MsgsOut != 3 {
		t.Fatalf("MsgsOut = %d after drop, want 3", st.MsgsOut)
	}
}

func TestWriterByteBoundReturnsBacklog(t *testing.T) {
	c, _ := stalledPeer(t, WriterConfig{MaxBatches: 64, MaxBytes: 32})

	if _, err := c.WritePacket(&KeepAlive{Nonce: 1}); err != nil {
		t.Fatalf("first write: %v", err)
	}
	waitFor(t, time.Second, func() bool {
		n, _ := c.WriterQueueDepth()
		return n == 0
	}, "writer never popped the first batch")

	// One oversized batch must trip the byte bound even with batch slots free.
	c.BeginBatch()
	for i := 0; i < 8; i++ {
		if _, err := c.WritePacket(&KeepAlive{Nonce: int64(i)}); err != nil {
			t.Fatalf("batched write: %v", err)
		}
	}
	if err := c.FlushBatch(); !errors.Is(err, ErrBacklog) {
		t.Fatalf("oversized batch: got %v, want ErrBacklog", err)
	}
}

func TestWriterBatchEnqueuesOnce(t *testing.T) {
	c, _ := stalledPeer(t, WriterConfig{MaxBatches: 64, MaxBytes: 1 << 20})

	if _, err := c.WritePacket(&KeepAlive{Nonce: 1}); err != nil {
		t.Fatalf("first write: %v", err)
	}
	waitFor(t, time.Second, func() bool {
		n, _ := c.WriterQueueDepth()
		return n == 0
	}, "writer never popped the first batch")

	c.BeginBatch()
	for i := 0; i < 5; i++ {
		if _, err := c.WritePacket(&KeepAlive{Nonce: int64(i)}); err != nil {
			t.Fatalf("batched write: %v", err)
		}
	}
	if err := c.FlushBatch(); err != nil {
		t.Fatalf("FlushBatch: %v", err)
	}
	if n, _ := c.WriterQueueDepth(); n != 1 {
		t.Fatalf("queue depth after one batch = %d, want 1", n)
	}
	if st := c.Stats(); st.MsgsOut != 6 {
		t.Fatalf("MsgsOut = %d, want 6", st.MsgsOut)
	}
}

func TestWriterDeadlineFaultIsSticky(t *testing.T) {
	c, _ := stalledPeer(t, WriterConfig{
		MaxBatches: 4, MaxBytes: 1 << 20, WriteTimeout: 20 * time.Millisecond,
	})

	if _, err := c.WritePacket(&KeepAlive{Nonce: 1}); err != nil {
		t.Fatalf("first write: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return c.WriterErr() != nil },
		"writer never faulted on the stalled peer")
	if err := c.WriterErr(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("WriterErr = %v, want deadline exceeded", err)
	}

	// Every queued batch was reclaimed and later writes report the fault.
	if n, b := c.WriterQueueDepth(); n != 0 || b != 0 {
		t.Fatalf("queue depth after fault = (%d, %d), want (0, 0)", n, b)
	}
	_, err := c.WritePacket(&KeepAlive{Nonce: 2})
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("write after fault = %v, want sticky deadline error", err)
	}
	if st := c.Stats(); st.MsgsOut != 1 {
		t.Fatalf("MsgsOut = %d, want 1 (faulted writes never count)", st.MsgsOut)
	}
}

func TestWriterDrainsToHealthyPeer(t *testing.T) {
	a, b := net.Pipe()
	c := NewConn(a)
	c.StartWriter(WriterConfig{MaxBatches: 64, MaxBytes: 1 << 20})
	defer c.Close()
	peer := NewConn(b)
	defer peer.Close()

	const n = 50
	go func() {
		for i := 0; i < n; i++ {
			c.WritePacket(&KeepAlive{Nonce: int64(i)})
		}
	}()
	for i := 0; i < n; i++ {
		p, _, err := peer.ReadPacket()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		ka, ok := p.(*KeepAlive)
		if !ok || ka.Nonce != int64(i) {
			t.Fatalf("read %d: got %#v, want KeepAlive{%d} (FIFO order)", i, p, i)
		}
	}
}

func TestWriterCloseUnblocksStalledWrite(t *testing.T) {
	a, b := net.Pipe()
	c := NewConn(a)
	c.StartWriter(WriterConfig{MaxBatches: 4, MaxBytes: 1 << 20})
	defer b.Close()

	if _, err := c.WritePacket(&KeepAlive{Nonce: 1}); err != nil {
		t.Fatalf("write: %v", err)
	}

	// The writer goroutine is (or will be) blocked in the pipe write; Close
	// must shut it down and return rather than hang.
	done := make(chan struct{})
	go func() { c.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a stalled writer")
	}

	if _, err := c.WritePacket(&KeepAlive{Nonce: 2}); err == nil {
		t.Fatal("write after Close succeeded, want error")
	}
}

func TestStartWriterIdempotent(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := NewConn(a)
	c.StartWriter(WriterConfig{})
	aw := c.aw
	c.StartWriter(WriterConfig{MaxBatches: 1})
	if c.aw != aw {
		t.Fatal("second StartWriter replaced the writer")
	}
	c.Close()
}
