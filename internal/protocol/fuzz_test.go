package protocol

// Fuzz targets for the wire codec. The seed corpus below runs as ordinary
// cases under `go test ./...`; `go test -fuzz=FuzzPacketDecode` (or
// -fuzz=FuzzVarint) explores further.

import (
	"bytes"
	"testing"
)

// FuzzVarint: every int32 must survive an encode/decode round trip, and the
// encoded length must match VarintLen.
func FuzzVarint(f *testing.F) {
	for _, v := range []int32{0, 1, -1, 127, 128, 300, 1 << 13, -1 << 28, 1<<31 - 1, -1 << 31} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v int32) {
		enc := AppendVarint(nil, v)
		if len(enc) != VarintLen(v) {
			t.Fatalf("VarintLen(%d) = %d, encoded %d bytes", v, VarintLen(v), len(enc))
		}
		if len(enc) > maxVarintBytes {
			t.Fatalf("encoding of %d is %d bytes, max %d", v, len(enc), maxVarintBytes)
		}
		got, err := ReadVarint(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("decode of freshly encoded %d: %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
		// The buffer-based decoder must agree and consume exactly the
		// encoding.
		got2, rest, err := readVarintBytes(enc)
		if err != nil || got2 != v || len(rest) != 0 {
			t.Fatalf("readVarintBytes(%x) = %d, rest %d, err %v", enc, got2, len(rest), err)
		}
	})
}

// FuzzVarintDecode: arbitrary bytes must never panic the decoders, and on
// success a re-encode must decode to the same value.
func FuzzVarintDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x80})                               // truncated continuation
	f.Add([]byte{0x80, 0x00})                         // non-canonical zero
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // too long
	f.Fuzz(func(t *testing.T, data []byte) {
		v, _, err := readVarintBytes(data)
		if err != nil {
			return
		}
		enc := AppendVarint(nil, v)
		v2, _, err := readVarintBytes(enc)
		if err != nil || v2 != v {
			t.Fatalf("canonical re-encode of %d decodes to %d (err %v)", v, v2, err)
		}
	})
}

// fuzzSeedPackets returns one populated instance of every packet type, so
// the corpus covers each body layout.
func fuzzSeedPackets() []Packet {
	return []Packet{
		&Handshake{Version: ProtocolVersion},
		&Login{Name: "player-01"},
		&LoginSuccess{PlayerID: 17, X: 8.5, Y: 11, Z: 8.5},
		&KeepAlive{Nonce: 1 << 40},
		&Chat{Sender: "bot", Text: "probe-000001", SentUnixNano: 1234567890},
		&PlayerMove{X: 1.5, Y: -2.25, Z: 1e9},
		&PlayerAction{Action: ActionPlace, X: -3, Y: 12, Z: 40, BlockID: 7},
		&BlockChange{X: 100, Y: 30, Z: -100, BlockID: 3, Meta: 9},
		&ChunkData{ChunkX: -5, ChunkZ: 12, Data: []byte{1, 2, 3, 4}},
		&SpawnEntity{EntityID: 9999, Kind: 2, X: 0.1, Y: 0.2, Z: 0.3},
		&EntityMove{EntityID: 1 << 20, X: -1, Y: 64, Z: 3.25},
		&DestroyEntity{EntityID: 42},
		&PlayerPosition{X: 5, Y: 6, Z: 7},
		&TimeUpdate{Tick: 1 << 33},
		&Disconnect{Reason: "bad handshake"},
		&EntityMoveRel{EntityID: 7, DX: -128, DY: 127, DZ: 1},
		&WorldStream{Data: bytes.Repeat([]byte{0xAB}, 64)},
	}
}

// FuzzPacketDecode: for every packet ID, arbitrary bodies must never panic
// UnmarshalBody, and any body that decodes must re-marshal canonically:
// marshal(decode(body)) must itself decode and re-marshal to the same bytes.
func FuzzPacketDecode(f *testing.F) {
	for _, p := range fuzzSeedPackets() {
		f.Add(int32(p.ID()), p.MarshalBody(nil))
	}
	f.Add(int32(IDChat), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // oversized string length
	f.Add(int32(IDChunkData), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0x7F})
	f.Fuzz(func(t *testing.T, id int32, body []byte) {
		p1, err := New(PacketID(id))
		if err != nil {
			return // unknown ID: nothing to decode
		}
		if p1.UnmarshalBody(body) != nil {
			return // malformed body rejected: fine
		}
		b1 := p1.MarshalBody(nil)
		p2, _ := New(PacketID(id))
		if err := p2.UnmarshalBody(b1); err != nil {
			t.Fatalf("id %#x: canonical re-marshal does not decode: %v\nbody: %x\nremarshal: %x",
				id, err, body, b1)
		}
		if b2 := p2.MarshalBody(nil); !bytes.Equal(b1, b2) {
			t.Fatalf("id %#x: re-marshal not canonical:\nfirst:  %x\nsecond: %x", id, b1, b2)
		}
	})
}

// FuzzPacketRoundTrip drives the framed codec end to end: a marshaled
// packet written as a frame must read back as the same packet type with the
// same canonical body.
func FuzzPacketRoundTrip(f *testing.F) {
	for _, p := range fuzzSeedPackets() {
		f.Add(int32(p.ID()), p.MarshalBody(nil))
	}
	f.Fuzz(func(t *testing.T, id int32, body []byte) {
		p, err := New(PacketID(id))
		if err != nil || p.UnmarshalBody(body) != nil {
			return
		}
		var buf bytes.Buffer
		conn := NewConn(rwc{&buf})
		if _, err := conn.WritePacket(p); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, n, err := conn.ReadPacket()
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if n <= 0 {
			t.Fatalf("frame size %d", n)
		}
		if got.ID() != p.ID() {
			t.Fatalf("round trip changed packet ID %#x -> %#x", p.ID(), got.ID())
		}
		if !bytes.Equal(got.MarshalBody(nil), p.MarshalBody(nil)) {
			t.Fatalf("round trip changed body for ID %#x", p.ID())
		}
	})
}

// rwc adapts a buffer into the ReadWriteCloser a Conn wants.
type rwc struct{ *bytes.Buffer }

func (rwc) Close() error { return nil }
