package bot

import (
	"net"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

func TestIdleBotOnlyProbes(t *testing.T) {
	b := New(Config{Name: "idle", Behavior: Idle, ProbeEvery: time.Second, Seed: 1})
	now := time.Unix(100, 0)
	acts := b.Actions(now)
	if len(acts) != 1 {
		t.Fatalf("first tick actions = %d, want 1 (probe)", len(acts))
	}
	if _, ok := acts[0].(*protocol.Chat); !ok {
		t.Fatalf("expected chat probe, got %T", acts[0])
	}
	// Within the probe interval: nothing.
	if acts := b.Actions(now.Add(50 * time.Millisecond)); len(acts) != 0 {
		t.Fatalf("idle bot emitted %d actions between probes", len(acts))
	}
	// After the interval: another probe with increasing sequence.
	acts = b.Actions(now.Add(time.Second))
	if len(acts) != 1 {
		t.Fatal("second probe missing")
	}
	if acts[0].(*protocol.Chat).Text == "probe-000001" {
		// first was 000001, second must differ
		t.Fatal("probe sequence not advancing")
	}
}

func TestRandomWalkStaysInArea(t *testing.T) {
	b := New(Config{
		Name: "walker", Behavior: RandomWalk, Seed: 3,
		AreaOriginX: 100, AreaOriginZ: 200, AreaSide: 32, BaseY: 11,
	})
	now := time.Unix(0, 0)
	for i := 0; i < 5000; i++ {
		now = now.Add(50 * time.Millisecond)
		for _, pkt := range b.Actions(now) {
			if mv, ok := pkt.(*protocol.PlayerMove); ok {
				if mv.X < 100 || mv.X > 132 || mv.Z < 200 || mv.Z > 232 {
					t.Fatalf("bot left area at (%v, %v)", mv.X, mv.Z)
				}
				if mv.Y != 11 {
					t.Fatalf("bot changed height: %v", mv.Y)
				}
			}
		}
	}
	x, _, z := b.Position()
	if x == 116 && z == 216 {
		t.Fatal("bot never moved from centre")
	}
}

func TestBotDeterminism(t *testing.T) {
	mk := func() []protocol.Packet {
		b := New(Config{Name: "d", Behavior: RandomWalk, Seed: 42, ProbeEvery: time.Second})
		var all []protocol.Packet
		now := time.Unix(0, 0)
		for i := 0; i < 200; i++ {
			now = now.Add(50 * time.Millisecond)
			all = append(all, b.Actions(now)...)
		}
		return all
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		am, aok := a[i].(*protocol.PlayerMove)
		bm, bok := b[i].(*protocol.PlayerMove)
		if aok != bok {
			t.Fatalf("packet %d types differ", i)
		}
		if aok && *am != *bm {
			t.Fatalf("packet %d differs: %+v vs %+v", i, am, bm)
		}
	}
}

func TestSwarmConstruction(t *testing.T) {
	s := NewSwarm(25, RandomWalk, time.Second, 9)
	if len(s.Bots) != 25 {
		t.Fatalf("swarm size = %d", len(s.Bots))
	}
	names := map[string]bool{}
	for _, b := range s.Bots {
		if names[b.Name()] {
			t.Fatalf("duplicate bot name %s", b.Name())
		}
		names[b.Name()] = true
	}
	// Different seeds: two bots must diverge.
	now := time.Unix(0, 0).Add(50 * time.Millisecond)
	a := s.Bots[0].Actions(now)
	b := s.Bots[1].Actions(now)
	if len(a) > 0 && len(b) > 0 {
		am, aok := a[0].(*protocol.PlayerMove)
		bm, bok := b[0].(*protocol.PlayerMove)
		if aok && bok && *am == *bm {
			t.Fatal("two bots moved identically on first tick")
		}
	}
}

func TestClientAgainstRealServer(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	srv := server.New(w, server.DefaultConfig(server.Vanilla), nil, env.RealClock{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	go func() {
		for i := 0; i < 100; i++ {
			srv.Tick()
		}
	}()
	defer func() { srv.Stop(); ln.Close() }()

	c, err := Connect(ln.Addr().String(), Config{
		Name: "bot-00", Behavior: RandomWalk,
		AreaOriginX: 0, AreaOriginZ: 0, AreaSide: 32, BaseY: 11,
		ProbeEvery: 100 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.After(5 * time.Second)
	for {
		if probes := c.Probes(); len(probes) >= 2 {
			for _, p := range probes {
				if p.RTT <= 0 {
					t.Fatalf("non-positive RTT: %v", p.RTT)
				}
				if p.RTT > 2*time.Second {
					t.Fatalf("implausible RTT on loopback: %v", p.RTT)
				}
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("collected %d probes, want >= 2", len(c.Probes()))
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestConnectRejectsBadServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Close() // slam the door
	}()
	if _, err := Connect(ln.Addr().String(), Config{Name: "x"}); err == nil {
		t.Fatal("expected connect error against closing server")
	}
}
