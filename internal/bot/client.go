package bot

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/protocol"
)

// Client runs one bot over a real TCP connection: the Yardstick-style
// emulation used against live servers (cmd/botswarm).
type Client struct {
	bot  *Bot
	conn *protocol.Conn

	mu     sync.Mutex
	probes []Probe
	done   chan struct{}
	once   sync.Once
}

// Connect dials the server, performs the handshake and login, and returns a
// running client. The read loop runs until Close or a connection error.
func Connect(addr string, cfg Config) (*Client, error) {
	conn, err := protocol.Dial(addr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.WritePacket(&protocol.Handshake{Version: protocol.ProtocolVersion}); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.WritePacket(&protocol.Login{Name: cfg.Name}); err != nil {
		conn.Close()
		return nil, err
	}
	pkt, _, err := conn.ReadPacket()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if _, ok := pkt.(*protocol.LoginSuccess); !ok {
		conn.Close()
		return nil, fmt.Errorf("bot %s: expected LoginSuccess, got %T", cfg.Name, pkt)
	}

	c := &Client{bot: New(cfg), conn: conn, done: make(chan struct{})}
	go c.readLoop()
	go c.actLoop()
	return c, nil
}

// readLoop consumes server traffic, completing probes on self-echoed chats
// and answering keep-alives.
func (c *Client) readLoop() {
	for {
		pkt, _, err := c.conn.ReadPacket()
		if err != nil {
			c.Close()
			return
		}
		switch p := pkt.(type) {
		case *protocol.Chat:
			if p.Sender == c.bot.Name() && p.SentUnixNano > 0 {
				sent := time.Unix(0, p.SentUnixNano)
				c.mu.Lock()
				c.probes = append(c.probes, Probe{
					Bot: c.bot.Name(), SentAt: sent, RTT: time.Since(sent),
				})
				c.mu.Unlock()
			}
		case *protocol.KeepAlive:
			c.conn.WritePacket(p)
		case *protocol.Disconnect:
			c.Close()
			return
		}
	}
}

// actLoop emits the bot's behaviour at the game-tick cadence.
func (c *Client) actLoop() {
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case now := <-t.C:
			for _, pkt := range c.bot.Actions(now) {
				if _, err := c.conn.WritePacket(pkt); err != nil {
					c.Close()
					return
				}
			}
		}
	}
}

// Probes returns the response-time measurements collected so far.
func (c *Client) Probes() []Probe {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Probe(nil), c.probes...)
}

// Close terminates the client.
func (c *Client) Close() {
	c.once.Do(func() {
		close(c.done)
		c.conn.Close()
	})
}
