package bot

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
)

// Client runs one bot over a real TCP connection: the Yardstick-style
// emulation used against live servers (cmd/botswarm).
type Client struct {
	bot  *Bot
	conn *protocol.Conn

	// paused stops the read loop from draining the socket — a frozen client
	// whose kernel receive buffer fills, the peer-fault case the server's
	// async writers must survive. readDelay (nanoseconds) throttles a slow
	// reader instead of stopping it.
	paused    atomic.Bool
	readDelay atomic.Int64

	mu     sync.Mutex
	probes []Probe
	done   chan struct{}
	once   sync.Once
}

// Connect dials the server, performs the handshake and login, and returns a
// running client. The read loop runs until Close or a connection error.
func Connect(addr string, cfg Config) (*Client, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.ReadBuffer > 0 {
		if tc, ok := raw.(*net.TCPConn); ok {
			tc.SetReadBuffer(cfg.ReadBuffer)
		}
	}
	conn := protocol.NewConn(raw)
	if _, err := conn.WritePacket(&protocol.Handshake{Version: protocol.ProtocolVersion}); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.WritePacket(&protocol.Login{Name: cfg.Name}); err != nil {
		conn.Close()
		return nil, err
	}
	pkt, _, err := conn.ReadPacket()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if _, ok := pkt.(*protocol.LoginSuccess); !ok {
		conn.Close()
		return nil, fmt.Errorf("bot %s: expected LoginSuccess, got %T", cfg.Name, pkt)
	}

	c := &Client{bot: New(cfg), conn: conn, done: make(chan struct{})}
	go c.readLoop()
	go c.actLoop()
	return c, nil
}

// readLoop consumes server traffic, completing probes on self-echoed chats
// and answering keep-alives.
func (c *Client) readLoop() {
	for {
		for c.paused.Load() {
			select {
			case <-c.done:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		if d := c.readDelay.Load(); d > 0 {
			select {
			case <-c.done:
				return
			case <-time.After(time.Duration(d)):
			}
		}
		pkt, _, err := c.conn.ReadPacket()
		if err != nil {
			c.Close()
			return
		}
		switch p := pkt.(type) {
		case *protocol.Chat:
			if p.Sender == c.bot.Name() && p.SentUnixNano > 0 {
				sent := time.Unix(0, p.SentUnixNano)
				c.mu.Lock()
				c.probes = append(c.probes, Probe{
					Bot: c.bot.Name(), SentAt: sent, RTT: time.Since(sent),
				})
				c.mu.Unlock()
			}
		case *protocol.KeepAlive:
			c.conn.WritePacket(p)
		case *protocol.Disconnect:
			c.Close()
			return
		}
	}
}

// actLoop emits the bot's behaviour at the game-tick cadence.
func (c *Client) actLoop() {
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case now := <-t.C:
			for _, pkt := range c.bot.Actions(now) {
				if _, err := c.conn.WritePacket(pkt); err != nil {
					c.Close()
					return
				}
			}
		}
	}
}

// PauseReads freezes the client's read loop: the socket stops draining, the
// kernel receive buffer fills, and the server's outbound path for this peer
// backs up — the stalled-peer fault the swarm benchmark injects.
func (c *Client) PauseReads() { c.paused.Store(true) }

// ResumeReads restarts a paused read loop.
func (c *Client) ResumeReads() { c.paused.Store(false) }

// SetReadDelay throttles the read loop to one packet per d — a slow (but not
// stalled) consumer. Zero removes the throttle.
func (c *Client) SetReadDelay(d time.Duration) { c.readDelay.Store(int64(d)) }

// Done is closed when the client terminates (Close, server disconnect, or a
// connection error).
func (c *Client) Done() <-chan struct{} { return c.done }

// Probes returns the response-time measurements collected so far.
func (c *Client) Probes() []Probe {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Probe(nil), c.probes...)
}

// Close terminates the client.
func (c *Client) Close() {
	c.once.Do(func() {
		close(c.done)
		c.conn.Close()
	})
}
