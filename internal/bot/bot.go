// Package bot implements Meterstick's player emulation (component 5 of
// Figure 5), adapted from the Yardstick benchmark the paper builds on: a
// swarm of emulated players that connect to the MLG, walk with bounded
// random movement inside a configurable square (§3.4.1: 25 players in a
// 32×32 area), and measure game response time with the chat-echo probe of
// §3.5.1 (send a chat message to all players including yourself, record how
// long your own message takes to come back).
//
// Bots run in two modes sharing the same behaviour model:
//
//   - Virtual: the benchmark runner injects each bot's per-tick actions
//     straight into the server's networking queue with simulated uplink
//     latency, and completes probes from the server's chat echoes plus
//     downlink latency. Deterministic and fast; used by all experiment
//     reproduction.
//   - Real: each bot owns a TCP connection and speaks the wire protocol
//     against a live server (cmd/botswarm).
package bot

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/protocol"
)

// Behavior selects what a bot does each tick.
type Behavior int

// Behaviors.
const (
	// Idle bots connect and send only chat probes — the single
	// no-action player of the environment-based workloads (§3.3.1).
	Idle Behavior = iota
	// RandomWalk bots move randomly within the configured square each
	// tick — the player-based workload (§3.4.1).
	RandomWalk
)

// Config parameterizes one bot.
type Config struct {
	// Name is the bot's player name.
	Name string
	// Behavior selects idle or random-walk behaviour.
	Behavior Behavior
	// AreaOrigin and AreaSide bound the random walk: a square of
	// AreaSide×AreaSide blocks starting at AreaOrigin (x, z).
	AreaOriginX, AreaOriginZ float64
	AreaSide                 float64
	// BaseY is the walking height.
	BaseY float64
	// ProbeEvery is the interval between chat response-time probes; zero
	// disables probing.
	ProbeEvery time.Duration
	// Seed makes the bot's movement deterministic.
	Seed int64
	// ReadBuffer, when > 0, shrinks the TCP receive buffer of a real
	// connection (bot.Connect) so paused or slow readers exert backpressure
	// on the server within a test-sized window instead of hiding behind
	// kernel buffering. Zero keeps the OS default.
	ReadBuffer int
}

// Probe is one completed response-time measurement.
type Probe struct {
	Bot    string
	SentAt time.Time
	RTT    time.Duration
}

// Bot is the deterministic behaviour core shared by both modes: it decides,
// tick by tick, what the emulated player does.
type Bot struct {
	cfg       Config
	rng       *rand.Rand
	x, z      float64
	lastProbe time.Time
	seq       int
}

// New creates a bot behaviour core. The bot starts at the centre of its
// movement area.
func New(cfg Config) *Bot {
	if cfg.AreaSide <= 0 {
		cfg.AreaSide = 32
	}
	if cfg.BaseY == 0 {
		cfg.BaseY = 11
	}
	return &Bot{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		x:   cfg.AreaOriginX + cfg.AreaSide/2,
		z:   cfg.AreaOriginZ + cfg.AreaSide/2,
	}
}

// Name returns the bot's player name.
func (b *Bot) Name() string { return b.cfg.Name }

// Actions returns the packets the bot emits for a tick starting at now.
// Movement produces a PlayerMove; a due probe produces a Chat whose
// SentUnixNano timestamps the probe.
func (b *Bot) Actions(now time.Time) []protocol.Packet {
	var out []protocol.Packet

	if b.cfg.Behavior == RandomWalk {
		// Bounded random walk: a step of up to ±1 block per axis per tick,
		// clamped to the area.
		b.x = clamp(b.x+(b.rng.Float64()*2-1), b.cfg.AreaOriginX, b.cfg.AreaOriginX+b.cfg.AreaSide)
		b.z = clamp(b.z+(b.rng.Float64()*2-1), b.cfg.AreaOriginZ, b.cfg.AreaOriginZ+b.cfg.AreaSide)
		out = append(out, &protocol.PlayerMove{X: b.x, Y: b.cfg.BaseY, Z: b.z})
	}

	if b.cfg.ProbeEvery > 0 && now.Sub(b.lastProbe) >= b.cfg.ProbeEvery {
		b.lastProbe = now
		b.seq++
		out = append(out, &protocol.Chat{
			Sender:       b.cfg.Name,
			Text:         fmt.Sprintf("probe-%06d", b.seq),
			SentUnixNano: now.UnixNano(),
		})
	}
	return out
}

// Position returns the bot's current coordinates.
func (b *Bot) Position() (x, y, z float64) { return b.x, b.cfg.BaseY, b.z }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Swarm is a set of bots with shared defaults, as the Configuration's
// "Number of Bots" and "Behavior" parameters describe (Table 4).
type Swarm struct {
	Bots []*Bot
}

// NewSwarm creates n bots named bot-00..bot-n, seeded deterministically
// from base seed, all confined to the same area.
func NewSwarm(n int, behavior Behavior, probeEvery time.Duration, seed int64) *Swarm {
	s := &Swarm{}
	for i := 0; i < n; i++ {
		s.Bots = append(s.Bots, New(Config{
			Name:       fmt.Sprintf("bot-%02d", i),
			Behavior:   behavior,
			AreaSide:   32,
			BaseY:      11,
			ProbeEvery: probeEvery,
			Seed:       seed + int64(i)*7919,
		}))
	}
	return s
}
