package control

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Controller is the Control Server (Figure 5, component 3): it accepts
// worker connections and synchronizes them with Table 1 messages, awaiting
// an ok/err acknowledgement for each command.
type Controller struct {
	mu      sync.Mutex
	workers []*workerConn
	accept  chan *workerConn
}

type workerConn struct {
	conn net.Conn
	bw   *bufio.Writer
	// replies receives ok/err acknowledgements from the worker.
	replies chan Message
}

// NewController returns an idle controller.
func NewController() *Controller {
	return &Controller{accept: make(chan *workerConn, 16)}
}

// Serve accepts worker connections until the listener closes.
func (c *Controller) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		w := &workerConn{
			conn:    conn,
			bw:      bufio.NewWriter(conn),
			replies: make(chan Message, 4),
		}
		c.mu.Lock()
		c.workers = append(c.workers, w)
		c.mu.Unlock()
		go w.readLoop()
		select {
		case c.accept <- w:
		default:
		}
	}
}

func (w *workerConn) readLoop() {
	sc := bufio.NewScanner(w.conn)
	for sc.Scan() {
		m, err := Parse(sc.Text())
		if err != nil {
			continue
		}
		if m.Type == MsgOK || m.Type == MsgErr {
			w.replies <- m
		}
	}
	close(w.replies)
}

// WaitForWorkers blocks until n workers have connected or the timeout
// elapses.
func (c *Controller) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.After(timeout)
	for {
		c.mu.Lock()
		have := len(c.workers)
		c.mu.Unlock()
		if have >= n {
			return nil
		}
		select {
		case <-c.accept:
		case <-deadline:
			return fmt.Errorf("control: %d of %d workers connected before timeout", have, n)
		}
	}
}

// WorkerCount returns the number of connected workers.
func (c *Controller) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Send transmits a message to worker idx and waits for its ok/err
// acknowledgement. keep_alive and exit are fire-and-forget.
func (c *Controller) Send(idx int, m Message) error {
	c.mu.Lock()
	if idx < 0 || idx >= len(c.workers) {
		c.mu.Unlock()
		return fmt.Errorf("control: no worker %d", idx)
	}
	w := c.workers[idx]
	c.mu.Unlock()

	w.bw.WriteString(m.String())
	w.bw.WriteByte('\n')
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("control: send to worker %d: %w", idx, err)
	}
	if m.Type == MsgKeepAlive || m.Type == MsgExit {
		return nil
	}
	reply, ok := <-w.replies
	if !ok {
		return fmt.Errorf("control: worker %d disconnected awaiting ack", idx)
	}
	if reply.Type == MsgErr {
		return fmt.Errorf("control: worker %d: %s", idx, reply.Arg)
	}
	return nil
}

// Broadcast sends a message to every worker, failing on the first error.
func (c *Controller) Broadcast(m Message) error {
	c.mu.Lock()
	n := len(c.workers)
	c.mu.Unlock()
	for i := 0; i < n; i++ {
		if err := c.Send(i, m); err != nil {
			return err
		}
	}
	return nil
}

// Worker is the node-side surface a Control Client drives: the lifecycle
// hooks behind each Table 1 command. The MLG node implements the server
// hooks; player-emulation nodes implement Connect/Convert.
type Worker interface {
	// SetServer selects the MLG flavor to run.
	SetServer(name string) error
	// SetJMX points the metric externalizer at the given endpoint.
	SetJMX(url string) error
	// SetIteration positions the experiment at an iteration index.
	SetIteration(iter string) error
	// Initialize starts the selected server.
	Initialize() error
	// LogStart and LogStop control the metric logging tools.
	LogStart() error
	LogStop() error
	// StopServer stops the running server.
	StopServer() error
	// Connect starts player emulation.
	Connect() error
	// Convert post-processes metric files.
	Convert() error
	// Exit tells the worker process to shut down.
	Exit()
}

// Client is a Control Client (Figure 5, component 4): it connects to the
// controller, dispatches incoming commands to its Worker, and acknowledges
// each with ok or err.
type Client struct {
	conn net.Conn
	w    Worker
	done chan struct{}
	once sync.Once
}

// NewClient connects a worker to the controller at addr and starts the
// dispatch loop.
func NewClient(addr string, w Worker) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("control: dial controller: %w", err)
	}
	c := &Client{conn: conn, w: w, done: make(chan struct{})}
	go c.loop()
	return c, nil
}

func (c *Client) loop() {
	sc := bufio.NewScanner(c.conn)
	bw := bufio.NewWriter(c.conn)
	reply := func(m Message) {
		bw.WriteString(m.String())
		bw.WriteByte('\n')
		bw.Flush()
	}
	for sc.Scan() {
		m, err := Parse(sc.Text())
		if err != nil {
			reply(Message{Type: MsgErr, Arg: err.Error()})
			continue
		}
		switch m.Type {
		case MsgKeepAlive:
			continue
		case MsgExit:
			c.w.Exit()
			c.Close()
			return
		}
		if err := c.dispatch(m); err != nil {
			reply(Message{Type: MsgErr, Arg: err.Error()})
		} else {
			reply(Message{Type: MsgOK})
		}
	}
}

func (c *Client) dispatch(m Message) error {
	switch m.Type {
	case MsgSetServer:
		return c.w.SetServer(m.Arg)
	case MsgSetJMX:
		return c.w.SetJMX(m.Arg)
	case MsgIter:
		return c.w.SetIteration(m.Arg)
	case MsgInitialize:
		return c.w.Initialize()
	case MsgLogStart:
		return c.w.LogStart()
	case MsgLogStop:
		return c.w.LogStop()
	case MsgStopServer:
		return c.w.StopServer()
	case MsgConnect:
		return c.w.Connect()
	case MsgConvert:
		return c.w.Convert()
	default:
		return fmt.Errorf("control: unexpected command %q", m.Type)
	}
}

// Done reports a channel closed when the client exits.
func (c *Client) Done() <-chan struct{} { return c.done }

// Close terminates the client connection.
func (c *Client) Close() {
	c.once.Do(func() {
		close(c.done)
		c.conn.Close()
	})
}

// RunIteration drives one benchmark iteration over the control plane,
// exactly in the order the paper's Control Server uses: position both
// nodes at the iteration, initialize the MLG, start logging, start player
// emulation, wait out the duration, stop logging, stop the server, convert
// metrics. serverIdx and emulationIdx identify the two workers.
func (c *Controller) RunIteration(serverIdx, emulationIdx, iter int, flavor string, duration time.Duration) error {
	steps := []struct {
		idx int
		msg Message
	}{
		{serverIdx, Message{Type: MsgSetServer, Arg: flavor}},
		{emulationIdx, Message{Type: MsgSetServer, Arg: flavor}},
		{serverIdx, Message{Type: MsgIter, Arg: fmt.Sprint(iter)}},
		{emulationIdx, Message{Type: MsgIter, Arg: fmt.Sprint(iter)}},
		{serverIdx, Message{Type: MsgInitialize}},
		{serverIdx, Message{Type: MsgLogStart}},
		{emulationIdx, Message{Type: MsgConnect}},
	}
	for _, st := range steps {
		if err := c.Send(st.idx, st.msg); err != nil {
			return err
		}
	}
	time.Sleep(duration)
	tail := []struct {
		idx int
		msg Message
	}{
		{serverIdx, Message{Type: MsgLogStop}},
		{serverIdx, Message{Type: MsgStopServer}},
		{emulationIdx, Message{Type: MsgConvert}},
	}
	for _, st := range tail {
		if err := c.Send(st.idx, st.msg); err != nil {
			return err
		}
	}
	return nil
}
