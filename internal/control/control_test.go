package control

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestMessageRoundTrip(t *testing.T) {
	cases := []Message{
		{Type: MsgSetServer, Arg: "PaperMC"},
		{Type: MsgSetJMX, Arg: "service:jmx:rmi:///jndi/rmi://10.0.0.1:25585/jmxrmi"},
		{Type: MsgIter, Arg: "7"},
		{Type: MsgInitialize},
		{Type: MsgLogStart},
		{Type: MsgLogStop},
		{Type: MsgStopServer},
		{Type: MsgConnect},
		{Type: MsgConvert},
		{Type: MsgOK},
		{Type: MsgKeepAlive},
		{Type: MsgErr, Arg: "boom: something failed"},
		{Type: MsgExit},
	}
	for _, m := range cases {
		got, err := Parse(m.String() + "\n")
		if err != nil {
			t.Fatalf("parse %q: %v", m.String(), err)
		}
		if got != m {
			t.Errorf("round trip %q -> %+v", m.String(), got)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "\n", "frobnicate", "bogus:arg"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParseArgWithColons(t *testing.T) {
	m, err := Parse("set_jmx:host:port:path")
	if err != nil {
		t.Fatal(err)
	}
	if m.Arg != "host:port:path" {
		t.Fatalf("arg = %q", m.Arg)
	}
}

func TestTable1Complete(t *testing.T) {
	rows := Table1()
	if len(rows) != 13 {
		t.Fatalf("Table 1 rows = %d, want 13", len(rows))
	}
	seen := map[MsgType]bool{}
	for _, r := range rows {
		if seen[r.Type] {
			t.Errorf("duplicate row %q", r.Type)
		}
		seen[r.Type] = true
		if r.Effect == "" || len(r.Dest) == 0 {
			t.Errorf("incomplete row: %+v", r)
		}
	}
}

// recordingWorker records the commands it receives, optionally failing one.
type recordingWorker struct {
	mu     sync.Mutex
	calls  []string
	failOn string
	exited bool
}

func (r *recordingWorker) record(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, name)
	if name == r.failOn {
		return fmt.Errorf("induced failure in %s", name)
	}
	return nil
}
func (r *recordingWorker) SetServer(n string) error    { return r.record("set_server:" + n) }
func (r *recordingWorker) SetJMX(u string) error       { return r.record("set_jmx") }
func (r *recordingWorker) SetIteration(i string) error { return r.record("iter:" + i) }
func (r *recordingWorker) Initialize() error           { return r.record("initialize") }
func (r *recordingWorker) LogStart() error             { return r.record("log_start") }
func (r *recordingWorker) LogStop() error              { return r.record("log_stop") }
func (r *recordingWorker) StopServer() error           { return r.record("stop_server") }
func (r *recordingWorker) Connect() error              { return r.record("connect") }
func (r *recordingWorker) Convert() error              { return r.record("convert") }
func (r *recordingWorker) Exit() {
	r.mu.Lock()
	r.exited = true
	r.mu.Unlock()
}
func (r *recordingWorker) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.calls...)
}

func startControlPlane(t *testing.T, workers ...*recordingWorker) (*Controller, []*Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	ctrl := NewController()
	go ctrl.Serve(ln)

	var clients []*Client
	for _, w := range workers {
		c, err := NewClient(ln.Addr().String(), w)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		clients = append(clients, c)
	}
	if err := ctrl.WaitForWorkers(len(workers), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return ctrl, clients
}

func TestFullIterationSequence(t *testing.T) {
	srv := &recordingWorker{}
	emu := &recordingWorker{}
	ctrl, _ := startControlPlane(t, srv, emu)

	if err := ctrl.RunIteration(0, 1, 3, "Forge", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	wantSrv := []string{"set_server:Forge", "iter:3", "initialize", "log_start", "log_stop", "stop_server"}
	gotSrv := srv.snapshot()
	if len(gotSrv) != len(wantSrv) {
		t.Fatalf("server calls = %v, want %v", gotSrv, wantSrv)
	}
	for i := range wantSrv {
		if gotSrv[i] != wantSrv[i] {
			t.Fatalf("server call %d = %q, want %q", i, gotSrv[i], wantSrv[i])
		}
	}
	wantEmu := []string{"set_server:Forge", "iter:3", "connect", "convert"}
	gotEmu := emu.snapshot()
	if len(gotEmu) != len(wantEmu) {
		t.Fatalf("emulation calls = %v, want %v", gotEmu, wantEmu)
	}
}

func TestErrPropagation(t *testing.T) {
	srv := &recordingWorker{failOn: "initialize"}
	ctrl, _ := startControlPlane(t, srv)
	if err := ctrl.Send(0, Message{Type: MsgInitialize}); err == nil {
		t.Fatal("expected error from failing worker")
	}
	// The control plane must remain usable after an error.
	if err := ctrl.Send(0, Message{Type: MsgLogStart}); err != nil {
		t.Fatalf("control plane dead after error: %v", err)
	}
}

func TestKeepAliveAndExit(t *testing.T) {
	w := &recordingWorker{}
	ctrl, clients := startControlPlane(t, w)
	// Keep-alives are fire-and-forget no-ops.
	if err := ctrl.Send(0, Message{Type: MsgKeepAlive}); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Send(0, Message{Type: MsgExit}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-clients[0].Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client did not exit")
	}
	w.mu.Lock()
	exited := w.exited
	w.mu.Unlock()
	if !exited {
		t.Fatal("worker Exit hook not called")
	}
}

func TestBroadcast(t *testing.T) {
	a, b := &recordingWorker{}, &recordingWorker{}
	ctrl, _ := startControlPlane(t, a, b)
	if err := ctrl.Broadcast(Message{Type: MsgLogStart}); err != nil {
		t.Fatal(err)
	}
	if len(a.snapshot()) != 1 || len(b.snapshot()) != 1 {
		t.Fatal("broadcast did not reach all workers")
	}
}

func TestWaitForWorkersTimeout(t *testing.T) {
	ctrl := NewController()
	if err := ctrl.WaitForWorkers(1, 50*time.Millisecond); err == nil {
		t.Fatal("expected timeout with no workers")
	}
}

func TestSendToUnknownWorker(t *testing.T) {
	ctrl := NewController()
	if err := ctrl.Send(3, Message{Type: MsgLogStart}); err == nil {
		t.Fatal("expected error for unknown worker index")
	}
}
