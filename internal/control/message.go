// Package control implements Meterstick's control plane (Figure 5,
// components 3 and 4): a Controller/Worker pattern in which the Control
// Server holds the operation logic and synchronizes the workers (player-
// emulation nodes and the MLG node) by exchanging exactly the messages
// listed in Table 1 of the paper, as a newline-delimited text protocol over
// TCP.
package control

import (
	"fmt"
	"strings"
)

// MsgType is a control-message type (Table 1).
type MsgType string

// The Table 1 message set.
const (
	MsgSetServer  MsgType = "set_server"  // specifies name of server (Y/M)
	MsgSetJMX     MsgType = "set_jmx"     // specifies metric-externalizer URL (M)
	MsgIter       MsgType = "iter"        // specifies what iteration to start at (Y/M)
	MsgInitialize MsgType = "initialize"  // starts the selected server (M)
	MsgLogStart   MsgType = "log_start"   // starts metric logging tools (M)
	MsgLogStop    MsgType = "log_stop"    // stops metric logging tools (M)
	MsgStopServer MsgType = "stop_server" // stops running server (M)
	MsgConnect    MsgType = "connect"     // starts player emulation (Y)
	MsgConvert    MsgType = "convert"     // converts metric bin files to CSV (Y)
	MsgOK         MsgType = "ok"          // acknowledges the previous message (C)
	MsgKeepAlive  MsgType = "keep_alive"  // no-op, keeps TCP connection open (M/Y)
	MsgErr        MsgType = "err"         // previous message has caused error (C)
	MsgExit       MsgType = "exit"        // stops the controller client (M/Y)
)

// Message is one control-plane message: a type plus an optional argument
// (the part after the colon in "set_server:vanilla").
type Message struct {
	Type MsgType
	Arg  string
}

// String formats the message for the wire (without the trailing newline).
func (m Message) String() string {
	if m.Arg == "" {
		return string(m.Type)
	}
	return string(m.Type) + ":" + m.Arg
}

// Parse decodes one wire line into a Message.
func Parse(line string) (Message, error) {
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return Message{}, fmt.Errorf("control: empty message")
	}
	typ, arg, _ := strings.Cut(line, ":")
	m := Message{Type: MsgType(typ), Arg: arg}
	if !m.valid() {
		return Message{}, fmt.Errorf("control: unknown message type %q", typ)
	}
	return m, nil
}

func (m Message) valid() bool {
	switch m.Type {
	case MsgSetServer, MsgSetJMX, MsgIter, MsgInitialize, MsgLogStart,
		MsgLogStop, MsgStopServer, MsgConnect, MsgConvert, MsgOK,
		MsgKeepAlive, MsgErr, MsgExit:
		return true
	default:
		return false
	}
}

// Dest identifies which node kind a message is addressed to, as the Table 1
// "Dest" column: Y = player emulation, M = server (MLG) node, C =
// controller.
type Dest string

// Destinations.
const (
	DestEmulation  Dest = "Y"
	DestServer     Dest = "M"
	DestController Dest = "C"
)

// MessageInfo is one Table 1 row.
type MessageInfo struct {
	Type   MsgType
	Effect string
	Dest   []Dest
}

// Table1 returns the controller-message inventory exactly as in Table 1.
func Table1() []MessageInfo {
	return []MessageInfo{
		{MsgSetServer, "Specifies name of server", []Dest{DestEmulation, DestServer}},
		{MsgSetJMX, "Specifies JMX URL", []Dest{DestServer}},
		{MsgIter, "Specifies what iteration to start at", []Dest{DestEmulation, DestServer}},
		{MsgInitialize, "Starts the selected server", []Dest{DestServer}},
		{MsgLogStart, "Starts metric logging tools", []Dest{DestServer}},
		{MsgLogStop, "Stops metric logging tools", []Dest{DestServer}},
		{MsgStopServer, "Stops running server", []Dest{DestServer}},
		{MsgConnect, "Starts player emulation", []Dest{DestEmulation}},
		{MsgConvert, "Converts metric bin files to CSV", []Dest{DestEmulation}},
		{MsgOK, "Acknowledges the previous message", []Dest{DestController}},
		{MsgKeepAlive, "No-op, keeps TCP connection open", []Dest{DestServer, DestEmulation}},
		{MsgErr, "Previous message has caused error", []Dest{DestController}},
		{MsgExit, "Stops the controller client", []Dest{DestServer, DestEmulation}},
	}
}
