// Package telemetry implements Meterstick's measurement components: the
// Metric Externalizer (component 7 of Figure 5), which reads application-
// level metrics from the MLG through its instrumentation interface (the
// role JMX plays for JVM servers — no access to game internals beyond the
// exposed tick statistics), and the System Metrics Collector (component 8),
// which samples operating-system-level metrics twice per second (Table 5:
// CPU, memory, threads, disk I/O, network I/O).
package telemetry

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/mlg/server"
)

// MetricInfo describes one Table 5 row: a metric Meterstick collects.
type MetricInfo struct {
	// Type is "D" (derived), "A" (application level) or "S" (system level).
	Type        string
	Name        string
	Description string
}

// Table5 returns the metric inventory exactly as listed in Table 5.
func Table5() []MetricInfo {
	return []MetricInfo{
		{Type: "D", Name: "Instability Ratio", Description: "Tick instability (see §4)"},
		{Type: "A", Name: "Response time", Description: "Round trip latency for clients"},
		{Type: "A", Name: "Tick duration", Description: "Duration of each tick"},
		{Type: "A", Name: "Tick distribution", Description: "Tick time by workload"},
		{Type: "S", Name: "CPU", Description: "CPU utilization"},
		{Type: "S", Name: "Memory", Description: "Memory usage"},
		{Type: "S", Name: "Threads", Description: "Thread total"},
		{Type: "S", Name: "Disk I/O", Description: "Bytes read/written"},
		{Type: "S", Name: "Network I/O", Description: "Bytes sent/received"},
	}
}

// Externalizer reads application-level metrics from a running MLG without
// touching its internals, via the server's instrumented tick records.
type Externalizer struct {
	s *server.Server
}

// NewExternalizer attaches to a server.
func NewExternalizer(s *server.Server) *Externalizer { return &Externalizer{s: s} }

// TickTrace returns the tick-duration trace so far.
func (e *Externalizer) TickTrace() []time.Duration { return e.s.TickDurations() }

// TickTraceMS returns the trace in milliseconds.
func (e *Externalizer) TickTraceMS() []float64 {
	return metrics.DurationsToMS(e.s.TickDurations())
}

// Distribution returns the cumulative tick-time split by operation
// category (the Figure 11 data).
func (e *Externalizer) Distribution() server.Fig11Totals { return e.s.Fig11() }

// OverloadedTicks counts ticks that exceeded the 50 ms budget.
func (e *Externalizer) OverloadedTicks() int {
	n := 0
	for _, d := range e.s.TickDurations() {
		if d > server.TickBudget {
			n++
		}
	}
	return n
}

// ISR computes the Instability Ratio of the trace observed so far, for a
// run of the given wall-clock length.
func (e *Externalizer) ISR(runLength time.Duration) float64 {
	return metrics.ISRTrace(e.s.TickDurations(), runLength)
}

// SystemSample is one 2 Hz system-metrics observation (Table 5, S rows).
type SystemSample struct {
	At             time.Time
	CPUPercent     float64
	HeapAllocBytes uint64
	SysBytes       uint64
	Goroutines     int
	Threads        int
	DiskReadBytes  int64
	DiskWriteBytes int64
	NetSentBytes   int64
	NetRecvBytes   int64
}

// SystemCollector samples process- and OS-level metrics. It reads Linux
// /proc where available and falls back to runtime statistics elsewhere, so
// the collector is portable (R7).
type SystemCollector struct {
	lastCPU  time.Duration
	lastWall time.Time
	samples  []SystemSample
}

// NewSystemCollector returns a collector ready to sample.
func NewSystemCollector() *SystemCollector {
	c := &SystemCollector{}
	c.lastCPU = processCPUTime()
	c.lastWall = time.Now()
	return c
}

// Sample takes one observation. netSent/netRecv are supplied by the caller
// (the benchmark knows its connections' counters).
func (c *SystemCollector) Sample(netSent, netRecv int64) SystemSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	now := time.Now()
	cpu := processCPUTime()
	var pct float64
	if wall := now.Sub(c.lastWall); wall > 0 {
		pct = float64(cpu-c.lastCPU) / float64(wall) * 100
	}
	c.lastCPU, c.lastWall = cpu, now

	read, write := processDiskIO()
	s := SystemSample{
		At:             now,
		CPUPercent:     pct,
		HeapAllocBytes: ms.HeapAlloc,
		SysBytes:       ms.Sys,
		Goroutines:     runtime.NumGoroutine(),
		Threads:        processThreads(),
		DiskReadBytes:  read,
		DiskWriteBytes: write,
		NetSentBytes:   netSent,
		NetRecvBytes:   netRecv,
	}
	c.samples = append(c.samples, s)
	return s
}

// Samples returns all observations taken so far.
func (c *SystemCollector) Samples() []SystemSample {
	return append([]SystemSample(nil), c.samples...)
}

// processCPUTime returns the process's cumulative CPU time from
// /proc/self/stat (utime+stime), or 0 when unavailable.
func processCPUTime() time.Duration {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0
	}
	// Fields after the parenthesized comm: utime is field 14, stime 15
	// (1-indexed) in the full line.
	s := string(data)
	close := strings.LastIndexByte(s, ')')
	if close < 0 {
		return 0
	}
	fields := strings.Fields(s[close+1:])
	// fields[0] is state (field 3); utime is fields[11], stime fields[12].
	if len(fields) < 13 {
		return 0
	}
	utime, err1 := strconv.ParseInt(fields[11], 10, 64)
	stime, err2 := strconv.ParseInt(fields[12], 10, 64)
	if err1 != nil || err2 != nil {
		return 0
	}
	const hz = 100 // USER_HZ on virtually all Linux systems
	return time.Duration(utime+stime) * time.Second / hz
}

// processThreads returns the process's OS thread count from
// /proc/self/status, or 0 when unavailable.
func processThreads() int {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "Threads:"); ok {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err == nil {
				return n
			}
			return 0
		}
	}
	return 0
}

// processDiskIO returns cumulative bytes read/written from /proc/self/io,
// or zeros when unavailable.
func processDiskIO() (read, write int64) {
	data, err := os.ReadFile("/proc/self/io")
	if err != nil {
		return 0, 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if v, ok := strings.CutPrefix(line, "read_bytes:"); ok {
			read, _ = strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		}
		if v, ok := strings.CutPrefix(line, "write_bytes:"); ok {
			write, _ = strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		}
	}
	return read, write
}
