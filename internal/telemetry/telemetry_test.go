package telemetry

import (
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
)

func TestTable5Inventory(t *testing.T) {
	rows := Table5()
	if len(rows) != 9 {
		t.Fatalf("Table 5 rows = %d, want 9", len(rows))
	}
	types := map[string]int{}
	for _, r := range rows {
		types[r.Type]++
		if r.Name == "" || r.Description == "" {
			t.Errorf("incomplete row: %+v", r)
		}
	}
	if types["D"] != 1 || types["A"] != 3 || types["S"] != 5 {
		t.Fatalf("type split = %v, want D:1 A:3 S:5", types)
	}
}

func TestExternalizer(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	clock := env.NewVirtualClock(time.Unix(0, 0))
	m := env.NewMachine(env.DAS5TwoCore, 7)
	s := server.New(w, server.DefaultConfig(server.Vanilla), m, clock)
	s.Connect("probe")
	ex := NewExternalizer(s)
	for i := 0; i < 40; i++ {
		s.Tick()
	}
	if got := len(ex.TickTrace()); got != 40 {
		t.Fatalf("trace length = %d", got)
	}
	msTrace := ex.TickTraceMS()
	if len(msTrace) != 40 || msTrace[0] <= 0 {
		t.Fatal("ms trace wrong")
	}
	if ex.OverloadedTicks() < 0 || ex.OverloadedTicks() > 40 {
		t.Fatal("overloaded count out of range")
	}
	if isr := ex.ISR(2 * time.Second); isr < 0 || isr > 1 {
		t.Fatalf("ISR out of range: %v", isr)
	}
	d := ex.Distribution()
	if d.OtherUS <= 0 {
		t.Fatal("no distribution data")
	}
}

func TestSystemCollectorSamples(t *testing.T) {
	c := NewSystemCollector()
	// Burn a little CPU so utilization is measurable.
	x := 0.0
	for i := 0; i < 5_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	s := c.Sample(123, 456)
	if s.HeapAllocBytes == 0 || s.SysBytes == 0 {
		t.Error("memory stats missing")
	}
	if s.Goroutines <= 0 {
		t.Error("goroutine count missing")
	}
	if s.NetSentBytes != 123 || s.NetRecvBytes != 456 {
		t.Error("net counters not passed through")
	}
	if s.CPUPercent < 0 {
		t.Error("negative CPU percent")
	}
	if got := len(c.Samples()); got != 1 {
		t.Fatalf("samples = %d", got)
	}
	// On Linux, /proc readings should be present.
	if s.Threads == 0 {
		t.Log("threads unavailable (non-Linux?); fallback accepted")
	}
}

func TestProcReaders(t *testing.T) {
	// These must never panic and return non-negative values regardless of
	// platform.
	if d := processCPUTime(); d < 0 {
		t.Error("negative CPU time")
	}
	if n := processThreads(); n < 0 {
		t.Error("negative thread count")
	}
	r, w := processDiskIO()
	if r < 0 || w < 0 {
		t.Error("negative disk IO")
	}
}
