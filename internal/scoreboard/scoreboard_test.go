package scoreboard

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

func score(op, mlg string, isr, tick float64) Score {
	return Score{Operator: op, MLG: mlg, Workload: "Farm",
		Environment: "AWS-t3.large", ISR: isr, TickMeanMS: tick}
}

func TestSubmitAndValidate(t *testing.T) {
	b := New()
	if _, err := b.Submit(score("hostco", "PaperMC", 0.03, 22)); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatal("score not stored")
	}
	got := b.Scores()[0]
	if got.SubmittedAt.IsZero() {
		t.Fatal("submission not timestamped")
	}

	bad := []Score{
		{},
		score("", "X", 0.1, 10),
		score("op", "", 0.1, 10),
		{Operator: "op", MLG: "X", Workload: "Farm"}, // missing env
		score("op", "X", -0.1, 10),
		score("op", "X", 1.5, 10),
		score("op", "X", 0.1, -1),
	}
	for i, s := range bad {
		if _, err := b.Submit(s); err == nil {
			t.Errorf("bad score %d accepted", i)
		}
	}
	if b.Len() != 1 {
		t.Fatal("invalid scores stored")
	}
}

func TestRankingsOrderAndDedup(t *testing.T) {
	b := New()
	mustSubmit := func(s Score) {
		t.Helper()
		if _, err := b.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	mustSubmit(score("alpha", "Minecraft", 0.10, 40))
	mustSubmit(score("alpha", "Minecraft", 0.05, 35)) // resubmission: better
	mustSubmit(score("beta", "PaperMC", 0.02, 20))
	mustSubmit(score("gamma", "Forge", 0.02, 50)) // ISR tie: slower ticks
	crashed := score("delta", "Minecraft", 0.9, 900)
	crashed.Crashed = true
	mustSubmit(crashed)
	// Different division must not leak in.
	other := score("omega", "Minecraft", 0.001, 5)
	other.Workload = "Control"
	mustSubmit(other)

	r := b.Rankings(Division{Workload: "Farm", Environment: "AWS-t3.large"})
	if len(r) != 4 {
		t.Fatalf("rankings = %d entries, want 4", len(r))
	}
	if r[0].Operator != "beta" {
		t.Errorf("winner = %s, want beta", r[0].Operator)
	}
	if r[1].Operator != "gamma" {
		t.Errorf("second = %s, want gamma (ISR tie, faster ticks win)", r[1].Operator)
	}
	if r[2].Operator != "alpha" || r[2].ISR != 0.05 {
		t.Errorf("third = %+v, want alpha's best resubmission", r[2])
	}
	if !r[3].Crashed {
		t.Error("crashed run must rank last")
	}
}

func TestDivisions(t *testing.T) {
	b := New()
	b.Submit(score("a", "X", 0.1, 10))
	c := score("a", "X", 0.1, 10)
	c.Workload = "Control"
	b.Submit(c)
	divs := b.Divisions()
	if len(divs) != 2 {
		t.Fatalf("divisions = %d, want 2", len(divs))
	}
	if divs[0].Workload != "Control" {
		t.Error("divisions not sorted")
	}
}

func TestFromResult(t *testing.T) {
	r := core.RunResult{
		Flavor: "PaperMC", Workload: "TNT", Environment: "DAS5-2core",
		ISR:             0.03,
		TickSummary:     metrics.Summarize([]float64{10, 20, 30}),
		ResponseSummary: metrics.Summarize([]float64{40, 50}),
	}
	s := FromResult("hostco", r)
	if s.MLG != "PaperMC" || s.Workload != "TNT" || s.ISR != 0.03 {
		t.Fatalf("conversion wrong: %+v", s)
	}
	if s.TickMeanMS != 20 {
		t.Fatalf("tick mean = %v", s.TickMeanMS)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	b := New()
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()

	// Submit via POST.
	body, _ := json.Marshal(score("hostco", "Forge", 0.07, 33))
	resp, err := http.Post(srv.URL+"/scores", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	var stored Score
	if err := json.NewDecoder(resp.Body).Decode(&stored); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stored.SubmittedAt.IsZero() {
		t.Fatal("stored score missing timestamp")
	}

	// Invalid submission is rejected.
	resp, err = http.Post(srv.URL+"/scores", "application/json", bytes.NewReader([]byte(`{"isr":2}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid POST status = %d", resp.StatusCode)
	}

	// List via GET.
	resp, err = http.Get(srv.URL + "/scores")
	if err != nil {
		t.Fatal(err)
	}
	var all []Score
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(all) != 1 {
		t.Fatalf("GET /scores = %d entries", len(all))
	}

	// Rankings via GET with query.
	resp, err = http.Get(srv.URL + "/rankings?workload=Farm&environment=AWS-t3.large")
	if err != nil {
		t.Fatal(err)
	}
	var ranked []Score
	if err := json.NewDecoder(resp.Body).Decode(&ranked); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ranked) != 1 || ranked[0].Operator != "hostco" {
		t.Fatalf("rankings wrong: %+v", ranked)
	}

	// Rankings without query lists divisions.
	resp, err = http.Get(srv.URL + "/rankings")
	if err != nil {
		t.Fatal(err)
	}
	var divs []Division
	if err := json.NewDecoder(resp.Body).Decode(&divs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(divs) != 1 {
		t.Fatalf("divisions = %d", len(divs))
	}

	// Bad method.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/scores", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	b := New()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				b.Submit(score("op", "MLG", 0.1, float64(i*100+j)))
				b.Rankings(Division{Workload: "Farm", Environment: "AWS-t3.large"})
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if b.Len() != 800 {
		t.Fatalf("scores = %d, want 800", b.Len())
	}
}

func TestTimestampMonotone(t *testing.T) {
	b := New()
	tick := time.Unix(0, 0)
	b.now = func() time.Time { tick = tick.Add(time.Second); return tick }
	b.Submit(score("a", "X", 0.1, 1))
	b.Submit(score("b", "X", 0.1, 1))
	all := b.Scores()
	if !all[1].SubmittedAt.After(all[0].SubmittedAt) {
		t.Fatal("timestamps not monotone")
	}
}
