// Package scoreboard implements the public benchmark score-board the paper
// proposes as future work (§8: "we aim to create a public score-board where
// operators of MLG-as-a-service can publish benchmark scores").
//
// Operators submit Meterstick run results as Scores; the board validates,
// stores and ranks them per (workload, environment) division, ordered by
// Instability Ratio (lower is more stable) with mean tick time as the tie
// breaker. A stdlib net/http handler exposes the board as a JSON API:
//
//	POST /scores            submit a score
//	GET  /scores            list all scores
//	GET  /rankings?workload=Farm&environment=AWS-t3.large
package scoreboard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// Score is one published benchmark result.
type Score struct {
	// Operator identifies who published the score (a service name).
	Operator string `json:"operator"`
	// MLG, Workload and Environment identify the benchmark configuration.
	MLG         string `json:"mlg"`
	Workload    string `json:"workload"`
	Environment string `json:"environment"`
	// ISR is the Instability Ratio of the run (lower is better).
	ISR float64 `json:"isr"`
	// TickMeanMS and TickP95MS summarize tick durations.
	TickMeanMS float64 `json:"tick_mean_ms"`
	TickP95MS  float64 `json:"tick_p95_ms"`
	// ResponseP95MS summarizes player-visible latency.
	ResponseP95MS float64 `json:"response_p95_ms"`
	// Crashed marks runs that did not survive the workload.
	Crashed bool `json:"crashed"`
	// SubmittedAt is stamped by the board.
	SubmittedAt time.Time `json:"submitted_at"`
}

// FromResult builds a Score from a benchmark run result.
func FromResult(operator string, r core.RunResult) Score {
	return Score{
		Operator:      operator,
		MLG:           r.Flavor,
		Workload:      r.Workload,
		Environment:   r.Environment,
		ISR:           r.ISR,
		TickMeanMS:    r.TickSummary.Mean,
		TickP95MS:     r.TickSummary.P95,
		ResponseP95MS: r.ResponseSummary.P95,
		Crashed:       r.Crashed,
	}
}

// Validate checks a submission.
func (s Score) Validate() error {
	switch {
	case strings.TrimSpace(s.Operator) == "":
		return errors.New("scoreboard: operator required")
	case strings.TrimSpace(s.MLG) == "":
		return errors.New("scoreboard: mlg required")
	case strings.TrimSpace(s.Workload) == "":
		return errors.New("scoreboard: workload required")
	case strings.TrimSpace(s.Environment) == "":
		return errors.New("scoreboard: environment required")
	case s.ISR < 0 || s.ISR > 1:
		return fmt.Errorf("scoreboard: ISR %v outside [0,1]", s.ISR)
	case s.TickMeanMS < 0 || s.TickP95MS < 0 || s.ResponseP95MS < 0:
		return errors.New("scoreboard: negative statistics")
	default:
		return nil
	}
}

// Division identifies one ranking bucket.
type Division struct {
	Workload    string `json:"workload"`
	Environment string `json:"environment"`
}

// Board is an in-memory, concurrency-safe score-board.
type Board struct {
	mu     sync.RWMutex
	scores []Score
	now    func() time.Time
}

// New returns an empty board.
func New() *Board { return &Board{now: time.Now} }

// Submit validates and stores a score, returning the stored copy.
func (b *Board) Submit(s Score) (Score, error) {
	if err := s.Validate(); err != nil {
		return Score{}, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s.SubmittedAt = b.now()
	b.scores = append(b.scores, s)
	return s, nil
}

// Len returns the number of stored scores.
func (b *Board) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.scores)
}

// Scores returns all stored scores, newest last.
func (b *Board) Scores() []Score {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]Score(nil), b.scores...)
}

// Rankings returns the division's scores, best first: non-crashed runs
// ordered by ISR then mean tick time, crashed runs last. Only each
// operator+MLG pair's best entry is ranked (operators may resubmit).
func (b *Board) Rankings(d Division) []Score {
	b.mu.RLock()
	defer b.mu.RUnlock()

	better := func(a, c Score) bool {
		if a.Crashed != c.Crashed {
			return !a.Crashed
		}
		if a.ISR != c.ISR {
			return a.ISR < c.ISR
		}
		return a.TickMeanMS < c.TickMeanMS
	}

	best := map[string]Score{}
	for _, s := range b.scores {
		if s.Workload != d.Workload || s.Environment != d.Environment {
			continue
		}
		key := s.Operator + "\x00" + s.MLG
		if cur, ok := best[key]; !ok || better(s, cur) {
			best[key] = s
		}
	}
	out := make([]Score, 0, len(best))
	for _, s := range best {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if better(out[i], out[j]) {
			return true
		}
		if better(out[j], out[i]) {
			return false
		}
		// Stable total order for ties.
		if out[i].Operator != out[j].Operator {
			return out[i].Operator < out[j].Operator
		}
		return out[i].MLG < out[j].MLG
	})
	return out
}

// Divisions lists every (workload, environment) bucket with scores.
func (b *Board) Divisions() []Division {
	b.mu.RLock()
	defer b.mu.RUnlock()
	seen := map[Division]bool{}
	var out []Division
	for _, s := range b.scores {
		d := Division{Workload: s.Workload, Environment: s.Environment}
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].Environment < out[j].Environment
	})
	return out
}

// Handler returns the board's HTTP API.
func (b *Board) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/scores", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, b.Scores())
		case http.MethodPost:
			var s Score
			if err := json.NewDecoder(r.Body).Decode(&s); err != nil {
				http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
				return
			}
			stored, err := b.Submit(s)
			if err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			writeJSON(w, http.StatusCreated, stored)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/rankings", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		d := Division{
			Workload:    r.URL.Query().Get("workload"),
			Environment: r.URL.Query().Get("environment"),
		}
		if d.Workload == "" || d.Environment == "" {
			writeJSON(w, http.StatusOK, b.Divisions())
			return
		}
		writeJSON(w, http.StatusOK, b.Rankings(d))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
