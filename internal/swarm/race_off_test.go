//go:build !race

package swarm

const raceEnabled = false
