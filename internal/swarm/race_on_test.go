//go:build race

package swarm

// raceEnabled reports that this binary runs under the race detector, whose
// 5-20x slowdown starves the tick goroutine in full-scale swarm runs and
// turns their tail-latency assertions into scheduler noise.
const raceEnabled = true
