package swarm

import (
	"flag"
	"testing"
	"time"

	"repro/internal/bot"
	"repro/internal/mlg/server"
)

// The swarm scale knobs are flags so the CI smoke job can dial the same test
// up (more bots, more stalled peers) without a code change.
var (
	swarmBots  = flag.Int("swarm.bots", 100, "swarm size for the stalled-peer acceptance test")
	swarmStall = flag.Int("swarm.stall", 1, "stalled readers injected in the acceptance test")
)

// faultTunedServer is the acceptance-test server configuration: small socket
// and queue budgets so a stalled peer hits the backpressure ladder within
// the test window, and a write deadline short enough to reap it there too.
func faultTunedServer() *server.Config {
	cfg := server.DefaultConfig(server.Vanilla)
	cfg.Net.ViewDistance = 2
	cfg.Net.SocketWriteBuffer = 8 << 10
	cfg.Net.WriteQueueBatches = 64
	cfg.Net.WriteQueueBytes = 16 << 10
	cfg.Net.WriteTimeout = 500 * time.Millisecond
	return &cfg
}

// TestSwarmStalledPeerTailLatency is the PR's acceptance criterion: with one
// (or -swarm.stall) stalled TCP peer among -swarm.bots real connections, the
// p99 tick duration must stay within 2x the no-stall baseline, and the
// stalled peer must be disconnected by the write deadline.
func TestSwarmStalledPeerTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP swarm run; skipped in -short")
	}
	if raceEnabled {
		// The race detector's slowdown starves the tick goroutine at this
		// scale — the tail assertions would measure the detector, not the
		// server. The race job still exercises the swarm machinery through
		// the smaller churn/slow-reader and ramp tests below.
		t.Skip("full-scale tail-latency run; skipped under -race")
	}
	// Probes double as traffic: 100 bots probing every 100ms fan ~1000
	// chats/s onto every connection, enough to fill a stalled peer's 4KiB
	// receive window, the server's 8KiB socket buffer and its 16KiB writer
	// queue well inside the stall window.
	common := Config{
		Bots:       *swarmBots,
		Behavior:   bot.RandomWalk,
		ProbeEvery: 100 * time.Millisecond,
		Mobs:       150,
		Settle:     time.Second,
		Duration:   3 * time.Second,
		ReadBuffer: 4 << 10,
		Seed:       7,
		Server:     faultTunedServer(),
	}

	baseline, err := Run(common)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Connected != common.Bots {
		t.Fatalf("baseline: connected %d/%d bots", baseline.Connected, common.Bots)
	}
	if baseline.Ticks == 0 {
		t.Fatal("baseline: no ticks recorded")
	}

	faulted := common
	faulted.Duration = 4 * time.Second
	faulted.StallReaders = *swarmStall
	faulted.StallAfter = 500 * time.Millisecond
	stall, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}

	// One stalled peer must not stall the world: tick tail within 2x the
	// no-stall baseline. The floor keeps scheduler noise on tiny absolute
	// values (both tails low single-digit ms) from failing the ratio.
	const floorMS = 15.0
	limit := 2 * baseline.P99TickMS
	if limit < floorMS {
		limit = floorMS
	}
	if stall.P99TickMS > limit {
		t.Errorf("p99 tick %.2fms with %d stalled peer(s), want <= %.2fms (2x baseline %.2fms)",
			stall.P99TickMS, *swarmStall, limit, baseline.P99TickMS)
	}

	// The stalled peers must be reaped by the write deadline, and backlog
	// batches must have been dropped (not waited on) on the way down.
	if got := stall.Outbound.WriteDisconnects; got < int64(*swarmStall) {
		t.Errorf("WriteDisconnects = %d, want >= %d (stalled peers reaped)", got, *swarmStall)
	}
	if stall.Outbound.DroppedBatches == 0 {
		t.Error("no dropped batches: the stalled peers never hit backpressure")
	}
	if max := common.Bots - *swarmStall; stall.FinalPlayers > max {
		t.Errorf("FinalPlayers = %d, want <= %d (stalled peers still connected)",
			stall.FinalPlayers, max)
	}
	t.Logf("baseline: ticks=%d p99=%.2fms isr=%.4f; stalled: ticks=%d p99=%.2fms isr=%.4f out=%+v",
		baseline.Ticks, baseline.P99TickMS, baseline.ISR,
		stall.Ticks, stall.P99TickMS, stall.ISR, stall.Outbound)
}

// TestSwarmChurnAndSlowReaders smokes the load generator's remaining fault
// modes in one short run: connection churn (writer shutdown + join bursts
// during steady state) and slow-but-alive readers (backpressure without a
// deadline kill). The run must complete with the healthy population intact.
func TestSwarmChurnAndSlowReaders(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP swarm run; skipped in -short")
	}
	res, err := Run(Config{
		Bots:        12,
		Behavior:    bot.RandomWalk,
		ProbeEvery:  200 * time.Millisecond,
		Mobs:        20,
		Duration:    1500 * time.Millisecond,
		SlowReaders: 2,
		ReadDelay:   20 * time.Millisecond,
		ChurnEvery:  300 * time.Millisecond,
		Seed:        11,
		Server:      faultTunedServer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Connected != 12 {
		t.Fatalf("connected %d/12 bots", res.Connected)
	}
	if res.Ticks == 0 {
		t.Fatal("no ticks recorded")
	}
	if res.Probes == 0 {
		t.Fatal("no chat probes completed during churn")
	}
	t.Logf("churn run: ticks=%d p99=%.2fms probes=%d dropped=%d out=%+v",
		res.Ticks, res.P99TickMS, res.Probes, res.Dropped, res.Outbound)
}

// TestSwarmRampPacing checks the ramp scheduler actually paces connections:
// 3 chunks of 2 bots with 100ms between chunks cannot finish faster than the
// two inter-chunk gaps.
func TestSwarmRampPacing(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP swarm run; skipped in -short")
	}
	start := time.Now()
	res, err := Run(Config{
		Bots:      6,
		Behavior:  bot.Idle,
		RampChunk: 2,
		RampEvery: 100 * time.Millisecond,
		Duration:  300 * time.Millisecond,
		Seed:      3,
		Server:    faultTunedServer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Connected != 6 {
		t.Fatalf("connected %d/6 bots", res.Connected)
	}
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Fatalf("run finished in %v; ramp pacing (2x100ms) + duration (300ms) not honoured", elapsed)
	}
}
