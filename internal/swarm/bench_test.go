package swarm

import (
	"testing"
	"time"

	"repro/internal/bot"
)

// BenchmarkSwarmTail is the outbound-path tail-latency benchmark: a real-TCP
// swarm with chat-probe traffic and one injected stalled reader, reporting
// the server's p99 tick duration and ISR over the measured window alongside
// the usual ns/op (which here is just the wall cost of one run and is NOT
// perf-gated; see scripts/bench_compare.sh). Run with -benchtime 1x — each
// iteration is a full multi-second swarm run.
func BenchmarkSwarmTail(b *testing.B) {
	cfg := Config{
		Bots:         25,
		Behavior:     bot.RandomWalk,
		ProbeEvery:   100 * time.Millisecond,
		Mobs:         60,
		Settle:       500 * time.Millisecond,
		Duration:     2 * time.Second,
		StallReaders: 1,
		StallAfter:   250 * time.Millisecond,
		ReadBuffer:   4 << 10,
		Seed:         5,
		Server:       faultTunedServer(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Ticks == 0 {
			b.Fatal("no ticks recorded")
		}
		b.ReportMetric(res.P99TickMS*1e6, "p99-tick-ns")
		b.ReportMetric(res.ISR, "isr")
	}
}
