// Package swarm is the reusable real-TCP load generator behind cmd/botswarm
// and the outbound-path benchmarks: it ramps a configurable swarm of
// emulated players onto an MLG server (an external address, or a self-hosted
// in-process server on a loopback listener), optionally injects peer faults
// — readers that stall mid-run, readers that drain slowly, connection churn
// — and reports tail latency: chat-probe response time for every mode, plus
// tick-duration percentiles, ISR and outbound fault counters when the
// server is self-hosted.
package swarm

import (
	"fmt"
	"net"
	"time"

	"repro/internal/bot"
	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
)

// Config parameterizes one swarm run.
type Config struct {
	// Addr is the target server address. Empty self-hosts an in-process
	// server on a loopback listener (the benchmark configuration).
	Addr string

	// Bots is the swarm size.
	Bots int
	// Behavior selects what bots do each tick (default bot.RandomWalk).
	Behavior bot.Behavior
	// ProbeEvery is the chat response-time probe interval per bot; zero
	// disables probing.
	ProbeEvery time.Duration
	// Area is the random-walk square side in blocks (default 32).
	Area float64

	// RampChunk bots connect per ramp step, RampEvery apart (defaults: 25
	// per step, back to back). Yardstick-style pacing so a connection burst
	// does not masquerade as tick load.
	RampChunk int
	RampEvery time.Duration

	// Settle is how long to wait between the last connection and the start
	// of the measured window, so join bursts (owed chunks, first keyframes)
	// drain before tail percentiles are recorded.
	Settle time.Duration

	// Duration is the measured window after the ramp completes.
	Duration time.Duration

	// StallReaders bots stop reading their sockets StallAfter into the
	// measured window and never resume — the dead-peer fault. The server
	// must drop their batches and eventually disconnect them without the
	// tick noticing.
	StallReaders int
	StallAfter   time.Duration
	// SlowReaders bots throttle to one read per ReadDelay — the slow-peer
	// fault that exercises backpressure without a write-deadline kill.
	SlowReaders int
	ReadDelay   time.Duration
	// ChurnEvery, when > 0, disconnects one bot and connects a replacement
	// every ChurnEvery during the measured window.
	ChurnEvery time.Duration

	// Mobs spawns a mob herd at the walk area before the run (self-hosted
	// only): ambient entity traffic for every connected bot.
	Mobs int

	// ReadBuffer shrinks every bot's TCP receive buffer (bytes; zero keeps
	// the OS default). Fault-injection runs set it small so paused readers
	// push backpressure onto the server within the test window instead of
	// hiding behind kernel buffering.
	ReadBuffer int

	// Seed makes bot behaviour (and the self-hosted world) deterministic.
	Seed int64

	// Server overrides the self-hosted server configuration; nil uses
	// server.DefaultConfig(server.Vanilla).
	Server *server.Config
}

func (c Config) withDefaults() Config {
	if c.Bots <= 0 {
		c.Bots = 25
	}
	if c.Area <= 0 {
		c.Area = 32
	}
	if c.RampChunk <= 0 {
		c.RampChunk = 25
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is one swarm run's measurements. Tick-side fields (TickMS,
// P99TickMS, ISR, Outbound, FinalPlayers) are populated only for self-hosted
// runs; against an external address only the client-side views are known.
type Result struct {
	Bots      int // requested swarm size
	Connected int // bots that completed login
	Dropped   int // bots whose connection ended before the run did

	Probes int             // completed chat probes
	RTTMS  metrics.Summary // probe response time, milliseconds

	Ticks        int
	TickMS       metrics.Summary // tick busy duration, milliseconds
	P99TickMS    float64
	ISR          float64 // inverse success rate over the measured window
	Outbound     server.OutboundStats
	FinalPlayers int

	Elapsed time.Duration
}

// Run executes one swarm run and blocks until it completes.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Bots: cfg.Bots}

	addr := cfg.Addr
	var srv *server.Server
	if addr == "" {
		var ln net.Listener
		var err error
		srv, ln, err = selfHost(cfg)
		if err != nil {
			return res, err
		}
		defer func() { srv.Stop(); ln.Close() }()
		addr = ln.Addr().String()
	}

	// Ramp the swarm on. Faulty readers are picked from the tail of the
	// swarm so bot-00..bot-NN stay the healthy measurement population.
	start := time.Now()
	clients := make([]*bot.Client, 0, cfg.Bots)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < cfg.Bots; i++ {
		if cfg.RampEvery > 0 && i > 0 && i%cfg.RampChunk == 0 {
			time.Sleep(cfg.RampEvery)
		}
		c, err := bot.Connect(addr, botConfig(cfg, i))
		if err != nil {
			return res, fmt.Errorf("swarm: connect bot %d: %w", i, err)
		}
		clients = append(clients, c)
	}
	res.Connected = len(clients)
	nSlow := min(cfg.SlowReaders, len(clients))
	nStall := min(cfg.StallReaders, len(clients)-nSlow)
	slow := clients[len(clients)-nSlow:]
	stalled := clients[len(clients)-nSlow-nStall : len(clients)-nSlow]
	for _, c := range slow {
		c.SetReadDelay(cfg.ReadDelay)
	}

	// Measured window: reset server-side stats so the ramp's join bursts
	// and settling do not pollute the tail percentiles.
	if cfg.Settle > 0 {
		time.Sleep(cfg.Settle)
	}
	if srv != nil {
		srv.ResetStats()
	}
	var stallTimer *time.Timer
	if len(stalled) > 0 {
		stallTimer = time.AfterFunc(cfg.StallAfter, func() {
			for _, c := range stalled {
				c.PauseReads()
			}
		})
		defer stallTimer.Stop()
	}

	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	if cfg.ChurnEvery > 0 {
		go churn(addr, cfg, clients[:len(clients)-nSlow-nStall], churnStop, churnDone)
	} else {
		close(churnDone)
	}

	time.Sleep(cfg.Duration)

	// Quiesce the churner before touching the client slots it owns.
	close(churnStop)
	<-churnDone

	// Collect client-side measurements.
	var rtts []float64
	for _, c := range clients {
		select {
		case <-c.Done():
			res.Dropped++
		default:
		}
		for _, p := range c.Probes() {
			rtts = append(rtts, float64(p.RTT)/float64(time.Millisecond))
		}
	}
	res.Probes = len(rtts)
	res.RTTMS = metrics.Summarize(rtts)
	res.Elapsed = time.Since(start)

	// Collect server-side measurements (self-hosted only).
	if srv != nil {
		recs := srv.Records()
		durs := make([]time.Duration, 0, len(recs))
		for _, r := range recs {
			durs = append(durs, r.Dur)
		}
		ms := metrics.DurationsToMS(durs)
		res.Ticks = len(ms)
		res.TickMS = metrics.Summarize(ms)
		res.P99TickMS = metrics.Percentile(ms, 99)
		res.ISR = metrics.ISRTrace(durs, cfg.Duration)
		res.Outbound = srv.Outbound()
		res.FinalPlayers = srv.PlayerCount()
	}
	return res, nil
}

// selfHost starts an in-process server on a loopback listener: a flat world
// (terrain cost is not what this harness measures), wall-clock ticks, and a
// mob herd inside the swarm's walk area.
func selfHost(cfg Config) (*server.Server, net.Listener, error) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	scfg := server.DefaultConfig(server.Vanilla)
	if cfg.Server != nil {
		scfg = *cfg.Server
	}
	s := server.New(w, scfg, nil, env.RealClock{})
	for i := 0; i < cfg.Mobs; i++ {
		s.EntityWorld().SpawnMob(world.Pos{
			X: 2 + i%int(cfg.Area), Y: 11, Z: 2 + (i/int(cfg.Area))%int(cfg.Area),
		})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("swarm: listen: %w", err)
	}
	go s.Serve(ln)
	go s.Run()
	return s, ln, nil
}

func botConfig(cfg Config, i int) bot.Config {
	return bot.Config{
		Name:     fmt.Sprintf("bot-%03d", i),
		Behavior: cfg.Behavior,
		AreaSide: cfg.Area, BaseY: 11,
		ProbeEvery: cfg.ProbeEvery,
		Seed:       cfg.Seed + int64(i)*7919,
		ReadBuffer: cfg.ReadBuffer,
	}
}

// churn cycles connections: every ChurnEvery one healthy bot disconnects
// and a fresh one takes its slot, exercising writer shutdown and join
// bursts concurrently with steady-state streaming.
func churn(addr string, cfg Config, pool []*bot.Client, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	if len(pool) == 0 {
		return
	}
	t := time.NewTicker(cfg.ChurnEvery)
	defer t.Stop()
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		slot := i % len(pool)
		pool[slot].Close()
		c, err := bot.Connect(addr, botConfig(cfg, cfg.Bots+i))
		if err != nil {
			continue // server may be tearing down; the run is ending
		}
		pool[slot] = c
	}
}
