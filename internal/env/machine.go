package env

import (
	"math"
	"math/rand"
	"time"
)

// Work describes the compute demand of one game tick in reference-core
// microseconds, split by the operation categories the paper's tick-
// distribution analysis uses (Figure 11). The game engine produces a Work
// value per tick from its instrumented operation counts; a Machine converts
// it into a compute time under the environment's conditions.
type Work struct {
	// PlayerUS is player-handler work: movement validation, action
	// processing, chat.
	PlayerUS float64
	// BlockUpdateUS is terrain-simulation rule work: redstone, fluids,
	// growth, scheduled and random ticks ("Block Update" in Figure 11).
	BlockUpdateUS float64
	// BlockAddRemoveUS is block creation/destruction work, including
	// explosion block removal ("Block Add/Remove" in Figure 11).
	BlockAddRemoveUS float64
	// EntityUS is entity simulation work: physics, AI, pathfinding,
	// spawning ("Entities" in Figure 11).
	EntityUS float64
	// LightUS is lighting recomputation work (folded into "Other").
	LightUS float64
	// NetworkUS is state-update serialization and dissemination work
	// (folded into "Other").
	NetworkUS float64
	// UpkeepUS is fixed per-tick world upkeep: loaded-chunk bookkeeping,
	// autosave amortization (folded into "Other").
	UpkeepUS float64

	// ParallelFraction is the fraction of this tick's work the MLG flavor
	// can push off the main thread (PaperMC's async scheduler raises it).
	ParallelFraction float64
	// Threads is the number of OS threads the flavor keeps active; more
	// threads than vCPUs costs contention on shared tenancy.
	Threads int
}

// TotalUS returns the total reference-core microseconds of the tick.
func (w Work) TotalUS() float64 {
	return w.PlayerUS + w.BlockUpdateUS + w.BlockAddRemoveUS + w.EntityUS +
		w.LightUS + w.NetworkUS + w.UpkeepUS
}

// OtherUS returns the microseconds Figure 11 groups under "Other".
func (w Work) OtherUS() float64 { return w.LightUS + w.NetworkUS + w.UpkeepUS }

// Add accumulates another Work's category costs into w (fractions and thread
// counts are taken from w).
func (w *Work) Add(o Work) {
	w.PlayerUS += o.PlayerUS
	w.BlockUpdateUS += o.BlockUpdateUS
	w.BlockAddRemoveUS += o.BlockAddRemoveUS
	w.EntityUS += o.EntityUS
	w.LightUS += o.LightUS
	w.NetworkUS += o.NetworkUS
	w.UpkeepUS += o.UpkeepUS
}

// Machine is one provisioned node for one benchmark iteration: a Profile
// plus the per-iteration random state (placement luck, CPU-credit balance,
// steal process). Machines are deterministic given their seed, making every
// experiment reproducible.
type Machine struct {
	prof      Profile
	rng       *rand.Rand
	placement float64 // per-iteration multiplier on all compute time
	busyHost  bool    // landed on an oversubscribed host (Azure bimodal)
	credits   float64 // CPU-seconds of burst budget remaining (burstable only)
	throttled bool    // credits exhausted; running at baseline
}

// NewMachine provisions a machine under the profile with a deterministic
// seed. Per-iteration placement and the initial credit balance are sampled
// immediately, so two machines with the same profile and seed behave
// identically.
func NewMachine(p Profile, seed int64) *Machine {
	rng := rand.New(rand.NewSource(seed))
	m := &Machine{prof: p, rng: rng}
	m.placement = lognormal(rng, p.PlacementSigma)
	if p.BusyHostProb > 0 && rng.Float64() < p.BusyHostProb {
		m.busyHost = true
	}
	if p.Burstable {
		m.credits = p.InitialCreditsMin +
			rng.Float64()*(p.InitialCreditsMax-p.InitialCreditsMin)
	}
	return m
}

// Profile returns the machine's environment profile.
func (m *Machine) Profile() Profile { return m.prof }

// BusyHost reports whether this iteration landed on an oversubscribed host.
func (m *Machine) BusyHost() bool { return m.busyHost }

// Throttled reports whether a burstable machine has exhausted its CPU
// credits and is running at its baseline fraction.
func (m *Machine) Throttled() bool { return m.throttled }

// CreditsRemaining returns the CPU-seconds of burst budget left (0 for
// non-burstable profiles).
func (m *Machine) CreditsRemaining() float64 { return m.credits }

// TickComputeTime converts one tick's Work into the compute time the tick
// occupies on this machine, applying in order: Amdahl speedup over the
// machine's vCPUs, thread-contention penalty, placement factor, busy-host
// degradation of the parallel portion, lognormal scheduling jitter,
// CPU-steal bursts, and burstable-credit throttling. It also updates the
// machine's credit balance using the wall time the tick (plus any wait up to
// the 50 ms budget) occupies.
func (m *Machine) TickComputeTime(w Work) time.Duration {
	p := m.prof
	totalUS := w.TotalUS()
	if totalUS <= 0 {
		return 0
	}

	// Amdahl: the parallel fraction spreads over the vCPUs (bounded by the
	// threads the flavor actually runs); the rest is serial.
	cores := float64(p.VCPUs)
	if w.Threads > 0 && float64(w.Threads) < cores {
		cores = float64(w.Threads)
	}
	if cores < 1 {
		cores = 1
	}
	pf := w.ParallelFraction
	if pf < 0 {
		pf = 0
	}
	if pf > 1 {
		pf = 1
	}
	parallelUS := totalUS * pf
	if m.busyHost {
		// Busy hosts have their spare cores consumed by neighbours: the
		// parallel portion runs as if capacity were divided by the factor.
		parallelUS *= p.BusyHostFactor
	}
	us := totalUS*(1-pf) + parallelUS/cores

	// Per-core speed relative to the reference core.
	us /= p.CoreSpeed

	// Contention: more runnable threads than vCPUs on shared tenancy.
	if w.Threads > p.VCPUs && p.ContentionPenalty > 0 {
		over := float64(w.Threads)/float64(p.VCPUs) - 1
		us *= 1 + p.ContentionPenalty*over
	}

	// Placement luck, scheduling jitter, steal bursts.
	us *= m.placement
	us *= lognormal(m.rng, p.JitterSigma)
	if p.StealProb > 0 && m.rng.Float64() < p.StealProb {
		us *= p.StealSeverity
	}

	// JVM garbage-collection pauses stall the tick outright.
	if p.GCPauseProb > 0 && m.rng.Float64() < p.GCPauseProb {
		us += (p.GCPauseMinMS + m.rng.Float64()*(p.GCPauseMaxMS-p.GCPauseMinMS)) * 1000
	}

	// Burstable credit accounting. Demand is the CPU-seconds this tick
	// wants; the instance earns credits at its baseline rate over the wall
	// time the tick occupies (at least the 50 ms budget, since an idle
	// remainder still earns).
	if p.Burstable {
		if m.throttled {
			us /= p.BaselineFraction
		}
		demandSec := us / 1e6 * math.Min(cores, float64(p.VCPUs)) // CPU-seconds consumed
		wallSec := math.Max(us/1e6, 0.050)
		earnSec := p.BaselineFraction * float64(p.VCPUs) * wallSec
		m.credits += earnSec - demandSec
		if m.credits <= 0 {
			m.credits = 0
			m.throttled = true
		} else if m.throttled && m.credits > 1.0 {
			// A small replenished buffer lets the instance burst again.
			m.throttled = false
		}
	}

	return time.Duration(us * float64(time.Microsecond))
}

// NetOneWay samples a one-way client<->server network latency.
func (m *Machine) NetOneWay() time.Duration {
	rtt := float64(m.prof.NetBaseRTT) * lognormal(m.rng, m.prof.NetJitterSigma)
	return time.Duration(rtt / 2)
}

// NetRTT samples a full round-trip network latency.
func (m *Machine) NetRTT() time.Duration {
	return m.NetOneWay() + m.NetOneWay()
}

// lognormal samples exp(N(0, sigma²)), i.e. a multiplicative noise factor
// with median 1. sigma <= 0 yields exactly 1.
func lognormal(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(rng.NormFloat64() * sigma)
}
