package env

import "time"

// Provider identifies the hosting provider class of a deployment environment.
type Provider int

// Providers evaluated in the paper (§5.1.2).
const (
	// SelfHosted models DAS-5: dedicated hardware, no tenancy sharing.
	SelfHosted Provider = iota
	// AWS models Amazon EC2 burstable T3 instances.
	AWS
	// Azure models Microsoft Azure Dv3 instances.
	Azure
)

// String returns the provider name.
func (p Provider) String() string {
	switch p {
	case SelfHosted:
		return "DAS5"
	case AWS:
		return "AWS"
	case Azure:
		return "Azure"
	default:
		return "unknown"
	}
}

// Profile describes a deployment environment: its compute capacity and the
// variability mechanisms it is subject to. All speed factors are relative to
// a DAS-5 reference core (2.4 GHz dedicated), the unit the engine's cost
// model is calibrated in.
type Profile struct {
	// Name identifies the profile in reports, e.g. "AWS-t3.large".
	Name string
	// Provider is the hosting provider class.
	Provider Provider
	// VCPUs is the number of virtual CPUs available to the MLG.
	VCPUs int
	// CoreSpeed is the per-core speed relative to the reference core.
	CoreSpeed float64

	// Burstable marks CPU-credit instances (AWS T3). When credits are
	// exhausted, per-core speed is multiplied by BaselineFraction.
	Burstable bool
	// BaselineFraction is the sustained per-vCPU capacity of a burstable
	// instance (0.3 for t3.large per AWS documentation).
	BaselineFraction float64
	// InitialCreditsMin/Max bound the CPU credit balance (in CPU-seconds of
	// burst above baseline) a fresh iteration starts with. The spread models
	// instance history and contributes to iteration-to-iteration variance.
	InitialCreditsMin float64
	InitialCreditsMax float64

	// StealProb is the per-tick probability of a CPU-steal event from a
	// noisy neighbour; StealSeverity multiplies compute time during one.
	StealProb     float64
	StealSeverity float64
	// JitterSigma is the sigma of the lognormal noise multiplied into every
	// tick's compute time (hypervisor scheduling noise).
	JitterSigma float64
	// PlacementSigma is the sigma of the lognormal per-iteration placement
	// factor: some instances land on busier or slower hosts. Sampled once
	// per Machine.
	PlacementSigma float64
	// BusyHostProb is the probability that an iteration lands on a busy host
	// whose parallel capacity is degraded by BusyHostFactor. This models the
	// bimodal placement behaviour observed on Azure, which penalizes MLGs
	// that rely on parallelism (PaperMC) more than single-threaded ones.
	BusyHostProb   float64
	BusyHostFactor float64
	// ContentionPenalty scales the slowdown applied when the MLG runs more
	// active threads than vCPUs on shared-tenancy hardware. Dedicated hosts
	// have 0.
	ContentionPenalty float64

	// NetBaseRTT is the median client<->server round-trip time and
	// NetJitterSigma the lognormal sigma of its variation.
	NetBaseRTT     time.Duration
	NetJitterSigma float64

	// GCPauseProb is the per-tick probability of a JVM garbage-collection
	// pause (the MLGs under test run on the JVM); the pause length is
	// uniform in [GCPauseMinMS, GCPauseMaxMS] and is added to the tick's
	// compute time. GC pauses are a major source of the isolated tick
	// spikes visible even on dedicated hardware.
	GCPauseProb  float64
	GCPauseMinMS float64
	GCPauseMaxMS float64

	// ConnTimeout is how long a client waits without any server traffic
	// before disconnecting. A tick longer than this starves keep-alives and
	// drops all players — the crash mechanism behind the Lag workload on AWS
	// (§5.3: "the player's connection to time-out, forcing each MLG to
	// stop").
	ConnTimeout time.Duration
}

// Standard profiles used by the paper's experiments. The DAS-5 node is a
// dual 8-core 2.4 GHz machine; the paper limits the MLG to two cores via CPU
// affinity except where "16-core" is stated. AWS sizes follow the T3 family:
// L = t3.large (2 vCPU), XL = t3.xlarge (4 vCPU), 2XL = t3.2xlarge (8 vCPU).
// Azure is Standard_D2_v3 (2 vCPU, non-burstable).
var (
	// DAS5TwoCore is the self-hosted baseline: dedicated cores, minimal
	// variability, CPU affinity limited to 2 cores.
	DAS5TwoCore = Profile{
		Name: "DAS5-2core", Provider: SelfHosted, VCPUs: 2, CoreSpeed: 1.0,
		JitterSigma: 0.015, PlacementSigma: 0.01,
		NetBaseRTT: 400 * time.Microsecond, NetJitterSigma: 0.10,
		GCPauseProb: 0.003, GCPauseMinMS: 50, GCPauseMaxMS: 200,
		ConnTimeout: 8 * time.Second,
	}
	// DAS5SixteenCore lifts the affinity mask to the full dual 8-core node.
	DAS5SixteenCore = Profile{
		Name: "DAS5-16core", Provider: SelfHosted, VCPUs: 16, CoreSpeed: 1.0,
		JitterSigma: 0.015, PlacementSigma: 0.01,
		NetBaseRTT: 400 * time.Microsecond, NetJitterSigma: 0.10,
		GCPauseProb: 0.003, GCPauseMinMS: 50, GCPauseMaxMS: 200,
		ConnTimeout: 8 * time.Second,
	}
	// AWSLarge is t3.large: 2 burstable vCPUs, the hosting-company
	// recommended size (Table 7) and the paper's default cloud node.
	AWSLarge = Profile{
		Name: "AWS-t3.large", Provider: AWS, VCPUs: 2, CoreSpeed: 0.85,
		Burstable: true, BaselineFraction: 0.30,
		InitialCreditsMin: 10, InitialCreditsMax: 25,
		StealProb: 0.035, StealSeverity: 2.6,
		JitterSigma: 0.19, PlacementSigma: 0.07,
		BusyHostProb: 0.06, BusyHostFactor: 1.5,
		ContentionPenalty: 0.18,
		NetBaseRTT:        1500 * time.Microsecond, NetJitterSigma: 0.35,
		GCPauseProb: 0.005, GCPauseMinMS: 80, GCPauseMaxMS: 400,
		ConnTimeout: 8 * time.Second,
	}
	// AWSXLarge is t3.xlarge: 4 burstable vCPUs.
	AWSXLarge = Profile{
		Name: "AWS-t3.xlarge", Provider: AWS, VCPUs: 4, CoreSpeed: 0.85,
		Burstable: true, BaselineFraction: 0.40,
		InitialCreditsMin: 40, InitialCreditsMax: 120,
		StealProb: 0.030, StealSeverity: 2.3,
		JitterSigma: 0.14, PlacementSigma: 0.06,
		BusyHostProb: 0.05, BusyHostFactor: 1.4,
		ContentionPenalty: 0.15,
		NetBaseRTT:        1500 * time.Microsecond, NetJitterSigma: 0.35,
		GCPauseProb: 0.005, GCPauseMinMS: 70, GCPauseMaxMS: 350,
		ConnTimeout: 8 * time.Second,
	}
	// AWS2XLarge is t3.2xlarge: 8 burstable vCPUs, the size the paper finds
	// necessary for smooth operation (I4).
	AWS2XLarge = Profile{
		Name: "AWS-t3.2xlarge", Provider: AWS, VCPUs: 8, CoreSpeed: 0.85,
		Burstable: true, BaselineFraction: 0.40,
		InitialCreditsMin: 80, InitialCreditsMax: 240,
		StealProb: 0.025, StealSeverity: 2.0,
		JitterSigma: 0.12, PlacementSigma: 0.05,
		BusyHostProb: 0.04, BusyHostFactor: 1.3,
		ContentionPenalty: 0.12,
		NetBaseRTT:        1500 * time.Microsecond, NetJitterSigma: 0.35,
		GCPauseProb: 0.005, GCPauseMinMS: 60, GCPauseMaxMS: 300,
		ConnTimeout: 8 * time.Second,
	}
	// AzureD2 is Standard_D2_v3: 2 non-burstable vCPUs. Azure Dv3 hosts are
	// oversubscribed but not credit-throttled; placement is bimodal (busy vs
	// quiet hosts), which mostly penalizes parallel-heavy MLGs.
	AzureD2 = Profile{
		Name: "Azure-D2v3", Provider: Azure, VCPUs: 2, CoreSpeed: 0.78,
		StealProb: 0.045, StealSeverity: 2.3,
		JitterSigma: 0.17, PlacementSigma: 0.05,
		BusyHostProb: 0.30, BusyHostFactor: 2.2,
		ContentionPenalty: 0.06,
		NetBaseRTT:        1600 * time.Microsecond, NetJitterSigma: 0.32,
		GCPauseProb: 0.005, GCPauseMinMS: 70, GCPauseMaxMS: 350,
		ConnTimeout: 8 * time.Second,
	}
)

// NodeSizes returns the AWS node-size ladder used by the MF5 experiment
// (Figure 12), ordered L, XL, 2XL.
func NodeSizes() []Profile { return []Profile{AWSLarge, AWSXLarge, AWS2XLarge} }

// StandardProfiles returns every predefined profile, keyed for lookup by
// configuration files.
func StandardProfiles() map[string]Profile {
	return map[string]Profile{
		DAS5TwoCore.Name:     DAS5TwoCore,
		DAS5SixteenCore.Name: DAS5SixteenCore,
		AWSLarge.Name:        AWSLarge,
		AWSXLarge.Name:       AWSXLarge,
		AWS2XLarge.Name:      AWS2XLarge,
		AzureD2.Name:         AzureD2,
	}
}
