package env

// Recommendation is one row of Table 7: the hardware configuration a
// commercial Minecraft-hosting company recommends (or sells as its default
// plan). Fields the company does not publish are zero with the corresponding
// flag set.
type Recommendation struct {
	Service     string
	RAMGB       float64
	VCPUs       int  // 0 when not provided
	VCPUsNP     bool // company does not publish vCPU count
	CPUSpeedGHz float64
	SpeedNP     bool // company does not publish CPU speed
	SpeedVar    bool // speed is variable (cloud-provider guidance rows)
}

// Table7 returns the hardware-recommendation survey from Table 7 of the
// paper: 21 commercial MLG hosting companies plus the Azure and AWS tutorial
// guidance. The modal configuration — 2 vCPUs and 4 GB RAM — is what the
// paper's L node size reproduces, and what MF5 shows to be insufficient.
func Table7() []Recommendation {
	return []Recommendation{
		{Service: "Hostinger", RAMGB: 3, VCPUs: 3, SpeedNP: true},
		{Service: "Server.pro", RAMGB: 4, VCPUs: 2, CPUSpeedGHz: 2.4},
		{Service: "Skynode", RAMGB: 4, VCPUs: 2, CPUSpeedGHz: 3.6},
		{Service: "ScalaCube", RAMGB: 3, VCPUs: 2, CPUSpeedGHz: 3.4},
		{Service: "Nodecraft", RAMGB: 4, VCPUsNP: true, CPUSpeedGHz: 3.8},
		{Service: "Apex Hosting", RAMGB: 4, VCPUsNP: true, CPUSpeedGHz: 3.9},
		{Service: "GGServers", RAMGB: 4, VCPUsNP: true, CPUSpeedGHz: 3.2},
		{Service: "BisectHosting", RAMGB: 4, VCPUsNP: true, CPUSpeedGHz: 3.4},
		{Service: "Shockbyte", RAMGB: 4, VCPUsNP: true, CPUSpeedGHz: 4.0},
		{Service: "CubedHost", RAMGB: 2.5, VCPUsNP: true, CPUSpeedGHz: 4.5},
		{Service: "ServerMiner", RAMGB: 3, VCPUsNP: true, CPUSpeedGHz: 4.0},
		{Service: "Akliz", RAMGB: 4, VCPUsNP: true, CPUSpeedGHz: 3.4},
		{Service: "RamShard", RAMGB: 2, VCPUsNP: true, CPUSpeedGHz: 4.0},
		{Service: "MCProHosting", RAMGB: 2, VCPUsNP: true, SpeedNP: true},
		{Service: "GTXGaming", RAMGB: 3, VCPUsNP: true, CPUSpeedGHz: 3.8},
		{Service: "StickyPiston", RAMGB: 2.5, VCPUsNP: true, SpeedNP: true},
		{Service: "HostHavoc", RAMGB: 4, VCPUsNP: true, CPUSpeedGHz: 4},
		{Service: "Ferox Hosting", RAMGB: 4, VCPUsNP: true, SpeedNP: true},
		{Service: "Aquatis", RAMGB: 4, VCPUsNP: true, CPUSpeedGHz: 4.2},
		{Service: "PebbleHost", RAMGB: 3, VCPUsNP: true, CPUSpeedGHz: 3.7},
		{Service: "MelonCube", RAMGB: 4, VCPUsNP: true, CPUSpeedGHz: 3.4},
		{Service: "Azure", RAMGB: 4, VCPUs: 2, SpeedVar: true},
		{Service: "AWS", RAMGB: 1, VCPUs: 1, SpeedVar: true},
	}
}

// ModalRecommendation returns the most common published (vCPU, RAM)
// configuration across Table 7 — the "recommended hardware" MF5 evaluates.
func ModalRecommendation() (vcpus int, ramGB float64) {
	type key struct {
		v int
		r float64
	}
	counts := map[key]int{}
	recs := Table7()
	for _, r := range recs {
		if r.VCPUsNP || r.VCPUs == 0 {
			continue
		}
		counts[key{r.VCPUs, r.RAMGB}]++
	}
	var best key
	bestN := -1
	for k, n := range counts {
		if n > bestN || (n == bestN && (k.v > best.v || (k.v == best.v && k.r > best.r))) {
			best, bestN = k, n
		}
	}
	// RAM alone is also surveyed across all rows; the paper states 2 vCPU /
	// 4 GB is the most common configuration.
	return best.v, best.r
}
