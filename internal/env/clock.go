// Package env models the deployment environments Meterstick runs MLGs in:
// self-hosted dedicated hardware (DAS-5) and commercial clouds (Amazon AWS,
// Microsoft Azure), at several node sizes.
//
// The paper ran on real t3.large/xlarge/2xlarge, Standard_D2_v3 and DAS-5
// nodes. Those are unavailable here, so this package substitutes a synthetic
// environment with the variability mechanisms the paper attributes cloud
// behaviour to (§5.4): slower shared cores, CPU-steal bursts from shared
// tenancy, scheduling jitter, per-placement luck across iterations, and — for
// AWS T3 instances — burstable CPU credits with baseline throttling. The
// game engine reports per-tick work in reference-core microseconds; a Machine
// converts that work into a tick compute time under its profile.
//
// Two clocks are provided: a RealClock for wall-clock deployments over real
// TCP, and a VirtualClock that makes experiment reproduction deterministic
// and much faster than real time.
package env

import (
	"sync"
	"time"
)

// Clock abstracts time so the benchmark can run either in real time or in
// deterministic virtual time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep advances past d. On a real clock it blocks; on a virtual clock it
	// advances the clock instantly.
	Sleep(d time.Duration)
}

// RealClock is a Clock backed by the system clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a deterministic, manually advanced Clock. Sleep advances
// the clock immediately, so a 60-second experiment completes in the time it
// takes to simulate its ticks. VirtualClock is safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a VirtualClock starting at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing the clock by d without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Advance is an explicit alias of Sleep for callers that advance the clock on
// behalf of simulated work rather than waiting.
func (c *VirtualClock) Advance(d time.Duration) { c.Sleep(d) }
