package env

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockAdvances(t *testing.T) {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewVirtualClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.Sleep(50 * time.Millisecond)
	c.Advance(time.Second)
	want := start.Add(1050 * time.Millisecond)
	if !c.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", c.Now(), want)
	}
	c.Sleep(-time.Second) // negative sleeps must not rewind time
	if !c.Now().Equal(want) {
		t.Fatalf("negative sleep moved clock to %v", c.Now())
	}
}

func TestVirtualClockConcurrentSafety(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Sleep(time.Millisecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := c.Now(); !got.Equal(time.Unix(0, 0).Add(8 * time.Second)) {
		t.Fatalf("concurrent sleeps lost updates: %v", got)
	}
}

func TestMachineDeterministic(t *testing.T) {
	w := Work{EntityUS: 30000, BlockUpdateUS: 5000, ParallelFraction: 0.4, Threads: 4}
	a := NewMachine(AWSLarge, 99)
	b := NewMachine(AWSLarge, 99)
	for i := 0; i < 200; i++ {
		if da, db := a.TickComputeTime(w), b.TickComputeTime(w); da != db {
			t.Fatalf("tick %d: same seed diverged: %v vs %v", i, da, db)
		}
		if ra, rb := a.NetRTT(), b.NetRTT(); ra != rb {
			t.Fatalf("tick %d: RTT diverged", i)
		}
	}
}

func TestMachineZeroWork(t *testing.T) {
	m := NewMachine(DAS5TwoCore, 1)
	if d := m.TickComputeTime(Work{}); d != 0 {
		t.Fatalf("zero work took %v", d)
	}
}

func TestDAS5IsNearDeterministic(t *testing.T) {
	// Self-hosted hardware should show only small jitter: the ratio of max
	// to min tick time over a long run stays close to 1. GC pauses are the
	// one exception on any host, so they are disabled for this check.
	prof := DAS5TwoCore
	prof.GCPauseProb = 0
	m := NewMachine(prof, 7)
	w := Work{EntityUS: 20000, ParallelFraction: 0.3, Threads: 2}
	min, max := math.Inf(1), 0.0
	for i := 0; i < 2000; i++ {
		d := float64(m.TickComputeTime(w))
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max/min > 1.3 {
		t.Fatalf("DAS-5 jitter ratio %v, want < 1.3", max/min)
	}
}

func TestCloudHasMoreVariabilityThanSelfHosted(t *testing.T) {
	// MF3 precondition: across iterations (machines), cloud tick times vary
	// more than DAS-5 ones. Compare coefficient of variation of mean tick
	// time across 40 machines.
	w := Work{EntityUS: 25000, BlockUpdateUS: 8000, ParallelFraction: 0.35, Threads: 3}
	cv := func(p Profile) float64 {
		var means []float64
		for seed := int64(0); seed < 40; seed++ {
			m := NewMachine(p, seed)
			var sum float64
			for i := 0; i < 300; i++ {
				sum += float64(m.TickComputeTime(w))
			}
			means = append(means, sum/300)
		}
		var mu, ss float64
		for _, v := range means {
			mu += v
		}
		mu /= float64(len(means))
		for _, v := range means {
			ss += (v - mu) * (v - mu)
		}
		return math.Sqrt(ss/float64(len(means))) / mu
	}
	das5, aws, azure := cv(DAS5TwoCore), cv(AWSLarge), cv(AzureD2)
	if aws <= das5*2 {
		t.Errorf("AWS iteration CV %v should be well above DAS-5 %v", aws, das5)
	}
	if azure <= das5*2 {
		t.Errorf("Azure iteration CV %v should be well above DAS-5 %v", azure, das5)
	}
}

func TestMoreVCPUsReduceParallelWorkTime(t *testing.T) {
	// MF5 precondition: for parallel-capable work, 2XL < XL < L mean tick
	// compute time.
	w := Work{EntityUS: 60000, BlockUpdateUS: 20000, ParallelFraction: 0.5, Threads: 8}
	mean := func(p Profile) float64 {
		var sum float64
		for seed := int64(0); seed < 10; seed++ {
			m := NewMachine(p, seed)
			for i := 0; i < 200; i++ {
				sum += float64(m.TickComputeTime(w))
			}
		}
		return sum / 2000
	}
	l, xl, xxl := mean(AWSLarge), mean(AWSXLarge), mean(AWS2XLarge)
	if !(xxl < xl && xl < l) {
		t.Fatalf("node ladder not monotone: L=%v XL=%v 2XL=%v", l, xl, xxl)
	}
}

func TestBurstableThrottlingEngages(t *testing.T) {
	// Sustained heavy load on a t3 must exhaust credits and throttle,
	// multiplying compute time by 1/baseline.
	m := NewMachine(AWSLarge, 3)
	heavy := Work{EntityUS: 400000, ParallelFraction: 0.3, Threads: 2} // 400 ms of demand per tick
	var before, after time.Duration
	for i := 0; i < 400; i++ {
		d := m.TickComputeTime(heavy)
		if i == 0 {
			before = d
		}
		after = d
	}
	if !m.Throttled() {
		t.Fatal("machine never throttled under sustained heavy load")
	}
	if after < time.Duration(float64(before)*1.5) {
		t.Fatalf("throttled tick %v not clearly slower than burst tick %v", after, before)
	}
}

func TestBurstableLightLoadNeverThrottles(t *testing.T) {
	prof := AWSLarge
	prof.GCPauseProb = 0 // rare long pauses would add demand noise
	m := NewMachine(prof, 5)
	light := Work{EntityUS: 8000, UpkeepUS: 4000, ParallelFraction: 0.3, Threads: 2} // 12 ms/tick, under baseline
	for i := 0; i < 5000; i++ {
		m.TickComputeTime(light)
	}
	if m.Throttled() {
		t.Fatal("machine throttled under light load")
	}
}

func TestContentionPenalizesExtraThreads(t *testing.T) {
	// On shared tenancy, running 8 threads on 2 vCPUs must cost more than 2
	// threads for the same work (Paper-on-AWS mechanism from MF3).
	base := Work{EntityUS: 30000, ParallelFraction: 0.3, Threads: 2}
	many := base
	many.Threads = 8
	meanFor := func(w Work) float64 {
		var sum float64
		for seed := int64(0); seed < 20; seed++ {
			m := NewMachine(AWSLarge, seed)
			for i := 0; i < 100; i++ {
				sum += float64(m.TickComputeTime(w))
			}
		}
		return sum / 2000
	}
	if a, b := meanFor(base), meanFor(many); b <= a {
		t.Fatalf("8 threads (%v) should cost more than 2 threads (%v) on 2 vCPUs", b, a)
	}
}

func TestWorkTotals(t *testing.T) {
	w := Work{PlayerUS: 1, BlockUpdateUS: 2, BlockAddRemoveUS: 3, EntityUS: 4, LightUS: 5, NetworkUS: 6, UpkeepUS: 7}
	if got := w.TotalUS(); got != 28 {
		t.Fatalf("TotalUS = %v, want 28", got)
	}
	if got := w.OtherUS(); got != 18 {
		t.Fatalf("OtherUS = %v, want 18", got)
	}
	var acc Work
	acc.Add(w)
	acc.Add(w)
	if acc.TotalUS() != 56 {
		t.Fatalf("Add accumulated %v, want 56", acc.TotalUS())
	}
}

// Property: compute time is positive and scales monotonically with work.
func TestComputeTimeMonotoneProperty(t *testing.T) {
	f := func(seed int64, base uint16) bool {
		m1 := NewMachine(DAS5TwoCore, seed)
		m2 := NewMachine(DAS5TwoCore, seed)
		small := Work{EntityUS: float64(base%10000) + 1, ParallelFraction: 0.3, Threads: 2}
		big := small
		big.EntityUS *= 3
		d1 := m1.TickComputeTime(small)
		d2 := m2.TickComputeTime(big)
		return d1 > 0 && d2 > d1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNetRTTPositiveAndVariable(t *testing.T) {
	m := NewMachine(AWSLarge, 9)
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		rtt := m.NetRTT()
		if rtt <= 0 {
			t.Fatalf("non-positive RTT %v", rtt)
		}
		seen[rtt] = true
	}
	if len(seen) < 10 {
		t.Fatalf("RTT not variable: %d distinct values", len(seen))
	}
}

func TestProviderString(t *testing.T) {
	if SelfHosted.String() != "DAS5" || AWS.String() != "AWS" || Azure.String() != "Azure" {
		t.Fatal("provider names wrong")
	}
	if Provider(99).String() != "unknown" {
		t.Fatal("unknown provider name wrong")
	}
}

func TestStandardProfiles(t *testing.T) {
	profs := StandardProfiles()
	if len(profs) != 6 {
		t.Fatalf("profiles = %d, want 6", len(profs))
	}
	for name, p := range profs {
		if p.Name != name {
			t.Errorf("profile %q keyed as %q", p.Name, name)
		}
		if p.VCPUs < 1 || p.CoreSpeed <= 0 || p.ConnTimeout <= 0 {
			t.Errorf("profile %q has invalid fields: %+v", name, p)
		}
	}
	sizes := NodeSizes()
	if len(sizes) != 3 || sizes[0].VCPUs != 2 || sizes[1].VCPUs != 4 || sizes[2].VCPUs != 8 {
		t.Fatalf("NodeSizes ladder wrong: %+v", sizes)
	}
}

func TestTable7Dataset(t *testing.T) {
	rows := Table7()
	if len(rows) != 23 {
		t.Fatalf("Table 7 rows = %d, want 23 (21 hosts + Azure + AWS)", len(rows))
	}
	for _, r := range rows {
		if r.Service == "" || r.RAMGB <= 0 {
			t.Errorf("bad row: %+v", r)
		}
		if r.VCPUsNP && r.VCPUs != 0 {
			t.Errorf("row %q marked NP but has vCPUs", r.Service)
		}
	}
	v, ram := ModalRecommendation()
	if v != 2 || ram != 4 {
		t.Fatalf("modal recommendation = %d vCPU / %v GB, want 2 / 4", v, ram)
	}
}
