package sim

import (
	"fmt"
	"sort"

	"repro/internal/mlg/persist"
	"repro/internal/mlg/world"
)

// Sim section codec for the MLGP save format. Everything that feeds future
// tick output is captured: the tick number, the RNG state, the update
// queues (backlog carried across the tick boundary), the future-tick
// schedule, the spawner/hopper sets (generator-placed blocks never passed
// through trackSpecial, so they cannot be rederived from the world), and
// the scheduling-attribution counters so ParallelStats reads continuously
// across a restart. Deliberately not captured: wireSeen (stale entries
// behave exactly like absent ones), per-tick counters (reset at tick
// start), and the scratch buffers.

func appendUpdates(dst []byte, ups []scheduledUpdate) []byte {
	dst = persist.AppendU32(dst, uint32(len(ups)))
	for _, u := range ups {
		dst = persist.AppendI32(dst, int32(u.pos.X))
		dst = persist.AppendI32(dst, int32(u.pos.Y))
		dst = persist.AppendI32(dst, int32(u.pos.Z))
		dst = persist.AppendU8(dst, byte(u.kind))
		dst = persist.AppendU8(dst, u.val)
	}
	return dst
}

// updateSize is the encoded size of one scheduledUpdate.
const updateSize = 4 + 4 + 4 + 1 + 1

func decodeUpdates(d *persist.Dec) []scheduledUpdate {
	n := d.Count(updateSize)
	if n == 0 {
		return nil
	}
	ups := make([]scheduledUpdate, 0, n)
	for i := 0; i < n; i++ {
		var u scheduledUpdate
		u.pos.X = int(d.I32())
		u.pos.Y = int(d.I32())
		u.pos.Z = int(d.I32())
		u.kind = updateKind(d.U8())
		u.val = d.U8()
		if u.kind > updateIgnite {
			d.Fail(fmt.Errorf("%w: unknown sim update kind %d", persist.ErrCorrupt, u.kind))
			return nil
		}
		ups = append(ups, u)
	}
	return ups
}

func appendPosSet(dst []byte, set map[world.Pos]struct{}) []byte {
	ps := sortedPositions(set)
	dst = persist.AppendU32(dst, uint32(len(ps)))
	for _, p := range ps {
		dst = persist.AppendI32(dst, int32(p.X))
		dst = persist.AppendI32(dst, int32(p.Y))
		dst = persist.AppendI32(dst, int32(p.Z))
	}
	return dst
}

func decodePosSet(d *persist.Dec) map[world.Pos]struct{} {
	n := d.Count(12)
	set := make(map[world.Pos]struct{}, n)
	for i := 0; i < n; i++ {
		p := world.Pos{X: int(d.I32()), Y: int(d.I32()), Z: int(d.I32())}
		set[p] = struct{}{}
	}
	return set
}

// AppendPersist appends the engine's section payload to dst. Must be
// called between ticks.
func (e *Engine) AppendPersist(dst []byte) []byte {
	dst = persist.AppendI64(dst, e.tick)
	dst = persist.AppendU64(dst, e.src.State())
	dst = persist.AppendI64(dst, e.ItemsCollected)
	dst = appendUpdates(dst, e.pending)
	dst = appendUpdates(dst, e.redstonePending)

	dues := make([]int64, 0, len(e.scheduled))
	for due := range e.scheduled {
		dues = append(dues, due)
	}
	sort.Slice(dues, func(i, j int) bool { return dues[i] < dues[j] })
	dst = persist.AppendU32(dst, uint32(len(dues)))
	for _, due := range dues {
		dst = persist.AppendI64(dst, due)
		dst = appendUpdates(dst, e.scheduled[due])
	}

	dst = appendPosSet(dst, e.spawners)
	dst = appendPosSet(dst, e.hoppers)

	dst = persist.AppendU32(dst, uint32(e.lastRegions))
	lp := byte(0)
	if e.lastParallel {
		lp = 1
	}
	dst = persist.AppendU8(dst, lp)
	dst = persist.AppendI64(dst, e.parallelTicks)
	dst = persist.AppendI64(dst, e.fallbackTicks)
	dst = persist.AppendI64(dst, int64(e.serialHold))
	return dst
}

// RestorePersist replaces the engine's mutable state with a decoded
// section. The engine must be freshly constructed over the already-restored
// world (same seed and config); the chunk cache is reset because restore
// replaces chunk objects wholesale.
func (e *Engine) RestorePersist(data []byte) error {
	d := persist.NewDec(data)
	tick := d.I64()
	rngState := d.U64()
	items := d.I64()
	pending := decodeUpdates(d)
	redstone := decodeUpdates(d)

	nSched := d.Count(8 + 4)
	scheduled := make(map[int64][]scheduledUpdate, nSched)
	for i := 0; i < nSched; i++ {
		due := d.I64()
		ups := decodeUpdates(d)
		if d.Err() != nil {
			break
		}
		scheduled[due] = ups
	}

	spawners := decodePosSet(d)
	hoppers := decodePosSet(d)

	lastRegions := int(d.U32())
	lastParallel := d.U8() != 0
	parallelTicks := d.I64()
	fallbackTicks := d.I64()
	serialHold := int(d.I64())

	if err := d.Err(); err != nil {
		return fmt.Errorf("sim section: %w", err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: sim section has %d trailing bytes", persist.ErrCorrupt, d.Remaining())
	}

	e.tick = tick
	e.src.SetState(rngState) // root exec's rng aliases src, so it follows
	e.ItemsCollected = items
	e.pending = pending
	e.redstonePending = redstone
	e.scheduled = scheduled
	e.spawners = spawners
	e.hoppers = hoppers
	e.spawnersSorted = nil
	e.hoppersSorted = nil
	e.wireSeen = make(map[world.Pos]int64)
	e.root.wireSeen = e.wireSeen
	e.counters = Counters{}
	e.suppress = false
	e.merging = false
	e.lastRegions = lastRegions
	e.lastParallel = lastParallel
	e.parallelTicks = parallelTicks
	e.fallbackTicks = fallbackTicks
	e.serialHold = serialHold
	// Restored chunks are new objects; drop any cached pointers.
	e.wc = world.NewChunkCache(e.w)
	return nil
}
