package sim

// Region partitioning for parallel terrain-simulation drains.
//
// A simulation region is a connected component of the tick's dirty chunks —
// the chunk columns containing queued updates — where two dirty chunks are
// connected when their Chebyshev chunk distance is at most regionLinkChunks.
// Each region owns its core chunks plus a one-chunk halo ring; the region's
// drain may write only inside that owned set.
//
// Safety argument for regionLinkChunks = 3:
//   - cores of distinct regions are >= 4 chunks apart (else they would have
//     merged), so their owned sets (core ⊕ 1 halo) are >= 2 chunks apart;
//   - writes are confined to the owned set (a write outside it aborts the
//     tick's parallel attempt — see regionRun.setBlock), so no chunk is
//     ever written by two regions, and the >= 2-chunk gap between owned
//     sets is written by nobody;
//   - a single rule application reads at most ~3 blocks around its update
//     position, so reads from a region's halo edge reach at most a fraction
//     of the first gap chunk — memory no other region writes.
// Together: region drains touch disjoint memory, and every read a region
// performs outside its owned set observes quiescent (tick-start) state,
// exactly what the serial drain would have observed.

import (
	"sort"

	"repro/internal/mlg/world"
)

// regionLinkChunks is the Chebyshev chunk distance at which dirty chunks
// merge into one region (see the package comment above for why 3).
const regionLinkChunks = 3

// minParallelUpdates is the queue size below which a parallel attempt is not
// worth the partition + worker handoff cost and the tick drains serially.
const minParallelUpdates = 32

// minUnitUpdates is the target drained-update count per packed work unit:
// regions merge into contiguous units until each carries at least this much
// estimated work, so the parallel fan-out follows the queue volume rather
// than the region count.
const minUnitUpdates = 16

// unitsPerWorker bounds the packed unit count to a few units per worker —
// slack for the pool's work stealing without per-region handoff overhead.
const unitsPerWorker = 4

// partitionRegions groups the engine's queued updates into simulation
// regions. It returns the regions sorted by key (minimal core chunk in
// (Z, X) order — the same convention as World.LoadedChunks), plus the
// initial virtual-queue tag sequences: vpInit[i] is the region index owning
// e.pending[i], vrInit likewise for e.redstonePending; nComps is the
// component count. When fewer than minRegions components exist, only
// nComps is returned — the per-update queue copy (the expensive half of
// partitioning) is skipped, since the caller will drain serially anyway.
// The engine's queues are copied, never consumed, so an aborted parallel
// attempt can fall back to the serial drain over the originals.
func (e *Engine) partitionRegions(minRegions int) (regions []*regionRun, vpInit, vrInit []int32, nComps int) {
	const unassigned = -1
	if e.dirtyScratch == nil {
		e.dirtyScratch = make(map[world.ChunkPos]int32, 64)
	}
	clear(e.dirtyScratch)
	dirty := e.dirtyScratch
	for _, u := range e.pending {
		dirty[world.ChunkPosAt(u.pos)] = unassigned
	}
	for _, u := range e.redstonePending {
		dirty[world.ChunkPosAt(u.pos)] = unassigned
	}

	// Connected components over the dirty set (the shared flood fill).
	// Component ids follow map iteration order, but components are
	// canonical, and the final region order is fixed by the key sort below.
	var comps [][]world.ChunkPos
	world.LabelComponents(dirty, regionLinkChunks, func(comp int32, cp world.ChunkPos) {
		if int(comp) == len(comps) {
			comps = append(comps, nil)
		}
		comps[comp] = append(comps[comp], cp)
	})
	nComps = len(comps)
	if nComps < minRegions {
		return nil, nil, nil, nComps
	}

	// byComp[compID] is the region in component order; regions is the same
	// set sorted by key.
	byComp := make([]*regionRun, len(comps))
	regions = make([]*regionRun, len(comps))
	for i, comp := range comps {
		r := e.takeRegionRun()
		r.key = comp[0]
		for _, cp := range comp {
			if cp.Z < r.key.Z || (cp.Z == r.key.Z && cp.X < r.key.X) {
				r.key = cp
			}
			r.core[cp] = struct{}{}
			for dz := int32(-1); dz <= 1; dz++ {
				for dx := int32(-1); dx <= 1; dx++ {
					r.owned[world.ChunkPos{X: cp.X + dx, Z: cp.Z + dz}] = struct{}{}
				}
			}
		}
		byComp[i] = r
		regions[i] = r
	}
	sort.Slice(regions, func(i, j int) bool {
		a, b := regions[i].key, regions[j].key
		if a.Z != b.Z {
			return a.Z < b.Z
		}
		return a.X < b.X
	})
	// remap[compID] = sorted region index, so queue entries resolve through
	// the dirty map in one lookup. The keys were computed on the regions
	// themselves above; byComp carries them across the sort.
	byKey := make(map[world.ChunkPos]int32, len(regions))
	for i, r := range regions {
		byKey[r.key] = int32(i)
	}
	remap := make([]int32, len(comps))
	for compID, r := range byComp {
		remap[compID] = byKey[r.key]
	}

	vpInit = e.vpScratch[:0]
	for _, u := range e.pending {
		idx := remap[dirty[world.ChunkPosAt(u.pos)]]
		vpInit = append(vpInit, idx)
		regions[idx].pendingQ = append(regions[idx].pendingQ, u)
	}
	vrInit = e.vrScratch[:0]
	for _, u := range e.redstonePending {
		idx := remap[dirty[world.ChunkPosAt(u.pos)]]
		vrInit = append(vrInit, idx)
		regions[idx].redstoneQ = append(regions[idx].redstoneQ, u)
	}
	e.vpScratch, e.vrScratch = vpInit, vrInit
	return regions, vpInit, vrInit, nComps
}

// takeRegionRun reuses a pooled regionRun shell (its maps cleared, its
// buffers length-reset but capacity-retained) or allocates a fresh one.
// Shells return to the pool at the end of every parallel attempt, so
// steady-state parallel ticks stop growing the heap with per-tick region
// buffers.
func (e *Engine) takeRegionRun() *regionRun {
	if n := len(e.regionPool); n > 0 {
		r := e.regionPool[n-1]
		e.regionPool = e.regionPool[:n-1]
		r.reset()
		return r
	}
	return &regionRun{
		core:  make(map[world.ChunkPos]struct{}, 16),
		owned: make(map[world.ChunkPos]struct{}, 64),
	}
}

// releaseRegionRuns returns the tick's region shells to the pool. Callers
// must be done with every buffer the regions own (queues, logs, events).
func (e *Engine) releaseRegionRuns(regions []*regionRun) {
	e.regionPool = append(e.regionPool, regions...)
}

func (r *regionRun) reset() {
	clear(r.core)
	clear(r.owned)
	r.pendingQ = r.pendingQ[:0]
	r.redstoneQ = r.redstoneQ[:0]
	r.log = r.log[:0]
	r.events = r.events[:0]
	r.undo = r.undo[:0]
	r.pendPops, r.redPops = 0, 0
	r.counters = Counters{}
	r.setCount, r.lightScans = 0, 0
	r.escaped = false
	r.cache = world.ChunkCache{}
}
