// Package sim implements the terrain simulation of the MLG engine — the
// Terrain Simulation element of the paper's operational model (Figure 4,
// component 5) and the environment-based workload sources of §2.2.2:
// gravity physics, fluid flow, plant growth, lighting recomputation, and the
// redstone-like logic components that simulated constructs (farms, lag
// machines) are built from.
//
// Simulation is driven by terrain state updates: every block change queues
// neighbour updates, rules applied to those neighbours may change more
// blocks, and the cascade continues — the sequential, hard-to-parallelize
// propagation the paper's bridge example describes (§2.3). Logic components
// run on redstone ticks (every second game tick), which is what makes
// redstone-heavy constructs alternate between heavy and light game ticks —
// the mechanism behind the Lag workload's extreme Instability Ratio (§5.3).
package sim

import (
	"math/rand"
	"sort"

	"repro/internal/mlg/world"
)

// EntityOps is the entity-world surface the terrain simulation needs:
// terrain rules spawn entities (primed TNT, item drops, spawner mobs) and
// hoppers absorb item entities. The server wires its entity store in here.
type EntityOps interface {
	// SpawnPrimedTNT creates an ignited TNT entity with the given fuse.
	SpawnPrimedTNT(p world.Pos, fuseTicks int)
	// SpawnItem creates an item entity for the given block type.
	SpawnItem(p world.Pos, item world.BlockID)
	// SpawnMob creates a hostile mob (used by spawner blocks).
	SpawnMob(p world.Pos)
	// CollectItems removes item entities within radius of p and returns how
	// many were absorbed (hopper intake).
	CollectItems(p world.Pos, radius float64) int
}

// Counters accumulates the terrain-simulation work performed during one game
// tick, in operation counts. The server converts these to cost-model
// microseconds and to the Figure 11 tick-distribution categories.
type Counters struct {
	// BlockUpdates counts simulation-rule applications ("Block Update").
	BlockUpdates int
	// RedstoneOps counts logic-component evaluations (subset of updates).
	RedstoneOps int
	// FluidOps counts fluid spread/drain steps (subset of updates).
	FluidOps int
	// GrowthOps counts plant growth steps (subset of updates).
	GrowthOps int
	// BlockAdds and BlockRemoves count block creations/destructions
	// ("Block Add/Remove").
	BlockAdds    int
	BlockRemoves int
	// Explosions counts explosions processed; ExplosionBlocks the blocks
	// destroyed by them; ExplosionScan the blast-volume cells scanned (the
	// quantity PaperMC's explosion merging reduces).
	Explosions      int
	ExplosionBlocks int
	ExplosionScan   int
	// LightScans counts blocks scanned by lighting recomputation.
	LightScans int
	// RandomTicks counts random-tick samples taken.
	RandomTicks int
	// Backlog is the number of queued updates deferred to the next tick by
	// the per-tick update cap.
	Backlog int
}

// Config tunes the simulation engine, including the flavor-dependent
// optimizations PaperMC applies (Appendix A).
type Config struct {
	// RandomTickRate is random-tick samples per loaded chunk per game tick
	// (plant growth driver). Minecraft's default is 3.
	RandomTickRate int
	// MaxUpdatesPerTick caps rule applications per game tick; excess queues
	// to the next tick (overload backpressure).
	MaxUpdatesPerTick int
	// RedstoneBatch dedupes redundant wire recomputations within a tick
	// (a PaperMC optimization; reduces Lag/Farm update counts).
	RedstoneBatch bool
	// ExplosionMerge batches simultaneous explosions so overlapping blast
	// volumes are scanned once (a PaperMC TNT optimization).
	ExplosionMerge bool
	// ItemDropChance is the probability an explosion-destroyed block drops
	// an item entity.
	ItemDropChance float64
	// SpawnerIntervalTicks is the mob-spawner period.
	SpawnerIntervalTicks int
}

// DefaultConfig returns vanilla-like settings.
func DefaultConfig() Config {
	return Config{
		RandomTickRate:       3,
		MaxUpdatesPerTick:    200_000,
		RedstoneBatch:        false,
		ExplosionMerge:       false,
		ItemDropChance:       0.30,
		SpawnerIntervalTicks: 40,
	}
}

type updateKind uint8

const (
	updateNeighbor      updateKind = iota // re-evaluate the block's rule
	updateObserverClear                   // end an observer pulse
	updateObserverFire                    // observer saw its watched block change
	updateRepeaterFire                    // repeater output fires after its delay
	updatePistonRetract                   // piston pulls back
	updateIgnite                          // ignite TNT at the position
)

type scheduledUpdate struct {
	pos  world.Pos
	kind updateKind
	// val carries latched state for delayed component updates (a repeater
	// locks in its output change when it schedules it, like Minecraft's).
	val uint8
}

// Engine is the terrain-simulation state machine for one world.
type Engine struct {
	w *world.World
	// wc is the engine's chunk-pointer cache: rule application, explosion
	// scans and queue routing read blocks through it so repeated same-chunk
	// access skips the world lock and chunk-map hash.
	wc   world.ChunkCache
	ents EntityOps
	rng  *rand.Rand
	cfg  Config

	tick int64
	// pending is the neighbour-update queue for the current/next game tick.
	pending []scheduledUpdate
	// redstonePending holds logic-component updates; they are only drained
	// on redstone ticks (every second game tick).
	redstonePending []scheduledUpdate
	// scheduled maps future tick numbers to their due updates.
	scheduled map[int64][]scheduledUpdate
	// spawners tracks spawner block positions for periodic activation;
	// hoppers tracks hopper positions for item collection. The sorted
	// views are cached (invalidated on mutation in trackSpecial) because
	// both sets are walked every redstone tick but change only on block
	// add/remove.
	spawners       map[world.Pos]struct{}
	hoppers        map[world.Pos]struct{}
	spawnersSorted []world.Pos
	hoppersSorted  []world.Pos
	// wireSeen tracks per-tick wire recomputations when RedstoneBatch is
	// on: value = tick<<2 | count, allowing up to two evaluations per wire
	// per tick (the optimizer removes *redundant* re-walks, it cannot make
	// a pathological update storm free).
	wireSeen map[world.Pos]int64

	counters Counters
	// suppress stops the change listener from self-queueing while the
	// engine itself mutates blocks in bulk (explosions handle their own
	// propagation).
	suppress bool

	// ItemsCollected counts hopper absorptions for farm-throughput reports.
	ItemsCollected int64
}

// New creates an engine bound to the world and entity store, seeded
// deterministically, and registers its change listener on the world.
func New(w *world.World, ents EntityOps, cfg Config, seed int64) *Engine {
	e := &Engine{
		w:         w,
		wc:        world.NewChunkCache(w),
		ents:      ents,
		rng:       rand.New(rand.NewSource(seed)),
		cfg:       cfg,
		scheduled: make(map[int64][]scheduledUpdate),
		spawners:  make(map[world.Pos]struct{}),
		hoppers:   make(map[world.Pos]struct{}),
		wireSeen:  make(map[world.Pos]int64),
	}
	w.OnChange(e.onBlockChange)
	return e
}

// onBlockChange queues neighbour updates for every terrain mutation — the
// "terrain simulation is driven by terrain state updates" loop of §2.3.
func (e *Engine) onBlockChange(p world.Pos, old, new world.Block) {
	if e.suppress {
		return
	}
	e.trackSpecial(p, new)
	e.queueNeighbors(p)
	e.notifyObservers(p)
}

// trackSpecial maintains the spawner/hopper position sets.
func (e *Engine) trackSpecial(p world.Pos, b world.Block) {
	switch b.ID {
	case world.Spawner:
		if _, ok := e.spawners[p]; !ok {
			e.spawners[p] = struct{}{}
			e.spawnersSorted = nil
		}
	case world.Hopper:
		if _, ok := e.hoppers[p]; !ok {
			e.hoppers[p] = struct{}{}
			e.hoppersSorted = nil
		}
	default:
		if _, ok := e.spawners[p]; ok {
			delete(e.spawners, p)
			e.spawnersSorted = nil
		}
		if _, ok := e.hoppers[p]; ok {
			delete(e.hoppers, p)
			e.hoppersSorted = nil
		}
	}
}

// queueNeighbors enqueues rule re-evaluation for a position's six
// neighbours and itself. Logic components go on the redstone queue.
func (e *Engine) queueNeighbors(p world.Pos) {
	e.enqueue(scheduledUpdate{pos: p, kind: updateNeighbor})
	for _, n := range p.Neighbors6() {
		e.enqueue(scheduledUpdate{pos: n, kind: updateNeighbor})
	}
}

func (e *Engine) enqueue(u scheduledUpdate) {
	b, loaded := e.wc.BlockIfLoaded(u.pos)
	if !loaded {
		return
	}
	if b.IsRedstoneComponent() {
		e.redstonePending = append(e.redstonePending, u)
	} else {
		e.pending = append(e.pending, u)
	}
}

// notifyObservers pulses any observer watching the changed position.
func (e *Engine) notifyObservers(changed world.Pos) {
	for _, d := range []world.Direction{world.DirUp, world.DirDown, world.DirNorth,
		world.DirSouth, world.DirEast, world.DirWest} {
		op := d.Move(changed)
		b, loaded := e.wc.BlockIfLoaded(op)
		if !loaded || b.ID != world.Observer {
			continue
		}
		// The observer fires only if it faces the changed block. A dedicated
		// update kind distinguishes "watched block changed" from ordinary
		// neighbour updates, so an observer's own pulse block-change cannot
		// retrigger it.
		if b.Facing().Move(op) == changed && !b.ObserverPulsing() {
			e.redstonePending = append(e.redstonePending,
				scheduledUpdate{pos: op, kind: updateObserverFire})
		}
	}
}

// schedule queues an update for delayTicks game ticks in the future.
func (e *Engine) schedule(p world.Pos, delayTicks int, kind updateKind) {
	e.scheduleVal(p, delayTicks, kind, 0)
}

// scheduleVal queues an update carrying a latched value.
func (e *Engine) scheduleVal(p world.Pos, delayTicks int, kind updateKind, val uint8) {
	due := e.tick + int64(delayTicks)
	if due <= e.tick {
		due = e.tick + 1
	}
	e.scheduled[due] = append(e.scheduled[due], scheduledUpdate{pos: p, kind: kind, val: val})
}

// ScheduleIgnite queues TNT ignition at p after delayTicks — used by
// workload worlds to set off the TNT cuboid ~20 s after start.
func (e *Engine) ScheduleIgnite(p world.Pos, delayTicks int) {
	e.schedule(p, delayTicks, updateIgnite)
}

// Sub returns the component-wise difference c - o, used to attribute the
// work of an operation (e.g. an explosion) run between ticks.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		BlockUpdates:    c.BlockUpdates - o.BlockUpdates,
		RedstoneOps:     c.RedstoneOps - o.RedstoneOps,
		FluidOps:        c.FluidOps - o.FluidOps,
		GrowthOps:       c.GrowthOps - o.GrowthOps,
		BlockAdds:       c.BlockAdds - o.BlockAdds,
		BlockRemoves:    c.BlockRemoves - o.BlockRemoves,
		Explosions:      c.Explosions - o.Explosions,
		ExplosionBlocks: c.ExplosionBlocks - o.ExplosionBlocks,
		ExplosionScan:   c.ExplosionScan - o.ExplosionScan,
		LightScans:      c.LightScans - o.LightScans,
		RandomTicks:     c.RandomTicks - o.RandomTicks,
		Backlog:         c.Backlog - o.Backlog,
	}
}

// Add returns the component-wise sum of c and o.
func (c Counters) Add(o Counters) Counters {
	return c.Sub(Counters{}.Sub(o))
}

// Tick runs one game tick of terrain simulation and returns the work
// counters for the tick. A redstone tick runs on every second game tick.
func (e *Engine) Tick() Counters {
	e.counters = Counters{}
	e.tick++
	_, _, lightBefore := e.w.Stats()

	// Due scheduled updates.
	if due, ok := e.scheduled[e.tick]; ok {
		delete(e.scheduled, e.tick)
		for _, u := range due {
			if b, _ := e.wc.BlockIfLoaded(u.pos); b.IsRedstoneComponent() || u.kind != updateNeighbor {
				e.redstonePending = append(e.redstonePending, u)
			} else {
				e.pending = append(e.pending, u)
			}
		}
	}

	budget := e.cfg.MaxUpdatesPerTick
	if budget <= 0 {
		budget = 200_000
	}

	// Drain the plain neighbour queue. Updates whose target turned into a
	// logic component since they were enqueued are re-routed to the redstone
	// queue at drain time.
	budget = e.drain(&e.pending, budget, false)

	// Redstone tick: logic components evaluate every second game tick.
	if e.tick%2 == 0 {
		budget = e.drain(&e.redstonePending, budget, true)
		e.tickSpawners()
		e.tickHoppers()
		e.purgeWireSeen()
	}

	// Random ticks drive plant growth and similar slow processes.
	e.randomTicks()

	e.counters.Backlog = len(e.pending) + len(e.redstonePending)
	_, _, lightAfter := e.w.Stats()
	e.counters.LightScans += lightAfter - lightBefore
	return e.counters
}

// drain applies updates from the queue until it empties or the budget is
// exhausted; it returns the remaining budget. Updates enqueued during
// processing are handled in the same drain (cascades run to completion
// within the tick, budget permitting). When redstoneAllowed is false,
// updates targeting logic components are deferred to the redstone queue
// instead of applied, preserving the every-other-tick redstone cadence.
func (e *Engine) drain(queue *[]scheduledUpdate, budget int, redstoneAllowed bool) int {
	for len(*queue) > 0 && budget > 0 {
		q := *queue
		u := q[0]
		*queue = q[1:]
		if !redstoneAllowed {
			if b, loaded := e.wc.BlockIfLoaded(u.pos); loaded && b.IsRedstoneComponent() {
				e.redstonePending = append(e.redstonePending, u)
				continue
			}
		}
		budget--
		e.apply(u)
	}
	return budget
}

// purgeWireSeen drops stale per-tick wire dedup entries once the map grows
// large. Entries from past ticks behave exactly like absent ones (the lookup
// compares the stored tick), so purging never changes behaviour — it only
// bounds memory on long redstone-heavy runs.
func (e *Engine) purgeWireSeen() {
	if len(e.wireSeen) < 4096 {
		return
	}
	for p, v := range e.wireSeen {
		if v>>2 != e.tick {
			delete(e.wireSeen, p)
		}
	}
}

// TickNumber returns the current game-tick number.
func (e *Engine) TickNumber() int64 { return e.tick }

// PendingUpdates returns the size of the live update backlog.
func (e *Engine) PendingUpdates() int { return len(e.pending) + len(e.redstonePending) }

// tickSpawners activates spawner blocks on their period.
func (e *Engine) tickSpawners() {
	interval := int64(e.cfg.SpawnerIntervalTicks)
	if interval <= 0 {
		interval = 40
	}
	for _, p := range e.sortedSpawners() {
		// Offset by position hash so spawners do not fire in lockstep. The
		// offset is kept even-aligned because this method only runs on
		// redstone ticks.
		half := interval / 2
		if half < 1 {
			half = 1
		}
		off := 2 * int64(uint64(p.X*73856093^p.Y*19349663^p.Z*83492791)%uint64(half))
		if (e.tick+off)%interval == 0 {
			e.counters.BlockUpdates++
			e.ents.SpawnMob(p.Up())
		}
	}
}

// tickHoppers makes hoppers absorb item entities above them (every redstone
// tick, approximating the 4-game-tick hopper cooldown).
func (e *Engine) tickHoppers() {
	for _, p := range e.sortedHoppers() {
		e.counters.BlockUpdates++
		n := e.ents.CollectItems(p.Up(), 1.2)
		e.ItemsCollected += int64(n)
	}
}

// sortedSpawners and sortedHoppers return the sets in a fixed order: spawn
// and collection order feed the entity store's RNG and IDs, so map
// iteration order would make otherwise-identical runs diverge. The sorted
// views are rebuilt only after a mutation.
func (e *Engine) sortedSpawners() []world.Pos {
	if e.spawnersSorted == nil {
		e.spawnersSorted = sortedPositions(e.spawners)
	}
	return e.spawnersSorted
}

func (e *Engine) sortedHoppers() []world.Pos {
	if e.hoppersSorted == nil {
		e.hoppersSorted = sortedPositions(e.hoppers)
	}
	return e.hoppersSorted
}

func sortedPositions(set map[world.Pos]struct{}) []world.Pos {
	out := make([]world.Pos, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		if a.Z != b.Z {
			return a.Z < b.Z
		}
		return a.X < b.X
	})
	return out
}

// randomTicks samples RandomTickRate random blocks per loaded chunk and
// applies growth rules to them. Sampling reads straight off each chunk
// (LoadedChunkRefs) — with thousands of loaded chunks this pass would
// otherwise pay a world-lock acquisition and chunk-map lookup per sample.
func (e *Engine) randomTicks() {
	rate := e.cfg.RandomTickRate
	if rate <= 0 {
		return
	}
	for _, c := range e.w.LoadedChunkRefs() {
		origin := c.Pos.Origin()
		for i := 0; i < rate; i++ {
			e.counters.RandomTicks++
			lx := e.rng.Intn(world.ChunkSize)
			y := e.rng.Intn(world.Height)
			lz := e.rng.Intn(world.ChunkSize)
			p := world.Pos{X: origin.X + lx, Y: y, Z: origin.Z + lz}
			e.applyGrowth(p, c.At(lx, y, lz))
		}
	}
}
