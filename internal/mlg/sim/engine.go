// Package sim implements the terrain simulation of the MLG engine — the
// Terrain Simulation element of the paper's operational model (Figure 4,
// component 5) and the environment-based workload sources of §2.2.2:
// gravity physics, fluid flow, plant growth, lighting recomputation, and the
// redstone-like logic components that simulated constructs (farms, lag
// machines) are built from.
//
// Simulation is driven by terrain state updates: every block change queues
// neighbour updates, rules applied to those neighbours may change more
// blocks, and the cascade continues — the sequential, hard-to-parallelize
// propagation the paper's bridge example describes (§2.3). Logic components
// run on redstone ticks (every second game tick), which is what makes
// redstone-heavy constructs alternate between heavy and light game ticks —
// the mechanism behind the Lag workload's extreme Instability Ratio (§5.3).
//
// The engine can drain independent simulation regions on a worker pool
// (Config.SimWorkers); region.go builds the partition and parallel.go proves
// the schedule equivalent to the serial drain by reconstructing the global
// update order at merge time. SimWorkers <= 1 keeps the legacy serial path.
package sim

import (
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/mlg/mrand"
	"repro/internal/mlg/world"
)

// EntityOps is the entity-world surface the terrain simulation needs:
// terrain rules spawn entities (primed TNT, item drops, spawner mobs) and
// hoppers absorb item entities. The server wires its entity store in here.
type EntityOps interface {
	// SpawnPrimedTNT creates an ignited TNT entity with the given fuse.
	SpawnPrimedTNT(p world.Pos, fuseTicks int)
	// SpawnItem creates an item entity for the given block type.
	SpawnItem(p world.Pos, item world.BlockID)
	// SpawnMob creates a hostile mob (used by spawner blocks).
	SpawnMob(p world.Pos)
	// CollectItems removes item entities within radius of p and returns how
	// many were absorbed (hopper intake).
	CollectItems(p world.Pos, radius float64) int
}

// Counters accumulates the terrain-simulation work performed during one game
// tick, in operation counts. The server converts these to cost-model
// microseconds and to the Figure 11 tick-distribution categories.
type Counters struct {
	// BlockUpdates counts simulation-rule applications ("Block Update").
	BlockUpdates int
	// RedstoneOps counts logic-component evaluations (subset of updates).
	RedstoneOps int
	// FluidOps counts fluid spread/drain steps (subset of updates).
	FluidOps int
	// GrowthOps counts plant growth steps (subset of updates).
	GrowthOps int
	// BlockAdds and BlockRemoves count block creations/destructions
	// ("Block Add/Remove").
	BlockAdds    int
	BlockRemoves int
	// Explosions counts explosions processed; ExplosionBlocks the blocks
	// destroyed by them; ExplosionScan the blast-volume cells scanned (the
	// quantity PaperMC's explosion merging reduces).
	Explosions      int
	ExplosionBlocks int
	ExplosionScan   int
	// LightScans counts blocks scanned by lighting recomputation.
	LightScans int
	// RandomTicks counts random-tick samples taken.
	RandomTicks int
	// Backlog is the number of queued updates deferred to the next tick by
	// the per-tick update cap.
	Backlog int
}

// Config tunes the simulation engine, including the flavor-dependent
// optimizations PaperMC applies (Appendix A).
type Config struct {
	// RandomTickRate is random-tick samples per loaded chunk per game tick
	// (plant growth driver). Minecraft's default is 3.
	RandomTickRate int
	// MaxUpdatesPerTick caps rule applications per game tick; excess queues
	// to the next tick (overload backpressure).
	MaxUpdatesPerTick int
	// RedstoneBatch dedupes redundant wire recomputations within a tick
	// (a PaperMC optimization; reduces Lag/Farm update counts).
	RedstoneBatch bool
	// ExplosionMerge batches simultaneous explosions so overlapping blast
	// volumes are scanned once (a PaperMC TNT optimization).
	ExplosionMerge bool
	// ItemDropChance is the probability an explosion-destroyed block drops
	// an item entity.
	ItemDropChance float64
	// SpawnerIntervalTicks is the mob-spawner period.
	SpawnerIntervalTicks int
	// SimWorkers is the number of goroutines draining independent simulation
	// regions per tick. 0 means GOMAXPROCS; 1 keeps the legacy serial drain
	// (the differential-testing baseline). Whatever the value, results are
	// bit-identical to the serial drain: parallel.go merges region output in
	// the reconstructed serial order and falls back to the serial path when
	// a tick cannot be proven independent.
	SimWorkers int
	// Owns, when non-nil, is the shard-mode ownership filter: the engine
	// simulates only chunks for which it returns true. Updates targeting
	// unowned chunks are never enqueued, spawners/hoppers in unowned chunks
	// never fire, unowned chunks take no random ticks, and explosions do not
	// destroy unowned blocks (the blast volume is still scanned, so scan
	// counters sum across shards to the single-shard value). Every draw the
	// simulation makes is keyed by position and tick (streams.go), so the
	// owned subset evolves bit-identically to the same chunks in a
	// single-shard run as long as no cascade crosses an ownership boundary.
	// nil owns everything (the single-process default).
	Owns func(world.ChunkPos) bool
}

// DefaultConfig returns vanilla-like settings.
func DefaultConfig() Config {
	return Config{
		RandomTickRate:       3,
		MaxUpdatesPerTick:    200_000,
		RedstoneBatch:        false,
		ExplosionMerge:       false,
		ItemDropChance:       0.30,
		SpawnerIntervalTicks: 40,
	}
}

type updateKind uint8

const (
	updateNeighbor      updateKind = iota // re-evaluate the block's rule
	updateObserverClear                   // end an observer pulse
	updateObserverFire                    // observer saw its watched block change
	updateRepeaterFire                    // repeater output fires after its delay
	updatePistonRetract                   // piston pulls back
	updateIgnite                          // ignite TNT at the position
)

type scheduledUpdate struct {
	pos  world.Pos
	kind updateKind
	// val carries latched state for delayed component updates (a repeater
	// locks in its output change when it schedules it, like Minecraft's).
	val uint8
}

// Engine is the terrain-simulation state machine for one world.
type Engine struct {
	w *world.World
	// wc is the engine's chunk-pointer cache: rule application, explosion
	// scans and queue routing read blocks through it so repeated same-chunk
	// access skips the world lock and chunk-map hash.
	wc   world.ChunkCache
	ents EntityOps
	// rng draws from src, a serializable splitmix64 source: its one-word
	// state moves in and out of world snapshots (persist.go), so a restored
	// engine continues the exact random-tick/drop sequence of the saved run.
	rng  *rand.Rand
	src  *mrand.Source
	cfg  Config
	seed int64
	// workers is the resolved SimWorkers value (0 → GOMAXPROCS at creation).
	workers int

	tick int64
	// pending is the neighbour-update queue for the current/next game tick.
	pending []scheduledUpdate
	// redstonePending holds logic-component updates; they are only drained
	// on redstone ticks (every second game tick).
	redstonePending []scheduledUpdate
	// scheduled maps future tick numbers to their due updates.
	scheduled map[int64][]scheduledUpdate
	// spawners tracks spawner block positions for periodic activation;
	// hoppers tracks hopper positions for item collection. The sorted
	// views are cached (invalidated on mutation in trackSpecial) because
	// both sets are walked every redstone tick but change only on block
	// add/remove.
	spawners       map[world.Pos]struct{}
	hoppers        map[world.Pos]struct{}
	spawnersSorted []world.Pos
	hoppersSorted  []world.Pos
	// wireSeen tracks per-tick wire recomputations when RedstoneBatch is
	// on: value = tick<<2 | count, allowing up to two evaluations per wire
	// per tick (the optimizer removes *redundant* re-walks, it cannot make
	// a pathological update storm free).
	wireSeen map[world.Pos]int64

	counters Counters
	// suppress stops the change listener from self-queueing while the
	// engine itself mutates blocks in bulk (explosions handle their own
	// propagation).
	suppress bool
	// merging marks the parallel-merge replay: region drains already queued
	// their own cascades, so the change listener must only maintain the
	// spawner/hopper sets while buffered events are re-emitted to the
	// world's other listeners.
	merging bool

	// root is the engine's own execution context: the serial drains, random
	// ticks and explosions all run through it, reading and writing the
	// engine fields above exactly as the pre-region-split engine did.
	root exec

	// Parallel-schedule scratch, reused across ticks: the dirty-chunk map,
	// the initial virtual-queue tag buffers, pooled region shells, and the
	// cost/unit buffers of the size-aware work packer.
	dirtyScratch map[world.ChunkPos]int32
	vpScratch    []int32
	vrScratch    []int32
	regionPool   []*regionRun
	costScratch  []int
	unitScratch  [][2]int

	// Parallel-schedule attribution (see ParallelStats).
	lastRegions   int
	lastParallel  bool
	parallelTicks int64
	fallbackTicks int64
	// serialHold suppresses parallel attempts for a few ticks after a
	// rolled-back one: an escaping cascade usually keeps escaping on the
	// following ticks, and every aborted attempt costs a full drain plus
	// rollback on top of the serial re-run. Tick-count based, so scheduling
	// stays deterministic.
	serialHold int

	// ItemsCollected counts hopper absorptions for farm-throughput reports.
	ItemsCollected int64
}

// exec is one drain-execution context. The engine's root context aliases the
// engine's own queues, counters and chunk cache (the legacy serial path); a
// region context owns region-local queues and buffers every externally
// visible effect (entity spawns, future schedules, listener events) for the
// deterministic merge. Rule code is written once against exec, so the serial
// and parallel paths cannot drift apart.
type exec struct {
	e        *Engine
	wc       *world.ChunkCache
	counters *Counters
	pending  *[]scheduledUpdate
	redstone *[]scheduledUpdate
	wireSeen map[world.Pos]int64
	// rng is the context's random stream. The root context aliases the
	// engine RNG. Region contexts derive a stream from the world seed and
	// region key (world.RegionSeed) lazily via rand(); no current rule draws
	// from it — every remaining draw is keyed by position and tick
	// (streams.go) so values are shard-layout and schedule independent — and
	// any future rule that draws here must consume the region stream on BOTH
	// paths or force the serial fallback.
	rng    *rand.Rand
	region *regionRun // nil for the engine's root (serial) context
}

// rand returns the context's RNG, deriving the region stream on first use.
func (x *exec) rand() *rand.Rand {
	if x.rng == nil {
		x.rng = rand.New(rand.NewSource(world.RegionSeed(x.e.seed, x.region.key)))
	}
	return x.rng
}

// setBlock stores a block through the context: the root context goes through
// the world (listeners fire synchronously, exactly as before); a region
// context writes the chunk directly under the exclusive phase and records
// the undo entry plus the replayable change event.
func (x *exec) setBlock(p world.Pos, b world.Block) {
	if r := x.region; r != nil {
		r.setBlock(x, p, b)
		return
	}
	x.e.w.SetBlock(p, b)
}

// spawnPrimedTNT, spawnItem and spawnMob route entity-spawn requests: direct
// on the root context, buffered as ordered events on a region context so the
// entity store's IDs and RNG are consumed in the reconstructed serial order.
func (x *exec) spawnPrimedTNT(p world.Pos, fuseTicks int) {
	if r := x.region; r != nil {
		r.events = append(r.events, event{kind: evSpawnTNT, pos: p, i1: int64(fuseTicks)})
		return
	}
	x.e.ents.SpawnPrimedTNT(p, fuseTicks)
}

func (x *exec) spawnItem(p world.Pos, item world.BlockID) {
	if r := x.region; r != nil {
		r.events = append(r.events, event{kind: evSpawnItem, pos: p, i1: int64(item)})
		return
	}
	x.e.ents.SpawnItem(p, item)
}

func (x *exec) spawnMob(p world.Pos) {
	if r := x.region; r != nil {
		r.events = append(r.events, event{kind: evSpawnMob, pos: p})
		return
	}
	x.e.ents.SpawnMob(p)
}

// New creates an engine bound to the world and entity store, seeded
// deterministically, and registers its change listener on the world.
func New(w *world.World, ents EntityOps, cfg Config, seed int64) *Engine {
	src := mrand.NewSource(seed)
	e := &Engine{
		w:         w,
		wc:        world.NewChunkCache(w),
		ents:      ents,
		rng:       rand.New(src),
		src:       src,
		cfg:       cfg,
		seed:      seed,
		scheduled: make(map[int64][]scheduledUpdate),
		spawners:  make(map[world.Pos]struct{}),
		hoppers:   make(map[world.Pos]struct{}),
		wireSeen:  make(map[world.Pos]int64),
	}
	e.workers = cfg.SimWorkers
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	e.root = exec{
		e:        e,
		wc:       &e.wc,
		counters: &e.counters,
		pending:  &e.pending,
		redstone: &e.redstonePending,
		wireSeen: e.wireSeen,
		rng:      e.rng,
	}
	w.OnChange(e.onBlockChange)
	return e
}

// SetWorkers reconfigures the drain scheduler's worker count between ticks
// (0 = GOMAXPROCS, 1 = serial drains), as if the engine had been restarted
// with the new SimWorkers: the serial-hold hysteresis resets so the next
// tick re-evaluates the schedule fresh. Output is unaffected — the parallel
// drain is bit-identical to the serial one — so this trades wall-clock time
// only. Must not be called while a tick is in flight.
func (e *Engine) SetWorkers(n int) {
	e.cfg.SimWorkers = n
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.workers = n
	e.serialHold = 0
}

// owns reports whether the engine owns the chunk containing p (shard-mode
// ownership filter; always true without a Config.Owns predicate).
func (e *Engine) owns(p world.Pos) bool {
	return e.cfg.Owns == nil || e.cfg.Owns(world.ChunkPosAt(p))
}

// ownsChunk is owns for an already-resolved chunk column.
func (e *Engine) ownsChunk(cp world.ChunkPos) bool {
	return e.cfg.Owns == nil || e.cfg.Owns(cp)
}

// onBlockChange queues neighbour updates for every terrain mutation — the
// "terrain simulation is driven by terrain state updates" loop of §2.3.
func (e *Engine) onBlockChange(p world.Pos, old, new world.Block) {
	if e.suppress {
		return
	}
	e.trackSpecial(p, new)
	if e.merging {
		// Parallel-merge replay: the region drains queued their own
		// cascades; only the spawner/hopper bookkeeping above applies.
		return
	}
	e.root.queueNeighbors(p)
	e.root.notifyObservers(p)
}

// trackSpecial maintains the spawner/hopper position sets.
func (e *Engine) trackSpecial(p world.Pos, b world.Block) {
	switch b.ID {
	case world.Spawner:
		if _, ok := e.spawners[p]; !ok {
			e.spawners[p] = struct{}{}
			e.spawnersSorted = nil
		}
	case world.Hopper:
		if _, ok := e.hoppers[p]; !ok {
			e.hoppers[p] = struct{}{}
			e.hoppersSorted = nil
		}
	default:
		if _, ok := e.spawners[p]; ok {
			delete(e.spawners, p)
			e.spawnersSorted = nil
		}
		if _, ok := e.hoppers[p]; ok {
			delete(e.hoppers, p)
			e.hoppersSorted = nil
		}
	}
}

// queueNeighbors enqueues rule re-evaluation for a position's six
// neighbours and itself. Logic components go on the redstone queue.
func (x *exec) queueNeighbors(p world.Pos) {
	x.enqueue(scheduledUpdate{pos: p, kind: updateNeighbor})
	for _, n := range p.Neighbors6() {
		x.enqueue(scheduledUpdate{pos: n, kind: updateNeighbor})
	}
}

func (x *exec) enqueue(u scheduledUpdate) {
	if !x.e.owns(u.pos) {
		return
	}
	b, loaded := x.wc.BlockIfLoaded(u.pos)
	if !loaded {
		return
	}
	if b.IsRedstoneComponent() {
		*x.redstone = append(*x.redstone, u)
	} else {
		*x.pending = append(*x.pending, u)
	}
}

// notifyObservers pulses any observer watching the changed position.
func (x *exec) notifyObservers(changed world.Pos) {
	for _, d := range []world.Direction{world.DirUp, world.DirDown, world.DirNorth,
		world.DirSouth, world.DirEast, world.DirWest} {
		op := d.Move(changed)
		if !x.e.owns(op) {
			continue
		}
		b, loaded := x.wc.BlockIfLoaded(op)
		if !loaded || b.ID != world.Observer {
			continue
		}
		// The observer fires only if it faces the changed block. A dedicated
		// update kind distinguishes "watched block changed" from ordinary
		// neighbour updates, so an observer's own pulse block-change cannot
		// retrigger it.
		if b.Facing().Move(op) == changed && !b.ObserverPulsing() {
			*x.redstone = append(*x.redstone,
				scheduledUpdate{pos: op, kind: updateObserverFire})
		}
	}
}

// schedule queues an update for delayTicks game ticks in the future.
func (x *exec) schedule(p world.Pos, delayTicks int, kind updateKind) {
	x.scheduleVal(p, delayTicks, kind, 0)
}

// scheduleVal queues an update carrying a latched value. Region contexts
// buffer the request as an ordered event; the merge appends them to the
// engine's schedule in the reconstructed serial order, so next-tick
// processing order matches the serial drain exactly.
func (x *exec) scheduleVal(p world.Pos, delayTicks int, kind updateKind, val uint8) {
	if !x.e.owns(p) {
		return
	}
	due := x.e.tick + int64(delayTicks)
	if due <= x.e.tick {
		due = x.e.tick + 1
	}
	if r := x.region; r != nil {
		r.events = append(r.events,
			event{kind: evSchedule, pos: p, i1: due, upd: kind, val: val})
		return
	}
	x.e.scheduled[due] = append(x.e.scheduled[due], scheduledUpdate{pos: p, kind: kind, val: val})
}

// ScheduleIgnite queues TNT ignition at p after delayTicks — used by
// workload worlds to set off the TNT cuboid ~20 s after start.
func (e *Engine) ScheduleIgnite(p world.Pos, delayTicks int) {
	e.root.schedule(p, delayTicks, updateIgnite)
}

// Sub returns the component-wise difference c - o, used to attribute the
// work of an operation (e.g. an explosion) run between ticks.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		BlockUpdates:    c.BlockUpdates - o.BlockUpdates,
		RedstoneOps:     c.RedstoneOps - o.RedstoneOps,
		FluidOps:        c.FluidOps - o.FluidOps,
		GrowthOps:       c.GrowthOps - o.GrowthOps,
		BlockAdds:       c.BlockAdds - o.BlockAdds,
		BlockRemoves:    c.BlockRemoves - o.BlockRemoves,
		Explosions:      c.Explosions - o.Explosions,
		ExplosionBlocks: c.ExplosionBlocks - o.ExplosionBlocks,
		ExplosionScan:   c.ExplosionScan - o.ExplosionScan,
		LightScans:      c.LightScans - o.LightScans,
		RandomTicks:     c.RandomTicks - o.RandomTicks,
		Backlog:         c.Backlog - o.Backlog,
	}
}

// Add returns the component-wise sum of c and o.
func (c Counters) Add(o Counters) Counters {
	return c.Sub(Counters{}.Sub(o))
}

// Tick runs one game tick of terrain simulation and returns the work
// counters for the tick. A redstone tick runs on every second game tick.
func (e *Engine) Tick() Counters {
	e.counters = Counters{}
	e.tick++
	_, _, lightBefore := e.w.Stats()

	// Due scheduled updates.
	if due, ok := e.scheduled[e.tick]; ok {
		delete(e.scheduled, e.tick)
		for _, u := range due {
			if b, _ := e.wc.BlockIfLoaded(u.pos); b.IsRedstoneComponent() || u.kind != updateNeighbor {
				e.redstonePending = append(e.redstonePending, u)
			} else {
				e.pending = append(e.pending, u)
			}
		}
	}

	budget := e.cfg.MaxUpdatesPerTick
	if budget <= 0 {
		budget = 200_000
	}

	// Drain the queues: on a region-parallel schedule when the tick's
	// updates partition into independent regions, else serially. The
	// parallel path rolls itself back and reports false if the tick turns
	// out not to be independent (cross-region cascade, budget pressure), so
	// the serial drain below is both the SimWorkers<=1 legacy path and the
	// universal fallback.
	if !e.tryParallelDrains(budget) {
		// Drain the plain neighbour queue. Updates whose target turned into
		// a logic component since they were enqueued are re-routed to the
		// redstone queue at drain time.
		budget = e.root.drain(&e.pending, budget, false)

		// Redstone tick: logic components evaluate every second game tick.
		if e.tick%2 == 0 {
			e.root.drain(&e.redstonePending, budget, true)
		}
	}

	if e.tick%2 == 0 {
		e.tickSpawners()
		e.tickHoppers()
		e.purgeWireSeen()
	}

	// Random ticks drive plant growth and similar slow processes.
	e.randomTicks()

	e.counters.Backlog = len(e.pending) + len(e.redstonePending)
	_, _, lightAfter := e.w.Stats()
	e.counters.LightScans += lightAfter - lightBefore
	return e.counters
}

// drain applies updates from the queue until it empties or the budget is
// exhausted; it returns the remaining budget. Updates enqueued during
// processing are handled in the same drain (cascades run to completion
// within the tick, budget permitting). When redstoneAllowed is false,
// updates targeting logic components are deferred to the redstone queue
// instead of applied, preserving the every-other-tick redstone cadence.
func (x *exec) drain(queue *[]scheduledUpdate, budget int, redstoneAllowed bool) int {
	for len(*queue) > 0 && budget > 0 {
		q := *queue
		u := q[0]
		*queue = q[1:]
		if !redstoneAllowed {
			if b, loaded := x.wc.BlockIfLoaded(u.pos); loaded && b.IsRedstoneComponent() {
				*x.redstone = append(*x.redstone, u)
				continue
			}
		}
		budget--
		x.apply(u)
	}
	return budget
}

// purgeWireSeen drops stale per-tick wire dedup entries once the map grows
// large. Entries from past ticks behave exactly like absent ones (the lookup
// compares the stored tick), so purging never changes behaviour — it only
// bounds memory on long redstone-heavy runs.
func (e *Engine) purgeWireSeen() {
	if len(e.wireSeen) < 4096 {
		return
	}
	for p, v := range e.wireSeen {
		if v>>2 != e.tick {
			delete(e.wireSeen, p)
		}
	}
}

// TickNumber returns the current game-tick number.
func (e *Engine) TickNumber() int64 { return e.tick }

// PendingUpdates returns the size of the live update backlog.
func (e *Engine) PendingUpdates() int { return len(e.pending) + len(e.redstonePending) }

// ParallelStats describes how the engine has been scheduling its drains —
// the cost-model attribution surface for the server's tick records.
type ParallelStats struct {
	// Workers is the resolved worker count (SimWorkers, or GOMAXPROCS).
	Workers int
	// LastRegions is the region count of the last attempted partition (0
	// when the last tick never partitioned).
	LastRegions int
	// LastParallel reports whether the last tick's drains ran on the
	// region-parallel schedule.
	LastParallel bool
	// ParallelTicks counts ticks drained in parallel; FallbackTicks counts
	// ticks where a parallel attempt aborted (escape or budget pressure)
	// and was rolled back to the serial drain.
	ParallelTicks int64
	FallbackTicks int64
}

// ParallelStats returns the engine's scheduling attribution counters.
func (e *Engine) ParallelStats() ParallelStats {
	return ParallelStats{
		Workers:       e.workers,
		LastRegions:   e.lastRegions,
		LastParallel:  e.lastParallel,
		ParallelTicks: e.parallelTicks,
		FallbackTicks: e.fallbackTicks,
	}
}

// tickSpawners activates spawner blocks on their period.
func (e *Engine) tickSpawners() {
	interval := int64(e.cfg.SpawnerIntervalTicks)
	if interval <= 0 {
		interval = 40
	}
	for _, p := range e.sortedSpawners() {
		if !e.owns(p) {
			continue
		}
		// Offset by position hash so spawners do not fire in lockstep. The
		// offset is kept even-aligned because this method only runs on
		// redstone ticks.
		half := interval / 2
		if half < 1 {
			half = 1
		}
		off := 2 * int64(uint64(p.X*73856093^p.Y*19349663^p.Z*83492791)%uint64(half))
		if (e.tick+off)%interval == 0 {
			e.counters.BlockUpdates++
			e.ents.SpawnMob(p.Up())
		}
	}
}

// tickHoppers makes hoppers absorb item entities above them (every redstone
// tick, approximating the 4-game-tick hopper cooldown).
func (e *Engine) tickHoppers() {
	for _, p := range e.sortedHoppers() {
		if !e.owns(p) {
			continue
		}
		e.counters.BlockUpdates++
		n := e.ents.CollectItems(p.Up(), 1.2)
		e.ItemsCollected += int64(n)
	}
}

// sortedSpawners and sortedHoppers return the sets in a fixed order: spawn
// and collection order feed the entity store's RNG and IDs, so map
// iteration order would make otherwise-identical runs diverge. The sorted
// views are rebuilt only after a mutation.
func (e *Engine) sortedSpawners() []world.Pos {
	if e.spawnersSorted == nil {
		e.spawnersSorted = sortedPositions(e.spawners)
	}
	return e.spawnersSorted
}

func (e *Engine) sortedHoppers() []world.Pos {
	if e.hoppersSorted == nil {
		e.hoppersSorted = sortedPositions(e.hoppers)
	}
	return e.hoppersSorted
}

func sortedPositions(set map[world.Pos]struct{}) []world.Pos {
	out := make([]world.Pos, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		if a.Z != b.Z {
			return a.Z < b.Z
		}
		return a.X < b.X
	})
	return out
}

// randomTicks samples RandomTickRate random blocks per loaded chunk and
// applies growth rules to them. Sampling reads straight off each chunk
// (LoadedChunkRefs) — with thousands of loaded chunks this pass would
// otherwise pay a world-lock acquisition and chunk-map lookup per sample.
// Each chunk's samples come from its own per-tick stream (streams.go), so a
// chunk's growth is a pure function of (seed, chunk, tick): shards skipping
// unowned chunks leave the owned chunks' sequences untouched.
func (e *Engine) randomTicks() {
	rate := e.cfg.RandomTickRate
	if rate <= 0 {
		return
	}
	for _, c := range e.w.LoadedChunkRefs() {
		if !e.ownsChunk(c.Pos) {
			continue
		}
		origin := c.Pos.Origin()
		st := chunkStream(e.seed, c.Pos, e.tick)
		for i := 0; i < rate; i++ {
			e.counters.RandomTicks++
			lx := st.Intn(world.ChunkSize)
			y := st.Intn(world.Height)
			lz := st.Intn(world.ChunkSize)
			p := world.Pos{X: origin.X + lx, Y: y, Z: origin.Z + lz}
			e.root.applyGrowth(p, c.At(lx, y, lz), &st)
		}
	}
}
