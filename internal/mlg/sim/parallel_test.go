package sim

// Engine-level serial-vs-parallel differential tests: two engines over
// identically constructed worlds, one with SimWorkers=1 (legacy serial
// drain) and one with SimWorkers=4, must stay bit-identical — world
// contents, per-tick counters, queue backlogs, spawn requests and schedule
// state. These are the fine-grained companions to the workload-level
// equivalence matrix in internal/core and internal/mlg/server.

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/mlg/world"
)

// worldChecksum hashes every loaded chunk's contents in deterministic order.
func worldChecksum(w *world.World) uint64 {
	h := fnv.New64a()
	for _, c := range w.LoadedChunkRefs() {
		fmt.Fprintf(h, "%v:", c.Pos)
		for y := 0; y < world.Height; y++ {
			for lz := 0; lz < world.ChunkSize; lz++ {
				for lx := 0; lx < world.ChunkSize; lx++ {
					b := c.At(lx, y, lz)
					if !b.IsAir() {
						fmt.Fprintf(h, "%d,%d,%d=%d/%d;", lx, y, lz, b.ID, b.Meta)
					}
				}
			}
		}
	}
	return h.Sum64()
}

// orderedEnts records every entity operation in call order, so spawn-order
// divergence between schedules is directly visible.
type orderedEnts struct {
	ops []string
}

func (m *orderedEnts) SpawnPrimedTNT(p world.Pos, fuse int) {
	m.ops = append(m.ops, fmt.Sprintf("tnt%v/%d", p, fuse))
}
func (m *orderedEnts) SpawnItem(p world.Pos, item world.BlockID) {
	m.ops = append(m.ops, fmt.Sprintf("item%v/%d", p, item))
}
func (m *orderedEnts) SpawnMob(p world.Pos) {
	m.ops = append(m.ops, fmt.Sprintf("mob%v", p))
}
func (m *orderedEnts) CollectItems(p world.Pos, r float64) int {
	m.ops = append(m.ops, fmt.Sprintf("collect%v", p))
	return 1
}

// buildBusyWorld installs several spatially separated active constructs —
// enough queued updates per tick to clear the parallel threshold, in
// clusters far enough apart to partition into multiple regions.
func buildBusyWorld(w *world.World) {
	// Three clusters, 16 chunks apart in X.
	for cluster := 0; cluster < 3; cluster++ {
		ox := cluster * 256
		y := 11
		// A powered wire mesh that keeps recomputing: an observer pair
		// (self-sustaining pulser) drives a 12x8 wire field.
		a := world.Pos{X: ox + 20, Y: y, Z: 8}
		b := a.East()
		for dz := 0; dz < 8; dz++ {
			for dx := 0; dx < 12; dx++ {
				w.SetBlock(world.Pos{X: ox + 4 + dx, Y: y, Z: 4 + dz}, world.B(world.RedstoneWire))
			}
		}
		w.SetBlock(a, world.B(world.Observer).WithFacing(world.DirEast))
		w.SetBlock(b, world.B(world.Observer).WithFacing(world.DirWest))
		// Fluids: a water source dropped on the platform keeps spreading
		// and drying as the cascade evolves.
		w.SetBlock(world.Pos{X: ox + 8, Y: y + 3, Z: 20}, world.B(world.Water))
		// Gravity: a sand stack.
		for dy := 0; dy < 6; dy++ {
			w.SetBlock(world.Pos{X: ox + 30, Y: y + 4 + dy, Z: 30}, world.B(world.Sand))
		}
		// TNT with power applied so ignition spawns entities.
		w.SetBlock(world.Pos{X: ox + 34, Y: y, Z: 8}, world.B(world.TNT))
		w.SetBlock(world.Pos{X: ox + 35, Y: y, Z: 8}, world.B(world.RedstoneBlock))
		// A harvesting piston clock (stone farm core).
		slot := world.Pos{X: ox + 40, Y: y, Z: 16}
		w.SetBlock(slot.North(), world.B(world.Water))
		w.SetBlock(slot.South(), world.B(world.Lava))
		w.SetBlock(slot.West(), world.B(world.Piston).WithFacing(world.DirEast))
		w.SetBlock(slot.West().West(), world.B(world.RedstoneBlock))
	}
}

func newDiffEngine(workers int) (*world.World, *Engine, *orderedEnts) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 3)
	w.EnsureArea(world.Pos{X: 256, Y: 0, Z: 8}, 3)
	w.EnsureArea(world.Pos{X: 512, Y: 0, Z: 8}, 3)
	ents := &orderedEnts{}
	cfg := DefaultConfig()
	cfg.SimWorkers = workers
	e := New(w, ents, cfg, 42)
	buildBusyWorld(w)
	return w, e, ents
}

func TestParallelTickMatchesSerial(t *testing.T) {
	ws, es, entsS := newDiffEngine(1)
	wp, ep, entsP := newDiffEngine(4)

	for tick := 0; tick < 80; tick++ {
		cs, cp := es.Tick(), ep.Tick()
		if cs != cp {
			t.Fatalf("tick %d: counters diverged\nserial:   %+v\nparallel: %+v", tick+1, cs, cp)
		}
		if es.PendingUpdates() != ep.PendingUpdates() {
			t.Fatalf("tick %d: backlog %d vs %d", tick+1, es.PendingUpdates(), ep.PendingUpdates())
		}
	}
	if a, b := worldChecksum(ws), worldChecksum(wp); a != b {
		t.Fatalf("world contents diverged: %#x vs %#x", a, b)
	}
	if a, b := fmt.Sprint(entsS.ops), fmt.Sprint(entsP.ops); a != b {
		t.Fatalf("entity op sequences diverged:\nserial:   %s\nparallel: %s", a, b)
	}
	if got := ep.ParallelStats(); got.ParallelTicks == 0 {
		t.Fatalf("parallel engine never took the parallel path: %+v", got)
	}
	if got := es.ParallelStats(); got.ParallelTicks != 0 {
		t.Fatalf("serial engine took the parallel path: %+v", got)
	}
}

// TestParallelEscapeFallsBackToSerial joins two active clusters with a long
// descending water staircase. Releasing a water source at the top makes the
// flow cascade down the whole staircase within single ticks (falling fluid
// resets its spread level at every drop), crossing chunks that were quiet
// at partition time — the cross-region effect that must be detected (write
// outside the owned set), rolled back, and re-run serially, with results
// identical to the pure-serial engine.
func TestParallelEscapeFallsBackToSerial(t *testing.T) {
	const top = 30
	build := func(workers int) (*world.World, *Engine) {
		w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
		w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 3)
		w.EnsureArea(world.Pos{X: 144, Y: 0, Z: 0}, 3)
		cfg := DefaultConfig()
		cfg.SimWorkers = workers
		e := New(w, &orderedEnts{}, cfg, 7)
		y := 11
		// Two busy wire fields ~16 chunks apart...
		for _, ox := range []int{0, 144} {
			a := world.Pos{X: ox + 16, Y: y, Z: 8}
			for dz := 0; dz < 8; dz++ {
				for dx := 0; dx < 10; dx++ {
					w.SetBlock(world.Pos{X: ox + 4 + dx, Y: y, Z: 4 + dz}, world.B(world.RedstoneWire))
				}
			}
			w.SetBlock(a, world.B(world.Observer).WithFacing(world.DirEast))
			w.SetBlock(a.East(), world.B(world.Observer).WithFacing(world.DirWest))
		}
		// ...joined by a walled staircase channel descending eastward: one
		// floor drop every 4 blocks keeps the flow "falling", so it never
		// dries out mid-channel.
		sy := top
		for x := 32; x < 96; x += 4 {
			for i := 0; i < 4; i++ {
				w.SetBlock(world.Pos{X: x + i, Y: sy, Z: 8}, world.B(world.Stone))
				w.SetBlock(world.Pos{X: x + i, Y: sy + 1, Z: 7}, world.B(world.Glass))
				w.SetBlock(world.Pos{X: x + i, Y: sy + 1, Z: 9}, world.B(world.Glass))
				w.SetBlock(world.Pos{X: x + i, Y: sy + 2, Z: 7}, world.B(world.Glass))
				w.SetBlock(world.Pos{X: x + i, Y: sy + 2, Z: 9}, world.B(world.Glass))
			}
			sy--
		}
		return w, e
	}

	ws, es := build(1)
	wp, ep := build(4)
	step := func(e *Engine, n int) {
		for i := 0; i < n; i++ {
			e.Tick()
		}
	}
	step(es, 20)
	step(ep, 20)
	// Release the water at the top of the staircase.
	ws.SetBlock(world.Pos{X: 32, Y: top + 1, Z: 8}, world.B(world.Water))
	wp.SetBlock(world.Pos{X: 32, Y: top + 1, Z: 8}, world.B(world.Water))
	step(es, 20)
	step(ep, 20)

	if a, b := worldChecksum(ws), worldChecksum(wp); a != b {
		t.Fatalf("world contents diverged after escape: %#x vs %#x", a, b)
	}
	if got := ep.ParallelStats(); got.FallbackTicks == 0 {
		t.Fatalf("escape scenario never exercised the rollback path: %+v", got)
	}
}

// TestParallelMidDrainBudgetOverflow: the tick-start guard admits queues
// smaller than MaxUpdatesPerTick, but cascades can grow past the cap
// mid-drain. The merge replay must detect that the serial drain would have
// stopped popping (including pops that only re-route), abort, roll back and
// re-run serially — bit-identically to the pure-serial engine, which
// defers the overflow to later ticks.
func TestParallelMidDrainBudgetOverflow(t *testing.T) {
	build := func(workers int) (*world.World, *Engine) {
		w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
		w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 2)
		w.EnsureArea(world.Pos{X: 256, Y: 0, Z: 0}, 2)
		cfg := DefaultConfig()
		cfg.SimWorkers = workers
		cfg.MaxUpdatesPerTick = 130
		e := New(w, &orderedEnts{}, cfg, 11)
		// 2 x 8 floating sand blocks: 112 queued updates at tick start
		// (under the 130 cap, so the parallel attempt starts), but the
		// fall cascade multiplies applied updates past the cap mid-drain.
		for _, ox := range []int{0, 256} {
			for i := 0; i < 8; i++ {
				w.SetBlock(world.Pos{X: ox + 2*i, Y: 20, Z: 4}, world.B(world.Sand))
			}
		}
		return w, e
	}
	ws, es := build(1)
	wp, ep := build(4)
	for tick := 0; tick < 50; tick++ {
		cs, cp := es.Tick(), ep.Tick()
		if cs != cp {
			t.Fatalf("tick %d: counters diverged after mid-drain overflow\nserial:   %+v\nparallel: %+v",
				tick+1, cs, cp)
		}
		if es.PendingUpdates() != ep.PendingUpdates() {
			t.Fatalf("tick %d: backlog %d vs %d", tick+1, es.PendingUpdates(), ep.PendingUpdates())
		}
	}
	if a, b := worldChecksum(ws), worldChecksum(wp); a != b {
		t.Fatalf("world contents diverged: %#x vs %#x", a, b)
	}
	if got := ep.ParallelStats(); got.FallbackTicks == 0 {
		t.Fatalf("overflow scenario never exercised the budget rollback: %+v", got)
	}
}

// TestParallelBudgetPressureStaysSerial: when the queued updates approach
// MaxUpdatesPerTick, the cap's deferral order is order-dependent, so the
// engine must not attempt the parallel schedule — and results must match
// the serial engine exactly.
func TestParallelBudgetPressureStaysSerial(t *testing.T) {
	build := func(workers int) (*world.World, *Engine) {
		w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
		w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 3)
		w.EnsureArea(world.Pos{X: 144, Y: 0, Z: 0}, 3)
		cfg := DefaultConfig()
		cfg.SimWorkers = workers
		cfg.MaxUpdatesPerTick = 40
		e := New(w, &orderedEnts{}, cfg, 9)
		for _, ox := range []int{0, 256} {
			for i := 0; i < 30; i++ {
				w.SetBlock(world.Pos{X: ox + i, Y: 20, Z: 4}, world.B(world.Sand))
			}
		}
		return w, e
	}
	ws, es := build(1)
	wp, ep := build(4)
	for tick := 0; tick < 60; tick++ {
		cs, cp := es.Tick(), ep.Tick()
		if cs != cp {
			t.Fatalf("tick %d: counters diverged under budget pressure\nserial:   %+v\nparallel: %+v",
				tick+1, cs, cp)
		}
	}
	if a, b := worldChecksum(ws), worldChecksum(wp); a != b {
		t.Fatalf("world contents diverged: %#x vs %#x", a, b)
	}
	if got := ep.ParallelStats(); got.ParallelTicks != 0 {
		t.Fatalf("parallel path ran despite budget pressure: %+v", got)
	}
}
