package sim

import "repro/internal/mlg/world"

// apply dispatches one queued update to the rule for the block currently at
// the position. This is the "Process Actions / simulation rules applicable"
// loop of the operational model (Figure 4, component 5). Rules run on an
// exec context so the serial drain and the region-parallel drains share one
// implementation.
func (x *exec) apply(u scheduledUpdate) {
	b, loaded := x.wc.BlockIfLoaded(u.pos)
	if !loaded {
		return
	}
	x.counters.BlockUpdates++

	switch u.kind {
	case updateIgnite:
		x.igniteTNT(u.pos)
		return
	case updateObserverClear:
		if b.ID == world.Observer && b.ObserverPulsing() {
			x.counters.RedstoneOps++
			x.setBlock(u.pos, b.WithObserverPulse(false))
		}
		return
	case updateObserverFire:
		if b.ID == world.Observer {
			x.counters.RedstoneOps++
			x.pulseObserver(u.pos, b)
		}
		return
	case updateRepeaterFire:
		x.fireRepeater(u.pos, u.val)
		return
	case updatePistonRetract:
		if b.ID == world.Piston && b.PistonExtended() {
			x.retractPiston(u.pos, b)
		}
		return
	}

	switch b.ID {
	case world.Sand, world.Gravel:
		x.applyGravity(u.pos, b)
	case world.Water, world.Lava:
		x.counters.FluidOps++
		x.applyFluid(u.pos, b)
	case world.RedstoneWire:
		// With batching (PaperMC), a wire that already recomputed twice this
		// tick is skipped before any work is counted.
		if x.e.cfg.RedstoneBatch {
			if v := x.wireSeen[u.pos]; v>>2 == x.e.tick && v&3 >= 2 {
				return
			}
		}
		x.counters.RedstoneOps++
		x.updateWire(u.pos, b)
	case world.RedstoneTorch:
		x.counters.RedstoneOps++
		x.updateTorch(u.pos, b)
	case world.Repeater:
		x.counters.RedstoneOps++
		x.updateRepeater(u.pos, b)
	case world.Observer:
		// Plain neighbour updates do not fire observers; only a change of
		// the watched block does (updateObserverFire).
	case world.Piston:
		x.counters.RedstoneOps++
		x.updatePiston(u.pos, b)
	case world.TNT:
		if x.isReceivingPower(u.pos) {
			x.igniteTNT(u.pos)
		}
	case world.Air:
		// Cobblestone generator: an air cell touching both water and lava
		// solidifies — the stone-farm block source (Table 3).
		var water, lava bool
		for _, n := range u.pos.Neighbors6() {
			switch nb, _ := x.wc.BlockIfLoaded(n); nb.ID {
			case world.Water:
				water = true
			case world.Lava:
				lava = true
			}
		}
		if water && lava {
			x.counters.BlockAdds++
			x.setBlock(u.pos, world.B(world.Cobblestone))
		}
		// Other air updates need no rule: falling and fluid-spread
		// neighbours were queued separately.
	default:
		// Second-order update: power arriving at a solid block must
		// re-evaluate components attached to it (a torch standing on it).
		if b.IsSolid() {
			if above, loaded := x.wc.BlockIfLoaded(u.pos.Up()); loaded && above.ID == world.RedstoneTorch {
				*x.redstone = append(*x.redstone,
					scheduledUpdate{pos: u.pos.Up(), kind: updateNeighbor})
			}
		}
	}
}

// applyGravity makes unsupported sand/gravel fall one block per update, the
// terrain-physics rule of §2.2.2 ("a bridge can collapse when a player
// removes its support pillars").
func (x *exec) applyGravity(p world.Pos, b world.Block) {
	below, loaded := x.wc.BlockIfLoaded(p.Down())
	if !loaded {
		return
	}
	if below.IsAir() || below.IsFluid() {
		x.counters.BlockRemoves++
		x.counters.BlockAdds++
		x.setBlock(p, world.B(world.Air))
		x.setBlock(p.Down(), b)
	}
}

// applyFluid implements a compact cellular fluid model: fluid flows down
// into air; otherwise it spreads horizontally, increasing its level (0 =
// source .. maxFluidLevel = thinnest); flowing fluid with no feeding
// neighbour dries up. This drives the kelp-farm item streams and the
// liquid-physics workload of §2.2.2.
const maxFluidLevel = 7

func (x *exec) applyFluid(p world.Pos, b world.Block) {
	level := int(b.Meta)

	// Flowing fluid meeting the opposing fluid solidifies into cobblestone
	// (the stone-farm generator). Sources (level 0) are never consumed.
	if level > 0 {
		opposing := world.Lava
		if b.ID == world.Lava {
			opposing = world.Water
		}
		for _, n := range p.Neighbors6() {
			if nb, _ := x.wc.BlockIfLoaded(n); nb.ID == opposing {
				x.counters.BlockAdds++
				x.setBlock(p, world.B(world.Cobblestone))
				return
			}
		}
	}

	// Flowing fluid must be fed by a strictly lower-level horizontal
	// neighbour or any fluid above; otherwise it dries.
	if level > 0 {
		fed := false
		if above, _ := x.wc.BlockIfLoaded(p.Up()); above.ID == b.ID {
			fed = true
		}
		if !fed {
			for _, n := range p.NeighborsHorizontal() {
				nb, _ := x.wc.BlockIfLoaded(n)
				if nb.ID == b.ID && int(nb.Meta) < level {
					fed = true
					break
				}
			}
		}
		if !fed {
			x.counters.BlockRemoves++
			x.setBlock(p, world.B(world.Air))
			return
		}
	}

	// Flow down: falling fluid keeps level 1 (full column).
	below, loaded := x.wc.BlockIfLoaded(p.Down())
	if loaded && below.IsAir() {
		x.counters.BlockAdds++
		x.setBlock(p.Down(), world.Block{ID: b.ID, Meta: 1})
		return
	}
	if below.ID == b.ID && below.Meta > 1 {
		x.setBlock(p.Down(), world.Block{ID: b.ID, Meta: 1})
	}

	// Spread horizontally when resting on something solid.
	if level >= maxFluidLevel {
		return
	}
	if loaded && (below.IsSolid() || below.ID == b.ID) {
		for _, n := range p.NeighborsHorizontal() {
			nb, ok := x.wc.BlockIfLoaded(n)
			if !ok {
				continue
			}
			if nb.IsAir() {
				x.counters.BlockAdds++
				x.setBlock(n, world.Block{ID: b.ID, Meta: uint8(level + 1)})
			} else if nb.ID == b.ID && int(nb.Meta) > level+1 {
				x.setBlock(n, world.Block{ID: b.ID, Meta: uint8(level + 1)})
			}
		}
	}
}

// applyGrowth advances plant growth for random-ticked blocks (§2.2.2:
// "plants and trees change over time, reshaping the nearby terrain"). st is
// the sampling chunk's per-tick stream; growth rolls draw from it so their
// values are pure functions of (seed, chunk, tick, draw index).
func (x *exec) applyGrowth(p world.Pos, b world.Block, st *posStream) {
	switch b.ID {
	case world.Wheat:
		if b.Meta < 7 {
			x.counters.GrowthOps++
			x.setBlock(p, world.Block{ID: world.Wheat, Meta: b.Meta + 1})
		}
	case world.Kelp:
		// Kelp extends upward through water until its stage cap.
		if b.Meta >= 15 {
			return
		}
		above, _ := x.wc.BlockIfLoaded(p.Up())
		if above.ID == world.Water {
			x.counters.GrowthOps++
			x.counters.BlockAdds++
			x.setBlock(p, world.Block{ID: world.Kelp, Meta: b.Meta + 1})
			x.setBlock(p.Up(), world.Block{ID: world.Kelp, Meta: b.Meta + 1})
		}
	case world.Sapling:
		// Saplings rarely grow into a small tree.
		if st.Intn(32) != 0 {
			return
		}
		x.counters.GrowthOps++
		for y := 1; y <= 4; y++ {
			if q := p.Add(0, y, 0); x.blockAirAt(q) {
				x.counters.BlockAdds++
				x.setBlock(q, world.B(world.Wood))
			}
		}
	}
}

func (x *exec) blockAirAt(p world.Pos) bool {
	b, loaded := x.wc.BlockIfLoaded(p)
	return loaded && b.IsAir()
}
