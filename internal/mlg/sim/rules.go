package sim

import "repro/internal/mlg/world"

// apply dispatches one queued update to the rule for the block currently at
// the position. This is the "Process Actions / simulation rules applicable"
// loop of the operational model (Figure 4, component 5).
func (e *Engine) apply(u scheduledUpdate) {
	b, loaded := e.wc.BlockIfLoaded(u.pos)
	if !loaded {
		return
	}
	e.counters.BlockUpdates++

	switch u.kind {
	case updateIgnite:
		e.igniteTNT(u.pos)
		return
	case updateObserverClear:
		if b.ID == world.Observer && b.ObserverPulsing() {
			e.counters.RedstoneOps++
			e.w.SetBlock(u.pos, b.WithObserverPulse(false))
		}
		return
	case updateObserverFire:
		if b.ID == world.Observer {
			e.counters.RedstoneOps++
			e.pulseObserver(u.pos, b)
		}
		return
	case updateRepeaterFire:
		e.fireRepeater(u.pos, u.val)
		return
	case updatePistonRetract:
		if b.ID == world.Piston && b.PistonExtended() {
			e.retractPiston(u.pos, b)
		}
		return
	}

	switch b.ID {
	case world.Sand, world.Gravel:
		e.applyGravity(u.pos, b)
	case world.Water, world.Lava:
		e.counters.FluidOps++
		e.applyFluid(u.pos, b)
	case world.RedstoneWire:
		// With batching (PaperMC), a wire that already recomputed twice this
		// tick is skipped before any work is counted.
		if e.cfg.RedstoneBatch {
			if v := e.wireSeen[u.pos]; v>>2 == e.tick && v&3 >= 2 {
				return
			}
		}
		e.counters.RedstoneOps++
		e.updateWire(u.pos, b)
	case world.RedstoneTorch:
		e.counters.RedstoneOps++
		e.updateTorch(u.pos, b)
	case world.Repeater:
		e.counters.RedstoneOps++
		e.updateRepeater(u.pos, b)
	case world.Observer:
		// Plain neighbour updates do not fire observers; only a change of
		// the watched block does (updateObserverFire).
	case world.Piston:
		e.counters.RedstoneOps++
		e.updatePiston(u.pos, b)
	case world.TNT:
		if e.isReceivingPower(u.pos) {
			e.igniteTNT(u.pos)
		}
	case world.Air:
		// Cobblestone generator: an air cell touching both water and lava
		// solidifies — the stone-farm block source (Table 3).
		var water, lava bool
		for _, n := range u.pos.Neighbors6() {
			switch nb, _ := e.wc.BlockIfLoaded(n); nb.ID {
			case world.Water:
				water = true
			case world.Lava:
				lava = true
			}
		}
		if water && lava {
			e.counters.BlockAdds++
			e.w.SetBlock(u.pos, world.B(world.Cobblestone))
		}
		// Other air updates need no rule: falling and fluid-spread
		// neighbours were queued separately.
	default:
		// Second-order update: power arriving at a solid block must
		// re-evaluate components attached to it (a torch standing on it).
		if b.IsSolid() {
			if above, loaded := e.wc.BlockIfLoaded(u.pos.Up()); loaded && above.ID == world.RedstoneTorch {
				e.redstonePending = append(e.redstonePending,
					scheduledUpdate{pos: u.pos.Up(), kind: updateNeighbor})
			}
		}
	}
}

// applyGravity makes unsupported sand/gravel fall one block per update, the
// terrain-physics rule of §2.2.2 ("a bridge can collapse when a player
// removes its support pillars").
func (e *Engine) applyGravity(p world.Pos, b world.Block) {
	below, loaded := e.wc.BlockIfLoaded(p.Down())
	if !loaded {
		return
	}
	if below.IsAir() || below.IsFluid() {
		e.counters.BlockRemoves++
		e.counters.BlockAdds++
		e.w.SetBlock(p, world.B(world.Air))
		e.w.SetBlock(p.Down(), b)
	}
}

// applyFluid implements a compact cellular fluid model: fluid flows down
// into air; otherwise it spreads horizontally, increasing its level (0 =
// source .. maxFluidLevel = thinnest); flowing fluid with no feeding
// neighbour dries up. This drives the kelp-farm item streams and the
// liquid-physics workload of §2.2.2.
const maxFluidLevel = 7

func (e *Engine) applyFluid(p world.Pos, b world.Block) {
	level := int(b.Meta)

	// Flowing fluid meeting the opposing fluid solidifies into cobblestone
	// (the stone-farm generator). Sources (level 0) are never consumed.
	if level > 0 {
		opposing := world.Lava
		if b.ID == world.Lava {
			opposing = world.Water
		}
		for _, n := range p.Neighbors6() {
			if nb, _ := e.wc.BlockIfLoaded(n); nb.ID == opposing {
				e.counters.BlockAdds++
				e.w.SetBlock(p, world.B(world.Cobblestone))
				return
			}
		}
	}

	// Flowing fluid must be fed by a strictly lower-level horizontal
	// neighbour or any fluid above; otherwise it dries.
	if level > 0 {
		fed := false
		if above, _ := e.wc.BlockIfLoaded(p.Up()); above.ID == b.ID {
			fed = true
		}
		if !fed {
			for _, n := range p.NeighborsHorizontal() {
				nb, _ := e.wc.BlockIfLoaded(n)
				if nb.ID == b.ID && int(nb.Meta) < level {
					fed = true
					break
				}
			}
		}
		if !fed {
			e.counters.BlockRemoves++
			e.w.SetBlock(p, world.B(world.Air))
			return
		}
	}

	// Flow down: falling fluid keeps level 1 (full column).
	below, loaded := e.wc.BlockIfLoaded(p.Down())
	if loaded && below.IsAir() {
		e.counters.BlockAdds++
		e.w.SetBlock(p.Down(), world.Block{ID: b.ID, Meta: 1})
		return
	}
	if below.ID == b.ID && below.Meta > 1 {
		e.w.SetBlock(p.Down(), world.Block{ID: b.ID, Meta: 1})
	}

	// Spread horizontally when resting on something solid.
	if level >= maxFluidLevel {
		return
	}
	if loaded && (below.IsSolid() || below.ID == b.ID) {
		for _, n := range p.NeighborsHorizontal() {
			nb, ok := e.wc.BlockIfLoaded(n)
			if !ok {
				continue
			}
			if nb.IsAir() {
				e.counters.BlockAdds++
				e.w.SetBlock(n, world.Block{ID: b.ID, Meta: uint8(level + 1)})
			} else if nb.ID == b.ID && int(nb.Meta) > level+1 {
				e.w.SetBlock(n, world.Block{ID: b.ID, Meta: uint8(level + 1)})
			}
		}
	}
}

// applyGrowth advances plant growth for random-ticked blocks (§2.2.2:
// "plants and trees change over time, reshaping the nearby terrain").
func (e *Engine) applyGrowth(p world.Pos, b world.Block) {
	switch b.ID {
	case world.Wheat:
		if b.Meta < 7 {
			e.counters.GrowthOps++
			e.w.SetBlock(p, world.Block{ID: world.Wheat, Meta: b.Meta + 1})
		}
	case world.Kelp:
		// Kelp extends upward through water until its stage cap.
		if b.Meta >= 15 {
			return
		}
		above, _ := e.wc.BlockIfLoaded(p.Up())
		if above.ID == world.Water {
			e.counters.GrowthOps++
			e.counters.BlockAdds++
			e.w.SetBlock(p, world.Block{ID: world.Kelp, Meta: b.Meta + 1})
			e.w.SetBlock(p.Up(), world.Block{ID: world.Kelp, Meta: b.Meta + 1})
		}
	case world.Sapling:
		// Saplings rarely grow into a small tree.
		if e.rng.Intn(32) != 0 {
			return
		}
		e.counters.GrowthOps++
		for y := 1; y <= 4; y++ {
			if q := p.Add(0, y, 0); e.blockAirAt(q) {
				e.counters.BlockAdds++
				e.w.SetBlock(q, world.B(world.Wood))
			}
		}
	}
}

func (e *Engine) blockAirAt(p world.Pos) bool {
	b, loaded := e.wc.BlockIfLoaded(p)
	return loaded && b.IsAir()
}
