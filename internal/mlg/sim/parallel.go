package sim

// Region-parallel drain scheduling.
//
// The serial drain processes one global FIFO: pop the oldest update, apply
// its rule, append whatever the rule enqueues. Everything externally visible
// — entity-spawn requests (which consume entity IDs and RNG), scheduled
// future updates, block-change events fanned to listeners, leftover queue
// contents — inherits that global pop order. A bit-identical parallel
// schedule therefore needs two things:
//
//  1. Region independence: updates in different regions must touch disjoint
//     memory, so each region's local FIFO evolves exactly as the serial
//     FIFO restricted to that region would (region.go's partition gives
//     this, and regionRun.setBlock aborts the attempt if a cascade ever
//     tries to write outside its region's owned chunks).
//
//  2. Order reconstruction: after the regions drain, the serial pop order
//     is recomputed without re-running any rule. Each region logs, per pop,
//     how many children it appended to each queue and how many effect
//     events it emitted. Replaying a virtual FIFO of region tags — seeded
//     with the original interleaved queue order, extended by the logged
//     child counts — yields the exact serial pop sequence, which orders the
//     buffered events and materializes the leftover queues (see
//     buildMergePlan).
//
// If a region escapes its owned set, or the tick's applied updates would
// have hit MaxUpdatesPerTick (whose deferral semantics are order-dependent),
// the attempt rolls back every region's writes (undo logs, still inside the
// world's exclusive phase) and the tick re-runs on the serial path, so the
// parallel schedule never changes observable behaviour — it only changes
// wall-clock time.

import (
	"repro/internal/mlg/world"
)

type eventKind uint8

const (
	evBlockChange eventKind = iota // fan to world listeners at merge
	evSpawnTNT                     // EntityOps.SpawnPrimedTNT
	evSpawnItem                    // EntityOps.SpawnItem
	evSpawnMob                     // EntityOps.SpawnMob
	evSchedule                     // append to Engine.scheduled
)

// event is one buffered externally visible effect of a region drain,
// replayed at merge time in the reconstructed serial order.
type event struct {
	kind eventKind
	pos  world.Pos
	old  world.Block // evBlockChange
	nb   world.Block // evBlockChange
	i1   int64       // fuse ticks / item BlockID / absolute due tick
	upd  updateKind  // evSchedule
	val  uint8       // evSchedule
}

// logRec describes one queue pop of a region drain: whether the update was
// applied (vs re-routed to the redstone queue), and how many children and
// events its processing produced. Counts are uint16: one rule application
// enqueues at most a few dozen children.
type logRec struct {
	applied bool
	np      uint16 // children appended to the pending queue
	nr      uint16 // children appended to the redstone queue
	ne      uint16 // effect events emitted
}

// undoRec records one chunk write for rollback. The pre-write light horizon
// is always captured so rollback restores the exact lighting state even
// when the write triggered a column recompute.
type undoRec struct {
	c       *world.Chunk
	lx, lz  uint8
	y       uint16
	old     world.Block
	horizon uint8
}

// regionRun is one region's drain execution: its share of the tick's queues,
// its private counters and caches, and the logs the merge replays.
type regionRun struct {
	key   world.ChunkPos
	core  map[world.ChunkPos]struct{}
	owned map[world.ChunkPos]struct{} // core plus one-chunk halo

	pendingQ  []scheduledUpdate
	redstoneQ []scheduledUpdate
	pendPops  int // pendingQ entries popped (phase 1)
	redPops   int // redstoneQ entries popped (phase 2, even ticks)

	cache    world.ChunkCache
	counters Counters
	log      []logRec
	events   []event
	undo     []undoRec
	// setCount and lightScans mirror what World.SetBlock would have added
	// to the world counters; merged via AddMutationStats.
	setCount   int
	lightScans int
	// escaped marks a write outside the owned set: the whole tick's
	// parallel attempt aborts and re-runs serially.
	escaped bool
}

// setBlock is the region-context write path: the World.SetBlock semantics
// (bounds, chunk set, conditional column-light recompute, stats, change
// notification) applied directly to the owned chunk under the world's
// exclusive phase, with an undo record for rollback. The engine-listener
// cascade (neighbour queueing, observer pulses) runs inline on the region
// context; the other listeners get the buffered change event at merge.
func (r *regionRun) setBlock(x *exec, p world.Pos, b world.Block) {
	if r.escaped {
		return
	}
	if p.Y < 0 || p.Y >= world.Height {
		return
	}
	cp := world.ChunkPosAt(p)
	if _, ok := r.owned[cp]; !ok {
		// Cross-region effect: a cascade is trying to leave the region.
		r.escaped = true
		return
	}
	c := r.cache.Chunk(cp)
	if c == nil {
		// Writing an unloaded chunk would generate terrain, which only the
		// serial path may do (generation mutates the chunk index).
		r.escaped = true
		return
	}
	lx, lz := world.ChunkLocal(p)
	r.undo = append(r.undo, undoRec{
		c: c, lx: uint8(lx), lz: uint8(lz), y: uint16(p.Y),
		old: c.At(lx, p.Y, lz), horizon: uint8(c.LightHorizon(lx, lz)),
	})
	old := c.Set(lx, p.Y, lz, b)
	r.setCount++
	if old.IsOpaque() != b.IsOpaque() && p.Y >= c.LightHorizon(lx, lz)-1 {
		r.lightScans += c.RecomputeColumnLight(lx, lz)
	}
	if old != b {
		r.events = append(r.events, event{kind: evBlockChange, pos: p, old: old, nb: b})
		x.queueNeighbors(p)
		x.notifyObservers(p)
	}
}

// rollback undoes every chunk write of the region in reverse order. Chunk
// revisions stay advanced (they are monotonic cache keys, and the restored
// contents re-encode to identical payloads); cells, occupancy and light
// horizons return to their exact pre-tick state.
func (r *regionRun) rollback() {
	for i := len(r.undo) - 1; i >= 0; i-- {
		u := r.undo[i]
		u.c.Set(int(u.lx), int(u.y), int(u.lz), u.old)
		u.c.SetLightHorizon(int(u.lx), int(u.lz), int(u.horizon))
	}
}

// run drains the region's queues: the plain queue first, then — on redstone
// ticks — the logic-component queue, mirroring the serial phase order.
// Budgets are not enforced here; the merge aborts the tick if the combined
// applied count would have hit the serial cap.
func (r *regionRun) run(x *exec, evenTick bool) {
	r.drainQueue(x, &r.pendingQ, &r.pendPops, false)
	if evenTick && !r.escaped {
		r.drainQueue(x, &r.redstoneQ, &r.redPops, true)
	}
}

// drainQueue is the region analogue of exec.drain: cursor-based pops (the
// full queue contents are needed later to materialize leftovers in the
// merge), one log record per pop.
func (r *regionRun) drainQueue(x *exec, q *[]scheduledUpdate, pops *int, redstoneAllowed bool) {
	for *pops < len(*q) && !r.escaped {
		u := (*q)[*pops]
		*pops++
		if !redstoneAllowed {
			if b, loaded := x.wc.BlockIfLoaded(u.pos); loaded && b.IsRedstoneComponent() {
				*x.redstone = append(*x.redstone, u)
				r.log = append(r.log, logRec{applied: false})
				continue
			}
		}
		np0, nr0, ne0 := len(r.pendingQ), len(r.redstoneQ), len(r.events)
		x.apply(u)
		r.log = append(r.log, logRec{
			applied: true,
			np:      uint16(len(r.pendingQ) - np0),
			nr:      uint16(len(r.redstoneQ) - nr0),
			ne:      uint16(len(r.events) - ne0),
		})
	}
}

// mergePlan is the validated outcome of the virtual-queue replay: the
// leftover queues and the effect events in serial order.
type mergePlan struct {
	newPending  []scheduledUpdate
	newRedstone []scheduledUpdate
	events      []*event
}

// tryParallelDrains attempts to drain this tick's queues on the region-
// parallel schedule. It returns true when the tick was drained and merged
// (bit-identically to the serial drain); false leaves the engine's queues
// and the world untouched so the caller runs the serial path.
func (e *Engine) tryParallelDrains(budget int) bool {
	e.lastParallel = false
	e.lastRegions = 0
	if e.workers < 2 {
		return false
	}
	if e.serialHold > 0 {
		e.serialHold--
		return false
	}
	evenTick := e.tick%2 == 0
	// Updates that would actually drain this tick: on odd ticks the
	// redstone queue only accumulates, so it earns no parallelism.
	active := len(e.pending)
	if evenTick {
		active += len(e.redstonePending)
	}
	if active < minParallelUpdates {
		return false
	}
	// Budget pressure at tick start: the serial cap's deferral order is not
	// reproducible region-locally, so stay serial outright.
	if len(e.pending)+len(e.redstonePending) >= budget {
		return false
	}

	regions, vpInit, vrInit, nComps := e.partitionRegions(2)
	e.lastRegions = nComps
	if regions == nil {
		// Single region (or none): nothing to parallelize. The region
		// structure rarely changes tick to tick, so hold the serial path
		// for a few ticks instead of re-partitioning a dense single-cluster
		// workload on every one — partition cost must not inflate the tick
		// times this reproduction measures.
		e.serialHold = 8
		return false
	}

	// Size the fan-out by the work available: regions pack into contiguous
	// cost-balanced units (cost = the queue entries a region will actually
	// drain this tick), so many small regions share a few worker handoffs
	// and a light tick spawns only the goroutines its units need.
	costs := e.costScratch[:0]
	for _, r := range regions {
		cost := len(r.pendingQ) + 1
		if evenTick {
			cost += len(r.redstoneQ)
		}
		costs = append(costs, cost)
	}
	e.costScratch = costs
	units := world.PackUnits(e.unitScratch[:0], costs, e.workers*unitsPerWorker, minUnitUpdates)
	e.unitScratch = units

	// Exclusive phase: the world lock is held across the drains, standing
	// in for the serial drain's per-SetBlock lock acquisitions. External
	// readers block exactly as they would behind a serial update storm;
	// workers never touch the lock (their caches resolve from the frozen
	// chunk index) and never touch each other's chunks.
	index := e.w.BeginExclusive()
	world.Parallel(e.workers, len(units), func(u int) {
		for idx := units[u][0]; idx < units[u][1]; idx++ {
			r := regions[idx]
			r.cache = world.NewFixedChunkCache(index)
			x := &exec{
				e:        e,
				wc:       &r.cache,
				counters: &r.counters,
				pending:  &r.pendingQ,
				redstone: &r.redstoneQ,
				region:   r,
			}
			if e.cfg.RedstoneBatch {
				// Fresh per-region dedup map: within a tick a wire belongs
				// to exactly one region, and entries never carry across
				// ticks (the lookup compares the tick).
				x.wireSeen = make(map[world.Pos]int64)
			}
			r.run(x, evenTick)
		}
	})

	abort := false
	for _, r := range regions {
		if r.escaped {
			abort = true
		}
	}
	var plan *mergePlan
	if !abort {
		plan = e.buildMergePlan(regions, vpInit, vrInit, evenTick, budget)
		abort = plan == nil
	}
	if abort {
		// Still inside the exclusive phase: restore every chunk, then let
		// the serial drain redo the tick over the untouched engine queues.
		for _, r := range regions {
			r.rollback()
		}
		e.w.EndExclusive()
		e.releaseRegionRuns(regions)
		e.fallbackTicks++
		e.serialHold = 8
		return false
	}
	e.w.EndExclusive()

	e.applyMergePlan(regions, plan)
	e.releaseRegionRuns(regions)
	e.lastParallel = true
	e.parallelTicks++
	return true
}

// buildMergePlan replays the virtual queues to reconstruct the serial pop
// order (see the package comment). It returns nil if the replay detects an
// inconsistency — a budget overrun or a log/queue mismatch — in which case
// the caller rolls the tick back.
func (e *Engine) buildMergePlan(regions []*regionRun, vpInit, vrInit []int32, evenTick bool, budget int) *mergePlan {
	nEvents := 0
	for _, r := range regions {
		nEvents += len(r.events)
	}
	plan := &mergePlan{events: make([]*event, 0, nEvents)}

	vp := append(make([]int32, 0, len(vpInit)*2), vpInit...)
	vr := append(make([]int32, 0, len(vrInit)*2), vrInit...)
	logIdx := make([]int, len(regions))
	pIdx := make([]int, len(regions)) // virtual cursor into each pendingQ
	rIdx := make([]int, len(regions)) // virtual cursor into each redstoneQ
	evIdx := make([]int, len(regions))
	applied := 0

	pop := func(tag int32, fromPending bool) (logRec, bool) {
		r := regions[tag]
		if fromPending {
			pIdx[tag]++
		} else {
			rIdx[tag]++
		}
		if logIdx[tag] >= len(r.log) {
			return logRec{}, false
		}
		rec := r.log[logIdx[tag]]
		logIdx[tag]++
		return rec, true
	}
	expand := func(tag int32, rec logRec, pendSink *[]int32) {
		applied++
		r := regions[tag]
		for i := 0; i < int(rec.np); i++ {
			*pendSink = append(*pendSink, tag)
		}
		for i := 0; i < int(rec.nr); i++ {
			vr = append(vr, tag)
		}
		for i := 0; i < int(rec.ne); i++ {
			plan.events = append(plan.events, &r.events[evIdx[tag]])
			evIdx[tag]++
		}
	}

	// Phase 1: the pending-queue drain. The budget guard mirrors the
	// serial loop condition exactly (`for len(queue) > 0 && budget > 0`):
	// once the applied count reaches the budget, the serial drain stops
	// popping entirely — including pops that would only re-route — so any
	// further virtual pop means the tick is not reconstructible and must
	// roll back.
	for h := 0; h < len(vp); h++ {
		if applied >= budget {
			return nil
		}
		tag := vp[h]
		rec, ok := pop(tag, true)
		if !ok {
			return nil
		}
		if !rec.applied {
			vr = append(vr, tag) // re-routed to the redstone queue
			continue
		}
		expand(tag, rec, &vp)
	}
	for i, r := range regions {
		if pIdx[i] != r.pendPops {
			return nil
		}
	}

	if evenTick {
		// Phase 2: the redstone drain. Children routed to the pending queue
		// are this tick's leftovers, kept in pop order.
		var leftover []int32
		for h := 0; h < len(vr); h++ {
			if applied >= budget {
				return nil // serial would stop popping here
			}
			tag := vr[h]
			rec, ok := pop(tag, false)
			if !ok || !rec.applied {
				return nil
			}
			expand(tag, rec, &leftover)
		}
		for i, r := range regions {
			if rIdx[i] != r.redPops || logIdx[i] != len(r.log) || evIdx[i] != len(r.events) {
				return nil
			}
		}
		plan.newPending = materialize(regions, leftover, pIdx, func(r *regionRun) []scheduledUpdate { return r.pendingQ })
	} else {
		// Odd tick: the redstone queue was not drained; its reconstructed
		// interleaving becomes the new queue.
		for i, r := range regions {
			if r.redPops != 0 || logIdx[i] != len(r.log) || evIdx[i] != len(r.events) {
				return nil
			}
		}
		plan.newRedstone = materialize(regions, vr, rIdx, func(r *regionRun) []scheduledUpdate { return r.redstoneQ })
	}
	return plan
}

// materialize converts a tag sequence into concrete updates by walking each
// region's queue from its cursor: the k-th tag for region r corresponds to
// the k-th not-yet-consumed entry of r's queue, because tags were appended
// to the virtual queue in the same order the region appended entries to its
// local queue.
func materialize(regions []*regionRun, tags []int32, cursor []int, queueOf func(*regionRun) []scheduledUpdate) []scheduledUpdate {
	if len(tags) == 0 {
		return nil
	}
	out := make([]scheduledUpdate, 0, len(tags))
	for _, tag := range tags {
		q := queueOf(regions[tag])
		out = append(out, q[cursor[tag]])
		cursor[tag]++
	}
	return out
}

// applyMergePlan commits a successful parallel drain: counters and world
// stats are summed (order-free), buffered effects replay in the
// reconstructed serial order, and the leftover queues replace the drained
// ones. Runs after EndExclusive — listeners and the entity store take their
// own locks.
func (e *Engine) applyMergePlan(regions []*regionRun, plan *mergePlan) {
	sets, light := 0, 0
	for _, r := range regions {
		sets += r.setCount
		light += r.lightScans
		e.counters = e.counters.Add(r.counters)
	}
	e.w.AddMutationStats(sets, light)

	// Replay effects in serial order. merging makes the engine's own
	// change listener maintain only the spawner/hopper sets: the regions
	// already queued their cascades.
	e.merging = true
	for _, ev := range plan.events {
		switch ev.kind {
		case evBlockChange:
			e.w.EmitChange(ev.pos, ev.old, ev.nb)
		case evSpawnTNT:
			e.ents.SpawnPrimedTNT(ev.pos, int(ev.i1))
		case evSpawnItem:
			e.ents.SpawnItem(ev.pos, world.BlockID(ev.i1))
		case evSpawnMob:
			e.ents.SpawnMob(ev.pos)
		case evSchedule:
			e.scheduled[ev.i1] = append(e.scheduled[ev.i1],
				scheduledUpdate{pos: ev.pos, kind: ev.upd, val: ev.val})
		}
	}
	e.merging = false

	e.pending = plan.newPending
	e.redstonePending = plan.newRedstone
}
