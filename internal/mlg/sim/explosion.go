package sim

import (
	"math"

	"repro/internal/mlg/world"
)

// ExplosionRadius is the blast radius of primed TNT, matching Minecraft's 4.
const ExplosionRadius = 4.0

// Explode processes one explosion centred at p: blocks inside the blast
// sphere (except blast-resistant ones) are destroyed, destroyed TNT blocks
// chain-ignite with a short random fuse, and a fraction of destroyed blocks
// drop item entities. It returns the number of blocks destroyed.
//
// Chained TNT is the paper's TNT workload (§3.3.1): "when a large section
// of TNT is activated, the MLG must perform a large number of both
// entity-collision and physics calculations". The short chain fuses make
// hundreds of TNT entities explode within the same few ticks, which is what
// produces the multi-second tick spikes of Figure 9.
func (e *Engine) Explode(p world.Pos, radius float64) (int, Counters) {
	before := e.counters
	e.counters.Explosions++
	r := int(math.Ceil(radius))
	r2 := radius * radius
	destroyed := 0

	// Bulk mutation: suppress the per-change neighbour cascade and queue a
	// single perimeter update pass afterwards. (Vanilla behaves similarly:
	// explosions batch their block removal.)
	e.suppress = true
	for dy := -r; dy <= r; dy++ {
		for dz := -r; dz <= r; dz++ {
			for dx := -r; dx <= r; dx++ {
				if float64(dx*dx+dy*dy+dz*dz) > r2 {
					continue
				}
				e.counters.ExplosionScan++
				q := p.Add(dx, dy, dz)
				// Unowned blocks are scanned but not destroyed (shard mode):
				// scan counters sum across shards to the single-shard value,
				// and a shard never mutates a chunk it does not own.
				if !e.owns(q) {
					continue
				}
				b, loaded := e.wc.BlockIfLoaded(q)
				if !loaded || b.IsAir() || blastResistant(b.ID) {
					continue
				}
				e.counters.ExplosionBlocks++
				e.counters.BlockRemoves++
				destroyed++
				e.w.SetBlock(q, world.B(world.Air))
				// Fuse and drop rolls come from the destroyed block's own
				// per-tick stream (streams.go), so chain spread is independent
				// of detonation order and shard layout.
				st := blockStream(e.seed, q, e.tick)
				switch {
				case b.ID == world.TNT:
					// Chain ignition with a randomized fuse up to three
					// seconds; the spread keeps the chain burning for tens of
					// seconds (as in the community videos the paper cites)
					// instead of detonating the whole cuboid at once.
					e.ents.SpawnPrimedTNT(q, 2+st.Intn(88))
				case st.Float64() < e.cfg.ItemDropChance:
					e.ents.SpawnItem(q, b.ID)
				}
			}
		}
	}
	e.suppress = false

	// One follow-up update wave around the crater so fluids flow in, sand
	// collapses, and wires depower. Sampling the crater shell keeps this
	// proportional to the surface, like vanilla's neighbour updates.
	for dy := -r; dy <= r; dy++ {
		for dz := -r; dz <= r; dz++ {
			for dx := -r; dx <= r; dx++ {
				d2 := float64(dx*dx + dy*dy + dz*dz)
				if d2 > r2 || d2 < (radius-1.5)*(radius-1.5) {
					continue // only the shell
				}
				e.root.queueNeighbors(p.Add(dx, dy, dz))
			}
		}
	}
	return destroyed, e.counters.Sub(before)
}

// MergedExplosions processes a batch of explosions. With the PaperMC
// ExplosionMerge optimization, overlapping blast volumes are deduplicated
// before scanning, so n clustered explosions cost far less than n separate
// scans; without it each explosion is processed independently.
func (e *Engine) MergedExplosions(centers []world.Pos, radius float64) (int, Counters) {
	before := e.counters
	if !e.cfg.ExplosionMerge || len(centers) < 2 {
		total := 0
		for _, c := range centers {
			n, _ := e.Explode(c, radius)
			total += n
		}
		return total, e.counters.Sub(before)
	}

	// Deduplicate the union volume: visit each affected block once.
	r := int(math.Ceil(radius))
	r2 := radius * radius
	seen := make(map[world.Pos]struct{}, len(centers)*32)
	destroyed := 0
	e.counters.Explosions += len(centers)
	e.suppress = true
	for _, c := range centers {
		for dy := -r; dy <= r; dy++ {
			for dz := -r; dz <= r; dz++ {
				for dx := -r; dx <= r; dx++ {
					if float64(dx*dx+dy*dy+dz*dz) > r2 {
						continue
					}
					q := c.Add(dx, dy, dz)
					if _, dup := seen[q]; dup {
						continue
					}
					seen[q] = struct{}{}
					e.counters.ExplosionScan++
					if !e.owns(q) {
						continue
					}
					b, loaded := e.wc.BlockIfLoaded(q)
					if !loaded || b.IsAir() || blastResistant(b.ID) {
						continue
					}
					e.counters.ExplosionBlocks++
					e.counters.BlockRemoves++
					destroyed++
					e.w.SetBlock(q, world.B(world.Air))
					st := blockStream(e.seed, q, e.tick)
					switch {
					case b.ID == world.TNT:
						e.ents.SpawnPrimedTNT(q, 2+st.Intn(88))
					case st.Float64() < e.cfg.ItemDropChance:
						e.ents.SpawnItem(q, b.ID)
					}
				}
			}
		}
	}
	e.suppress = false
	// A single perimeter pass for the whole batch.
	for _, c := range centers {
		e.root.queueNeighbors(c)
	}
	return destroyed, e.counters.Sub(before)
}

// blastResistant lists blocks explosions cannot destroy.
func blastResistant(id world.BlockID) bool {
	return id == world.Bedrock || id == world.Obsidian
}
