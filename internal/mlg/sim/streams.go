package sim

import "repro/internal/mlg/world"

// Position-keyed random streams — the terrain half of the determinism
// contract, extended from worker-count independence (PR 6) to shard-layout
// independence.
//
// The engine's shared RNG made every draw's value depend on the global draw
// order: which chunks were loaded, which explosion detonated first, how many
// random-tick samples preceded this one. That order is identical across
// worker counts (the parallel drains replay it), but it is NOT identical
// across shard layouts — a shard simulating half the chunks consumes half
// the draws. Every draw the simulation still needs is therefore keyed by the
// simulation state that caused it (chunk or block position ⊕ tick ⊕ world
// seed) and advanced by draw index within that event, making each value a
// pure function of simulation state: a shard that owns a chunk draws exactly
// the values the single-shard run draws for it, no matter what the rest of
// the cluster is doing.
//
// The serializable engine RNG still exists and its state still round-trips
// through snapshots (persist.go), so the save format is unchanged; no drain
// rule consumes it anymore.

// posStream is a stateless counter-based splitmix64 stream.
type posStream struct{ state uint64 }

// chunkStream keys a stream by (world seed, chunk column, tick) — one stream
// per chunk per tick, used by the random-tick sampler.
func chunkStream(seed int64, cp world.ChunkPos, tick int64) posStream {
	return posStream{state: mix64(uint64(world.RegionSeed(seed, cp)) ^ rotl(uint64(tick), 32))}
}

// blockStream keys a stream by (world seed, block position, tick) — one
// stream per affected block per tick, used by explosion fuse/drop rolls.
func blockStream(seed int64, p world.Pos, tick int64) posStream {
	h := uint64(int64(p.X))*0x9E3779B97F4A7C15 ^
		rotl(uint64(int64(p.Y)), 21)*0xBF58476D1CE4E5B9 ^
		rotl(uint64(int64(p.Z)), 42)*0x94D049BB133111EB
	return posStream{state: mix64(uint64(seed) ^ h ^ rotl(uint64(tick), 32))}
}

// next advances the stream one draw: splitmix64 over the keyed state.
func (s *posStream) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix64(s.state)
}

// Intn returns a draw in [0, n). Modulo bias at the simulation's tiny ranges
// (n <= 256) is below 2^-55 — irrelevant for growth and fuse rolls.
func (s *posStream) Intn(n int) int { return int(s.next() % uint64(n)) }

// Float64 returns a draw in [0, 1) with 53 bits of precision.
func (s *posStream) Float64() float64 { return float64(s.next()>>11) / (1 << 53) }

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func rotl(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }
