package sim

// Property-based tests for the region partitioner: for randomized
// dirty-chunk sets the partition must (1) assign every queued update to
// exactly one region core, (2) keep region cores and owned sets pairwise
// disjoint, (3) never split two updates that are at most one chunk apart
// into different regions, and (4) keep distinct cores far enough apart that
// owned sets are separated by the safety gap the parallel drains rely on.

import (
	"math/rand"
	"testing"

	"repro/internal/mlg/world"
)

// chebyshev returns the chunk-grid Chebyshev distance.
func chebyshev(a, b world.ChunkPos) int32 {
	dx, dz := a.X-b.X, a.Z-b.Z
	if dx < 0 {
		dx = -dx
	}
	if dz < 0 {
		dz = -dz
	}
	if dz > dx {
		return dz
	}
	return dx
}

// partitionForUpdates builds an engine whose queues contain exactly the
// given update positions and returns its partition.
func partitionForUpdates(t *testing.T, pendingPos, redstonePos []world.Pos) ([]*regionRun, []int32, []int32) {
	t.Helper()
	w := world.New(nil)
	e := New(w, &orderedEnts{}, DefaultConfig(), 1)
	for _, p := range pendingPos {
		e.pending = append(e.pending, scheduledUpdate{pos: p, kind: updateNeighbor})
	}
	for _, p := range redstonePos {
		e.redstonePending = append(e.redstonePending, scheduledUpdate{pos: p, kind: updateNeighbor})
	}
	regions, vpInit, vrInit, nComps := e.partitionRegions(1)
	if nComps != len(regions) {
		t.Fatalf("component count %d != materialized regions %d", nComps, len(regions))
	}
	return regions, vpInit, vrInit
}

func TestRegionPartitionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	for trial := 0; trial < 200; trial++ {
		// Random dirty set: a few clusters of positions plus uniform noise,
		// in a bounded chunk area so merges actually happen.
		var pending, redstone []world.Pos
		nClusters := 1 + rng.Intn(5)
		for c := 0; c < nClusters; c++ {
			cx, cz := rng.Intn(1200)-600, rng.Intn(1200)-600
			for i := 0; i < 1+rng.Intn(30); i++ {
				p := world.Pos{X: cx + rng.Intn(48), Y: rng.Intn(world.Height), Z: cz + rng.Intn(48)}
				if rng.Intn(2) == 0 {
					pending = append(pending, p)
				} else {
					redstone = append(redstone, p)
				}
			}
		}
		for i := 0; i < rng.Intn(10); i++ {
			pending = append(pending, world.Pos{X: rng.Intn(2000) - 1000, Y: 5, Z: rng.Intn(2000) - 1000})
		}

		regions, vpInit, vrInit := partitionForUpdates(t, pending, redstone)

		// Tag sequences must mirror the queues one to one.
		if len(vpInit) != len(pending) || len(vrInit) != len(redstone) {
			t.Fatalf("trial %d: tag lengths %d/%d, want %d/%d",
				trial, len(vpInit), len(vrInit), len(pending), len(redstone))
		}

		// Every update's chunk must be in its tagged region's core, and the
		// region queues must hold the updates in their original order.
		check := func(tags []int32, positions []world.Pos, queueOf func(*regionRun) []scheduledUpdate) {
			seen := make([]int, len(regions))
			for i, tag := range tags {
				r := regions[tag]
				cp := world.ChunkPosAt(positions[i])
				if _, ok := r.core[cp]; !ok {
					t.Fatalf("trial %d: update %v tagged to region %v whose core misses chunk %v",
						trial, positions[i], r.key, cp)
				}
				if got := queueOf(r)[seen[tag]].pos; got != positions[i] {
					t.Fatalf("trial %d: region %v queue order diverged: %v vs %v",
						trial, r.key, got, positions[i])
				}
				seen[tag]++
			}
		}
		check(vpInit, pending, func(r *regionRun) []scheduledUpdate { return r.pendingQ })
		check(vrInit, redstone, func(r *regionRun) []scheduledUpdate { return r.redstoneQ })

		// Cores are pairwise disjoint, separated by more than the link
		// distance, and owned sets are disjoint with a gap.
		for i, a := range regions {
			for j, b := range regions {
				if i >= j {
					continue
				}
				for ca := range a.core {
					for cb := range b.core {
						if d := chebyshev(ca, cb); d <= regionLinkChunks {
							t.Fatalf("trial %d: cores of regions %v and %v only %d chunks apart",
								trial, a.key, b.key, d)
						}
					}
				}
				for oa := range a.owned {
					if _, ok := b.owned[oa]; ok {
						t.Fatalf("trial %d: owned sets of %v and %v overlap at %v",
							trial, a.key, b.key, oa)
					}
				}
			}
		}

		// No two updates at most one chunk apart may land in different
		// regions (the 1-chunk-halo independence requirement).
		all := append(append([]world.Pos{}, pending...), redstone...)
		allTags := append(append([]int32{}, vpInit...), vrInit...)
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if chebyshev(world.ChunkPosAt(all[i]), world.ChunkPosAt(all[j])) <= 1 &&
					allTags[i] != allTags[j] {
					t.Fatalf("trial %d: updates %v and %v are <=1 chunk apart but in regions %d and %d",
						trial, all[i], all[j], allTags[i], allTags[j])
				}
			}
		}

		// Owned sets must cover each core with its full 1-chunk halo.
		for _, r := range regions {
			for cp := range r.core {
				for dz := int32(-1); dz <= 1; dz++ {
					for dx := int32(-1); dx <= 1; dx++ {
						n := world.ChunkPos{X: cp.X + dx, Z: cp.Z + dz}
						if _, ok := r.owned[n]; !ok {
							t.Fatalf("trial %d: region %v owned set misses halo chunk %v", trial, r.key, n)
						}
					}
				}
			}
		}
	}
}

// TestRegionPartitionDeterministicOrder: identical queue contents must
// produce identical region keys in identical order regardless of map
// iteration order (run repeatedly to shake the map hash seed).
func TestRegionPartitionDeterministicOrder(t *testing.T) {
	positions := []world.Pos{
		{X: 0, Y: 10, Z: 0}, {X: 500, Y: 10, Z: 0}, {X: 0, Y: 10, Z: 500},
		{X: -400, Y: 10, Z: -400}, {X: 505, Y: 10, Z: 3},
	}
	var firstKeys []world.ChunkPos
	for rep := 0; rep < 20; rep++ {
		regions, _, _ := partitionForUpdates(t, positions, nil)
		keys := make([]world.ChunkPos, len(regions))
		for i, r := range regions {
			keys[i] = r.key
		}
		if rep == 0 {
			firstKeys = keys
			continue
		}
		if len(keys) != len(firstKeys) {
			t.Fatalf("rep %d: region count %d vs %d", rep, len(keys), len(firstKeys))
		}
		for i := range keys {
			if keys[i] != firstKeys[i] {
				t.Fatalf("rep %d: region order diverged: %v vs %v", rep, keys, firstKeys)
			}
		}
	}
}
