package sim

import "repro/internal/mlg/world"

// Redstone-like logic simulation. Components evaluate on redstone ticks
// (every second game tick). Power propagates through wire with decay 15→0;
// torches invert the block beneath them; repeaters forward power along
// their facing after a configurable delay; observers emit one-tick pulses
// when the watched block changes; pistons push (and harvest) blocks.
//
// These are the "logic-gate constructs" of the Lag workload (§3.3.1) and
// the drive circuitry of the Farm constructs (Table 3).

// isReceivingPower reports whether any neighbour powers the position.
// Directional components (repeater, observer) only power along their facing.
func (x *exec) isReceivingPower(p world.Pos) bool {
	return x.incomingPower(p) > 0
}

// incomingPower returns the strongest power level delivered to p.
func (x *exec) incomingPower(p world.Pos) uint8 {
	var best uint8
	for _, d := range []world.Direction{world.DirUp, world.DirDown, world.DirNorth,
		world.DirSouth, world.DirEast, world.DirWest} {
		np := d.Move(p)
		nb, loaded := x.wc.BlockIfLoaded(np)
		if !loaded {
			continue
		}
		var pw uint8
		switch nb.ID {
		case world.Repeater:
			// Directional: powers only the block it faces.
			if nb.Facing().Move(np) == p {
				pw = nb.PowerOutput()
			}
		case world.Observer:
			// An observer watches its facing and outputs from its back.
			if nb.Facing().Opposite().Move(np) == p {
				pw = nb.PowerOutput()
			}
		case world.RedstoneTorch:
			// A torch does not power the block it is attached to (the block
			// directly beneath it) — otherwise every torch would switch its
			// own base and oscillate.
			if np != p.Up() {
				pw = nb.PowerOutput()
			}
		case world.RedstoneWire:
			w := nb.PowerOutput()
			if w > 0 {
				pw = w - 1
			}
		default:
			pw = nb.PowerOutput()
		}
		if pw > best {
			best = pw
		}
	}
	return best
}

// updateWire recomputes a wire's power from its strongest input and
// propagates the change to its neighbours via the world-change cascade.
func (x *exec) updateWire(p world.Pos, b world.Block) {
	if x.e.cfg.RedstoneBatch {
		// Bump the per-tick evaluation count (checked in apply).
		if v := x.wireSeen[p]; v>>2 == x.e.tick {
			x.wireSeen[p] = v + 1
		} else {
			x.wireSeen[p] = x.e.tick << 2
		}
	}
	want := x.incomingPower(p)
	if want != b.Meta&0x0F {
		x.setBlock(p, world.Block{ID: world.RedstoneWire, Meta: want & 0x0F})
	}
}

// updateTorch inverts the power state of the block the torch stands on:
// powered base → torch off, unpowered base → torch lit.
func (x *exec) updateTorch(p world.Pos, b world.Block) {
	baseP := p.Down()
	basePowered := x.incomingPower(baseP) > 0
	lit := b.Meta&1 != 0
	if basePowered == lit {
		nb := b
		if basePowered {
			nb.Meta &^= 1
		} else {
			nb.Meta |= 1
		}
		x.setBlock(p, nb)
	}
}

// updateRepeater samples the repeater's input (the side opposite its
// facing); a change schedules the output flip after the repeater's delay.
func (x *exec) updateRepeater(p world.Pos, b world.Block) {
	inputPos := b.Facing().Opposite().Move(p)
	inPowered := x.powerAt(inputPos, p)
	if inPowered != b.RepeaterPowered() {
		// The output change is latched now and applied after the delay,
		// regardless of what the input does in between — otherwise two
		// repeaters firing in the same tick could eat a travelling pulse.
		var v uint8
		if inPowered {
			v = 1
		}
		x.scheduleVal(p, b.RepeaterDelay()*2, updateRepeaterFire, v) // delay in redstone ticks
	}
}

// fireRepeater applies the latched output flip.
func (x *exec) fireRepeater(p world.Pos, val uint8) {
	b, loaded := x.wc.BlockIfLoaded(p)
	if !loaded || b.ID != world.Repeater {
		return
	}
	x.counters.RedstoneOps++
	want := val != 0
	if want != b.RepeaterPowered() {
		x.setBlock(p, b.WithRepeaterPowered(want))
	}
}

// powerAt reports whether the block at p emits or conducts power toward the
// consumer at dst.
func (x *exec) powerAt(p, dst world.Pos) bool {
	b, loaded := x.wc.BlockIfLoaded(p)
	if !loaded {
		return false
	}
	switch b.ID {
	case world.Repeater:
		return b.Facing().Move(p) == dst && b.PowerOutput() > 0
	case world.Observer:
		return b.Facing().Opposite().Move(p) == dst && b.PowerOutput() > 0
	default:
		return b.PowerOutput() > 0
	}
}

// pulseObserver starts an observer's one-redstone-tick output pulse; the
// pulse itself is a block change, so observers watching this observer fire
// in turn — the feedback loop lag machines exploit.
func (x *exec) pulseObserver(p world.Pos, b world.Block) {
	if b.ObserverPulsing() {
		return
	}
	x.setBlock(p, b.WithObserverPulse(true))
	x.schedule(p, 2, updateObserverClear)
}

// updatePiston extends a powered piston and schedules retraction of an
// unpowered one. Extension into a harvestable block breaks it and drops an
// item — the harvest mechanism of the Farm constructs.
func (x *exec) updatePiston(p world.Pos, b world.Block) {
	powered := x.isReceivingPower(p)
	switch {
	case powered && !b.PistonExtended():
		x.extendPiston(p, b)
	case !powered && b.PistonExtended():
		x.schedule(p, 2, updatePistonRetract)
	}
}

func (x *exec) extendPiston(p world.Pos, b world.Block) {
	head := b.Facing().Move(p)
	target, loaded := x.wc.BlockIfLoaded(head)
	if !loaded {
		return
	}
	switch {
	case target.IsAir():
		// Plain extension.
	case isHarvestable(target.ID):
		// Breaking a block drops its item. Harvesting kelp resets the age
		// of the stalk below so the farm keeps producing (as players do by
		// replanting).
		x.counters.BlockRemoves++
		x.spawnItem(head, harvestDrop(target.ID))
		if target.ID == world.Kelp {
			if below, _ := x.wc.BlockIfLoaded(head.Down()); below.ID == world.Kelp {
				x.setBlock(head.Down(), world.Block{ID: world.Kelp, Meta: 0})
			}
		}
	case target.IsSolid() && !immovable(target.ID):
		// Push one block if there is room behind it.
		dest := b.Facing().Move(head)
		db, ok := x.wc.BlockIfLoaded(dest)
		if !ok || !db.IsAir() {
			return
		}
		x.counters.BlockAdds++
		x.counters.BlockRemoves++
		x.setBlock(dest, target)
	default:
		return
	}
	x.counters.BlockAdds++
	x.setBlock(head, world.B(world.PistonHead).WithFacing(b.Facing()))
	x.setBlock(p, b.WithPistonExtended(true))
}

func (x *exec) retractPiston(p world.Pos, b world.Block) {
	x.counters.RedstoneOps++
	head := b.Facing().Move(p)
	if hb, _ := x.wc.BlockIfLoaded(head); hb.ID == world.PistonHead {
		x.counters.BlockRemoves++
		x.setBlock(head, world.B(world.Air))
	}
	x.setBlock(p, b.WithPistonExtended(false))
}

// isHarvestable lists blocks a piston push breaks into an item drop.
func isHarvestable(id world.BlockID) bool {
	switch id {
	case world.Kelp, world.Wheat, world.Stone, world.Cobblestone, world.Ice,
		world.Leaves, world.Sapling:
		return true
	default:
		return false
	}
}

// harvestDrop maps a broken block to the item it drops.
func harvestDrop(id world.BlockID) world.BlockID {
	if id == world.Stone {
		return world.Cobblestone
	}
	return id
}

// immovable lists blocks pistons cannot push.
func immovable(id world.BlockID) bool {
	switch id {
	case world.Bedrock, world.Obsidian, world.Piston, world.PistonHead,
		world.Observer, world.Hopper, world.Chest, world.Dropper, world.Spawner:
		return true
	default:
		return false
	}
}

// igniteTNT converts a TNT block into a primed TNT entity with the standard
// 80-tick fuse (4 seconds).
func (x *exec) igniteTNT(p world.Pos) {
	b, loaded := x.wc.BlockIfLoaded(p)
	if !loaded || b.ID != world.TNT {
		return
	}
	x.counters.BlockRemoves++
	x.setBlock(p, world.B(world.Air))
	x.spawnPrimedTNT(p, 80)
}
