package sim

import "repro/internal/mlg/world"

// Redstone-like logic simulation. Components evaluate on redstone ticks
// (every second game tick). Power propagates through wire with decay 15→0;
// torches invert the block beneath them; repeaters forward power along
// their facing after a configurable delay; observers emit one-tick pulses
// when the watched block changes; pistons push (and harvest) blocks.
//
// These are the "logic-gate constructs" of the Lag workload (§3.3.1) and
// the drive circuitry of the Farm constructs (Table 3).

// isReceivingPower reports whether any neighbour powers the position.
// Directional components (repeater, observer) only power along their facing.
func (e *Engine) isReceivingPower(p world.Pos) bool {
	return e.incomingPower(p) > 0
}

// incomingPower returns the strongest power level delivered to p.
func (e *Engine) incomingPower(p world.Pos) uint8 {
	var best uint8
	for _, d := range []world.Direction{world.DirUp, world.DirDown, world.DirNorth,
		world.DirSouth, world.DirEast, world.DirWest} {
		np := d.Move(p)
		nb, loaded := e.wc.BlockIfLoaded(np)
		if !loaded {
			continue
		}
		var pw uint8
		switch nb.ID {
		case world.Repeater:
			// Directional: powers only the block it faces.
			if nb.Facing().Move(np) == p {
				pw = nb.PowerOutput()
			}
		case world.Observer:
			// An observer watches its facing and outputs from its back.
			if nb.Facing().Opposite().Move(np) == p {
				pw = nb.PowerOutput()
			}
		case world.RedstoneTorch:
			// A torch does not power the block it is attached to (the block
			// directly beneath it) — otherwise every torch would switch its
			// own base and oscillate.
			if np != p.Up() {
				pw = nb.PowerOutput()
			}
		case world.RedstoneWire:
			w := nb.PowerOutput()
			if w > 0 {
				pw = w - 1
			}
		default:
			pw = nb.PowerOutput()
		}
		if pw > best {
			best = pw
		}
	}
	return best
}

// updateWire recomputes a wire's power from its strongest input and
// propagates the change to its neighbours via the world-change cascade.
func (e *Engine) updateWire(p world.Pos, b world.Block) {
	if e.cfg.RedstoneBatch {
		// Bump the per-tick evaluation count (checked in apply).
		if v := e.wireSeen[p]; v>>2 == e.tick {
			e.wireSeen[p] = v + 1
		} else {
			e.wireSeen[p] = e.tick << 2
		}
	}
	want := e.incomingPower(p)
	if want != b.Meta&0x0F {
		e.w.SetBlock(p, world.Block{ID: world.RedstoneWire, Meta: want & 0x0F})
	}
}

// updateTorch inverts the power state of the block the torch stands on:
// powered base → torch off, unpowered base → torch lit.
func (e *Engine) updateTorch(p world.Pos, b world.Block) {
	baseP := p.Down()
	basePowered := e.incomingPower(baseP) > 0
	lit := b.Meta&1 != 0
	if basePowered == lit {
		nb := b
		if basePowered {
			nb.Meta &^= 1
		} else {
			nb.Meta |= 1
		}
		e.w.SetBlock(p, nb)
	}
}

// updateRepeater samples the repeater's input (the side opposite its
// facing); a change schedules the output flip after the repeater's delay.
func (e *Engine) updateRepeater(p world.Pos, b world.Block) {
	inputPos := b.Facing().Opposite().Move(p)
	inPowered := e.powerAt(inputPos, p)
	if inPowered != b.RepeaterPowered() {
		// The output change is latched now and applied after the delay,
		// regardless of what the input does in between — otherwise two
		// repeaters firing in the same tick could eat a travelling pulse.
		var v uint8
		if inPowered {
			v = 1
		}
		e.scheduleVal(p, b.RepeaterDelay()*2, updateRepeaterFire, v) // delay in redstone ticks
	}
}

// fireRepeater applies the latched output flip.
func (e *Engine) fireRepeater(p world.Pos, val uint8) {
	b, loaded := e.wc.BlockIfLoaded(p)
	if !loaded || b.ID != world.Repeater {
		return
	}
	e.counters.RedstoneOps++
	want := val != 0
	if want != b.RepeaterPowered() {
		e.w.SetBlock(p, b.WithRepeaterPowered(want))
	}
}

// powerAt reports whether the block at p emits or conducts power toward the
// consumer at dst.
func (e *Engine) powerAt(p, dst world.Pos) bool {
	b, loaded := e.wc.BlockIfLoaded(p)
	if !loaded {
		return false
	}
	switch b.ID {
	case world.Repeater:
		return b.Facing().Move(p) == dst && b.PowerOutput() > 0
	case world.Observer:
		return b.Facing().Opposite().Move(p) == dst && b.PowerOutput() > 0
	default:
		return b.PowerOutput() > 0
	}
}

// pulseObserver starts an observer's one-redstone-tick output pulse; the
// pulse itself is a block change, so observers watching this observer fire
// in turn — the feedback loop lag machines exploit.
func (e *Engine) pulseObserver(p world.Pos, b world.Block) {
	if b.ObserverPulsing() {
		return
	}
	e.w.SetBlock(p, b.WithObserverPulse(true))
	e.schedule(p, 2, updateObserverClear)
}

// updatePiston extends a powered piston and schedules retraction of an
// unpowered one. Extension into a harvestable block breaks it and drops an
// item — the harvest mechanism of the Farm constructs.
func (e *Engine) updatePiston(p world.Pos, b world.Block) {
	powered := e.isReceivingPower(p)
	switch {
	case powered && !b.PistonExtended():
		e.extendPiston(p, b)
	case !powered && b.PistonExtended():
		e.schedule(p, 2, updatePistonRetract)
	}
}

func (e *Engine) extendPiston(p world.Pos, b world.Block) {
	head := b.Facing().Move(p)
	target, loaded := e.wc.BlockIfLoaded(head)
	if !loaded {
		return
	}
	switch {
	case target.IsAir():
		// Plain extension.
	case isHarvestable(target.ID):
		// Breaking a block drops its item. Harvesting kelp resets the age
		// of the stalk below so the farm keeps producing (as players do by
		// replanting).
		e.counters.BlockRemoves++
		e.ents.SpawnItem(head, harvestDrop(target.ID))
		if target.ID == world.Kelp {
			if below, _ := e.wc.BlockIfLoaded(head.Down()); below.ID == world.Kelp {
				e.w.SetBlock(head.Down(), world.Block{ID: world.Kelp, Meta: 0})
			}
		}
	case target.IsSolid() && !immovable(target.ID):
		// Push one block if there is room behind it.
		dest := b.Facing().Move(head)
		db, ok := e.wc.BlockIfLoaded(dest)
		if !ok || !db.IsAir() {
			return
		}
		e.counters.BlockAdds++
		e.counters.BlockRemoves++
		e.w.SetBlock(dest, target)
	default:
		return
	}
	e.counters.BlockAdds++
	e.w.SetBlock(head, world.B(world.PistonHead).WithFacing(b.Facing()))
	e.w.SetBlock(p, b.WithPistonExtended(true))
}

func (e *Engine) retractPiston(p world.Pos, b world.Block) {
	e.counters.RedstoneOps++
	head := b.Facing().Move(p)
	if hb, _ := e.wc.BlockIfLoaded(head); hb.ID == world.PistonHead {
		e.counters.BlockRemoves++
		e.w.SetBlock(head, world.B(world.Air))
	}
	e.w.SetBlock(p, b.WithPistonExtended(false))
}

// isHarvestable lists blocks a piston push breaks into an item drop.
func isHarvestable(id world.BlockID) bool {
	switch id {
	case world.Kelp, world.Wheat, world.Stone, world.Cobblestone, world.Ice,
		world.Leaves, world.Sapling:
		return true
	default:
		return false
	}
}

// harvestDrop maps a broken block to the item it drops.
func harvestDrop(id world.BlockID) world.BlockID {
	if id == world.Stone {
		return world.Cobblestone
	}
	return id
}

// immovable lists blocks pistons cannot push.
func immovable(id world.BlockID) bool {
	switch id {
	case world.Bedrock, world.Obsidian, world.Piston, world.PistonHead,
		world.Observer, world.Hopper, world.Chest, world.Dropper, world.Spawner:
		return true
	default:
		return false
	}
}

// igniteTNT converts a TNT block into a primed TNT entity with the standard
// 80-tick fuse (4 seconds).
func (e *Engine) igniteTNT(p world.Pos) {
	b, loaded := e.wc.BlockIfLoaded(p)
	if !loaded || b.ID != world.TNT {
		return
	}
	e.counters.BlockRemoves++
	e.w.SetBlock(p, world.B(world.Air))
	e.ents.SpawnPrimedTNT(p, 80)
}
