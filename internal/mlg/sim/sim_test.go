package sim

import (
	"testing"

	"repro/internal/mlg/world"
)

// mockEnts records entity operations the simulation requests.
type mockEnts struct {
	tnt   []world.Pos
	fuses []int
	items []world.Pos
	mobs  []world.Pos
	// collectable is the number of items CollectItems reports absorbed.
	collectable int
	collected   int
}

func (m *mockEnts) SpawnPrimedTNT(p world.Pos, fuse int) {
	m.tnt = append(m.tnt, p)
	m.fuses = append(m.fuses, fuse)
}
func (m *mockEnts) SpawnItem(p world.Pos, item world.BlockID) { m.items = append(m.items, p) }
func (m *mockEnts) SpawnMob(p world.Pos)                      { m.mobs = append(m.mobs, p) }
func (m *mockEnts) CollectItems(p world.Pos, r float64) int {
	n := m.collectable
	m.collectable = 0
	m.collected += n
	return n
}

func newTestEngine(t *testing.T) (*world.World, *Engine, *mockEnts) {
	t.Helper()
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	ents := &mockEnts{}
	e := New(w, ents, DefaultConfig(), 1)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 2)
	return w, e, ents
}

// run advances n game ticks and returns accumulated counters.
func run(e *Engine, n int) Counters {
	var acc Counters
	for i := 0; i < n; i++ {
		c := e.Tick()
		acc.BlockUpdates += c.BlockUpdates
		acc.RedstoneOps += c.RedstoneOps
		acc.FluidOps += c.FluidOps
		acc.GrowthOps += c.GrowthOps
		acc.BlockAdds += c.BlockAdds
		acc.BlockRemoves += c.BlockRemoves
		acc.Explosions += c.Explosions
		acc.ExplosionBlocks += c.ExplosionBlocks
		acc.RandomTicks += c.RandomTicks
	}
	return acc
}

func TestGravityMakesSandFall(t *testing.T) {
	w, e, _ := newTestEngine(t)
	// Sand floating in the air falls one block per update wave.
	w.SetBlock(world.Pos{X: 0, Y: 20, Z: 0}, world.B(world.Sand))
	run(e, 30)
	if got := w.Block(world.Pos{X: 0, Y: 20, Z: 0}); !got.IsAir() {
		t.Fatalf("sand did not leave start position: %v", got.ID)
	}
	if got := w.Block(world.Pos{X: 0, Y: 11, Z: 0}); got.ID != world.Sand {
		t.Fatalf("sand did not land on surface: %v at y=11", got.ID)
	}
}

func TestGravityChainReaction(t *testing.T) {
	w, e, _ := newTestEngine(t)
	// A column of sand supported by one stone block: removing the support
	// must collapse the whole column (the §2.3 bridge example).
	support := world.Pos{X: 3, Y: 12, Z: 3}
	w.SetBlock(support, world.B(world.Stone))
	for y := 13; y < 18; y++ {
		w.SetBlock(world.Pos{X: 3, Y: y, Z: 3}, world.B(world.Sand))
	}
	run(e, 4)
	w.SetBlock(support, world.B(world.Air)) // knock out the keystone
	run(e, 60)
	// The 5-block column (y=13..17) settles onto the surface: sand fills
	// y=11..15, and the top two original positions empty out.
	for y := 11; y <= 15; y++ {
		if got := w.Block(world.Pos{X: 3, Y: y, Z: 3}); got.ID != world.Sand {
			t.Fatalf("no sand at y=%d after collapse: %v", y, got.ID)
		}
	}
	for y := 16; y <= 17; y++ {
		if got := w.Block(world.Pos{X: 3, Y: y, Z: 3}); !got.IsAir() {
			t.Fatalf("sand at y=%d did not fall: %v", y, got.ID)
		}
	}
}

func TestFluidFlowsDownAndSpreads(t *testing.T) {
	w, e, _ := newTestEngine(t)
	src := world.Pos{X: 0, Y: 14, Z: 0}
	w.SetBlock(src, world.B(world.Water)) // source, level 0
	run(e, 60)
	// Water must have reached the ground below.
	if got := w.Block(world.Pos{X: 0, Y: 11, Z: 0}); got.ID != world.Water {
		t.Fatalf("water did not fall to surface: %v", got.ID)
	}
	// And spread horizontally on the ground.
	spread := 0
	for _, n := range (world.Pos{X: 0, Y: 11, Z: 0}).NeighborsHorizontal() {
		if w.Block(n).ID == world.Water {
			spread++
		}
	}
	if spread == 0 {
		t.Fatal("water did not spread on the ground")
	}
}

func TestFluidDriesUpWhenSourceRemoved(t *testing.T) {
	w, e, _ := newTestEngine(t)
	src := world.Pos{X: 0, Y: 11, Z: 0}
	w.SetBlock(src, world.B(world.Water))
	run(e, 40)
	w.SetBlock(src, world.B(world.Air))
	run(e, 80)
	// All flowing water near the source must dry up.
	wet := 0
	for dx := -8; dx <= 8; dx++ {
		for dz := -8; dz <= 8; dz++ {
			if w.Block(world.Pos{X: dx, Y: 11, Z: dz}).ID == world.Water {
				wet++
			}
		}
	}
	if wet != 0 {
		t.Fatalf("%d flowing water blocks survived source removal", wet)
	}
}

func TestWheatGrowsUnderRandomTicks(t *testing.T) {
	w, e, _ := newTestEngine(t)
	var crops []world.Pos
	for dx := 0; dx < 8; dx++ {
		for dz := 0; dz < 8; dz++ {
			p := world.Pos{X: dx, Y: 11, Z: dz}
			w.SetBlock(p, world.Block{ID: world.Wheat, Meta: 0})
			crops = append(crops, p)
		}
	}
	run(e, 3000)
	grown := 0
	for _, p := range crops {
		if b := w.Block(p); b.ID == world.Wheat && b.Meta > 0 {
			grown++
		}
	}
	if grown == 0 {
		t.Fatal("no wheat grew in 3000 ticks")
	}
}

func TestKelpGrowsUpwardInWater(t *testing.T) {
	// A 3×3 patch of kelp columns: random ticks are sparse (3 per chunk per
	// tick over 16×16×64 blocks), so a single stalk may be missed; nine
	// stalks over 5000 ticks make at least one growth a statistical
	// certainty.
	w, e, _ := newTestEngine(t)
	var bases []world.Pos
	for dx := 0; dx < 3; dx++ {
		for dz := 0; dz < 3; dz++ {
			base := world.Pos{X: 2 + dx, Y: 11, Z: 2 + dz}
			w.SetBlock(base, world.Block{ID: world.Kelp, Meta: 0})
			for y := 12; y < 20; y++ {
				w.SetBlock(world.Pos{X: base.X, Y: y, Z: base.Z}, world.B(world.Water))
			}
			bases = append(bases, base)
		}
	}
	run(e, 5000)
	grown := 0
	for _, base := range bases {
		if w.Block(base.Up()).ID == world.Kelp {
			grown++
		}
	}
	if grown == 0 {
		t.Fatal("no kelp stalk grew upward in 5000 ticks")
	}
}

func TestWirePropagatesPowerWithDecay(t *testing.T) {
	w, e, _ := newTestEngine(t)
	y := 11
	// Redstone block at x=0, wire from x=1..10.
	w.SetBlock(world.Pos{X: 0, Y: y, Z: 0}, world.B(world.RedstoneBlock))
	for x := 1; x <= 10; x++ {
		w.SetBlock(world.Pos{X: x, Y: y, Z: 0}, world.B(world.RedstoneWire))
	}
	run(e, 40)
	for x := 1; x <= 10; x++ {
		got := w.Block(world.Pos{X: x, Y: y, Z: 0})
		want := uint8(15 - x + 1) // wire adjacent to the block gets 15, then decay
		if got.Meta != want {
			t.Fatalf("wire at x=%d has power %d, want %d", x, got.Meta, want)
		}
	}
	// Cutting the source must depower the whole line.
	w.SetBlock(world.Pos{X: 0, Y: y, Z: 0}, world.B(world.Air))
	run(e, 80)
	for x := 1; x <= 10; x++ {
		if got := w.Block(world.Pos{X: x, Y: y, Z: 0}); got.Meta != 0 {
			t.Fatalf("wire at x=%d still powered (%d) after source removal", x, got.Meta)
		}
	}
}

func TestTorchInvertsBaseBlock(t *testing.T) {
	w, e, _ := newTestEngine(t)
	y := 11
	base := world.Pos{X: 5, Y: y, Z: 5}
	torch := base.Up()
	w.SetBlock(base, world.B(world.Stone))
	w.SetBlock(torch, world.Block{ID: world.RedstoneTorch, Meta: 1}) // lit
	run(e, 10)
	if got := w.Block(torch); got.Meta&1 == 0 {
		t.Fatal("torch on unpowered base turned off")
	}
	// Power the base: torch must turn off.
	w.SetBlock(base.North(), world.B(world.RedstoneBlock))
	run(e, 10)
	if got := w.Block(torch); got.Meta&1 != 0 {
		t.Fatal("torch on powered base stayed lit")
	}
	// Unpower: torch relights.
	w.SetBlock(base.North(), world.B(world.Air))
	run(e, 10)
	if got := w.Block(torch); got.Meta&1 == 0 {
		t.Fatal("torch did not relight")
	}
}

func TestRepeaterDelaysSignal(t *testing.T) {
	w, e, _ := newTestEngine(t)
	y := 11
	rep := world.Pos{X: 5, Y: y, Z: 0}
	w.SetBlock(rep, world.B(world.Repeater).WithFacing(world.DirEast)) // input west, output east
	w.SetBlock(rep.East(), world.B(world.RedstoneWire))
	run(e, 4)
	// Power the input side.
	w.SetBlock(rep.West(), world.B(world.RedstoneBlock))
	// Repeater delay 1 = 2 redstone ticks = 4 game ticks before output.
	run(e, 2)
	if got := w.Block(rep); got.RepeaterPowered() {
		t.Fatal("repeater fired before its delay")
	}
	run(e, 12)
	if got := w.Block(rep); !got.RepeaterPowered() {
		t.Fatal("repeater never fired")
	}
	if got := w.Block(rep.East()); got.Meta == 0 {
		t.Fatal("repeater output did not power wire")
	}
}

func TestObserverPulsesOnWatchedChange(t *testing.T) {
	w, e, _ := newTestEngine(t)
	y := 11
	obs := world.Pos{X: 5, Y: y, Z: 5}
	watched := obs.East()
	// Observer faces east (watches east), output west.
	w.SetBlock(obs, world.B(world.Observer).WithFacing(world.DirEast))
	w.SetBlock(obs.West(), world.B(world.RedstoneWire))
	run(e, 4)
	w.SetBlock(watched, world.B(world.Stone)) // trigger
	run(e, 4)
	// The wire behind must have seen power at some point; after the pulse
	// clears it returns to 0. Check the pulse happened via counters instead:
	// easiest observable is that wire power returned to 0 but the observer is
	// no longer pulsing and at least one redstone op ran.
	if got := w.Block(obs); got.ObserverPulsing() {
		run(e, 8)
		if got := w.Block(obs); got.ObserverPulsing() {
			t.Fatal("observer pulse never cleared")
		}
	}
}

func TestObserverChainFeedsBack(t *testing.T) {
	w, e, _ := newTestEngine(t)
	y := 11
	// Two observers facing each other: each pulse triggers the other — the
	// rapid-pulser core of a lag machine. Verify sustained redstone activity.
	a := world.Pos{X: 5, Y: y, Z: 5}
	b := a.East()
	w.SetBlock(a, world.B(world.Observer).WithFacing(world.DirEast))
	w.SetBlock(b, world.B(world.Observer).WithFacing(world.DirWest))
	run(e, 4)
	// Kick the pair by changing a watched block once: replace observer b
	// briefly... instead trigger by touching block east of b? a watches b,
	// b watches a. Change a's meta via a direct pulse:
	w.SetBlock(a, w.Block(a).WithObserverPulse(true))
	c := run(e, 100)
	if c.RedstoneOps < 40 {
		t.Fatalf("observer pair did not self-sustain: %d redstone ops in 100 ticks", c.RedstoneOps)
	}
}

func TestPistonHarvestsKelp(t *testing.T) {
	w, e, ents := newTestEngine(t)
	y := 12
	piston := world.Pos{X: 5, Y: y, Z: 5}
	kelp := piston.East()
	w.SetBlock(piston, world.B(world.Piston).WithFacing(world.DirEast))
	w.SetBlock(kelp, world.Block{ID: world.Kelp, Meta: 3})
	run(e, 4)
	// Power the piston.
	w.SetBlock(piston.West(), world.B(world.RedstoneBlock))
	run(e, 10)
	if len(ents.items) == 0 {
		t.Fatal("piston harvest dropped no item")
	}
	if got := w.Block(kelp); got.ID != world.PistonHead {
		t.Fatalf("piston head missing after harvest: %v", got.ID)
	}
	// Unpower: piston retracts.
	w.SetBlock(piston.West(), world.B(world.Air))
	run(e, 20)
	if got := w.Block(kelp); !got.IsAir() {
		t.Fatalf("piston head not retracted: %v", got.ID)
	}
	if got := w.Block(piston); got.PistonExtended() {
		t.Fatal("piston still extended after retraction")
	}
}

func TestPistonPushesBlock(t *testing.T) {
	w, e, _ := newTestEngine(t)
	y := 12
	piston := world.Pos{X: 5, Y: y, Z: 5}
	block := piston.East()
	w.SetBlock(piston, world.B(world.Piston).WithFacing(world.DirEast))
	w.SetBlock(block, world.B(world.Dirt))
	run(e, 4)
	w.SetBlock(piston.West(), world.B(world.RedstoneBlock))
	run(e, 10)
	if got := w.Block(block.East()); got.ID != world.Dirt {
		t.Fatalf("block not pushed: %v", got.ID)
	}
	if got := w.Block(block); got.ID != world.PistonHead {
		t.Fatalf("head not in pushed slot: %v", got.ID)
	}
}

func TestTNTIgnitionByPower(t *testing.T) {
	w, e, ents := newTestEngine(t)
	y := 11
	tnt := world.Pos{X: 5, Y: y, Z: 5}
	w.SetBlock(tnt, world.B(world.TNT))
	run(e, 4)
	if len(ents.tnt) != 0 {
		t.Fatal("TNT ignited without power")
	}
	w.SetBlock(tnt.East(), world.B(world.RedstoneBlock))
	run(e, 4)
	if len(ents.tnt) != 1 {
		t.Fatalf("TNT spawns = %d, want 1", len(ents.tnt))
	}
	if ents.fuses[0] != 80 {
		t.Fatalf("fuse = %d, want 80", ents.fuses[0])
	}
	if !w.Block(tnt).IsAir() {
		t.Fatal("TNT block not removed on ignition")
	}
}

func TestScheduledIgnite(t *testing.T) {
	w, e, ents := newTestEngine(t)
	tnt := world.Pos{X: 2, Y: 11, Z: 2}
	w.SetBlock(tnt, world.B(world.TNT))
	e.ScheduleIgnite(tnt, 10)
	run(e, 8)
	if len(ents.tnt) != 0 {
		t.Fatal("ignited early")
	}
	run(e, 5)
	if len(ents.tnt) != 1 {
		t.Fatalf("scheduled ignition did not fire: %d", len(ents.tnt))
	}
}

func TestExplosionDestroysSphereAndChains(t *testing.T) {
	w, e, ents := newTestEngine(t)
	center := world.Pos{X: 0, Y: 14, Z: 0}
	// Surround with dirt and a couple of TNT blocks.
	for dx := -3; dx <= 3; dx++ {
		for dy := -2; dy <= 2; dy++ {
			for dz := -3; dz <= 3; dz++ {
				w.SetBlock(center.Add(dx, dy, dz), world.B(world.Dirt))
			}
		}
	}
	w.SetBlock(center.Add(2, 0, 0), world.B(world.TNT))
	w.SetBlock(center.Add(-2, 0, 0), world.B(world.TNT))
	bedrock := world.Pos{X: 0, Y: 0, Z: 0}

	destroyed, _ := e.Explode(center, ExplosionRadius)
	if destroyed == 0 {
		t.Fatal("explosion destroyed nothing")
	}
	if len(ents.tnt) != 2 {
		t.Fatalf("chained TNT = %d, want 2", len(ents.tnt))
	}
	for _, f := range ents.fuses {
		if f < 2 || f > 89 {
			t.Fatalf("chain fuse %d outside 2..89", f)
		}
	}
	if !w.Block(center).IsAir() {
		t.Fatal("center not destroyed")
	}
	if w.Block(bedrock).ID != world.Bedrock {
		t.Fatal("bedrock destroyed")
	}
	if len(ents.items) == 0 {
		t.Fatal("no item drops from explosion")
	}
}

func TestMergedExplosionsCheaperThanSeparate(t *testing.T) {
	build := func(merge bool) (Counters, int) {
		w := world.New(&world.FlatGenerator{SurfaceY: 30, Surface: world.Dirt})
		ents := &mockEnts{}
		cfg := DefaultConfig()
		cfg.ExplosionMerge = merge
		e := New(w, ents, cfg, 1)
		w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 1)
		centers := []world.Pos{
			{X: 0, Y: 20, Z: 0}, {X: 1, Y: 20, Z: 0}, {X: 0, Y: 20, Z: 1}, {X: 1, Y: 20, Z: 1},
		}
		n, _ := e.MergedExplosions(centers, ExplosionRadius)
		return e.counters, n
	}
	merged, nm := build(true)
	separate, ns := build(false)
	if merged.ExplosionScan >= separate.ExplosionScan {
		t.Fatalf("merge did not reduce scanned blocks: %d vs %d",
			merged.ExplosionScan, separate.ExplosionScan)
	}
	if nm == 0 || ns == 0 {
		t.Fatal("explosions destroyed nothing")
	}
}

func TestSpawnerSpawnsMobsPeriodically(t *testing.T) {
	w, e, ents := newTestEngine(t)
	w.SetBlock(world.Pos{X: 5, Y: 11, Z: 5}, world.B(world.Spawner))
	run(e, 200)
	if len(ents.mobs) < 2 {
		t.Fatalf("spawner produced %d mobs in 200 ticks, want >= 2", len(ents.mobs))
	}
}

func TestHopperCollectsItems(t *testing.T) {
	w, e, ents := newTestEngine(t)
	w.SetBlock(world.Pos{X: 5, Y: 11, Z: 5}, world.B(world.Hopper))
	ents.collectable = 3
	run(e, 4)
	if ents.collected != 3 {
		t.Fatalf("hopper collected %d, want 3", ents.collected)
	}
	if e.ItemsCollected != 3 {
		t.Fatalf("engine recorded %d collections", e.ItemsCollected)
	}
}

func TestUpdateBudgetDefersBacklog(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	ents := &mockEnts{}
	cfg := DefaultConfig()
	cfg.MaxUpdatesPerTick = 10
	e := New(w, ents, cfg, 1)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 1)
	// Create far more pending updates than the budget.
	for x := 0; x < 30; x++ {
		w.SetBlock(world.Pos{X: x, Y: 20, Z: 0}, world.B(world.Sand))
	}
	c := e.Tick()
	if c.Backlog == 0 {
		t.Fatal("expected deferred backlog under tiny budget")
	}
	if c.BlockUpdates > 10 {
		t.Fatalf("budget exceeded: %d updates", c.BlockUpdates)
	}
	// Backlog must eventually drain.
	for i := 0; i < 2000 && e.PendingUpdates() > 0; i++ {
		e.Tick()
	}
	if e.PendingUpdates() != 0 {
		t.Fatalf("backlog never drained: %d", e.PendingUpdates())
	}
}

func TestRedstoneOnlyOnEvenTicks(t *testing.T) {
	w, e, _ := newTestEngine(t)
	y := 11
	w.SetBlock(world.Pos{X: 0, Y: y, Z: 0}, world.B(world.RedstoneBlock))
	for x := 1; x <= 30; x++ {
		w.SetBlock(world.Pos{X: x, Y: y, Z: 0}, world.B(world.RedstoneWire))
	}
	// Observe per-tick redstone ops over a span: odd ticks must be 0.
	for i := 0; i < 40; i++ {
		c := e.Tick()
		if e.TickNumber()%2 == 1 && c.RedstoneOps > 0 {
			t.Fatalf("redstone ops on odd tick %d", e.TickNumber())
		}
	}
}

func TestRedstoneBatchReducesWork(t *testing.T) {
	// A dense wire mesh driven by one source: batching must reduce rule
	// applications versus vanilla.
	build := func(batch bool) int {
		w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Stone})
		ents := &mockEnts{}
		cfg := DefaultConfig()
		cfg.RedstoneBatch = batch
		cfg.RandomTickRate = 0
		e := New(w, ents, cfg, 1)
		w.EnsureArea(world.Pos{X: 8, Y: 0, Z: 8}, 1)
		y := 11
		for x := 0; x < 12; x++ {
			for z := 0; z < 12; z++ {
				w.SetBlock(world.Pos{X: x, Y: y, Z: z}, world.B(world.RedstoneWire))
			}
		}
		w.SetBlock(world.Pos{X: 0, Y: y + 1, Z: 0}, world.B(world.RedstoneBlock))
		total := 0
		for i := 0; i < 60; i++ {
			total += e.Tick().RedstoneOps
		}
		return total
	}
	batched, vanilla := build(true), build(false)
	if batched >= vanilla {
		t.Fatalf("redstone batch did not reduce ops: %d vs %d", batched, vanilla)
	}
}
