package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testSnap(tick int64) *Snapshot {
	return &Snapshot{
		Kind: KindFull,
		Tick: tick,
		Sections: []Section{
			{ID: SectionWorld, Payload: []byte("world-payload")},
			{ID: SectionSim, Payload: []byte{}},
			{ID: SectionServer, Payload: bytes.Repeat([]byte{0xAB}, 300)},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSnap(42)
	s.Kind = KindIncremental
	s.BaseTick = 40
	data := Encode(s)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Kind != s.Kind || got.Tick != s.Tick || got.BaseTick != s.BaseTick {
		t.Fatalf("header mismatch: %+v vs %+v", got, s)
	}
	if len(got.Sections) != len(s.Sections) {
		t.Fatalf("section count %d vs %d", len(got.Sections), len(s.Sections))
	}
	for i := range s.Sections {
		if got.Sections[i].ID != s.Sections[i].ID || !bytes.Equal(got.Sections[i].Payload, s.Sections[i].Payload) {
			t.Fatalf("section %d mismatch", i)
		}
	}
	if !bytes.Equal(Encode(got), data) {
		t.Fatal("re-encode not canonical")
	}
}

// Unknown section IDs must decode and be skippable — a newer writer's file
// still restores on an older reader that ignores sections it cannot use.
func TestDecodeSkipsUnknownSections(t *testing.T) {
	s := testSnap(7)
	s.Sections = append(s.Sections, Section{ID: 9999, Payload: []byte("from the future")})
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatalf("decode with unknown section: %v", err)
	}
	if got.Section(SectionWorld) == nil {
		t.Fatal("known section lost")
	}
	if !bytes.Equal(got.Section(9999), []byte("from the future")) {
		t.Fatal("unknown section not carried")
	}
}

// Every kind of damage must yield a typed error wrapping ErrCorrupt.
func TestDecodeRejectsDamage(t *testing.T) {
	data := Encode(testSnap(1))
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadMagic},
		{"future version", func(b []byte) []byte { b[7] = 99; return b }, ErrVersion},
		{"truncated header", func(b []byte) []byte { return b[:10] }, ErrTruncated},
		{"truncated body", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"flip header byte", func(b []byte) []byte { b[13] ^= 0x01; return b }, ErrChecksum},
		{"flip section byte", func(b []byte) []byte { b[len(b)-12] ^= 0x40; return b }, ErrChecksum},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xEE) }, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mutate(append([]byte(nil), data...))
			_, err := Decode(buf)
			if err == nil {
				t.Fatal("damage not detected")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%v does not wrap ErrCorrupt", err)
			}
		})
	}
	// Version errors: flipping the version bytes alone must not pass the
	// header checksum either way, so rewrite version AND fix nothing — the
	// dedicated case above sets b[7]=99, which fails... the checksum first.
	// Assert the precise precedence: version check runs before checksum.
	b := append([]byte(nil), data...)
	b[7] = 99
	if _, err := Decode(b); !errors.Is(err, ErrVersion) {
		t.Fatalf("version precedence: got %v", err)
	}
}

func TestStoreWriteLoadLatest(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for tick := int64(10); tick <= 30; tick += 10 {
		if _, err := st.Write(testSnap(tick)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tick != 30 || res.Delta != nil || len(res.Skipped) != 0 {
		t.Fatalf("unexpected resolution: %+v", res)
	}
}

func TestStoreResolvesIncrementalAgainstBase(t *testing.T) {
	st, _ := NewStore(t.TempDir())
	if _, err := st.Write(testSnap(10)); err != nil {
		t.Fatal(err)
	}
	incr := testSnap(14)
	incr.Kind = KindIncremental
	incr.BaseTick = 10
	if _, err := st.Write(incr); err != nil {
		t.Fatal(err)
	}
	res, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tick != 14 || res.Delta == nil || res.Full.Tick != 10 {
		t.Fatalf("unexpected resolution: %+v", res)
	}
}

// Corrupting the newest file must degrade to the previous good snapshot —
// and report the rejected file in Skipped.
func TestStoreFallbackOnCorruption(t *testing.T) {
	for _, mode := range []int{CorruptTruncate, CorruptBitFlip} {
		st, _ := NewStore(t.TempDir())
		st.Write(testSnap(10))
		st.Write(testSnap(20))
		if err := CorruptFile(st.LatestPath(), mode); err != nil {
			t.Fatal(err)
		}
		res, err := st.LoadLatest()
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if res.Tick != 10 || len(res.Skipped) != 1 {
			t.Fatalf("mode %d: expected fallback to 10, got %+v", mode, res)
		}
	}
}

// An incremental whose base full is corrupt is unusable; resolution must
// fall past both to an older full rather than silently rebase.
func TestStoreSkipsOrphanedIncremental(t *testing.T) {
	st, _ := NewStore(t.TempDir())
	st.Write(testSnap(10))
	st.Write(testSnap(20))
	incr := testSnap(24)
	incr.Kind = KindIncremental
	incr.BaseTick = 20
	st.Write(incr)
	if err := CorruptFile(filepath.Join(st.Dir(), "snap-0000000000000020-full.mlgp"), CorruptBitFlip); err != nil {
		t.Fatal(err)
	}
	res, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tick != 10 {
		t.Fatalf("expected fallback to 10, got %+v", res)
	}
}

func TestStoreAllCorruptFailsCleanly(t *testing.T) {
	st, _ := NewStore(t.TempDir())
	st.Write(testSnap(10))
	if err := CorruptFile(st.LatestPath(), CorruptTruncate); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadLatest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("want ErrNoSnapshot, got %v", err)
	}
}

// The Fault hook simulates a crash mid-write: whatever bytes it leaves (or
// none) must never tear an existing good snapshot.
func TestStoreTornWriteAtomicity(t *testing.T) {
	faults := []func(name string, data []byte) []byte{
		func(string, []byte) []byte { return nil },                        // crash before temp write
		func(_ string, d []byte) []byte { return d[:len(d)/3] },           // torn write
		func(_ string, d []byte) []byte { d[len(d)/2] ^= 0x08; return d }, // bit rot in flight
	}
	for i, fault := range faults {
		st, _ := NewStore(t.TempDir())
		if _, err := st.Write(testSnap(10)); err != nil {
			t.Fatal(err)
		}
		st.Fault = fault
		st.Write(testSnap(20))
		st.Fault = nil
		res, err := st.LoadLatest()
		if err != nil {
			t.Fatalf("fault %d: %v", i, err)
		}
		if res.Tick != 10 {
			t.Fatalf("fault %d: expected to land on 10, got tick %d", i, res.Tick)
		}
	}
}

func TestStoreRetention(t *testing.T) {
	st, _ := NewStore(t.TempDir())
	st.KeepFulls = 2
	for tick := int64(10); tick <= 50; tick += 10 {
		st.Write(testSnap(tick))
		incr := testSnap(tick + 4)
		incr.Kind = KindIncremental
		incr.BaseTick = tick
		st.Write(incr)
	}
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	// Last two fulls (40, 50) survive, plus incrementals at/after 40.
	want := map[string]bool{
		"snap-0000000000000040-full.mlgp": true,
		"snap-0000000000000044-incr.mlgp": true,
		"snap-0000000000000050-full.mlgp": true,
		"snap-0000000000000054-incr.mlgp": true,
	}
	if len(names) != len(want) {
		t.Fatalf("retention kept %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected survivor %s in %v", n, names)
		}
	}
}
