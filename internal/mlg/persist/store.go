package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store manages a directory of snapshot files:
//
//	snap-0000000000000120-full.mlgp
//	snap-0000000000000140-incr.mlgp
//
// The zero-padded tick keeps lexical order equal to numeric order. Writes
// go to a temp file in the same directory, are fsynced, then renamed over
// the final name, and the directory is fsynced — a crash at any point
// leaves either the old file set or the new one, never a torn latest.
type Store struct {
	dir string

	// KeepFulls bounds retention: after a successful full write, older
	// fulls beyond the newest KeepFulls (and incrementals older than the
	// oldest retained full) are pruned. <= 0 means keep everything.
	KeepFulls int

	// Fault, when set, transforms the encoded bytes just before they hit
	// the disk — the injection point for torn-write and bit-flip tests.
	// Returning nil simulates a crash before any byte was written.
	Fault func(name string, data []byte) []byte
}

// NewStore opens (creating if needed) a snapshot directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, KeepFulls: 2}, nil
}

// Dir returns the managed directory.
func (st *Store) Dir() string { return st.dir }

func snapName(tick int64, kind Kind) string {
	suffix := "full"
	if kind == KindIncremental {
		suffix = "incr"
	}
	return fmt.Sprintf("snap-%016d-%s.mlgp", tick, suffix)
}

// parseSnapName inverts snapName; ok is false for foreign files.
func parseSnapName(name string) (tick int64, kind Kind, ok bool) {
	rest, found := strings.CutPrefix(name, "snap-")
	if !found || len(rest) < 16 {
		return 0, 0, false
	}
	for i := 0; i < 16; i++ {
		c := rest[i]
		if c < '0' || c > '9' {
			return 0, 0, false
		}
		tick = tick*10 + int64(c-'0')
	}
	switch rest[16:] {
	case "-full.mlgp":
		return tick, KindFull, true
	case "-incr.mlgp":
		return tick, KindIncremental, true
	}
	return 0, 0, false
}

// Write encodes and atomically persists the snapshot, then applies
// retention. The returned path names the final file.
func (st *Store) Write(s *Snapshot) (string, error) {
	name := snapName(s.Tick, s.Kind)
	data := Encode(s)
	if st.Fault != nil {
		data = st.Fault(name, data)
	}
	path := filepath.Join(st.dir, name)
	if data == nil {
		// Injected crash before the temp file existed: the directory is
		// untouched, which is exactly the atomicity guarantee.
		return path, nil
	}
	if err := writeFileAtomic(st.dir, name, data); err != nil {
		return "", err
	}
	if s.Kind == KindFull {
		st.prune()
	}
	return path, nil
}

// writeFileAtomic lands data at dir/name via temp + fsync + rename +
// directory fsync.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, filepath.Join(dir, name))
	}
	if werr != nil {
		os.Remove(tmpName)
		return werr
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

type snapFile struct {
	name string
	tick int64
	kind Kind
}

// list returns recognised snapshot files sorted oldest-first.
func (st *Store) list() ([]snapFile, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var out []snapFile
	for _, e := range entries {
		if e.IsDir() || strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		if tick, kind, ok := parseSnapName(e.Name()); ok {
			out = append(out, snapFile{name: e.Name(), tick: tick, kind: kind})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].tick != out[j].tick {
			return out[i].tick < out[j].tick
		}
		return out[i].kind < out[j].kind // full sorts before incr at equal tick
	})
	return out, nil
}

// prune enforces KeepFulls: the newest KeepFulls fulls survive, plus every
// incremental at or after the oldest surviving full (older incrementals
// have lost their base and could never be restored anyway).
func (st *Store) prune() {
	if st.KeepFulls <= 0 {
		return
	}
	files, err := st.list()
	if err != nil {
		return
	}
	var fullTicks []int64
	for _, f := range files {
		if f.kind == KindFull {
			fullTicks = append(fullTicks, f.tick)
		}
	}
	if len(fullTicks) <= st.KeepFulls {
		return
	}
	oldestKept := fullTicks[len(fullTicks)-st.KeepFulls]
	for _, f := range files {
		if f.tick < oldestKept {
			os.Remove(filepath.Join(st.dir, f.name))
		}
	}
}

// Resolved is a restorable snapshot: the full base plus, when the latest
// good file was an incremental, the delta layered on it.
type Resolved struct {
	Tick  int64     // tick the restored state will be at
	Full  *Snapshot // always set
	Delta *Snapshot // nil when Full was the latest good file
	Path  string    // file the state was resolved from (the delta if any)

	// Skipped lists files that were present but rejected (corrupt,
	// truncated, or an incremental whose base full is unusable), newest
	// first — the caller's signal that it degraded to an older snapshot.
	Skipped []string
}

// ErrNoSnapshot reports an empty (or entirely unusable) store.
var ErrNoSnapshot = errors.New("persist: no usable snapshot")

// LoadLatest walks the store newest-first and returns the newest restorable
// state, skipping anything that fails Decode. An incremental resolves
// against its exact base full (BaseTick); if that base is missing or
// corrupt the incremental is skipped too — never silently rebased.
func (st *Store) LoadLatest() (*Resolved, error) {
	files, err := st.list()
	if err != nil {
		return nil, err
	}
	res := &Resolved{}
	decode := func(f snapFile) *Snapshot {
		data, err := os.ReadFile(filepath.Join(st.dir, f.name))
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				res.Skipped = append(res.Skipped, f.name)
			}
			return nil
		}
		s, err := Decode(data)
		if err != nil || s.Kind != f.kind || s.Tick != f.tick {
			res.Skipped = append(res.Skipped, f.name)
			return nil
		}
		return s
	}
	fullAt := func(tick int64) *snapFile {
		for i := range files {
			if files[i].kind == KindFull && files[i].tick == tick {
				return &files[i]
			}
		}
		return nil
	}
	for i := len(files) - 1; i >= 0; i-- {
		f := files[i]
		s := decode(f)
		if s == nil {
			continue
		}
		if f.kind == KindFull {
			res.Tick, res.Full, res.Path = f.tick, s, filepath.Join(st.dir, f.name)
			return res, nil
		}
		base := fullAt(s.BaseTick)
		if base == nil {
			res.Skipped = append(res.Skipped, f.name)
			continue
		}
		bs := decode(*base)
		if bs == nil {
			res.Skipped = append(res.Skipped, f.name)
			continue
		}
		res.Tick, res.Full, res.Delta, res.Path = f.tick, bs, s, filepath.Join(st.dir, f.name)
		return res, nil
	}
	return nil, fmt.Errorf("%w in %s (%d file(s) rejected)", ErrNoSnapshot, st.dir, len(res.Skipped))
}

// LatestPath returns the newest snapshot file name without decoding it, or
// "" when the store is empty. Fault-injection tests corrupt this file.
func (st *Store) LatestPath() string {
	files, err := st.list()
	if err != nil || len(files) == 0 {
		return ""
	}
	return filepath.Join(st.dir, files[len(files)-1].name)
}

// Corruption modes for CorruptFile.
const (
	CorruptTruncate = iota // drop the second half of the file
	CorruptBitFlip         // flip one bit mid-file
)

// CorruptFile damages an existing snapshot file in place — the test-side
// counterpart of the Fault hook, for crashes injected after a write
// completed.
func CorruptFile(path string, mode int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	switch mode {
	case CorruptTruncate:
		data = data[:len(data)/2]
	case CorruptBitFlip:
		if len(data) == 0 {
			return fmt.Errorf("persist: cannot bit-flip empty file %s", path)
		}
		data[len(data)/2] ^= 0x10
	default:
		return fmt.Errorf("persist: unknown corruption mode %d", mode)
	}
	return os.WriteFile(path, data, 0o644)
}
