package persist

import (
	"encoding/binary"
	"math"
)

// Byte-level codec helpers shared by every section codec (world, sim,
// entity, server). All integers are fixed-width big-endian; floats are
// IEEE-754 bit patterns, so NaN payloads and signed zeros round-trip
// exactly; byte strings are u32-length-prefixed.

// AppendU8 appends one byte.
func AppendU8(dst []byte, v byte) []byte { return append(dst, v) }

// AppendU32 appends a big-endian uint32.
func AppendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }

// AppendU64 appends a big-endian uint64.
func AppendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

// AppendI64 appends a big-endian int64 (two's complement).
func AppendI64(dst []byte, v int64) []byte { return binary.BigEndian.AppendUint64(dst, uint64(v)) }

// AppendI32 appends a big-endian int32 (two's complement).
func AppendI32(dst []byte, v int32) []byte { return binary.BigEndian.AppendUint32(dst, uint32(v)) }

// AppendF64 appends a float64's IEEE-754 bit pattern.
func AppendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendBytes appends a u32 length prefix followed by the bytes.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = AppendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// AppendString appends a u32-length-prefixed UTF-8 string.
func AppendString(dst []byte, s string) []byte {
	dst = AppendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// Dec is a decoding cursor over a byte slice with a sticky error: reads
// past the end (or after Fail) return zero values and set ErrTruncated, so
// a section decoder can read a whole record unconditionally and check Err
// once. Byte-slice reads alias the input; callers that retain them must
// copy.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a cursor over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// take returns the next n bytes, or nil after setting the sticky error.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.err = ErrTruncated
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

// U8 reads one byte.
func (d *Dec) U8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a big-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// I32 reads a big-endian int32.
func (d *Dec) I32() int32 { return int32(d.U32()) }

// F64 reads a float64 bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes reads a u32-length-prefixed byte slice (aliasing the input).
func (d *Dec) Bytes() []byte {
	n := d.U32()
	return d.take(int(n))
}

// String reads a u32-length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }

// Count reads a u32 element count and validates it against the bytes
// remaining, given a minimum encoded size per element — a corrupted count
// must not drive a pre-allocation or loop far past the actual payload.
func (d *Dec) Count(minElemSize int) int {
	n := int(d.U32())
	if d.err == nil && minElemSize > 0 && n > d.Remaining()/minElemSize {
		d.err = ErrTruncated
		return 0
	}
	return n
}

// Raw reads exactly n unprefixed bytes (aliasing the input) — for records
// whose size is fixed by an external codec, like entity wire snapshots.
func (d *Dec) Raw(n int) []byte { return d.take(n) }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// Fail records a custom decode error (first error wins).
func (d *Dec) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Err returns the sticky error, if any.
func (d *Dec) Err() error { return d.err }
