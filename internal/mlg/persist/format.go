// Package persist implements the MLGP world-save format: a versioned,
// checksummed container of length-prefixed sections, written atomically so a
// crash at any byte never leaves a torn "latest" snapshot. The package is
// deliberately below world/sim/entity/server in the import graph — it knows
// framing and files, not game state; each subsystem contributes its section
// payload through its own persist codec and the server composes them.
package persist

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// Format constants. Version bumps when the header or section semantics
// change incompatibly; adding new section IDs does not bump it, because
// readers skip sections they do not recognise via the length prefix.
const (
	Magic = 0x4D4C4750 // "MLGP"
	// Version 2: the entity section carries each entity's spawn seed key
	// (shard-independent RNG identity) after its wander cooldown.
	FormatVersion = 2
)

// Kind distinguishes full snapshots from incrementals layered on a base.
type Kind uint8

const (
	// KindFull is a self-contained snapshot.
	KindFull Kind = 1
	// KindIncremental holds only chunks changed since the base full
	// snapshot (BaseTick); sim/entity/server sections are always complete.
	KindIncremental Kind = 2
)

// Well-known section IDs. Unknown IDs decode fine and are skipped by
// consumers, so future writers can add sections without breaking old
// readers.
const (
	SectionWorld      uint32 = 1 // full chunk set + world counters
	SectionWorldDelta uint32 = 2 // changed chunks relative to the base full
	SectionSim        uint32 = 3 // engine tick, RNG, schedule, queues
	SectionEntities   uint32 = 4 // entity store state
	SectionServer     uint32 = 5 // players, inbox, net totals
)

// Typed decode errors. Everything Decode can reject wraps ErrCorrupt, so a
// caller deciding "fall back to an older file?" matches one sentinel;
// the finer-grained ones describe what was wrong.
var (
	ErrCorrupt   = errors.New("persist: corrupt snapshot")
	ErrBadMagic  = fmt.Errorf("%w: bad magic", ErrCorrupt)
	ErrVersion   = fmt.Errorf("%w: unsupported format version", ErrCorrupt)
	ErrChecksum  = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	ErrTruncated = fmt.Errorf("%w: truncated", ErrCorrupt)
)

// Section is one length-prefixed, checksummed payload inside a snapshot.
type Section struct {
	ID      uint32
	Payload []byte
}

// Snapshot is the decoded form of one MLGP file.
type Snapshot struct {
	Kind     Kind
	Tick     int64 // simulation tick the state was captured at
	BaseTick int64 // for incrementals: tick of the base full snapshot
	Sections []Section
}

// Section returns the payload of the first section with the given ID, or
// nil if the snapshot has none.
func (s *Snapshot) Section(id uint32) []byte {
	for i := range s.Sections {
		if s.Sections[i].ID == id {
			return s.Sections[i].Payload
		}
	}
	return nil
}

func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// headerSize is magic + version + kind + tick + baseTick + nSections.
const headerSize = 4 + 4 + 1 + 8 + 8 + 4

// Encode serialises the snapshot:
//
//	u32 magic "MLGP" | u32 version | u8 kind | i64 tick | i64 baseTick |
//	u32 nSections | u64 fnv1a(header bytes above)
//	then per section: u32 id | u64 len | payload | u64 fnv1a(payload)
//
// The header checksum catches torn or bit-flipped prefixes before any
// section length is trusted; each section carries its own checksum so a
// flip anywhere in the file is detected.
func Encode(s *Snapshot) []byte {
	n := headerSize + 8
	for i := range s.Sections {
		n += 4 + 8 + len(s.Sections[i].Payload) + 8
	}
	dst := make([]byte, 0, n)
	dst = AppendU32(dst, Magic)
	dst = AppendU32(dst, FormatVersion)
	dst = AppendU8(dst, byte(s.Kind))
	dst = AppendI64(dst, s.Tick)
	dst = AppendI64(dst, s.BaseTick)
	dst = AppendU32(dst, uint32(len(s.Sections)))
	dst = AppendU64(dst, checksum(dst[:headerSize]))
	for i := range s.Sections {
		sec := &s.Sections[i]
		dst = AppendU32(dst, sec.ID)
		dst = AppendU64(dst, uint64(len(sec.Payload)))
		dst = append(dst, sec.Payload...)
		dst = AppendU64(dst, checksum(sec.Payload))
	}
	return dst
}

// Decode parses and verifies an MLGP byte stream. It returns a typed error
// (wrapping ErrCorrupt) for any malformed input — truncation, bit flips,
// bad counts — and never panics; FuzzSnapshotDecode holds it to that.
// Section payloads alias data.
func Decode(data []byte) (*Snapshot, error) {
	d := NewDec(data)
	if d.U32() != Magic {
		if d.Err() != nil {
			return nil, ErrTruncated
		}
		return nil, ErrBadMagic
	}
	if v := d.U32(); d.Err() == nil && v != FormatVersion {
		return nil, fmt.Errorf("%w: version %d, reader supports %d", ErrVersion, v, FormatVersion)
	}
	s := &Snapshot{}
	s.Kind = Kind(d.U8())
	s.Tick = d.I64()
	s.BaseTick = d.I64()
	nSec := int(d.U32())
	if sum := d.U64(); d.Err() == nil && sum != checksum(data[:headerSize]) {
		return nil, fmt.Errorf("%w: header", ErrChecksum)
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if s.Kind != KindFull && s.Kind != KindIncremental {
		return nil, fmt.Errorf("%w: unknown snapshot kind %d", ErrCorrupt, s.Kind)
	}
	// Each section costs at least id+len+checksum bytes.
	if nSec > d.Remaining()/(4+8+8) {
		return nil, ErrTruncated
	}
	s.Sections = make([]Section, 0, nSec)
	for i := 0; i < nSec; i++ {
		id := d.U32()
		plen := d.U64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if plen > uint64(d.Remaining()) {
			return nil, ErrTruncated
		}
		payload := d.take(int(plen))
		sum := d.U64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if sum != checksum(payload) {
			return nil, fmt.Errorf("%w: section %d", ErrChecksum, id)
		}
		s.Sections = append(s.Sections, Section{ID: id, Payload: payload})
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.Remaining())
	}
	return s, nil
}
