// Package mlg defines the node abstraction shared by every deployment shape
// of the MLG engine: a single-process server owning the whole world, one
// shard of a partitioned world, or an in-process cluster of shards driven in
// lockstep. Benchmark harnesses and scenario scripts program against Node so
// the same workload runs unchanged against any topology — the property the
// 2-shard-vs-single-shard differential suites depend on.
package mlg

import "repro/internal/mlg/server"

// Node is one tickable game-world endpoint. A *server.Server satisfies it
// directly; shard.Cluster satisfies it by fanning each call out across its
// shards and merging the results.
type Node interface {
	// Tick advances the world one tick and returns its record. For a
	// cluster the record is the merged view: counters summed across shards,
	// durations the per-tick maximum.
	Tick() server.TickRecord
	// Connect joins a player to the world. A cluster routes the connection
	// to the shard owning the player's spawn chunk.
	Connect(name string) *server.Player
	// Snapshot captures the node's externally visible state fingerprint at
	// a tick boundary.
	Snapshot() server.Snapshot
	// Hooks returns the hook set the node was constructed with.
	Hooks() server.Hooks
}

// Both deployment shapes must keep satisfying Node; shard.Cluster asserts
// its half in internal/shard.
var _ Node = (*server.Server)(nil)
