package server

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/entity"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

// relTracker reconstructs entity positions client-side from the mixed
// EntityMove/EntityMoveRel stream, the way a real client would.
type relTracker struct {
	mu    sync.Mutex
	pos   map[int32]qpos
	fulls int
	rels  int
}

func (rt *relTracker) apply(pkt protocol.Packet) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	switch p := pkt.(type) {
	case *protocol.EntityMove:
		rt.pos[p.EntityID] = qpos{x: quant(p.X), y: quant(p.Y), z: quant(p.Z)}
		rt.fulls++
	case *protocol.EntityMoveRel:
		q := rt.pos[p.EntityID]
		q.x += int32(p.DX)
		q.y += int32(p.DY)
		q.z += int32(p.DZ)
		rt.pos[p.EntityID] = q
		rt.rels++
	case *protocol.DestroyEntity:
		delete(rt.pos, p.EntityID)
	}
}

func (rt *relTracker) snapshot(id int32) (qpos, int, int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.pos[id], rt.fulls, rt.rels
}

// TestEntityMoveRelDeltaStream: over a real loopback connection, in-view
// entity movement must stream as one full EntityMove baseline followed by
// compact EntityMoveRel deltas, and the client's reconstructed position
// must land exactly on the server's (quantized to the shared 1/32 grid).
func TestEntityMoveRelDeltaStream(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	s := New(w, DefaultConfig(Vanilla), nil, env.RealClock{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer func() { s.Stop(); ln.Close() }()

	conn, err := protocol.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.WritePacket(&protocol.Handshake{Version: protocol.ProtocolVersion})
	conn.WritePacket(&protocol.Login{Name: "delta-bot"})
	if _, _, err := conn.ReadPacket(); err != nil { // LoginSuccess
		t.Fatal(err)
	}

	s.EntityWorld().SpawnMob(world.Pos{X: 12, Y: 11, Z: 12})
	var mob *entity.Entity
	s.EntityWorld().Entities(func(e *entity.Entity) { mob = e })
	mobID := int32(mob.ID)

	rt := &relTracker{pos: make(map[int32]qpos)}
	go func() {
		for {
			pkt, _, err := conn.ReadPacket()
			if err != nil {
				return
			}
			rt.apply(pkt)
		}
	}()

	// Walk the mob in small steps; each tick's dissemination streams the
	// position. Mutations happen before the tick so the final tick's stream
	// reflects the final position.
	for i := 0; i < 12; i++ {
		mob.Pos.X += 0.40625 // 13/32: exact on the delta grid
		mob.Pos.Z += 0.3
		s.Tick()
	}
	want := qpos{x: quant(mob.Pos.X), y: quant(mob.Pos.Y), z: quant(mob.Pos.Z)}

	deadline := time.Now().Add(5 * time.Second)
	for {
		got, fulls, rels := rt.snapshot(mobID)
		if got == want {
			if fulls < 1 {
				t.Fatal("no full EntityMove baseline seen")
			}
			if rels < 1 {
				t.Fatal("movement never streamed as EntityMoveRel deltas")
			}
			if fulls >= rels {
				t.Fatalf("delta streaming not dominant: %d full moves vs %d deltas", fulls, rels)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client position %+v never converged to server %+v (%d fulls, %d rels)",
				got, want, fulls, rels)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStationaryEntitiesSendNothing: an in-view entity that does not move
// between broadcast rounds must send exactly one full-move baseline and
// then nothing.
func TestStationaryEntitiesSendNothing(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	s := New(w, DefaultConfig(Vanilla), env.NewMachine(env.DAS5TwoCore, 7), testClock())
	p := s.connect("alice", protocol.NewConn(discardConn{}))
	p.pendingChunks = nil
	// An item entity parked next to the player; it is never ticked, so it
	// is stationary by construction.
	s.EntityWorld().SpawnItem(world.Pos{X: 10, Y: 11, Z: 10}, world.Stone)

	var counts tickCounts
	players := []*Player{p}
	s.sendReal(players, nil, &counts)
	base := p.conn.Stats()
	if base.EntityMsgs != 1 {
		t.Fatalf("baseline round sent %d entity packets, want 1 full move", base.EntityMsgs)
	}
	for i := 0; i < 5; i++ {
		s.sendReal(players, nil, &counts)
	}
	after := p.conn.Stats()
	if got := after.EntityMsgs - base.EntityMsgs; got != 0 {
		t.Fatalf("stationary entity produced %d entity packets after baseline", got)
	}
	if after.MsgsOut <= base.MsgsOut {
		t.Fatal("broadcast rounds stopped sending entirely (no time updates)")
	}
}

// TestSerializeChunkCache: repeat sends of an unchanged chunk must reuse
// the cached payload; a terrain edit must invalidate it; and the cached
// payload must stay byte-identical to a fresh At-walk serialization.
func TestSerializeChunkCache(t *testing.T) {
	s, _ := newTestServer(t, Vanilla)
	cp := world.ChunkPos{X: 0, Z: 0}

	d1 := s.serializeChunk(cp)
	if len(d1) == 0 {
		t.Fatal("empty payload")
	}
	if !bytes.Equal(d1, legacySerializeChunk(s.w.Chunk(cp))) {
		t.Fatal("payload differs from the reference At-walk serialization")
	}
	d2 := s.serializeChunk(cp)
	if &d1[0] != &d2[0] {
		t.Fatal("unchanged chunk re-serialized instead of reusing the cached payload")
	}

	s.w.SetBlock(world.Pos{X: 1, Y: 30, Z: 1}, world.B(world.Stone))
	d3 := s.serializeChunk(cp)
	if bytes.Equal(d2, d3) {
		t.Fatal("terrain edit did not invalidate the cached payload")
	}
	if !bytes.Equal(d3, legacySerializeChunk(s.w.Chunk(cp))) {
		t.Fatal("recomputed payload differs from the reference serialization")
	}
	// A no-op set (same block) must not invalidate.
	s.w.SetBlock(world.Pos{X: 1, Y: 30, Z: 1}, world.B(world.Stone))
	d4 := s.serializeChunk(cp)
	if &d3[0] != &d4[0] {
		t.Fatal("no-op SetBlock invalidated the payload cache")
	}
}

// legacySerializeChunk is the pre-cache reference implementation: an RLE
// walk through Chunk.At in Y-major order.
func legacySerializeChunk(c *world.Chunk) []byte {
	var buf bytes.Buffer
	var last world.Block
	count := 0
	flush := func() {
		if count == 0 {
			return
		}
		buf.Write([]byte{byte(count >> 8), byte(count), byte(last.ID), last.Meta})
	}
	for y := 0; y < world.Height; y++ {
		for z := 0; z < world.ChunkSize; z++ {
			for x := 0; x < world.ChunkSize; x++ {
				b := c.At(x, y, z)
				if b == last && count > 0 && count < 0xFFFF {
					count++
					continue
				}
				flush()
				last, count = b, 1
			}
		}
	}
	flush()
	return buf.Bytes()
}

// gateGenerator blocks chunk generation until released, exposing what locks
// a connecting player's world-generation burst holds.
type gateGenerator struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateGenerator) GenerateChunk(c *world.Chunk) {
	g.once.Do(func() {
		close(g.started)
		<-g.release
	})
}

// TestConnectWorldGenOutsideServerMutex: while a join burst is generating
// terrain, Enqueue and stats readers must not block on the server mutex.
func TestConnectWorldGenOutsideServerMutex(t *testing.T) {
	gen := &gateGenerator{started: make(chan struct{}), release: make(chan struct{})}
	w := world.New(gen)
	s := New(w, DefaultConfig(Vanilla), env.NewMachine(env.DAS5TwoCore, 7), testClock())

	connected := make(chan *Player)
	go func() { connected <- s.Connect("slow-join") }()
	<-gen.started // the join is now parked inside world generation

	probed := make(chan int)
	go func() {
		s.Enqueue(99, &protocol.KeepAlive{}, time.Now())
		probed <- s.PlayerCount()
	}()
	select {
	case n := <-probed:
		if n != 0 {
			t.Fatalf("player registered before its world loaded: count %d", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Enqueue/PlayerCount blocked on s.mu during join world generation")
	}

	close(gen.release)
	if p := <-connected; p == nil || p.ID == 0 {
		t.Fatal("connect failed after release")
	}
}

// TestProcessInboxStablePartition: due packets apply in arrival-queue order
// and not-yet-due packets survive, in order, to the tick they become due.
func TestProcessInboxStablePartition(t *testing.T) {
	s, clock := newTestServer(t, Vanilla)
	p := s.Connect("alice")
	s.Tick()

	now := clock.Now()
	s.Enqueue(p.ID, &protocol.PlayerMove{X: 9.5, Y: 11, Z: 8.5}, now)
	s.Enqueue(p.ID, &protocol.PlayerMove{X: 10.5, Y: 11, Z: 8.5}, now.Add(10*time.Millisecond))
	s.Enqueue(p.ID, &protocol.PlayerMove{X: 11.5, Y: 11, Z: 8.5}, now)

	s.Tick() // due: first and third, in order; later: the +60ms move
	if p.Pos.X != 11.5 {
		t.Fatalf("due moves misapplied: X = %v, want 11.5 (last due)", p.Pos.X)
	}
	s.Tick() // the held-back move is now due
	if p.Pos.X != 10.5 {
		t.Fatalf("deferred move lost or reordered: X = %v, want 10.5", p.Pos.X)
	}
}
