package server_test

import (
	"fmt"
	"testing"

	"repro/internal/mlg/persist"
	"repro/internal/mlg/server"
	"repro/internal/workload"
)

// Persistence cost benchmarks: what one snapshot costs the tick loop
// (encode + atomic write) and what a restart pays to come back. Recorded
// into the BENCH_8.json trajectory by scripts/bench.sh.

// benchPersistServer builds a Farm server (Scale 2, like the equivalence
// matrix) and runs it warm ticks so the snapshot carries a realistic
// mid-run state.
func benchPersistServer(b *testing.B, warm int) *server.Server {
	b.Helper()
	s := newPersistRef(workload.Farm, 1, 0)
	for i := 0; i < warm; i++ {
		s.Tick()
	}
	return s
}

func BenchmarkSnapshotSave(b *testing.B) {
	for _, warm := range []int{10, 40} {
		s := benchPersistServer(b, warm)
		full := s.EncodeSnapshot(nil)
		base := &server.SnapshotBase{Tick: full.Tick, Revs: s.World().ChunkRevisions()}

		b.Run(fmt.Sprintf("full/ticks%d", warm), func(b *testing.B) {
			st, err := persist.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.Write(s.EncodeSnapshot(nil)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("incr/ticks%d", warm), func(b *testing.B) {
			st, err := persist.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.Write(full); err != nil {
				b.Fatal(err)
			}
			s.Tick() // one tick of drift so the delta is non-empty
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.Write(s.EncodeSnapshot(base)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRestore(b *testing.B) {
	for _, warm := range []int{10, 40} {
		s := benchPersistServer(b, warm)
		full := s.EncodeSnapshot(nil)
		res := &persist.Resolved{Tick: full.Tick, Full: full}

		b.Run(fmt.Sprintf("full/ticks%d", warm), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tw := newPersistBlank(workload.Farm, 1)
				if err := tw.RestoreSnapshot(res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
