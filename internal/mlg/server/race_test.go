package server_test

// Race-detector stress for the region-parallel tick: while a SimWorkers=4
// server drains a two-cluster Lag workload in parallel, other goroutines
// hammer the surfaces real deployments touch concurrently — player joins
// (world generation + spawn probes), terrain reads, and server stat
// queries. Under -race this is the regression guard for the exclusive
// drain phase: region workers write chunks without per-write locking, which
// is only sound while the world write lock shuts readers out.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/workload"
)

func TestParallelTickConcurrentAccessRace(t *testing.T) {
	w := workload.NewWorld(workload.Lag, world.PaperControlSeed)
	cfg := server.DefaultConfig(server.Vanilla)
	cfg.Sim.Seed = 5
	cfg.Sim.Workers = 4
	m := env.NewMachine(env.DAS5SixteenCore, 1)
	s := server.New(w, cfg, m, env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)))
	spec := workload.Lag.DefaultSpec()
	spec.Scale = 2 // two machine clusters: the drains actually run parallel
	if err := workload.Install(s, spec); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Joining players: spawn probes (HighestSolidY), view-area generation,
	// player-map mutation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := s.Connect("racer")
			s.PlayerCount()
			s.Disconnect(p.ID)
			runtime.Gosched()
		}
	}()

	// Terrain readers: the metric-externalizer access pattern, aimed into
	// the active construct area so reads contend with region writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			x := -64 + (i % 160)
			w.Block(world.Pos{X: x, Y: 12, Z: -64 + (i % 100)})
			w.BlockIfLoaded(world.Pos{X: x, Y: 12, Z: 8})
			w.Stats()
			runtime.Gosched()
		}
	}()

	// Stat readers on the server mutex.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.NetTotals()
			s.TickNumber()
			s.Records()
			runtime.Gosched()
		}
	}()

	parallelSeen := false
	for i := 0; i < 12; i++ {
		if rec := s.Tick(); rec.SimParallel {
			parallelSeen = true
		}
	}
	close(stop)
	wg.Wait()
	if !parallelSeen {
		t.Fatalf("stress run never drained in parallel: %+v", s.Engine().ParallelStats())
	}
}

// TestParallelEntityTickConcurrentJoinRace is the entity-phase counterpart:
// while a SimWorkers=4 server runs a two-cluster TNT storm — region-parallel
// entity ticks inside the world-exclusive phase — other goroutines join and
// leave (world generation, spawn probes, player-map mutation), read terrain
// into the crater area, and poll server stats. Under -race this guards the
// entity workers' lock-free terrain reads off the frozen chunk index and the
// store's buffered side-effect merge.
func TestParallelEntityTickConcurrentJoinRace(t *testing.T) {
	w := workload.NewWorld(workload.TNT, world.PaperControlSeed)
	cfg := server.DefaultConfig(server.Vanilla)
	cfg.Sim.Seed = 7
	cfg.Sim.Workers = 4
	m := env.NewMachine(env.DAS5SixteenCore, 1)
	s := server.New(w, cfg, m, env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)))
	spec := workload.TNT.DefaultSpec()
	spec.Scale = 2 // two cuboids: >= 2 entity regions once both storms burn
	spec.IgniteAfterTicks = 2
	if err := workload.Install(s, spec); err != nil {
		t.Fatal(err)
	}
	s.Connect("storm")
	workload.Arm(s, spec)
	// Run into the chain reaction so the entity population is storm-sized.
	for i := 0; i < 300 && s.EntityWorld().Count() < 400; i++ {
		s.Tick()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := s.Connect("joiner")
			s.PlayerCount()
			s.Disconnect(p.ID)
			runtime.Gosched()
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Crater-area reads contending with the exclusive entity phase.
			w.Block(world.Pos{X: 32 + i%64, Y: 20, Z: 32 + i%64})
			w.BlockIfLoaded(world.Pos{X: 32 + i%64, Y: 20, Z: 40})
			s.NetTotals()
			s.Records()
			runtime.Gosched()
		}
	}()

	entParallelSeen := false
	for i := 0; i < 15; i++ {
		if rec := s.Tick(); rec.EntParallel {
			entParallelSeen = true
		}
	}
	close(stop)
	wg.Wait()
	if !entParallelSeen {
		t.Fatalf("stress run never ticked entities in parallel: %+v",
			s.EntityWorld().ParallelStats())
	}
}
