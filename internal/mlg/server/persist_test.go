package server_test

// Restore-then-replay equivalence: a server restored from a snapshot must
// produce bit-identical subsequent ticks versus the uninterrupted run —
// same sim/entity counters, cost-model work, populations and final state —
// across the golden workloads, at SimWorkers 1/2/4, from both a full
// snapshot and an incremental layered on one. This is the acceptance gate
// of the persistence layer: any state the codec forgets shows up here as
// the first divergent tick.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/persist"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/workload"
)

// newPersistRef builds a fully installed workload server (the
// uninterrupted reference run).
func newPersistRef(k workload.Kind, simWorkers int, igniteAfter int) *server.Server {
	w := workload.NewWorld(k, world.PaperControlSeed)
	cfg := server.DefaultConfig(server.Paper)
	cfg.Sim.Seed = 1234
	cfg.Sim.Workers = simWorkers
	m := env.NewMachine(env.DAS5SixteenCore, 1)
	s := server.New(w, cfg, m, env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)))
	spec := k.DefaultSpec()
	spec.Scale = 2
	if k == workload.TNT {
		spec.IgniteAfterTicks = igniteAfter
	}
	if err := workload.Install(s, spec); err != nil {
		panic(err)
	}
	s.Connect("persist")
	if k == workload.TNT {
		workload.Arm(s, spec)
	}
	return s
}

// newPersistBlank builds the restore target: same config and world
// generator, but nothing installed and nobody connected — restore replaces
// all of that; the fresh world only supplies the generator for chunks
// loaded after the restore point.
func newPersistBlank(k workload.Kind, simWorkers int) *server.Server {
	w := workload.NewWorld(k, world.PaperControlSeed)
	cfg := server.DefaultConfig(server.Paper)
	cfg.Sim.Seed = 1234
	cfg.Sim.Workers = simWorkers
	m := env.NewMachine(env.DAS5SixteenCore, 1)
	return server.New(w, cfg, m, env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)))
}

// compareTick asserts the deterministic fields of two tick records match.
// Durations are excluded on purpose: the restored server's machine model
// and virtual clock restart, which changes timing but nothing simulated.
func compareTick(t *testing.T, tick int64, ref, got server.TickRecord) {
	t.Helper()
	if ref.Sim != got.Sim {
		t.Fatalf("tick %d: sim counters diverged\nref:      %+v\nrestored: %+v", tick, ref.Sim, got.Sim)
	}
	if ref.Ent != got.Ent {
		t.Fatalf("tick %d: entity counters diverged\nref:      %+v\nrestored: %+v", tick, ref.Ent, got.Ent)
	}
	if ref.Work != got.Work {
		t.Fatalf("tick %d: cost-model work diverged\nref:      %+v\nrestored: %+v", tick, ref.Work, got.Work)
	}
	if ref.Players != got.Players || ref.Entities != got.Entities || ref.Backlog != got.Backlog {
		t.Fatalf("tick %d: players/entities/backlog %d/%d/%d vs %d/%d/%d",
			tick, ref.Players, ref.Entities, ref.Backlog, got.Players, got.Entities, got.Backlog)
	}
}

func TestRestoreReplayMatrix(t *testing.T) {
	cases := []struct {
		k                     workload.Kind
		total, fullAt, incrAt int64
		igniteAfter           int
	}{
		// Control: terrain + a player, light load.
		{k: workload.Control, total: 60, fullAt: 25, incrAt: 40},
		// Farm: redstone, spawners, hoppers, mobs — snapshot lands mid-farm.
		{k: workload.Farm, total: 60, fullAt: 25, incrAt: 40},
		// TNT: ignite at 6, 80-tick fuses — snapshots land mid-explosion,
		// with live TNT entities, flying items and half-built craters.
		{k: workload.TNT, total: 130, fullAt: 90, incrAt: 110, igniteAfter: 6},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 4} {
			tc, workers := tc, workers
			t.Run(fmt.Sprintf("%s/workers%d", tc.k, workers), func(t *testing.T) {
				ref := newPersistRef(tc.k, workers, tc.igniteAfter)
				recs := make(map[int64]server.TickRecord, tc.total)
				var full, incr *persist.Snapshot
				var base *server.SnapshotBase
				for i := int64(1); i <= tc.total; i++ {
					rec := ref.Tick()
					recs[i] = rec
					switch i {
					case tc.fullAt:
						full = ref.EncodeSnapshot(nil)
						base = &server.SnapshotBase{Tick: full.Tick, Revs: ref.World().ChunkRevisions()}
					case tc.incrAt:
						incr = ref.EncodeSnapshot(base)
					}
				}
				refFinal := ref.Snapshot()

				t.Run("full", func(t *testing.T) {
					replayFrom(t, tc.k, workers, &persist.Resolved{Tick: full.Tick, Full: full},
						recs, tc.total, &refFinal, true)
				})
				t.Run("incremental", func(t *testing.T) {
					replayFrom(t, tc.k, workers,
						&persist.Resolved{Tick: incr.Tick, Full: full, Delta: incr},
						recs, tc.total, &refFinal, false)
				})
			})
		}
	}
}

func replayFrom(t *testing.T, k workload.Kind, workers int, res *persist.Resolved,
	recs map[int64]server.TickRecord, total int64, refFinal *server.Snapshot, checkBytes bool) {
	t.Helper()
	tw := newPersistBlank(k, workers)
	if err := tw.RestoreSnapshot(res); err != nil {
		t.Fatalf("restore at tick %d: %v", res.Tick, err)
	}
	if checkBytes {
		// A full snapshot re-encoded immediately after restore must
		// reproduce the original bytes — the codec is canonical, so any
		// mismatch means state was dropped or invented on the way through.
		if got, want := persist.Encode(tw.EncodeSnapshot(nil)), persist.Encode(res.Full); !bytes.Equal(got, want) {
			t.Fatalf("re-encoded snapshot differs from original (%d vs %d bytes)", len(got), len(want))
		}
	}
	for i := res.Tick + 1; i <= total; i++ {
		compareTick(t, i, recs[i], tw.Tick())
	}
	twFinal := tw.Snapshot()
	if d := twFinal.Diff(refFinal); d != "" {
		t.Fatalf("final state diverged after restore at %d: %s", res.Tick, d)
	}
}
