package server

// Guards for the virtual-player block-change elision: servers with no real
// TCP connection skip materializing per-block BlockChange packets (the
// dominant buffering overhead of TNT crater ticks) while keeping the
// dissemination accounting identical, and servers WITH a real connection
// must keep producing the exact same bytes on the wire as before.

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

// captureConn records everything written to it.
type captureConn struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *captureConn) Read(p []byte) (int, error) { return 0, io.EOF }
func (c *captureConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}
func (c *captureConn) Close() error { return nil }

func (c *captureConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

// readerConn replays a captured stream through protocol.Conn for decoding.
type readerConn struct{ r *bytes.Reader }

func (c readerConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c readerConn) Write(p []byte) (int, error) { return len(p), nil }
func (c readerConn) Close() error                { return nil }

func testChanges() []protocol.BlockChange {
	out := make([]protocol.BlockChange, 0, 24)
	for i := 0; i < 24; i++ {
		out = append(out, protocol.BlockChange{
			X: int32(4 + i%6), Y: int32(11 + i/6), Z: int32(4 + i%5),
			BlockID: uint8(world.Stone), Meta: 0,
		})
	}
	return out
}

// TestBlockChangeRealConnByteEquivalence: with a socket-backed player, every
// terrain mutation must still reach the wire as a BlockChange packet whose
// bytes equal the reference encoding, in mutation order — the elision may
// never alter what real connections receive.
func TestBlockChangeRealConnByteEquivalence(t *testing.T) {
	s, _ := newTestServer(t, Vanilla)
	cap := &captureConn{}
	p := s.connect("wired", protocol.NewConn(cap))
	p.pendingChunks = nil // skip the join burst; isolate the update stream

	changes := testChanges()
	for _, c := range changes {
		s.w.SetBlock(world.Pos{X: int(c.X), Y: int(c.Y), Z: int(c.Z)},
			world.Block{ID: world.BlockID(c.BlockID), Meta: c.Meta})
	}
	s.Tick()

	// Decode the captured stream and collect the BlockChange packets.
	conn := protocol.NewConn(readerConn{r: bytes.NewReader(cap.bytes())})
	var got []protocol.BlockChange
	for {
		pkt, _, err := conn.ReadPacket()
		if err != nil {
			break
		}
		if bc, ok := pkt.(*protocol.BlockChange); ok {
			got = append(got, *bc)
		}
	}
	if len(got) != len(changes) {
		t.Fatalf("real conn received %d BlockChange packets, want %d", len(got), len(changes))
	}
	for i := range changes {
		want := protocol.AppendFrame(nil, &changes[i])
		have := protocol.AppendFrame(nil, &got[i])
		if !bytes.Equal(want, have) {
			t.Fatalf("change %d: wire bytes diverged:\nwant %x\ngot  %x", i, want, have)
		}
	}
}

// TestBlockChangeElisionVirtualOnly: with only virtual players, the
// per-block packet buffer must stay empty while the count — and with it the
// dissemination accounting — exactly matches a socket-backed twin.
func TestBlockChangeElisionVirtualOnly(t *testing.T) {
	virtual, _ := newTestServer(t, Vanilla)
	real, _ := newTestServer(t, Vanilla)
	vp := virtual.Connect("ghost")
	vp.pendingChunks = nil
	rp := real.connect("wired", protocol.NewConn(&captureConn{}))
	rp.pendingChunks = nil

	changes := testChanges()
	for _, c := range changes {
		pos := world.Pos{X: int(c.X), Y: int(c.Y), Z: int(c.Z)}
		b := world.Block{ID: world.BlockID(c.BlockID), Meta: c.Meta}
		virtual.w.SetBlock(pos, b)
		real.w.SetBlock(pos, b)
	}

	if n := len(virtual.blockChanges); n != 0 {
		t.Fatalf("virtual-only server materialized %d BlockChange packets", n)
	}
	if virtual.blockChangeCount != len(changes) {
		t.Fatalf("virtual-only count = %d, want %d", virtual.blockChangeCount, len(changes))
	}
	if len(real.blockChanges) != len(changes) {
		t.Fatalf("real-conn server buffered %d packets, want %d", len(real.blockChanges), len(changes))
	}

	virtual.Tick()
	real.Tick()
	nv, nr := virtual.NetTotals(), real.NetTotals()
	if nv != nr {
		t.Fatalf("dissemination accounting diverged:\nvirtual: %+v\nreal:    %+v", nv, nr)
	}
}
