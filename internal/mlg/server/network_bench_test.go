package server

// Benchmarks for the real-network outbound path: the per-tick broadcast
// fan-out (sendReal) and the chunk-column serialization joining players pay
// for. These are the regression harness for the encode-once/batched-flush
// network layer; scripts/bench.sh records them into BENCH_3.json.
//
//	go test -bench 'SendReal|SerializeChunk' -benchmem ./internal/mlg/server

import (
	"io"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/entity"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

// discardConn is a ReadWriteCloser that swallows writes: a real protocol
// connection minus the kernel, so broadcast benchmarks measure encode and
// buffer management, not loopback TCP.
type discardConn struct{}

func (discardConn) Read(p []byte) (int, error)  { return 0, io.EOF }
func (discardConn) Write(p []byte) (int, error) { return len(p), nil }
func (discardConn) Close() error                { return nil }

// newBroadcastServer builds a server with socket-backed players clustered at
// spawn and a mob herd inside everyone's view area.
func newBroadcastServer(bots, mobs int) (*Server, []*Player) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	clock := env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
	s := New(w, DefaultConfig(Vanilla), env.NewMachine(env.DAS5SixteenCore, 1), clock)
	players := make([]*Player, 0, bots)
	for i := 0; i < bots; i++ {
		p := s.connect("bench-bot", protocol.NewConn(discardConn{}))
		p.pendingChunks = nil // skip the join burst: steady-state broadcast only
		players = append(players, p)
	}
	for i := 0; i < mobs; i++ {
		s.EntityWorld().SpawnMob(world.Pos{X: 4 + i%8, Y: 11, Z: 4 + i/8})
	}
	return s, players
}

// BenchmarkSendReal measures one broadcast tick for 50 socket-backed bots:
// 32 terrain updates plus a 40-mob herd whose members all moved since the
// last tick, per-player interest filtering, and the tick time update.
func BenchmarkSendReal(b *testing.B) {
	s, players := newBroadcastServer(50, 40)
	bc := make([]protocol.BlockChange, 32)
	for i := range bc {
		bc[i] = protocol.BlockChange{X: int32(i), Y: 11, Z: int32(i), BlockID: 1}
	}
	var counts tickCounts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Every mob steps 1/16 block per iteration, wrapping inside the spawn
		// chunk so the herd never leaves anyone's view.
		dx := 4 + float64(i%16)*0.0625
		s.ents.Entities(func(e *entity.Entity) { e.Pos.X = dx })
		s.sendReal(players, bc, &counts)
	}
}

// BenchmarkSerializeChunk measures the RLE chunk-column payload a joining
// player is sent: the steady case (unchanged chunk, repeat send) and the
// worst case (a terrain edit between every send).
func BenchmarkSerializeChunk(b *testing.B) {
	newChunkServer := func() *Server {
		w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
		clock := env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
		return New(w, DefaultConfig(Vanilla), env.NewMachine(env.DAS5SixteenCore, 1), clock)
	}
	cp := world.ChunkPos{X: 0, Z: 0}
	b.Run("steady", func(b *testing.B) {
		s := newChunkServer()
		if len(s.serializeChunk(cp)) == 0 {
			b.Fatal("empty chunk payload")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.serializeChunk(cp)
		}
	})
	b.Run("invalidated", func(b *testing.B) {
		s := newChunkServer()
		s.serializeChunk(cp)
		pos := world.Pos{X: 3, Y: 30, Z: 3}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				s.w.SetBlock(pos, world.B(world.Stone))
			} else {
				s.w.SetBlock(pos, world.B(world.Air))
			}
			s.serializeChunk(cp)
		}
	})
}
