package server

import (
	"sync"
	"time"

	"repro/internal/mlg/persist"
)

// SnapshotterConfig tunes the periodic snapshotter.
type SnapshotterConfig struct {
	// Every is the snapshot cadence in ticks (<= 0 disables MaybeSnapshot).
	Every int
	// FullEvery makes every Nth snapshot a full one; the ones between are
	// incrementals against the last full on disk. <= 1 means every
	// snapshot is full.
	FullEvery int
	// Sync writes on the calling (tick) goroutine instead of the
	// background writer — deterministic tests and final-flush paths.
	Sync bool
	// Retries is how many times an IO-failed write is retried (default 3),
	// sleeping RetryBackoff (default 50ms, doubling) between attempts.
	Retries      int
	RetryBackoff time.Duration
}

type snapshotJob struct {
	snap *persist.Snapshot
	base *SnapshotBase // non-nil when the job is a full: install on success
}

// Snapshotter periodically captures server snapshots and persists them
// through a Store. Encoding always happens on the tick goroutine (between
// ticks, via MaybeSnapshot); in the default async mode the encoded bytes
// are handed to a background writer so disk latency never extends a tick,
// and a snapshot whose writer is still busy is skipped, not queued — the
// next cadence point takes a fresh one instead.
type Snapshotter struct {
	s   *Server
	st  *persist.Store
	cfg SnapshotterConfig

	jobs chan snapshotJob
	wg   sync.WaitGroup

	mu sync.Mutex
	// base is the identity of the last full snapshot known to be on disk;
	// incrementals are computed against it. Guarded by mu: the background
	// writer installs it on write success while the tick goroutine reads it.
	base      *SnapshotBase
	sinceFull int
	err       error // last write failure (after retries)
	written   int
	skipped   int
}

// NewSnapshotter creates a snapshotter for s writing into st.
func NewSnapshotter(s *Server, st *persist.Store, cfg SnapshotterConfig) *Snapshotter {
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	sn := &Snapshotter{s: s, st: st, cfg: cfg}
	if !cfg.Sync {
		sn.jobs = make(chan snapshotJob, 1)
		sn.wg.Add(1)
		go sn.writer()
	}
	return sn
}

// MaybeSnapshot takes a snapshot if the tick hits the cadence. Must be
// called between ticks on the tick goroutine (the server's after-tick hook
// is the natural place).
func (sn *Snapshotter) MaybeSnapshot(tick int64) {
	if sn.cfg.Every <= 0 || tick%int64(sn.cfg.Every) != 0 {
		return
	}
	sn.Snapshot()
}

// Snapshot captures and persists one snapshot now (full or incremental per
// the FullEvery schedule). Must be called between ticks on the tick
// goroutine.
func (sn *Snapshotter) Snapshot() {
	sn.mu.Lock()
	base := sn.base
	full := base == nil || sn.cfg.FullEvery <= 1 || sn.sinceFull >= sn.cfg.FullEvery-1
	sn.mu.Unlock()
	var job snapshotJob
	if full {
		job.snap = sn.s.EncodeSnapshot(nil)
		job.base = &SnapshotBase{Tick: job.snap.Tick, Revs: sn.s.World().ChunkRevisions()}
	} else {
		job.snap = sn.s.EncodeSnapshot(base)
	}
	if sn.cfg.Sync {
		sn.runJob(job)
		return
	}
	select {
	case sn.jobs <- job:
	default:
		// Writer still busy with the previous snapshot: drop this one.
		sn.mu.Lock()
		sn.skipped++
		sn.mu.Unlock()
		if full {
			// The staged base never hit the disk; stay on the old one.
			return
		}
	}
}

func (sn *Snapshotter) writer() {
	defer sn.wg.Done()
	for job := range sn.jobs {
		sn.runJob(job)
	}
}

// runJob writes one snapshot with retry/backoff; on success of a full it
// installs the new incremental base and resets the full cadence.
func (sn *Snapshotter) runJob(job snapshotJob) {
	var err error
	backoff := sn.cfg.RetryBackoff
	for attempt := 0; attempt < sn.cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if _, err = sn.st.Write(job.snap); err == nil {
			break
		}
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if err != nil {
		sn.err = err
		return
	}
	sn.written++
	if job.base != nil {
		sn.base = job.base
		sn.sinceFull = 0
	} else {
		sn.sinceFull++
	}
}

// Err returns the last write failure that survived all retries, if any.
func (sn *Snapshotter) Err() error {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.err
}

// Stats returns how many snapshots were written and how many were skipped
// because the writer was busy.
func (sn *Snapshotter) Stats() (written, skipped int) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.written, sn.skipped
}

// Close stops the background writer after draining any queued job. It does
// not take a final snapshot — callers that want one (graceful shutdown)
// call Snapshot first, once ticking has stopped.
func (sn *Snapshotter) Close() {
	if sn.jobs != nil {
		close(sn.jobs)
		sn.wg.Wait()
		sn.jobs = nil
	}
}
