package server

import (
	"repro/internal/env"
	"repro/internal/mlg/entity"
	"repro/internal/mlg/sim"
)

// CostModel converts instrumented operation counts into reference-core
// microseconds. The constants are calibrated so that the absolute tick-time
// magnitudes of the paper's experiments are reproduced on the DAS-5
// reference profile (Control ≈ 10-20 ms ticks on 2 cores, TNT peaks in the
// seconds, Lag heavy ticks of 1-2 s); DESIGN.md documents the calibration.
// They are exported as one struct so ablation benchmarks can vary them.
type CostModel struct {
	// Player handler costs.
	PlayerMoveUS   float64 // movement validation + collision
	PlayerActionUS float64 // dig/place processing
	ChatUS         float64 // chat handling (sync path)
	AsyncChatUS    float64 // chat handling on Paper's dedicated thread

	// Terrain simulation costs.
	BlockUpdateUS   float64 // one simulation-rule application
	RedstoneExtraUS float64 // additional cost of a logic-component update
	BlockAddRmUS    float64 // block creation/destruction
	ExplosionCellUS float64 // one blast-volume cell scan
	LightScanUS     float64 // one lighting column block scan
	RandomTickUS    float64 // one random-tick sample

	// Entity costs.
	MobUS          float64 // full mob tick (AI + physics)
	ItemUS         float64 // item tick
	TNTUS          float64 // primed TNT tick
	PathNodeUS     float64 // one A* node expansion
	SpawnAttemptUS float64 // one dynamic spawn-point computation

	// Networking and upkeep costs.
	MsgUS         float64 // per state-update message serialization + enqueue
	ByteUS        float64 // per payload byte
	ChunkGenUS    float64 // one chunk generation
	ChunkSendUS   float64 // one chunk serialization for a joining player
	ChunkUpkeepUS float64 // per loaded chunk per tick bookkeeping
	TickFixedUS   float64 // fixed game-loop overhead per tick
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		PlayerMoveUS:   55,
		PlayerActionUS: 120,
		ChatUS:         90,
		AsyncChatUS:    40,

		BlockUpdateUS:   4.0,
		RedstoneExtraUS: 145,
		BlockAddRmUS:    16,
		ExplosionCellUS: 5.5,
		LightScanUS:     1.1,
		RandomTickUS:    1.6,

		MobUS:          95,
		ItemUS:         22,
		TNTUS:          35,
		PathNodeUS:     2.4,
		SpawnAttemptUS: 30,

		MsgUS:         2.4,
		ByteUS:        0.004,
		ChunkGenUS:    1200,
		ChunkSendUS:   600,
		ChunkUpkeepUS: 28,
		TickFixedUS:   1200,
	}
}

// tickCounts gathers every instrumented count for one tick; the cost model
// turns it into env.Work.
type tickCounts struct {
	sim sim.Counters
	ent entity.Counters

	playerMoves   int
	playerActions int
	chats         int

	msgsOut  int
	bytesOut int64

	chunksGenerated int
	chunksSent      int
	chunksLoaded    int

	// Async outbound-path instrumentation (real connections only; the cost
	// model ignores these — enqueueing is free by design, the whole point
	// of the per-connection writers).
	netDrops       int
	netKeyframes   int
	netQueuedBytes int
}

// Work converts one tick's counts into environment work, applying the
// flavor's event overhead and parallelism profile.
func (cm CostModel) Work(c tickCounts, f Flavor) env.Work {
	w := env.Work{Threads: f.Threads}

	w.PlayerUS = float64(c.playerMoves)*cm.PlayerMoveUS +
		float64(c.playerActions)*cm.PlayerActionUS +
		float64(c.chats)*cm.ChatUS

	w.BlockUpdateUS = float64(c.sim.BlockUpdates)*cm.BlockUpdateUS +
		float64(c.sim.RedstoneOps)*cm.RedstoneExtraUS +
		float64(c.sim.RandomTicks)*cm.RandomTickUS

	w.BlockAddRemoveUS = float64(c.sim.BlockAdds+c.sim.BlockRemoves) * cm.BlockAddRmUS

	// Blast-volume scanning is entity work: the primed TNT entity performs
	// the explosion during its tick, which is how the paper's profiling
	// attributes it (MF4: entity processing dominates the TNT workload).
	w.EntityUS = float64(c.ent.MobTicks)*cm.MobUS +
		float64(c.ent.ItemTicks)*cm.ItemUS +
		float64(c.ent.TNTTicks)*cm.TNTUS +
		float64(c.sim.ExplosionScan)*cm.ExplosionCellUS +
		float64(c.ent.PathNodes)*cm.PathNodeUS +
		float64(c.ent.SpawnAttempts)*cm.SpawnAttemptUS

	w.LightUS = float64(c.sim.LightScans) * cm.LightScanUS

	w.NetworkUS = float64(c.msgsOut)*cm.MsgUS +
		float64(c.bytesOut)*cm.ByteUS +
		float64(c.chunksSent)*cm.ChunkSendUS

	w.UpkeepUS = float64(c.chunksLoaded)*cm.ChunkUpkeepUS +
		float64(c.chunksGenerated)*cm.ChunkGenUS +
		cm.TickFixedUS

	// Forge's event bus wraps block and entity operations.
	if f.EventOverhead != 0 && f.EventOverhead != 1 {
		w.PlayerUS *= f.EventOverhead
		w.BlockUpdateUS *= f.EventOverhead
		w.BlockAddRemoveUS *= f.EventOverhead
		w.EntityUS *= f.EventOverhead
	}

	// The flavor's parallel fraction is the work-weighted blend of what it
	// can move off the main thread: a share of entity work, block
	// add/remove batches, lighting, and most of networking. Simulation-rule
	// cascades (BlockUpdateUS) stay serial for every flavor: each rule
	// iteration depends on the previous one's state change (§2.3), which is
	// why even PaperMC cannot parallelize a lag machine away.
	total := w.TotalUS()
	if total > 0 {
		par := w.EntityUS*f.EntityParallel +
			w.BlockAddRemoveUS*f.EnvParallel +
			w.LightUS*0.5 + w.NetworkUS*0.8
		w.ParallelFraction = par / total
	}
	return w
}
