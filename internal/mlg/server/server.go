package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/entity"
	"repro/internal/mlg/persist"
	"repro/internal/mlg/sim"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

// TickBudget is the intended tick period: 50 ms, 20 Hz (§2.1).
const TickBudget = 50 * time.Millisecond

// NetConfig groups the client-facing networking knobs: interest radius,
// keep-alive cadence, and the peer-fault bounds of the async outbound path.
type NetConfig struct {
	// ViewDistance is the radius, in chunks, loaded and streamed around each
	// player.
	ViewDistance int
	// ClientTimeout, when > 0, crashes the server if a single tick starves
	// client connections longer than this (the Lag-on-AWS failure mode,
	// §5.3). It is normally taken from the environment profile.
	ClientTimeout time.Duration
	// KeepAliveEvery is the keep-alive broadcast period (default 5 s).
	KeepAliveEvery time.Duration
	// WriteTimeout bounds each outbound socket write on a real connection's
	// async writer; a peer that keeps a write stalled past it is
	// disconnected on the next tick with its queued frames reclaimed. Zero
	// disables the deadline (DefaultNetConfig: 5 s).
	WriteTimeout time.Duration
	// WriteQueueBatches and WriteQueueBytes bound a real connection's
	// outbound writer queue (per-tick batches / total queued bytes). When
	// the peer falls behind both bounds, the tick's batch is dropped and
	// the player falls back to a keyframe. Zero picks the protocol-layer
	// defaults (64 batches / 1 MiB).
	WriteQueueBatches int
	WriteQueueBytes   int
	// ReadIdleTimeout disconnects a real connection that sends nothing at
	// all for this long — a silent peer otherwise leaks its read goroutine
	// and player session forever. Zero disables (DefaultNetConfig: 90 s;
	// bots answer keep-alives, so live clients always have traffic).
	ReadIdleTimeout time.Duration
	// SocketWriteBuffer, when > 0, shrinks accepted TCP connections' kernel
	// send buffers (SO_SNDBUF) so a stalled reader exerts backpressure
	// after kilobytes instead of megabytes. Load tests use it to provoke
	// the overflow→keyframe→disconnect ladder quickly; production leaves 0.
	SocketWriteBuffer int
}

// DefaultNetConfig returns the production networking defaults.
func DefaultNetConfig() NetConfig {
	return NetConfig{
		ViewDistance:    5,
		KeepAliveEvery:  5 * time.Second,
		WriteTimeout:    5 * time.Second,
		ReadIdleTimeout: 90 * time.Second,
	}
}

// SimConfig groups the simulation knobs: seeding, parallelism, and the
// virtual-time cost model.
type SimConfig struct {
	// Seed seeds the simulation RNGs.
	Seed int64
	// Workers is the per-tick simulation parallelism of both
	// world-exclusive phases — the terrain drain (sim.Config.SimWorkers) and
	// the entity tick (entity.Config.Workers) share the knob and the worker
	// pool: 0 means GOMAXPROCS, 1 forces the legacy serial paths (the
	// differential-testing baseline). Simulation output is worker-count
	// independent — any value produces identical results (per-region
	// decision streams; see internal/mlg/entity).
	Workers int
	// Costs is the operation cost model used for virtual-time accounting.
	Costs CostModel
}

// DefaultSimConfig returns the default simulation configuration.
func DefaultSimConfig() SimConfig {
	return SimConfig{Seed: 1, Costs: DefaultCosts()}
}

// PersistConfig wires crash-safe persistence into the server. With a
// non-nil Store the server owns a Snapshotter (reachable via
// Server.Snapshotter()) and calls MaybeSnapshot at the tail of every Tick,
// so all tick drivers — Run, the benchmark runners, the scenario harness —
// get the same cadence without registering anything.
type PersistConfig struct {
	// Store receives the snapshots; nil disables persistence entirely.
	Store *persist.Store
	// Every is the snapshot cadence in ticks (<= 0 disables the periodic
	// snapshots; Server.Snapshotter().Snapshot() still works).
	Every int
	// FullEvery makes every Nth snapshot full, the rest incremental
	// (<= 1: every snapshot is full).
	FullEvery int
	// Sync writes snapshots on the tick goroutine instead of the
	// background writer — deterministic tests and final-flush paths.
	Sync bool
}

// ShardConfig places this server inside a sharded world deployment: a
// cluster of servers each owning a static range of chunk columns (see
// internal/shard). The zero value means unsharded — the server owns the
// whole world.
type ShardConfig struct {
	// Count is the total number of shards in the cluster (0 or 1 =
	// unsharded).
	Count int
	// Index is this server's shard index in [0, Count).
	Index int
	// Owns reports whether a chunk column belongs to this shard. When
	// non-nil the terrain engine mutates only owned chunks (unowned state
	// arrives as halo mirrors from the owning shard) and natural entity
	// spawning is disabled (spawn decisions would otherwise depend on
	// store-local RNG state, breaking shard-layout determinism).
	Owns func(world.ChunkPos) bool
}

// Sharded reports whether the config describes a shard of a larger world.
func (c ShardConfig) Sharded() bool { return c.Owns != nil }

// Hooks are the server's observation points, set at construction. They
// run on the tick goroutine.
type Hooks struct {
	// AfterTick runs after every completed Tick, between ticks — where
	// periodic work that must see a quiescent server belongs.
	AfterTick func(rec TickRecord)
	// EntityDelivery observes every virtual entity state-update delivery
	// decision: called once per (chunk update, interested player) pair the
	// dissemination phase fans out, with the receiving player and the
	// chunk the update batch belongs to. The scenario harness uses it to
	// check interest-set correctness independently of the fan-out code.
	EntityDelivery func(playerID int64, chunk world.ChunkPos)
}

// Config configures a game server instance.
type Config struct {
	// Flavor selects the system under test (Vanilla, Forge, Paper).
	Flavor Flavor
	// Net holds the client-facing networking knobs.
	Net NetConfig
	// Sim holds the simulation knobs.
	Sim SimConfig
	// Persist wires crash-safe persistence (zero value: disabled).
	Persist PersistConfig
	// Shard places the server in a sharded deployment (zero value:
	// unsharded).
	Shard ShardConfig
	// Hooks are the construction-time observation points.
	Hooks Hooks
}

// DefaultConfig returns a server configuration for the given flavor.
func DefaultConfig(f Flavor) Config {
	return Config{
		Flavor: f,
		Net:    DefaultNetConfig(),
		Sim:    DefaultSimConfig(),
	}
}

// Player is one connected player session.
type Player struct {
	ID   int64
	Name string
	Pos  entity.Vec3
	// conn is non-nil for real TCP sessions; virtual players (driven
	// in-process by the benchmark runner) have none.
	conn *protocol.Conn
	// sendQueue counts chunks owed to this player from its join burst.
	pendingChunks []world.ChunkPos
	// lastSent maps entity ID → the last position streamed to this real
	// connection, quantized to 1/32 block. Its key set is the tracked set:
	// entities leaving the player's interest area get a destroy packet
	// instead of freezing at their last in-view position, and in-view
	// entities stream compact EntityMoveRel deltas against these positions
	// (stationary entities send nothing; overflowing deltas fall back to a
	// full EntityMove).
	lastSent map[int64]qpos
	// seen and gone are per-tick scratch reused across ticks by sendReal.
	seen map[int64]struct{}
	gone []int64
	// needKeyframe is set when this player's outbound batch was dropped on
	// writer-queue overflow: the client missed that tick's deltas, so the
	// next batch that fits re-baselines every in-view entity with full
	// EntityMove packets (lastSent is cleared) instead of streaming deltas
	// against positions the client never saw. Tick goroutine only.
	needKeyframe bool
}

// qpos is an entity position quantized to 1/32 block, the EntityMoveRel
// delta unit.
type qpos struct{ x, y, z int32 }

// inbound is one queued client message (the paper's incoming networking
// queue, Figure 4 component 1).
type inbound struct {
	playerID int64
	pkt      protocol.Packet
	arrival  time.Time
}

// ChatEcho records the server-side completion of one chat round trip: the
// probe message became visible to its sender's output queue at ReadyAt. The
// benchmark runner adds downlink latency to compute response time.
type ChatEcho struct {
	PlayerID     int64
	SentUnixNano int64
	ReadyAt      time.Time
}

// TickRecord describes one completed game tick.
type TickRecord struct {
	Tick  int64
	Start time.Time
	// Dur is the tick's busy (compute) duration; the effective tick period
	// is max(Dur+WaitBefore, TickBudget).
	Dur        time.Duration
	WaitBefore time.Duration
	WaitAfter  time.Duration
	Work       env.Work
	Players    int
	Entities   int
	Backlog    int
	Crashed    bool
	// Sim is the tick's raw terrain-simulation counters (including any
	// explosion work routed back after the entity phase) — the quantity the
	// serial-vs-parallel equivalence matrix compares tick by tick.
	Sim sim.Counters
	// Ent is the tick's raw entity-phase counters, compared tick by tick by
	// the same matrix.
	Ent entity.Counters
	// SimRegions and SimParallel attribute the tick's terrain-drain
	// schedule: how many independent regions the update queues partitioned
	// into, and whether the drains actually ran on the worker pool (false =
	// serial path or rolled-back parallel attempt). EntRegions and
	// EntParallel attribute the entity phase the same way.
	SimRegions  int
	SimParallel bool
	EntRegions  int
	EntParallel bool
	// NetDrops, NetKeyframes and NetQueuedBytes instrument the async
	// outbound path this tick: batches dropped on writer-queue overflow,
	// keyframe fallbacks delivered after drops, and the total bytes still
	// queued across all connection writers when dissemination finished.
	// Always zero for virtual-only servers.
	NetDrops       int
	NetKeyframes   int
	NetQueuedBytes int
}

// OutboundStats aggregates the peer-fault counters of the async outbound
// path over the server's lifetime.
type OutboundStats struct {
	// DroppedBatches counts per-player tick batches dropped because the
	// connection's bounded writer queue was full (chunk-burst batches that
	// stayed owed included).
	DroppedBatches int64
	// Keyframes counts keyframe fallbacks: after a drop, the next batch
	// that fit re-baselined the client with full EntityMove packets.
	Keyframes int64
	// WriteDisconnects counts players reaped because their connection's
	// writer faulted (write error or a peer stalled past WriteTimeout).
	WriteDisconnects int64
	// IdleDisconnects counts players reaped by the read idle timeout.
	IdleDisconnects int64
}

// NetTotals aggregates outbound traffic for Table 8.
type NetTotals struct {
	Msgs, Bytes             int64
	EntityMsgs, EntityBytes int64
}

// Fig11Totals accumulates busy time per operation category plus waits, the
// data behind the paper's tick-distribution plot.
type Fig11Totals struct {
	PlayerUS         float64
	BlockUpdateUS    float64
	BlockAddRemoveUS float64
	EntityUS         float64
	OtherUS          float64
	WaitBeforeUS     float64
	WaitAfterUS      float64
}

// Server is one MLG instance.
type Server struct {
	cfg     Config
	w       *world.World
	engine  *sim.Engine
	ents    *entity.World
	clock   env.Clock
	machine *env.Machine

	mu       sync.Mutex
	inbox    []inbound
	inboxDue []inbound // processInbox's due-partition scratch, reused per tick
	players  map[int64]*Player
	order    []int64 // deterministic player iteration order
	nextPID  int64

	// chunkPayloads caches serialized RLE chunk payloads keyed on the
	// chunk's revision, so join bursts and repeat sends reuse bytes instead
	// of re-walking 16×16×Height blocks. Touched only on the tick goroutine
	// (disseminate → sendChunkBatch).
	chunkPayloads map[world.ChunkPos]chunkPayload

	// sendScratch holds sendReal's per-tick buffers, reused across ticks.
	sendScratch sendBuffers

	// deliverHook, when non-nil, observes per-player entity-update delivery
	// decisions (Hooks.EntityDelivery). Tick goroutine only.
	deliverHook func(playerID int64, chunk world.ChunkPos)

	// afterTick, when non-nil, runs on the tick goroutine at the tail of
	// every Tick (Hooks.AfterTick).
	afterTick func(rec TickRecord)

	// snap is the server-owned snapshotter, created when Config.Persist
	// names a store; MaybeSnapshot runs at every Tick's tail, after the
	// after-tick hook's cadence point. Nil when persistence is off.
	snap *Snapshotter

	// blockChanges collects this tick's terrain state updates for
	// dissemination. The count (blockChangeCount) is always maintained for
	// the accounting path; the materialized packets are buffered only while
	// at least one real TCP connection exists (realConns) — virtual players
	// never read them, and skipping the per-block append removes the
	// dominant buffering overhead of TNT crater ticks on virtual-only runs.
	blockChanges     []protocol.BlockChange
	blockChangeCount int
	// realConns counts socket-backed sessions. It is read by the world's
	// change listener (tick goroutine, under the world lock) and written by
	// connect/remove (any goroutine), hence atomic.
	realConns atomic.Int32

	tick        int64
	records     []TickRecord
	chatEchoes  []ChatEcho
	pendingChat []ChatEcho // sync-path chats awaiting tick completion
	crashed     bool
	crashReason string

	net      NetTotals
	out      OutboundStats // async outbound peer-fault counters (under mu)
	fig11    Fig11Totals
	lastGen  int // world chunks generated at last tick
	sizes    frameSizes
	stopOnce sync.Once
	stopped  chan struct{}
}

// frameSizes caches wire frame sizes of the fixed-layout update packets.
type frameSizes struct {
	blockChange   int
	entityMove    int
	entityMoveRel int
	spawn         int
	destroy       int
	chat          int
	keepAlive     int
	timeUpdate    int
	chunkData     int // typical chunk payload
	worldStream   int // background terrain/light refresh payload
}

func measuredSizes() frameSizes {
	size := func(p protocol.Packet) int {
		body := p.MarshalBody(nil)
		n := len(body) + protocol.VarintLen(int32(p.ID()))
		return protocol.VarintLen(int32(n)) + n
	}
	return frameSizes{
		blockChange:   size(&protocol.BlockChange{X: 100, Y: 30, Z: 100}),
		entityMove:    size(&protocol.EntityMove{EntityID: 1 << 13, X: 1, Y: 1, Z: 1}),
		entityMoveRel: size(&protocol.EntityMoveRel{EntityID: 1 << 13, DX: 1, DY: 1, DZ: 1}),
		spawn:         size(&protocol.SpawnEntity{EntityID: 1 << 13, X: 1, Y: 1, Z: 1}),
		destroy:       size(&protocol.DestroyEntity{EntityID: 1 << 13}),
		chat:          size(&protocol.Chat{Sender: "player-00", Text: "probe-000000", SentUnixNano: 1 << 40}),
		keepAlive:     size(&protocol.KeepAlive{Nonce: 1 << 40}),
		timeUpdate:    size(&protocol.TimeUpdate{Tick: 1 << 30}),
		chunkData:     2600, // typical RLE chunk payload
		worldStream:   1500, // per-tick terrain/light refresh blob
	}
}

// New creates a server over the world, running under the given environment
// machine and clock. machine may be nil, in which case tick durations are
// measured wall-clock time (real deployments); clock must not be nil.
func New(w *world.World, cfg Config, machine *env.Machine, clock env.Clock) *Server {
	if cfg.Net.ViewDistance <= 0 {
		cfg.Net.ViewDistance = 5
	}
	if cfg.Net.KeepAliveEvery <= 0 {
		cfg.Net.KeepAliveEvery = 5 * time.Second
	}
	if cfg.Sim.Costs == (CostModel{}) {
		cfg.Sim.Costs = DefaultCosts()
	}
	s := &Server{
		cfg:           cfg,
		w:             w,
		clock:         clock,
		machine:       machine,
		players:       make(map[int64]*Player),
		chunkPayloads: make(map[world.ChunkPos]chunkPayload),
		sizes:         measuredSizes(),
		stopped:       make(chan struct{}),
		afterTick:     cfg.Hooks.AfterTick,
		deliverHook:   cfg.Hooks.EntityDelivery,
	}
	entCfg := cfg.Flavor.EntityConfig()
	entCfg.Workers = cfg.Sim.Workers
	simCfg := cfg.Flavor.SimConfig()
	simCfg.SimWorkers = cfg.Sim.Workers
	if cfg.Shard.Sharded() {
		// A shard simulates only its owned chunk columns; unowned terrain
		// arrives as halo mirrors from the owning shard. Natural spawning
		// draws from store-local RNG state, which would differ per shard
		// layout, so it is off — shard workloads place entities explicitly.
		simCfg.Owns = cfg.Shard.Owns
		entCfg.NaturalSpawning = false
	}
	s.ents = entity.NewWorld(w, entCfg, cfg.Sim.Seed+1)
	s.engine = sim.New(w, s.ents, simCfg, cfg.Sim.Seed+2)
	if cfg.Persist.Store != nil {
		s.snap = NewSnapshotter(s, cfg.Persist.Store, SnapshotterConfig{
			Every:     cfg.Persist.Every,
			FullEvery: cfg.Persist.FullEvery,
			Sync:      cfg.Persist.Sync,
		})
	}
	// A real conn that appears mid-tick (realConns flips to >0 after some
	// changes were already elided) receives only the rest of that tick's
	// BlockChange packets. That loses nothing: a joining player's world
	// state comes from its chunk-send burst, and chunk payloads are
	// serialized at dissemination time — after this tick's mutations — so
	// the elided packets would have been strictly redundant for it.
	w.OnChange(func(p world.Pos, old, new world.Block) {
		if s.blockChangeCount >= 20000 {
			// Overflow: count resets, burst capped (this change is dropped).
			s.blockChangeCount = 0
			s.blockChanges = s.blockChanges[:0]
			return
		}
		s.blockChangeCount++
		if s.realConns.Load() > 0 {
			s.blockChanges = append(s.blockChanges, protocol.BlockChange{
				X: int32(p.X), Y: int32(p.Y), Z: int32(p.Z),
				BlockID: uint8(new.ID), Meta: new.Meta,
			})
		}
	})
	gen, _, _ := w.Stats()
	s.lastGen = gen
	return s
}

// World returns the server's terrain world.
func (s *Server) World() *world.World { return s.w }

// Config returns the server's configuration.
func (s *Server) Config() Config { return s.cfg }

// Hooks returns the hook set the server was constructed with.
func (s *Server) Hooks() Hooks {
	return Hooks{AfterTick: s.afterTick, EntityDelivery: s.deliverHook}
}

// SetSimWorkers reconfigures the per-tick simulation parallelism of both
// world-exclusive phases between ticks: the terrain drain and the entity
// tick switch schedulers on their next tick, exactly as if the server had
// been restarted with the new value (0 = GOMAXPROCS, 1 = legacy serial
// paths). Simulation output is worker-count independent, so the switch may
// only change wall-clock time — the scenario harness reconfigures mid-run
// and asserts exactly that. Call it only between ticks, from the goroutine
// driving Tick.
func (s *Server) SetSimWorkers(n int) {
	s.cfg.Sim.Workers = n
	s.engine.SetWorkers(n)
	s.ents.SetWorkers(n)
}

// Snapshotter returns the server-owned snapshotter, or nil when the config
// named no persistence store.
func (s *Server) Snapshotter() *Snapshotter { return s.snap }

// Engine returns the terrain-simulation engine (for workload installers).
func (s *Server) Engine() *sim.Engine { return s.engine }

// EntityWorld returns the entity store.
func (s *Server) EntityWorld() *entity.World { return s.ents }

// Flavor returns the server's flavor.
func (s *Server) Flavor() Flavor { return s.cfg.Flavor }

// Connect adds a player at the world spawn and returns the session. The
// join triggers the chunk-load and chunk-send burst responsible for the
// post-connect response-time outliers of MF1.
func (s *Server) Connect(name string) *Player {
	return s.connect(name, nil)
}

func (s *Server) connect(name string, conn *protocol.Conn) *Player {
	// World-generation work (spawn probe, view-area load) runs before the
	// server mutex is taken: a join burst must not stall Enqueue or stats
	// readers on s.mu while terrain generates behind the world's own lock.
	spawnY := s.w.HighestSolidY(8, 8) + 1
	p := &Player{
		Name: name,
		Pos:  entity.Vec3{X: 8.5, Y: float64(spawnY), Z: 8.5},
		conn: conn,
	}
	// Load the view area (lazy generation work) and owe the player its
	// chunks (serialization + send burst on the next tick).
	vd := s.cfg.Net.ViewDistance
	s.w.EnsureArea(p.Pos.BlockPos(), vd)
	cc := world.ChunkPosAt(p.Pos.BlockPos())
	side := 2*vd + 1
	p.pendingChunks = make([]world.ChunkPos, 0, side*side)
	for dz := -vd; dz <= vd; dz++ {
		for dx := -vd; dx <= vd; dx++ {
			p.pendingChunks = append(p.pendingChunks,
				world.ChunkPos{X: cc.X + int32(dx), Z: cc.Z + int32(dz)})
		}
	}

	s.mu.Lock()
	s.nextPID++
	p.ID = s.nextPID
	s.players[p.ID] = p
	s.order = append(s.order, p.ID)
	if conn != nil {
		s.realConns.Add(1)
	}
	s.mu.Unlock()
	return p
}

// Disconnect removes a player session.
func (s *Server) Disconnect(id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeLocked(id)
}

func (s *Server) removeLocked(id int64) {
	if p, ok := s.players[id]; ok {
		if p.conn != nil {
			p.conn.Close()
			s.realConns.Add(-1)
		}
		delete(s.players, id)
		for i, pid := range s.order {
			if pid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
}

// PlayerCount returns the number of connected players.
func (s *Server) PlayerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.players)
}

// PlayerByID returns a player session.
func (s *Server) PlayerByID(id int64) *Player {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.players[id]
}

// Enqueue queues a client packet into the incoming networking queue with
// the given arrival time (benchmark runners add uplink latency themselves).
func (s *Server) Enqueue(playerID int64, pkt protocol.Packet, arrival time.Time) {
	s.mu.Lock()
	s.inbox = append(s.inbox, inbound{playerID: playerID, pkt: pkt, arrival: arrival})
	s.mu.Unlock()
}

// Crashed reports whether the server stopped due to a fault, with the
// reason.
func (s *Server) Crashed() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed, s.crashReason
}

// DrainChatEchoes returns and clears completed chat round trips.
func (s *Server) DrainChatEchoes() []ChatEcho {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.chatEchoes
	s.chatEchoes = nil
	return out
}

// NetTotals returns cumulative outbound traffic counters.
func (s *Server) NetTotals() NetTotals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.net
}

// Outbound returns the cumulative peer-fault counters of the async
// outbound path (drops, keyframe fallbacks, write/idle disconnects).
func (s *Server) Outbound() OutboundStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.out
}

// noteIdleDisconnect records a read-idle-timeout reap; called from the
// connection's read goroutine.
func (s *Server) noteIdleDisconnect() {
	s.mu.Lock()
	s.out.IdleDisconnects++
	s.mu.Unlock()
}

// Fig11 returns the cumulative per-category busy/wait time split.
func (s *Server) Fig11() Fig11Totals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fig11
}

// ResetStats clears accumulated measurement state (tick records, Figure 11
// totals, network totals, chat echoes) without touching simulation state.
// The benchmark runner calls it after world warm-up so settling cascades do
// not pollute the measured trace.
func (s *Server) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = nil
	s.chatEchoes = nil
	s.pendingChat = nil
	s.net = NetTotals{}
	s.fig11 = Fig11Totals{}
	s.out = OutboundStats{}
}

// Records returns all tick records so far.
func (s *Server) Records() []TickRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TickRecord(nil), s.records...)
}

// TickDurations returns the tick-duration trace.
func (s *Server) TickDurations() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]time.Duration, len(s.records))
	for i, r := range s.records {
		out[i] = r.Dur
	}
	return out
}

// TickNumber returns the number of completed ticks.
func (s *Server) TickNumber() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tick
}

// Tick runs one full game-loop iteration: drain input queue, player
// handler, terrain simulation, entities, explosion routing, dissemination,
// accounting, and the wait for the next scheduled tick start. It returns
// the tick's record.
func (s *Server) Tick() TickRecord {
	start := s.clock.Now()
	// The increment is fenced by s.mu: concurrent TickNumber readers take
	// the mutex, and an unfenced write here is a data race with them. Later
	// reads of s.tick in this method stay unfenced — only this goroutine
	// writes it.
	s.mu.Lock()
	s.tick++
	s.mu.Unlock()
	var counts tickCounts
	var wallStart time.Time
	if s.machine == nil {
		wallStart = time.Now()
	}

	// Phase 1: player handler (Figure 4, component 4).
	s.processInbox(&counts, start)

	// Phase 2: terrain simulation (component 5).
	counts.sim = s.engine.Tick()

	// Phase 3: entities (component 6).
	positions := s.playerPositions()
	counts.ent = s.ents.Tick(positions)

	// Phase 3b: route TNT detonations back into the terrain engine and
	// apply blast impulses to nearby entities. The impulse scans run on the
	// same regioned schedule as the entity tick when the batch partitions
	// (their collision counts accumulate into the store's counters and are
	// attributed to the next tick, exactly as the serial per-center loop
	// always did).
	if centers := s.ents.DrainExplosions(); len(centers) > 0 {
		_, delta := s.engine.MergedExplosions(centers, sim.ExplosionRadius)
		counts.sim = counts.sim.Add(delta)
		s.ents.ApplyExplosionImpulses(centers, sim.ExplosionRadius)
	}

	// Phase 4: dissemination through the outgoing networking queues.
	s.disseminate(&counts)

	// Upkeep accounting.
	gen, _, _ := s.w.Stats()
	counts.chunksGenerated = gen - s.lastGen
	s.lastGen = gen
	counts.chunksLoaded = s.w.ChunkCount()

	// Convert work to tick duration.
	work := s.cfg.Sim.Costs.Work(counts, s.cfg.Flavor)
	var dur time.Duration
	if s.machine != nil {
		dur = s.machine.TickComputeTime(work)
	} else {
		dur = time.Since(wallStart)
	}
	waitBefore := dur/100 + 100*time.Microsecond

	// Advance past the busy time; then wait out the remainder of the tick
	// budget, if any.
	s.clock.Sleep(waitBefore + dur)
	var waitAfter time.Duration
	if busy := waitBefore + dur; busy < TickBudget {
		waitAfter = TickBudget - busy
		s.clock.Sleep(waitAfter)
	}

	// Chat round trips processed on the tick path become visible when the
	// tick's output flush happens.
	readyAt := start.Add(waitBefore + dur)

	s.mu.Lock()
	for i := range s.pendingChat {
		s.pendingChat[i].ReadyAt = readyAt
	}
	s.chatEchoes = append(s.chatEchoes, s.pendingChat...)
	s.pendingChat = nil

	// Client starvation: a tick longer than the client timeout drops every
	// connection; the MLG cannot recover and stops (Lag-on-AWS, §5.3).
	crashed := false
	if s.cfg.Net.ClientTimeout > 0 && waitBefore+dur > s.cfg.Net.ClientTimeout && len(s.players) > 0 {
		s.crashed = true
		s.crashReason = fmt.Sprintf("tick %d lasted %v > client timeout %v: all player connections timed out",
			s.tick, waitBefore+dur, s.cfg.Net.ClientTimeout)
		crashed = true
		for _, pid := range append([]int64(nil), s.order...) {
			s.removeLocked(pid)
		}
	}

	// Figure 11 accumulation: scale category microseconds to the realized
	// busy duration so shares are consistent with the recorded tick times.
	total := work.TotalUS()
	if total > 0 {
		scale := float64(dur) / float64(time.Microsecond) / total
		s.fig11.PlayerUS += work.PlayerUS * scale
		s.fig11.BlockUpdateUS += work.BlockUpdateUS * scale
		s.fig11.BlockAddRemoveUS += work.BlockAddRemoveUS * scale
		s.fig11.EntityUS += work.EntityUS * scale
		s.fig11.OtherUS += work.OtherUS() * scale
	}
	s.fig11.WaitBeforeUS += float64(waitBefore) / float64(time.Microsecond)
	s.fig11.WaitAfterUS += float64(waitAfter) / float64(time.Microsecond)

	ps := s.engine.ParallelStats()
	es := s.ents.ParallelStats()
	rec := TickRecord{
		Tick:        s.tick,
		Start:       start,
		Dur:         dur,
		WaitBefore:  waitBefore,
		WaitAfter:   waitAfter,
		Work:        work,
		Players:     len(s.players),
		Entities:    s.ents.Count(),
		Backlog:     counts.sim.Backlog,
		Crashed:     crashed,
		Sim:         counts.sim,
		Ent:         counts.ent,
		SimRegions:  ps.LastRegions,
		SimParallel: ps.LastParallel,
		EntRegions:  es.LastRegions,
		EntParallel: es.LastParallel,

		NetDrops:       counts.netDrops,
		NetKeyframes:   counts.netKeyframes,
		NetQueuedBytes: counts.netQueuedBytes,
	}
	s.records = append(s.records, rec)
	s.mu.Unlock()

	// Tick tail: the after-tick hook and the snapshot cadence point run here
	// — between ticks from every driver's perspective (Run, the benchmark
	// runners, and the scenario harness all call Tick in a loop), so
	// periodic work needing a quiescent server no longer depends on which
	// loop drives the server.
	if s.afterTick != nil {
		s.afterTick(rec)
	}
	if s.snap != nil {
		s.snap.MaybeSnapshot(rec.Tick)
	}
	return rec
}

// chunkWithinView reports whether chunk c lies inside the square view area
// of radius vd (in chunks) around a player standing in chunk pc — the
// interest predicate shared by dissemination accounting and real sends.
func chunkWithinView(c, pc world.ChunkPos, vd int32) bool {
	dx, dz := c.X-pc.X, c.Z-pc.Z
	if dx < 0 {
		dx = -dx
	}
	if dz < 0 {
		dz = -dz
	}
	return dx <= vd && dz <= vd
}

// playerPositions snapshots player positions for the entity phase.
func (s *Server) playerPositions() []entity.Vec3 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]entity.Vec3, 0, len(s.order))
	for _, pid := range s.order {
		out = append(out, s.players[pid].Pos)
	}
	return out
}

// processInbox drains the incoming queue entries that arrived before the
// tick start and applies them via the player handler. The inbox is
// partitioned stably and allocation-free: not-yet-due entries compact in
// place into the inbox's own backing array (the write cursor never passes
// the read cursor), due entries land in a scratch slice reused across
// ticks.
func (s *Server) processInbox(counts *tickCounts, tickStart time.Time) {
	s.mu.Lock()
	due := s.inboxDue[:0]
	later := s.inbox[:0]
	for _, in := range s.inbox {
		if in.arrival.After(tickStart) {
			later = append(later, in)
		} else {
			due = append(due, in)
		}
	}
	s.inbox = later
	s.inboxDue = due
	s.mu.Unlock()

	for _, in := range due {
		s.handlePacket(in, counts)
	}
}

// handlePacket applies one client message.
func (s *Server) handlePacket(in inbound, counts *tickCounts) {
	s.mu.Lock()
	p := s.players[in.playerID]
	s.mu.Unlock()
	if p == nil {
		return
	}
	switch pkt := in.pkt.(type) {
	case *protocol.PlayerMove:
		counts.playerMoves++
		target := entity.Vec3{X: pkt.X, Y: pkt.Y, Z: pkt.Z}
		// Validate against terrain: reject moves into solid blocks.
		bp := target.BlockPos()
		feet, _ := s.w.BlockIfLoaded(bp)
		head, _ := s.w.BlockIfLoaded(bp.Up())
		if !feet.IsSolid() && !head.IsSolid() {
			p.Pos = target
		}
	case *protocol.PlayerAction:
		counts.playerActions++
		pos := world.Pos{X: int(pkt.X), Y: int(pkt.Y), Z: int(pkt.Z)}
		switch pkt.Action {
		case protocol.ActionDig:
			s.w.SetBlock(pos, world.B(world.Air))
		case protocol.ActionPlace:
			s.w.SetBlock(pos, world.B(world.BlockID(pkt.BlockID)))
		}
	case *protocol.Chat:
		// Socket-backed players receive the chat fan-out immediately after
		// handling (the virtual path accounts it without materializing).
		defer s.BroadcastChat(pkt)
		if s.cfg.Flavor.AsyncChat {
			// Paper: chat never touches the game tick; the echo is ready a
			// fixed async-processing delay after arrival.
			delay := time.Duration(s.cfg.Sim.Costs.AsyncChatUS) * time.Microsecond
			s.mu.Lock()
			s.chatEchoes = append(s.chatEchoes, ChatEcho{
				PlayerID: in.playerID, SentUnixNano: pkt.SentUnixNano,
				ReadyAt: in.arrival.Add(delay),
			})
			s.mu.Unlock()
		} else {
			counts.chats++
			s.mu.Lock()
			s.pendingChat = append(s.pendingChat, ChatEcho{
				PlayerID: in.playerID, SentUnixNano: pkt.SentUnixNano,
			})
			s.mu.Unlock()
		}
	case *protocol.KeepAlive:
		// Client keep-alive echo; nothing to do.
	}
}

// disseminate accounts (and, for real connections, sends) this tick's state
// updates: terrain changes, entity updates, chats, chunk-join bursts,
// keep-alives.
func (s *Server) disseminate(counts *tickCounts) {
	s.mu.Lock()
	bc := s.blockChanges
	nBC := s.blockChangeCount
	s.blockChanges = nil
	s.blockChangeCount = 0
	nPlayers := len(s.order)
	players := make([]*Player, 0, nPlayers)
	for _, pid := range s.order {
		players = append(players, s.players[pid])
	}
	s.mu.Unlock()

	addMsgs := func(n int, size int, entityRelated bool) {
		if n <= 0 {
			return
		}
		counts.msgsOut += n
		counts.bytesOut += int64(n) * int64(size)
		s.mu.Lock()
		s.net.Msgs += int64(n)
		s.net.Bytes += int64(n) * int64(size)
		if entityRelated {
			s.net.EntityMsgs += int64(n)
			s.net.EntityBytes += int64(n) * int64(size)
		}
		s.mu.Unlock()
	}

	// Terrain updates go to every player (workload areas sit inside view
	// distance in all benchmark worlds). The count is maintained even when
	// the per-block packet buffering is elided (virtual-only servers), so
	// accounting is identical either way.
	addMsgs(nBC*nPlayers, s.sizes.blockChange, false)

	// Entity updates: delta-encoded movements, spawns, removals, fanned out
	// through per-player interest sets derived from the chunk grid — a
	// chunk's updates reach only the players whose view distance covers it,
	// not every connected player.
	if updates := s.ents.DrainChunkUpdates(); len(updates) > 0 {
		playerChunks := make([]world.ChunkPos, nPlayers)
		for i, p := range players {
			playerChunks[i] = world.ChunkPosAt(p.Pos.BlockPos())
		}
		vd := int32(s.cfg.Net.ViewDistance)
		var moved, spawned, despawned int
		for _, u := range updates {
			interested := 0
			for i, pc := range playerChunks {
				if chunkWithinView(u.Pos, pc, vd) {
					interested++
					if s.deliverHook != nil {
						s.deliverHook(players[i].ID, u.Pos)
					}
				}
			}
			moved += u.Moved * interested
			spawned += u.Spawned * interested
			despawned += u.Despawned * interested
		}
		addMsgs(moved, s.sizes.entityMoveRel, true)
		addMsgs(spawned, s.sizes.spawn, true)
		addMsgs(despawned, s.sizes.destroy, true)
	}

	// Chat fan-out.
	addMsgs(counts.chats*nPlayers, s.sizes.chat, false)

	// Tick time update plus the background world stream (terrain/light
	// refreshes) every player continuously receives — few messages, many
	// bytes, the Table 8 "communication" counterweight.
	addMsgs(nPlayers, s.sizes.timeUpdate, false)
	addMsgs(nPlayers, s.sizes.worldStream, false)

	// Keep-alives.
	if s.cfg.Net.KeepAliveEvery > 0 {
		every := int64(s.cfg.Net.KeepAliveEvery / TickBudget)
		if every < 1 {
			every = 1
		}
		if s.tick%every == 0 {
			addMsgs(nPlayers, s.sizes.keepAlive, false)
		}
	}

	// Join bursts: chunk data owed to newly connected players, throttled to
	// a per-tick budget per player (real servers pace chunk streaming). On a
	// real connection the chunks only stop being owed once the batch is
	// accepted by the writer queue: a backlogged peer keeps its chunks
	// pending (owed-chunk resend next tick), a faulted peer is reaped below.
	const chunkSendBudget = 40
	var dead []int64
	for _, p := range players {
		n := len(p.pendingChunks)
		if n == 0 {
			continue
		}
		if n > chunkSendBudget {
			n = chunkSendBudget
		}
		batch := p.pendingChunks[:n]
		if p.conn != nil {
			switch err := s.sendChunkBatch(p, batch); {
			case err == nil:
			case errors.Is(err, protocol.ErrBacklog):
				counts.netDrops++
				continue // chunks stay owed; retry next tick
			default:
				dead = append(dead, p.ID)
				continue
			}
		}
		counts.chunksSent += n
		addMsgs(n, s.sizes.chunkData, false)
		p.pendingChunks = p.pendingChunks[n:]
	}

	// Real connections additionally receive materialized packets.
	dead = append(dead, s.sendReal(players, bc, counts)...)

	// Sample the queue-depth gauge and reap faulted peers. Disconnect closes
	// the connection, which reclaims every batch its writer still holds.
	reaped := make(map[int64]bool, len(dead))
	for _, p := range players {
		if p.conn != nil {
			_, qb := p.conn.WriterQueueDepth()
			counts.netQueuedBytes += qb
		}
	}
	for _, id := range dead {
		if reaped[id] {
			continue
		}
		reaped[id] = true
		s.Disconnect(id)
	}

	s.mu.Lock()
	s.out.DroppedBatches += int64(counts.netDrops)
	s.out.Keyframes += int64(counts.netKeyframes)
	s.out.WriteDisconnects += int64(len(reaped))
	s.mu.Unlock()
}
