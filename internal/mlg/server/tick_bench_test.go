package server_test

// Per-workload tick benchmarks: the regression harness for engine-level
// optimizations. Each sub-benchmark builds one of the paper's workload
// scenarios at production entity/player scale, then measures a fixed window
// of game ticks through the storm, so ns/op tracks the real per-tick compute
// cost of that workload. Setup runs off the timer; every iteration gets a
// fresh, deterministic server.
//
// These run in CI with -benchtime=1x as a smoke test; locally, use e.g.
//
//	go test -bench=BenchmarkTick -benchtime=3x ./internal/mlg/server
//
// to compare before/after an engine change.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/entity"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/workload"
)

// measuredTicks is the per-iteration measurement window: long enough to
// cover a redstone period, spawner period and several explosion waves.
const measuredTicks = 60

func benchClock() *env.VirtualClock {
	return env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
}

func newBenchServer(f server.Flavor, w *world.World) *server.Server {
	return newBenchServerWorkers(f, w, 1)
}

// newBenchServerWorkers pins the terrain-simulation drain parallelism: the
// serial benchmarks stay at 1 so engine-level optimizations keep a fixed
// baseline, and the SimWorkers sweep (BenchmarkTickParallel) varies it.
func newBenchServerWorkers(f server.Flavor, w *world.World, simWorkers int) *server.Server {
	m := env.NewMachine(env.DAS5SixteenCore, 1)
	cfg := server.DefaultConfig(f)
	cfg.Sim.Workers = simWorkers
	return server.New(w, cfg, m, benchClock())
}

// setupWorkload installs a paper workload, connects players and warms the
// world until its constructs settle.
func setupWorkload(b *testing.B, k workload.Kind, f server.Flavor, players, warmTicks int) *server.Server {
	b.Helper()
	s := newBenchServer(f, workload.NewWorld(k, world.PaperControlSeed))
	spec := k.DefaultSpec()
	if err := workload.Install(s, spec); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < players; i++ {
		s.Connect("bench")
	}
	for i := 0; i < warmTicks; i++ {
		s.Tick()
	}
	return s
}

// setupTNTStorm ignites the TNT cuboid and advances into the chain reaction
// so the measured window covers peak entity population.
func setupTNTStorm(b *testing.B) *server.Server {
	b.Helper()
	s := newBenchServer(server.Vanilla, workload.NewWorld(workload.TNT, world.PaperControlSeed))
	spec := workload.TNT.DefaultSpec()
	spec.IgniteAfterTicks = 2
	if err := workload.Install(s, spec); err != nil {
		b.Fatal(err)
	}
	s.Connect("bench")
	workload.Arm(s, spec)
	// Run into the cascade until the entity population is at paper scale.
	for i := 0; i < 400 && s.EntityWorld().Count() < 1500; i++ {
		s.Tick()
	}
	return s
}

// setupPlayers builds the §3.4.1 player-based workload scaled to production
// counts: 200 players clustered on a 320x320 region of a 640x640 noise map
// whose entity population is spread across the whole map, as natural
// spawning leaves it — most entities are outside every player's activation
// range. Paper flavor, so the activation-range path is on the hot path.
func setupPlayers(b *testing.B) *server.Server {
	b.Helper()
	w := workload.NewWorld(workload.Players, world.PaperControlSeed)
	s := newBenchServer(server.Paper, w)
	w.EnsureArea(world.Pos{X: 320, Y: 0, Z: 320}, 21)
	const nPlayers = 200
	for i := 0; i < nPlayers; i++ {
		p := s.Connect("bench")
		px := float64(160 + (i%15)*21)
		pz := float64(160 + (i/15)*21)
		p.Pos = entity.Vec3{X: px, Y: float64(w.HighestSolidY(int(px), int(pz)) + 1), Z: pz}
	}
	// A paper-scale entity population scattered across the full map.
	ew := s.EntityWorld()
	for i := 0; i < 2900; i++ {
		x, z := 4+(i%90)*7, 4+(i/90)*7
		ew.SpawnItem(world.Pos{X: x, Y: w.HighestSolidY(x, z) + 1, Z: z}, world.Gravel)
	}
	for i := 0; i < 20; i++ {
		s.Tick()
	}
	return s
}

// setupScaledWorkload builds a construct workload at the given scale and
// drain parallelism, warmed until its constructs settle. Scale >= 2 lays
// out that many separated construct clusters (independent simulation
// regions), which is what the SimWorkers sweep parallelizes over.
func setupScaledWorkload(b *testing.B, k workload.Kind, scale, simWorkers, players, warmTicks int) *server.Server {
	b.Helper()
	s := newBenchServerWorkers(server.Vanilla, workload.NewWorld(k, world.PaperControlSeed), simWorkers)
	spec := k.DefaultSpec()
	spec.Scale = scale
	if k == workload.TNT {
		spec.IgniteAfterTicks = 2
	}
	if err := workload.Install(s, spec); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < players; i++ {
		s.Connect("bench")
	}
	if k == workload.TNT {
		workload.Arm(s, spec)
		for i := 0; i < 400 && s.EntityWorld().Count() < 1500*scale; i++ {
			s.Tick()
		}
		return s
	}
	for i := 0; i < warmTicks; i++ {
		s.Tick()
	}
	return s
}

// BenchmarkTickParallel is the SimWorkers sweep over the scale>=2 construct
// workloads — the serial-vs-parallel tick benchmark recorded in
// BENCH_4.json. The workers=1 runs are the legacy serial drain; speedup at
// workers=N requires >= N available cores and >= N construct clusters
// (regions), so interpret the sweep together with the host's GOMAXPROCS
// (the -cpu suffix in the raw output).
func BenchmarkTickParallel(b *testing.B) {
	scenarios := []struct {
		name  string
		kind  workload.Kind
		scale int
		warm  int
	}{
		{"Lag2", workload.Lag, 2, 100},
		{"Farm4", workload.Farm, 4, 300},
		{"TNT2", workload.TNT, 2, 0},
	}
	for _, sc := range scenarios {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers%d", sc.name, workers), func(b *testing.B) {
				var regions int
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s := setupScaledWorkload(b, sc.kind, sc.scale, workers, 1, sc.warm)
					// Collect setup garbage so the measured window starts
					// from a reproducible heap: without this, GC debt
					// inherited from whichever benchmark ran before skews
					// single-sample (-benchtime=1x) runs by tens of percent,
					// which the CI perf gate would misread as a regression.
					runtime.GC()
					b.StartTimer()
					for t := 0; t < measuredTicks; t++ {
						rec := s.Tick()
						if rec.SimRegions > regions {
							regions = rec.SimRegions
						}
					}
				}
				b.ReportMetric(float64(regions), "regions")
			})
		}
	}
}

// BenchmarkTick measures one game tick per workload at paper scale.
func BenchmarkTick(b *testing.B) {
	scenarios := []struct {
		name  string
		setup func(b *testing.B) *server.Server
	}{
		{"Control", func(b *testing.B) *server.Server {
			return setupWorkload(b, workload.Control, server.Vanilla, 1, 20)
		}},
		{"Farm", func(b *testing.B) *server.Server {
			return setupWorkload(b, workload.Farm, server.Vanilla, 5, 300)
		}},
		{"TNT", setupTNTStorm},
		{"Lag", func(b *testing.B) *server.Server {
			return setupWorkload(b, workload.Lag, server.Vanilla, 1, 100)
		}},
		{"Players", setupPlayers},
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			var entities, players int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := sc.setup(b)
				entities, players = s.EntityWorld().Count(), s.PlayerCount()
				runtime.GC() // reproducible heap (see BenchmarkTickParallel)
				b.StartTimer()
				for t := 0; t < measuredTicks; t++ {
					s.Tick()
				}
			}
			b.ReportMetric(float64(entities), "entities")
			b.ReportMetric(float64(players), "players")
		})
	}
}
