package server

import (
	"net"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/entity"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

func testClock() *env.VirtualClock {
	return env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
}

func newTestServer(t *testing.T, f Flavor) (*Server, *env.VirtualClock) {
	t.Helper()
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	clock := testClock()
	m := env.NewMachine(env.DAS5TwoCore, 7)
	cfg := DefaultConfig(f)
	s := New(w, cfg, m, clock)
	return s, clock
}

func TestFlavorByName(t *testing.T) {
	for _, name := range []string{"Minecraft", "Vanilla", "Forge", "PaperMC", "Paper"} {
		if _, err := FlavorByName(name); err != nil {
			t.Errorf("FlavorByName(%q): %v", name, err)
		}
	}
	if _, err := FlavorByName("Bukkit"); err == nil {
		t.Error("expected error for unknown flavor")
	}
	if got, _ := FlavorByName("Paper"); !got.AsyncChat || got.ActivationRange == 0 {
		t.Error("Paper flavor not configured with its optimizations")
	}
	if got, _ := FlavorByName("Forge"); got.EventOverhead <= 1.0 {
		t.Error("Forge must have event overhead > 1")
	}
	if len(Flavors()) != 3 {
		t.Error("Flavors() must return 3 systems under test")
	}
}

func TestFlavorDerivedConfigs(t *testing.T) {
	sc := Paper.SimConfig()
	if !sc.RedstoneBatch || !sc.ExplosionMerge {
		t.Error("Paper sim config missing optimizations")
	}
	ec := Paper.EntityConfig()
	if ec.ActivationRange != 32 {
		t.Error("Paper entity config missing activation range")
	}
	if Vanilla.SimConfig().RedstoneBatch {
		t.Error("Vanilla sim config must not batch redstone")
	}
}

func TestConnectLoadsChunksAndSendsJoinBurst(t *testing.T) {
	s, _ := newTestServer(t, Vanilla)
	p := s.Connect("alice")
	if p == nil || p.ID == 0 {
		t.Fatal("connect failed")
	}
	if s.PlayerCount() != 1 {
		t.Fatal("player count wrong")
	}
	wantChunks := (2*5 + 1) * (2*5 + 1)
	if s.World().ChunkCount() < wantChunks {
		t.Fatalf("view area not loaded: %d chunks", s.World().ChunkCount())
	}
	rec := s.Tick()
	// The join tick must carry the chunk-send burst: network work present
	// and a duration spike versus steady state.
	if rec.Work.NetworkUS <= 0 {
		t.Fatal("join tick has no network work")
	}
	var steady TickRecord
	for i := 0; i < 10; i++ {
		steady = s.Tick()
	}
	if rec.Dur <= steady.Dur {
		t.Fatalf("join tick (%v) not slower than steady tick (%v)", rec.Dur, steady.Dur)
	}
}

func TestTickAdvancesVirtualClock(t *testing.T) {
	s, clock := newTestServer(t, Vanilla)
	s.Connect("alice")
	start := clock.Now()
	rec := s.Tick()
	elapsed := clock.Now().Sub(start)
	// The clock advances by at least the tick budget (fast ticks wait out
	// the remainder) and exactly by busy + waitAfter.
	if elapsed < TickBudget {
		t.Fatalf("clock advanced %v, want >= %v", elapsed, TickBudget)
	}
	want := rec.Dur + rec.WaitBefore + rec.WaitAfter
	if elapsed != want {
		t.Fatalf("clock advanced %v, want %v", elapsed, want)
	}
}

func TestOverloadedTickSkipsWait(t *testing.T) {
	// A huge synthetic workload must produce Dur > budget and WaitAfter 0.
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	clock := testClock()
	m := env.NewMachine(env.DAS5TwoCore, 7)
	cfg := DefaultConfig(Vanilla)
	s := New(w, cfg, m, clock)
	s.Connect("alice")
	// A wall of TNT ignited at once overloads the tick.
	for x := 0; x < 12; x++ {
		for z := 0; z < 12; z++ {
			for y := 12; y < 20; y++ {
				w.SetBlock(world.Pos{X: x, Y: y, Z: z}, world.B(world.TNT))
			}
		}
	}
	s.Engine().ScheduleIgnite(world.Pos{X: 5, Y: 14, Z: 5}, 2)
	overloaded := false
	for i := 0; i < 400; i++ {
		rec := s.Tick()
		if rec.Dur > TickBudget {
			overloaded = true
			if rec.WaitAfter != 0 {
				t.Fatalf("overloaded tick still waited %v", rec.WaitAfter)
			}
		}
	}
	if !overloaded {
		t.Fatal("TNT wall never overloaded the server")
	}
}

func TestSyncChatEchoReadyAtTickEnd(t *testing.T) {
	s, clock := newTestServer(t, Vanilla)
	p := s.Connect("alice")
	s.Tick() // absorb join burst

	sent := clock.Now()
	s.Enqueue(p.ID, &protocol.Chat{Sender: "alice", Text: "probe", SentUnixNano: sent.UnixNano()}, sent)
	rec := s.Tick()
	echoes := s.DrainChatEchoes()
	if len(echoes) != 1 {
		t.Fatalf("echoes = %d, want 1", len(echoes))
	}
	e := echoes[0]
	if e.PlayerID != p.ID || e.SentUnixNano != sent.UnixNano() {
		t.Fatalf("echo fields wrong: %+v", e)
	}
	wantReady := rec.Start.Add(rec.WaitBefore + rec.Dur)
	if !e.ReadyAt.Equal(wantReady) {
		t.Fatalf("ReadyAt = %v, want tick flush %v", e.ReadyAt, wantReady)
	}
	if !e.ReadyAt.After(sent) {
		t.Fatal("echo ready before it was sent")
	}
}

func TestAsyncChatBypassesTick(t *testing.T) {
	s, clock := newTestServer(t, Paper)
	p := s.Connect("alice")
	s.Tick()

	sent := clock.Now()
	s.Enqueue(p.ID, &protocol.Chat{Sender: "alice", Text: "probe", SentUnixNano: sent.UnixNano()}, sent)
	s.Tick()
	echoes := s.DrainChatEchoes()
	if len(echoes) != 1 {
		t.Fatalf("echoes = %d, want 1", len(echoes))
	}
	// Paper's async chat completes a fixed small delay after arrival,
	// independent of the tick flush.
	gap := echoes[0].ReadyAt.Sub(sent)
	if gap <= 0 || gap > 5*time.Millisecond {
		t.Fatalf("async chat delay = %v, want small positive", gap)
	}
}

func TestPlayerMoveValidation(t *testing.T) {
	s, clock := newTestServer(t, Vanilla)
	p := s.Connect("alice")
	s.Tick()

	// Legal move.
	s.Enqueue(p.ID, &protocol.PlayerMove{X: 10.5, Y: 11, Z: 10.5}, clock.Now())
	s.Tick()
	if p.Pos.X != 10.5 {
		t.Fatalf("legal move rejected: %+v", p.Pos)
	}
	// Move into solid ground must be rejected.
	s.Enqueue(p.ID, &protocol.PlayerMove{X: 12.5, Y: 5, Z: 12.5}, clock.Now())
	s.Tick()
	if p.Pos.Y == 5 {
		t.Fatal("move into solid terrain accepted")
	}
}

func TestPlayerDigAndPlace(t *testing.T) {
	s, clock := newTestServer(t, Vanilla)
	p := s.Connect("alice")
	s.Tick()

	target := world.Pos{X: 3, Y: 10, Z: 3}
	s.Enqueue(p.ID, &protocol.PlayerAction{Action: protocol.ActionDig,
		X: int32(target.X), Y: int32(target.Y), Z: int32(target.Z)}, clock.Now())
	before := s.NetTotals()
	s.Tick()
	if got := s.World().Block(target); !got.IsAir() {
		t.Fatalf("dig failed: %v", got.ID)
	}
	after := s.NetTotals()
	if after.Msgs <= before.Msgs {
		t.Fatal("dig produced no state-update messages")
	}

	s.Enqueue(p.ID, &protocol.PlayerAction{Action: protocol.ActionPlace,
		X: int32(target.X), Y: int32(target.Y), Z: int32(target.Z),
		BlockID: uint8(world.TNT)}, clock.Now())
	s.Tick()
	if got := s.World().Block(target); got.ID != world.TNT {
		t.Fatalf("place failed: %v", got.ID)
	}
}

func TestTNTExplosionRoutedThroughTick(t *testing.T) {
	s, _ := newTestServer(t, Vanilla)
	s.Connect("alice")
	s.Tick()
	// Prime TNT directly with a short fuse.
	s.EntityWorld().SpawnPrimedTNT(world.Pos{X: 8, Y: 12, Z: 8}, 3)
	var sawExplosionWork bool
	for i := 0; i < 10; i++ {
		rec := s.Tick()
		if rec.Work.BlockAddRemoveUS > 0 && rec.Work.BlockUpdateUS > 0 {
			sawExplosionWork = true
		}
	}
	if !sawExplosionWork {
		t.Fatal("explosion work never appeared in tick records")
	}
	// The crater must exist.
	if got := s.World().Block(world.Pos{X: 8, Y: 10, Z: 8}); !got.IsAir() {
		t.Fatal("no crater at explosion site")
	}
}

func TestClientTimeoutCrash(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	clock := testClock()
	m := env.NewMachine(env.DAS5TwoCore, 7)
	cfg := DefaultConfig(Vanilla)
	cfg.Net.ClientTimeout = time.Microsecond // everything times out
	s := New(w, cfg, m, clock)
	s.Connect("alice")
	rec := s.Tick()
	if !rec.Crashed {
		t.Fatal("tick not marked crashed")
	}
	crashed, reason := s.Crashed()
	if !crashed || reason == "" {
		t.Fatal("server not crashed")
	}
	if s.PlayerCount() != 0 {
		t.Fatal("players not dropped on crash")
	}
}

func TestNoCrashWithoutPlayers(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	clock := testClock()
	m := env.NewMachine(env.DAS5TwoCore, 7)
	cfg := DefaultConfig(Vanilla)
	cfg.Net.ClientTimeout = time.Microsecond
	s := New(w, cfg, m, clock)
	if rec := s.Tick(); rec.Crashed {
		t.Fatal("crash without connected players")
	}
}

func TestFig11TotalsAccumulate(t *testing.T) {
	s, _ := newTestServer(t, Vanilla)
	s.Connect("alice")
	for i := 0; i < 50; i++ {
		s.Tick()
	}
	f := s.Fig11()
	if f.OtherUS <= 0 {
		t.Error("no Other time accumulated")
	}
	if f.WaitAfterUS <= 0 {
		t.Error("no WaitAfter accumulated (server should be idle-ish)")
	}
	if f.WaitBeforeUS <= 0 {
		t.Error("no WaitBefore accumulated")
	}
}

func TestEntityMessagesDominateCount(t *testing.T) {
	// Table 8 shape: with mobs active, entity messages dominate message
	// count but not byte count (chunk joins dominate bytes).
	s, clock := newTestServer(t, Vanilla)
	p := s.Connect("alice")
	for i := 0; i < 20; i++ {
		s.EntityWorld().SpawnMob(world.Pos{X: 30 + i, Y: 11, Z: 30})
	}
	for i := 0; i < 200; i++ {
		if i%40 == 0 {
			s.Enqueue(p.ID, &protocol.PlayerMove{X: 8.5, Y: 11, Z: 8.5}, clock.Now())
		}
		s.Tick()
	}
	n := s.NetTotals()
	if n.EntityMsgs == 0 {
		t.Fatal("no entity messages")
	}
	msgFrac := float64(n.EntityMsgs) / float64(n.Msgs)
	byteFrac := float64(n.EntityBytes) / float64(n.Bytes)
	if msgFrac < 0.5 {
		t.Errorf("entity message fraction %v, want > 0.5", msgFrac)
	}
	if byteFrac >= msgFrac {
		t.Errorf("entity byte fraction %v should be well below message fraction %v", byteFrac, msgFrac)
	}
}

func TestRecordsAndTrace(t *testing.T) {
	s, _ := newTestServer(t, Vanilla)
	for i := 0; i < 10; i++ {
		s.Tick()
	}
	if s.TickNumber() != 10 {
		t.Fatalf("tick number = %d", s.TickNumber())
	}
	if len(s.Records()) != 10 || len(s.TickDurations()) != 10 {
		t.Fatal("records/trace length wrong")
	}
	for _, d := range s.TickDurations() {
		if d <= 0 {
			t.Fatal("non-positive tick duration")
		}
	}
}

func TestWallClockModeMeasuresRealTime(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig(Vanilla)
	s := New(w, cfg, nil, env.RealClock{}) // no machine: wall-clock mode
	s.Connect("alice")
	start := time.Now()
	rec := s.Tick()
	if rec.Dur <= 0 {
		t.Fatal("wall-clock tick duration not measured")
	}
	if time.Since(start) < TickBudget/2 {
		t.Fatal("real clock did not wait out the budget")
	}
}

func TestRealTCPSession(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig(Vanilla)
	s := New(w, cfg, nil, env.RealClock{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer func() { s.Stop(); ln.Close() }()

	conn, err := protocol.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.WritePacket(&protocol.Handshake{Version: protocol.ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.WritePacket(&protocol.Login{Name: "it-bot"}); err != nil {
		t.Fatal(err)
	}
	pkt, _, err := conn.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	ls, ok := pkt.(*protocol.LoginSuccess)
	if !ok {
		t.Fatalf("expected LoginSuccess, got %T", pkt)
	}
	if ls.PlayerID == 0 {
		t.Fatal("no player id assigned")
	}

	// Send a chat probe, run ticks, expect chunk data and the echo.
	sent := time.Now()
	if _, err := conn.WritePacket(&protocol.Chat{Sender: "it-bot", Text: "ping", SentUnixNano: sent.UnixNano()}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 20; i++ {
			s.Tick()
		}
	}()

	sawChunk, sawChat := false, false
	deadline := time.After(5 * time.Second)
	for !(sawChunk && sawChat) {
		select {
		case <-deadline:
			t.Fatalf("timed out: chunk=%v chat=%v", sawChunk, sawChat)
		default:
		}
		pkt, _, err := conn.ReadPacket()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		switch q := pkt.(type) {
		case *protocol.ChunkData:
			sawChunk = true
			if len(q.Data) == 0 {
				t.Fatal("empty chunk payload")
			}
		case *protocol.Chat:
			sawChat = true
			if q.SentUnixNano != sent.UnixNano() {
				t.Fatal("chat echo timestamp mangled")
			}
		}
	}
}

// TestRealSessionUntracksOutOfViewEntities: when a TCP player's view no
// longer covers an entity's chunk, the server must send a destroy for it
// rather than silently stopping its movement stream (which would leave a
// stale ghost on the client).
func TestRealSessionUntracksOutOfViewEntities(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	s := New(w, DefaultConfig(Vanilla), nil, env.RealClock{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer func() { s.Stop(); ln.Close() }()

	conn, err := protocol.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.WritePacket(&protocol.Handshake{Version: protocol.ProtocolVersion})
	conn.WritePacket(&protocol.Login{Name: "ghost-bot"})
	if _, _, err := conn.ReadPacket(); err != nil { // LoginSuccess
		t.Fatal(err)
	}

	s.EntityWorld().SpawnMob(world.Pos{X: 10, Y: 11, Z: 10})
	var mobID int32
	s.EntityWorld().Entities(func(e *entity.Entity) { mobID = int32(e.ID) })
	s.Tick() // streams the in-view mob

	// Teleport far outside view distance; the next tick must untrack.
	sent := time.Now()
	conn.WritePacket(&protocol.PlayerMove{X: 500.5, Y: 11, Z: 500.5})
	go func() {
		for i := 0; i < 20; i++ {
			s.Tick()
		}
	}()

	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatalf("no DestroyEntity for out-of-view mob %d after %v", mobID, time.Since(sent))
		default:
		}
		pkt, _, err := conn.ReadPacket()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if d, ok := pkt.(*protocol.DestroyEntity); ok && d.EntityID == mobID {
			return // untracked, as required
		}
	}
}

func TestHandshakeRejection(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	s := New(w, DefaultConfig(Vanilla), nil, env.RealClock{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer func() { s.Stop(); ln.Close() }()

	conn, err := protocol.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.WritePacket(&protocol.Handshake{Version: 999})
	pkt, _, err := conn.ReadPacket()
	if err != nil {
		return // connection closed: acceptable rejection
	}
	if _, ok := pkt.(*protocol.Disconnect); !ok {
		t.Fatalf("expected Disconnect, got %T", pkt)
	}
}

func TestChunkWithinView(t *testing.T) {
	pc := world.ChunkPos{X: 3, Z: -2}
	cases := []struct {
		c    world.ChunkPos
		vd   int32
		want bool
	}{
		{world.ChunkPos{X: 3, Z: -2}, 5, true},
		{world.ChunkPos{X: 8, Z: 3}, 5, true},   // corner of the view square
		{world.ChunkPos{X: 9, Z: -2}, 5, false}, // one past the edge
		{world.ChunkPos{X: -2, Z: -7}, 5, true},
		{world.ChunkPos{X: 3, Z: 4}, 5, false},
		{world.ChunkPos{X: 3, Z: -2}, 0, true},
	}
	for _, tc := range cases {
		if got := chunkWithinView(tc.c, pc, tc.vd); got != tc.want {
			t.Errorf("chunkWithinView(%v, %v, %d) = %v, want %v", tc.c, pc, tc.vd, got, tc.want)
		}
	}
}

// TestInterestManagedEntityBroadcast: entity state updates from chunks
// outside every player's view distance must not be accounted as outbound
// messages. Two identical servers differ only in where their mob herd
// lives: on a platform right next to the single player, or far outside
// their view. The world is void (no ambient spawning is possible), so the
// far run must produce exactly zero entity traffic.
func TestInterestManagedEntityBroadcast(t *testing.T) {
	run := func(mobBase int) int64 {
		w := world.New(nil) // void: no ground, no ambient spawns
		s := New(w, DefaultConfig(Vanilla), env.NewMachine(env.DAS5TwoCore, 7), testClock())
		s.Connect("alice")
		s.Tick() // absorb the join burst
		// A platform for the herd to wander on.
		for x := 0; x < 16; x++ {
			for z := 0; z < 16; z++ {
				w.SetBlock(world.Pos{X: mobBase + x, Y: 10, Z: mobBase + z}, world.B(world.Stone))
			}
		}
		for i := 0; i < 20; i++ {
			s.EntityWorld().SpawnMob(world.Pos{X: mobBase + 5 + i%5, Y: 11, Z: mobBase + 5 + i/5})
		}
		before := s.NetTotals().EntityMsgs
		for i := 0; i < 60; i++ {
			s.Tick()
		}
		return s.NetTotals().EntityMsgs - before
	}
	near := run(24)  // chunks 1-2: inside view distance 5 of the spawn chunk
	far := run(2000) // chunk 125+: far outside
	if near == 0 {
		t.Fatal("near herd produced no entity messages")
	}
	if far != 0 {
		t.Fatalf("far herd leaked %d entity messages past the interest sets", far)
	}
}

func TestPaperLighterThanVanillaUnderEntityLoad(t *testing.T) {
	// MF4/I5 shape at the engine level: under identical entity-heavy load
	// far from the player, Paper's activation range must yield less entity
	// work than Vanilla.
	load := func(f Flavor) float64 {
		w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
		clock := testClock()
		m := env.NewMachine(env.DAS5TwoCore, 7)
		s := New(w, DefaultConfig(f), m, clock)
		s.Connect("alice")
		w.EnsureArea(world.Pos{X: 80, Y: 0, Z: 80}, 3)
		for i := 0; i < 60; i++ {
			s.EntityWorld().SpawnMob(world.Pos{X: 80 + i%10, Y: 11, Z: 80 + i/10})
		}
		var total float64
		for i := 0; i < 100; i++ {
			total += s.Tick().Work.EntityUS
		}
		return total
	}
	v, p := load(Vanilla), load(Paper)
	if p >= v*0.7 {
		t.Fatalf("Paper entity work (%v) not clearly below Vanilla (%v)", p, v)
	}
}
