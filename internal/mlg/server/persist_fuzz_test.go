package server_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/mlg/persist"
	"repro/internal/workload"
)

// FuzzWorldSnapshot round-trips the full save codec under fuzzed run
// parameters: build a workload server, run it a fuzzed number of ticks,
// snapshot, decode, restore into a blank server, re-encode — the bytes
// must match exactly (the codec is canonical), and one replayed tick must
// match the donor's.
func FuzzWorldSnapshot(f *testing.F) {
	f.Add(uint8(0), uint8(10), uint8(1))
	f.Add(uint8(1), uint8(20), uint8(2))
	f.Add(uint8(2), uint8(15), uint8(4))
	f.Fuzz(func(t *testing.T, kindB, ticksB, workersB uint8) {
		kinds := []workload.Kind{workload.Control, workload.Farm, workload.TNT}
		k := kinds[int(kindB)%len(kinds)]
		ticks := int(ticksB)%24 + 1
		workers := []int{1, 2, 4}[int(workersB)%3]

		ref := newPersistRef(k, workers, 4)
		for i := 0; i < ticks; i++ {
			ref.Tick()
		}
		data := persist.Encode(ref.EncodeSnapshot(nil))
		snap, err := persist.Decode(data)
		if err != nil {
			t.Fatalf("decode of fresh snapshot: %v", err)
		}
		tw := newPersistBlank(k, workers)
		if err := tw.RestoreSnapshot(&persist.Resolved{Tick: snap.Tick, Full: snap}); err != nil {
			t.Fatalf("restore of fresh snapshot: %v", err)
		}
		if got := persist.Encode(tw.EncodeSnapshot(nil)); !bytes.Equal(got, data) {
			t.Fatalf("round trip not canonical: %d vs %d bytes", len(got), len(data))
		}
		refRec, twRec := ref.Tick(), tw.Tick()
		if refRec.Sim != twRec.Sim || refRec.Ent != twRec.Ent {
			t.Fatalf("first replayed tick diverged:\nref:      %+v %+v\nrestored: %+v %+v",
				refRec.Sim, refRec.Ent, twRec.Sim, twRec.Ent)
		}
	})
}

// FuzzWorldSnapshotCorrupt feeds arbitrary bytes to the decode+restore
// path: any input must either restore or fail with a typed error wrapping
// persist.ErrCorrupt — never panic, and never silently half-restore (an
// error from RestoreSnapshot before the world section decodes leaves the
// blank server untouched; later failures are surfaced, which is what lets
// the store fall back to an older file).
func FuzzWorldSnapshotCorrupt(f *testing.F) {
	donor := newPersistRef(workload.Farm, 1, 4)
	for i := 0; i < 8; i++ {
		donor.Tick()
	}
	valid := persist.Encode(donor.EncodeSnapshot(nil))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("MLGP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := persist.Decode(data)
		if err != nil {
			if !errors.Is(err, persist.ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		tw := newPersistBlank(workload.Farm, 1)
		res := &persist.Resolved{Tick: snap.Tick, Full: snap}
		if err := tw.RestoreSnapshot(res); err != nil {
			if !errors.Is(err, persist.ErrCorrupt) {
				t.Fatalf("restore error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		// A restorable input must keep ticking without panicking.
		tw.Tick()
	})
}
