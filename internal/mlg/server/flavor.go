// Package server implements the MLG game server: the 20 Hz game loop with
// networking queues, player handler, terrain simulation and entity phases of
// the paper's operational model (Figure 4), instrumented per phase so
// Meterstick can externalize tick duration and tick distribution (§3.5.1).
//
// Three server flavors reproduce the paper's systems under test (§5.1.1):
// Vanilla (the Mojang reference behaviour), Forge (vanilla logic plus
// mod-loader event overhead), and Paper (the community performance fork,
// Appendix A: async chat, entity activation ranges, merged explosions,
// batched redstone, and an async scheduler that moves work off the main
// thread).
package server

import (
	"fmt"

	"repro/internal/mlg/entity"
	"repro/internal/mlg/sim"
)

// Flavor describes one MLG implementation's behaviour and engineering
// choices. The differences mirror the paper's Appendix A analysis of where
// PaperMC deviates from Vanilla/Forge.
type Flavor struct {
	// Name identifies the flavor ("Minecraft", "Forge", "PaperMC").
	Name string

	// AsyncChat processes chat on a dedicated thread instead of the game
	// tick. PaperMC does this, which is why the paper omits it from the
	// chat-probe response-time comparison (Figure 7).
	AsyncChat bool
	// ActivationRange throttles entities far from players (0 = vanilla
	// behaviour, no throttling).
	ActivationRange int
	// RedstoneBatch enables per-tick wire update deduplication.
	RedstoneBatch bool
	// ExplosionMerge enables batched blast-volume scanning.
	ExplosionMerge bool
	// ItemMerge enables item-entity stack merging.
	ItemMerge bool

	// EventOverhead multiplies all per-operation costs: Forge's mod-loader
	// fires event-bus hooks around every block and entity operation.
	EventOverhead float64
	// EntityParallel and EnvParallel are the fractions of entity and
	// terrain work the flavor can run off the main thread (PaperMC's async
	// scheduler and reworked thread priorities raise both).
	EntityParallel float64
	EnvParallel    float64
	// Threads is the number of runnable OS threads the flavor keeps (game
	// loop, network, async workers). More threads help on big nodes and
	// hurt on oversubscribed 2-vCPU cloud nodes (MF3: PaperMC is worst on
	// AWS t3.large).
	Threads int
}

// The systems under test from §5.1.1.
var (
	// Vanilla is the official Mojang server behaviour.
	Vanilla = Flavor{
		Name:           "Minecraft",
		EventOverhead:  1.0,
		EntityParallel: 0.20,
		EnvParallel:    0.05,
		Threads:        4,
	}
	// Forge is the modding platform: vanilla logic plus event-bus overhead.
	Forge = Flavor{
		Name:           "Forge",
		EventOverhead:  1.13,
		EntityParallel: 0.20,
		EnvParallel:    0.05,
		Threads:        5,
	}
	// Paper is the high-performance fork (PaperMC).
	Paper = Flavor{
		Name:            "PaperMC",
		AsyncChat:       true,
		ActivationRange: 32,
		RedstoneBatch:   true,
		ExplosionMerge:  true,
		ItemMerge:       true,
		EventOverhead:   0.95,
		EntityParallel:  0.60,
		EnvParallel:     0.45,
		Threads:         12,
	}
)

// Flavors returns the three systems under test in paper order.
func Flavors() []Flavor { return []Flavor{Vanilla, Forge, Paper} }

// FlavorByName resolves a flavor by its name (case-sensitive, as printed in
// the paper: "Minecraft", "Forge", "PaperMC"). The aliases "Vanilla" and
// "Paper" are accepted.
func FlavorByName(name string) (Flavor, error) {
	switch name {
	case "Minecraft", "Vanilla", "vanilla", "minecraft":
		return Vanilla, nil
	case "Forge", "forge":
		return Forge, nil
	case "PaperMC", "Paper", "papermc", "paper":
		return Paper, nil
	default:
		return Flavor{}, fmt.Errorf("unknown MLG flavor %q", name)
	}
}

// SimConfig derives the terrain-simulation configuration for the flavor.
func (f Flavor) SimConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.RedstoneBatch = f.RedstoneBatch
	cfg.ExplosionMerge = f.ExplosionMerge
	return cfg
}

// EntityConfig derives the entity-world configuration for the flavor.
func (f Flavor) EntityConfig() entity.Config {
	cfg := entity.DefaultConfig()
	cfg.ActivationRange = f.ActivationRange
	if f.ItemMerge {
		cfg.ItemMergeCells = 2
	}
	return cfg
}
