package server

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"sort"
	"time"

	"repro/internal/mlg/entity"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

// Real-network serving: the server accepts protocol connections, feeds
// client packets into the incoming networking queue, and materializes state
// updates for connected sockets. This is the path the standalone
// cmd/mlgserver binary and the real-TCP bot swarm use; benchmark
// reproduction normally runs the in-process virtual path instead.

// Serve accepts connections until the listener closes. It blocks; run it in
// a goroutine alongside Run.
func (s *Server) Serve(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stopped:
				return nil
			default:
				return err
			}
		}
		go s.handleConn(protocol.NewConn(c))
	}
}

// Run drives the game loop in real time on the server's clock until Stop is
// called: one Tick per 50 ms budget (back-to-back when overloaded).
func (s *Server) Run() {
	go s.keepAliveLoop()
	for {
		select {
		case <-s.stopped:
			return
		default:
		}
		s.Tick()
		if crashed, reason := s.Crashed(); crashed {
			log.Printf("server crashed: %s", reason)
			return
		}
	}
}

// Stop terminates Run and Serve and disconnects all players.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopped)
		s.mu.Lock()
		ids := append([]int64(nil), s.order...)
		s.mu.Unlock()
		for _, id := range ids {
			s.Disconnect(id)
		}
	})
}

// handleConn performs the login handshake, registers the player, and pumps
// incoming packets into the networking queue.
func (s *Server) handleConn(conn *protocol.Conn) {
	defer conn.Close()

	pkt, _, err := conn.ReadPacket()
	if err != nil {
		return
	}
	hs, ok := pkt.(*protocol.Handshake)
	if !ok || hs.Version != protocol.ProtocolVersion {
		conn.WritePacket(&protocol.Disconnect{Reason: "bad handshake"})
		return
	}
	pkt, _, err = conn.ReadPacket()
	if err != nil {
		return
	}
	login, ok := pkt.(*protocol.Login)
	if !ok {
		conn.WritePacket(&protocol.Disconnect{Reason: "expected login"})
		return
	}

	p := s.connect(login.Name, conn)
	if _, err := conn.WritePacket(&protocol.LoginSuccess{
		PlayerID: int32(p.ID), X: p.Pos.X, Y: p.Pos.Y, Z: p.Pos.Z,
	}); err != nil {
		s.Disconnect(p.ID)
		return
	}

	for {
		pkt, _, err := conn.ReadPacket()
		if err != nil {
			s.Disconnect(p.ID)
			return
		}
		s.Enqueue(p.ID, pkt, s.clock.Now())
	}
}

// sendChunkBatch streams a batch of owed chunks over a player's connection.
func (s *Server) sendChunkBatch(p *Player, batch []world.ChunkPos) {
	for _, cp := range batch {
		data := s.serializeChunk(cp)
		if _, err := p.conn.WritePacket(&protocol.ChunkData{
			ChunkX: cp.X, ChunkZ: cp.Z, Data: data,
		}); err != nil {
			return
		}
	}
}

// serializeChunk produces a compact RLE payload of one chunk column.
func (s *Server) serializeChunk(cp world.ChunkPos) []byte {
	c := s.w.Chunk(cp)
	var buf bytes.Buffer
	var run []byte
	var last world.Block
	count := 0
	flush := func() {
		if count == 0 {
			return
		}
		run = append(run[:0], byte(count>>8), byte(count), byte(last.ID), last.Meta)
		buf.Write(run)
	}
	for y := 0; y < world.Height; y++ {
		for z := 0; z < world.ChunkSize; z++ {
			for x := 0; x < world.ChunkSize; x++ {
				b := c.At(x, y, z)
				if b == last && count > 0 && count < 0xFFFF {
					count++
					continue
				}
				flush()
				last, count = b, 1
			}
		}
	}
	flush()
	return buf.Bytes()
}

// sendReal materializes this tick's updates for socket-backed players.
// Entity updates are interest-filtered (only entities inside the player's
// chunk view area are sent) and capped per tick per player, like production
// servers' broadcast budgets.
func (s *Server) sendReal(players []*Player, bc []protocol.BlockChange, counts *tickCounts) {
	const entityCap = 400
	var hasReal bool
	for _, p := range players {
		if p.conn != nil {
			hasReal = true
			break
		}
	}
	if !hasReal {
		return
	}

	// Snapshot entity positions (and their chunk, for the interest filter).
	type entPos struct {
		id      int64
		chunk   world.ChunkPos
		x, y, z float64
	}
	var ents []entPos
	s.ents.Entities(func(e *entity.Entity) {
		ents = append(ents, entPos{
			id: e.ID, chunk: world.ChunkPosAt(e.Pos.BlockPos()),
			x: e.Pos.X, y: e.Pos.Y, z: e.Pos.Z,
		})
	})

	// Chats processed this tick fan out to everyone.
	s.mu.Lock()
	tick := s.tick
	s.mu.Unlock()
	vd := int32(s.cfg.ViewDistance)

	for _, p := range players {
		if p.conn == nil {
			continue
		}
		for i := range bc {
			if _, err := p.conn.WritePacket(&bc[i]); err != nil {
				break
			}
		}
		pc := world.ChunkPosAt(p.Pos.BlockPos())
		seen := make(map[int64]struct{}, len(p.tracked))
		sent := 0
		for _, en := range ents {
			if sent >= entityCap {
				break
			}
			if !chunkWithinView(en.chunk, pc, vd) {
				continue
			}
			if _, err := p.conn.WritePacket(&protocol.EntityMove{
				EntityID: int32(en.id), X: en.x, Y: en.y, Z: en.z,
			}); err != nil {
				break
			}
			seen[en.id] = struct{}{}
			sent++
		}
		// Untrack: entities streamed last tick but no longer in this
		// player's interest area (moved out of view, or despawned) are
		// destroyed client-side, in ID order.
		var gone []int64
		for id := range p.tracked {
			if _, ok := seen[id]; !ok {
				gone = append(gone, id)
			}
		}
		sort.Slice(gone, func(i, j int) bool { return gone[i] < gone[j] })
		for _, id := range gone {
			if _, err := p.conn.WritePacket(&protocol.DestroyEntity{EntityID: int32(id)}); err != nil {
				break
			}
		}
		p.tracked = seen
		p.conn.WritePacket(&protocol.TimeUpdate{Tick: tick})
	}
}

// BroadcastChat sends a chat packet to every socket-backed player. The
// virtual path accounts chats without materializing them; the real path
// delivers them here, which is how the bot swarm's response-time probe
// observes its own message.
func (s *Server) BroadcastChat(c *protocol.Chat) {
	s.mu.Lock()
	players := make([]*Player, 0, len(s.order))
	for _, pid := range s.order {
		players = append(players, s.players[pid])
	}
	s.mu.Unlock()
	for _, p := range players {
		if p.conn != nil {
			p.conn.WritePacket(c)
		}
	}
}

// Addr formats a host:port for the default game port.
func Addr(host string, port int) string { return fmt.Sprintf("%s:%d", host, port) }

// keepAliveLoop periodically sends keep-alives on real connections.
func (s *Server) keepAliveLoop() {
	t := time.NewTicker(s.cfg.KeepAliveEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case <-t.C:
			s.mu.Lock()
			players := make([]*Player, 0, len(s.order))
			for _, pid := range s.order {
				players = append(players, s.players[pid])
			}
			nonce := time.Now().UnixNano()
			s.mu.Unlock()
			for _, p := range players {
				if p.conn != nil {
					p.conn.WritePacket(&protocol.KeepAlive{Nonce: nonce})
				}
			}
		}
	}
}
