package server

import (
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"time"

	"repro/internal/mlg/entity"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

// Real-network serving: the server accepts protocol connections, feeds
// client packets into the incoming networking queue, and materializes state
// updates for connected sockets. This is the path the standalone
// cmd/mlgserver binary and the real-TCP bot swarm use; benchmark
// reproduction normally runs the in-process virtual path instead.
//
// The outbound side is built around four disciplines:
//
//   - Encode-once frames: a broadcast packet (block change, chat,
//     keep-alive, time update, entity move) is marshalled to wire bytes
//     exactly once (protocol.EncodeFrame) and written to N connections as a
//     raw byte copy (Conn.WriteFrame).
//   - Tick-scoped batch flushing: each player's per-tick sends sit between
//     Conn.BeginBatch and Conn.FlushBatch, so a tick costs one enqueue per
//     player instead of one syscall per packet.
//   - Delta streaming: in-view entities send compact EntityMoveRel deltas
//     against per-player last-sent positions; stationary entities send
//     nothing, teleports and first sightings fall back to full EntityMove.
//   - Async per-connection writers: the tick goroutine never touches a
//     socket. Each logged-in connection runs a writer goroutine behind a
//     bounded queue (protocol.Conn.StartWriter); the tick enqueues a
//     player's completed batch and moves on. On queue overflow the batch is
//     dropped and the player falls back to a keyframe — lastSent is
//     cleared so every in-view entity re-baselines with a full EntityMove,
//     and undelivered chunk batches stay owed — mirroring the delta→full
//     fallback. A peer whose write stalls past NetConfig.WriteTimeout faults
//     its writer and is disconnected on the next tick, frames reclaimed.
//     One slow TCP peer therefore costs one blocked goroutine, never a
//     stalled world.

// Serve accepts connections until the listener closes. It blocks; run it in
// a goroutine alongside Run.
func (s *Server) Serve(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stopped:
				return nil
			default:
				return err
			}
		}
		if s.cfg.Net.SocketWriteBuffer > 0 {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetWriteBuffer(s.cfg.Net.SocketWriteBuffer)
			}
		}
		go s.handleConn(protocol.NewConn(c))
	}
}

// Run drives the game loop in real time on the server's clock until Stop is
// called: one Tick per 50 ms budget (back-to-back when overloaded). The
// after-tick hook and snapshot cadence run inside Tick itself
// (Hooks.AfterTick, Config.Persist), so Run is a bare loop.
func (s *Server) Run() {
	go s.keepAliveLoop()
	for {
		select {
		case <-s.stopped:
			return
		default:
		}
		s.Tick()
		if crashed, reason := s.Crashed(); crashed {
			log.Printf("server crashed: %s", reason)
			return
		}
	}
}

// Stop terminates Run and Serve and disconnects all players.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopped)
		s.mu.Lock()
		ids := append([]int64(nil), s.order...)
		s.mu.Unlock()
		for _, id := range ids {
			s.Disconnect(id)
		}
	})
}

// handleConn performs the login handshake, registers the player, and pumps
// incoming packets into the networking queue.
func (s *Server) handleConn(conn *protocol.Conn) {
	defer conn.Close()

	pkt, _, err := conn.ReadPacket()
	if err != nil {
		return
	}
	hs, ok := pkt.(*protocol.Handshake)
	if !ok || hs.Version != protocol.ProtocolVersion {
		conn.WritePacket(&protocol.Disconnect{Reason: "bad handshake"})
		return
	}
	pkt, _, err = conn.ReadPacket()
	if err != nil {
		return
	}
	login, ok := pkt.(*protocol.Login)
	if !ok {
		conn.WritePacket(&protocol.Disconnect{Reason: "expected login"})
		return
	}

	p := s.connect(login.Name, conn)
	if _, err := conn.WritePacket(&protocol.LoginSuccess{
		PlayerID: int32(p.ID), X: p.Pos.X, Y: p.Pos.Y, Z: p.Pos.Z,
	}); err != nil {
		s.Disconnect(p.ID)
		return
	}

	// Handshake traffic above was synchronous; everything after login rides
	// the connection's async writer so a slow peer can never block the tick
	// goroutine (or the keep-alive/chat broadcast loops).
	conn.StartWriter(protocol.WriterConfig{
		MaxBatches:   s.cfg.Net.WriteQueueBatches,
		MaxBytes:     s.cfg.Net.WriteQueueBytes,
		WriteTimeout: s.cfg.Net.WriteTimeout,
	})

	idle := s.cfg.Net.ReadIdleTimeout
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		pkt, _, err := conn.ReadPacket()
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				// A completely silent peer: without this reap its read
				// goroutine and player session would leak forever.
				s.noteIdleDisconnect()
			}
			s.Disconnect(p.ID)
			return
		}
		s.Enqueue(p.ID, pkt, s.clock.Now())
	}
}

// sendChunkBatch streams a batch of owed chunks over a player's connection,
// all under one flush. It returns the error that broke the batch:
// protocol.ErrBacklog means the whole batch was dropped before reaching the
// wire (the chunks must stay owed); any other error is a connection fault
// and the peer should be disconnected. The old path discarded both — a
// player whose batch never hit the socket was still marked as having been
// sent those chunks, and a broken conn kept receiving full tick work until
// its reader noticed.
func (s *Server) sendChunkBatch(p *Player, batch []world.ChunkPos) error {
	p.conn.BeginBatch()
	for _, cp := range batch {
		data := s.serializeChunk(cp)
		if _, err := p.conn.WritePacket(&protocol.ChunkData{
			ChunkX: cp.X, ChunkZ: cp.Z, Data: data,
		}); err != nil {
			p.conn.FlushBatch() // balance the batch window; the write error wins
			return err
		}
	}
	return p.conn.FlushBatch()
}

// chunkPayload is one cached serialized chunk column.
type chunkPayload struct {
	rev  uint64
	data []byte
}

// serializeChunk returns the compact RLE payload of one chunk column,
// served from the revision-keyed payload cache when the chunk is unchanged
// since it was last serialized — join bursts and repeat sends reuse bytes
// instead of re-walking 16×16×Height blocks. Tick-goroutine only.
func (s *Server) serializeChunk(cp world.ChunkPos) []byte {
	// Resolve through the RLock fast path: pending chunks were loaded at
	// join time, so the write-locking generate path is a cold fallback.
	c := s.w.ChunkIfLoaded(cp)
	if c == nil {
		c = s.w.Chunk(cp)
	}
	rev := c.Revision()
	if e, ok := s.chunkPayloads[cp]; ok && e.rev == rev {
		return e.data
	}
	data := c.AppendRLE(nil)
	s.chunkPayloads[cp] = chunkPayload{rev: rev, data: data}
	return data
}

// entSnap is one entity's per-tick broadcast snapshot: position (raw and
// quantized), interest chunk, and the lazily encoded full-move frame shared
// by every recipient that needs it.
type entSnap struct {
	id       int64
	chunk    world.ChunkPos
	x, y, z  float64
	q        qpos
	frame    protocol.Frame
	hasFrame bool
}

// sendBuffers holds sendReal's per-tick slices, reused across ticks.
type sendBuffers struct {
	ents     []entSnap
	bcFrames []protocol.Frame
}

// quant quantizes a coordinate to the EntityMoveRel 1/32-block grid.
func quant(v float64) int32 { return int32(floorRound(v * 32)) }

func floorRound(v float64) int64 {
	if v >= 0 {
		return int64(v + 0.5)
	}
	return -int64(-v + 0.5)
}

// fullMoveFrame returns the entity's encode-once full EntityMove frame,
// marshalling it on first use this tick.
func (e *entSnap) fullMoveFrame() protocol.Frame {
	if !e.hasFrame {
		e.frame = protocol.EncodeFrame(&protocol.EntityMove{
			EntityID: int32(e.id), X: e.x, Y: e.y, Z: e.z,
		})
		e.hasFrame = true
	}
	return e.frame
}

// sendReal materializes this tick's updates for socket-backed players.
// Entity updates are interest-filtered (only entities inside the player's
// chunk view area are sent) and capped per tick per player, like production
// servers' broadcast budgets. Broadcast packets are encoded once and fanned
// out as raw frames; each player's whole tick goes out under a single
// flush (async conns: a single writer-queue enqueue). It returns the IDs
// of players whose connection faulted mid-send, for the caller to reap.
func (s *Server) sendReal(players []*Player, bc []protocol.BlockChange, counts *tickCounts) []int64 {
	const entityCap = 400
	var hasReal bool
	for _, p := range players {
		if p.conn != nil {
			hasReal = true
			break
		}
	}
	if !hasReal {
		return nil
	}

	// Snapshot entity positions (and their chunk, for the interest filter).
	ents := s.sendScratch.ents[:0]
	s.ents.Entities(func(e *entity.Entity) {
		ents = append(ents, entSnap{
			id: e.ID, chunk: world.ChunkPosAt(e.Pos.BlockPos()),
			x: e.Pos.X, y: e.Pos.Y, z: e.Pos.Z,
			q: qpos{x: quant(e.Pos.X), y: quant(e.Pos.Y), z: quant(e.Pos.Z)},
		})
	})
	s.sendScratch.ents = ents

	// Encode the tick's shared broadcast frames exactly once.
	bcFrames := s.sendScratch.bcFrames[:0]
	for i := range bc {
		bcFrames = append(bcFrames, protocol.EncodeFrame(&bc[i]))
	}
	s.sendScratch.bcFrames = bcFrames

	s.mu.Lock()
	tick := s.tick
	s.mu.Unlock()
	tickFrame := protocol.EncodeFrame(&protocol.TimeUpdate{Tick: tick})
	vd := int32(s.cfg.Net.ViewDistance)

	var dead []int64
	for _, p := range players {
		if p.conn == nil {
			continue
		}
		err := s.sendPlayerTick(p, bcFrames, tickFrame, ents, vd, entityCap, counts)
		switch {
		case err == nil:
		case errors.Is(err, protocol.ErrBacklog):
			// The peer's writer queue is full: this tick's batch was dropped
			// whole. Stale deltas must never follow a gap — fall back to a
			// keyframe once the queue drains again.
			p.needKeyframe = true
			counts.netDrops++
		default:
			dead = append(dead, p.ID)
		}
	}
	return dead
}

// sendPlayerTick assembles and flushes one player's complete tick batch:
// shared broadcast frames, interest-filtered entity updates (or a keyframe
// re-baseline after a dropped batch), destroys for entities leaving the
// interest area, and the time update. A write error aborts the batch and is
// returned; on async connections the only errors are flush-boundary ones
// (ErrBacklog, or the writer's sticky fault).
func (s *Server) sendPlayerTick(p *Player, bcFrames []protocol.Frame, tickFrame protocol.Frame,
	ents []entSnap, vd int32, entityCap int, counts *tickCounts) error {
	keyframe := p.needKeyframe
	if keyframe {
		// The client missed at least one dropped batch; deltas against
		// positions it never received would corrupt its reconstruction.
		// Dropping the tracked set re-baselines every in-view entity with a
		// full EntityMove below — the keyframe.
		clear(p.lastSent)
	}

	var rel protocol.EntityMoveRel
	p.conn.BeginBatch()
	abort := func(err error) error {
		p.conn.FlushBatch() // balance the batch window; the write error wins
		return err
	}
	for _, f := range bcFrames {
		if _, err := p.conn.WriteFrame(f); err != nil {
			return abort(err)
		}
	}
	pc := world.ChunkPosAt(p.Pos.BlockPos())
	if p.lastSent == nil {
		p.lastSent = make(map[int64]qpos, len(ents))
	}
	seen := p.seen
	if seen == nil {
		seen = make(map[int64]struct{}, len(ents))
		p.seen = seen
	} else {
		clear(seen)
	}
	sent := 0
	for i := range ents {
		en := &ents[i]
		if !chunkWithinView(en.chunk, pc, vd) {
			continue
		}
		seen[en.id] = struct{}{}
		if sent >= entityCap {
			continue // budget spent; the delta catches up next tick
		}
		last, tracked := p.lastSent[en.id]
		if tracked && en.q == last {
			continue // stationary: nothing on the wire
		}
		dx, dy, dz := en.q.x-last.x, en.q.y-last.y, en.q.z-last.z
		if tracked && fitsInt8(dx) && fitsInt8(dy) && fitsInt8(dz) {
			rel = protocol.EntityMoveRel{
				EntityID: int32(en.id),
				DX:       int8(dx), DY: int8(dy), DZ: int8(dz),
			}
			if _, err := p.conn.WritePacket(&rel); err != nil {
				return abort(err)
			}
		} else {
			// First sighting, a jump too large for a delta, or a keyframe
			// re-baseline: full move.
			if _, err := p.conn.WriteFrame(en.fullMoveFrame()); err != nil {
				return abort(err)
			}
		}
		p.lastSent[en.id] = en.q
		sent++
	}
	// Untrack: entities streamed before but no longer in this player's
	// interest area (moved out of view, or despawned) are destroyed
	// client-side, in ID order.
	gone := p.gone[:0]
	for id := range p.lastSent {
		if _, ok := seen[id]; !ok {
			gone = append(gone, id)
		}
	}
	sort.Slice(gone, func(i, j int) bool { return gone[i] < gone[j] })
	p.gone = gone
	for _, id := range gone {
		delete(p.lastSent, id)
		if _, err := p.conn.WritePacket(&protocol.DestroyEntity{EntityID: int32(id)}); err != nil {
			return abort(err)
		}
	}
	if _, err := p.conn.WriteFrame(tickFrame); err != nil {
		return abort(err)
	}
	if err := p.conn.FlushBatch(); err != nil {
		return err
	}
	if keyframe {
		p.needKeyframe = false
		counts.netKeyframes++
	}
	return nil
}

func fitsInt8(v int32) bool { return v >= -128 && v <= 127 }

// BroadcastChat sends a chat packet to every socket-backed player, encoded
// once. The virtual path accounts chats without materializing them; the
// real path delivers them here, which is how the bot swarm's response-time
// probe observes its own message.
func (s *Server) BroadcastChat(c *protocol.Chat) {
	s.mu.Lock()
	players := make([]*Player, 0, len(s.order))
	for _, pid := range s.order {
		players = append(players, s.players[pid])
	}
	s.mu.Unlock()
	f := protocol.EncodeFrame(c)
	for _, p := range players {
		if p.conn != nil {
			p.conn.WriteFrame(f)
		}
	}
}

// Addr formats a host:port for the default game port.
func Addr(host string, port int) string { return fmt.Sprintf("%s:%d", host, port) }

// keepAliveLoop periodically sends keep-alives on real connections, one
// encode per round.
func (s *Server) keepAliveLoop() {
	t := time.NewTicker(s.cfg.Net.KeepAliveEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case <-t.C:
			s.mu.Lock()
			players := make([]*Player, 0, len(s.order))
			for _, pid := range s.order {
				players = append(players, s.players[pid])
			}
			s.mu.Unlock()
			f := protocol.EncodeFrame(&protocol.KeepAlive{Nonce: time.Now().UnixNano()})
			for _, p := range players {
				if p.conn != nil {
					p.conn.WriteFrame(f)
				}
			}
		}
	}
}
