package server

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

// Peer-fault hardening tests: one slow or dead TCP peer must never stall the
// tick goroutine, and the degradation ladder must fire in order —
// queue overflow → dropped batch → keyframe re-baseline → write-deadline
// disconnect — while healthy peers keep streaming.

// pausableReader drains a client conn unless paused; pausing simulates a
// peer that stops reading its socket (e.g. a frozen client).
type pausableReader struct {
	conn   *protocol.Conn
	paused atomic.Bool
	pkts   atomic.Int64
	fulls  atomic.Int64
}

func (r *pausableReader) run() {
	for {
		if r.paused.Load() {
			time.Sleep(time.Millisecond)
			continue
		}
		pkt, _, err := r.conn.ReadPacket()
		if err != nil {
			return
		}
		r.pkts.Add(1)
		if _, ok := pkt.(*protocol.EntityMove); ok {
			r.fulls.Add(1)
		}
	}
}

// TestStalledPeerDoesNotStallTick: with one peer that never reads among
// healthy readers, ticks must stay fast (enqueue-only, never a socket wait),
// the stalled peer's batches must be dropped once its bounded queue fills,
// and the healthy peer must keep receiving the stream.
func TestStalledPeerDoesNotStallTick(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig(Vanilla)
	cfg.Net.ViewDistance = 2
	cfg.Net.SocketWriteBuffer = 4 << 10
	cfg.Net.WriteQueueBatches = 4
	cfg.Net.WriteQueueBytes = 32 << 10
	cfg.Net.WriteTimeout = 30 * time.Second // keep the stall alive: no deadline rescue
	s := New(w, cfg, nil, env.RealClock{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer func() { s.Stop(); ln.Close() }()

	dial := func(name string) *protocol.Conn {
		t.Helper()
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if tc, ok := raw.(*net.TCPConn); ok {
			tc.SetReadBuffer(4 << 10) // small client buffer: stalls bite fast
		}
		conn := protocol.NewConn(raw)
		conn.WritePacket(&protocol.Handshake{Version: protocol.ProtocolVersion})
		conn.WritePacket(&protocol.Login{Name: name})
		if _, _, err := conn.ReadPacket(); err != nil {
			t.Fatalf("%s login: %v", name, err)
		}
		return conn
	}

	stalled := dial("stalled")
	defer stalled.Close()
	healthy := dial("healthy")
	defer healthy.Close()
	hr := &pausableReader{conn: healthy}
	go hr.run()

	// A mob herd at spawn: hundreds of entity moves per tick, enough to
	// overflow the stalled peer's socket + queue budget within a few ticks.
	for i := 0; i < 200; i++ {
		s.EntityWorld().SpawnMob(world.Pos{X: i % 16, Y: 11, Z: i / 16})
	}

	// The stalled peer reads nothing at all (not even its join burst beyond
	// what the kernel buffers absorb). Tick the server and time each tick.
	var maxTick time.Duration
	for i := 0; i < 100; i++ {
		start := time.Now()
		s.Tick()
		if d := time.Since(start); d > maxTick {
			maxTick = d
		}
	}

	if maxTick > time.Second {
		t.Fatalf("tick stalled for %v with one dead peer; enqueue path must not block", maxTick)
	}
	out := s.Outbound()
	if out.DroppedBatches == 0 {
		t.Fatal("stalled peer never overflowed its writer queue; backpressure untested")
	}
	if hr.pkts.Load() == 0 {
		t.Fatal("healthy peer starved while another peer was stalled")
	}
}

// TestPeerFaultLadder drives the full degradation ladder over an unbuffered
// pipe conn, in order: (1) healthy streaming, (2) paused peer → queue
// overflow → dropped batches, (3) resumed peer → keyframe re-baseline with
// full EntityMove packets, (4) pause past WriteTimeout → writer fault →
// disconnect with the session reaped.
func TestPeerFaultLadder(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig(Vanilla)
	cfg.Net.ViewDistance = 2
	cfg.Net.WriteTimeout = 500 * time.Millisecond
	s := New(w, cfg, nil, env.RealClock{})
	defer s.Stop()

	for i := 0; i < 8; i++ {
		s.EntityWorld().SpawnMob(world.Pos{X: 2 + i, Y: 11, Z: 4})
	}

	a, b := net.Pipe()
	conn := protocol.NewConn(a)
	// MaxBatches 2: one tick can enqueue a chunk-burst batch and the entity
	// tick batch back to back; a healthy paced peer never needs more.
	conn.StartWriter(protocol.WriterConfig{
		MaxBatches: 2, MaxBytes: 1 << 20, WriteTimeout: cfg.Net.WriteTimeout,
	})
	p := s.connect("ladder", conn)
	r := &pausableReader{conn: protocol.NewConn(b)}
	go r.run()
	defer b.Close()

	// Phase 1: healthy. Drain the join burst and stream a few ticks, pacing
	// each tick on the (unbuffered, synchronous) pipe reader so the single
	// queue slot never overflows while the peer is healthy.
	for i := 0; i < 6; i++ {
		s.Tick()
		waitCond(t, 5*time.Second, func() bool {
			n, _ := conn.WriterQueueDepth()
			return n == 0
		}, "healthy peer never drained a tick batch")
	}
	waitCond(t, 5*time.Second, func() bool { return len(p.pendingChunks) == 0 },
		"join burst never drained to a healthy peer")
	if out := s.Outbound(); out.DroppedBatches != 0 || out.WriteDisconnects != 0 {
		t.Fatalf("healthy phase produced faults: %+v", out)
	}

	// Phase 2: peer stops reading. The in-flight batch blocks the writer,
	// the single queue slot fills, and further ticks drop whole batches.
	r.paused.Store(true)
	for i := 0; i < 8 && s.Outbound().DroppedBatches == 0; i++ {
		s.Tick()
	}
	if out := s.Outbound(); out.DroppedBatches == 0 {
		t.Fatal("paused peer never caused a dropped batch")
	} else if out.Keyframes != 0 {
		t.Fatalf("keyframe before the queue reopened: %+v", out)
	}

	// Phase 3: peer resumes within the write deadline. The queue drains and
	// the next delivered batch is a keyframe: every in-view entity
	// re-baselined with a full EntityMove (stale deltas must never follow a
	// gap).
	fullsBefore := r.fulls.Load()
	r.paused.Store(false)
	waitCond(t, 5*time.Second, func() bool {
		n, _ := conn.WriterQueueDepth()
		return n == 0
	}, "queue never drained after the peer resumed")
	for i := 0; i < 4 && s.Outbound().Keyframes == 0; i++ {
		s.Tick()
		time.Sleep(5 * time.Millisecond) // let the writer hand off to the reader
	}
	if out := s.Outbound(); out.Keyframes == 0 {
		t.Fatal("no keyframe after drop + recovery")
	}
	waitCond(t, 5*time.Second, func() bool { return r.fulls.Load() > fullsBefore },
		"keyframe tick sent no full EntityMove re-baseline")

	// Phase 4: peer stops reading for good. The writer faults once a write
	// stalls past WriteTimeout, and the next tick reaps the session.
	r.paused.Store(true)
	waitCond(t, 10*time.Second, func() bool {
		s.Tick()
		return s.Outbound().WriteDisconnects > 0
	}, "stalled peer was never disconnected by the write deadline")
	if n := s.PlayerCount(); n != 0 {
		t.Fatalf("PlayerCount = %d after write-fault reap, want 0", n)
	}
	if err := conn.WriterErr(); err == nil {
		t.Fatal("writer has no sticky fault after deadline disconnect")
	}
}

// TestReadIdleTimeoutReapsSilentPeer: a logged-in peer that never sends
// another byte must be reaped by the read idle timeout, not leak its read
// goroutine and session forever.
func TestReadIdleTimeoutReapsSilentPeer(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig(Vanilla)
	cfg.Net.ViewDistance = 2
	cfg.Net.ReadIdleTimeout = 100 * time.Millisecond
	s := New(w, cfg, nil, env.RealClock{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer func() { s.Stop(); ln.Close() }()

	conn, err := protocol.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.WritePacket(&protocol.Handshake{Version: protocol.ProtocolVersion})
	conn.WritePacket(&protocol.Login{Name: "silent"})
	if _, _, err := conn.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, func() bool { return s.PlayerCount() == 1 },
		"player never registered")

	// Total silence: no moves, no keep-alive echoes.
	waitCond(t, 5*time.Second, func() bool { return s.PlayerCount() == 0 },
		"silent peer was never reaped by the idle timeout")
	if got := s.Outbound().IdleDisconnects; got < 1 {
		t.Fatalf("IdleDisconnects = %d, want >= 1", got)
	}
}

// TestWriterDisconnectSnapshotRace exercises writer shutdown, Disconnect and
// the between-tick snapshotter concurrently under the race detector: clients
// churn (some stall, some quit) while the server ticks and snapshots.
func TestWriterDisconnectSnapshotRace(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig(Vanilla)
	cfg.Net.ViewDistance = 2
	cfg.Net.WriteTimeout = 50 * time.Millisecond
	cfg.Net.WriteQueueBatches = 2
	cfg.Net.WriteQueueBytes = 16 << 10
	cfg.Net.ReadIdleTimeout = 200 * time.Millisecond
	var s *Server
	cfg.Hooks.AfterTick = func(TickRecord) { s.Snapshot() }
	s = New(w, cfg, nil, env.RealClock{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Entity mutations must happen before the tick loop starts.
	for i := 0; i < 12; i++ {
		s.EntityWorld().SpawnMob(world.Pos{X: i, Y: 11, Z: 6})
	}
	go s.Serve(ln)
	go s.Run()
	defer func() { s.Stop(); ln.Close() }()

	done := make(chan struct{}, 8)
	for i := 0; i < 8; i++ {
		mode := i % 3
		go func(mode int) {
			defer func() { done <- struct{}{} }()
			conn, err := protocol.Dial(ln.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			conn.WritePacket(&protocol.Handshake{Version: protocol.ProtocolVersion})
			conn.WritePacket(&protocol.Login{Name: "churn"})
			if _, _, err := conn.ReadPacket(); err != nil {
				return
			}
			switch mode {
			case 0: // read briefly, then vanish without closing cleanly
				deadline := time.Now().Add(150 * time.Millisecond)
				for time.Now().Before(deadline) {
					conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
					if _, _, err := conn.ReadPacket(); err != nil {
						break
					}
				}
			case 1: // stall: never read again, let the write deadline reap us
				time.Sleep(300 * time.Millisecond)
			case 2: // quit immediately
			}
		}(mode)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	// Let the reaping settle while ticks + snapshots keep running.
	time.Sleep(300 * time.Millisecond)
}

// waitCond polls until ok() or the deadline.
func waitCond(t *testing.T, d time.Duration, ok func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
