package server

import (
	"fmt"
	"time"

	"repro/internal/mlg/entity"
	"repro/internal/mlg/persist"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

// Server-level composition of the MLGP save format: the server contributes
// its own section (players, inbox, net totals) and assembles the world,
// sim and entity sections into one snapshot. Everything here runs between
// ticks on the tick goroutine — the state it captures is exactly the
// boundary state the next Tick would consume.
//
// Inbox arrival times are stored as deltas against the capture-time clock
// and rebased on the restoring server's clock: the virtual clock restarts
// at its epoch after a process death, but "this packet is due on the next
// tick" survives because due-ness is a comparison against the same clock
// the deltas are rebased on.

// SnapshotBase identifies the full snapshot an incremental is computed
// against: the tick it captured and the chunk revisions it contained.
type SnapshotBase struct {
	Tick int64
	Revs map[world.ChunkPos]uint64
}

// EncodeSnapshot captures the server's complete state as an MLGP snapshot.
// With base nil the snapshot is full; otherwise it is an incremental
// carrying only chunks changed since base (sim/entity/server sections are
// always complete — they are small next to the chunk set). Must be called
// between ticks, on the tick goroutine.
func (s *Server) EncodeSnapshot(base *SnapshotBase) *persist.Snapshot {
	s.mu.Lock()
	tick := s.tick
	s.mu.Unlock()
	snap := &persist.Snapshot{Kind: persist.KindFull, Tick: tick}
	worldID := persist.SectionWorld
	var baseRevs map[world.ChunkPos]uint64
	if base != nil {
		snap.Kind = persist.KindIncremental
		snap.BaseTick = base.Tick
		baseRevs = base.Revs
		worldID = persist.SectionWorldDelta
	}
	snap.Sections = []persist.Section{
		{ID: worldID, Payload: s.w.AppendPersist(nil, baseRevs)},
		{ID: persist.SectionSim, Payload: s.engine.AppendPersist(nil)},
		{ID: persist.SectionEntities, Payload: s.ents.AppendPersist(nil)},
		{ID: persist.SectionServer, Payload: s.appendServerSection(nil)},
	}
	return snap
}

// Save captures a full snapshot and writes it atomically to the store.
func (s *Server) Save(st *persist.Store) (string, error) {
	return st.Write(s.EncodeSnapshot(nil))
}

func (s *Server) appendServerSection(dst []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	dst = persist.AppendI64(dst, s.tick)
	dst = persist.AppendI64(dst, s.nextPID)
	dst = persist.AppendI64(dst, s.net.Msgs)
	dst = persist.AppendI64(dst, s.net.Bytes)
	dst = persist.AppendI64(dst, s.net.EntityMsgs)
	dst = persist.AppendI64(dst, s.net.EntityBytes)
	dst = persist.AppendI64(dst, int64(s.lastGen))

	dst = persist.AppendU32(dst, uint32(len(s.order)))
	for _, pid := range s.order {
		p := s.players[pid]
		dst = persist.AppendI64(dst, p.ID)
		dst = persist.AppendString(dst, p.Name)
		dst = persist.AppendF64(dst, p.Pos.X)
		dst = persist.AppendF64(dst, p.Pos.Y)
		dst = persist.AppendF64(dst, p.Pos.Z)
		dst = persist.AppendU32(dst, uint32(len(p.pendingChunks)))
		for _, cp := range p.pendingChunks {
			dst = persist.AppendI32(dst, cp.X)
			dst = persist.AppendI32(dst, cp.Z)
		}
	}

	dst = persist.AppendU32(dst, uint32(len(s.inbox)))
	for _, in := range s.inbox {
		dst = persist.AppendI64(dst, in.playerID)
		dst = persist.AppendI64(dst, int64(in.arrival.Sub(now)))
		dst = persist.AppendU32(dst, uint32(in.pkt.ID()))
		dst = persist.AppendBytes(dst, in.pkt.MarshalBody(nil))
	}
	return dst
}

func (s *Server) restoreServerSection(data []byte, wantTick int64) error {
	d := persist.NewDec(data)
	tick := d.I64()
	nextPID := d.I64()
	var net NetTotals
	net.Msgs = d.I64()
	net.Bytes = d.I64()
	net.EntityMsgs = d.I64()
	net.EntityBytes = d.I64()
	lastGen := int(d.I64())

	nPlayers := d.Count(8 + 4 + 3*8 + 4)
	players := make(map[int64]*Player, nPlayers)
	order := make([]int64, 0, nPlayers)
	for i := 0; i < nPlayers; i++ {
		p := &Player{ID: d.I64(), Name: d.String()}
		p.Pos = entity.Vec3{X: d.F64(), Y: d.F64(), Z: d.F64()}
		np := d.Count(8)
		if np > 0 {
			p.pendingChunks = make([]world.ChunkPos, 0, np)
			for j := 0; j < np; j++ {
				p.pendingChunks = append(p.pendingChunks, world.ChunkPos{X: d.I32(), Z: d.I32()})
			}
		}
		if d.Err() != nil {
			break
		}
		if _, dup := players[p.ID]; dup || p.ID <= 0 || p.ID > nextPID {
			return fmt.Errorf("%w: server section: bad player ID %d", persist.ErrCorrupt, p.ID)
		}
		players[p.ID] = p
		order = append(order, p.ID)
	}

	now := s.clock.Now()
	nIn := d.Count(8 + 8 + 4 + 4)
	inbox := make([]inbound, 0, nIn)
	for i := 0; i < nIn; i++ {
		pid := d.I64()
		delta := time.Duration(d.I64())
		pktID := protocol.PacketID(d.U32())
		body := d.Bytes()
		if d.Err() != nil {
			break
		}
		pkt, err := protocol.New(pktID)
		if err != nil {
			return fmt.Errorf("%w: server section: inbox packet %d: %v", persist.ErrCorrupt, i, err)
		}
		if err := pkt.UnmarshalBody(body); err != nil {
			return fmt.Errorf("%w: server section: inbox packet %d: %v", persist.ErrCorrupt, i, err)
		}
		inbox = append(inbox, inbound{playerID: pid, pkt: pkt, arrival: now.Add(delta)})
	}

	if err := d.Err(); err != nil {
		return fmt.Errorf("server section: %w", err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: server section has %d trailing bytes", persist.ErrCorrupt, d.Remaining())
	}
	if tick != wantTick {
		return fmt.Errorf("%w: server section tick %d != snapshot tick %d", persist.ErrCorrupt, tick, wantTick)
	}

	s.mu.Lock()
	s.tick = tick
	s.nextPID = nextPID
	s.net = net
	s.lastGen = lastGen
	s.players = players
	s.order = order
	s.inbox = inbox
	s.inboxDue = nil
	s.records = nil
	s.chatEchoes = nil
	s.pendingChat = nil
	s.crashed = false
	s.crashReason = ""
	s.fig11 = Fig11Totals{}
	s.mu.Unlock()
	// Restored chunks are new objects with restored (possibly reused)
	// revision numbers, so the revision-keyed payload cache must drop.
	s.chunkPayloads = make(map[world.ChunkPos]chunkPayload)
	s.blockChanges = nil
	s.blockChangeCount = 0
	return nil
}

// RestoreSnapshot loads a resolved snapshot into the server: the full
// world section (plus the incremental's chunk delta, when present) and the
// sim/entity/server sections of the newest file. The server must be
// freshly constructed — same Config, same world generator, no ticks run,
// no players connected; socket sessions never survive a process death, so
// restored players have no connection until clients rejoin.
func (s *Server) RestoreSnapshot(res *persist.Resolved) error {
	if res == nil || res.Full == nil {
		return fmt.Errorf("%w: nil snapshot", persist.ErrCorrupt)
	}
	if res.Full.Kind != persist.KindFull {
		return fmt.Errorf("%w: base snapshot is not full", persist.ErrCorrupt)
	}
	newest := res.Full
	if res.Delta != nil {
		if res.Delta.Kind != persist.KindIncremental || res.Delta.BaseTick != res.Full.Tick {
			return fmt.Errorf("%w: delta base tick %d does not match full tick %d",
				persist.ErrCorrupt, res.Delta.BaseTick, res.Full.Tick)
		}
		newest = res.Delta
	}

	worldSec := res.Full.Section(persist.SectionWorld)
	if worldSec == nil {
		return fmt.Errorf("%w: missing world section", persist.ErrCorrupt)
	}
	if err := s.w.RestorePersist(worldSec); err != nil {
		return err
	}
	if res.Delta != nil {
		deltaSec := res.Delta.Section(persist.SectionWorldDelta)
		if deltaSec == nil {
			return fmt.Errorf("%w: incremental missing world delta section", persist.ErrCorrupt)
		}
		if err := s.w.ApplyPersistDelta(deltaSec); err != nil {
			return err
		}
	}

	simSec := newest.Section(persist.SectionSim)
	if simSec == nil {
		return fmt.Errorf("%w: missing sim section", persist.ErrCorrupt)
	}
	if err := s.engine.RestorePersist(simSec); err != nil {
		return err
	}
	entSec := newest.Section(persist.SectionEntities)
	if entSec == nil {
		return fmt.Errorf("%w: missing entity section", persist.ErrCorrupt)
	}
	if err := s.ents.RestorePersist(entSec); err != nil {
		return err
	}
	srvSec := newest.Section(persist.SectionServer)
	if srvSec == nil {
		return fmt.Errorf("%w: missing server section", persist.ErrCorrupt)
	}
	return s.restoreServerSection(srvSec, newest.Tick)
}

// PlayerIDs returns the connected player IDs in deterministic join order.
func (s *Server) PlayerIDs() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.order...)
}
