package server_test

// Serial-vs-parallel equivalence matrix at the server level: every workload
// x flavor runs tick-locked twin servers — SimWorkers=1 (legacy serial
// paths) vs SimWorkers=4 (region-parallel schedules) — and asserts
// identical sim.Counters AND entity.Counters on every tick plus identical
// world contents and entity state at the end. Construct workloads run at
// Scale 2, which lays out two separated construct clusters, so both the
// terrain engine and the entity store actually partition into multiple
// regions and take the worker-pool path.
//
// This matrix is the gate future simulation changes must pass: any rule,
// queueing or scheduling change that breaks serial/parallel bit-equality
// fails here tick-by-tick, with the first divergent counter visible.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/workload"
)

func newMatrixServer(k workload.Kind, f server.Flavor, simWorkers int) *server.Server {
	w := workload.NewWorld(k, world.PaperControlSeed)
	cfg := server.DefaultConfig(f)
	cfg.Sim.Seed = 1234
	cfg.Sim.Workers = simWorkers
	m := env.NewMachine(env.DAS5SixteenCore, 1)
	s := server.New(w, cfg, m, env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)))
	spec := k.DefaultSpec()
	switch k {
	case workload.TNT, workload.Farm, workload.Lag:
		spec.Scale = 2 // two construct clusters: >= 2 simulation regions
	}
	if k == workload.TNT {
		spec.IgniteAfterTicks = 4
	}
	if err := workload.Install(s, spec); err != nil {
		panic(err)
	}
	s.Connect("matrix")
	if k == workload.TNT {
		workload.Arm(s, spec)
	}
	return s
}

func TestSerialParallelTickMatrix(t *testing.T) {
	ticksFor := func(k workload.Kind) int {
		if k == workload.TNT {
			// Cover ignition (tick 4), the 80-tick fuse and the first
			// explosion waves.
			return 150
		}
		return 90
	}
	for _, k := range workload.All() {
		for _, f := range server.Flavors() {
			k, f := k, f
			t.Run(fmt.Sprintf("%s/%s", k, f.Name), func(t *testing.T) {
				serial := newMatrixServer(k, f, 1)
				parallel := newMatrixServer(k, f, 4)
				parallelTicks, entParallelTicks := 0, 0
				for i := 0; i < ticksFor(k); i++ {
					rs := serial.Tick()
					rp := parallel.Tick()
					if rs.Sim != rp.Sim {
						t.Fatalf("tick %d: sim counters diverged\nserial:   %+v\nparallel: %+v",
							i+1, rs.Sim, rp.Sim)
					}
					if rs.Ent != rp.Ent {
						t.Fatalf("tick %d: entity counters diverged\nserial:   %+v\nparallel: %+v",
							i+1, rs.Ent, rp.Ent)
					}
					if rs.Work != rp.Work {
						t.Fatalf("tick %d: cost-model work diverged\nserial:   %+v\nparallel: %+v",
							i+1, rs.Work, rp.Work)
					}
					if rs.Entities != rp.Entities {
						t.Fatalf("tick %d: entity count %d vs %d", i+1, rs.Entities, rp.Entities)
					}
					if rp.SimParallel {
						parallelTicks++
					}
					if rp.EntParallel {
						entParallelTicks++
					}
					if rs.SimParallel || rs.EntParallel {
						t.Fatalf("tick %d: SimWorkers=1 server took a parallel path", i+1)
					}
				}
				// Final-state equivalence goes through the same comparison
				// path the scenario harness uses: terrain contents, entity
				// populations and state, collected items, traffic totals.
				ss, ps := serial.Snapshot(), parallel.Snapshot()
				if d := ss.Diff(&ps); d != "" {
					t.Fatalf("final state diverged: %s", d)
				}
				// The construct workloads must actually exercise the
				// region-parallel schedules (two clusters at Scale 2): the
				// terrain drains for the redstone-driven workloads, the
				// entity tick for the entity-heavy ones.
				if k == workload.Farm || k == workload.Lag {
					if parallelTicks == 0 {
						t.Fatalf("%s scale 2 never drained in parallel: %+v",
							k, parallel.Engine().ParallelStats())
					}
				}
				if k == workload.TNT && entParallelTicks == 0 {
					t.Fatalf("%s scale 2 never ticked entities in parallel: %+v",
						k, parallel.EntityWorld().ParallelStats())
				}
			})
		}
	}
}
