package server

import (
	"fmt"
	"hash/fnv"

	"repro/internal/mlg/entity"
	"repro/internal/mlg/world"
)

// Snapshot bundles the externally visible state of a server at a tick
// boundary: tick position, population, cumulative traffic, the entity-store
// state fingerprint and the per-chunk terrain fingerprints. It is the one
// comparison path shared by the serial-vs-parallel equivalence suites and
// the scenario harness — two servers that ran the same inputs must produce
// Equivalent snapshots at every tick boundary, whatever their SimWorkers.
//
// Call it between ticks, from the goroutine driving Tick (it walks entity
// and chunk state the same way the per-tick phases do).
type Snapshot struct {
	Tick           int64
	Players        int
	Entities       int
	Mobs           int
	Items          int
	TNT            int
	ItemsCollected int64
	Net            NetTotals
	// EntitySum is the FNV-1a checksum of the full entity wire snapshot
	// (entity.AppendStateSnapshot): every live entity's identity, motion and
	// lifecycle state in ID order.
	EntitySum uint64
	// Chunks fingerprints every loaded chunk in deterministic order. Chunk
	// revisions are included for single-server cache-consistency checks but
	// excluded from cross-server equivalence (see world.ChunkState).
	Chunks []world.ChunkState
}

// Snapshot captures the server's current state fingerprint.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	snap := Snapshot{
		Tick:    s.tick,
		Players: len(s.players),
		Net:     s.net,
	}
	s.mu.Unlock()
	snap.Entities = s.ents.Count()
	snap.Mobs = s.ents.CountByKind(entity.Mob)
	snap.Items = s.ents.CountByKind(entity.Item)
	snap.TNT = s.ents.CountByKind(entity.PrimedTNT)
	snap.ItemsCollected = s.engine.ItemsCollected
	h := fnv.New64a()
	h.Write(s.ents.AppendStateSnapshot(nil))
	snap.EntitySum = h.Sum64()
	snap.Chunks = s.w.ChunkStates()
	return snap
}

// Diff compares two snapshots for simulation equivalence and returns "" when
// they are equivalent, or a description of the first difference. Chunk
// revisions are deliberately not compared: they are monotonic cache keys that
// a rolled-back parallel attempt advances without changing content.
func (a *Snapshot) Diff(b *Snapshot) string {
	switch {
	case a.Tick != b.Tick:
		return fmt.Sprintf("tick %d vs %d", a.Tick, b.Tick)
	case a.Players != b.Players:
		return fmt.Sprintf("players %d vs %d", a.Players, b.Players)
	case a.Entities != b.Entities:
		return fmt.Sprintf("entity population %d vs %d", a.Entities, b.Entities)
	case a.Mobs != b.Mobs || a.Items != b.Items || a.TNT != b.TNT:
		return fmt.Sprintf("entity kinds mob/item/tnt %d/%d/%d vs %d/%d/%d",
			a.Mobs, a.Items, a.TNT, b.Mobs, b.Items, b.TNT)
	case a.ItemsCollected != b.ItemsCollected:
		return fmt.Sprintf("items collected %d vs %d", a.ItemsCollected, b.ItemsCollected)
	case a.Net != b.Net:
		return fmt.Sprintf("net totals %+v vs %+v", a.Net, b.Net)
	case a.EntitySum != b.EntitySum:
		return fmt.Sprintf("entity state snapshots diverged (%#x vs %#x)", a.EntitySum, b.EntitySum)
	case len(a.Chunks) != len(b.Chunks):
		return fmt.Sprintf("loaded chunk count %d vs %d", len(a.Chunks), len(b.Chunks))
	}
	for i := range a.Chunks {
		ca, cb := a.Chunks[i], b.Chunks[i]
		if ca.Pos != cb.Pos {
			return fmt.Sprintf("chunk set diverged at index %d: %v vs %v", i, ca.Pos, cb.Pos)
		}
		if ca.NonAir != cb.NonAir || ca.Sum != cb.Sum {
			return fmt.Sprintf("chunk %v content diverged: nonAir %d/%d sum %#x/%#x",
				ca.Pos, ca.NonAir, cb.NonAir, ca.Sum, cb.Sum)
		}
	}
	return ""
}
