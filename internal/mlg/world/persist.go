package world

import (
	"fmt"
	"sort"

	"repro/internal/mlg/persist"
)

// World section codec for the MLGP save format (internal/mlg/persist). The
// payload is the world's counters plus a sorted run of chunk records:
//
//	u64 generated | u64 setCount | u64 lightScans | u32 nChunks
//	per chunk: i32 X | i32 Z | u64 revision | bytes(RLE blocks)
//
// A full snapshot carries every loaded chunk; an incremental carries only
// chunks whose revision moved past the base snapshot's (plus chunks
// generated since). Revisions are saved and restored verbatim so revision-
// keyed caches (server chunk payloads, entity path invalidation) observe
// the same values a never-restarted server would.

// ChunkRevisions captures the revision of every loaded chunk — the base
// map an incremental snapshot is later computed against.
func (w *World) ChunkRevisions() map[ChunkPos]uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	revs := make(map[ChunkPos]uint64, len(w.chunks))
	for cp, c := range w.chunks {
		revs[cp] = c.rev
	}
	return revs
}

// AppendPersist appends the world section payload to dst. With
// changedSince nil every loaded chunk is written (a full snapshot);
// otherwise only chunks new or revised since that base are written (an
// incremental delta). Counters are always the current totals.
func (w *World) AppendPersist(dst []byte, changedSince map[ChunkPos]uint64) []byte {
	w.mu.RLock()
	defer w.mu.RUnlock()
	chunks := make([]*Chunk, 0, len(w.chunks))
	for cp, c := range w.chunks {
		if changedSince != nil {
			if baseRev, ok := changedSince[cp]; ok && baseRev == c.rev {
				continue
			}
		}
		chunks = append(chunks, c)
	}
	sort.Slice(chunks, func(i, j int) bool {
		if chunks[i].Pos.Z != chunks[j].Pos.Z {
			return chunks[i].Pos.Z < chunks[j].Pos.Z
		}
		return chunks[i].Pos.X < chunks[j].Pos.X
	})
	dst = persist.AppendU64(dst, uint64(w.generated))
	dst = persist.AppendU64(dst, uint64(w.setCount))
	dst = persist.AppendU64(dst, uint64(w.lightScans))
	dst = persist.AppendU32(dst, uint32(len(chunks)))
	for _, c := range chunks {
		dst = persist.AppendI32(dst, c.Pos.X)
		dst = persist.AppendI32(dst, c.Pos.Z)
		dst = persist.AppendU64(dst, c.rev)
		// Length-prefix the RLE so the record boundary survives decoding.
		lenAt := len(dst)
		dst = persist.AppendU32(dst, 0)
		dst = c.AppendRLE(dst)
		rleLen := len(dst) - lenAt - 4
		dst[lenAt] = byte(rleLen >> 24)
		dst[lenAt+1] = byte(rleLen >> 16)
		dst[lenAt+2] = byte(rleLen >> 8)
		dst[lenAt+3] = byte(rleLen)
	}
	return dst
}

// decodedWorld is a fully parsed and validated world section, built before
// any live state is touched so a decode failure never leaves the world
// half-restored.
type decodedWorld struct {
	generated, setCount, lightScans int
	chunks                          []*Chunk
}

func decodeWorldSection(data []byte) (*decodedWorld, error) {
	d := persist.NewDec(data)
	out := &decodedWorld{
		generated:  int(d.U64()),
		setCount:   int(d.U64()),
		lightScans: int(d.U64()),
	}
	n := d.Count(4 + 4 + 8 + 4)
	out.chunks = make([]*Chunk, 0, n)
	for i := 0; i < n; i++ {
		cp := ChunkPos{X: d.I32(), Z: d.I32()}
		rev := d.U64()
		rle := d.Bytes()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("world chunk %d: %w", i, err)
		}
		c := NewChunk(cp)
		if err := c.DecodeRLE(rle); err != nil {
			return nil, fmt.Errorf("%w: world chunk (%d,%d): %v", persist.ErrCorrupt, cp.X, cp.Z, err)
		}
		c.rev = rev
		out.chunks = append(out.chunks, c)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: world section has %d trailing bytes", persist.ErrCorrupt, d.Remaining())
	}
	return out, nil
}

// RestorePersist replaces the world's chunks and counters with a full
// snapshot section. Listeners and the generator are untouched; change
// listeners do not fire (the restored state is not a mutation). Lookup
// caches are invalidated.
func (w *World) RestorePersist(data []byte) error {
	dec, err := decodeWorldSection(data)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.chunks = make(map[ChunkPos]*Chunk, len(dec.chunks))
	for _, c := range dec.chunks {
		w.chunks[c.Pos] = c
	}
	w.generated = dec.generated
	w.setCount = dec.setCount
	w.lightScans = dec.lightScans
	w.chunkList = nil
	w.chunkRefs = nil
	return nil
}

// ApplyPersistDelta overlays an incremental world section onto the world:
// each carried chunk replaces (or adds) the chunk at its position, and the
// counters are set to the delta's totals. The world must already hold the
// delta's base full snapshot.
func (w *World) ApplyPersistDelta(data []byte) error {
	dec, err := decodeWorldSection(data)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, c := range dec.chunks {
		w.chunks[c.Pos] = c
	}
	w.generated = dec.generated
	w.setCount = dec.setCount
	w.lightScans = dec.lightScans
	w.chunkList = nil
	w.chunkRefs = nil
	return nil
}
