package world

// Halo mirroring: a shard applies terrain it does not own — received from
// the owning shard as an RLE chunk image — without simulating it. Mirrored
// chunks are read-only context for physics and pathfinding near a shard
// boundary; the owner remains the single writer, so mirror application
// bypasses change listeners and mutation accounting entirely.

// ApplyMirror replaces the chunk at cp with the RLE-encoded image in data
// (Chunk.AppendRLE format). The chunk is generated first if it was never
// loaded. Unlike SetBlock, no change listeners fire and no mutation stats
// accrue: the chunk's content is authoritative on another shard and this
// world is only keeping a consistent halo copy.
func (w *World) ApplyMirror(cp ChunkPos, data []byte) error {
	w.mu.Lock()
	c := w.chunkLocked(cp)
	err := c.DecodeRLE(data)
	w.mu.Unlock()
	return err
}
