package world

import "fmt"

// Pos is an integer block position in the world.
type Pos struct {
	X, Y, Z int
}

// String formats the position as (x,y,z).
func (p Pos) String() string { return fmt.Sprintf("(%d,%d,%d)", p.X, p.Y, p.Z) }

// Add returns p offset by (dx, dy, dz).
func (p Pos) Add(dx, dy, dz int) Pos { return Pos{p.X + dx, p.Y + dy, p.Z + dz} }

// Up, Down, North, South, East, West return the six face-adjacent positions.
func (p Pos) Up() Pos    { return p.Add(0, 1, 0) }
func (p Pos) Down() Pos  { return p.Add(0, -1, 0) }
func (p Pos) North() Pos { return p.Add(0, 0, -1) }
func (p Pos) South() Pos { return p.Add(0, 0, 1) }
func (p Pos) East() Pos  { return p.Add(1, 0, 0) }
func (p Pos) West() Pos  { return p.Add(-1, 0, 0) }

// Neighbors6 returns the six face-adjacent positions, the propagation set
// used by terrain-simulation rules (§2.3: each rule iteration informs the
// adjacent terrain).
func (p Pos) Neighbors6() [6]Pos {
	return [6]Pos{p.Up(), p.Down(), p.North(), p.South(), p.East(), p.West()}
}

// NeighborsHorizontal returns the four horizontally adjacent positions,
// used by fluid spread and wire propagation.
func (p Pos) NeighborsHorizontal() [4]Pos {
	return [4]Pos{p.North(), p.South(), p.East(), p.West()}
}

// Dist2 returns the squared Euclidean distance to q.
func (p Pos) Dist2(q Pos) int {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return dx*dx + dy*dy + dz*dz
}

// ManhattanDist returns the L1 distance to q, the admissible heuristic used
// by entity pathfinding.
func (p Pos) ManhattanDist(q Pos) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y) + abs(p.Z-q.Z)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Direction indexes the six block faces. It is the facing stored in the
// metadata of directional components (pistons, observers, repeaters point
// along the horizontal directions in this engine).
type Direction uint8

// Directions.
const (
	DirUp Direction = iota
	DirDown
	DirNorth
	DirSouth
	DirEast
	DirWest
)

// Offset returns the unit offset of the direction.
func (d Direction) Offset() (dx, dy, dz int) {
	switch d {
	case DirUp:
		return 0, 1, 0
	case DirDown:
		return 0, -1, 0
	case DirNorth:
		return 0, 0, -1
	case DirSouth:
		return 0, 0, 1
	case DirEast:
		return 1, 0, 0
	default:
		return -1, 0, 0
	}
}

// Opposite returns the facing in the reverse direction.
func (d Direction) Opposite() Direction {
	switch d {
	case DirUp:
		return DirDown
	case DirDown:
		return DirUp
	case DirNorth:
		return DirSouth
	case DirSouth:
		return DirNorth
	case DirEast:
		return DirWest
	default:
		return DirEast
	}
}

// Move returns p shifted one block along d.
func (d Direction) Move(p Pos) Pos {
	dx, dy, dz := d.Offset()
	return p.Add(dx, dy, dz)
}
