package world

// LabelComponents labels the connected components of a chunk-position set:
// two keys connect when their Chebyshev distance is at most link. Every
// value of set must be unassigned (-1) on entry; on return each key holds
// its component id, visit (optional) has been called once per key in
// discovery order, and the component count is returned.
//
// This is the one flood fill behind the region-parallel schedulers: the
// terrain engine's dirty-chunk partition, the entity store's occupied-chunk
// partition, and the blast-impulse grouping all label their sets here, with
// their own per-component bookkeeping in visit. Component ids depend on map
// iteration order and are not canonical — callers needing a deterministic
// order sort by a canonical key (e.g. the minimal member) afterwards.
func LabelComponents(set map[ChunkPos]int32, link int32, visit func(comp int32, cp ChunkPos)) int32 {
	const unassigned = -1
	var stack []ChunkPos
	comps := int32(0)
	for cp, id := range set {
		if id != unassigned {
			continue
		}
		comp := comps
		comps++
		set[cp] = comp
		stack = append(stack[:0], cp)
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visit != nil {
				visit(comp, c)
			}
			for dz := -link; dz <= link; dz++ {
				for dx := -link; dx <= link; dx++ {
					if dx == 0 && dz == 0 {
						continue
					}
					n := ChunkPos{X: c.X + dx, Z: c.Z + dz}
					if nid, ok := set[n]; ok && nid == unassigned {
						set[n] = comp
						stack = append(stack, n)
					}
				}
			}
		}
	}
	return comps
}
