package world

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Serialization gives worlds an on-disk form, analogous to Minecraft's
// region files: a gzip-compressed stream of run-length-encoded chunks. Its
// purpose here is twofold: workload worlds can be saved/loaded, and the
// compressed size reproduces the world-size column of Table 2.

const saveMagic = uint32(0x4D4C4757) // "MLGW"

// Save writes the world's loaded chunks to wr in the MLGW format.
func (w *World) Save(wr io.Writer) error {
	gz := gzip.NewWriter(wr)
	bw := bufio.NewWriter(gz)

	w.mu.RLock()
	chunks := make([]*Chunk, 0, len(w.chunks))
	for _, c := range w.chunks {
		chunks = append(chunks, c)
	}
	w.mu.RUnlock()
	// Deterministic order so identical worlds produce identical bytes.
	sort.Slice(chunks, func(i, j int) bool {
		if chunks[i].Pos.X != chunks[j].Pos.X {
			return chunks[i].Pos.X < chunks[j].Pos.X
		}
		return chunks[i].Pos.Z < chunks[j].Pos.Z
	})

	if err := binary.Write(bw, binary.BigEndian, saveMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(len(chunks))); err != nil {
		return err
	}
	for _, c := range chunks {
		if err := writeChunk(bw, c); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return gz.Close()
}

func writeChunk(bw *bufio.Writer, c *Chunk) error {
	if err := binary.Write(bw, binary.BigEndian, c.Pos.X); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, c.Pos.Z); err != nil {
		return err
	}
	// Run-length encode the flat block array: (count uint16, id, meta).
	i := 0
	for i < len(c.blocks) {
		j := i + 1
		for j < len(c.blocks) && c.blocks[j] == c.blocks[i] && j-i < 0xFFFF {
			j++
		}
		if err := binary.Write(bw, binary.BigEndian, uint16(j-i)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(c.blocks[i].ID)); err != nil {
			return err
		}
		if err := bw.WriteByte(c.blocks[i].Meta); err != nil {
			return err
		}
		i = j
	}
	// Run terminator.
	return binary.Write(bw, binary.BigEndian, uint16(0))
}

// Load reads a world saved with Save. The returned world uses the given
// generator for chunks beyond the saved set.
func Load(r io.Reader, gen Generator) (*World, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("world load: %w", err)
	}
	defer gz.Close()
	br := bufio.NewReader(gz)

	var magic uint32
	if err := binary.Read(br, binary.BigEndian, &magic); err != nil {
		return nil, fmt.Errorf("world load: %w", err)
	}
	if magic != saveMagic {
		return nil, fmt.Errorf("world load: bad magic %#x", magic)
	}
	var n uint32
	if err := binary.Read(br, binary.BigEndian, &n); err != nil {
		return nil, fmt.Errorf("world load: %w", err)
	}
	w := New(gen)
	for i := uint32(0); i < n; i++ {
		c, err := readChunk(br)
		if err != nil {
			return nil, fmt.Errorf("world load chunk %d: %w", i, err)
		}
		w.chunks[c.Pos] = c
	}
	return w, nil
}

func readChunk(br *bufio.Reader) (*Chunk, error) {
	var cp ChunkPos
	if err := binary.Read(br, binary.BigEndian, &cp.X); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.BigEndian, &cp.Z); err != nil {
		return nil, err
	}
	c := NewChunk(cp)
	idx := 0
	for {
		var count uint16
		if err := binary.Read(br, binary.BigEndian, &count); err != nil {
			return nil, err
		}
		if count == 0 {
			break
		}
		id, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		meta, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		b := Block{ID: BlockID(id), Meta: meta}
		for k := 0; k < int(count); k++ {
			if idx >= len(c.blocks) {
				return nil, fmt.Errorf("run overflows chunk")
			}
			c.blocks[idx] = b
			if !b.IsAir() {
				c.nonAir++
			}
			idx++
		}
	}
	if idx != len(c.blocks) {
		return nil, fmt.Errorf("chunk underfilled: %d of %d", idx, len(c.blocks))
	}
	c.RecomputeAllLight()
	return c, nil
}

// DecodeRLE decodes a chunk wire payload produced by Chunk.AppendRLE back
// into the chunk, replacing its contents and rebuilding the derived state
// (occupancy, lighting). It is the inverse the ChunkData protocol consumers
// need, and it rejects malformed input — truncated runs, zero-length runs,
// overflowing or underfilled payloads — with an error, never a panic, so it
// is safe to feed network bytes (see FuzzChunkRLE).
func (c *Chunk) DecodeRLE(data []byte) error {
	if len(data)%4 != 0 {
		return fmt.Errorf("chunk rle: truncated run at byte %d", len(data)-len(data)%4)
	}
	var blocks [ChunkSize * ChunkSize * Height]Block
	idx := 0
	nonAir := 0
	for off := 0; off < len(data); off += 4 {
		count := int(data[off])<<8 | int(data[off+1])
		if count == 0 {
			return fmt.Errorf("chunk rle: zero-length run at byte %d", off)
		}
		b := Block{ID: BlockID(data[off+2]), Meta: data[off+3]}
		if idx+count > len(blocks) {
			return fmt.Errorf("chunk rle: run overflows chunk: %d blocks past %d", idx+count, len(blocks))
		}
		for k := 0; k < count; k++ {
			blocks[idx] = b
			idx++
		}
		if !b.IsAir() {
			nonAir += count
		}
	}
	if idx != len(blocks) {
		return fmt.Errorf("chunk rle: payload underfills chunk: %d of %d blocks", idx, len(blocks))
	}
	c.blocks = blocks
	c.nonAir = nonAir
	c.rev++
	c.RecomputeAllLight()
	return nil
}

// SavedSize serializes the world to a counting sink and returns the
// compressed byte size — the "Size [MB]" column of Table 2.
func (w *World) SavedSize() (int64, error) {
	var cw countingWriter
	if err := w.Save(&cw); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
