package world

import "hash/fnv"

// ChunkState is a compact fingerprint of one loaded chunk column: its
// position, mutation revision, occupancy, and an FNV-1a checksum of its RLE
// serialization. The equivalence suites and the scenario harness compare
// chunk states between servers to prove terrain equality without diffing raw
// block arrays.
//
// Revision is a monotonic cache key, not simulation state: a rolled-back
// parallel drain advances it without changing contents (restored blocks
// re-encode to identical payloads), so two schedule-equivalent servers may
// legitimately disagree on Revision while agreeing on Sum. Cross-server
// comparisons must therefore key on (Pos, NonAir, Sum); Revision exists so a
// single server's history can be checked for cache-poisoning — content that
// changes without the revision advancing would serve stale revision-keyed
// payloads.
type ChunkState struct {
	Pos      ChunkPos
	Revision uint64
	NonAir   int
	Sum      uint64
}

// StateSum returns the FNV-1a checksum of the chunk's RLE serialization —
// the content fingerprint used by ChunkState.
func (c *Chunk) StateSum(scratch []byte) (sum uint64, buf []byte) {
	buf = c.AppendRLE(scratch[:0])
	h := fnv.New64a()
	h.Write(buf)
	return h.Sum64(), buf
}

// ChunkStates returns the state fingerprint of every loaded chunk in the
// fixed (Z, X) order of LoadedChunks. Tick-goroutine callers only (it reads
// chunk contents without per-chunk locking, like the other whole-world
// accessors the equivalence suites use between ticks).
func (w *World) ChunkStates() []ChunkState {
	refs := w.LoadedChunkRefs()
	out := make([]ChunkState, 0, len(refs))
	var scratch []byte
	for _, c := range refs {
		var sum uint64
		sum, scratch = c.StateSum(scratch)
		out = append(out, ChunkState{
			Pos:      c.Pos,
			Revision: c.Revision(),
			NonAir:   c.NonAirCount(),
			Sum:      sum,
		})
	}
	return out
}
