package world

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBlockProperties(t *testing.T) {
	if !B(Stone).IsSolid() || B(Air).IsSolid() || B(Water).IsSolid() {
		t.Error("solidity wrong")
	}
	if !B(Water).IsFluid() || !B(Lava).IsFluid() || B(Stone).IsFluid() {
		t.Error("fluid classification wrong")
	}
	if !B(Sand).IsGravityAffected() || !B(Gravel).IsGravityAffected() || B(Stone).IsGravityAffected() {
		t.Error("gravity classification wrong")
	}
	if !B(RedstoneWire).IsRedstoneComponent() || B(Dirt).IsRedstoneComponent() {
		t.Error("redstone classification wrong")
	}
	if B(Glass).IsOpaque() || !B(Stone).IsOpaque() || B(Water).IsOpaque() {
		t.Error("opacity wrong")
	}
	if Stone.String() != "stone" || Air.String() != "air" {
		t.Error("block names wrong")
	}
	if BlockID(200).String() == "" {
		t.Error("out-of-range block name empty")
	}
}

func TestBlockPower(t *testing.T) {
	if got := B(RedstoneBlock).PowerOutput(); got != 15 {
		t.Errorf("redstone block power = %d, want 15", got)
	}
	if got := (Block{ID: RedstoneWire, Meta: 7}).PowerOutput(); got != 7 {
		t.Errorf("wire power = %d, want 7", got)
	}
	lit := Block{ID: RedstoneTorch, Meta: 1}
	if lit.PowerOutput() != 15 || B(RedstoneTorch).PowerOutput() != 0 {
		t.Error("torch power wrong")
	}
	rep := Block{ID: Repeater, Meta: 2} // delay bits = 2 -> 3 ticks
	if rep.RepeaterDelay() != 3 {
		t.Errorf("repeater delay = %d, want 3", rep.RepeaterDelay())
	}
	rep = rep.WithRepeaterPowered(true)
	if !rep.RepeaterPowered() || rep.PowerOutput() != 15 || rep.RepeaterDelay() != 3 {
		t.Error("repeater powered bit broken")
	}
	rep = rep.WithRepeaterPowered(false)
	if rep.RepeaterPowered() || rep.PowerOutput() != 0 {
		t.Error("repeater unpower broken")
	}
	obs := B(Observer).WithObserverPulse(true)
	if !obs.ObserverPulsing() || obs.PowerOutput() != 15 {
		t.Error("observer pulse broken")
	}
	pis := B(Piston).WithPistonExtended(true)
	if !pis.PistonExtended() {
		t.Error("piston extended bit broken")
	}
}

func TestPosHelpers(t *testing.T) {
	p := Pos{1, 2, 3}
	if p.Up() != (Pos{1, 3, 3}) || p.Down() != (Pos{1, 1, 3}) {
		t.Error("vertical neighbours wrong")
	}
	n := p.Neighbors6()
	if len(n) != 6 {
		t.Error("Neighbors6 wrong")
	}
	seen := map[Pos]bool{}
	for _, q := range n {
		if p.Dist2(q) != 1 {
			t.Errorf("neighbour %v not at distance 1", q)
		}
		seen[q] = true
	}
	if len(seen) != 6 {
		t.Error("duplicate neighbours")
	}
	if p.ManhattanDist(Pos{4, 0, 5}) != 7 {
		t.Error("manhattan wrong")
	}
}

func TestDirections(t *testing.T) {
	for _, d := range []Direction{DirUp, DirDown, DirNorth, DirSouth, DirEast, DirWest} {
		if d.Opposite().Opposite() != d {
			t.Errorf("double opposite of %v changed it", d)
		}
		p := Pos{10, 10, 10}
		q := d.Move(p)
		if d.Opposite().Move(q) != p {
			t.Errorf("move/unmove of %v not inverse", d)
		}
	}
}

func TestChunkPosAt(t *testing.T) {
	cases := []struct {
		p    Pos
		want ChunkPos
	}{
		{Pos{0, 0, 0}, ChunkPos{0, 0}},
		{Pos{15, 0, 15}, ChunkPos{0, 0}},
		{Pos{16, 0, 0}, ChunkPos{1, 0}},
		{Pos{-1, 0, -1}, ChunkPos{-1, -1}},
		{Pos{-16, 0, -17}, ChunkPos{-1, -2}},
	}
	for _, c := range cases {
		if got := ChunkPosAt(c.p); got != c.want {
			t.Errorf("ChunkPosAt(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if o := (ChunkPos{-1, 2}).Origin(); o != (Pos{-16, 0, 32}) {
		t.Errorf("Origin = %v", o)
	}
}

func TestChunkSetGet(t *testing.T) {
	c := NewChunk(ChunkPos{0, 0})
	if c.NonAirCount() != 0 {
		t.Fatal("new chunk not empty")
	}
	old := c.Set(3, 10, 5, B(Stone))
	if !old.IsAir() {
		t.Error("old block should be air")
	}
	if c.At(3, 10, 5).ID != Stone {
		t.Error("block not stored")
	}
	if c.NonAirCount() != 1 {
		t.Error("nonAir count wrong")
	}
	c.Set(3, 10, 5, B(Air))
	if c.NonAirCount() != 0 {
		t.Error("nonAir count not decremented")
	}
	// Out-of-range access is air / no-op.
	if !c.At(-1, 0, 0).IsAir() || !c.At(0, Height, 0).IsAir() {
		t.Error("out-of-range At should be air")
	}
	c.Set(0, -1, 0, B(Stone))
	if c.NonAirCount() != 0 {
		t.Error("out-of-range Set should be ignored")
	}
}

func TestChunkLighting(t *testing.T) {
	c := NewChunk(ChunkPos{0, 0})
	c.Set(4, 9, 4, B(Stone))
	c.RecomputeColumnLight(4, 4)
	if got := c.LightHorizon(4, 4); got != 10 {
		t.Errorf("horizon = %d, want 10", got)
	}
	c.Set(4, 30, 4, B(Stone))
	c.RecomputeColumnLight(4, 4)
	if got := c.LightHorizon(4, 4); got != 31 {
		t.Errorf("horizon = %d, want 31", got)
	}
	// Glass is transparent: horizon unchanged.
	c.Set(4, 40, 4, B(Glass))
	c.RecomputeColumnLight(4, 4)
	if got := c.LightHorizon(4, 4); got != 31 {
		t.Errorf("horizon through glass = %d, want 31", got)
	}
}

func TestWorldSetGetAcrossChunks(t *testing.T) {
	w := New(nil) // void world
	positions := []Pos{{0, 5, 0}, {100, 5, -200}, {-1, 5, -1}, {17, 63, 31}}
	for i, p := range positions {
		w.SetBlock(p, Block{ID: Stone, Meta: uint8(i)})
	}
	for i, p := range positions {
		got := w.Block(p)
		if got.ID != Stone || got.Meta != uint8(i) {
			t.Errorf("block at %v = %+v", p, got)
		}
	}
	// Vertical out-of-range.
	if !w.Block(Pos{0, -1, 0}).IsAir() || !w.Block(Pos{0, Height, 0}).IsAir() {
		t.Error("vertical out-of-range should be air")
	}
	w.SetBlock(Pos{0, -5, 0}, B(Stone)) // must not panic or store
	if !w.Block(Pos{0, -5, 0}).IsAir() {
		t.Error("negative-Y set stored")
	}
}

func TestWorldChangeListener(t *testing.T) {
	w := New(nil)
	var events []Pos
	w.OnChange(func(p Pos, old, new Block) {
		events = append(events, p)
		if old.ID == new.ID && old.Meta == new.Meta {
			t.Error("listener fired without change")
		}
	})
	w.SetBlock(Pos{1, 1, 1}, B(Stone))
	w.SetBlock(Pos{1, 1, 1}, B(Stone)) // identical: no event
	w.SetBlock(Pos{1, 1, 1}, B(Dirt))
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
}

func TestNoiseGeneratorDeterministic(t *testing.T) {
	g1 := NewNoiseGenerator(PaperControlSeed)
	g2 := NewNoiseGenerator(PaperControlSeed)
	c1 := NewChunk(ChunkPos{3, -2})
	c2 := NewChunk(ChunkPos{3, -2})
	g1.GenerateChunk(c1)
	g2.GenerateChunk(c2)
	if c1.blocks != c2.blocks {
		t.Fatal("generation not deterministic")
	}
	g3 := NewNoiseGenerator(42)
	c3 := NewChunk(ChunkPos{3, -2})
	g3.GenerateChunk(c3)
	if c1.blocks == c3.blocks {
		t.Fatal("different seeds produced identical chunks")
	}
}

func TestNoiseGeneratorTerrainShape(t *testing.T) {
	w := New(NewNoiseGenerator(PaperControlSeed))
	w.EnsureArea(Pos{0, 0, 0}, 3)
	sawWater, sawGrass, sawTree := false, false, false
	for _, cp := range w.LoadedChunks() {
		c := w.ChunkIfLoaded(cp)
		for lz := 0; lz < ChunkSize; lz++ {
			for lx := 0; lx < ChunkSize; lx++ {
				if c.At(lx, 0, lz).ID != Bedrock {
					t.Fatalf("no bedrock at bottom of %v", cp)
				}
				for y := 0; y < Height; y++ {
					switch c.At(lx, y, lz).ID {
					case Water:
						sawWater = true
					case Grass:
						sawGrass = true
					case Wood:
						sawTree = true
					}
				}
			}
		}
	}
	if !sawGrass {
		t.Error("no grass generated")
	}
	if !sawWater {
		t.Error("no water generated (seed should include depressions)")
	}
	if !sawTree {
		t.Error("no trees generated")
	}
}

func TestFlatGenerator(t *testing.T) {
	w := New(&FlatGenerator{SurfaceY: 10, Surface: Grass})
	if got := w.Block(Pos{5, 10, 5}).ID; got != Grass {
		t.Errorf("surface = %v, want grass", got)
	}
	if got := w.Block(Pos{5, 9, 5}).ID; got != Stone {
		t.Errorf("subsurface = %v, want stone", got)
	}
	if !w.Block(Pos{5, 11, 5}).IsAir() {
		t.Error("above surface not air")
	}
	if got := w.HighestSolidY(5, 5); got != 10 {
		t.Errorf("highest solid = %d, want 10", got)
	}
}

func TestEnsureAreaCounts(t *testing.T) {
	w := New(&FlatGenerator{SurfaceY: 5})
	n := w.EnsureArea(Pos{0, 0, 0}, 2)
	if n != 25 {
		t.Fatalf("generated %d chunks, want 25", n)
	}
	if again := w.EnsureArea(Pos{0, 0, 0}, 2); again != 0 {
		t.Fatalf("regenerated %d chunks, want 0", again)
	}
	if w.ChunkCount() != 25 {
		t.Fatalf("chunk count = %d, want 25", w.ChunkCount())
	}
	gen, _, _ := w.Stats()
	if gen != 25 {
		t.Fatalf("stats generated = %d", gen)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	w := New(NewNoiseGenerator(7))
	w.EnsureArea(Pos{0, 0, 0}, 2)
	w.SetBlock(Pos{3, 40, 3}, Block{ID: RedstoneWire, Meta: 9})
	w.SetBlock(Pos{-20, 12, 7}, B(TNT))

	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w2.ChunkCount() != w.ChunkCount() {
		t.Fatalf("chunk counts differ: %d vs %d", w2.ChunkCount(), w.ChunkCount())
	}
	for _, cp := range w.LoadedChunks() {
		a, b := w.ChunkIfLoaded(cp), w2.ChunkIfLoaded(cp)
		if b == nil {
			t.Fatalf("chunk %v missing after load", cp)
		}
		if a.blocks != b.blocks {
			t.Fatalf("chunk %v differs after round trip", cp)
		}
		if a.NonAirCount() != b.NonAirCount() {
			t.Fatalf("chunk %v nonAir differs", cp)
		}
	}
	if got := w2.Block(Pos{3, 40, 3}); got.ID != RedstoneWire || got.Meta != 9 {
		t.Fatalf("block lost in round trip: %+v", got)
	}
}

func TestSaveDeterministicBytes(t *testing.T) {
	build := func() *World {
		w := New(NewNoiseGenerator(7))
		w.EnsureArea(Pos{0, 0, 0}, 1)
		return w
	}
	var a, b bytes.Buffer
	if err := build().Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical worlds serialized differently")
	}
}

func TestSavedSize(t *testing.T) {
	w := New(NewNoiseGenerator(7))
	w.EnsureArea(Pos{0, 0, 0}, 4)
	size, err := w.SavedSize()
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatal("saved size not positive")
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != size {
		t.Fatalf("SavedSize %d != actual %d", size, buf.Len())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a world")), nil); err == nil {
		t.Fatal("expected error on garbage input")
	}
}

// Property: floorDiv/floorMod reconstruct the argument and mod is in range.
func TestFloorDivModProperty(t *testing.T) {
	f := func(a int32) bool {
		x := int(a)
		q, m := floorDiv(x, ChunkSize), floorMod(x, ChunkSize)
		return q*ChunkSize+m == x && m >= 0 && m < ChunkSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: world Block/SetBlock round-trips arbitrary in-range positions.
func TestWorldRoundTripProperty(t *testing.T) {
	w := New(nil)
	f := func(x, z int16, y uint8, id uint8, meta uint8) bool {
		p := Pos{int(x), int(y) % Height, int(z)}
		b := Block{ID: BlockID(id % uint8(NumBlockIDs)), Meta: meta}
		w.SetBlock(p, b)
		return w.Block(p) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
