package world

import (
	"sync"
	"testing"
)

// TestConcurrentSetBlockAndReaders: the lock-free chunk-read fast paths
// must keep chunk contents under the read lock — a joining player's spawn
// probe (HighestSolidY) and terrain reads race the tick goroutine's
// SetBlock otherwise. Run under -race, this is the regression guard.
func TestConcurrentSetBlockAndReaders(t *testing.T) {
	w := New(&FlatGenerator{SurfaceY: 10, Surface: Grass})
	w.EnsureArea(Pos{X: 8, Z: 8}, 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				w.SetBlock(Pos{X: 8, Y: 30, Z: 8}, B(Stone))
			} else {
				w.SetBlock(Pos{X: 8, Y: 30, Z: 8}, B(Air))
			}
		}
	}()
	for i := 0; i < 20000; i++ {
		w.HighestSolidY(8, 8)
		w.Block(Pos{X: 8, Y: 30, Z: 8})
		w.BlockIfLoaded(Pos{X: 8, Y: 30, Z: 8})
	}
	close(stop)
	wg.Wait()
}

// TestExclusivePhaseShutsOutReaders: the region-parallel drains write chunk
// contents without per-write locking between BeginExclusive and
// EndExclusive. That is only sound if every reader path is fenced by the
// world lock — this test writes a chunk directly during repeated exclusive
// phases while reader goroutines hammer the same cells through the public
// API, and relies on -race to catch any unfenced access.
func TestExclusivePhaseShutsOutReaders(t *testing.T) {
	w := New(&FlatGenerator{SurfaceY: 10, Surface: Grass})
	w.EnsureArea(Pos{X: 8, Z: 8}, 1)
	target := Pos{X: 8, Y: 30, Z: 8}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.Block(target)
				w.BlockIfLoaded(target)
				w.HighestSolidY(8, 8)
				w.Stats()
			}
		}()
	}

	for i := 0; i < 20000; i++ {
		index := w.BeginExclusive()
		cache := NewFixedChunkCache(index)
		c := cache.Chunk(ChunkPosAt(target))
		lx, lz := ChunkLocal(target)
		old := c.At(lx, target.Y, lz)
		if i%2 == 0 {
			c.Set(lx, target.Y, lz, B(Stone))
		} else {
			c.Set(lx, target.Y, lz, B(Air))
		}
		c.RecomputeColumnLight(lx, lz)
		_ = old
		w.EndExclusive()
		// Stats merge and listener replay happen after the exclusive phase,
		// exactly as the engine's merge does.
		w.AddMutationStats(1, 1)
		if i%100 == 0 {
			w.EmitChange(target, old, c.At(lx, target.Y, lz))
		}
	}
	close(stop)
	wg.Wait()
}
