package world

import (
	"sync"
	"testing"
)

// TestConcurrentSetBlockAndReaders: the lock-free chunk-read fast paths
// must keep chunk contents under the read lock — a joining player's spawn
// probe (HighestSolidY) and terrain reads race the tick goroutine's
// SetBlock otherwise. Run under -race, this is the regression guard.
func TestConcurrentSetBlockAndReaders(t *testing.T) {
	w := New(&FlatGenerator{SurfaceY: 10, Surface: Grass})
	w.EnsureArea(Pos{X: 8, Z: 8}, 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				w.SetBlock(Pos{X: 8, Y: 30, Z: 8}, B(Stone))
			} else {
				w.SetBlock(Pos{X: 8, Y: 30, Z: 8}, B(Air))
			}
		}
	}()
	for i := 0; i < 20000; i++ {
		w.HighestSolidY(8, 8)
		w.Block(Pos{X: 8, Y: 30, Z: 8})
		w.BlockIfLoaded(Pos{X: 8, Y: 30, Z: 8})
	}
	close(stop)
	wg.Wait()
}
