// Package world implements the voxel terrain substrate of the MLG engine:
// block types, chunks, lazy terrain generation from a seeded noise field, a
// column-based lighting model, and world serialization (used to report the
// Table 2 world sizes).
//
// The world is the Game State (component 3 of the paper's operational model,
// Figure 4): terrain state that the player handler, terrain simulation, and
// entities all read and write, and whose modifications drive the
// environment-based workloads that are the paper's subject.
package world

import "fmt"

// BlockID enumerates the block types the engine simulates. The set covers
// everything the paper's four workload worlds need: natural terrain, fluids,
// TNT, the redstone-like logic components the Lag machine and farms are made
// of, and crops for growth simulation.
type BlockID uint8

// Block types.
const (
	Air BlockID = iota
	Bedrock
	Stone
	Cobblestone
	Dirt
	Grass
	Sand
	Gravel
	Water // Meta: fluid level, 0 = source, 1..7 = flowing
	Lava  // Meta: fluid level like Water
	Wood
	Leaves
	TNT
	Obsidian
	Glass
	RedstoneWire  // Meta: power level 0..15
	RedstoneTorch // Meta: 1 when lit
	RedstoneBlock // constant power source
	Repeater      // Meta: low 2 bits delay-1 (1..4 ticks), bit 2 powered
	Observer      // Meta: bit 0 pulse-armed, emits on neighbour change
	Piston        // Meta: bit 0 extended
	PistonHead
	Lever // Meta: 1 when on
	Hopper
	Chest
	Dropper
	Kelp  // Meta: growth stage 0..15
	Wheat // Meta: growth stage 0..7
	Farmland
	Sapling
	SlimeBlock
	Ice
	Torch
	Spawner // mob spawner block used by entity farms

	// NumBlockIDs is the number of defined block types.
	NumBlockIDs
)

var blockNames = [NumBlockIDs]string{
	"air", "bedrock", "stone", "cobblestone", "dirt", "grass", "sand",
	"gravel", "water", "lava", "wood", "leaves", "tnt", "obsidian", "glass",
	"redstone_wire", "redstone_torch", "redstone_block", "repeater",
	"observer", "piston", "piston_head", "lever", "hopper", "chest",
	"dropper", "kelp", "wheat", "farmland", "sapling", "slime_block", "ice",
	"torch", "spawner",
}

// String returns the block type's name.
func (id BlockID) String() string {
	if int(id) < len(blockNames) {
		return blockNames[id]
	}
	return fmt.Sprintf("block(%d)", uint8(id))
}

// Block is one voxel: a type plus per-type metadata (fluid level, redstone
// power, growth stage, ...).
type Block struct {
	ID   BlockID
	Meta uint8
}

// B is shorthand for Block{ID: id}.
func B(id BlockID) Block { return Block{ID: id} }

// IsAir reports whether the block is empty space.
func (b Block) IsAir() bool { return b.ID == Air }

// IsFluid reports whether the block is water or lava.
func (b Block) IsFluid() bool { return b.ID == Water || b.ID == Lava }

// IsSolid reports whether the block blocks movement and supports other
// blocks. Air, fluids, wires, torches, crops and similar decorations are not
// solid.
func (b Block) IsSolid() bool {
	switch b.ID {
	case Air, Water, Lava, RedstoneWire, RedstoneTorch, Torch, Kelp, Wheat,
		Sapling, Lever, Repeater, Observer:
		return false
	default:
		return b.ID < NumBlockIDs
	}
}

// IsGravityAffected reports whether the block falls when unsupported (the
// terrain-physics rule of §2.2.2).
func (b Block) IsGravityAffected() bool { return b.ID == Sand || b.ID == Gravel }

// IsRedstoneComponent reports whether the block participates in the
// logic-circuit simulation.
func (b Block) IsRedstoneComponent() bool {
	switch b.ID {
	case RedstoneWire, RedstoneTorch, RedstoneBlock, Repeater, Observer,
		Piston, PistonHead, Lever:
		return true
	default:
		return false
	}
}

// IsOpaque reports whether the block stops sky light, which drives the
// column-lighting recomputation cost.
func (b Block) IsOpaque() bool {
	switch b.ID {
	case Air, Glass, Water, RedstoneWire, RedstoneTorch, Torch, Kelp, Wheat,
		Sapling, Lever, Repeater, Observer, Ice:
		return false
	default:
		return b.IsSolid()
	}
}

// PowerOutput returns the redstone power level (0..15) this block emits to
// its neighbours.
func (b Block) PowerOutput() uint8 {
	switch b.ID {
	case RedstoneBlock:
		return 15
	case RedstoneTorch:
		if b.Meta&1 != 0 {
			return 15
		}
	case Lever:
		if b.Meta&1 != 0 {
			return 15
		}
	case RedstoneWire:
		return b.Meta & 0x0F
	case Repeater:
		if b.Meta&repeaterPoweredBit != 0 {
			return 15
		}
	case Observer:
		if b.Meta&observerPulseBit != 0 {
			return 15
		}
	}
	return 0
}

// Metadata bit layouts for the logic components. Directional components
// (repeater, observer, piston, dropper) store their facing in bits 3-5,
// leaving the low bits for component state.
const (
	repeaterPoweredBit = 1 << 2
	observerPulseBit   = 1 << 0
	pistonExtendedBit  = 1 << 0
	facingShift        = 3
	facingMask         = 0x7 << facingShift
)

// Facing returns the direction a directional component points (the direction
// a piston pushes, an observer watches, a repeater outputs).
func (b Block) Facing() Direction {
	return Direction((b.Meta & facingMask) >> facingShift)
}

// WithFacing returns the block with its facing set.
func (b Block) WithFacing(d Direction) Block {
	b.Meta = (b.Meta &^ facingMask) | (uint8(d) << facingShift)
	return b
}

// RepeaterDelay returns the repeater's configured delay in game ticks (1-4).
func (b Block) RepeaterDelay() int { return int(b.Meta&0x03) + 1 }

// WithRepeaterPowered returns the block with its powered bit set or cleared.
func (b Block) WithRepeaterPowered(on bool) Block {
	if on {
		b.Meta |= repeaterPoweredBit
	} else {
		b.Meta &^= repeaterPoweredBit
	}
	return b
}

// RepeaterPowered reports the repeater's output state.
func (b Block) RepeaterPowered() bool { return b.Meta&repeaterPoweredBit != 0 }

// ObserverPulsing reports whether an observer is emitting its one-tick pulse.
func (b Block) ObserverPulsing() bool { return b.Meta&observerPulseBit != 0 }

// WithObserverPulse returns the observer with its pulse bit set or cleared.
func (b Block) WithObserverPulse(on bool) Block {
	if on {
		b.Meta |= observerPulseBit
	} else {
		b.Meta &^= observerPulseBit
	}
	return b
}

// PistonExtended reports whether a piston is extended.
func (b Block) PistonExtended() bool { return b.Meta&pistonExtendedBit != 0 }

// WithPistonExtended returns the piston with its extended bit set or cleared.
func (b Block) WithPistonExtended(on bool) Block {
	if on {
		b.Meta |= pistonExtendedBit
	} else {
		b.Meta &^= pistonExtendedBit
	}
	return b
}
