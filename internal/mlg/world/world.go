package world

import (
	"sort"
	"sync"
)

// ChangeListener observes every block mutation. The terrain simulation
// registers one to schedule neighbour updates; the server registers one to
// queue state-update messages for clients.
type ChangeListener func(p Pos, old, new Block)

// World is the global terrain state: a lazily generated set of chunks plus
// mutation hooks. The game loop accesses it from the tick goroutine; reads
// from other goroutines (metric externalizer) go through the same lock.
type World struct {
	mu        sync.RWMutex
	chunks    map[ChunkPos]*Chunk
	gen       Generator
	listeners []ChangeListener
	// chunkList caches LoadedChunks' sorted result; chunks are only ever
	// added, so it is invalidated (nilled) on generation and rebuilt lazily.
	// chunkRefs is the parallel pointer view served by LoadedChunkRefs.
	chunkList []ChunkPos
	chunkRefs []*Chunk

	// Counters for work accounting and reporting.
	generated  int
	setCount   int
	lightScans int
}

// New returns an empty world backed by the generator. A nil generator
// produces void (all-air) chunks.
func New(gen Generator) *World {
	return &World{chunks: make(map[ChunkPos]*Chunk), gen: gen}
}

// OnChange registers a mutation listener. Listeners are invoked
// synchronously, in registration order, while the world lock is held by the
// mutating goroutine; they must not call back into SetBlock (use a queue).
func (w *World) OnChange(l ChangeListener) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.listeners = append(w.listeners, l)
}

// EmitChange invokes every change listener for a mutation that was applied
// outside SetBlock — the region-parallel simulation writes chunks directly
// during its exclusive phase and replays the buffered (pos, old, new) events
// through here afterwards, in the serial-equivalent order.
func (w *World) EmitChange(p Pos, old, new Block) {
	w.mu.RLock()
	listeners := w.listeners
	w.mu.RUnlock()
	for _, l := range listeners {
		l(p, old, new)
	}
}

// BeginExclusive write-locks the world for a bulk mutation phase and returns
// the live chunk index for lock-free resolution while the phase lasts. The
// region-parallel simulation drains its regions between BeginExclusive and
// EndExclusive: external readers (metric externalizers, joining players)
// block on the lock exactly as they would behind a burst of SetBlock calls,
// and the workers partition the chunk set among themselves so no chunk is
// touched by two goroutines. The returned map must only be read, and only
// until EndExclusive.
func (w *World) BeginExclusive() map[ChunkPos]*Chunk {
	w.mu.Lock()
	return w.chunks
}

// EndExclusive releases the lock taken by BeginExclusive.
func (w *World) EndExclusive() {
	w.mu.Unlock()
}

// AddMutationStats merges externally accounted mutation work into the
// world's counters: the region-parallel drains count their block sets and
// lighting scans per region and fold them in here at merge time, so Stats
// reports the same totals as the equivalent serial SetBlock sequence.
func (w *World) AddMutationStats(sets, lightScans int) {
	w.mu.Lock()
	w.setCount += sets
	w.lightScans += lightScans
	w.mu.Unlock()
}

// chunkLocked returns (generating if needed) the chunk; caller holds w.mu.
func (w *World) chunkLocked(cp ChunkPos) *Chunk {
	if c, ok := w.chunks[cp]; ok {
		return c
	}
	c := NewChunk(cp)
	if w.gen != nil {
		w.gen.GenerateChunk(c)
	}
	w.chunks[cp] = c
	w.chunkList = nil
	w.chunkRefs = nil
	w.generated++
	return c
}

// Chunk returns the chunk at cp, generating it on first access.
func (w *World) Chunk(cp ChunkPos) *Chunk {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.chunkLocked(cp)
}

// ChunkIfLoaded returns the chunk at cp or nil without triggering
// generation.
func (w *World) ChunkIfLoaded(cp ChunkPos) *Chunk {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.chunks[cp]
}

// Block returns the block at p. Positions outside the vertical range are
// air; horizontal access lazily generates terrain, the §2.2.2 on-demand
// generation workload. Loaded chunks are resolved under the read lock so
// concurrent readers do not serialize; only a miss takes the write lock to
// generate.
func (w *World) Block(p Pos) Block {
	if p.Y < 0 || p.Y >= Height {
		return Block{}
	}
	cp := ChunkPosAt(p)
	// The chunk read happens under the same RLock as the map lookup:
	// SetBlock mutates chunk contents under the write lock, so an unlocked
	// At would race with it (readers still do not serialize each other).
	w.mu.RLock()
	if c := w.chunks[cp]; c != nil {
		b := c.At(floorMod(p.X, ChunkSize), p.Y, floorMod(p.Z, ChunkSize))
		w.mu.RUnlock()
		return b
	}
	w.mu.RUnlock()
	w.mu.Lock()
	c := w.chunkLocked(cp)
	b := c.At(floorMod(p.X, ChunkSize), p.Y, floorMod(p.Z, ChunkSize))
	w.mu.Unlock()
	return b
}

// BlockIfLoaded returns the block at p and whether its chunk was loaded,
// never triggering generation. Entities use it so AI queries do not expand
// the world.
func (w *World) BlockIfLoaded(p Pos) (Block, bool) {
	if p.Y < 0 || p.Y >= Height {
		return Block{}, true
	}
	w.mu.RLock()
	c := w.chunks[ChunkPosAt(p)]
	if c == nil {
		w.mu.RUnlock()
		return Block{}, false
	}
	b := c.At(floorMod(p.X, ChunkSize), p.Y, floorMod(p.Z, ChunkSize))
	w.mu.RUnlock()
	return b, true
}

// SetBlock stores b at p, returns the previous block, recomputes the
// column's light if the change crosses the sky-light horizon, and notifies
// change listeners. Out-of-range vertical positions are no-ops.
func (w *World) SetBlock(p Pos, b Block) Block {
	if p.Y < 0 || p.Y >= Height {
		return Block{}
	}
	cp := ChunkPosAt(p)
	lx, lz := floorMod(p.X, ChunkSize), floorMod(p.Z, ChunkSize)

	w.mu.Lock()
	c := w.chunkLocked(cp)
	old := c.Set(lx, p.Y, lz, b)
	w.setCount++
	if old.IsOpaque() != b.IsOpaque() && p.Y >= c.LightHorizon(lx, lz)-1 {
		w.lightScans += c.RecomputeColumnLight(lx, lz)
	}
	listeners := w.listeners
	w.mu.Unlock()

	if old != b {
		for _, l := range listeners {
			l(p, old, b)
		}
	}
	return old
}

// HighestSolidY returns the Y of the highest solid block in the column at
// (x, z), generating the chunk if needed; -1 for an empty column. Like
// Block, loaded chunks take only the read lock.
func (w *World) HighestSolidY(x, z int) int {
	cp := ChunkPosAt(Pos{X: x, Z: z})
	w.mu.RLock()
	if c := w.chunks[cp]; c != nil {
		y := c.HighestSolidY(floorMod(x, ChunkSize), floorMod(z, ChunkSize))
		w.mu.RUnlock()
		return y
	}
	w.mu.RUnlock()
	w.mu.Lock()
	c := w.chunkLocked(cp)
	y := c.HighestSolidY(floorMod(x, ChunkSize), floorMod(z, ChunkSize))
	w.mu.Unlock()
	return y
}

// EnsureArea loads (generating as needed) all chunks intersecting the
// square of the given chunk radius around the block position center. It
// returns the number of chunks generated by the call — the lazy terrain
// generation work triggered by a player coming near (§2.2.2).
func (w *World) EnsureArea(center Pos, chunkRadius int) int {
	cc := ChunkPosAt(center)
	w.mu.Lock()
	before := w.generated
	for dz := -chunkRadius; dz <= chunkRadius; dz++ {
		for dx := -chunkRadius; dx <= chunkRadius; dx++ {
			w.chunkLocked(ChunkPos{X: cc.X + int32(dx), Z: cc.Z + int32(dz)})
		}
	}
	n := w.generated - before
	w.mu.Unlock()
	return n
}

// LoadedChunks returns the positions of all loaded chunks in a fixed
// (Z, X) order: callers like the engine's random-tick pass consume seeded
// RNG state per chunk, so map iteration order would make otherwise-identical
// runs diverge. The sorted list is cached between chunk generations — the
// per-tick call must not re-sort an unchanged set. Callers must not mutate
// the returned slice.
func (w *World) LoadedChunks() []ChunkPos {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.loadedChunksLocked()
}

func (w *World) loadedChunksLocked() []ChunkPos {
	if w.chunkList == nil {
		w.chunkList = make([]ChunkPos, 0, len(w.chunks))
		for cp := range w.chunks {
			w.chunkList = append(w.chunkList, cp)
		}
		sort.Slice(w.chunkList, func(i, j int) bool {
			if w.chunkList[i].Z != w.chunkList[j].Z {
				return w.chunkList[i].Z < w.chunkList[j].Z
			}
			return w.chunkList[i].X < w.chunkList[j].X
		})
	}
	return w.chunkList
}

// LoadedChunkRefs returns the loaded chunks themselves in the same fixed
// (Z, X) order as LoadedChunks. Per-tick whole-world passes (the engine's
// random-tick sampler) read blocks straight off the chunk instead of paying
// a lock plus map lookup per sample. Callers must not mutate the slice.
func (w *World) LoadedChunkRefs() []*Chunk {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.chunkRefs == nil {
		positions := w.loadedChunksLocked()
		refs := make([]*Chunk, len(positions))
		for i, cp := range positions {
			refs[i] = w.chunks[cp]
		}
		w.chunkRefs = refs
	}
	return w.chunkRefs
}

// ChunkCache is a read-through chunk-pointer cache for a single-goroutine
// consumer (the simulation engine, the entity world). Chunks are only ever
// added to a world, never replaced or evicted, so a resolved pointer stays
// valid forever; the cache turns the lock acquisition plus map hash that
// dominates hot block reads into two pointer compares. Profiling the TNT
// storm showed ~75% of tick time inside BlockIfLoaded's RLock + map lookup
// before this existed.
//
// Not safe for concurrent use: each consumer owns its own cache. Misses on
// unloaded chunks are not cached (the chunk may be generated later).
type ChunkCache struct {
	w *World
	// fixed, when non-nil, resolves misses from a frozen chunk index instead
	// of the world lock. Region-drain workers run while the world is held
	// exclusively (BeginExclusive), so they cannot take the read lock; they
	// resolve against the index snapshot instead.
	fixed  map[ChunkPos]*Chunk
	c0, c1 *Chunk // MRU, then previous
}

// NewChunkCache returns a cache over w.
func NewChunkCache(w *World) ChunkCache { return ChunkCache{w: w} }

// NewFixedChunkCache returns a cache that resolves chunks from the given
// frozen index (as returned by BeginExclusive) without locking. The index
// must not be mutated while the cache is in use.
func NewFixedChunkCache(index map[ChunkPos]*Chunk) ChunkCache {
	return ChunkCache{fixed: index}
}

// chunkAt resolves the chunk at cp through the cache, or nil if not loaded.
func (cc *ChunkCache) chunkAt(cp ChunkPos) *Chunk {
	if c := cc.c0; c != nil && c.Pos == cp {
		return c
	}
	if c := cc.c1; c != nil && c.Pos == cp {
		cc.c1, cc.c0 = cc.c0, c
		return c
	}
	var c *Chunk
	if cc.fixed != nil {
		c = cc.fixed[cp]
	} else {
		c = cc.w.ChunkIfLoaded(cp)
	}
	if c != nil {
		cc.c1, cc.c0 = cc.c0, c
	}
	return c
}

// Chunk resolves the chunk at cp through the cache, or nil if not loaded.
func (cc *ChunkCache) Chunk(cp ChunkPos) *Chunk { return cc.chunkAt(cp) }

// BlockIfLoaded behaves exactly like World.BlockIfLoaded, through the cache.
func (cc *ChunkCache) BlockIfLoaded(p Pos) (Block, bool) {
	if p.Y < 0 || p.Y >= Height {
		return Block{}, true
	}
	c := cc.chunkAt(ChunkPosAt(p))
	if c == nil {
		return Block{}, false
	}
	return c.At(floorMod(p.X, ChunkSize), p.Y, floorMod(p.Z, ChunkSize)), true
}

// ChunkCount returns the number of loaded chunks.
func (w *World) ChunkCount() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.chunks)
}

// Stats returns cumulative world counters: chunks generated, block sets, and
// lighting blocks scanned.
func (w *World) Stats() (generated, sets, lightScans int) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.generated, w.setCount, w.lightScans
}

// NonAirBlocks returns the total number of non-air blocks across loaded
// chunks.
func (w *World) NonAirBlocks() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	total := 0
	for _, c := range w.chunks {
		total += c.NonAirCount()
	}
	return total
}
