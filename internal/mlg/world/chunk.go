package world

// Chunk geometry. MLG worlds are split into columns of ChunkSize×ChunkSize
// blocks (§2.2.2: "This world is split into areas, which are lazily
// generated when players come near them"). Height is bounded to keep the
// engine compact; every workload world fits comfortably.
const (
	// ChunkSize is the horizontal extent of a chunk in blocks.
	ChunkSize = 16
	// Height is the vertical extent of the world in blocks.
	Height = 64
	// SeaLevel is the water-fill level used by terrain generation.
	SeaLevel = 22
)

// ChunkPos identifies a chunk column by its chunk-grid coordinates.
type ChunkPos struct {
	X, Z int32
}

// ChunkPosAt returns the chunk containing the block position.
func ChunkPosAt(p Pos) ChunkPos {
	return ChunkPos{X: int32(floorDiv(p.X, ChunkSize)), Z: int32(floorDiv(p.Z, ChunkSize))}
}

// ChunkLocal returns the chunk-local horizontal coordinates of p.
func ChunkLocal(p Pos) (lx, lz int) {
	return floorMod(p.X, ChunkSize), floorMod(p.Z, ChunkSize)
}

// Origin returns the world position of the chunk's (0, 0, 0) corner.
func (cp ChunkPos) Origin() Pos {
	return Pos{X: int(cp.X) * ChunkSize, Y: 0, Z: int(cp.Z) * ChunkSize}
}

// RegionSeed derives a deterministic RNG seed for a simulation region from
// the world seed and the region's key chunk (its minimal core chunk). Region
// drains that ever need randomness must draw from a stream derived here —
// never from the engine's shared RNG, whose consumption order would depend
// on worker scheduling. FNV-1a over the three values keeps nearby regions'
// streams uncorrelated.
func RegionSeed(worldSeed int64, key ChunkPos) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [...]uint64{uint64(worldSeed), uint64(uint32(key.X)), uint64(uint32(key.Z))} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= prime64
		}
	}
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func floorMod(a, b int) int {
	m := a % b
	if m != 0 && ((a < 0) != (b < 0)) {
		m += b
	}
	return m
}

// Chunk is one ChunkSize×Height×ChunkSize column of blocks plus its derived
// lighting data. Blocks are stored in a flat array indexed Y-major so a
// column scan is contiguous.
type Chunk struct {
	Pos    ChunkPos
	blocks [ChunkSize * ChunkSize * Height]Block
	// lightHeight caches, per column, the Y of the highest opaque block + 1:
	// the sky-light horizon. Terrain changes above/at the horizon force a
	// column recompute, the dynamic-lighting workload of §2.2.2.
	lightHeight [ChunkSize * ChunkSize]uint8
	// nonAir tracks occupancy for cheap emptiness checks and size reporting.
	nonAir int
	// rev counts block mutations (Set calls that changed a block), so
	// consumers can cache derived data — serialized payloads, meshes —
	// keyed on (chunk, revision) and reuse it while the chunk is unchanged.
	rev uint64
}

// NewChunk returns an empty (all-air) chunk at the given position.
func NewChunk(cp ChunkPos) *Chunk { return &Chunk{Pos: cp} }

func blockIndex(lx, y, lz int) int { return (y*ChunkSize+lz)*ChunkSize + lx }

// At returns the block at chunk-local coordinates. Out-of-range coordinates
// return air.
func (c *Chunk) At(lx, y, lz int) Block {
	if lx < 0 || lx >= ChunkSize || lz < 0 || lz >= ChunkSize || y < 0 || y >= Height {
		return Block{}
	}
	return c.blocks[blockIndex(lx, y, lz)]
}

// Set stores a block at chunk-local coordinates and returns the previous
// block. Out-of-range coordinates are ignored and return air.
func (c *Chunk) Set(lx, y, lz int, b Block) Block {
	if lx < 0 || lx >= ChunkSize || lz < 0 || lz >= ChunkSize || y < 0 || y >= Height {
		return Block{}
	}
	idx := blockIndex(lx, y, lz)
	old := c.blocks[idx]
	if old == b {
		return old
	}
	c.blocks[idx] = b
	c.rev++
	switch {
	case old.IsAir() && !b.IsAir():
		c.nonAir++
	case !old.IsAir() && b.IsAir():
		c.nonAir--
	}
	return old
}

// Revision returns the chunk's mutation counter. Two reads returning the
// same value bracket an unchanged chunk, so any payload derived in between
// is still valid.
func (c *Chunk) Revision() uint64 { return c.rev }

// AppendRLE appends the chunk's run-length-encoded wire payload to dst:
// (count uint16 big-endian, block ID, meta) runs over the flat Y-major
// block array, runs capped at 0xFFFF blocks. This is the ChunkData payload
// format the server streams on join.
func (c *Chunk) AppendRLE(dst []byte) []byte {
	i := 0
	for i < len(c.blocks) {
		b := c.blocks[i]
		j := i + 1
		for j < len(c.blocks) && c.blocks[j] == b && j-i < 0xFFFF {
			j++
		}
		dst = append(dst, byte((j-i)>>8), byte(j-i), byte(b.ID), b.Meta)
		i = j
	}
	return dst
}

// NonAirCount returns the number of non-air blocks in the chunk.
func (c *Chunk) NonAirCount() int { return c.nonAir }

// LightHorizon returns the cached sky-light horizon for a column.
func (c *Chunk) LightHorizon(lx, lz int) int {
	return int(c.lightHeight[lz*ChunkSize+lx])
}

// SetLightHorizon overwrites a column's cached horizon without rescanning.
// It exists for the region-parallel simulation's rollback path, which must
// restore the exact pre-tick lighting state after undoing a speculative
// region drain; normal code paths use RecomputeColumnLight.
func (c *Chunk) SetLightHorizon(lx, lz int, horizon int) {
	c.lightHeight[lz*ChunkSize+lx] = uint8(horizon)
}

// RecomputeColumnLight rescans one column for its highest opaque block and
// updates the cached horizon. It returns the number of blocks scanned, which
// the simulation counts as lighting work.
func (c *Chunk) RecomputeColumnLight(lx, lz int) int {
	scanned := 0
	for y := Height - 1; y >= 0; y-- {
		scanned++
		if c.blocks[blockIndex(lx, y, lz)].IsOpaque() {
			c.lightHeight[lz*ChunkSize+lx] = uint8(y + 1)
			return scanned
		}
	}
	c.lightHeight[lz*ChunkSize+lx] = 0
	return scanned
}

// RecomputeAllLight recomputes every column's horizon (used after chunk
// generation) and returns the blocks scanned.
func (c *Chunk) RecomputeAllLight() int {
	scanned := 0
	for lz := 0; lz < ChunkSize; lz++ {
		for lx := 0; lx < ChunkSize; lx++ {
			scanned += c.RecomputeColumnLight(lx, lz)
		}
	}
	return scanned
}

// HighestSolidY returns the Y of the highest solid block in the column, or
// -1 if the column is empty. Used for spawn-point computation and terrain
// queries.
func (c *Chunk) HighestSolidY(lx, lz int) int {
	for y := Height - 1; y >= 0; y-- {
		if c.blocks[blockIndex(lx, y, lz)].IsSolid() {
			return y
		}
	}
	return -1
}
