package world

import (
	"sync"
	"sync/atomic"
)

// Parallel runs fn(i) for every i in [0, n) across at most workers
// goroutines, returning when all calls complete. It is the shared drain pool
// of the region-parallel schedulers: the terrain engine and the entity store
// both hand their per-tick region sets to it, so the two phases share one
// worker discipline (atomic work-stealing over a fixed index range) and one
// configuration knob (SimWorkers).
//
// workers <= 1 or n <= 1 degrades to a plain serial loop on the calling
// goroutine — no goroutines, no synchronization — which keeps the legacy
// serial paths bit-and-cost-identical to their pre-pool form.
//
// fn must be safe to call concurrently for distinct i; calls are not ordered.
func Parallel(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
