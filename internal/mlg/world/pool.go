package world

import (
	"sync"
	"sync/atomic"
)

// Parallel runs fn(i) for every i in [0, n) across at most workers
// goroutines, returning when all calls complete. It is the shared drain pool
// of the region-parallel schedulers: the terrain engine and the entity store
// both hand their per-tick region sets to it, so the two phases share one
// worker discipline (atomic work-stealing over a fixed index range) and one
// configuration knob (SimWorkers).
//
// workers <= 1 or n <= 1 degrades to a plain serial loop on the calling
// goroutine — no goroutines, no synchronization — which keeps the legacy
// serial paths bit-and-cost-identical to their pre-pool form.
//
// fn must be safe to call concurrently for distinct i; calls are not ordered.
func Parallel(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// PackUnits packs n cost-weighted items (identified by index, kept in order)
// into at most maxUnits contiguous [start, end) ranges of roughly equal
// total cost, each targeting at least minUnitCost. The region schedulers use
// it to size their fan-out by the work available instead of by a fixed
// worker count: a swarm of tiny regions packs into a few units (one worker
// handoff amortized across all of them), and a tick with little total work
// produces few units — Parallel then spawns goroutines only for the units
// that exist. Every returned unit is non-empty and the units exactly cover
// [0, n). Results are appended to dst (reset to length zero), so schedulers
// can reuse a scratch buffer across ticks.
func PackUnits(dst [][2]int, costs []int, maxUnits, minUnitCost int) [][2]int {
	dst = dst[:0]
	n := len(costs)
	if n == 0 {
		return dst
	}
	total := 0
	for _, c := range costs {
		total += c
	}
	units := 1
	if minUnitCost > 0 {
		units = total / minUnitCost
	}
	if units > maxUnits {
		units = maxUnits
	}
	if units > n {
		units = n
	}
	if units < 1 {
		units = 1
	}
	start, remaining := 0, total
	for u := units; u >= 1; u-- {
		if u == 1 {
			dst = append(dst, [2]int{start, n})
			break
		}
		// Fair share of what remains, while always leaving at least one
		// item for each unit still to come.
		target := remaining / u
		acc := costs[start]
		end := start + 1
		for end < n-(u-1) && acc < target {
			acc += costs[end]
			end++
		}
		dst = append(dst, [2]int{start, end})
		remaining -= acc
		start = end
	}
	return dst
}
