package world

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelRunsEveryIndexOnce: the pool's work-stealing loop must visit
// each index in [0, n) exactly once, for worker counts below, at, and above n.
func TestParallelRunsEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 7}, {2, 7}, {7, 7}, {16, 7}, {4, 0}, {4, 1},
	} {
		counts := make([]atomic.Int32, tc.n+1)
		Parallel(tc.workers, tc.n, func(i int) { counts[i].Add(1) })
		for i := 0; i < tc.n; i++ {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d n=%d: index %d ran %d times", tc.workers, tc.n, i, got)
			}
		}
	}
}

// TestParallelClampsFanoutToWork pins the fan-out clamp: with more workers
// than items, Parallel must spawn at most n goroutines — never idle ones.
// All n calls block on a barrier until every index has started, then one of
// them samples the process goroutine count; the delta over the pre-call
// baseline is exactly the pool's fan-out.
func TestParallelClampsFanoutToWork(t *testing.T) {
	const workers, n = 32, 3
	before := runtime.NumGoroutine()

	var started sync.WaitGroup
	started.Add(n)
	release := make(chan struct{})
	var sampled atomic.Int32
	go func() { // sampler: waits until every index is in-flight
		started.Wait()
		sampled.Store(int32(runtime.NumGoroutine()))
		close(release)
	}()
	Parallel(workers, n, func(i int) {
		started.Done()
		<-release
	})

	// Fan-out = sampled - before - 1 (the sampler goroutine itself).
	fanout := int(sampled.Load()) - before - 1
	if fanout > n {
		t.Fatalf("Parallel(%d workers, %d items) ran %d goroutines; fan-out must clamp to the work available", workers, n, fanout)
	}
	if fanout < 1 {
		t.Fatalf("implausible fan-out %d (sampled %d, baseline %d); test harness broken", fanout, sampled.Load(), before)
	}
}

// TestParallelSerialDegrade: workers<=1 (and n<=1) must run on the calling
// goroutine with no pool machinery, keeping the legacy serial path intact.
func TestParallelSerialDegrade(t *testing.T) {
	before := runtime.NumGoroutine()
	ran := 0
	Parallel(1, 5, func(i int) {
		if g := runtime.NumGoroutine(); g != before {
			t.Fatalf("workers=1 spawned goroutines: %d -> %d", before, g)
		}
		ran++
	})
	if ran != 5 {
		t.Fatalf("serial degrade ran %d of 5", ran)
	}
}

// TestPackUnitsProperties checks the invariants the schedulers rely on:
// exact cover of [0, n) in order, non-empty units, the unit count bounded by
// maxUnits and by n, and sized by total cost / minUnitCost.
func TestPackUnitsProperties(t *testing.T) {
	cases := []struct {
		name                  string
		costs                 []int
		maxUnits, minUnitCost int
		wantUnits             int // 0 = don't pin, check bounds only
	}{
		{"empty", nil, 8, 16, 0},
		{"one small region", []int{3}, 8, 16, 1},
		{"all tiny pack into one", []int{1, 2, 1, 3, 2, 1}, 8, 16, 1},
		{"two units worth", []int{10, 10, 10, 5}, 8, 16, 2},
		{"capped by maxUnits", []int{100, 100, 100, 100, 100, 100}, 2, 16, 2},
		{"capped by item count", []int{100, 100}, 8, 1, 2},
		{"zero-cost items", []int{0, 0, 0}, 4, 16, 1},
		{"big and tiny mix", []int{64, 1, 1, 1, 1, 64}, 8, 16, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			units := PackUnits(nil, tc.costs, tc.maxUnits, tc.minUnitCost)
			n := len(tc.costs)
			if n == 0 {
				if len(units) != 0 {
					t.Fatalf("empty costs produced units %v", units)
				}
				return
			}
			if len(units) > tc.maxUnits || len(units) > n {
				t.Fatalf("%d units exceeds maxUnits=%d or n=%d", len(units), tc.maxUnits, n)
			}
			if tc.wantUnits != 0 && len(units) != tc.wantUnits {
				t.Fatalf("got %d units %v, want %d", len(units), units, tc.wantUnits)
			}
			next := 0
			for _, u := range units {
				if u[0] != next || u[1] <= u[0] {
					t.Fatalf("units %v do not cover [0,%d) contiguously with non-empty ranges", units, n)
				}
				next = u[1]
			}
			if next != n {
				t.Fatalf("units %v stop at %d, want %d", units, next, n)
			}
		})
	}
}

// TestPackUnitsBalance: with uniform costs and abundant work, units must be
// within one item of each other — the greedy fair-share must not starve the
// tail units.
func TestPackUnitsBalance(t *testing.T) {
	costs := make([]int, 64)
	for i := range costs {
		costs[i] = 10
	}
	units := PackUnits(nil, costs, 8, 16)
	if len(units) != 8 {
		t.Fatalf("got %d units, want 8 (total 640 / min 16, capped by maxUnits)", len(units))
	}
	for _, u := range units {
		if size := u[1] - u[0]; size < 7 || size > 9 {
			t.Fatalf("uniform costs packed unevenly: %v", units)
		}
	}
}

// TestPackUnitsReusesDst: the scratch-buffer contract — results are appended
// to dst[:0], so a scheduler's per-tick call must not allocate once the
// buffer has grown.
func TestPackUnitsReusesDst(t *testing.T) {
	scratch := make([][2]int, 0, 16)
	costs := []int{20, 20, 20, 20}
	units := PackUnits(scratch, costs, 4, 16)
	if &units[0] != &scratch[:1][0] {
		t.Fatal("PackUnits did not reuse the provided scratch buffer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		scratch = PackUnits(scratch, costs, 4, 16)
	})
	if allocs != 0 {
		t.Fatalf("PackUnits allocates %v per call with a warm scratch buffer", allocs)
	}
}

// TestRegionSeedStability pins RegionSeed as a pure function: per-region
// entity decision streams are seeded from it, so its values are part of the
// simulation's determinism contract — changing them changes every golden
// checksum.
func TestRegionSeedStability(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		key  ChunkPos
	}{
		{0, ChunkPos{}},
		{1234, ChunkPos{X: 3, Z: -2}},
		{-99, ChunkPos{X: -1, Z: 7}},
	} {
		a := RegionSeed(tc.seed, tc.key)
		b := RegionSeed(tc.seed, tc.key)
		if a != b {
			t.Fatalf("RegionSeed(%d, %v) unstable: %#x vs %#x", tc.seed, tc.key, a, b)
		}
	}
	// Pinned values: if these move, golden checksums move with them.
	if got := RegionSeed(1234, ChunkPos{X: 3, Z: -2}); got != RegionSeed(1234, ChunkPos{X: 3, Z: -2}) {
		t.Fatalf("RegionSeed not deterministic: %#x", got)
	}
}

// TestRegionSeedDistinctness: nearby chunks and nearby world seeds must get
// uncorrelated streams — no collisions across a dense grid of keys, and
// world-seed changes must move every region's seed.
func TestRegionSeedDistinctness(t *testing.T) {
	seen := make(map[int64][2]ChunkPos)
	for z := int32(-16); z <= 16; z++ {
		for x := int32(-16); x <= 16; x++ {
			key := ChunkPos{X: x, Z: z}
			s := RegionSeed(424242, key)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %v and %v both map to %#x", prev, key, s)
			}
			seen[s] = [2]ChunkPos{key}
		}
	}
	if RegionSeed(1, ChunkPos{X: 5, Z: 5}) == RegionSeed(2, ChunkPos{X: 5, Z: 5}) {
		t.Fatal("adjacent world seeds share a region seed")
	}
}
