package world

// Fuzz and round-trip coverage for the chunk RLE wire codec: AppendRLE is
// what the server streams on join (and caches per revision), DecodeRLE is
// its inverse. The fuzz target must never panic on malformed bytes, and any
// payload it accepts must re-encode canonically.

import (
	"bytes"
	"testing"
)

// workloadChunks returns chunks representative of the real benchmark
// worlds: noise terrain (Control/Players), flat construction arena, and a
// mutated arena with the block variety of an active construct area.
func workloadChunks() []*Chunk {
	noise := New(NewNoiseGenerator(PaperControlSeed))
	noise.EnsureArea(Pos{X: 8, Z: 8}, 1)
	flat := New(&FlatGenerator{SurfaceY: 10, Surface: Grass})
	flat.EnsureArea(Pos{X: 8, Z: 8}, 0)
	flat.SetBlock(Pos{X: 3, Y: 11, Z: 3}, B(RedstoneWire))
	flat.SetBlock(Pos{X: 4, Y: 11, Z: 3}, Block{ID: Water, Meta: 2})
	flat.SetBlock(Pos{X: 5, Y: 11, Z: 3}, B(TNT))
	flat.SetBlock(Pos{X: 6, Y: 11, Z: 3}, B(Hopper))
	flat.SetBlock(Pos{X: 6, Y: 12, Z: 3}, Block{ID: Kelp, Meta: 9})

	var out []*Chunk
	for _, w := range []*World{noise, flat} {
		out = append(out, w.LoadedChunkRefs()...)
	}
	return out
}

func TestChunkRLERoundTrip(t *testing.T) {
	for _, c := range workloadChunks() {
		payload := c.AppendRLE(nil)
		dec := NewChunk(c.Pos)
		if err := dec.DecodeRLE(payload); err != nil {
			t.Fatalf("chunk %v: decode of real payload failed: %v", c.Pos, err)
		}
		for y := 0; y < Height; y++ {
			for lz := 0; lz < ChunkSize; lz++ {
				for lx := 0; lx < ChunkSize; lx++ {
					if got, want := dec.At(lx, y, lz), c.At(lx, y, lz); got != want {
						t.Fatalf("chunk %v: block (%d,%d,%d) = %v, want %v", c.Pos, lx, y, lz, got, want)
					}
				}
			}
		}
		if got, want := dec.NonAirCount(), c.NonAirCount(); got != want {
			t.Fatalf("chunk %v: nonAir %d, want %d", c.Pos, got, want)
		}
		if got, want := dec.HighestSolidY(8, 8), c.HighestSolidY(8, 8); got != want {
			t.Fatalf("chunk %v: highest solid %d, want %d", c.Pos, got, want)
		}
		if reenc := dec.AppendRLE(nil); !bytes.Equal(reenc, payload) {
			t.Fatalf("chunk %v: re-encode not byte-identical (%d vs %d bytes)", c.Pos, len(reenc), len(payload))
		}
	}
}

func TestChunkRLERejectsMalformed(t *testing.T) {
	valid := workloadChunks()[0].AppendRLE(nil)
	cases := map[string][]byte{
		"empty":           {},
		"truncated run":   valid[:len(valid)-2],
		"zero count":      append([]byte{0, 0, 1, 0}, valid...),
		"underfill":       valid[:4],
		"overflow":        append(append([]byte{}, valid...), 0xFF, 0xFF, 1, 0),
		"trailing excess": append(append([]byte{}, valid...), 0, 1, 1, 0),
	}
	for name, data := range cases {
		if err := NewChunk(ChunkPos{}).DecodeRLE(data); err == nil {
			t.Errorf("%s: malformed payload accepted", name)
		}
	}
}

// FuzzChunkRLE feeds arbitrary bytes to the decoder (it must reject or
// accept without panicking) and checks accepted payloads re-encode to a
// decode-identical canonical form. Corpus seeds come from real workload
// chunks.
func FuzzChunkRLE(f *testing.F) {
	for _, c := range workloadChunks() {
		f.Add(c.AppendRLE(nil))
	}
	f.Add([]byte{0, 0, 1, 0})
	f.Add([]byte{0xFF, 0xFF, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewChunk(ChunkPos{})
		if err := c.DecodeRLE(data); err != nil {
			return
		}
		// Accepted: the canonical re-encoding must decode to the same
		// contents and stable derived state.
		reenc := c.AppendRLE(nil)
		c2 := NewChunk(ChunkPos{})
		if err := c2.DecodeRLE(reenc); err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		if c.NonAirCount() != c2.NonAirCount() {
			t.Fatalf("nonAir diverged: %d vs %d", c.NonAirCount(), c2.NonAirCount())
		}
		for i := 0; i < ChunkSize; i++ {
			if c.HighestSolidY(i, i) != c2.HighestSolidY(i, i) {
				t.Fatalf("column %d solid height diverged", i)
			}
		}
		if !bytes.Equal(reenc, c2.AppendRLE(nil)) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}
