package world

import (
	"bytes"
	"testing"
)

// TestChunkRevision: the mutation counter must advance exactly on real
// block changes — reads and no-op writes leave it (and any payload cached
// against it) untouched.
func TestChunkRevision(t *testing.T) {
	c := NewChunk(ChunkPos{})
	if c.Revision() != 0 {
		t.Fatalf("fresh chunk revision = %d", c.Revision())
	}
	c.Set(1, 2, 3, B(Stone))
	r1 := c.Revision()
	if r1 == 0 {
		t.Fatal("Set did not bump revision")
	}
	c.At(1, 2, 3)
	c.Set(1, 2, 3, B(Stone)) // no-op: same block
	if c.Revision() != r1 {
		t.Fatalf("read or no-op write bumped revision: %d -> %d", r1, c.Revision())
	}
	c.Set(1, 2, 3, B(Air))
	if c.Revision() <= r1 {
		t.Fatal("real change did not bump revision")
	}
	c.Set(-1, 0, 0, B(Stone)) // out of range: ignored
	c.Set(0, Height, 0, B(Stone))
	if c.Revision() != r1+1 {
		t.Fatalf("out-of-range Set bumped revision: %d", c.Revision())
	}
}

// TestAppendRLERoundTrip: the wire payload must run-length encode the flat
// block array exactly, splitting runs at value changes and the 0xFFFF cap.
func TestAppendRLE(t *testing.T) {
	c := NewChunk(ChunkPos{})
	if got := c.AppendRLE(nil); len(got) != 4 ||
		got[0] != 0x40 || got[1] != 0x00 || got[2] != byte(Air) {
		// 16*16*64 = 16384 = 0x4000 air blocks in one run
		t.Fatalf("all-air RLE = %x", got)
	}
	c.Set(0, 0, 0, B(Stone))
	got := c.AppendRLE(nil)
	want := []byte{0, 1, byte(Stone), 0, 0x3F, 0xFF, byte(Air), 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("RLE = %x, want %x", got, want)
	}
	// Appends after existing bytes, leaving the prefix alone.
	pre := []byte{0xAA}
	if got := c.AppendRLE(pre); got[0] != 0xAA || !bytes.Equal(got[1:], want) {
		t.Fatalf("AppendRLE with prefix = %x", got)
	}
}
