package world

import "math"

// noise2 is a seeded 2-D fractal value-noise field, the terrain-height
// source for the default generator. Value noise (hash lattice points, smooth
// interpolation, sum octaves) is deterministic per seed and allocation-free,
// which keeps lazy chunk generation cheap and reproducible.
type noise2 struct {
	seed int64
}

// hash2 hashes integer lattice coordinates to [0, 1).
func (n noise2) hash2(x, z int64) float64 {
	h := uint64(n.seed)
	h ^= uint64(x) * 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h ^= uint64(z) * 0xC2B2AE3D27D4EB4F
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// smoothstep is the C1-continuous interpolation fade.
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// at samples one octave of value noise at continuous coordinates.
func (n noise2) at(x, z float64) float64 {
	x0, z0 := math.Floor(x), math.Floor(z)
	tx, tz := smoothstep(x-x0), smoothstep(z-z0)
	ix, iz := int64(x0), int64(z0)
	v00 := n.hash2(ix, iz)
	v10 := n.hash2(ix+1, iz)
	v01 := n.hash2(ix, iz+1)
	v11 := n.hash2(ix+1, iz+1)
	a := v00 + (v10-v00)*tx
	b := v01 + (v11-v01)*tx
	return a + (b-a)*tz
}

// fractal sums octaves of value noise with persistence 0.5, normalized to
// [0, 1].
func (n noise2) fractal(x, z float64, octaves int, baseFreq float64) float64 {
	var sum, amp, norm float64
	amp = 1
	freq := baseFreq
	for o := 0; o < octaves; o++ {
		sum += n.at(x*freq, z*freq) * amp
		norm += amp
		amp *= 0.5
		freq *= 2
	}
	return sum / norm
}
