package world

// Generator produces terrain for chunks as they are lazily loaded.
type Generator interface {
	// GenerateChunk fills the chunk with terrain. Implementations must be
	// deterministic: the same chunk position always yields the same terrain.
	GenerateChunk(c *Chunk)
}

// NoiseGenerator is the default world generator: a fractal value-noise
// heightmap with bedrock, stone, dirt/grass strata, sand near water, water
// filling depressions up to sea level, and sparse trees. It stands in for
// Minecraft's generator of the Control world (seed -392114485 in the paper);
// the same seed default is kept for flavour.
type NoiseGenerator struct {
	Seed int64
	// Amplitude is the height swing of the terrain around BaseHeight.
	Amplitude float64
	// BaseHeight is the mean terrain height.
	BaseHeight float64
	// Trees enables sparse tree placement.
	Trees bool

	height noise2
	detail noise2
}

// PaperControlSeed is the world seed the paper generated its Control world
// with (Minecraft 1.16.4, seed -392114485).
const PaperControlSeed = -392114485

// NewNoiseGenerator returns a generator with the default terrain shape.
func NewNoiseGenerator(seed int64) *NoiseGenerator {
	return &NoiseGenerator{
		Seed:       seed,
		Amplitude:  14,
		BaseHeight: 24,
		Trees:      true,
		height:     noise2{seed: seed},
		detail:     noise2{seed: seed ^ 0x5DEECE66D},
	}
}

// GenerateChunk implements Generator.
func (g *NoiseGenerator) GenerateChunk(c *Chunk) {
	origin := c.Pos.Origin()
	for lz := 0; lz < ChunkSize; lz++ {
		for lx := 0; lx < ChunkSize; lx++ {
			wx, wz := float64(origin.X+lx), float64(origin.Z+lz)
			h := g.BaseHeight + (g.height.fractal(wx, wz, 4, 1.0/64)-0.5)*2*g.Amplitude
			top := int(h)
			if top < 2 {
				top = 2
			}
			if top >= Height-8 {
				top = Height - 9
			}
			g.fillColumn(c, lx, lz, top)
		}
	}
	if g.Trees {
		g.placeTrees(c)
	}
	c.RecomputeAllLight()
}

func (g *NoiseGenerator) fillColumn(c *Chunk, lx, lz, top int) {
	c.Set(lx, 0, lz, B(Bedrock))
	for y := 1; y <= top; y++ {
		switch {
		case y < top-3:
			c.Set(lx, y, lz, B(Stone))
		case y < top:
			c.Set(lx, y, lz, B(Dirt))
		default:
			if top <= SeaLevel {
				c.Set(lx, y, lz, B(Sand))
			} else {
				c.Set(lx, y, lz, B(Grass))
			}
		}
	}
	// Fill depressions with water up to sea level.
	for y := top + 1; y <= SeaLevel; y++ {
		c.Set(lx, y, lz, B(Water))
	}
}

func (g *NoiseGenerator) placeTrees(c *Chunk) {
	origin := c.Pos.Origin()
	// Interior placement only, so trees never straddle a chunk border and
	// generation stays chunk-local and order independent.
	for lz := 2; lz < ChunkSize-2; lz++ {
		for lx := 2; lx < ChunkSize-2; lx++ {
			wx, wz := int64(origin.X+lx), int64(origin.Z+lz)
			if g.detail.hash2(wx, wz) > 0.015 { // ~1.5% of eligible columns
				continue
			}
			top := c.HighestSolidY(lx, lz)
			if top <= SeaLevel || top < 1 || c.At(lx, top, lz).ID != Grass {
				continue
			}
			trunkH := 4 + int(g.detail.hash2(wx^7, wz^13)*3)
			for y := top + 1; y <= top+trunkH && y < Height-2; y++ {
				c.Set(lx, y, lz, B(Wood))
			}
			// Leaf cap: 3×3×2 around the trunk top.
			for dy := 0; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					for dx := -1; dx <= 1; dx++ {
						y := top + trunkH + dy
						if y >= Height {
							continue
						}
						if c.At(lx+dx, y, lz+dz).IsAir() {
							c.Set(lx+dx, y, lz+dz, B(Leaves))
						}
					}
				}
			}
		}
	}
}

// FlatGenerator produces a flat slab of the given surface block at the given
// height — the deterministic arena used by construct-heavy workload worlds
// (TNT, Lag) and by tests.
type FlatGenerator struct {
	// SurfaceY is the Y of the top solid layer.
	SurfaceY int
	// Surface is the block type of the top layer (default grass).
	Surface BlockID
}

// GenerateChunk implements Generator.
func (g *FlatGenerator) GenerateChunk(c *Chunk) {
	top := g.SurfaceY
	if top < 1 {
		top = 1
	}
	if top >= Height {
		top = Height - 1
	}
	surface := g.Surface
	if surface == Air {
		surface = Grass
	}
	for lz := 0; lz < ChunkSize; lz++ {
		for lx := 0; lx < ChunkSize; lx++ {
			c.Set(lx, 0, lz, B(Bedrock))
			for y := 1; y < top; y++ {
				c.Set(lx, y, lz, B(Stone))
			}
			c.Set(lx, top, lz, B(surface))
		}
	}
	c.RecomputeAllLight()
}
