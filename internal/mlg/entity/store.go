package entity

import (
	"math/rand"
	"runtime"

	"repro/internal/mlg/mrand"
	"repro/internal/mlg/world"
)

// Config tunes the entity world, including the flavor-dependent PaperMC
// optimizations.
type Config struct {
	// MaxEntities caps the total entity population (items beyond the cap
	// are dropped silently, as in production servers under TNT storms).
	MaxEntities int
	// MaxMobs caps the mob population for natural + spawner spawning.
	MaxMobs int
	// ItemLifetimeTicks is how long an item entity lives (Minecraft: 6000).
	ItemLifetimeTicks int
	// MobLifetimeTicks despawns wandering mobs after a while, bounding farm
	// populations.
	MobLifetimeTicks int
	// ActivationRange, when > 0, tick-throttles entities farther than this
	// many blocks from every player to one tick in four — the PaperMC
	// entity-activation optimization. 0 disables throttling (vanilla).
	ActivationRange int
	// PathNodeBudget caps A* node expansions per path computation.
	PathNodeBudget int
	// NaturalSpawning enables ambient mob spawning near players.
	NaturalSpawning bool
	// SpawnAttemptsPerTick is the number of natural-spawn placements tried
	// per tick (each requires a dynamic spawn-point computation, §2.2.3).
	SpawnAttemptsPerTick int
	// ItemMergeCells, when > 0, merges newly dropped items into an existing
	// item entity in the same grid cell of this size — the PaperMC/Spigot
	// item-merge optimization that keeps TNT storms from flooding the
	// entity list.
	ItemMergeCells int
	// Workers is the number of goroutines ticking independent entity regions
	// per tick (the same pool discipline and knob as sim.Config.SimWorkers;
	// the server wires both from one setting). 0 means GOMAXPROCS; 1 keeps
	// the legacy serial loop. Whatever the value, output is identical:
	// mob decisions draw from per-region RNG streams that are pure functions
	// of simulation state (see rng.go), and the few entity ticks a worker
	// cannot complete — ones needing mid-loop terrain generation — are
	// rolled back and re-ticked serially in ID order (see parallel.go), so
	// every worker count produces the same world.
	Workers int
}

// DefaultConfig returns vanilla-like entity settings.
func DefaultConfig() Config {
	return Config{
		MaxEntities:          3000,
		MaxMobs:              60,
		ItemLifetimeTicks:    6000,
		MobLifetimeTicks:     2400,
		ActivationRange:      0,
		PathNodeBudget:       250,
		NaturalSpawning:      true,
		SpawnAttemptsPerTick: 3,
	}
}

// Counters accumulates entity work per tick, in operation counts, for the
// server's cost model and the Figure 11 "Entities" share.
type Counters struct {
	// MobTicks, ItemTicks, TNTTicks count full entity simulation steps by
	// kind; InactiveSkips counts activation-range-throttled steps.
	MobTicks      int
	ItemTicks     int
	TNTTicks      int
	InactiveSkips int
	// PathNodes counts A* node expansions; Repaths counts path
	// recomputations forced by terrain changes.
	PathNodes int
	Repaths   int
	// Collisions counts entity-terrain collision checks.
	Collisions int
	// SpawnAttempts counts dynamic spawn-point computations; Spawns counts
	// entities actually created this tick; Despawns removals.
	SpawnAttempts int
	Spawns        int
	Despawns      int
	// Moved counts entities whose block position changed this tick (each
	// one produces a state-update message to clients).
	Moved int
}

// World is the entity store and simulator for one game world. It implements
// sim.EntityOps so terrain rules can spawn and consume entities.
type World struct {
	w *world.World
	// wc caches chunk pointers for the entity world's block reads (physics
	// probes, walkability checks), skipping the world lock on same-chunk
	// access. Single-goroutine, like the rest of the store.
	wc world.ChunkCache
	// rng draws from src, a serializable splitmix64 source whose one-word
	// state persists in world snapshots (persist.go): a restored store
	// continues the exact spawn-velocity/natural-spawn sequence of the
	// saved run.
	rng *rand.Rand
	src *mrand.Source
	cfg Config
	// seed is the world seed the per-region decision streams derive from
	// (world.RegionSeed; see rng.go). The store rng above is seeded from the
	// same value but serves only the serial phases (spawn velocities,
	// natural-spawn placement).
	seed int64

	list   []*Entity
	byID   map[int64]*Entity
	nextID int64
	mobs   int

	// index buckets live entities by chunk column for proximity queries;
	// tickNum stamps activation marks; grid is the current tick's
	// player-position bucket view.
	index   *spatialIndex
	tickNum int64
	grid    playerGrid

	// chunkUpdates accumulates per-chunk entity state-update counts for the
	// server's interest-managed dissemination (drained every tick).
	chunkUpdates map[world.ChunkPos]ChunkUpdates

	// chunkVersion tracks terrain mutations per chunk for path invalidation.
	chunkVersion map[world.ChunkPos]uint64

	// itemCells maps a merge-grid cell to the item entity last spawned in
	// it, for ItemMergeCells.
	itemCells map[world.Pos]int64

	// explosionsDue collects TNT detonations for the server to route to the
	// terrain engine after the entity phase. exBuf is the tick's ID-keyed
	// staging buffer: every schedule (serial loop, region merge, re-tick
	// pass) appends there, and flushExplosions emits to explosionsDue in
	// entity-ID order at the end of the tick.
	explosionsDue []world.Pos
	exBuf         []entExplosion

	counters Counters

	// root is the store's own tick-execution context: the serial loop, the
	// escaped-entity re-tick pass and the impulse fallback all run through
	// it, reading the fields above exactly as the pre-region-split store did.
	root tickCtx
	// workers is the resolved Workers value (0 → GOMAXPROCS at creation).
	workers int

	// Parallel-schedule scratch, reused across ticks (see parallel.go).
	regionScratch   map[world.ChunkPos]int32
	regionPool      []*entRegion
	retickScratch   []*Entity
	costScratch     []int
	unitScratch     [][2]int
	impulseScratch  map[world.ChunkPos]int32
	impulseCenters  [][]world.Pos
	impulseCounters []Counters

	// Parallel-schedule attribution (see ParallelStats), plus the serial-hold
	// hysteresis that keeps a workload which just rolled back (or refuses to
	// partition) off the partitioning cost for a few ticks.
	lastRegions   int
	lastParallel  bool
	parallelTicks int64
	fallbackTicks int64
	serialHold    int
}

// NewWorld creates an entity world bound to the terrain, seeded
// deterministically, and registers the terrain-version listener used for
// path invalidation.
func NewWorld(w *world.World, cfg Config, seed int64) *World {
	src := mrand.NewSource(seed)
	ew := &World{
		w:            w,
		wc:           world.NewChunkCache(w),
		rng:          rand.New(src),
		src:          src,
		cfg:          cfg,
		seed:         seed,
		byID:         make(map[int64]*Entity),
		index:        newSpatialIndex(),
		chunkUpdates: make(map[world.ChunkPos]ChunkUpdates),
		chunkVersion: make(map[world.ChunkPos]uint64),
		itemCells:    make(map[world.Pos]int64),
	}
	ew.workers = cfg.Workers
	if ew.workers <= 0 {
		ew.workers = runtime.GOMAXPROCS(0)
	}
	ew.root = tickCtx{ew: ew, wc: &ew.wc, counters: &ew.counters}
	w.OnChange(func(p world.Pos, old, new world.Block) {
		ew.chunkVersion[world.ChunkPosAt(p)]++
	})
	return ew
}

// SetWorkers reconfigures the tick scheduler's worker count between ticks
// (0 = GOMAXPROCS, 1 = the serial loop), as if the store had been restarted
// with the new Config.Workers: the serial-hold hysteresis resets so the next
// tick re-evaluates the schedule fresh. Output is unaffected — every worker
// count produces the same world — so this trades wall-clock time only. Must
// not be called while a tick is in flight.
func (ew *World) SetWorkers(n int) {
	ew.cfg.Workers = n
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	ew.workers = n
	ew.serialHold = 0
}

// Count returns the live entity population.
func (ew *World) Count() int { return len(ew.list) }

// CountByKind returns the population of one entity kind.
func (ew *World) CountByKind(k Type) int {
	n := 0
	for _, e := range ew.list {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Get returns the entity with the given ID, or nil.
func (ew *World) Get(id int64) *Entity { return ew.byID[id] }

// Entities calls fn for every live entity in deterministic (ID) order.
func (ew *World) Entities(fn func(*Entity)) {
	for _, e := range ew.list {
		fn(e)
	}
}

func (ew *World) add(e *Entity) *Entity {
	e2 := ew.insert(e)
	if e2 != nil {
		ew.counters.Spawns++
	}
	return e2
}

// insert places an entity into the store without counting a spawn: add()
// wraps it for fresh spawns; shard handoffs use it directly so arrivals do
// not perturb the Spawns counter (the single-shard run they must sum-match
// never spawned them).
func (ew *World) insert(e *Entity) *Entity {
	if len(ew.list) >= ew.cfg.MaxEntities {
		return nil
	}
	ew.nextID++
	e.ID = ew.nextID
	if e.seedKey == 0 {
		// Spawn identity: a pure function of the spawn position and tick, so
		// decision streams and throttle phases survive shard handoffs and are
		// identical across shard layouts (see rng.go). Handed-off entities
		// arrive with their original key and keep it.
		e.seedKey = spawnSeedKey(ew.seed, e.Pos.BlockPos(), ew.tickNum)
	}
	ew.list = append(ew.list, e)
	ew.byID[e.ID] = e
	e.chunk = world.ChunkPosAt(e.Pos.BlockPos())
	ew.index.add(e)
	ew.noteSpawned(e.chunk)
	if e.Kind == Mob {
		ew.mobs++
	}
	return e
}

// SpawnPrimedTNT implements sim.EntityOps.
func (ew *World) SpawnPrimedTNT(p world.Pos, fuseTicks int) {
	ew.add(&Entity{Kind: PrimedTNT, Pos: Center(p), Fuse: fuseTicks})
}

// SpawnItem implements sim.EntityOps. Ejection velocities draw from the
// spawn block's per-tick stream (rng.go), not the store RNG, so they are
// identical across shard layouts.
func (ew *World) SpawnItem(p world.Pos, item world.BlockID) {
	st := newSpawnStream(ew.seed, p, ew.tickNum)
	vel := Vec3{X: (st.Float64() - 0.5) * 0.2, Y: 0.2, Z: (st.Float64() - 0.5) * 0.2}
	if cs := ew.cfg.ItemMergeCells; cs > 0 {
		cell := world.Pos{X: floorDivInt(p.X, cs), Y: floorDivInt(p.Y, cs), Z: floorDivInt(p.Z, cs)}
		if id, ok := ew.itemCells[cell]; ok {
			if e := ew.byID[id]; e != nil && !e.Dead && e.Kind == Item && e.ItemType == item {
				// Merge into the existing stack: no new entity.
				return
			}
		}
		e := ew.add(&Entity{Kind: Item, Pos: Center(p), ItemType: item, Vel: vel})
		if e != nil {
			ew.itemCells[cell] = e.ID
		}
		return
	}
	ew.add(&Entity{Kind: Item, Pos: Center(p), ItemType: item, Vel: vel})
}

func floorDivInt(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// SpawnMob implements sim.EntityOps.
func (ew *World) SpawnMob(p world.Pos) {
	if ew.mobs >= ew.cfg.MaxMobs {
		return
	}
	ew.add(&Entity{Kind: Mob, Pos: Center(p)})
}

// CollectItems implements sim.EntityOps: hopper intake. The spatial index
// restricts the scan to the chunk columns intersecting the intake radius.
func (ew *World) CollectItems(p world.Pos, radius float64) int {
	center := Center(p)
	n := 0
	ew.forEachNear(center, radius, func(e *Entity) {
		if e.Kind == Item && !e.Dead && e.Pos.Dist(center) <= radius {
			e.Dead = true
			n++
		}
	})
	return n
}

// DrainExplosions returns and clears the TNT detonation positions collected
// during the last Tick. The server routes them to the terrain engine.
func (ew *World) DrainExplosions() []world.Pos {
	out := ew.explosionsDue
	ew.explosionsDue = nil
	return out
}

// ApplyExplosionImpulse applies blast effects to entities around a
// detonation: items near the centre are destroyed, everything else in range
// is knocked away. This is the entity-collision side of the TNT workload.
// For a tick's whole detonation batch, ApplyExplosionImpulses runs these
// scans region-parallel.
func (ew *World) ApplyExplosionImpulse(center world.Pos, radius float64) {
	ew.applyImpulse(center, radius, &ew.counters)
}

// applyImpulse is the shared impulse scan, writing collision counts to the
// given counters so regioned batches can account per group and merge.
func (ew *World) applyImpulse(center world.Pos, radius float64, counters *Counters) {
	c := Center(center)
	ew.forEachNear(c, radius, func(e *Entity) {
		if e.Dead {
			return
		}
		d := e.Pos.Dist(c)
		if d > radius {
			return
		}
		counters.Collisions++
		if e.Kind == Item && d < radius/2 {
			e.Dead = true
			return
		}
		if d < 0.01 {
			d = 0.01
		}
		strength := (radius - d) / radius
		dir := e.Pos.Sub(c).Scale(1 / d)
		e.Vel = e.Vel.Add(dir.Scale(strength)).Add(Vec3{Y: 0.3 * strength})
	})
}

// Tick advances every entity one game tick. players gives current player
// positions (for activation ranges, AI targets, and natural spawning). The
// returned counters describe the tick's entity work.
//
// The per-entity loop — AI, physics, collision, the tick's hot path — runs
// region-parallel on the SimWorkers pool when the population partitions into
// independent regions (see parallel.go); otherwise, and as the universal
// fallback, it runs the legacy serial loop. The output is identical under
// every worker count: mob decisions draw from per-region streams that do not
// depend on schedule, and the rare entity tick a worker cannot complete is
// re-ticked serially in ID order. The phases around the loop (activation
// marking, natural spawning, compaction) consume the store RNG in global
// order and stay serial.
func (ew *World) Tick(players []Vec3) Counters {
	// Counters are NOT reset here: spawns requested by the terrain phase
	// (which runs before the entity phase within a server tick) must be
	// attributed to this tick. They are taken and reset at the end.

	ew.tickNum++
	ew.grid = newPlayerGrid(players)
	ew.markActive(players)

	if !ew.tryParallelTick() {
		for _, e := range ew.list {
			ew.root.tickEntity(e)
		}
	}
	ew.flushExplosions()

	if ew.cfg.NaturalSpawning && len(players) > 0 {
		ew.naturalSpawns(players)
	}
	ew.compact()
	out := ew.counters
	ew.counters = Counters{}
	return out
}

// tickEntity advances one entity through its game tick on the given context:
// ageing, activation throttling, the kind switch, and movement bookkeeping.
// This is the one copy of the per-entity tick body; the serial loop runs it
// on the root context and region workers on region contexts, so the two
// paths cannot drift apart.
func (c *tickCtx) tickEntity(e *Entity) {
	if e.Dead {
		return
	}
	e.Age++
	if c.ew.throttled(e) {
		c.counters.InactiveSkips++
		return
	}
	before := e.Pos.BlockPos()
	switch e.Kind {
	case Mob:
		c.counters.MobTicks++
		c.tickMob(e)
	case Item:
		c.counters.ItemTicks++
		c.tickItem(e)
	case PrimedTNT:
		c.counters.TNTTicks++
		e.Fuse--
		c.stepPhysics(e)
		if r := c.region; r != nil && r.escaped {
			// Escaped mid-physics: leave the fuse decision to the re-tick
			// so the detonation buffers exactly once.
			return
		}
		if e.Fuse <= 0 {
			e.Dead = true
			// Buffered with the entity ID on every schedule; flushExplosions
			// emits the tick's batch in serial (ID) order.
			if r := c.region; r != nil {
				r.explosions = append(r.explosions, entExplosion{id: e.ID, pos: e.Pos.BlockPos()})
			} else {
				c.ew.exBuf = append(c.ew.exBuf, entExplosion{id: e.ID, pos: e.Pos.BlockPos()})
			}
		}
	}
	if r := c.region; r != nil && r.escaped {
		return
	}
	if !e.Dead {
		if after := e.Pos.BlockPos(); after != before {
			c.counters.Moved++
			nc := world.ChunkPosAt(after)
			if r := c.region; r != nil {
				// Rebuckets are buffered and applied at the serial merge, so
				// the destination may lie anywhere — even another region's
				// chunks. Bucket contents stay frozen for the whole worker
				// phase, and bucket insertion is ID-sorted, so application
				// order is immaterial.
				if nc != e.chunk {
					r.moves = append(r.moves, entMove{e: e, to: nc})
				}
				r.chunkMoved[nc]++
			} else {
				if nc != e.chunk {
					c.ew.index.move(e, nc)
				}
				c.ew.noteMoved(e.chunk)
			}
		}
	}
}

// markActive stamps every entity within activation range of a player with
// the current tick: the inverted PaperMC activation-range check. Instead of
// scanning all players for every entity (O(entities x players)), each
// player's sweep visits only its nearby buckets; throttled then tests the
// stamp in O(1). Positions are pre-move for every entity, exactly as the
// per-entity scan saw them.
func (ew *World) markActive(players []Vec3) {
	if ew.cfg.ActivationRange <= 0 {
		return
	}
	r := float64(ew.cfg.ActivationRange)
	for _, p := range players {
		ew.forEachNear(p, r, func(e *Entity) {
			if e.activeTick != ew.tickNum && e.Pos.Dist(p) <= r {
				e.activeTick = ew.tickNum
			}
		})
	}
}

// throttled implements the PaperMC activation-range optimization: entities
// far from every player tick once in four. It reads the entity's
// already-incremented Age; throttledAt is the shared predicate, also used by
// the parallel scheduler to pre-classify entities without mutating them.
func (ew *World) throttled(e *Entity) bool { return ew.throttledAt(e, e.Age) }

func (ew *World) throttledAt(e *Entity, age int) bool {
	if ew.cfg.ActivationRange <= 0 || e.Kind == PrimedTNT {
		return false
	}
	if e.activeTick == ew.tickNum {
		return false
	}
	// The 1-in-4 schedule is phase-shifted per entity so throttled mobs do
	// not bunch onto the same tick. The phase keys on the spawn identity,
	// not the store-local ID, so it survives shard handoffs.
	return (age+int(e.seedKey&3))%4 != 0
}

// compact removes dead and expired entities. Mobs that die drop loot (the
// entity-farm yield); drops are spawned after the sweep so the list is not
// mutated mid-iteration.
func (ew *World) compact() {
	var drops []world.Pos
	live := ew.list[:0]
	for _, e := range ew.list {
		switch {
		case e.Dead:
		case e.Kind == Item && e.Age > ew.cfg.ItemLifetimeTicks:
			e.Dead = true
		case e.Kind == Mob && ew.cfg.MobLifetimeTicks > 0 && e.Age > ew.cfg.MobLifetimeTicks:
			e.Dead = true
			drops = append(drops, e.Pos.BlockPos())
		case e.Pos.Y < -8:
			// Fell out of the world.
			e.Dead = true
		}
		if e.Dead {
			delete(ew.byID, e.ID)
			ew.index.remove(e)
			ew.noteDespawned(e.chunk)
			if e.Kind == Mob {
				ew.mobs--
			}
			ew.counters.Despawns++
			continue
		}
		live = append(live, e)
	}
	ew.list = live
	ew.purgeItemCells()
	for _, p := range drops {
		ew.SpawnItem(p, world.Gravel) // stand-in mob loot
	}
}

// purgeItemCells drops merge-cell entries whose item entity has died or
// expired. Without this, cells pointing at dead items linger until a new
// drop overwrites them, which under TNT storms leaks a map entry per crater
// cell for the life of the run.
func (ew *World) purgeItemCells() {
	for cell, id := range ew.itemCells {
		if e := ew.byID[id]; e == nil || e.Dead || e.Kind != Item {
			delete(ew.itemCells, cell)
		}
	}
}
