// Package entity implements the entity substrate of the MLG engine — the
// Entities element of the paper's operational model (Figure 4, component 6)
// and the workload source of §2.2.3: mobs with AI and pathfinding over
// mutable terrain, item entities pushed around by fluids, primed TNT, and
// dynamic spawn-point computation.
//
// The paper finds entity processing to dominate non-idle tick time (MF4);
// this package is instrumented so the server can attribute that cost tick by
// tick, and implements the PaperMC entity-activation-range optimization that
// explains Paper's smaller entity share in Figure 11.
package entity

import (
	"math"

	"repro/internal/mlg/world"
)

// Type enumerates the entity kinds the engine simulates.
type Type uint8

// Entity kinds.
const (
	// Mob is a hostile NPC: it wanders, pathfinds, and can be farmed.
	Mob Type = iota
	// Item is a dropped resource entity, created by harvesting and
	// explosions, moved by fluid streams, absorbed by hoppers.
	Item
	// PrimedTNT is an ignited TNT charge counting down its fuse.
	PrimedTNT
)

// String returns the entity kind's name.
func (t Type) String() string {
	switch t {
	case Mob:
		return "mob"
	case Item:
		return "item"
	case PrimedTNT:
		return "tnt"
	default:
		return "unknown"
	}
}

// Vec3 is a continuous position or velocity in world space.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Scale returns v scaled by f.
func (v Vec3) Scale(f float64) Vec3 { return Vec3{v.X * f, v.Y * f, v.Z * f} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.X*v.X + v.Y*v.Y + v.Z*v.Z) }

// Dist returns the distance between v and o.
func (v Vec3) Dist(o Vec3) float64 { return v.Sub(o).Len() }

// BlockPos returns the block position containing v.
func (v Vec3) BlockPos() world.Pos {
	return world.Pos{X: int(math.Floor(v.X)), Y: int(math.Floor(v.Y)), Z: int(math.Floor(v.Z))}
}

// Center returns the continuous position at the centre of a block.
func Center(p world.Pos) Vec3 {
	return Vec3{X: float64(p.X) + 0.5, Y: float64(p.Y), Z: float64(p.Z) + 0.5}
}

// Entity is one simulated object in the world.
type Entity struct {
	// ID is the unique, monotonically assigned entity identifier.
	ID int64
	// Kind is the entity type.
	Kind Type
	// Pos is the entity's position (feet) and Vel its velocity, both in
	// blocks (per tick for velocity).
	Pos, Vel Vec3
	// OnGround reports whether the entity rested on a solid block after its
	// last physics step.
	OnGround bool
	// Age is the entity's lifetime in ticks.
	Age int
	// Dead marks the entity for removal at the end of the tick.
	Dead bool

	// ItemType is the dropped block type (Item entities).
	ItemType world.BlockID
	// Fuse is the remaining fuse in ticks (PrimedTNT entities).
	Fuse int

	// path is the mob's current A* path, pathIdx the next waypoint.
	path    []world.Pos
	pathIdx int
	// pathVersions records the terrain version of each chunk the path
	// crosses at computation time; a mismatch forces a repath — the
	// dynamic pathfinding-graph recomputation of §2.2.3.
	pathVersions map[world.ChunkPos]uint64
	// wanderCooldown ticks down between AI decisions.
	wanderCooldown int

	// seedKey is the entity's spawn identity: a pure function of the world
	// seed and the entity's spawn position and tick, assigned once at add()
	// and carried across shard handoffs. Decision streams and the throttle
	// phase key on it instead of the store-local ID, so an entity behaves
	// identically whichever shard simulates it and whatever local ID that
	// shard assigned. Never zero for a live entity.
	seedKey uint64

	// chunk is the spatial-index bucket currently holding the entity,
	// maintained by the store as the entity moves.
	chunk world.ChunkPos
	// activeTick is the last tick the activation-range sweep found a player
	// near this entity; entities not marked in the current tick are
	// throttled (the inverted PaperMC activation check).
	activeTick int64
}

// HasPath reports whether the mob is currently following a path.
func (e *Entity) HasPath() bool { return e.path != nil && e.pathIdx < len(e.path) }
