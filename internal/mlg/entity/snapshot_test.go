package entity

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mlg/world"
)

func snapshotSeedEntities() []Entity {
	return []Entity{
		{ID: 1, Kind: Mob, Pos: Vec3{X: 8.5, Y: 11, Z: 8.5}, Vel: Vec3{X: 0.1, Z: -0.1}, Age: 7, OnGround: true},
		{ID: 2, Kind: Item, Pos: Vec3{X: -3.25, Y: 64, Z: 1e9}, Vel: Vec3{Y: -3}, Age: 5999, ItemType: world.Gravel},
		{ID: 3, Kind: PrimedTNT, Pos: Vec3{}, Vel: Vec3{}, Fuse: 80},
		{ID: -9, Kind: Item, Pos: Vec3{X: math.Inf(1), Y: math.NaN(), Z: -0.0}, Dead: true, ItemType: world.Kelp},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, e := range snapshotSeedEntities() {
		e := e
		enc := AppendSnapshot(nil, &e)
		if len(enc) != snapshotSize {
			t.Fatalf("entity %d: snapshot %d bytes, want %d", e.ID, len(enc), snapshotSize)
		}
		dec, rest, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("entity %d: decode: %v", e.ID, err)
		}
		if len(rest) != 0 {
			t.Fatalf("entity %d: %d trailing bytes", e.ID, len(rest))
		}
		if !bytes.Equal(AppendSnapshot(nil, &dec), enc) {
			t.Fatalf("entity %d: re-encoded snapshot differs (float bits must round-trip)", e.ID)
		}
		if dec.ID != e.ID || dec.Kind != e.Kind || dec.Age != e.Age || dec.Fuse != e.Fuse ||
			dec.ItemType != e.ItemType || dec.OnGround != e.OnGround || dec.Dead != e.Dead {
			t.Fatalf("entity %d: fields diverged: %+v vs %+v", e.ID, dec, e)
		}
	}
}

func TestSnapshotRejectsTruncatedAndInvalid(t *testing.T) {
	e := snapshotSeedEntities()[0]
	enc := AppendSnapshot(nil, &e)
	if _, _, err := DecodeSnapshot(enc[:snapshotSize-1]); err != ErrSnapshotTruncated {
		t.Fatalf("truncated record: err = %v, want ErrSnapshotTruncated", err)
	}
	bad := append([]byte(nil), enc...)
	bad[8] = 200 // kind out of range
	if _, _, err := DecodeSnapshot(bad); err != ErrSnapshotInvalid {
		t.Fatalf("bad kind: err = %v, want ErrSnapshotInvalid", err)
	}
	bad = append(bad[:0], enc...)
	bad[9] = 0xF0 // undefined flag bits
	if _, _, err := DecodeSnapshot(bad); err != ErrSnapshotInvalid {
		t.Fatalf("bad flags: err = %v, want ErrSnapshotInvalid", err)
	}
}

// FuzzEntitySnapshot is the entity wire-serialization round-trip target run
// by the CI fuzz smoke step: any byte string the decoder accepts must
// re-encode to exactly the bytes consumed, and decode again to the same
// entity.
func FuzzEntitySnapshot(f *testing.F) {
	for _, e := range snapshotSeedEntities() {
		e := e
		f.Add(AppendSnapshot(nil, &e))
	}
	f.Add(make([]byte, snapshotSize))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, rest, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		enc := AppendSnapshot(nil, &e)
		if !bytes.Equal(enc, consumed) {
			t.Fatalf("re-encode mismatch:\nconsumed %x\nencoded  %x", consumed, enc)
		}
		e2, rest2, err := DecodeSnapshot(enc)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("canonical bytes failed to decode: %v (%d trailing)", err, len(rest2))
		}
		if !bytes.Equal(AppendSnapshot(nil, &e2), enc) {
			t.Fatal("second round trip diverged")
		}
	})
}
