package entity

// Region-parallel entity ticks, mirroring the terrain engine's
// partition-and-replay architecture (internal/mlg/sim/region.go,
// parallel.go) on the entity phase.
//
// The serial loop visits every live entity in list (ID) order. Within one
// tick, entity ticks never read each other's state: AI targets come from the
// frozen player snapshot, physics and path checks read terrain — which the
// entity phase never mutates — and spawning, item merging and blast
// impulses all happen in the serial phases around the loop. The loop's only
// cross-entity dependency is the store's RNG stream, which mob decisions
// (choosePath, the wander-cooldown roll on path completion) consume in
// entity order. A bit-identical parallel schedule therefore needs:
//
//  1. Region independence: entities are partitioned by the chunk-bucketed
//     spatial index into connected components of occupied chunk columns
//     (Chebyshev distance <= entRegionLinkChunks), each owning its core
//     chunks plus a one-chunk halo. Workers write only their own entities;
//     buffered side effects (index rebuckets, per-chunk update counts,
//     detonations) keep the shared maps untouched until the merge. An
//     entity that moves outside its region's owned set escapes — the whole
//     attempt rolls back from per-entity undo snapshots and the tick
//     re-runs serially, exactly as terrain escapes do.
//
//  2. Decision replay: mobs whose tick could draw RNG (the mobMayDrawRNG
//     predicate, evaluated on pre-tick state) are not ticked by the workers
//     at all; the merge replays them serially in global ID order on the
//     root context, so every RNG draw happens in exactly the serial
//     stream position. The predicate is conservative; the context guards in
//     tickMob/followPath turn any miss into an escape.
//
// Order-sensitive effects are reconstructed at merge time: detonations are
// re-emitted in entity-ID order (the serial append order — mobs never
// detonate, so the deferred pass cannot interleave), counters and per-chunk
// update counts are order-free sums, and index rebuckets commute because
// buckets are ID-sorted sets. The workers run inside the world's exclusive
// phase with frozen chunk-index caches, so concurrent joins and readers
// block exactly as they would behind a serial entity storm.

import (
	"sort"

	"repro/internal/mlg/world"
)

// entRegionLinkChunks is the Chebyshev chunk distance at which occupied
// chunk columns merge into one entity region. Cores of distinct regions are
// then >= 3 chunks apart, so their owned sets (core ⊕ 1-chunk halo) are
// >= 1 chunk apart: an entity would have to cross a full unoccupied chunk
// in one tick (terminal velocity is 3 blocks/tick) to reach another
// region's territory, which the escape check rules out anyway.
const entRegionLinkChunks = 2

// minParallelEntities is the population below which a parallel attempt is
// not worth the partition + worker handoff cost.
const minParallelEntities = 32

// minParallelImpulses is the detonation-batch size below which blast
// impulses run serially.
const minParallelImpulses = 4

// tickCtx is one entity-tick execution context. The store's root context
// aliases the store's own chunk cache and counters (the legacy serial
// path); a region context owns region-local counters and caches and buffers
// every order-sensitive effect for the deterministic merge. The per-entity
// tick body is written once against tickCtx, so the serial and parallel
// paths cannot drift apart.
type tickCtx struct {
	ew       *World
	wc       *world.ChunkCache
	counters *Counters
	region   *entRegion // nil for the store's root (serial) context
	cur      *Entity    // entity currently being ticked (hazard attribution)
}

// blockIfLoaded is the context's terrain read. On a region context, a read
// that misses an unloaded chunk escapes when a deferred mob with a smaller
// ID exists in the region: that mob's serial-order choosePath can GENERATE
// the missing chunk (surfaceAt → HighestSolidY) before this entity's serial
// turn, so the frozen-index miss is not provably what the serial schedule
// observes. Reads by entities ordered before every deferred mob — and all
// reads when nothing is deferred — see exactly the serial state, since no
// worker-ticked entity ever generates terrain.
func (c *tickCtx) blockIfLoaded(p world.Pos) (world.Block, bool) {
	b, ok := c.wc.BlockIfLoaded(p)
	if !ok {
		if r := c.region; r != nil && r.minDeferred >= 0 && c.cur != nil && c.cur.ID > r.minDeferred {
			r.escaped = true
		}
	}
	return b, ok
}

// entMove is one buffered spatial-index rebucket.
type entMove struct {
	e  *Entity
	to world.ChunkPos
}

// entExplosion is one buffered TNT detonation, keyed by entity ID so the
// merge can re-emit the batch in serial (list) order.
type entExplosion struct {
	id  int64
	pos world.Pos
}

// entUndo snapshots one entity before its parallel tick. Restoring the
// struct value is a full rollback: workers never mutate the contents of the
// referenced path/pathVersions slices or maps, only replace the pointers.
type entUndo struct {
	e    *Entity
	prev Entity
}

// entRegion is one region's tick execution: its core chunk columns, the
// owned set bounding its entities' movement, and the buffers the merge
// consumes.
type entRegion struct {
	key    world.ChunkPos
	chunks []world.ChunkPos            // core chunk columns, discovery order
	owned  map[world.ChunkPos]struct{} // core plus one-chunk halo

	cache      world.ChunkCache
	counters   Counters
	ticking    []*Entity // entities the workers tick (classify pass output)
	deferred   []*Entity // mobs routed to the serial decision replay
	moves      []entMove
	chunkMoved map[world.ChunkPos]int
	explosions []entExplosion
	undo       []entUndo
	// minDeferred is the smallest deferred-mob ID (-1 when none): the
	// horizon after which an unloaded-chunk read stops being provably
	// serial-equivalent (see tickCtx.blockIfLoaded).
	minDeferred int64
	// escaped marks an entity leaving the owned set, a decision predicate
	// miss, or an unloaded read past the deferred horizon: the whole tick's
	// parallel attempt rolls back and re-runs serially.
	escaped bool
}

// run ticks the region's entities in two passes. The classify pass routes
// RNG-drawing mobs to the serial replay (recording the deferred-ID horizon
// the terrain-read guard needs); the tick pass then runs everything else.
// Within-region tick order is free: entity ticks are independent, and every
// order-sensitive effect is keyed for the merge.
func (r *entRegion) run(c *tickCtx) {
	for _, cp := range r.chunks {
		for _, e := range c.ew.index.buckets[cp] {
			if e.Dead {
				continue
			}
			if e.Kind == Mob && !c.ew.throttledAt(e, e.Age+1) && c.ew.mobMayDrawRNG(e) {
				r.deferred = append(r.deferred, e)
				if r.minDeferred < 0 || e.ID < r.minDeferred {
					r.minDeferred = e.ID
				}
				continue
			}
			r.ticking = append(r.ticking, e)
		}
	}
	for _, e := range r.ticking {
		if r.escaped {
			return
		}
		r.undo = append(r.undo, entUndo{e: e, prev: *e})
		c.cur = e
		c.tickEntity(e)
	}
	c.cur = nil
}

// rollback restores every entity the region ticked to its pre-tick state,
// in reverse order. Buffered effects are simply discarded by the caller.
func (r *entRegion) rollback() {
	for i := len(r.undo) - 1; i >= 0; i-- {
		*r.undo[i].e = r.undo[i].prev
	}
}

func (r *entRegion) reset() {
	r.chunks = r.chunks[:0]
	clear(r.owned)
	clear(r.chunkMoved)
	r.ticking = r.ticking[:0]
	r.deferred = r.deferred[:0]
	r.moves = r.moves[:0]
	r.explosions = r.explosions[:0]
	r.undo = r.undo[:0]
	r.counters = Counters{}
	r.minDeferred = -1
	r.escaped = false
	r.cache = world.ChunkCache{}
}

// takeEntRegion reuses a pooled region shell (maps cleared, buffer capacity
// retained) or allocates a fresh one, so steady-state parallel ticks stop
// growing the heap with per-tick region buffers.
func (ew *World) takeEntRegion() *entRegion {
	if n := len(ew.regionPool); n > 0 {
		r := ew.regionPool[n-1]
		ew.regionPool = ew.regionPool[:n-1]
		r.reset()
		return r
	}
	return &entRegion{
		owned:       make(map[world.ChunkPos]struct{}, 64),
		chunkMoved:  make(map[world.ChunkPos]int, 16),
		minDeferred: -1,
	}
}

func (ew *World) releaseEntRegions(regions []*entRegion) {
	ew.regionPool = append(ew.regionPool, regions...)
}

// partitionEntityRegions groups the occupied chunk columns of the spatial
// index into entity regions: connected components at Chebyshev distance
// <= entRegionLinkChunks, each owning its core plus a one-chunk halo.
// Regions are returned sorted by key (minimal core chunk in (Z, X) order).
// When fewer than minRegions components exist only the count is returned —
// the caller drains serially.
func (ew *World) partitionEntityRegions(minRegions int) (regions []*entRegion, nComps int) {
	if ew.regionScratch == nil {
		ew.regionScratch = make(map[world.ChunkPos]int32, 64)
	}
	clear(ew.regionScratch)
	occ := ew.regionScratch
	for cp := range ew.index.buckets {
		occ[cp] = -1
	}

	// Connected components over the occupied set (the shared flood fill).
	// Component ids follow map iteration order, but components are
	// canonical and the final region order is fixed by the key sort below.
	world.LabelComponents(occ, entRegionLinkChunks, func(comp int32, c world.ChunkPos) {
		if int(comp) == len(regions) {
			r := ew.takeEntRegion()
			r.key = c
			regions = append(regions, r)
		}
		r := regions[comp]
		r.chunks = append(r.chunks, c)
		if c.Z < r.key.Z || (c.Z == r.key.Z && c.X < r.key.X) {
			r.key = c
		}
		for dz := int32(-1); dz <= 1; dz++ {
			for dx := int32(-1); dx <= 1; dx++ {
				r.owned[world.ChunkPos{X: c.X + dx, Z: c.Z + dz}] = struct{}{}
			}
		}
	})
	nComps = len(regions)
	if nComps < minRegions {
		ew.releaseEntRegions(regions)
		return nil, nComps
	}
	sort.Slice(regions, func(i, j int) bool {
		a, b := regions[i].key, regions[j].key
		if a.Z != b.Z {
			return a.Z < b.Z
		}
		return a.X < b.X
	})
	return regions, nComps
}

// tryParallelTick attempts to run this tick's per-entity loop on the
// region-parallel schedule. It returns true when the loop ran and merged
// (bit-identically to the serial loop); false leaves every entity untouched
// so the caller runs the serial path.
func (ew *World) tryParallelTick() bool {
	ew.lastParallel = false
	ew.lastRegions = 0
	if ew.workers < 2 || len(ew.list) < minParallelEntities {
		return false
	}
	if ew.serialHold > 0 {
		ew.serialHold--
		return false
	}
	regions, nComps := ew.partitionEntityRegions(2)
	ew.lastRegions = nComps
	if regions == nil {
		// Single occupied cluster: nothing to parallelize. Hold the serial
		// path for a few ticks instead of re-scanning a dense one-cluster
		// population every tick.
		ew.serialHold = 8
		return false
	}

	// Exclusive phase: workers resolve terrain reads from the frozen chunk
	// index (they cannot take the world's read lock while it is held), and
	// concurrent joins/readers block exactly as behind a serial entity storm.
	index := ew.w.BeginExclusive()
	world.Parallel(ew.workers, len(regions), func(i int) {
		r := regions[i]
		r.cache = world.NewFixedChunkCache(index)
		c := &tickCtx{ew: ew, wc: &r.cache, counters: &r.counters, region: r}
		r.run(c)
	})
	ew.w.EndExclusive()

	for _, r := range regions {
		if r.escaped {
			// Roll every region back (undo snapshots restore the exact
			// pre-tick entity states; buffered effects are discarded) and
			// let the serial loop redo the tick.
			for j := len(regions) - 1; j >= 0; j-- {
				regions[j].rollback()
			}
			ew.releaseEntRegions(regions)
			ew.fallbackTicks++
			ew.serialHold = 8
			return false
		}
	}

	ew.mergeEntRegions(regions)
	ew.replayDeferred(regions)
	ew.releaseEntRegions(regions)
	ew.lastParallel = true
	ew.parallelTicks++
	return true
}

// mergeEntRegions folds the regions' buffered effects into the store:
// counters and per-chunk update counts sum (order-free), index rebuckets
// apply (buckets are ID-sorted sets, so application order is immaterial),
// and detonations re-emit in entity-ID order — exactly the serial loop's
// append order.
func (ew *World) mergeEntRegions(regions []*entRegion) {
	ex := ew.exScratch[:0]
	for _, r := range regions {
		ew.counters = ew.counters.Add(r.counters)
		for cp, n := range r.chunkMoved {
			u := ew.chunkUpdates[cp]
			u.Moved += n
			ew.chunkUpdates[cp] = u
		}
		for _, m := range r.moves {
			ew.index.move(m.e, m.to)
		}
		ex = append(ex, r.explosions...)
	}
	sort.Slice(ex, func(i, j int) bool { return ex[i].id < ex[j].id })
	for _, x := range ex {
		ew.explosionsDue = append(ew.explosionsDue, x.pos)
	}
	ew.exScratch = ex
}

// replayDeferred runs the RNG-drawing mobs serially on the root context in
// global ID order — the exact positions their draws occupy in the serial
// stream, since no other entity in the loop draws.
func (ew *World) replayDeferred(regions []*entRegion) {
	def := ew.deferScratch[:0]
	for _, r := range regions {
		def = append(def, r.deferred...)
	}
	sort.Slice(def, func(i, j int) bool { return def[i].ID < def[j].ID })
	for _, e := range def {
		ew.root.tickEntity(e)
	}
	ew.deferScratch = def
}

// ApplyExplosionImpulses applies blast impulses for a whole detonation
// batch. The scans fold into the same regioned execution as the entity
// tick: centers partition into groups whose bucket scans cannot overlap
// (components at Chebyshev chunk distance <= 2×reach, where reach is the
// blast radius in chunks rounded up), each group processes its centers in
// original batch order, and group counters merge afterwards. An entity is
// scanned by at most one group, so its velocity accumulates in exactly the
// serial per-center order; with few centers, few workers or one group, the
// batch runs serially unchanged.
func (ew *World) ApplyExplosionImpulses(centers []world.Pos, radius float64) {
	if ew.workers < 2 || len(centers) < minParallelImpulses {
		for _, c := range centers {
			ew.ApplyExplosionImpulse(c, radius)
		}
		return
	}

	// Group centers by chunk-distance components (the shared flood fill,
	// over scratch reused across ticks — TNT storms hit this every tick).
	// reach is how many chunk columns a scan's bounding square can extend
	// from the center's chunk.
	reach := int32(int(radius)/world.ChunkSize + 1)
	if ew.impulseScratch == nil {
		ew.impulseScratch = make(map[world.ChunkPos]int32, 32)
	}
	clear(ew.impulseScratch)
	chunkGroup := ew.impulseScratch
	for _, c := range centers {
		chunkGroup[world.ChunkPosAt(c)] = -1
	}
	nGroups := int(world.LabelComponents(chunkGroup, 2*reach, nil))
	if nGroups < 2 {
		for _, c := range centers {
			ew.ApplyExplosionImpulse(c, radius)
		}
		return
	}

	// Second pass over the original slice keeps each group's centers in
	// batch order.
	for len(ew.impulseCenters) < nGroups {
		ew.impulseCenters = append(ew.impulseCenters, nil)
	}
	groupCenters := ew.impulseCenters[:nGroups]
	for i := range groupCenters {
		groupCenters[i] = groupCenters[i][:0]
	}
	for _, c := range centers {
		gid := chunkGroup[world.ChunkPosAt(c)]
		groupCenters[gid] = append(groupCenters[gid], c)
	}
	for len(ew.impulseCounters) < nGroups {
		ew.impulseCounters = append(ew.impulseCounters, Counters{})
	}
	groupCounters := ew.impulseCounters[:nGroups]
	for i := range groupCounters {
		groupCounters[i] = Counters{}
	}
	world.Parallel(ew.workers, nGroups, func(i int) {
		for _, c := range groupCenters[i] {
			ew.applyImpulse(c, radius, &groupCounters[i])
		}
	})
	for i := range groupCounters {
		ew.counters = ew.counters.Add(groupCounters[i])
	}
}

// Add returns the component-wise sum of c and o — the merge operation for
// per-region and per-group counters.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		MobTicks:      c.MobTicks + o.MobTicks,
		ItemTicks:     c.ItemTicks + o.ItemTicks,
		TNTTicks:      c.TNTTicks + o.TNTTicks,
		InactiveSkips: c.InactiveSkips + o.InactiveSkips,
		PathNodes:     c.PathNodes + o.PathNodes,
		Repaths:       c.Repaths + o.Repaths,
		Collisions:    c.Collisions + o.Collisions,
		SpawnAttempts: c.SpawnAttempts + o.SpawnAttempts,
		Spawns:        c.Spawns + o.Spawns,
		Despawns:      c.Despawns + o.Despawns,
		Moved:         c.Moved + o.Moved,
	}
}

// ParallelStats describes how the store has been scheduling its ticks — the
// attribution surface for the server's tick records, mirroring
// sim.ParallelStats.
type ParallelStats struct {
	// Workers is the resolved worker count (Config.Workers, or GOMAXPROCS).
	Workers int
	// LastRegions is the region count of the last attempted partition (0
	// when the last tick never partitioned).
	LastRegions int
	// LastParallel reports whether the last tick's entity loop ran on the
	// region-parallel schedule.
	LastParallel bool
	// ParallelTicks counts ticks run in parallel; FallbackTicks counts
	// ticks where a parallel attempt escaped and was rolled back to the
	// serial loop.
	ParallelTicks int64
	FallbackTicks int64
}

// ParallelStats returns the store's scheduling attribution counters.
func (ew *World) ParallelStats() ParallelStats {
	return ParallelStats{
		Workers:       ew.workers,
		LastRegions:   ew.lastRegions,
		LastParallel:  ew.lastParallel,
		ParallelTicks: ew.parallelTicks,
		FallbackTicks: ew.fallbackTicks,
	}
}
