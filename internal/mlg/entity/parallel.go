package entity

// Region-parallel entity ticks, mirroring the terrain engine's
// partition-and-merge architecture (internal/mlg/sim/region.go, parallel.go)
// on the entity phase.
//
// The serial loop visits every live entity in list (ID) order. Within one
// tick, entity ticks never read each other's state: AI targets come from the
// frozen player snapshot, physics and path checks read terrain — which the
// entity phase never mutates, only extends (choosePath's surfaceAt may
// GENERATE an unloaded column) — and spawning, item merging and blast
// impulses all happen in the serial phases around the loop. Decision
// randomness comes from per-region streams (rng.go): each draw is a pure
// function of simulation state, so draws are identical under any schedule.
// The deterministic contract is therefore worker-count independence — every
// Workers value, including 1 (the serial loop), produces the same world —
// built from three pieces:
//
//  1. Region independence: entities are partitioned by the chunk-bucketed
//     spatial index into connected components of occupied chunk columns
//     (Chebyshev distance <= entRegionLinkChunks), each owning its core
//     chunks plus a one-chunk halo. Workers write only their own entities;
//     buffered side effects (index rebuckets, per-chunk update counts,
//     detonations) keep the shared maps untouched until the merge.
//
//  2. The generation horizon: the only cross-entity coupling left is lazy
//     terrain generation — serially, a mob reaching choosePath can generate
//     a chunk that a later entity's read then sees loaded. The scheduler
//     computes the smallest ID among mobs that will reach choosePath this
//     tick (mayChoosePath, exact on pre-tick state). Region reads that hit
//     loaded chunks are always serial-equivalent (loaded terrain is frozen
//     for the phase); a read that misses an unloaded chunk is provably
//     serial-equivalent only for entities at or before the horizon. Past it,
//     the entity escapes: it is rolled back from its undo snapshot and
//     re-ticked serially — in global ID order, on the root context, after
//     the exclusive phase — where generation is allowed. Escapes are
//     per-entity, not per-tick: the rest of the region commits.
//
//  3. Order reconstruction at merge time: detonations are buffered with
//     their entity IDs and flushed in ID order (the serial append order)
//     after the re-tick pass; counters and per-chunk update counts are
//     order-free sums; index rebuckets commute because buckets are
//     ID-sorted sets.
//
// Escape is impossible for most regions — no generation-capable mob, no
// fast entity, every owned chunk loaded — and those regions skip the
// per-entity undo snapshots entirely (see entRegion.run), which removes the
// dominant overhead the old bit-identical schedule paid on small regions.
// Scheduling is size-aware: regions carry a cost estimate (their entity
// count) and are packed into contiguous cost-balanced work units
// (world.PackUnits), so a swarm of tiny regions shares a few worker
// handoffs and the pool's fan-out follows the work available.
//
// The workers run inside the world's exclusive phase with frozen chunk-index
// caches, so concurrent joins and readers block exactly as they would behind
// a serial entity storm.

import (
	"sort"

	"repro/internal/mlg/world"
)

// entRegionLinkChunks is the Chebyshev chunk distance at which occupied
// chunk columns merge into one entity region. Cores of distinct regions are
// then >= 3 chunks apart, so their owned sets (core ⊕ 1-chunk halo) are
// >= 1 chunk apart.
const entRegionLinkChunks = 2

// minParallelEntities is the population below which a parallel attempt is
// not worth the partition + worker handoff cost.
const minParallelEntities = 32

// minUnitEntities is the target entity count per packed work unit: regions
// are merged into contiguous units until each carries at least this much
// estimated work, so the parallel fan-out tracks the population, not the
// region count.
const minUnitEntities = 16

// unitsPerWorker bounds the packed unit count to a few units per worker:
// enough slack for the pool's work stealing to balance uneven units, few
// enough that handoffs stay amortized.
const unitsPerWorker = 4

// fastEscapeVel is the per-axis horizontal velocity (blocks/tick) above
// which an entity's movement and collision probes are no longer provably
// confined to its region's owned set (core chunk + 16-block halo). Regions
// containing a faster entity keep undo snapshots on, since an unloaded-chunk
// probe can then trip the generation-horizon escape. Slow entities reach at
// most |v| + 2 blocks from a core chunk, comfortably inside the halo.
const fastEscapeVel = 8.0

// minParallelImpulses is the detonation-batch size below which blast
// impulses run serially.
const minParallelImpulses = 4

// tickCtx is one entity-tick execution context. The store's root context
// aliases the store's own chunk cache and counters (the legacy serial
// path); a region context owns region-local counters and caches and buffers
// every order-sensitive effect for the deterministic merge. The per-entity
// tick body is written once against tickCtx, so the serial and parallel
// paths cannot drift apart.
type tickCtx struct {
	ew       *World
	wc       *world.ChunkCache
	counters *Counters
	region   *entRegion // nil for the store's root (serial) context
	cur      *Entity    // entity currently being ticked (escape attribution)
}

// blockIfLoaded is the context's terrain read. Reads that hit a loaded chunk
// are always serial-equivalent: the entity phase never mutates loaded
// terrain, it only generates NEW chunks (choosePath → surfaceAt). A miss on
// an unloaded chunk is hazardous only when a mob with a smaller ID can
// generate this tick — at this entity's serial turn the chunk might exist.
// Past the generation horizon the current entity escapes to the serial
// re-tick pass, which runs after every generation-capable predecessor.
func (c *tickCtx) blockIfLoaded(p world.Pos) (world.Block, bool) {
	b, ok := c.wc.BlockIfLoaded(p)
	if !ok {
		if r := c.region; r != nil && r.genHorizon >= 0 && c.cur != nil && c.cur.ID > r.genHorizon {
			r.escaped = true
		}
	}
	return b, ok
}

// entMove is one buffered spatial-index rebucket.
type entMove struct {
	e  *Entity
	to world.ChunkPos
}

// entExplosion is one buffered TNT detonation, keyed by entity ID so the
// flush can emit the tick's batch in serial (list) order.
type entExplosion struct {
	id  int64
	pos world.Pos
}

// entRegion is one region's tick execution: its core chunk columns, the
// owned set bounding its entities' movement, and the buffers the merge
// consumes.
type entRegion struct {
	key    world.ChunkPos
	chunks []world.ChunkPos            // core chunk columns, discovery order
	owned  map[world.ChunkPos]struct{} // core plus one-chunk halo
	// cost estimates the region's tick work (its entity count at partition
	// time) for the unit packer.
	cost int

	cache      world.ChunkCache
	counters   Counters
	ticking    []*Entity // entities the worker ticks (classify pass output)
	retick     []*Entity // escaped entities, re-ticked serially after merge
	moves      []entMove
	chunkMoved map[world.ChunkPos]int
	explosions []entExplosion

	// genHorizon is the tick's generation horizon (smallest ID among mobs
	// that will reach choosePath; -1 when none), copied from the scheduler.
	genHorizon int64
	// undoOn gates the per-entity undo snapshots. It is false — and
	// snapshots are skipped — when the region provably cannot escape: no
	// generation-capable mob (no choosePath can need an unloaded column,
	// and only those mobs' A* reads leave the owned set), no fast entity
	// (slow probes stay inside the owned halo), and, when a generation
	// horizon exists, no unloaded owned chunk (so in-halo probes cannot
	// miss). An escape with undoOn unset would be a scheduler bug; run
	// panics rather than committing a half-ticked entity.
	undoOn bool
	// prev and prevCounters snapshot the current entity and the region
	// counters before its tick (only while undoOn): restoring the struct
	// value is a full per-entity rollback, since workers never mutate the
	// contents of the referenced path/pathVersions slices or maps, only
	// replace the pointers.
	prev         Entity
	prevCounters Counters
	// escaped marks the CURRENT entity's tick as not completable in-region
	// (terrain generation needed, or an unloaded read past the generation
	// horizon). The run loop rolls that entity back, queues it for the
	// serial re-tick, clears the flag and continues.
	escaped bool
}

// run ticks the region's entities. The classify pass gathers them from the
// frozen buckets and decides undo gating; the tick pass then runs each
// entity, rolling back and queueing for serial re-tick any that escape.
// Within-region tick order is free: entity ticks are independent, and every
// order-sensitive effect is keyed for the merge.
func (r *entRegion) run(c *tickCtx, index map[world.ChunkPos]*world.Chunk) {
	hasGen, anyFast := false, false
	for _, cp := range r.chunks {
		for _, e := range c.ew.index.buckets[cp] {
			if e.Dead {
				continue
			}
			r.ticking = append(r.ticking, e)
			if !hasGen && c.ew.mayChoosePath(e) {
				hasGen = true
			}
			if v := e.Vel; v.X > fastEscapeVel || v.X < -fastEscapeVel ||
				v.Z > fastEscapeVel || v.Z < -fastEscapeVel {
				anyFast = true
			}
		}
	}
	r.undoOn = hasGen
	if !r.undoOn && r.genHorizon >= 0 {
		if anyFast {
			r.undoOn = true
		} else {
			for cp := range r.owned {
				if index[cp] == nil {
					r.undoOn = true
					break
				}
			}
		}
	}

	for _, e := range r.ticking {
		if r.undoOn {
			r.prev = *e
			r.prevCounters = r.counters
		}
		c.cur = e
		c.tickEntity(e)
		if r.escaped {
			if !r.undoOn {
				panic("entity: region escape with undo snapshots gated off")
			}
			*e = r.prev
			r.counters = r.prevCounters
			r.retick = append(r.retick, e)
			r.escaped = false
		}
	}
	c.cur = nil
}

func (r *entRegion) reset() {
	r.chunks = r.chunks[:0]
	clear(r.owned)
	clear(r.chunkMoved)
	r.cost = 0
	r.ticking = r.ticking[:0]
	r.retick = r.retick[:0]
	r.moves = r.moves[:0]
	r.explosions = r.explosions[:0]
	r.counters = Counters{}
	r.genHorizon = -1
	r.undoOn = false
	r.escaped = false
	r.cache = world.ChunkCache{}
}

// takeEntRegion reuses a pooled region shell (maps cleared, buffer capacity
// retained) or allocates a fresh one, so steady-state parallel ticks stop
// growing the heap with per-tick region buffers.
func (ew *World) takeEntRegion() *entRegion {
	if n := len(ew.regionPool); n > 0 {
		r := ew.regionPool[n-1]
		ew.regionPool = ew.regionPool[:n-1]
		r.reset()
		return r
	}
	return &entRegion{
		owned:      make(map[world.ChunkPos]struct{}, 64),
		chunkMoved: make(map[world.ChunkPos]int, 16),
		genHorizon: -1,
	}
}

func (ew *World) releaseEntRegions(regions []*entRegion) {
	ew.regionPool = append(ew.regionPool, regions...)
}

// partitionEntityRegions groups the occupied chunk columns of the spatial
// index into entity regions: connected components at Chebyshev distance
// <= entRegionLinkChunks, each owning its core plus a one-chunk halo and
// carrying its entity count as the packing cost estimate. Regions are
// returned sorted by key (minimal core chunk in (Z, X) order). When fewer
// than minRegions components exist only the count is returned — the caller
// drains serially.
func (ew *World) partitionEntityRegions(minRegions int) (regions []*entRegion, nComps int) {
	if ew.regionScratch == nil {
		ew.regionScratch = make(map[world.ChunkPos]int32, 64)
	}
	clear(ew.regionScratch)
	occ := ew.regionScratch
	for cp := range ew.index.buckets {
		occ[cp] = -1
	}

	// Connected components over the occupied set (the shared flood fill).
	// Component ids follow map iteration order, but components are
	// canonical and the final region order is fixed by the key sort below.
	world.LabelComponents(occ, entRegionLinkChunks, func(comp int32, c world.ChunkPos) {
		if int(comp) == len(regions) {
			r := ew.takeEntRegion()
			r.key = c
			regions = append(regions, r)
		}
		r := regions[comp]
		r.chunks = append(r.chunks, c)
		r.cost += len(ew.index.buckets[c])
		if c.Z < r.key.Z || (c.Z == r.key.Z && c.X < r.key.X) {
			r.key = c
		}
		for dz := int32(-1); dz <= 1; dz++ {
			for dx := int32(-1); dx <= 1; dx++ {
				r.owned[world.ChunkPos{X: c.X + dx, Z: c.Z + dz}] = struct{}{}
			}
		}
	})
	nComps = len(regions)
	if nComps < minRegions {
		ew.releaseEntRegions(regions)
		return nil, nComps
	}
	sort.Slice(regions, func(i, j int) bool {
		a, b := regions[i].key, regions[j].key
		if a.Z != b.Z {
			return a.Z < b.Z
		}
		return a.X < b.X
	})
	return regions, nComps
}

// tryParallelTick attempts to run this tick's per-entity loop on the
// region-parallel schedule. It returns true when the loop ran and merged
// (identically to the serial loop under the per-region-stream contract);
// false leaves every entity untouched so the caller runs the serial path.
func (ew *World) tryParallelTick() bool {
	ew.lastParallel = false
	ew.lastRegions = 0
	if ew.workers < 2 || len(ew.list) < minParallelEntities {
		return false
	}
	if ew.serialHold > 0 {
		ew.serialHold--
		return false
	}
	regions, nComps := ew.partitionEntityRegions(2)
	ew.lastRegions = nComps
	if regions == nil {
		// Single occupied cluster: nothing to parallelize. Hold the serial
		// path for a few ticks instead of re-scanning a dense one-cluster
		// population every tick.
		ew.serialHold = 8
		return false
	}

	// The tick's generation horizon: the smallest ID among mobs that will
	// reach choosePath — the only mid-loop terrain generator. The list is
	// ID-ordered, so the first match is the minimum. Computed once,
	// serially, on pre-tick state; every region receives the same value.
	genHorizon := int64(-1)
	for _, e := range ew.list {
		if !e.Dead && ew.mayChoosePath(e) {
			genHorizon = e.ID
			break
		}
	}

	// Size the fan-out by the work available: regions pack into contiguous
	// cost-balanced units, so a swarm of tiny regions shares a few worker
	// handoffs instead of paying one each, and a sparse tick spawns only
	// the goroutines its units need.
	costs := ew.costScratch[:0]
	for _, r := range regions {
		costs = append(costs, r.cost)
	}
	ew.costScratch = costs
	units := world.PackUnits(ew.unitScratch[:0], costs, ew.workers*unitsPerWorker, minUnitEntities)
	ew.unitScratch = units

	// Exclusive phase: workers resolve terrain reads from the frozen chunk
	// index (they cannot take the world's read lock while it is held), and
	// concurrent joins/readers block exactly as behind a serial entity storm.
	index := ew.w.BeginExclusive()
	world.Parallel(ew.workers, len(units), func(u int) {
		for i := units[u][0]; i < units[u][1]; i++ {
			r := regions[i]
			r.genHorizon = genHorizon
			r.cache = world.NewFixedChunkCache(index)
			c := &tickCtx{ew: ew, wc: &r.cache, counters: &r.counters, region: r}
			r.run(c, index)
		}
	})
	ew.w.EndExclusive()

	retick := ew.mergeEntRegions(regions)
	ew.releaseEntRegions(regions)
	if len(retick) > 0 {
		// Escaped entities re-run serially on the root context in global ID
		// order — the positions their terrain generation occupies in the
		// serial schedule. Everything else has already committed with
		// serial-identical results: loaded terrain is stable for the phase
		// and decision draws are order-free.
		for _, e := range retick {
			ew.root.tickEntity(e)
		}
		ew.fallbackTicks++
	}
	ew.lastParallel = true
	ew.parallelTicks++
	return true
}

// mergeEntRegions folds the regions' buffered effects into the store:
// counters and per-chunk update counts sum (order-free), index rebuckets
// apply (buckets are ID-sorted sets, so application order is immaterial),
// detonations join the tick's ID-keyed buffer (flushed in serial order at
// the end of the tick), and escaped entities are collected — sorted by ID —
// for the serial re-tick pass.
func (ew *World) mergeEntRegions(regions []*entRegion) []*Entity {
	retick := ew.retickScratch[:0]
	for _, r := range regions {
		ew.counters = ew.counters.Add(r.counters)
		for cp, n := range r.chunkMoved {
			u := ew.chunkUpdates[cp]
			u.Moved += n
			ew.chunkUpdates[cp] = u
		}
		for _, m := range r.moves {
			ew.index.move(m.e, m.to)
		}
		ew.exBuf = append(ew.exBuf, r.explosions...)
		retick = append(retick, r.retick...)
	}
	sort.Slice(retick, func(i, j int) bool { return retick[i].ID < retick[j].ID })
	ew.retickScratch = retick
	return retick
}

// flushExplosions emits the tick's buffered detonations to explosionsDue in
// entity-ID order — the serial loop's append order — regardless of which
// schedule (serial, region worker, re-tick pass) buffered them.
func (ew *World) flushExplosions() {
	if len(ew.exBuf) == 0 {
		return
	}
	sort.Slice(ew.exBuf, func(i, j int) bool { return ew.exBuf[i].id < ew.exBuf[j].id })
	for _, x := range ew.exBuf {
		ew.explosionsDue = append(ew.explosionsDue, x.pos)
	}
	ew.exBuf = ew.exBuf[:0]
}

// ApplyExplosionImpulses applies blast impulses for a whole detonation
// batch. The scans fold into the same regioned execution as the entity
// tick: centers partition into groups whose bucket scans cannot overlap
// (components at Chebyshev chunk distance <= 2×reach, where reach is the
// blast radius in chunks rounded up), each group processes its centers in
// original batch order, and group counters merge afterwards. An entity is
// scanned by at most one group, so its velocity accumulates in exactly the
// serial per-center order; with few centers, few workers or one group, the
// batch runs serially unchanged.
func (ew *World) ApplyExplosionImpulses(centers []world.Pos, radius float64) {
	if ew.workers < 2 || len(centers) < minParallelImpulses {
		for _, c := range centers {
			ew.ApplyExplosionImpulse(c, radius)
		}
		return
	}

	// Group centers by chunk-distance components (the shared flood fill,
	// over scratch reused across ticks — TNT storms hit this every tick).
	// reach is how many chunk columns a scan's bounding square can extend
	// from the center's chunk.
	reach := int32(int(radius)/world.ChunkSize + 1)
	if ew.impulseScratch == nil {
		ew.impulseScratch = make(map[world.ChunkPos]int32, 32)
	}
	clear(ew.impulseScratch)
	chunkGroup := ew.impulseScratch
	for _, c := range centers {
		chunkGroup[world.ChunkPosAt(c)] = -1
	}
	nGroups := int(world.LabelComponents(chunkGroup, 2*reach, nil))
	if nGroups < 2 {
		for _, c := range centers {
			ew.ApplyExplosionImpulse(c, radius)
		}
		return
	}

	// Second pass over the original slice keeps each group's centers in
	// batch order.
	for len(ew.impulseCenters) < nGroups {
		ew.impulseCenters = append(ew.impulseCenters, nil)
	}
	groupCenters := ew.impulseCenters[:nGroups]
	for i := range groupCenters {
		groupCenters[i] = groupCenters[i][:0]
	}
	for _, c := range centers {
		gid := chunkGroup[world.ChunkPosAt(c)]
		groupCenters[gid] = append(groupCenters[gid], c)
	}
	for len(ew.impulseCounters) < nGroups {
		ew.impulseCounters = append(ew.impulseCounters, Counters{})
	}
	groupCounters := ew.impulseCounters[:nGroups]
	for i := range groupCounters {
		groupCounters[i] = Counters{}
	}
	world.Parallel(ew.workers, nGroups, func(i int) {
		for _, c := range groupCenters[i] {
			ew.applyImpulse(c, radius, &groupCounters[i])
		}
	})
	for i := range groupCounters {
		ew.counters = ew.counters.Add(groupCounters[i])
	}
}

// Add returns the component-wise sum of c and o — the merge operation for
// per-region and per-group counters.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		MobTicks:      c.MobTicks + o.MobTicks,
		ItemTicks:     c.ItemTicks + o.ItemTicks,
		TNTTicks:      c.TNTTicks + o.TNTTicks,
		InactiveSkips: c.InactiveSkips + o.InactiveSkips,
		PathNodes:     c.PathNodes + o.PathNodes,
		Repaths:       c.Repaths + o.Repaths,
		Collisions:    c.Collisions + o.Collisions,
		SpawnAttempts: c.SpawnAttempts + o.SpawnAttempts,
		Spawns:        c.Spawns + o.Spawns,
		Despawns:      c.Despawns + o.Despawns,
		Moved:         c.Moved + o.Moved,
	}
}

// ParallelStats describes how the store has been scheduling its ticks — the
// attribution surface for the server's tick records, mirroring
// sim.ParallelStats.
type ParallelStats struct {
	// Workers is the resolved worker count (Config.Workers, or GOMAXPROCS).
	Workers int
	// LastRegions is the region count of the last attempted partition (0
	// when the last tick never partitioned).
	LastRegions int
	// LastParallel reports whether the last tick's entity loop ran on the
	// region-parallel schedule.
	LastParallel bool
	// ParallelTicks counts ticks run in parallel; FallbackTicks counts
	// parallel ticks in which at least one escaped entity had to be rolled
	// back and re-ticked serially (the tick itself still commits parallel).
	ParallelTicks int64
	FallbackTicks int64
}

// ParallelStats returns the store's scheduling attribution counters.
func (ew *World) ParallelStats() ParallelStats {
	return ParallelStats{
		Workers:       ew.workers,
		LastRegions:   ew.lastRegions,
		LastParallel:  ew.lastParallel,
		ParallelTicks: ew.parallelTicks,
		FallbackTicks: ew.fallbackTicks,
	}
}
