package entity

import (
	"fmt"
	"sort"

	"repro/internal/mlg/persist"
	"repro/internal/mlg/world"
)

// Entity-store section codec for the MLGP save format. Each entity is its
// wire snapshot (snapshot.go) — which already carries identity, kind,
// motion, lifecycle, including the Dead flag, because explosion impulses
// land after compaction and a dead-but-uncollected entity is legitimate
// between server ticks — followed by the private AI state the wire form
// omits: path, waypoint index, path chunk versions, wander cooldown, spawn
// seed key.
// Alongside the entities: tick number, ID allocator, RNG state, the
// carried-over counters (explosion-impulse collisions are attributed to
// the *next* tick, so they are live at the snapshot boundary), terrain
// versions, item-merge cells, and scheduling attribution. Not captured
// because it is empty or rederivable at the tick boundary: chunkUpdates
// (drained every tick), explosionsDue/exBuf (drained/flushed), the player
// grid (rebuilt each tick), each entity's activeTick (stale values behave as
// unset) and spatial-index bucket (a function of Pos).

func appendEntityPersist(dst []byte, e *Entity) []byte {
	dst = AppendSnapshot(dst, e)
	if e.HasPath() {
		dst = persist.AppendU8(dst, 1)
		dst = persist.AppendU32(dst, uint32(len(e.path)))
		for _, p := range e.path {
			dst = persist.AppendI32(dst, int32(p.X))
			dst = persist.AppendI32(dst, int32(p.Y))
			dst = persist.AppendI32(dst, int32(p.Z))
		}
		dst = persist.AppendU32(dst, uint32(e.pathIdx))
		cps := make([]world.ChunkPos, 0, len(e.pathVersions))
		for cp := range e.pathVersions {
			cps = append(cps, cp)
		}
		sort.Slice(cps, func(i, j int) bool {
			if cps[i].Z != cps[j].Z {
				return cps[i].Z < cps[j].Z
			}
			return cps[i].X < cps[j].X
		})
		dst = persist.AppendU32(dst, uint32(len(cps)))
		for _, cp := range cps {
			dst = persist.AppendI32(dst, cp.X)
			dst = persist.AppendI32(dst, cp.Z)
			dst = persist.AppendU64(dst, e.pathVersions[cp])
		}
	} else {
		dst = persist.AppendU8(dst, 0)
	}
	dst = persist.AppendI32(dst, int32(e.wanderCooldown))
	dst = persist.AppendU64(dst, e.seedKey)
	return dst
}

// AppendPersist appends the entity-store section payload to dst. Must be
// called between server ticks.
func (ew *World) AppendPersist(dst []byte) []byte {
	dst = persist.AppendI64(dst, ew.tickNum)
	dst = persist.AppendI64(dst, ew.nextID)
	dst = persist.AppendU64(dst, ew.src.State())

	c := &ew.counters
	for _, v := range [...]int{c.MobTicks, c.ItemTicks, c.TNTTicks, c.InactiveSkips,
		c.PathNodes, c.Repaths, c.Collisions, c.SpawnAttempts, c.Spawns, c.Despawns, c.Moved} {
		dst = persist.AppendI64(dst, int64(v))
	}

	dst = persist.AppendU32(dst, uint32(len(ew.list)))
	for _, e := range ew.list {
		dst = appendEntityPersist(dst, e)
	}

	cps := make([]world.ChunkPos, 0, len(ew.chunkVersion))
	for cp := range ew.chunkVersion {
		cps = append(cps, cp)
	}
	sort.Slice(cps, func(i, j int) bool {
		if cps[i].Z != cps[j].Z {
			return cps[i].Z < cps[j].Z
		}
		return cps[i].X < cps[j].X
	})
	dst = persist.AppendU32(dst, uint32(len(cps)))
	for _, cp := range cps {
		dst = persist.AppendI32(dst, cp.X)
		dst = persist.AppendI32(dst, cp.Z)
		dst = persist.AppendU64(dst, ew.chunkVersion[cp])
	}

	cells := make([]world.Pos, 0, len(ew.itemCells))
	for cell := range ew.itemCells {
		cells = append(cells, cell)
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		if a.Z != b.Z {
			return a.Z < b.Z
		}
		return a.X < b.X
	})
	dst = persist.AppendU32(dst, uint32(len(cells)))
	for _, cell := range cells {
		dst = persist.AppendI32(dst, int32(cell.X))
		dst = persist.AppendI32(dst, int32(cell.Y))
		dst = persist.AppendI32(dst, int32(cell.Z))
		dst = persist.AppendI64(dst, ew.itemCells[cell])
	}

	dst = persist.AppendU32(dst, uint32(ew.lastRegions))
	lp := byte(0)
	if ew.lastParallel {
		lp = 1
	}
	dst = persist.AppendU8(dst, lp)
	dst = persist.AppendI64(dst, ew.parallelTicks)
	dst = persist.AppendI64(dst, ew.fallbackTicks)
	dst = persist.AppendI64(dst, int64(ew.serialHold))
	return dst
}

// RestorePersist replaces the store's mutable state with a decoded section.
// The store must be freshly constructed over the already-restored world
// (same seed and config); the spatial index is rebuilt and the chunk cache
// reset because restore replaces chunk objects wholesale.
func (ew *World) RestorePersist(data []byte) error {
	d := persist.NewDec(data)
	tickNum := d.I64()
	nextID := d.I64()
	rngState := d.U64()

	var cvals [11]int
	for i := range cvals {
		cvals[i] = int(d.I64())
	}

	n := d.Count(snapshotSize + 1 + 4 + 8)
	list := make([]*Entity, 0, n)
	for i := 0; i < n; i++ {
		if d.Err() != nil {
			break
		}
		wire := d.Raw(snapshotSize)
		if wire == nil {
			break
		}
		dec, _, err := DecodeSnapshot(wire)
		if err != nil {
			return fmt.Errorf("%w: entity %d: %v", persist.ErrCorrupt, i, err)
		}
		e := &Entity{}
		*e = dec
		if d.U8() != 0 {
			np := d.Count(12)
			e.path = make([]world.Pos, 0, np)
			for j := 0; j < np; j++ {
				e.path = append(e.path, world.Pos{X: int(d.I32()), Y: int(d.I32()), Z: int(d.I32())})
			}
			e.pathIdx = int(d.U32())
			nv := d.Count(4 + 4 + 8)
			e.pathVersions = make(map[world.ChunkPos]uint64, nv)
			for j := 0; j < nv; j++ {
				cp := world.ChunkPos{X: d.I32(), Z: d.I32()}
				e.pathVersions[cp] = d.U64()
			}
			if d.Err() == nil && (len(e.path) == 0 || e.pathIdx >= len(e.path)) {
				return fmt.Errorf("%w: entity %d: path index %d out of range", persist.ErrCorrupt, i, e.pathIdx)
			}
		}
		e.wanderCooldown = int(d.I32())
		e.seedKey = d.U64()
		if d.Err() == nil && e.seedKey == 0 {
			return fmt.Errorf("%w: entity %d: zero seed key", persist.ErrCorrupt, i)
		}
		list = append(list, e)
	}

	ncv := d.Count(4 + 4 + 8)
	chunkVersion := make(map[world.ChunkPos]uint64, ncv)
	for i := 0; i < ncv; i++ {
		cp := world.ChunkPos{X: d.I32(), Z: d.I32()}
		chunkVersion[cp] = d.U64()
	}

	nCells := d.Count(4 + 4 + 4 + 8)
	itemCells := make(map[world.Pos]int64, nCells)
	for i := 0; i < nCells; i++ {
		cell := world.Pos{X: int(d.I32()), Y: int(d.I32()), Z: int(d.I32())}
		itemCells[cell] = d.I64()
	}

	lastRegions := int(d.U32())
	lastParallel := d.U8() != 0
	parallelTicks := d.I64()
	fallbackTicks := d.I64()
	serialHold := int(d.I64())

	if err := d.Err(); err != nil {
		return fmt.Errorf("entity section: %w", err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: entity section has %d trailing bytes", persist.ErrCorrupt, d.Remaining())
	}

	byID := make(map[int64]*Entity, len(list))
	for i, e := range list {
		if e.ID <= 0 || e.ID > nextID {
			return fmt.Errorf("%w: entity %d: ID %d outside allocator range %d", persist.ErrCorrupt, i, e.ID, nextID)
		}
		if i > 0 && e.ID <= list[i-1].ID {
			return fmt.Errorf("%w: entity list not in ID order at %d", persist.ErrCorrupt, i)
		}
		byID[e.ID] = e
	}

	ew.tickNum = tickNum
	ew.nextID = nextID
	ew.src.SetState(rngState)
	ew.counters = Counters{
		MobTicks: cvals[0], ItemTicks: cvals[1], TNTTicks: cvals[2], InactiveSkips: cvals[3],
		PathNodes: cvals[4], Repaths: cvals[5], Collisions: cvals[6], SpawnAttempts: cvals[7],
		Spawns: cvals[8], Despawns: cvals[9], Moved: cvals[10],
	}
	ew.list = list
	ew.byID = byID
	ew.mobs = 0
	ew.index = newSpatialIndex()
	for _, e := range list {
		// Dead-but-uncompacted entities stay indexed and counted, exactly as
		// they were in the saved run; compact removes them next tick.
		e.chunk = world.ChunkPosAt(e.Pos.BlockPos())
		ew.index.add(e)
		if e.Kind == Mob {
			ew.mobs++
		}
	}
	ew.chunkVersion = chunkVersion
	ew.itemCells = itemCells
	ew.chunkUpdates = make(map[world.ChunkPos]ChunkUpdates)
	ew.explosionsDue = nil
	ew.exBuf = nil
	ew.lastRegions = lastRegions
	ew.lastParallel = lastParallel
	ew.parallelTicks = parallelTicks
	ew.fallbackTicks = fallbackTicks
	ew.serialHold = serialHold
	// Restored chunks are new objects; drop any cached pointers.
	ew.wc = world.NewChunkCache(ew.w)
	return nil
}
