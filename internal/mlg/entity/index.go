package entity

import (
	"math"
	"sort"

	"repro/internal/mlg/world"
)

// Spatial indexing for proximity queries. Entities are bucketed by the chunk
// column containing them (the same grid the terrain and the server's
// player-interest sets use), so hopper intake, blast impulses,
// activation-range checks and AI target finding scale with local density
// instead of the global entity population — the standard MLG-server
// optimization in the PaperMC lineage.
//
// Determinism contract: every query visits buckets in fixed (Z, X) grid
// order and entities in ascending-ID order within a bucket, so a query's
// visit sequence is a pure function of simulation state. Serial and parallel
// runs therefore stay byte-identical (enforced by the golden-checksum suite
// in internal/core).

// spatialIndex buckets live entities by chunk column. Buckets are kept
// ID-sorted; entity IDs are monotonic, so steady-state insertion is an
// append and cross-chunk moves pay one binary-search insert.
type spatialIndex struct {
	buckets map[world.ChunkPos][]*Entity
}

func newSpatialIndex() *spatialIndex {
	return &spatialIndex{buckets: make(map[world.ChunkPos][]*Entity)}
}

// add inserts e into the bucket of e.chunk, preserving ID order.
func (si *spatialIndex) add(e *Entity) {
	b := si.buckets[e.chunk]
	i := sort.Search(len(b), func(i int) bool { return b[i].ID >= e.ID })
	b = append(b, nil)
	copy(b[i+1:], b[i:])
	b[i] = e
	si.buckets[e.chunk] = b
}

// remove deletes e from the bucket of e.chunk.
func (si *spatialIndex) remove(e *Entity) {
	b := si.buckets[e.chunk]
	i := sort.Search(len(b), func(i int) bool { return b[i].ID >= e.ID })
	if i >= len(b) || b[i] != e {
		return
	}
	b = append(b[:i], b[i+1:]...)
	if len(b) == 0 {
		delete(si.buckets, e.chunk)
	} else {
		si.buckets[e.chunk] = b
	}
}

// move rebuckets e into the chunk column at to.
func (si *spatialIndex) move(e *Entity, to world.ChunkPos) {
	si.remove(e)
	e.chunk = to
	si.add(e)
}

// chunkCoord returns the chunk-grid coordinate containing the continuous
// world coordinate v.
func chunkCoord(v float64) int32 {
	return int32(floorDivInt(int(math.Floor(v)), world.ChunkSize))
}

// forEachNear calls fn for every entity (live or pending removal) whose
// bucket intersects the horizontal bounding square of radius around center,
// in deterministic (Z, X, ID) order. Callers apply their own exact distance
// predicate; buckets are chunk columns, so the vertical extent is not
// pre-filtered.
func (ew *World) forEachNear(center Vec3, radius float64, fn func(*Entity)) {
	cx0, cx1 := chunkCoord(center.X-radius), chunkCoord(center.X+radius)
	cz0, cz1 := chunkCoord(center.Z-radius), chunkCoord(center.Z+radius)
	for cz := cz0; cz <= cz1; cz++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, e := range ew.index.buckets[world.ChunkPos{X: cx, Z: cz}] {
				fn(e)
			}
		}
	}
}

// playerGrid buckets one tick's player-position snapshot by chunk so
// per-entity "any player nearby?" checks iterate player-near buckets instead
// of scanning every player. Rebuilt each Tick; indices preserve the
// snapshot's deterministic player order.
type playerGrid struct {
	players []Vec3
	cells   map[world.ChunkPos][]int
}

func newPlayerGrid(players []Vec3) playerGrid {
	g := playerGrid{players: players}
	if len(players) == 0 {
		return g
	}
	g.cells = make(map[world.ChunkPos][]int, len(players))
	for i, p := range players {
		cp := world.ChunkPos{X: chunkCoord(p.X), Z: chunkCoord(p.Z)}
		g.cells[cp] = append(g.cells[cp], i)
	}
	return g
}

// anyStrictlyWithin reports whether any player lies strictly closer than r
// to pos (the natural-spawning 24-block exclusion predicate).
func (g playerGrid) anyStrictlyWithin(pos Vec3, r float64) bool {
	found := false
	g.forEachNear(pos, r, func(i int) {
		if !found && g.players[i].Dist(pos) < r {
			found = true
		}
	})
	return found
}

// firstWithin returns the lowest-index player within distance r of pos —
// identical to a linear scan over the snapshot taking the first match, which
// is what keeps AI target selection bit-compatible with the unindexed path.
func (g playerGrid) firstWithin(pos Vec3, r float64) (Vec3, bool) {
	best := -1
	g.forEachNear(pos, r, func(i int) {
		if (best < 0 || i < best) && g.players[i].Dist(pos) <= r {
			best = i
		}
	})
	if best < 0 {
		return Vec3{}, false
	}
	return g.players[best], true
}

// forEachNear calls fn with the index of every player whose cell intersects
// the bounding square of r around pos, in deterministic order.
func (g playerGrid) forEachNear(pos Vec3, r float64, fn func(i int)) {
	if len(g.cells) == 0 {
		return
	}
	cx0, cx1 := chunkCoord(pos.X-r), chunkCoord(pos.X+r)
	cz0, cz1 := chunkCoord(pos.Z-r), chunkCoord(pos.Z+r)
	for cz := cz0; cz <= cz1; cz++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, i := range g.cells[world.ChunkPos{X: cx, Z: cz}] {
				fn(i)
			}
		}
	}
}

// ChunkUpdates counts one chunk column's entity state updates over a tick.
// The server's dissemination phase fans each chunk's updates out only to
// players whose view distance covers it (interest management), instead of
// broadcasting every update to every player.
type ChunkUpdates struct {
	Pos                       world.ChunkPos
	Moved, Spawned, Despawned int
}

// DrainChunkUpdates returns and clears the per-chunk entity update counts
// accumulated since the last drain, sorted by (Z, X) for deterministic
// consumption.
func (ew *World) DrainChunkUpdates() []ChunkUpdates {
	if len(ew.chunkUpdates) == 0 {
		return nil
	}
	out := make([]ChunkUpdates, 0, len(ew.chunkUpdates))
	for cp, u := range ew.chunkUpdates {
		u.Pos = cp
		out = append(out, u)
		delete(ew.chunkUpdates, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Z != out[j].Pos.Z {
			return out[i].Pos.Z < out[j].Pos.Z
		}
		return out[i].Pos.X < out[j].Pos.X
	})
	return out
}

func (ew *World) noteMoved(cp world.ChunkPos) {
	u := ew.chunkUpdates[cp]
	u.Moved++
	ew.chunkUpdates[cp] = u
}

func (ew *World) noteSpawned(cp world.ChunkPos) {
	u := ew.chunkUpdates[cp]
	u.Spawned++
	ew.chunkUpdates[cp] = u
}

func (ew *World) noteDespawned(cp world.ChunkPos) {
	u := ew.chunkUpdates[cp]
	u.Despawned++
	ew.chunkUpdates[cp] = u
}
