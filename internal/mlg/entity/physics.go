package entity

import "repro/internal/mlg/world"

// Physics constants, per tick, in blocks.
const (
	gravity      = 0.08
	drag         = 0.98
	groundFric   = 0.6
	fluidPush    = 0.06
	buoyancy     = 0.04
	terminalFall = 3.0
)

// stepPhysics integrates one tick of motion with terrain collision: gravity,
// drag, axis-separated movement against solid blocks, and fluid push — the
// entity-collision workload the TNT world stresses (§3.3.1). It runs on a
// tick context so the serial loop and the region-parallel workers share one
// implementation: terrain reads go through the context's chunk cache and
// collision counts through the context's counters.
func (c *tickCtx) stepPhysics(e *Entity) {
	// Fluid interaction: buoyancy plus the stream push farms use to carry
	// item drops toward hoppers.
	feet := e.Pos.BlockPos()
	if b, ok := c.blockIfLoaded(feet); ok && b.IsFluid() {
		e.Vel.Y += buoyancy
		if e.Vel.Y > 0.1 {
			e.Vel.Y = 0.1
		}
		flow := c.flowDirection(feet, b)
		e.Vel = e.Vel.Add(flow.Scale(fluidPush))
	} else {
		e.Vel.Y -= gravity
		if e.Vel.Y < -terminalFall {
			e.Vel.Y = -terminalFall
		}
	}

	// Axis-separated movement with collision.
	e.OnGround = false
	e.Pos.X = c.moveAxis(e, e.Pos.X, e.Vel.X, axisX)
	e.Pos.Z = c.moveAxis(e, e.Pos.Z, e.Vel.Z, axisZ)
	e.Pos.Y = c.moveAxis(e, e.Pos.Y, e.Vel.Y, axisY)

	// Drag and ground friction.
	e.Vel.X *= drag
	e.Vel.Z *= drag
	e.Vel.Y *= drag
	if e.OnGround {
		e.Vel.X *= groundFric
		e.Vel.Z *= groundFric
	}
}

type axis int

const (
	axisX axis = iota
	axisY
	axisZ
)

// moveAxis advances one coordinate by delta, stopping at the first solid
// block. Entities are modelled as a 1×2 column (feet plus head).
func (c *tickCtx) moveAxis(e *Entity, cur, delta float64, ax axis) float64 {
	if delta == 0 {
		return cur
	}
	next := cur + delta
	probe := e.Pos
	switch ax {
	case axisX:
		probe.X = next
	case axisY:
		probe.Y = next
	case axisZ:
		probe.Z = next
	}
	c.counters.Collisions++
	if c.collides(probe) {
		switch ax {
		case axisY:
			if delta < 0 {
				e.OnGround = true
			}
			e.Vel.Y = 0
			return cur
		case axisX:
			e.Vel.X = 0
		case axisZ:
			e.Vel.Z = 0
		}
		return cur
	}
	return next
}

// collides reports whether an entity column at pos intersects solid terrain.
func (c *tickCtx) collides(pos Vec3) bool {
	feet := pos.BlockPos()
	head := feet.Up()
	if b, ok := c.blockIfLoaded(feet); ok && b.IsSolid() {
		return true
	}
	if b, ok := c.blockIfLoaded(head); ok && b.IsSolid() {
		return true
	}
	return false
}

// flowDirection returns the horizontal direction fluid at p flows: toward
// the adjacent fluid cell with the highest level number (thinner = further
// downstream), or toward an adjacent drop.
func (c *tickCtx) flowDirection(p world.Pos, b world.Block) Vec3 {
	level := int(b.Meta)
	var dir Vec3
	best := level
	for _, n := range p.NeighborsHorizontal() {
		nb, ok := c.blockIfLoaded(n)
		if !ok {
			continue
		}
		// Downstream: same fluid with higher level, or air over a drop.
		if nb.ID == b.ID && int(nb.Meta) > best {
			best = int(nb.Meta)
			dir = Vec3{X: float64(n.X - p.X), Z: float64(n.Z - p.Z)}
		} else if nb.IsAir() {
			if below, ok2 := c.blockIfLoaded(n.Down()); ok2 && (below.IsAir() || below.IsFluid()) {
				dir = Vec3{X: float64(n.X - p.X), Z: float64(n.Z - p.Z)}
				best = 99
			}
		}
	}
	return dir
}
