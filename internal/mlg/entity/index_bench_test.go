package entity

// Micro-benchmarks of the entity proximity queries the spatial index serves:
// hopper intake (CollectItems) and blast impulses (ApplyExplosionImpulse) at
// 500 and 3000 live entities. Pre-index, both were O(all entities) per call;
// with the chunk-bucketed index they scale with local density only.

import (
	"fmt"
	"testing"

	"repro/internal/mlg/world"
)

// benchEntityWorld spreads n entities of the given kind uniformly over a
// 96x96-block area (6x6 chunks), so any fixed-radius query touches only a
// small fraction of the population.
func benchEntityWorld(b *testing.B, n int, kind Type) *World {
	b.Helper()
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = false
	cfg.MaxEntities = n + 10
	cfg.MaxMobs = n + 10
	ew := NewWorld(w, cfg, 1)
	w.EnsureArea(world.Pos{X: 48, Y: 0, Z: 48}, 5)
	for i := 0; i < n; i++ {
		p := world.Pos{X: (i * 5) % 96, Y: 12, Z: ((i * 5) / 96 * 5) % 96}
		switch kind {
		case Item:
			ew.SpawnItem(p, world.Gravel)
		case Mob:
			ew.SpawnMob(p)
		}
	}
	if ew.Count() != n {
		b.Fatalf("spawned %d entities, want %d", ew.Count(), n)
	}
	return ew
}

func BenchmarkCollectItems(b *testing.B) {
	for _, n := range []int{500, 3000} {
		b.Run(fmt.Sprintf("entities=%d", n), func(b *testing.B) {
			ew := benchEntityWorld(b, n, Item)
			center := world.Pos{X: 48, Y: 12, Z: 48}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ew.CollectItems(center, 1.2)
			}
		})
	}
}

func BenchmarkExplosionImpulse(b *testing.B) {
	for _, n := range []int{500, 3000} {
		b.Run(fmt.Sprintf("entities=%d", n), func(b *testing.B) {
			// Mobs: knocked back but never destroyed, so the population is
			// stable across iterations.
			ew := benchEntityWorld(b, n, Mob)
			center := world.Pos{X: 48, Y: 12, Z: 48}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ew.ApplyExplosionImpulse(center, 5)
			}
		})
	}
}
