package entity

// Entity wire snapshots: a compact, canonical serialization of one entity's
// externally visible state (identity, kind, motion, lifecycle). The
// serial-vs-parallel equivalence suites hash and diff whole-store snapshots
// to prove region-parallel ticks bit-identical to the serial loop, and the
// FuzzEntitySnapshot round-trip target guards the codec itself.
//
// The format is fixed-width big-endian: ID (8), Kind (1), flags (1),
// Pos/Vel (6 × 8, IEEE-754 bits — preserved exactly, so NaN payloads round
// trip), Age (8), Fuse (8), ItemType (1) — snapshotSize bytes per entity.

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/mlg/world"
)

// snapshotSize is the wire size of one entity snapshot.
const snapshotSize = 8 + 1 + 1 + 6*8 + 8 + 8 + 1

const (
	snapFlagOnGround = 1 << 0
	snapFlagDead     = 1 << 1
)

// ErrSnapshotTruncated reports a snapshot shorter than one record;
// ErrSnapshotInvalid reports a record whose fields cannot describe an
// entity.
var (
	ErrSnapshotTruncated = errors.New("entity: truncated snapshot")
	ErrSnapshotInvalid   = errors.New("entity: invalid snapshot field")
)

// AppendSnapshot appends e's wire snapshot to dst and returns the extended
// slice.
func AppendSnapshot(dst []byte, e *Entity) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(e.ID))
	dst = append(dst, byte(e.Kind))
	var flags byte
	if e.OnGround {
		flags |= snapFlagOnGround
	}
	if e.Dead {
		flags |= snapFlagDead
	}
	dst = append(dst, flags)
	for _, v := range [6]float64{e.Pos.X, e.Pos.Y, e.Pos.Z, e.Vel.X, e.Vel.Y, e.Vel.Z} {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
	}
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(e.Age)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(e.Fuse)))
	dst = append(dst, byte(e.ItemType))
	return dst
}

// DecodeSnapshot parses one entity snapshot from src, returning the decoded
// entity and the remaining bytes.
func DecodeSnapshot(src []byte) (Entity, []byte, error) {
	if len(src) < snapshotSize {
		return Entity{}, src, ErrSnapshotTruncated
	}
	var e Entity
	e.ID = int64(binary.BigEndian.Uint64(src))
	kind := src[8]
	if kind > byte(PrimedTNT) {
		return Entity{}, src, ErrSnapshotInvalid
	}
	e.Kind = Type(kind)
	flags := src[9]
	if flags&^(snapFlagOnGround|snapFlagDead) != 0 {
		return Entity{}, src, ErrSnapshotInvalid
	}
	e.OnGround = flags&snapFlagOnGround != 0
	e.Dead = flags&snapFlagDead != 0
	fs := src[10:]
	vals := [6]float64{}
	for i := range vals {
		vals[i] = math.Float64frombits(binary.BigEndian.Uint64(fs[i*8:]))
	}
	e.Pos = Vec3{X: vals[0], Y: vals[1], Z: vals[2]}
	e.Vel = Vec3{X: vals[3], Y: vals[4], Z: vals[5]}
	e.Age = int(int64(binary.BigEndian.Uint64(src[58:])))
	e.Fuse = int(int64(binary.BigEndian.Uint64(src[66:])))
	e.ItemType = world.BlockID(src[74])
	return e, src[snapshotSize:], nil
}

// AppendStateSnapshot appends the wire snapshot of every live entity in
// deterministic (ID) order — the whole-store state fingerprint the
// equivalence suites compare between serial and parallel schedules.
func (ew *World) AppendStateSnapshot(dst []byte) []byte {
	for _, e := range ew.list {
		dst = AppendSnapshot(dst, e)
	}
	return dst
}
