package entity

// Shard handoff: when a sharded world is split into disjoint chunk ranges,
// an entity that physics carried out of its shard's owned range must move —
// state intact — to the shard that owns its new chunk. The handoff record
// is everything the receiving store needs to continue the entity exactly
// where the sending store left off; the store-local ID is deliberately
// absent (each shard assigns its own) and the seedKey carries the entity's
// spawn identity so its decision streams are unaffected by the move.

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"repro/internal/mlg/world"
)

// Handoff is the portable state of one entity crossing a shard boundary.
type Handoff struct {
	Kind     Type
	Pos, Vel Vec3
	OnGround bool
	Age      int
	ItemType world.BlockID
	Fuse     int
	// SeedKey is the entity's spawn identity (never zero); the receiving
	// store preserves it so decision streams and the throttle phase are
	// unchanged by the migration.
	SeedKey uint64
	// WanderCooldown preserves the mob AI timer; the A* path itself is
	// dropped (it referenced terrain the old shard owned) and recomputes on
	// arrival, a documented v1 approximation.
	WanderCooldown int
}

// DrainDepartures removes every live entity whose chunk the predicate
// rejects and returns their handoff records in store (ID) order. Departures
// do not count as despawns — the entity lives on elsewhere — but the chunk
// population index is updated so interest tracking stays correct. Call it
// between ticks, after the simulation phases have settled positions.
func (ew *World) DrainDepartures(owns func(world.ChunkPos) bool) []Handoff {
	var out []Handoff
	live := ew.list[:0]
	for _, e := range ew.list {
		if e.Dead || owns(e.chunk) {
			live = append(live, e)
			continue
		}
		out = append(out, Handoff{
			Kind:           e.Kind,
			Pos:            e.Pos,
			Vel:            e.Vel,
			OnGround:       e.OnGround,
			Age:            e.Age,
			ItemType:       e.ItemType,
			Fuse:           e.Fuse,
			SeedKey:        e.seedKey,
			WanderCooldown: e.wanderCooldown,
		})
		delete(ew.byID, e.ID)
		ew.index.remove(e)
		ew.noteDespawned(e.chunk)
		if e.Kind == Mob {
			ew.mobs--
		}
	}
	ew.list = live
	if len(out) > 0 {
		ew.purgeItemCells()
	}
	return out
}

// Arrive inserts a handed-off entity into this store, preserving its spawn
// identity and AI timers. It reports whether the store accepted it (the
// entity cap can reject arrivals, mirroring the spawn path). Arrivals do
// not count as spawns: the single-shard run a sharded cluster must
// sum-match never spawned them.
func (ew *World) Arrive(h Handoff) bool {
	e := &Entity{
		Kind:           h.Kind,
		Pos:            h.Pos,
		Vel:            h.Vel,
		OnGround:       h.OnGround,
		Age:            h.Age,
		ItemType:       h.ItemType,
		Fuse:           h.Fuse,
		seedKey:        h.SeedKey,
		wanderCooldown: h.WanderCooldown,
	}
	return ew.insert(e) != nil
}

// StateSum returns an order- and ID-agnostic fingerprint of every live
// entity's externally visible state: the per-entity FNV-1a hashes are
// combined by wrapping addition, so the sum over a cluster's shards equals
// the sum of an equivalent single store regardless of how entities are
// distributed or in which order each store holds them. Store-local IDs are
// excluded (shards assign their own); the spawn identity key stands in as
// the cross-shard entity identity.
func (ew *World) StateSum() uint64 {
	var sum uint64
	var buf [76]byte
	for _, e := range ew.list {
		if e.Dead {
			continue
		}
		b := buf[:0]
		b = append(b, byte(e.Kind))
		for _, v := range [6]float64{e.Pos.X, e.Pos.Y, e.Pos.Z, e.Vel.X, e.Vel.Y, e.Vel.Z} {
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(v))
		}
		if e.OnGround {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.BigEndian.AppendUint32(b, uint32(int32(e.Age)))
		b = append(b, byte(e.ItemType))
		b = binary.BigEndian.AppendUint32(b, uint32(int32(e.Fuse)))
		b = binary.BigEndian.AppendUint64(b, e.seedKey)
		b = binary.BigEndian.AppendUint32(b, uint32(int32(e.wanderCooldown)))
		h := fnv.New64a()
		h.Write(b)
		sum += h.Sum64()
	}
	return sum
}
