package entity

// BenchmarkEntityTickParallel is the entity-phase Workers sweep recorded in
// BENCH_5.json: store-level ticks over multi-cluster populations (items,
// mobs, slow TNT) at Workers 1/2/4. Workers=1 is the legacy serial loop —
// the fixed baseline engine-level optimizations compare against; speedup at
// Workers=N needs >= N cores and >= N clusters, so interpret alongside the
// host cpu count like the BenchmarkTickParallel sweep.

import (
	"fmt"
	"runtime"
	"testing"
)

func BenchmarkEntityTickParallel(b *testing.B) {
	for _, sc := range []struct {
		name     string
		clusters int
	}{
		{"Clusters2", 2},
		{"Clusters4", 4},
	} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers%d", sc.name, workers), func(b *testing.B) {
				players := twinPlayers(sc.clusters)
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					ew := buildTwinWorld(b, workers, sc.clusters)
					for w := 0; w < 5; w++ {
						ew.Tick(players) // settle spawn bursts off the timer
						ew.DrainChunkUpdates()
					}
					runtime.GC() // reproducible heap for 1x gate samples
					b.StartTimer()
					for t := 0; t < 60; t++ {
						ew.Tick(players)
					}
				}
			})
		}
	}
}
