package entity

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mlg/world"
)

func newTestWorld(t *testing.T) (*world.World, *World) {
	t.Helper()
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = false
	ew := NewWorld(w, cfg, 1)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 2)
	return w, ew
}

func TestVecHelpers(t *testing.T) {
	v := Vec3{1, 2, 3}
	if v.Add(Vec3{1, 1, 1}) != (Vec3{2, 3, 4}) {
		t.Error("Add wrong")
	}
	if v.Scale(2) != (Vec3{2, 4, 6}) {
		t.Error("Scale wrong")
	}
	if got := (Vec3{3, 4, 0}).Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if (Vec3{1.9, 2.1, -0.5}).BlockPos() != (world.Pos{X: 1, Y: 2, Z: -1}) {
		t.Error("BlockPos floor wrong")
	}
	if Center(world.Pos{X: 1, Y: 2, Z: 3}) != (Vec3{1.5, 2, 3.5}) {
		t.Error("Center wrong")
	}
	if Mob.String() != "mob" || Item.String() != "item" || PrimedTNT.String() != "tnt" {
		t.Error("type names wrong")
	}
}

func TestItemFallsAndRests(t *testing.T) {
	_, ew := newTestWorld(t)
	ew.SpawnItem(world.Pos{X: 0, Y: 20, Z: 0}, world.Cobblestone)
	for i := 0; i < 100; i++ {
		ew.Tick(nil)
	}
	var item *Entity
	ew.Entities(func(e *Entity) { item = e })
	if item == nil {
		t.Fatal("item vanished")
	}
	if !item.OnGround {
		t.Fatalf("item not on ground: pos %v", item.Pos)
	}
	if math.Abs(item.Pos.Y-11) > 0.5 {
		t.Fatalf("item rest height %v, want ≈11 (on top of surface y=10)", item.Pos.Y)
	}
}

func TestItemDespawnsAfterLifetime(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = false
	cfg.ItemLifetimeTicks = 50
	ew := NewWorld(w, cfg, 1)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 1)
	ew.SpawnItem(world.Pos{X: 0, Y: 12, Z: 0}, world.Dirt)
	for i := 0; i < 60; i++ {
		ew.Tick(nil)
	}
	if ew.Count() != 0 {
		t.Fatalf("item survived past lifetime: %d entities", ew.Count())
	}
}

func TestTNTFuseAndExplosionQueue(t *testing.T) {
	_, ew := newTestWorld(t)
	ew.SpawnPrimedTNT(world.Pos{X: 0, Y: 11, Z: 0}, 10)
	for i := 0; i < 9; i++ {
		ew.Tick(nil)
		if len(ew.explosionsDue) != 0 {
			t.Fatalf("exploded early at tick %d", i)
		}
	}
	ew.Tick(nil)
	got := ew.DrainExplosions()
	if len(got) != 1 {
		t.Fatalf("explosions = %d, want 1", len(got))
	}
	if again := ew.DrainExplosions(); len(again) != 0 {
		t.Fatal("drain did not clear")
	}
	if ew.Count() != 0 {
		t.Fatal("exploded TNT not removed")
	}
}

func TestExplosionImpulseKnockback(t *testing.T) {
	_, ew := newTestWorld(t)
	ew.SpawnMob(world.Pos{X: 3, Y: 11, Z: 0})
	ew.SpawnItem(world.Pos{X: 0, Y: 11, Z: 0}, world.Dirt) // at centre: destroyed
	ew.ApplyExplosionImpulse(world.Pos{X: 0, Y: 11, Z: 0}, 4)

	var mob *Entity
	items := 0
	ew.Entities(func(e *Entity) {
		if e.Kind == Mob {
			mob = e
		}
		if e.Kind == Item && !e.Dead {
			items++
		}
	})
	if mob == nil {
		t.Fatal("mob missing")
	}
	if mob.Vel.X <= 0 {
		t.Fatalf("mob not knocked away from blast: vel %v", mob.Vel)
	}
	if items != 0 {
		t.Fatal("item at blast centre survived")
	}
}

func TestMobCapEnforced(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = false
	cfg.MaxMobs = 5
	ew := NewWorld(w, cfg, 1)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 1)
	for i := 0; i < 20; i++ {
		ew.SpawnMob(world.Pos{X: i, Y: 11, Z: 0})
	}
	if got := ew.CountByKind(Mob); got != 5 {
		t.Fatalf("mobs = %d, want cap 5", got)
	}
}

func TestEntityCapEnforced(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = false
	cfg.MaxEntities = 10
	ew := NewWorld(w, cfg, 1)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 1)
	for i := 0; i < 50; i++ {
		ew.SpawnItem(world.Pos{X: 0, Y: 12, Z: 0}, world.Dirt)
	}
	if ew.Count() != 10 {
		t.Fatalf("entities = %d, want cap 10", ew.Count())
	}
}

func TestCollectItems(t *testing.T) {
	_, ew := newTestWorld(t)
	ew.SpawnItem(world.Pos{X: 0, Y: 11, Z: 0}, world.Kelp)
	ew.SpawnItem(world.Pos{X: 0, Y: 11, Z: 0}, world.Kelp)
	ew.SpawnItem(world.Pos{X: 10, Y: 11, Z: 10}, world.Kelp) // out of range
	n := ew.CollectItems(world.Pos{X: 0, Y: 11, Z: 0}, 2)
	if n != 2 {
		t.Fatalf("collected %d, want 2", n)
	}
	ew.Tick(nil) // compaction
	if ew.Count() != 1 {
		t.Fatalf("entities after collection = %d, want 1", ew.Count())
	}
}

func TestFindPathStraightLine(t *testing.T) {
	_, ew := newTestWorld(t)
	start := world.Pos{X: 0, Y: 11, Z: 0}
	goal := world.Pos{X: 6, Y: 11, Z: 0}
	path, nodes := ew.FindPath(start, goal, 500)
	if path == nil {
		t.Fatal("no path on flat ground")
	}
	if nodes <= 0 {
		t.Fatal("no nodes expanded")
	}
	if path[len(path)-1] != goal {
		t.Fatalf("path ends at %v, want %v", path[len(path)-1], goal)
	}
	if len(path) != 6 {
		t.Fatalf("path length %d, want 6", len(path))
	}
}

func TestFindPathAroundWall(t *testing.T) {
	w, ew := newTestWorld(t)
	// Build a wall across z at x=3, two blocks high, with a gap at z=5.
	for z := -4; z <= 4; z++ {
		if z == 4 {
			continue // gap
		}
		w.SetBlock(world.Pos{X: 3, Y: 11, Z: z}, world.B(world.Stone))
		w.SetBlock(world.Pos{X: 3, Y: 12, Z: z}, world.B(world.Stone))
	}
	start := world.Pos{X: 0, Y: 11, Z: 0}
	goal := world.Pos{X: 6, Y: 11, Z: 0}
	path, _ := ew.FindPath(start, goal, 2000)
	if path == nil || path[len(path)-1] != goal {
		t.Fatal("no path around wall")
	}
	// The path must detour: longer than the straight-line distance.
	if len(path) <= 6 {
		t.Fatalf("path length %d too short for a detour", len(path))
	}
	// No waypoint may be inside the wall.
	for _, p := range path {
		if b, _ := w.BlockIfLoaded(p); b.IsSolid() {
			t.Fatalf("path goes through solid block at %v", p)
		}
	}
}

func TestFindPathStepsUpAndDrops(t *testing.T) {
	w, ew := newTestWorld(t)
	// A one-block step up at x=2.
	for z := -8; z <= 8; z++ {
		for x := 2; x <= 8; x++ {
			w.SetBlock(world.Pos{X: x, Y: 11, Z: z}, world.B(world.Stone))
		}
	}
	start := world.Pos{X: 0, Y: 11, Z: 0}
	goal := world.Pos{X: 5, Y: 12, Z: 0}
	path, _ := ew.FindPath(start, goal, 2000)
	if path == nil || path[len(path)-1] != goal {
		t.Fatalf("no path up the step: %v", path)
	}
}

func TestFindPathBudgetExhaustion(t *testing.T) {
	_, ew := newTestWorld(t)
	start := world.Pos{X: 0, Y: 11, Z: 0}
	goal := world.Pos{X: 200, Y: 11, Z: 200} // far beyond a 10-node budget
	path, nodes := ew.FindPath(start, goal, 10)
	if nodes > 10 {
		t.Fatalf("expanded %d nodes over budget 10", nodes)
	}
	// A partial path toward the goal is acceptable; nil is too. If partial,
	// it must make progress.
	if path != nil {
		if len(path) == 0 {
			t.Fatal("empty partial path")
		}
		if path[len(path)-1].ManhattanDist(goal) >= start.ManhattanDist(goal) {
			t.Fatal("partial path made no progress")
		}
	}
}

func TestMobWandersAndPathfinds(t *testing.T) {
	_, ew := newTestWorld(t)
	ew.SpawnMob(world.Pos{X: 0, Y: 11, Z: 0})
	var totalNodes int
	start := Center(world.Pos{X: 0, Y: 11, Z: 0})
	for i := 0; i < 400; i++ {
		c := ew.Tick(nil)
		totalNodes += c.PathNodes
	}
	if totalNodes == 0 {
		t.Fatal("mob never pathfound")
	}
	var mob *Entity
	ew.Entities(func(e *Entity) { mob = e })
	if mob == nil {
		t.Fatal("mob despawned unexpectedly early")
	}
	if mob.Pos.Dist(start) < 0.5 {
		t.Fatal("mob never moved")
	}
}

func TestTerrainChangeForcesRepath(t *testing.T) {
	w, ew := newTestWorld(t)
	ew.SpawnMob(world.Pos{X: 0, Y: 11, Z: 0})
	// Let it establish a path.
	var repathsBefore int
	for i := 0; i < 100; i++ {
		repathsBefore += ew.Tick(nil).Repaths
	}
	// Mutate terrain around the mob every tick; repaths must occur. The
	// block alternates so every write is a genuine change (SetBlock skips
	// listeners — and so the chunk-version bump — on no-op writes).
	repaths := 0
	for i := 0; i < 200; i++ {
		b := world.B(world.Stone)
		if i%2 == 1 {
			b = world.B(world.Air)
		}
		w.SetBlock(world.Pos{X: 5, Y: 20, Z: i % 7}, b)
		repaths += ew.Tick(nil).Repaths
	}
	if repaths == 0 {
		t.Fatal("no repaths despite continuous terrain changes")
	}
}

func TestActivationRangeThrottlesFarEntities(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = false
	cfg.ActivationRange = 32
	ew := NewWorld(w, cfg, 1)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 4)
	ew.SpawnMob(world.Pos{X: 60, Y: 11, Z: 60}) // far from player at origin
	player := []Vec3{{X: 0, Y: 11, Z: 0}}
	var mobTicks, skips int
	for i := 0; i < 100; i++ {
		c := ew.Tick(player)
		mobTicks += c.MobTicks
		skips += c.InactiveSkips
	}
	if skips == 0 {
		t.Fatal("far mob never throttled")
	}
	if mobTicks == 0 {
		t.Fatal("throttled mob must still tick occasionally")
	}
	if mobTicks > skips {
		t.Fatalf("throttling too weak: %d ticks vs %d skips", mobTicks, skips)
	}
	// A nearby mob is never throttled.
	ew2 := NewWorld(w, cfg, 2)
	ew2.SpawnMob(world.Pos{X: 2, Y: 11, Z: 2})
	for i := 0; i < 50; i++ {
		if c := ew2.Tick(player); c.InactiveSkips > 0 {
			t.Fatal("near mob throttled")
		}
	}
}

func TestNaturalSpawningRespectsDistanceAndCap(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = true
	cfg.SpawnAttemptsPerTick = 10
	cfg.MaxMobs = 30
	ew := NewWorld(w, cfg, 1)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 4)
	player := []Vec3{{X: 0, Y: 11, Z: 0}}
	for i := 0; i < 300; i++ {
		ew.Tick(player)
	}
	mobs := ew.CountByKind(Mob)
	if mobs == 0 {
		t.Fatal("natural spawning produced no mobs")
	}
	if mobs > 30 {
		t.Fatalf("mob cap exceeded: %d", mobs)
	}
	ew.Entities(func(e *Entity) {
		if e.Kind == Mob && e.Age < 2 {
			if e.Pos.Dist(player[0]) < 24 {
				t.Fatalf("mob spawned %v blocks from player", e.Pos.Dist(player[0]))
			}
		}
	})
}

func TestDeterministicSimulation(t *testing.T) {
	runSim := func() []Vec3 {
		w := world.New(&world.FlatGenerator{SurfaceY: 10})
		cfg := DefaultConfig()
		ew := NewWorld(w, cfg, 42)
		w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 3)
		for i := 0; i < 5; i++ {
			ew.SpawnMob(world.Pos{X: i * 3, Y: 11, Z: 0})
			ew.SpawnItem(world.Pos{X: 0, Y: 14, Z: i * 2}, world.Dirt)
		}
		players := []Vec3{{X: 40, Y: 11, Z: 40}}
		for i := 0; i < 300; i++ {
			ew.Tick(players)
		}
		var out []Vec3
		ew.Entities(func(e *Entity) { out = append(out, e.Pos) })
		return out
	}
	a, b := runSim(), runSim()
	if len(a) != len(b) {
		t.Fatalf("entity counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entity %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: physics never tunnels an entity into solid terrain.
func TestPhysicsNoTunnelingProperty(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = false
	ew := NewWorld(w, cfg, 1)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 3)
	f := func(vx, vz int8, h uint8) bool {
		e := &Entity{Kind: Item, Pos: Vec3{X: 0.5, Y: float64(12 + h%30), Z: 0.5},
			Vel: Vec3{X: float64(vx) / 50, Z: float64(vz) / 50}}
		for i := 0; i < 120; i++ {
			ew.root.stepPhysics(e)
			bp := e.Pos.BlockPos()
			if b, ok := ew.w.BlockIfLoaded(bp); ok && b.IsSolid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFluidStreamPushesItems(t *testing.T) {
	w, ew := newTestWorld(t)
	// A water channel at y=11 flowing east: source at x=0, levels increasing.
	for x := 0; x <= 6; x++ {
		w.SetBlock(world.Pos{X: x, Y: 11, Z: 0}, world.Block{ID: world.Water, Meta: uint8(x)})
	}
	ew.SpawnItem(world.Pos{X: 1, Y: 11, Z: 0}, world.Kelp)
	for i := 0; i < 60; i++ {
		ew.Tick(nil)
	}
	var item *Entity
	ew.Entities(func(e *Entity) { item = e })
	if item == nil {
		t.Fatal("item vanished")
	}
	if item.Pos.X <= 1.5 {
		t.Fatalf("item not pushed downstream: x=%v", item.Pos.X)
	}
}
