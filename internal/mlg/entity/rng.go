package entity

import "repro/internal/mlg/world"

// Per-region decision RNG streams — the entity half of the determinism
// contract.
//
// Mob decisions (choosePath's wander goal and cooldown rolls, followPath's
// completion roll) used to consume the store's shared RNG, whose draw order
// was part of a bit-equality contract with the serial loop: the parallel
// schedule had to route every possibly-drawing mob through a serial replay
// pass in global ID order, which serialized exactly the workloads (farms
// full of pathing mobs) the region engine exists to speed up.
//
// The contract is now "deterministic per-region streams" instead of "the
// serial stream": every decision draw comes from a stateless counter-based
// stream keyed by
//
//	world.RegionSeed(world seed, mob's chunk column) ⊕ spawn identity ⊕ tick
//
// and advanced by draw index within the mob's tick. A draw is a pure
// function of simulation state, so its value does not depend on worker
// count, scheduling, or whether the tick ran on the serial loop or a region
// worker — region workers draw in place, and the serial replay pass is
// gone. The chunk key makes the streams per-region in the spatial sense
// (the chunk column is the finest region unit; RegionSeed is the same
// derivation the terrain engine's region contexts use), so neighbouring
// mobs' streams stay uncorrelated and a mob's stream changes deterministically
// as it crosses chunk borders.
//
// The spawn-identity component (Entity.seedKey) extends the contract to
// shard-layout independence: it is derived from the spawn position and tick
// — not the store-local ID, which depends on how many entities the local
// store allocated before this one — so a shard simulating a subset of the
// world draws the same values the single-shard run draws for the same
// entity, and a handed-off entity keeps its stream across the boundary.
//
// The store RNG still exists — natural-spawn placement stays on it, consumed
// only in the serial phases around the per-entity loop (and disabled in
// shard mode); its state still round-trips through snapshots, so the save
// format is unchanged. Item spawn velocities moved to a position/tick-keyed
// stream for the same shard-independence reason.

// decisionStream is one mob-tick's decision stream. It is seeded lazily on
// the first draw (most mob ticks — path following, cooldown waits — draw
// nothing, and the FNV mix should not tax them), then advances one
// splitmix64 step per draw. Create exactly one per entity per tick: draws
// within a tick occur in fixed program order, so the stream's sequence is
// deterministic.
type decisionStream struct {
	ew     *World
	e      *Entity
	state  uint64
	seeded bool
}

// decisionStreamFor returns the stream for one mob tick. The key uses
// e.chunk — the spatial-index bucket at tick start — which is stable for
// the whole tick on both schedules: the serial loop rebuckets only after
// the kind switch, and region workers buffer rebuckets for the merge.
func (ew *World) decisionStreamFor(e *Entity) decisionStream {
	return decisionStream{ew: ew, e: e}
}

// next advances the stream one draw: splitmix64 over the lazily mixed seed.
func (d *decisionStream) next() uint64 {
	if !d.seeded {
		base := uint64(world.RegionSeed(d.ew.seed, d.e.chunk))
		d.state = mix64(base ^ mix64(d.e.seedKey^rotl(uint64(d.ew.tickNum), 32)))
		d.seeded = true
	}
	d.state += 0x9E3779B97F4A7C15
	return mix64(d.state)
}

// Intn returns a draw in [0, n). Modulo bias at these tiny ranges (n <= 49)
// is ~2^-59 — irrelevant for wander goals and cooldowns.
func (d *decisionStream) Intn(n int) int {
	return int(d.next() % uint64(n))
}

// spawnSeedKey derives an entity's spawn identity from the world seed and
// its spawn position and tick. Entities spawned at the same block on the
// same tick share a key — in practice only item drops can collide (mob
// spawns are spawner- or placement-throttled), and items draw no decisions,
// so a shared key only aligns their throttle phases. Never returns zero.
func spawnSeedKey(seed int64, p world.Pos, tick int64) uint64 {
	h := uint64(int64(p.X))*0x9E3779B97F4A7C15 ^
		rotl(uint64(int64(p.Y)), 21)*0xBF58476D1CE4E5B9 ^
		rotl(uint64(int64(p.Z)), 42)*0x94D049BB133111EB
	k := mix64(uint64(seed) ^ h ^ rotl(uint64(tick), 17))
	if k == 0 {
		k = 1
	}
	return k
}

// spawnStream is the position/tick-keyed stream item spawn velocities draw
// from: one stream per (spawn block, tick), advanced per draw, so spawn
// velocities are pure functions of simulation state too.
type spawnStream struct{ state uint64 }

func newSpawnStream(seed int64, p world.Pos, tick int64) spawnStream {
	return spawnStream{state: spawnSeedKey(seed, p, tick)}
}

func (s *spawnStream) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix64(s.state)
}

// Float64 returns a draw in [0, 1) with 53 bits of precision.
func (s *spawnStream) Float64() float64 { return float64(s.next()>>11) / (1 << 53) }

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func rotl(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }
