package entity

import "repro/internal/mlg/world"

// Per-region decision RNG streams — the entity half of the determinism
// contract.
//
// Mob decisions (choosePath's wander goal and cooldown rolls, followPath's
// completion roll) used to consume the store's shared RNG, whose draw order
// was part of a bit-equality contract with the serial loop: the parallel
// schedule had to route every possibly-drawing mob through a serial replay
// pass in global ID order, which serialized exactly the workloads (farms
// full of pathing mobs) the region engine exists to speed up.
//
// The contract is now "deterministic per-region streams" instead of "the
// serial stream": every decision draw comes from a stateless counter-based
// stream keyed by
//
//	world.RegionSeed(world seed, mob's chunk column) ⊕ entity ID ⊕ tick
//
// and advanced by draw index within the mob's tick. A draw is a pure
// function of simulation state, so its value does not depend on worker
// count, scheduling, or whether the tick ran on the serial loop or a region
// worker — region workers draw in place, and the serial replay pass is
// gone. The chunk key makes the streams per-region in the spatial sense
// (the chunk column is the finest region unit; RegionSeed is the same
// derivation the terrain engine's region contexts use), so neighbouring
// mobs' streams stay uncorrelated and a mob's stream changes deterministically
// as it crosses chunk borders.
//
// The store RNG still exists — spawning (item velocities, natural-spawn
// placement) stays on it, consumed only in the serial phases around the
// per-entity loop, where global call order is deterministic by construction.

// decisionStream is one mob-tick's decision stream. It is seeded lazily on
// the first draw (most mob ticks — path following, cooldown waits — draw
// nothing, and the FNV mix should not tax them), then advances one
// splitmix64 step per draw. Create exactly one per entity per tick: draws
// within a tick occur in fixed program order, so the stream's sequence is
// deterministic.
type decisionStream struct {
	ew     *World
	e      *Entity
	state  uint64
	seeded bool
}

// decisionStreamFor returns the stream for one mob tick. The key uses
// e.chunk — the spatial-index bucket at tick start — which is stable for
// the whole tick on both schedules: the serial loop rebuckets only after
// the kind switch, and region workers buffer rebuckets for the merge.
func (ew *World) decisionStreamFor(e *Entity) decisionStream {
	return decisionStream{ew: ew, e: e}
}

// next advances the stream one draw: splitmix64 over the lazily mixed seed.
func (d *decisionStream) next() uint64 {
	if !d.seeded {
		base := uint64(world.RegionSeed(d.ew.seed, d.e.chunk))
		d.state = mix64(base ^ mix64(uint64(d.e.ID)^rotl(uint64(d.ew.tickNum), 32)))
		d.seeded = true
	}
	d.state += 0x9E3779B97F4A7C15
	return mix64(d.state)
}

// Intn returns a draw in [0, n). Modulo bias at these tiny ranges (n <= 49)
// is ~2^-59 — irrelevant for wander goals and cooldowns.
func (d *decisionStream) Intn(n int) int {
	return int(d.next() % uint64(n))
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func rotl(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }
