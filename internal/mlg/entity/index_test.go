package entity

// Tests for the chunk-bucketed spatial index: structural invariants against
// the flat entity list, query equivalence against brute-force scans, the
// inverted activation-range check against the direct per-entity scan it
// replaced, and the per-chunk update stream the server's interest sets
// consume.

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/mlg/world"
)

// checkIndexInvariants verifies the index is exactly the live entity list,
// rebucketed: every entity sits in the bucket of its cached chunk, the
// cached chunk matches its position, and buckets are ID-sorted.
func checkIndexInvariants(t *testing.T, ew *World) {
	t.Helper()
	total := 0
	for cp, bucket := range ew.index.buckets {
		if len(bucket) == 0 {
			t.Fatalf("empty bucket left behind at %v", cp)
		}
		for i, e := range bucket {
			total++
			if e.chunk != cp {
				t.Fatalf("entity %d cached chunk %v but bucketed at %v", e.ID, e.chunk, cp)
			}
			if !e.Dead {
				if want := world.ChunkPosAt(e.Pos.BlockPos()); want != cp {
					t.Fatalf("entity %d at %v belongs to chunk %v, bucketed at %v", e.ID, e.Pos, want, cp)
				}
			}
			if i > 0 && bucket[i-1].ID >= e.ID {
				t.Fatalf("bucket %v not strictly ID-sorted", cp)
			}
		}
	}
	if total != len(ew.list) {
		t.Fatalf("index holds %d entities, list holds %d", total, len(ew.list))
	}
}

// TestSpatialIndexTracksSimulation runs a mixed population (mobs wandering,
// items falling, TNT exploding) and checks the index invariants as entities
// spawn, cross chunk borders, and die.
func TestSpatialIndexTracksSimulation(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = true
	cfg.SpawnAttemptsPerTick = 5
	ew := NewWorld(w, cfg, 9)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 6)
	for i := 0; i < 12; i++ {
		ew.SpawnMob(world.Pos{X: i * 9, Y: 11, Z: i * 5})
		ew.SpawnItem(world.Pos{X: i * 7, Y: 20, Z: i * 11}, world.Dirt)
	}
	ew.SpawnPrimedTNT(world.Pos{X: 20, Y: 11, Z: 20}, 30)
	players := []Vec3{{X: 10, Y: 11, Z: 10}, {X: 60, Y: 11, Z: 60}}
	for tick := 0; tick < 200; tick++ {
		ew.Tick(players)
		ew.DrainExplosions()
		checkIndexInvariants(t, ew)
	}
	if ew.Count() == 0 {
		t.Fatal("population died out; test exercised nothing")
	}
}

// TestForEachNearMatchesBruteForce: the indexed bounding-square visit plus
// an exact distance predicate must select exactly the entities a full list
// scan selects, for random query spheres.
func TestForEachNearMatchesBruteForce(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = false
	ew := NewWorld(w, cfg, 3)
	w.EnsureArea(world.Pos{X: 40, Y: 0, Z: 40}, 6)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		ew.SpawnItem(world.Pos{X: rng.Intn(96) - 8, Y: 8 + rng.Intn(20), Z: rng.Intn(96) - 8}, world.Dirt)
	}
	for trial := 0; trial < 50; trial++ {
		center := Vec3{X: rng.Float64()*100 - 10, Y: 10 + rng.Float64()*10, Z: rng.Float64()*100 - 10}
		radius := 1 + rng.Float64()*20

		var got []int64
		ew.forEachNear(center, radius, func(e *Entity) {
			if e.Pos.Dist(center) <= radius {
				got = append(got, e.ID)
			}
		})
		var want []int64
		for _, e := range ew.list {
			if e.Pos.Dist(center) <= radius {
				want = append(want, e.ID)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: indexed query found %d entities, brute force %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: indexed query IDs %v != brute force %v", trial, got, want)
			}
		}
	}
}

// TestThrottledMatchesDirectScan: the inverted activation check (mark
// player-near buckets, test the stamp) must skip exactly the entities the
// original per-entity player scan skipped.
func TestThrottledMatchesDirectScan(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = false
	cfg.ActivationRange = 32
	ew := NewWorld(w, cfg, 5)
	w.EnsureArea(world.Pos{X: 60, Y: 0, Z: 60}, 9)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 120; i++ {
		ew.SpawnMob(world.Pos{X: rng.Intn(140), Y: 11, Z: rng.Intn(140)})
	}
	ew.SpawnPrimedTNT(world.Pos{X: 130, Y: 11, Z: 130}, 10_000) // TNT is never throttled
	players := []Vec3{{X: 20, Y: 11, Z: 20}, {X: 100, Y: 11, Z: 100}}

	r := float64(cfg.ActivationRange)
	for tick := 0; tick < 100; tick++ {
		// Expected skips from the direct O(entities x players) predicate,
		// evaluated on pre-tick state exactly as the old code did: Age is
		// incremented before the check, positions are pre-move.
		want := 0
		for _, e := range ew.list {
			if e.Dead || e.Kind == PrimedTNT {
				continue
			}
			near := false
			for _, p := range players {
				if e.Pos.Dist(p) <= r {
					near = true
					break
				}
			}
			if !near && (e.Age+1+int(e.seedKey&3))%4 != 0 {
				want++
			}
		}
		c := ew.Tick(players)
		if c.InactiveSkips != want {
			t.Fatalf("tick %d: InactiveSkips = %d, direct scan predicts %d", tick, c.InactiveSkips, want)
		}
	}
}

// TestDrainChunkUpdates: spawns, cross-chunk moves and despawns must appear
// under the right chunk, sorted, and draining must clear the accumulator.
func TestDrainChunkUpdates(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = false
	ew := NewWorld(w, cfg, 7)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 8)

	farChunk := world.ChunkPosAt(world.Pos{X: 100, Z: 100})
	ew.SpawnItem(world.Pos{X: 100, Y: 12, Z: 100}, world.Dirt)
	ups := ew.DrainChunkUpdates()
	if len(ups) != 1 || ups[0].Pos != farChunk || ups[0].Spawned != 1 {
		t.Fatalf("spawn updates = %+v, want one Spawned in %v", ups, farChunk)
	}
	if again := ew.DrainChunkUpdates(); again != nil {
		t.Fatalf("drain did not clear: %+v", again)
	}

	// The item falls to the ground within a few ticks, changing block
	// position inside its chunk.
	moved := 0
	for i := 0; i < 20; i++ {
		ew.Tick(nil)
		for _, u := range ew.DrainChunkUpdates() {
			if u.Pos != farChunk {
				t.Fatalf("update outside the item's chunk: %+v", u)
			}
			moved += u.Moved
		}
	}
	if moved == 0 {
		t.Fatal("falling item produced no Moved updates")
	}

	// Kill it: the despawn lands in the chunk clients last saw it in.
	n := ew.CollectItems(world.Pos{X: 100, Y: 11, Z: 100}, 3)
	if n != 1 {
		t.Fatalf("collected %d items, want 1", n)
	}
	ew.Tick(nil)
	ups = ew.DrainChunkUpdates()
	if len(ups) != 1 || ups[0].Pos != farChunk || ups[0].Despawned != 1 {
		t.Fatalf("despawn updates = %+v, want one Despawned in %v", ups, farChunk)
	}

	// Sorted (Z, X) order over multiple chunks.
	ew.SpawnItem(world.Pos{X: 40, Y: 12, Z: 90}, world.Dirt)
	ew.SpawnItem(world.Pos{X: -20, Y: 12, Z: -20}, world.Dirt)
	ew.SpawnItem(world.Pos{X: 90, Y: 12, Z: 40}, world.Dirt)
	ups = ew.DrainChunkUpdates()
	if len(ups) != 3 {
		t.Fatalf("got %d chunk entries, want 3", len(ups))
	}
	for i := 1; i < len(ups); i++ {
		a, b := ups[i-1].Pos, ups[i].Pos
		if a.Z > b.Z || (a.Z == b.Z && a.X >= b.X) {
			t.Fatalf("updates not in (Z, X) order: %+v", ups)
		}
	}
}

// TestItemCellsPurgedOnDeath: merge cells pointing at dead items must be
// cleaned by compact, not linger until overwritten.
func TestItemCellsPurgedOnDeath(t *testing.T) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig()
	cfg.NaturalSpawning = false
	cfg.ItemMergeCells = 2
	ew := NewWorld(w, cfg, 11)
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 2)

	ew.SpawnItem(world.Pos{X: 4, Y: 12, Z: 4}, world.Dirt)
	if len(ew.itemCells) != 1 {
		t.Fatalf("itemCells = %d, want 1", len(ew.itemCells))
	}
	// Merging into the live cell spawns nothing.
	ew.SpawnItem(world.Pos{X: 4, Y: 12, Z: 4}, world.Dirt)
	if ew.Count() != 1 {
		t.Fatalf("merge created an extra entity: %d", ew.Count())
	}

	ew.CollectItems(world.Pos{X: 4, Y: 12, Z: 4}, 3)
	ew.Tick(nil) // compact removes the dead item and purges its cell
	if len(ew.itemCells) != 0 {
		t.Fatalf("stale itemCells after compact: %d entries", len(ew.itemCells))
	}
	// A new drop in the same cell spawns a fresh entity.
	ew.SpawnItem(world.Pos{X: 4, Y: 12, Z: 4}, world.Dirt)
	if ew.Count() != 1 {
		t.Fatalf("respawn in purged cell failed: %d entities", ew.Count())
	}
}
