package entity

import (
	"container/heap"

	"repro/internal/mlg/world"
)

// Mob AI: wander toward random nearby goals (or the nearest player), using
// A* over the voxel grid. Because MLG terrain is mutable, there is no
// precomputed navigation mesh: paths are computed on demand and invalidated
// whenever a chunk they cross changes — the compute-intensive dynamic
// pathfinding of §2.2.3.
//
// The tick-time half (path following, staleness checks, physics) runs on a
// tick context shared by the serial loop and the region-parallel workers.
// The decision half (choosePath, and the wander-cooldown roll on path
// completion) consumes the store's RNG stream, whose draw order is part of
// the bit-equality contract — region workers never reach it: mobs whose tick
// could draw are routed to the serial replay pass (see parallel.go), and the
// context guards below turn any predicate miss into a rolled-back tick.

// tickItem integrates item physics only.
func (c *tickCtx) tickItem(e *Entity) {
	c.stepPhysics(e)
}

// tickMob runs one AI + physics step for a mob.
func (c *tickCtx) tickMob(e *Entity) {
	// Invalidate the path if terrain changed beneath it.
	if e.HasPath() && c.pathStale(e) {
		e.path = nil
		c.counters.Repaths++
	}

	if !e.HasPath() {
		if e.wanderCooldown > 0 {
			e.wanderCooldown--
		} else if r := c.region; r != nil {
			// The deferral predicate (mobMayDrawRNG) should have routed this
			// mob to the serial replay pass; choosing a path here would draw
			// from the shared RNG stream out of order. Abort the parallel
			// attempt — the rollback re-runs the tick serially.
			r.escaped = true
			return
		} else {
			c.ew.choosePath(e)
		}
	}

	if e.HasPath() {
		c.followPath(e)
		if c.region != nil && c.region.escaped {
			return
		}
	}
	c.stepPhysics(e)
}

// pathStale reports whether any chunk the path crosses mutated since the
// path was computed. chunkVersion only changes on terrain mutation, which
// never happens during the entity phase, so concurrent region workers read
// a frozen map.
func (c *tickCtx) pathStale(e *Entity) bool {
	for cp, v := range e.pathVersions {
		if c.ew.chunkVersion[cp] != v {
			return true
		}
	}
	return false
}

// mobMayDrawRNG reports whether ticking the mob now could draw from the
// store's RNG stream. It mirrors tickMob's control flow on pre-tick state
// without mutating anything: no current path (after staleness) with an
// expired cooldown reaches choosePath, and a mob on its final waypoint may
// complete the path and roll a wander cooldown. Conservative (a deferred mob
// that ends up not drawing costs only parallelism), and the context guards
// in tickMob/followPath catch any miss by aborting the attempt.
func (ew *World) mobMayDrawRNG(e *Entity) bool {
	hasPath := e.HasPath() && !ew.root.pathStale(e)
	if !hasPath {
		return e.wanderCooldown == 0
	}
	return e.pathIdx >= len(e.path)-1
}

// choosePath picks a goal (a player within 16 blocks, else a random point
// within 8) and runs A* toward it. Target finding queries the tick's player
// grid: only buckets around the mob are visited, and the lowest-index match
// is chosen — the same player a first-match linear scan would pick.
// Root-context only: it consumes the store RNG and may generate terrain
// through surfaceAt.
func (ew *World) choosePath(e *Entity) {
	start := e.Pos.BlockPos()
	var goal world.Pos
	target, found := ew.grid.firstWithin(e.Pos, 16)
	if found {
		goal = target.BlockPos()
	} else {
		goal = world.Pos{
			X: start.X + ew.rng.Intn(17) - 8,
			Y: start.Y,
			Z: start.Z + ew.rng.Intn(17) - 8,
		}
		goal.Y = ew.surfaceAt(goal)
	}

	path, nodes := ew.FindPath(start, goal, ew.cfg.PathNodeBudget)
	ew.counters.PathNodes += nodes
	if path == nil {
		e.wanderCooldown = 20 + ew.rng.Intn(20)
		return
	}
	e.path = path
	e.pathIdx = 0
	// Record terrain versions of the chunks the path crosses.
	e.pathVersions = make(map[world.ChunkPos]uint64, 4)
	for _, p := range path {
		cp := world.ChunkPosAt(p)
		e.pathVersions[cp] = ew.chunkVersion[cp]
	}
}

// followPath steers the mob toward its next waypoint.
func (c *tickCtx) followPath(e *Entity) {
	wp := e.path[e.pathIdx]
	target := Center(wp)
	delta := target.Sub(e.Pos)
	horiz := Vec3{X: delta.X, Z: delta.Z}
	if horiz.Len() < 0.4 && delta.Y > -1.5 && delta.Y < 1.5 {
		e.pathIdx++
		if e.pathIdx >= len(e.path) {
			e.path = nil
			if r := c.region; r != nil {
				// Predicate miss (see tickMob): the completion roll must come
				// from the serial stream. Roll the tick back.
				r.escaped = true
				return
			}
			e.wanderCooldown = 20 + c.ew.rng.Intn(40)
		}
		return
	}
	speed := 0.12
	if l := horiz.Len(); l > 0 {
		e.Vel.X += horiz.X / l * speed * 0.3
		e.Vel.Z += horiz.Z / l * speed * 0.3
	}
	// Hop up single-block steps.
	if delta.Y > 0.5 && e.OnGround {
		e.Vel.Y = 0.42
	}
}

// surfaceAt returns one above the highest solid Y of the column (clamped),
// a dynamic spawn/goal height query.
func (ew *World) surfaceAt(p world.Pos) int {
	y := ew.w.HighestSolidY(p.X, p.Z)
	if y < 0 {
		return p.Y
	}
	return y + 1
}

// pathNode is an A* open-set element.
type pathNode struct {
	pos    world.Pos
	g, f   int
	parent *pathNode
	index  int
}

type nodeHeap []*pathNode

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *nodeHeap) Push(x interface{}) { n := x.(*pathNode); n.index = len(*h); *h = append(*h, n) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}

// FindPath runs A* from start to goal over walkable voxels, expanding at
// most nodeBudget nodes. It returns the path (excluding start) and the
// number of nodes expanded, or (nil, expanded) if no path was found within
// budget. Walkable means: solid below, two non-solid blocks of clearance.
func (ew *World) FindPath(start, goal world.Pos, nodeBudget int) ([]world.Pos, int) {
	if nodeBudget <= 0 {
		nodeBudget = 250
	}
	if start == goal {
		return []world.Pos{}, 0
	}

	open := &nodeHeap{}
	heap.Init(open)
	startNode := &pathNode{pos: start, g: 0, f: start.ManhattanDist(goal)}
	heap.Push(open, startNode)
	visited := map[world.Pos]int{start: 0}
	expanded := 0

	var best *pathNode // closest node to goal seen, as a fallback
	bestH := start.ManhattanDist(goal)

	for open.Len() > 0 && expanded < nodeBudget {
		cur := heap.Pop(open).(*pathNode)
		expanded++
		if cur.pos == goal {
			return reconstruct(cur), expanded
		}
		h := cur.pos.ManhattanDist(goal)
		if h < bestH {
			bestH, best = h, cur
		}
		for _, next := range ew.walkableNeighbors(cur.pos) {
			g := cur.g + 1
			if prev, ok := visited[next]; ok && prev <= g {
				continue
			}
			visited[next] = g
			heap.Push(open, &pathNode{pos: next, g: g, f: g + next.ManhattanDist(goal), parent: cur})
		}
	}
	// Partial path toward the goal is still useful for wandering.
	if best != nil && best.g > 0 {
		return reconstruct(best), expanded
	}
	return nil, expanded
}

func reconstruct(n *pathNode) []world.Pos {
	var rev []world.Pos
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.pos)
	}
	out := make([]world.Pos, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// walkableNeighbors returns the standable positions reachable in one step:
// flat moves, single-block step-ups, and drops of up to three blocks.
// Root-context only (A* and natural spawning run serially).
func (ew *World) walkableNeighbors(p world.Pos) []world.Pos {
	out := make([]world.Pos, 0, 4)
	for _, hn := range p.NeighborsHorizontal() {
		for dy := 1; dy >= -3; dy-- {
			q := hn.Add(0, dy, 0)
			if q.Y < 1 || q.Y >= world.Height-1 {
				continue
			}
			if ew.standable(q) {
				out = append(out, q)
				break
			}
			// Cannot pass through a solid at this level going down.
			if b, ok := ew.wc.BlockIfLoaded(q); ok && b.IsSolid() {
				break
			}
		}
	}
	return out
}

// standable reports whether a mob can occupy p: solid floor below, feet and
// head clear.
func (ew *World) standable(p world.Pos) bool {
	below, ok := ew.wc.BlockIfLoaded(p.Down())
	if !ok || !below.IsSolid() {
		return false
	}
	feet, _ := ew.wc.BlockIfLoaded(p)
	head, _ := ew.wc.BlockIfLoaded(p.Up())
	return !feet.IsSolid() && !head.IsSolid()
}

// naturalSpawns attempts ambient mob spawns near players, computing spawn
// points dynamically (§2.2.3: terrain modification may obstruct spawn
// points, so MLGs compute them on the fly).
func (ew *World) naturalSpawns(players []Vec3) {
	for i := 0; i < ew.cfg.SpawnAttemptsPerTick; i++ {
		ew.counters.SpawnAttempts++
		if ew.mobs >= ew.cfg.MaxMobs {
			return
		}
		anchor := players[ew.rng.Intn(len(players))]
		dx := float64(ew.rng.Intn(49) - 24)
		dz := float64(ew.rng.Intn(49) - 24)
		candidate := anchor.Add(Vec3{X: dx, Z: dz})
		bp := candidate.BlockPos()
		bp.Y = ew.surfaceAt(bp)
		if bp.Y <= 1 || bp.Y >= world.Height-2 {
			continue
		}
		if !ew.standable(bp) {
			continue
		}
		// Too close to a player: skip (Minecraft enforces 24 blocks). The
		// player grid visits only the buckets around the candidate.
		if ew.grid.anyStrictlyWithin(Center(bp), 24) {
			continue
		}
		ew.SpawnMob(bp)
	}
}
