package entity

import (
	"container/heap"

	"repro/internal/mlg/world"
)

// Mob AI: wander toward random nearby goals (or the nearest player), using
// A* over the voxel grid. Because MLG terrain is mutable, there is no
// precomputed navigation mesh: paths are computed on demand and invalidated
// whenever a chunk they cross changes — the compute-intensive dynamic
// pathfinding of §2.2.3.
//
// The whole mob tick — staleness checks, decisions, path following, physics
// — runs on a tick context shared by the serial loop and the region-parallel
// workers. Decision randomness (choosePath's wander goal, the cooldown rolls
// on path failure and completion) comes from per-region decision streams
// (see rng.go): each draw is a pure function of (world seed, chunk, entity,
// tick), so region workers draw in place and the serial loop produces the
// identical values — mob decisions no longer couple entities through a
// shared RNG stream. The one thing a region worker cannot do is GENERATE
// terrain (choosePath's surfaceAt over an unloaded column): that escapes the
// entity to the serial re-tick pass (see parallel.go).

// tickItem integrates item physics only.
func (c *tickCtx) tickItem(e *Entity) {
	c.stepPhysics(e)
}

// tickMob runs one AI + physics step for a mob.
func (c *tickCtx) tickMob(e *Entity) {
	// Invalidate the path if terrain changed beneath it.
	if e.HasPath() && c.pathStale(e) {
		e.path = nil
		c.counters.Repaths++
	}

	d := c.ew.decisionStreamFor(e)
	if !e.HasPath() {
		if e.wanderCooldown > 0 {
			e.wanderCooldown--
		} else {
			c.choosePath(e, &d)
			if r := c.region; r != nil && r.escaped {
				// The goal column is unloaded: generation is serial-only.
				// The entity is rolled back and re-ticked on the root context.
				return
			}
		}
	}

	if e.HasPath() {
		c.followPath(e, &d)
	}
	c.stepPhysics(e)
}

// pathStale reports whether any chunk the path crosses mutated since the
// path was computed. chunkVersion only changes on terrain mutation, which
// never happens during the entity phase, so concurrent region workers read
// a frozen map.
func (c *tickCtx) pathStale(e *Entity) bool {
	for cp, v := range e.pathVersions {
		if c.ew.chunkVersion[cp] != v {
			return true
		}
	}
	return false
}

// mayChoosePath mirrors tickMob's control flow on pre-tick state, without
// mutating anything: it reports whether the mob's tick will reach choosePath
// — the only operation in the entity phase that can generate terrain. The
// scheduler uses it to compute the tick's generation horizon (the smallest
// such mob's ID; see parallel.go): a region read that misses an unloaded
// chunk is serial-equivalent only for entities ordered at or before that
// horizon. The predicate is exact, not merely conservative — every input
// (the age throttle via the pre-stamped activation marks, path staleness via
// the frozen chunk versions, the cooldown) is fixed before workers start.
func (ew *World) mayChoosePath(e *Entity) bool {
	if e.Kind != Mob || ew.throttledAt(e, e.Age+1) {
		return false
	}
	if e.HasPath() && !ew.root.pathStale(e) {
		return false
	}
	return e.wanderCooldown == 0
}

// choosePath picks a goal (a player within 16 blocks, else a random point
// within 8) and runs A* toward it. Target finding queries the tick's player
// grid: only buckets around the mob are visited, and the lowest-index match
// is chosen — the same player a first-match linear scan would pick. Runs on
// any context: random draws come from the mob's decision stream and terrain
// reads resolve through the context's cache. On a region context a goal over
// an unloaded column escapes (generation must happen serially) and leaves
// early; the serial re-tick then generates it.
func (c *tickCtx) choosePath(e *Entity, d *decisionStream) {
	start := e.Pos.BlockPos()
	var goal world.Pos
	target, found := c.ew.grid.firstWithin(e.Pos, 16)
	if found {
		goal = target.BlockPos()
	} else {
		goal = world.Pos{
			X: start.X + d.Intn(17) - 8,
			Y: start.Y,
			Z: start.Z + d.Intn(17) - 8,
		}
		y, ok := c.surfaceAt(goal)
		if !ok {
			return
		}
		goal.Y = y
	}

	path, nodes := c.findPath(start, goal, c.ew.cfg.PathNodeBudget)
	c.counters.PathNodes += nodes
	if path == nil {
		e.wanderCooldown = 20 + d.Intn(20)
		return
	}
	e.path = path
	e.pathIdx = 0
	// Record terrain versions of the chunks the path crosses.
	e.pathVersions = make(map[world.ChunkPos]uint64, 4)
	for _, p := range path {
		cp := world.ChunkPosAt(p)
		e.pathVersions[cp] = c.ew.chunkVersion[cp]
	}
}

// followPath steers the mob toward its next waypoint; completing the path
// rolls the next wander cooldown from the mob's decision stream.
func (c *tickCtx) followPath(e *Entity, d *decisionStream) {
	wp := e.path[e.pathIdx]
	target := Center(wp)
	delta := target.Sub(e.Pos)
	horiz := Vec3{X: delta.X, Z: delta.Z}
	if horiz.Len() < 0.4 && delta.Y > -1.5 && delta.Y < 1.5 {
		e.pathIdx++
		if e.pathIdx >= len(e.path) {
			e.path = nil
			e.wanderCooldown = 20 + d.Intn(40)
		}
		return
	}
	speed := 0.12
	if l := horiz.Len(); l > 0 {
		e.Vel.X += horiz.X / l * speed * 0.3
		e.Vel.Z += horiz.Z / l * speed * 0.3
	}
	// Hop up single-block steps.
	if delta.Y > 0.5 && e.OnGround {
		e.Vel.Y = 0.42
	}
}

// surfaceAt returns one above the highest solid Y of the column (the query
// height for empty columns) — a dynamic spawn/goal height query. The root
// context generates the column on demand (§2.2.2 lazy generation); a region
// context cannot (generation mutates the chunk index the workers share
// frozen), so an unloaded column escapes the current entity to the serial
// re-tick pass and returns ok=false.
func (c *tickCtx) surfaceAt(p world.Pos) (int, bool) {
	if r := c.region; r != nil {
		ch := c.wc.Chunk(world.ChunkPosAt(p))
		if ch == nil {
			r.escaped = true
			return 0, false
		}
		lx, lz := world.ChunkLocal(p)
		if y := ch.HighestSolidY(lx, lz); y >= 0 {
			return y + 1, true
		}
		return p.Y, true
	}
	if y := c.ew.w.HighestSolidY(p.X, p.Z); y >= 0 {
		return y + 1, true
	}
	return p.Y, true
}

// pathNode is an A* open-set element.
type pathNode struct {
	pos    world.Pos
	g, f   int
	parent *pathNode
	index  int
}

type nodeHeap []*pathNode

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *nodeHeap) Push(x interface{}) { n := x.(*pathNode); n.index = len(*h); *h = append(*h, n) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}

// FindPath runs A* on the store's root context (the serial read path). Tests
// and external callers use it; tick-time pathing goes through tickCtx.findPath
// so region workers resolve terrain from their frozen caches.
func (ew *World) FindPath(start, goal world.Pos, nodeBudget int) ([]world.Pos, int) {
	return ew.root.findPath(start, goal, nodeBudget)
}

// findPath runs A* from start to goal over walkable voxels, expanding at
// most nodeBudget nodes. It returns the path (excluding start) and the
// number of nodes expanded, or (nil, expanded) if no path was found within
// budget. Walkable means: solid below, two non-solid blocks of clearance.
func (c *tickCtx) findPath(start, goal world.Pos, nodeBudget int) ([]world.Pos, int) {
	if nodeBudget <= 0 {
		nodeBudget = 250
	}
	if start == goal {
		return []world.Pos{}, 0
	}

	open := &nodeHeap{}
	heap.Init(open)
	startNode := &pathNode{pos: start, g: 0, f: start.ManhattanDist(goal)}
	heap.Push(open, startNode)
	visited := map[world.Pos]int{start: 0}
	expanded := 0

	var best *pathNode // closest node to goal seen, as a fallback
	bestH := start.ManhattanDist(goal)

	for open.Len() > 0 && expanded < nodeBudget {
		cur := heap.Pop(open).(*pathNode)
		expanded++
		if cur.pos == goal {
			return reconstruct(cur), expanded
		}
		h := cur.pos.ManhattanDist(goal)
		if h < bestH {
			bestH, best = h, cur
		}
		for _, next := range c.walkableNeighbors(cur.pos) {
			g := cur.g + 1
			if prev, ok := visited[next]; ok && prev <= g {
				continue
			}
			visited[next] = g
			heap.Push(open, &pathNode{pos: next, g: g, f: g + next.ManhattanDist(goal), parent: cur})
		}
	}
	// Partial path toward the goal is still useful for wandering.
	if best != nil && best.g > 0 {
		return reconstruct(best), expanded
	}
	return nil, expanded
}

func reconstruct(n *pathNode) []world.Pos {
	var rev []world.Pos
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.pos)
	}
	out := make([]world.Pos, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// walkableNeighbors returns the standable positions reachable in one step:
// flat moves, single-block step-ups, and drops of up to three blocks.
// Terrain reads go through the context, so A* expansions on a region worker
// resolve from the frozen chunk index (and unloaded misses trip the
// generation-horizon guard in blockIfLoaded).
func (c *tickCtx) walkableNeighbors(p world.Pos) []world.Pos {
	out := make([]world.Pos, 0, 4)
	for _, hn := range p.NeighborsHorizontal() {
		for dy := 1; dy >= -3; dy-- {
			q := hn.Add(0, dy, 0)
			if q.Y < 1 || q.Y >= world.Height-1 {
				continue
			}
			if c.standable(q) {
				out = append(out, q)
				break
			}
			// Cannot pass through a solid at this level going down.
			if b, ok := c.blockIfLoaded(q); ok && b.IsSolid() {
				break
			}
		}
	}
	return out
}

// standable reports whether a mob can occupy p: solid floor below, feet and
// head clear.
func (c *tickCtx) standable(p world.Pos) bool {
	below, ok := c.blockIfLoaded(p.Down())
	if !ok || !below.IsSolid() {
		return false
	}
	feet, _ := c.blockIfLoaded(p)
	head, _ := c.blockIfLoaded(p.Up())
	return !feet.IsSolid() && !head.IsSolid()
}

// naturalSpawns attempts ambient mob spawns near players, computing spawn
// points dynamically (§2.2.3: terrain modification may obstruct spawn
// points, so MLGs compute them on the fly). Runs in the serial phase after
// the per-entity loop, on the store RNG: placement draws stay on the shared
// stream, whose consumption order here is global and deterministic.
func (ew *World) naturalSpawns(players []Vec3) {
	for i := 0; i < ew.cfg.SpawnAttemptsPerTick; i++ {
		ew.counters.SpawnAttempts++
		if ew.mobs >= ew.cfg.MaxMobs {
			return
		}
		anchor := players[ew.rng.Intn(len(players))]
		dx := float64(ew.rng.Intn(49) - 24)
		dz := float64(ew.rng.Intn(49) - 24)
		candidate := anchor.Add(Vec3{X: dx, Z: dz})
		bp := candidate.BlockPos()
		bp.Y, _ = ew.root.surfaceAt(bp)
		if bp.Y <= 1 || bp.Y >= world.Height-2 {
			continue
		}
		if !ew.root.standable(bp) {
			continue
		}
		// Too close to a player: skip (Minecraft enforces 24 blocks). The
		// player grid visits only the buckets around the candidate.
		if ew.grid.anyStrictlyWithin(Center(bp), 24) {
			continue
		}
		ew.SpawnMob(bp)
	}
}
