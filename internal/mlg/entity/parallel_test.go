package entity

// Store-level serial-vs-parallel equivalence for the region-parallel entity
// tick: twin stores with identical spawn sequences run tick-locked at
// Workers=1 (legacy serial loop) and Workers=4 (region-parallel schedule),
// and every externally visible product — per-tick counters, per-chunk update
// drains, detonation drains, and the full wire state snapshot — must match
// bit for bit. Companion tests cover the escape→undo→serial-re-tick path,
// the region-partition invariants, and the regioned blast-impulse batches.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mlg/world"
)

// clusterOrigins lays out n cluster anchors 256 blocks apart on the X axis —
// 16 chunks, far beyond the region link distance, so each cluster is its own
// simulation region.
func clusterOrigins(n int) []world.Pos {
	out := make([]world.Pos, n)
	for i := range out {
		out[i] = world.Pos{X: 32 + i*256, Y: 12, Z: 32}
	}
	return out
}

// buildTwinWorld creates an entity world over flat terrain covering the
// clusters and populates each cluster with items, mobs and slow-fuse TNT via
// the public spawn API, so twin builds consume identical RNG.
func buildTwinWorld(t testing.TB, workers, clusters int) *World {
	t.Helper()
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.ActivationRange = 32 // exercise the throttling path too
	ew := NewWorld(w, cfg, 424242)
	for _, o := range clusterOrigins(clusters) {
		w.EnsureArea(o, 4)
		for i := 0; i < 30; i++ {
			ew.SpawnItem(world.Pos{X: o.X + i%6*2, Y: 14, Z: o.Z + i/6*2}, world.Gravel)
		}
		for i := 0; i < 6; i++ {
			ew.SpawnMob(world.Pos{X: o.X + 3 + i, Y: 11, Z: o.Z + 10})
		}
		for i := 0; i < 4; i++ {
			// Staggered fuses so detonations drain across several ticks.
			ew.SpawnPrimedTNT(world.Pos{X: o.X + 8, Y: 12, Z: o.Z + 4 + i}, 25+7*i)
		}
	}
	return ew
}

// twinPlayers puts one player at each cluster so mobs acquire AI targets and
// activation marking has work to do.
func twinPlayers(clusters int) []Vec3 {
	out := make([]Vec3, 0, clusters)
	for _, o := range clusterOrigins(clusters) {
		out = append(out, Vec3{X: float64(o.X) + 5.5, Y: 11, Z: float64(o.Z) + 5.5})
	}
	return out
}

func drainUpdatesString(ew *World) string {
	return fmt.Sprintf("%+v", ew.DrainChunkUpdates())
}

func TestEntityTickSerialParallelEquivalence(t *testing.T) {
	// Worker-count independence: every worker count must reproduce the
	// Workers=1 serial loop bit for bit, not merely agree with one chosen
	// parallel schedule.
	for _, workers := range []int{2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const clusters = 3
			serial := buildTwinWorld(t, 1, clusters)
			parallel := buildTwinWorld(t, workers, clusters)
			players := twinPlayers(clusters)

			for tick := 0; tick < 80; tick++ {
				cs, cp := serial.Tick(players), parallel.Tick(players)
				if cs != cp {
					t.Fatalf("tick %d: counters diverged\nserial:   %+v\nparallel: %+v", tick, cs, cp)
				}
				if a, b := drainUpdatesString(serial), drainUpdatesString(parallel); a != b {
					t.Fatalf("tick %d: chunk updates diverged\nserial:   %s\nparallel: %s", tick, a, b)
				}
				es, ep := serial.DrainExplosions(), parallel.DrainExplosions()
				if fmt.Sprint(es) != fmt.Sprint(ep) {
					t.Fatalf("tick %d: detonation order diverged\nserial:   %v\nparallel: %v", tick, es, ep)
				}
				if a, b := serial.AppendStateSnapshot(nil), parallel.AppendStateSnapshot(nil); !bytes.Equal(a, b) {
					t.Fatalf("tick %d: entity state snapshots diverged (%d vs %d bytes)", tick, len(a), len(b))
				}
			}
			ps := parallel.ParallelStats()
			if ps.ParallelTicks == 0 {
				t.Fatalf("parallel store never took the region-parallel path: %+v", ps)
			}
			if ss := serial.ParallelStats(); ss.ParallelTicks != 0 {
				t.Fatalf("Workers=1 store took the parallel path: %+v", ss)
			}
		})
	}
}

// TestEntityFastEscapeSerialRetick launches an item across several chunks in
// one tick (a velocity no simulated force produces, and one the scheduler's
// slow-probe envelope cannot cover). Its probes miss the frozen chunk
// snapshot while a fresh mob below the generation horizon could be
// generating terrain, so the worker must undo just that entity and queue it
// for the serial re-tick pass — the tick still commits as parallel, and the
// store must keep matching its serial twin bit for bit.
func TestEntityFastEscapeSerialRetick(t *testing.T) {
	build := func(workers int) *World {
		w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.NaturalSpawning = false
		ew := NewWorld(w, cfg, 99)
		// One loaded chunk holding a fresh mob (no path, cooldown 0 → it may
		// generate terrain, lowest ID → the generation horizon is its ID)
		// and a higher-ID item about to be launched.
		w.EnsureArea(world.Pos{X: 8, Z: 8}, 0)
		ew.SpawnMob(world.Pos{X: 8, Y: 11, Z: 8})
		ew.SpawnItem(world.Pos{X: 8, Y: 30, Z: 8}, world.Gravel)
		// Far-away filler so the population passes the parallel threshold
		// and a second region exists.
		o := world.Pos{X: 520, Y: 12, Z: 8}
		w.EnsureArea(o, 2)
		for i := 0; i < 40; i++ {
			ew.SpawnItem(world.Pos{X: o.X + i%8, Y: 14, Z: o.Z + i/8}, world.Gravel)
		}
		// 120 blocks in one tick: the first step probes far outside the
		// loaded single chunk.
		ew.Entities(func(e *Entity) {
			if e.Kind == Item && e.Pos.X < 100 {
				e.Vel.X = 120
			}
		})
		return ew
	}
	serial, parallel := build(1), build(4)

	for tick := 0; tick < 8; tick++ {
		cs, cp := serial.Tick(nil), parallel.Tick(nil)
		if cs != cp {
			t.Fatalf("tick %d: counters diverged\nserial:   %+v\nparallel: %+v", tick, cs, cp)
		}
		if a, b := serial.AppendStateSnapshot(nil), parallel.AppendStateSnapshot(nil); !bytes.Equal(a, b) {
			t.Fatalf("tick %d: snapshots diverged", tick)
		}
		// Keep the drains aligned between twins.
		serial.DrainChunkUpdates()
		parallel.DrainChunkUpdates()
		serial.DrainExplosions()
		parallel.DrainExplosions()
	}
	ps := parallel.ParallelStats()
	if ps.FallbackTicks == 0 {
		t.Fatalf("fast escape never forced a serial re-tick: %+v", ps)
	}
	if ps.ParallelTicks == 0 {
		t.Fatalf("re-ticked entities must not demote ticks off the parallel path: %+v", ps)
	}
}

// TestEntityUnloadedReadPastGenerationHorizonEscapes covers the one way
// worker-ticked entities could observe non-serial terrain: a fresh mob's
// choosePath may GENERATE a chunk (surfaceAt → HighestSolidY) before a
// higher-ID entity's serial turn, while the worker reads a frozen chunk
// index. An unloaded read by an entity past the generation horizon must
// therefore escape to the serial re-tick pass — matching the serial twin
// exactly.
func TestEntityUnloadedReadPastGenerationHorizonEscapes(t *testing.T) {
	build := func(workers int) *World {
		w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.NaturalSpawning = false
		ew := NewWorld(w, cfg, 99)
		// Cluster A: one chunk of loaded terrain holding a fresh mob (no
		// path, cooldown 0 → may generate, lowest ID), plus a higher-ID item
		// parked over the UNLOADED adjacent chunk — same region (distance 1).
		w.EnsureArea(world.Pos{X: 8, Z: 8}, 0)
		ew.SpawnMob(world.Pos{X: 8, Y: 11, Z: 8})
		ew.SpawnItem(world.Pos{X: 24, Y: 30, Z: 8}, world.Gravel)
		// Cluster B: far-away filler so the population passes the parallel
		// threshold and a second region exists.
		o := world.Pos{X: 520, Y: 12, Z: 8}
		w.EnsureArea(o, 2)
		for i := 0; i < 40; i++ {
			ew.SpawnItem(world.Pos{X: o.X + i%8, Y: 14, Z: o.Z + i/8}, world.Gravel)
		}
		return ew
	}
	serial, parallel := build(1), build(4)
	for tick := 0; tick < 6; tick++ {
		cs, cp := serial.Tick(nil), parallel.Tick(nil)
		if cs != cp {
			t.Fatalf("tick %d: counters diverged\nserial:   %+v\nparallel: %+v", tick, cs, cp)
		}
		if a, b := serial.AppendStateSnapshot(nil), parallel.AppendStateSnapshot(nil); !bytes.Equal(a, b) {
			t.Fatalf("tick %d: snapshots diverged", tick)
		}
		serial.DrainChunkUpdates()
		parallel.DrainChunkUpdates()
	}
	if ps := parallel.ParallelStats(); ps.FallbackTicks == 0 {
		t.Fatalf("unloaded read past the generation horizon never escaped: %+v", ps)
	}
}

// TestEntityRegionPartitionProperties checks the partition invariants the
// equivalence argument rests on: every occupied chunk column lands in
// exactly one region's core, cores of distinct regions are farther apart
// than the link distance, and each owned set is exactly its core plus the
// one-chunk halo.
func TestEntityRegionPartitionProperties(t *testing.T) {
	ew := buildTwinWorld(t, 4, 4)
	regions, nComps := ew.partitionEntityRegions(2)
	if regions == nil || nComps < 2 {
		t.Fatalf("expected >= 2 regions, got %d", nComps)
	}

	seen := make(map[world.ChunkPos]int)
	for i, r := range regions {
		for _, cp := range r.chunks {
			if prev, dup := seen[cp]; dup {
				t.Fatalf("chunk %v in regions %d and %d", cp, prev, i)
			}
			seen[cp] = i
			if _, ok := r.owned[cp]; !ok {
				t.Fatalf("region %d core chunk %v not in its owned set", i, cp)
			}
		}
	}
	for cp := range ew.index.buckets {
		if _, ok := seen[cp]; !ok {
			t.Fatalf("occupied chunk %v not covered by any region", cp)
		}
	}
	for i, r := range regions {
		// Owned is exactly core ⊕ 1.
		wantOwned := make(map[world.ChunkPos]struct{})
		for _, cp := range r.chunks {
			for dz := int32(-1); dz <= 1; dz++ {
				for dx := int32(-1); dx <= 1; dx++ {
					wantOwned[world.ChunkPos{X: cp.X + dx, Z: cp.Z + dz}] = struct{}{}
				}
			}
		}
		if len(wantOwned) != len(r.owned) {
			t.Fatalf("region %d owned set size %d, want %d", i, len(r.owned), len(wantOwned))
		}
		for cp := range wantOwned {
			if _, ok := r.owned[cp]; !ok {
				t.Fatalf("region %d missing owned chunk %v", i, cp)
			}
		}
		// Cross-region core separation beyond the link distance.
		for j, o := range regions {
			if j <= i {
				continue
			}
			for _, a := range r.chunks {
				for _, b := range o.chunks {
					dx, dz := a.X-b.X, a.Z-b.Z
					if dx < 0 {
						dx = -dx
					}
					if dz < 0 {
						dz = -dz
					}
					d := dx
					if dz > d {
						d = dz
					}
					if d <= entRegionLinkChunks {
						t.Fatalf("regions %d and %d have cores %v,%v at distance %d <= link %d",
							i, j, a, b, d, entRegionLinkChunks)
					}
				}
			}
		}
	}
	ew.releaseEntRegions(regions)
}

// TestApplyExplosionImpulsesEquivalence compares a regioned impulse batch
// against the serial per-center loop on twin stores: entity state and
// collision counters must match exactly.
func TestApplyExplosionImpulsesEquivalence(t *testing.T) {
	const clusters = 4
	serial := buildTwinWorld(t, 1, clusters)
	parallel := buildTwinWorld(t, 4, clusters)

	var centers []world.Pos
	for _, o := range clusterOrigins(clusters) {
		centers = append(centers,
			world.Pos{X: o.X + 2, Y: 13, Z: o.Z + 2},
			world.Pos{X: o.X + 5, Y: 13, Z: o.Z + 3},
		)
	}
	serial.ApplyExplosionImpulses(centers, 4)
	parallel.ApplyExplosionImpulses(centers, 4)

	if serial.counters != parallel.counters {
		t.Fatalf("impulse counters diverged\nserial:   %+v\nparallel: %+v",
			serial.counters, parallel.counters)
	}
	if a, b := serial.AppendStateSnapshot(nil), parallel.AppendStateSnapshot(nil); !bytes.Equal(a, b) {
		t.Fatal("impulse batches left diverging entity state")
	}
}
