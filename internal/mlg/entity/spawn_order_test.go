package entity

// Spawn-order determinism guard: the region-parallel simulation buffers the
// terrain rules' spawn requests and replays them in the reconstructed
// serial order, relying on the store assigning IDs and consuming its RNG
// strictly in call order. If spawning ever becomes order-insensitive (ID
// hashing, deferred batching), the parallel merge's bit-equality argument
// breaks — this test makes that assumption explicit.

import (
	"testing"

	"repro/internal/mlg/world"
)

func TestSpawnOrderDeterminesIDsAndVelocities(t *testing.T) {
	build := func() *World {
		w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
		w.EnsureArea(world.Pos{X: 8, Z: 8}, 1)
		return NewWorld(w, DefaultConfig(), 99)
	}
	requests := []func(*World){
		func(ew *World) { ew.SpawnItem(world.Pos{X: 1, Y: 12, Z: 1}, world.Cobblestone) },
		func(ew *World) { ew.SpawnPrimedTNT(world.Pos{X: 2, Y: 12, Z: 2}, 40) },
		func(ew *World) { ew.SpawnItem(world.Pos{X: 3, Y: 12, Z: 3}, world.Kelp) },
		func(ew *World) { ew.SpawnMob(world.Pos{X: 4, Y: 12, Z: 4}) },
		func(ew *World) { ew.SpawnItem(world.Pos{X: 5, Y: 12, Z: 5}, world.Gravel) },
	}

	// Identical call order → identical IDs and RNG-derived velocities.
	a, b := build(), build()
	for _, req := range requests {
		req(a)
		req(b)
	}
	if a.Count() != b.Count() {
		t.Fatalf("population %d vs %d", a.Count(), b.Count())
	}
	a.Entities(func(ea *Entity) {
		eb := b.Get(ea.ID)
		if eb == nil || ea.Kind != eb.Kind || ea.Pos != eb.Pos || ea.Vel != eb.Vel {
			t.Fatalf("entity %d diverged between identical call orders", ea.ID)
		}
	})

	// Swapped call order → different ID assignment (the sensitivity the
	// parallel merge must preserve, not erase).
	c := build()
	for i := len(requests) - 1; i >= 0; i-- {
		requests[i](c)
	}
	first := c.Get(1)
	if first == nil {
		t.Fatal("no entity with ID 1")
	}
	if first.Kind == Item && first.ItemType == world.Cobblestone {
		t.Fatal("reversed spawn order still assigned ID 1 to the first-ordered request")
	}
}
