// Package mrand provides a serializable random source for the simulation
// engines. The standard library's rand.Rand hides its generator state, which
// makes a world snapshot impossible to restore exactly: a restored server
// would draw a different random-tick/spawn sequence and immediately diverge
// from the uninterrupted run. Source is a splitmix64 generator whose entire
// state is a single uint64, so persistence is trivial and a restored stream
// continues bit-for-bit where the saved one stopped.
package mrand

// Source is a splitmix64 rand.Source64. Its whole state is one word:
// State/SetState move it in and out of world snapshots.
type Source struct{ state uint64 }

// NewSource returns a source seeded with seed.
func NewSource(seed int64) *Source { return &Source{state: uint64(seed)} }

// Seed resets the source to the given seed (rand.Source interface).
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 returns the next value of the splitmix64 stream (rand.Source64).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns the top 63 bits of the next stream value (rand.Source).
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// State returns the generator state for persistence.
func (s *Source) State() uint64 { return s.state }

// SetState restores a generator state captured by State.
func (s *Source) SetState(v uint64) { s.state = v }
