package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/workload"
)

func detSpec(k workload.Kind, bots int) RunSpec {
	ws := k.DefaultSpec()
	if bots > 0 {
		ws.Bots = bots
	}
	return RunSpec{
		Flavor:   server.Vanilla,
		Workload: ws,
		Env:      env.AWSLarge,
		Duration: 3 * time.Second,
		Seed:     42,
	}
}

// TestParallelMatchesSerial: the same RunSpec must yield bit-identical
// results whether executed serially or in parallel with 1, 4 or 8 workers —
// every run owns its virtual clock and RNGs, so the scheduler must not be
// observable in the output.
func TestParallelMatchesSerial(t *testing.T) {
	const n = 8
	// Farm is included deliberately: its spawner/hopper constructs exposed
	// map-iteration-order nondeterminism in the engine (fixed alongside the
	// scheduler; see sim.Engine sortedPositions and world.LoadedChunks).
	for _, k := range []workload.Kind{workload.Control, workload.Players, workload.Farm} {
		spec := detSpec(k, 5)
		serial := RunIterations(spec, n)
		for _, workers := range []int{1, 4, 8} {
			par := RunIterationsParallel(spec, n, workers)
			if len(par) != n {
				t.Fatalf("%v/%d workers: got %d results, want %d", k, workers, len(par), n)
			}
			for i := range par {
				if par[i].ISR != serial[i].ISR {
					t.Errorf("%v/%d workers: iteration %d ISR = %v, serial %v",
						k, workers, i, par[i].ISR, serial[i].ISR)
				}
				if par[i].TickSummary != serial[i].TickSummary {
					t.Errorf("%v/%d workers: iteration %d TickSummary = %+v, serial %+v",
						k, workers, i, par[i].TickSummary, serial[i].TickSummary)
				}
				if !reflect.DeepEqual(par[i], serial[i]) {
					t.Errorf("%v/%d workers: iteration %d result differs from serial",
						k, workers, i)
				}
			}
		}
	}
}

// TestRunParallelOrdering: results come back in spec order regardless of
// completion order (longer runs scheduled first must not displace shorter
// ones).
func TestRunParallelOrdering(t *testing.T) {
	var specs []RunSpec
	for it := 0; it < 6; it++ {
		s := detSpec(workload.Control, 1)
		s.Iteration = it
		s.Duration = time.Duration(3-it%3) * time.Second
		specs = append(specs, s)
	}
	for i, res := range RunParallel(specs, 4) {
		if res.Iteration != specs[i].Iteration {
			t.Errorf("result %d: iteration %d, want %d", i, res.Iteration, specs[i].Iteration)
		}
	}
}

// TestRunParallelPanicCapture: a panicking run must come back as a Crashed
// result, not kill the process, and must not disturb its neighbours.
func TestRunParallelPanicCapture(t *testing.T) {
	orig := runFn
	defer func() { runFn = orig }()
	runFn = func(spec RunSpec) RunResult {
		if spec.Iteration == 1 {
			panic("injected fault")
		}
		return orig(spec)
	}
	res := RunIterationsParallel(detSpec(workload.Control, 1), 3, 3)
	if !res[1].Crashed || res[1].CrashReason != "panic: injected fault" {
		t.Errorf("iteration 1 = %+v, want captured panic", res[1])
	}
	if res[1].Flavor != server.Vanilla.Name || res[1].Iteration != 1 {
		t.Errorf("crashed result lost its identity: %+v", res[1])
	}
	for _, i := range []int{0, 2} {
		if res[i].Crashed {
			t.Errorf("iteration %d crashed: %s", i, res[i].CrashReason)
		}
	}
}

// TestRunCacheSingleflight: concurrent Gets of the same spec share one
// execution, distinct specs execute once each, and results are identical
// for identical specs. Run with -race to guard the cache's locking.
func TestRunCacheSingleflight(t *testing.T) {
	cache := NewRunCache()
	specs := make([]RunSpec, 4)
	for i := range specs {
		specs[i] = detSpec(workload.Control, 1)
		specs[i].Iteration = i % 2 // only two distinct specs
	}

	const goroutines = 8
	results := make([][]RunResult, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = cache.GetAll(specs, 2)
		}(g)
	}
	wg.Wait()

	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", cache.Len())
	}
	if _, misses := cache.Stats(); misses != 2 {
		t.Errorf("cache misses = %d, want 2", misses)
	}
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(results[g], results[0]) {
			t.Errorf("goroutine %d saw different results", g)
		}
	}
	if !reflect.DeepEqual(results[0][0], results[0][2]) {
		t.Errorf("identical specs returned different results")
	}
}

// TestRunCacheMatchesDirect: a cached result is the same result a direct
// Run produces.
func TestRunCacheMatchesDirect(t *testing.T) {
	spec := detSpec(workload.Control, 1)
	cached := NewRunCache().Get(spec)
	if direct := Run(spec); !reflect.DeepEqual(cached, direct) {
		t.Errorf("cached result differs from direct Run")
	}
}

// TestWorkers: the worker-count normalization.
func TestWorkers(t *testing.T) {
	if w := Workers(0); w < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", w)
	}
	if w := Workers(-3); w < 1 {
		t.Errorf("Workers(-3) = %d, want >= 1", w)
	}
	if w := Workers(5); w != 5 {
		t.Errorf("Workers(5) = %d, want 5", w)
	}
}

// TestFlavorSeedDistinct: the old len(name)-based seed gave equal-length
// flavor names identical seeds; the FNV-1a seed must not.
func TestFlavorSeedDistinct(t *testing.T) {
	pairs := [][2]string{
		{"Forge", "Gorge"},     // equal length, old scheme collides
		{"PaperMC", "PurpurX"}, // equal length, old scheme collides
		{"Minecraft", "Forge"},
	}
	for _, p := range pairs {
		if FlavorSeed(p[0]) == FlavorSeed(p[1]) {
			t.Errorf("FlavorSeed(%q) == FlavorSeed(%q)", p[0], p[1])
		}
	}
	if FlavorSeed("Forge") != FlavorSeed("Forge") {
		t.Errorf("FlavorSeed not deterministic")
	}
	if FlavorSeed("Minecraft") < 0 {
		t.Errorf("FlavorSeed negative")
	}
}
