package core

// Golden-determinism suite: one short fixed-seed run per workload, with a
// committed FNV-1a checksum over the full RunResult. Any change that alters
// simulation output in any way — entity iteration order, RNG consumption,
// query visit order, cost accounting, message fan-out — fails here, so perf
// refactors (like the entity spatial index) can prove they are behaviour-
// preserving, and intentional behaviour changes must update the table
// explicitly in the same commit.
//
// The checksum covers everything a run produces (the %+v rendering of
// RunResult has no maps, so it is deterministic): tick traces, summaries,
// ISR, response times, network totals, Figure 11 categories, and end state.
// Combined with TestParallelMatchesSerial, a stable checksum means serial
// and parallel runs are byte-identical at any worker count.
//
// If this test fails after an intentional simulation change, run
//
//	go test ./internal/core -run TestGoldenChecksums -v
//
// and copy the printed checksums into goldenChecksums below.

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/workload"
)

// hashRunResult returns the FNV-1a checksum of the full run result.
func hashRunResult(r RunResult) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", r)
	return h.Sum64()
}

// goldenSpec is the fixed configuration each workload is hashed under: the
// reference self-hosted environment (deterministic machine model), Vanilla
// flavor, 2 virtual seconds, fixed seed.
func goldenSpec(k workload.Kind) RunSpec {
	return RunSpec{
		Flavor:   server.Vanilla,
		Workload: k.DefaultSpec(),
		Env:      env.DAS5TwoCore,
		Duration: 2 * time.Second,
		Seed:     1234,
	}
}

// goldenChecksums pins the simulation output per workload. Update only for
// intentional behaviour changes, in the same commit that changes behaviour.
var goldenChecksums = map[workload.Kind]uint64{
	workload.Control: 0x52a0da17930a6fcb,
	workload.Farm:    0x8fb90bbd9dd2211b,
	workload.TNT:     0xc5d8a8a79b85f80c,
	workload.Lag:     0x633f5fda084a148b,
	workload.Players: 0x88f204c0e04584c3,
}

func TestGoldenChecksums(t *testing.T) {
	for _, k := range workload.All() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			got := hashRunResult(Run(goldenSpec(k)))
			if want := goldenChecksums[k]; got != want {
				t.Errorf("%v checksum = %#016x, want %#016x\n"+
					"simulation output changed; if intentional, update goldenChecksums",
					k, got, want)
			}
		})
	}
}

// TestGoldenChecksumStability: hashing the same run twice in one process
// must agree — guards the hash itself against nondeterministic rendering.
func TestGoldenChecksumStability(t *testing.T) {
	spec := goldenSpec(workload.Control)
	if a, b := hashRunResult(Run(spec)), hashRunResult(Run(spec)); a != b {
		t.Fatalf("identical runs hash differently: %#x vs %#x", a, b)
	}
}
