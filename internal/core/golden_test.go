package core

// Golden-determinism suite: one short fixed-seed run per workload, with a
// committed FNV-1a checksum over the full RunResult. Any change that alters
// simulation output in any way — entity iteration order, RNG consumption,
// query visit order, cost accounting, message fan-out — fails here, so perf
// refactors (like the entity spatial index) can prove they are behaviour-
// preserving, and intentional behaviour changes must update the table
// explicitly in the same commit.
//
// The checksum covers everything a run produces (the %+v rendering of
// RunResult has no maps, so it is deterministic): tick traces, summaries,
// ISR, response times, network totals, Figure 11 categories, and end state.
// Combined with TestParallelMatchesSerial, a stable checksum means serial
// and parallel runs are byte-identical at any worker count.
//
// The table lives in testdata/golden_checksums.txt. If this test fails
// after an intentional simulation change, regenerate it with either of
//
//	go test ./internal/core -run TestGoldenChecksums -update-golden
//	UPDATE_GOLDEN=1 go test ./internal/core -run TestGoldenChecksums
//
// and commit the rewritten file together with the behaviour change.

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/workload"
)

// updateGolden rewrites testdata/golden_checksums.txt from the current run
// instead of comparing against it. UPDATE_GOLDEN=1 in the environment works
// too (handy when the flag can't be threaded through a test wrapper).
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_checksums.txt with the checksums of the current code")

func goldenUpdateRequested() bool {
	return *updateGolden || os.Getenv("UPDATE_GOLDEN") == "1"
}

const goldenChecksumFile = "testdata/golden_checksums.txt"

// loadGoldenChecksums parses the committed golden table: one
// "<workload> <checksum>" pair per line, '#' comments allowed.
func loadGoldenChecksums(t *testing.T) map[workload.Kind]uint64 {
	t.Helper()
	data, err := os.ReadFile(goldenChecksumFile)
	if err != nil {
		t.Fatalf("reading golden table (regenerate with -update-golden): %v", err)
	}
	byName := make(map[string]workload.Kind)
	for _, k := range workload.All() {
		byName[k.String()] = k
	}
	table := make(map[workload.Kind]uint64, len(byName))
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("%s:%d: want \"<workload> <checksum>\", got %q", goldenChecksumFile, ln+1, line)
		}
		k, ok := byName[fields[0]]
		if !ok {
			t.Fatalf("%s:%d: unknown workload %q", goldenChecksumFile, ln+1, fields[0])
		}
		sum, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			t.Fatalf("%s:%d: bad checksum %q: %v", goldenChecksumFile, ln+1, fields[1], err)
		}
		table[k] = sum
	}
	return table
}

// writeGoldenChecksums rewrites the golden table in workload order.
func writeGoldenChecksums(t *testing.T, table map[workload.Kind]uint64) {
	t.Helper()
	var b strings.Builder
	b.WriteString("# Golden FNV-1a checksums per workload (see golden_test.go).\n")
	b.WriteString("# Regenerate: go test ./internal/core -run TestGoldenChecksums -update-golden\n")
	for _, k := range workload.All() {
		fmt.Fprintf(&b, "%s %#016x\n", k, table[k])
	}
	if err := os.MkdirAll(filepath.Dir(goldenChecksumFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenChecksumFile, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// hashRunResult returns the FNV-1a checksum of the full run result.
func hashRunResult(r RunResult) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", r)
	return h.Sum64()
}

// goldenSpec is the fixed configuration each workload is hashed under: the
// reference self-hosted environment (deterministic machine model), Vanilla
// flavor, 2 virtual seconds, fixed seed.
func goldenSpec(k workload.Kind) RunSpec {
	return RunSpec{
		Flavor:   server.Vanilla,
		Workload: k.DefaultSpec(),
		Env:      env.DAS5TwoCore,
		Duration: 2 * time.Second,
		Seed:     1234,
	}
}

func TestGoldenChecksums(t *testing.T) {
	if goldenUpdateRequested() {
		table := make(map[workload.Kind]uint64)
		for _, k := range workload.All() {
			table[k] = hashRunResult(Run(goldenSpec(k)))
			t.Logf("%v %#016x", k, table[k])
		}
		writeGoldenChecksums(t, table)
		t.Logf("rewrote %s", goldenChecksumFile)
		return
	}
	golden := loadGoldenChecksums(t)
	for _, k := range workload.All() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			got := hashRunResult(Run(goldenSpec(k)))
			if want := golden[k]; got != want {
				t.Errorf("%v checksum = %#016x, want %#016x\n"+
					"simulation output changed; if intentional, regenerate with -update-golden",
					k, got, want)
			}
		})
	}
}

// TestGoldenChecksumStability: hashing the same run twice in one process
// must agree — guards the hash itself against nondeterministic rendering.
func TestGoldenChecksumStability(t *testing.T) {
	spec := goldenSpec(workload.Control)
	if a, b := hashRunResult(Run(spec)), hashRunResult(Run(spec)); a != b {
		t.Fatalf("identical runs hash differently: %#x vs %#x", a, b)
	}
}
