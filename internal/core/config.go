// Package core orchestrates Meterstick benchmark runs: it holds the user
// configuration (the Table 4 parameter set), provisions the environment,
// server and player emulation for each iteration, executes the run on a
// virtual clock, and collects the Table 5 metrics into RunResults.
package core

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/workload"
)

// FlavorSeed derives a run seed from the flavor name via FNV-1a. Seeding
// from len(name) gave flavors with equal-length names identical seeds and
// therefore correlated runs; hashing the name keeps seeds deterministic but
// distinct per flavor.
func FlavorSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Config is Meterstick's user-facing configuration: one field per Table 4
// parameter. Fields that configure real remote deployments (IPs, SSL keys,
// ports, JMX) are used by the control-plane path; the virtual-time
// reproduction path needs only the experiment parameters.
type Config struct {
	// IPs lists the nodes used (Table 4 "IPs"; typical value none).
	IPs []string
	// SSLKeys is the authentication key path (Table 4 "SSL Keys").
	SSLKeys string
	// Servers lists the MLGs under test ("V, F, P" — Vanilla, Forge,
	// PaperMC).
	Servers []string
	// World selects the workload world (typical value Control).
	World string
	// OutputDir is where results land (Table 4 "File Locations").
	OutputDir string
	// Resume continues a previous experiment (Table 4 "Resume").
	Resume bool
	// ControlPort and GamePort are the network configuration (Table 4
	// "Ports"; typical 25555/25565).
	ControlPort int
	GamePort    int
	// JMXURLs and JMXPorts configure metric collection endpoints.
	JMXURLs  []string
	JMXPorts []int
	// RAMGB is the heap limit handed to the MLG (JVM -Xmx analogue).
	RAMGB int
	// Affinity is the CPU affinity mask for the MLG process.
	Affinity uint64
	// NumberOfBots is the player count (typical 25).
	NumberOfBots int
	// Behavior is the player behaviour ("idle" or "bounded random").
	Behavior string
	// Duration is the iteration length (typical 60 seconds).
	Duration time.Duration
	// Iterations is the iteration count (typical 1).
	Iterations int
	// Scale is the workload intensity multiplier (typical 1).
	Scale int
	// Environment selects the deployment-environment profile by name.
	Environment string
	// SimWorkers is the per-tick simulation parallelism of the servers under
	// test — both world-exclusive phases, the terrain drain and the entity
	// tick, share the knob and the worker pool: 0 = GOMAXPROCS, 1 = legacy
	// serial paths. Output is worker-count independent: mob decisions draw
	// from per-region streams that are pure functions of simulation state,
	// so every value produces identical results (see internal/mlg/sim and
	// internal/mlg/entity).
	SimWorkers int
}

// DefaultConfig returns the Table 4 typical values.
func DefaultConfig() Config {
	return Config{
		Servers:      []string{"Minecraft", "Forge", "PaperMC"},
		World:        "Control",
		OutputDir:    "results",
		ControlPort:  25555,
		GamePort:     25565,
		RAMGB:        4,
		Affinity:     0xFFFFFFFF,
		NumberOfBots: 25,
		Behavior:     "bounded random",
		Duration:     60 * time.Second,
		Iterations:   1,
		Scale:        1,
		Environment:  env.DAS5TwoCore.Name,
	}
}

// Validate checks the configuration's experiment parameters.
func (c Config) Validate() error {
	if len(c.Servers) == 0 {
		return fmt.Errorf("config: no servers selected")
	}
	for _, s := range c.Servers {
		if _, err := server.FlavorByName(s); err != nil {
			return fmt.Errorf("config: %w", err)
		}
	}
	if _, err := workload.ByName(c.World); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if _, ok := env.StandardProfiles()[c.Environment]; !ok {
		return fmt.Errorf("config: unknown environment %q", c.Environment)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("config: non-positive duration")
	}
	if c.Iterations < 1 {
		return fmt.Errorf("config: iterations must be >= 1")
	}
	if c.NumberOfBots < 0 {
		return fmt.Errorf("config: negative bot count")
	}
	if c.Scale < 1 {
		return fmt.Errorf("config: scale must be >= 1")
	}
	if c.SimWorkers < 0 {
		return fmt.Errorf("config: negative sim workers")
	}
	return nil
}

// Specs expands the configuration into one RunSpec per (server, iteration)
// pair, seeded deterministically.
func (c Config) Specs() ([]RunSpec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	kind, _ := workload.ByName(c.World)
	profile := env.StandardProfiles()[c.Environment]
	var specs []RunSpec
	for _, name := range c.Servers {
		flavor, _ := server.FlavorByName(name)
		for it := 0; it < c.Iterations; it++ {
			ws := kind.DefaultSpec()
			ws.Scale = c.Scale
			if c.NumberOfBots > 0 {
				ws.Bots = c.NumberOfBots
			}
			if c.Behavior == "idle" {
				ws.BotsMove = false
			}
			specs = append(specs, RunSpec{
				Flavor:     flavor,
				Workload:   ws,
				Env:        profile,
				Duration:   c.Duration,
				Iteration:  it,
				Seed:       int64(1000*it) + FlavorSeed(name),
				SimWorkers: c.SimWorkers,
			})
		}
	}
	return specs, nil
}
