package core

import "sync"

// RunCache memoizes benchmark runs keyed on the full RunSpec. Several paper
// artifacts (Figures 7, 9, 11, Table 8) are different views of the same
// benchmark grid, so identical runs should execute exactly once even when a
// parallel scheduler drains the grid: concurrent Gets of the same spec share
// a single execution (singleflight), and the cache is safe under -race.
type RunCache struct {
	mu      sync.Mutex
	entries map[RunSpec]*cacheEntry
	hits    int
	misses  int
}

type cacheEntry struct {
	once sync.Once
	res  RunResult
}

// NewRunCache returns an empty cache.
func NewRunCache() *RunCache {
	return &RunCache{entries: map[RunSpec]*cacheEntry{}}
}

// Get returns the result for spec, executing the run on first use. The
// spec's comparable fields form the key, so any parameter change is a new
// run; concurrent callers with the same spec block on one shared execution.
func (c *RunCache) Get(spec RunSpec) RunResult {
	c.mu.Lock()
	e, ok := c.entries[spec]
	if ok {
		c.hits++
	} else {
		e = &cacheEntry{}
		c.entries[spec] = e
		c.misses++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.res = runSafe(spec) })
	return e.res
}

// GetAll drains specs through the cache across a pool of workers and returns
// results in spec order. Duplicate specs in the list execute once.
func (c *RunCache) GetAll(specs []RunSpec, workers int) []RunResult {
	out := make([]RunResult, len(specs))
	forEachIndex(len(specs), Workers(workers), func(i int) {
		out[i] = c.Get(specs[i])
	})
	return out
}

// Len reports the number of distinct specs executed (or executing).
func (c *RunCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports cache hits and misses so far.
func (c *RunCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
