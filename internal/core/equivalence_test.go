package core

// Run-level worker-count independence: full benchmark runs — bots, virtual
// clock, cost model, dissemination, reports — hashed with the golden FNV-1a
// checksum must be bit-identical across every SimWorkers value. Mob
// decisions draw from per-region streams that are pure functions of
// simulation state (see internal/mlg/entity), so the schedule — serial loop
// or region-parallel workers, any worker count — may only change wall-clock
// time, never output.
//
// TestGoldenChecksumsParallel pins the parallel schedule to the committed
// golden table at SimWorkers 2, 4 and 8: the same checksums TestGolden-
// Checksums enforces at the host's default parallelism must hold at each,
// which is the acceptance gate for the region-parallel engine.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mlg/server"
	"repro/internal/workload"
)

func TestGoldenChecksumsParallel(t *testing.T) {
	if goldenUpdateRequested() {
		t.Skip("golden table being regenerated")
	}
	golden := loadGoldenChecksums(t)
	for _, workers := range []int{2, 4, 8} {
		for _, k := range workload.All() {
			workers, k := workers, k
			t.Run(fmt.Sprintf("%v/workers=%d", k, workers), func(t *testing.T) {
				spec := goldenSpec(k)
				spec.SimWorkers = workers
				if got, want := hashRunResult(Run(spec)), golden[k]; got != want {
					t.Errorf("%v checksum at SimWorkers=%d = %#016x, want golden %#016x\n"+
						"the region-parallel schedule changed simulation output", k, workers, got, want)
				}
			})
		}
	}
}

// TestSerialParallelRunMatrix runs every workload x flavor for 60+ ticks at
// SimWorkers=1 and SimWorkers=4 and asserts identical run checksums.
// Construct workloads run at Scale 2 so the update queues actually
// partition into multiple regions (scale 1 lays out a single dense cluster
// — one region — which would exercise only the serial path).
func TestSerialParallelRunMatrix(t *testing.T) {
	flavors := server.Flavors()
	if testing.Short() {
		flavors = flavors[:1]
	}
	for _, k := range workload.All() {
		for _, f := range flavors {
			k, f := k, f
			t.Run(k.String()+"/"+f.Name, func(t *testing.T) {
				spec := RunSpec{
					Flavor:   f,
					Workload: k.DefaultSpec(),
					Env:      goldenSpec(k).Env,
					Duration: 3500 * time.Millisecond, // 70 ticks
					Seed:     987,
				}
				switch k {
				case workload.TNT, workload.Farm, workload.Lag:
					spec.Workload.Scale = 2
				}
				serial, parallel := spec, spec
				serial.SimWorkers = 1
				parallel.SimWorkers = 4
				if a, b := hashRunResult(Run(serial)), hashRunResult(Run(parallel)); a != b {
					t.Fatalf("%v/%v: run checksums diverged: serial %#016x vs parallel %#016x",
						k, f.Name, a, b)
				}
			})
		}
	}
}
