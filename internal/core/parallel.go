package core

import (
	"fmt"
	"runtime"
	"sync"
)

// runFn executes one run; indirected so tests can exercise the scheduler's
// panic capture without a genuinely faulty spec.
var runFn = Run

// runSafe executes one run, converting a panic into a Crashed result so a
// single faulty run cannot take down a whole experiment grid.
func runSafe(spec RunSpec) (res RunResult) {
	defer func() {
		if r := recover(); r != nil {
			res = RunResult{
				Flavor:      spec.Flavor.Name,
				Workload:    spec.Workload.Kind.String(),
				Environment: spec.Env.Name,
				Iteration:   spec.Iteration,
				Crashed:     true,
				CrashReason: fmt.Sprintf("panic: %v", r),
			}
		}
	}()
	return runFn(spec)
}

// Workers normalizes a worker-count request: values below 1 select
// GOMAXPROCS, everything else passes through.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// forEachIndex runs fn(0..n-1) across a pool of workers and returns when all
// calls have completed. With one worker it degenerates to a plain loop.
func forEachIndex(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// RunParallel executes every spec across a pool of workers and returns the
// results in spec order, regardless of completion order. Each run is
// hermetic (own virtual clock, own seeded RNGs), so results are bit-identical
// to executing the same specs serially. workers < 1 selects GOMAXPROCS; a
// panicking run yields a Crashed result rather than killing the process.
func RunParallel(specs []RunSpec, workers int) []RunResult {
	out := make([]RunResult, len(specs))
	forEachIndex(len(specs), Workers(workers), func(i int) {
		out[i] = runSafe(specs[i])
	})
	return out
}

// RunIterationsParallel is RunIterations drained by the parallel scheduler:
// n iterations of the spec, varying only the iteration index, executed
// across workers with deterministic per-iteration results.
func RunIterationsParallel(spec RunSpec, n, workers int) []RunResult {
	specs := make([]RunSpec, n)
	for it := 0; it < n; it++ {
		specs[it] = spec
		specs[it].Iteration = it
	}
	return RunParallel(specs, workers)
}
