package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/workload"
)

func spec(k workload.Kind, f server.Flavor, p env.Profile, d time.Duration) RunSpec {
	return RunSpec{
		Flavor:   f,
		Workload: k.DefaultSpec(),
		Env:      p,
		Duration: d,
		Seed:     7,
	}
}

func TestConfigDefaultsValid(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	specs, err := c.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 { // three servers × one iteration
		t.Fatalf("specs = %d, want 3", len(specs))
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Servers = nil },
		func(c *Config) { c.Servers = []string{"Bukkit"} },
		func(c *Config) { c.World = "Chaos" },
		func(c *Config) { c.Environment = "Mars" },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Iterations = 0 },
		func(c *Config) { c.NumberOfBots = -1 },
		func(c *Config) { c.Scale = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunControlOnDAS5(t *testing.T) {
	r := Run(spec(workload.Control, server.Vanilla, env.DAS5TwoCore, 30*time.Second))
	if r.Crashed {
		t.Fatalf("Control crashed: %s", r.CrashReason)
	}
	if len(r.TickMS) < 500 {
		t.Fatalf("too few ticks: %d", len(r.TickMS))
	}
	if r.TickSummary.Mean >= 50 {
		t.Fatalf("Control mean tick %.1f ms on DAS-5, want < 50", r.TickSummary.Mean)
	}
	if r.ISR > 0.05 {
		t.Fatalf("Control ISR %.3f on DAS-5, want near 0", r.ISR)
	}
	if len(r.ResponseMS) < 20 {
		t.Fatalf("response probes = %d, want ~30", len(r.ResponseMS))
	}
	if r.ResponseSummary.Median <= 0 {
		t.Fatal("non-positive median response time")
	}
}

func TestRunDeterministic(t *testing.T) {
	s := spec(workload.Control, server.Forge, env.AWSLarge, 10*time.Second)
	a, b := Run(s), Run(s)
	if !reflect.DeepEqual(a.TickMS, b.TickMS) {
		t.Fatal("tick traces differ between identical runs")
	}
	if !reflect.DeepEqual(a.ResponseMS, b.ResponseMS) {
		t.Fatal("response times differ between identical runs")
	}
	if a.ISR != b.ISR {
		t.Fatal("ISR differs")
	}
}

func TestIterationsVaryOnCloud(t *testing.T) {
	s := spec(workload.Control, server.Vanilla, env.AWSLarge, 10*time.Second)
	rs := RunIterations(s, 6)
	if len(rs) != 6 {
		t.Fatal("iteration count wrong")
	}
	means := MeanTicks(rs)
	allSame := true
	for _, m := range means[1:] {
		if m != means[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("cloud iterations produced identical means; placement variance missing")
	}
}

func TestEnvironmentWorkloadsRaiseISR(t *testing.T) {
	// MF2 precondition at short duration: Farm and TNT ISR above Control.
	d := 45 * time.Second
	control := Run(spec(workload.Control, server.Vanilla, env.AWSLarge, d))
	farm := Run(spec(workload.Farm, server.Vanilla, env.AWSLarge, d))
	tnt := Run(spec(workload.TNT, server.Vanilla, env.AWSLarge, d))
	if farm.ISR <= control.ISR {
		t.Errorf("Farm ISR %.4f not above Control %.4f", farm.ISR, control.ISR)
	}
	if tnt.ISR <= control.ISR {
		t.Errorf("TNT ISR %.4f not above Control %.4f", tnt.ISR, control.ISR)
	}
}

func TestLagCrashesOnAWSButNotDAS5(t *testing.T) {
	aws := Run(spec(workload.Lag, server.Vanilla, env.AWSLarge, 60*time.Second))
	if !aws.Crashed {
		t.Fatalf("Lag on AWS t3.large did not crash (ISR %.3f, mean %.0f ms, throttled=%v)",
			aws.ISR, aws.TickSummary.Mean, aws.Throttled)
	}
	das5 := Run(spec(workload.Lag, server.Vanilla, env.DAS5TwoCore, 60*time.Second))
	if das5.Crashed {
		t.Fatalf("Lag on DAS-5 crashed: %s", das5.CrashReason)
	}
	if das5.ISR < 0.5 {
		t.Fatalf("Lag ISR on DAS-5 = %.3f, want the paper's 0.85-1.0 band (>= 0.5)", das5.ISR)
	}
}

func TestPaperAsyncChatFlattensResponseTime(t *testing.T) {
	d := 30 * time.Second
	van := Run(spec(workload.Farm, server.Vanilla, env.AWSLarge, d))
	pap := Run(spec(workload.Farm, server.Paper, env.AWSLarge, d))
	if pap.ResponseSummary.P95 >= van.ResponseSummary.Median {
		t.Fatalf("Paper async chat p95 (%.1f ms) should undercut Vanilla median (%.1f ms)",
			pap.ResponseSummary.P95, van.ResponseSummary.Median)
	}
}

func TestJoinSpikesMakeMaxResponseFarAboveMean(t *testing.T) {
	// MF1 shape: max response ≫ mean, driven by the post-connect burst.
	r := Run(spec(workload.Control, server.Vanilla, env.AWSLarge, 60*time.Second))
	if r.ResponseSummary.Max < 3*r.ResponseSummary.Mean {
		t.Fatalf("max response %.1f ms not ≫ mean %.1f ms",
			r.ResponseSummary.Max, r.ResponseSummary.Mean)
	}
}

func TestSeriesAndNetPopulated(t *testing.T) {
	r := Run(spec(workload.Farm, server.Vanilla, env.DAS5TwoCore, 15*time.Second))
	if len(r.Series) != len(r.TickMS) {
		t.Fatal("series and trace lengths differ")
	}
	for i := 1; i < len(r.Series); i++ {
		if r.Series[i].AtMS <= r.Series[i-1].AtMS {
			t.Fatal("series timestamps not increasing")
		}
	}
	if r.Net.Msgs == 0 || r.Net.Bytes == 0 {
		t.Fatal("no network totals")
	}
	if r.Net.EntityMsgs == 0 {
		t.Fatal("no entity messages in Farm run")
	}
	if r.Fig11.EntityUS <= 0 {
		t.Fatal("no entity time in Fig11 split")
	}
	if r.ItemsCollected == 0 {
		t.Fatal("farm collected nothing")
	}
}

func TestPlayersWorkloadTwentyFiveBots(t *testing.T) {
	r := Run(spec(workload.Players, server.Vanilla, env.DAS5TwoCore, 15*time.Second))
	if r.Crashed {
		t.Fatal("Players workload crashed")
	}
	// 25 bots probing every second for 15 s.
	if len(r.ResponseMS) < 25*10 {
		t.Fatalf("responses = %d, want >= 250", len(r.ResponseMS))
	}
}
