package core

import (
	"math/rand"
	"time"

	"repro/internal/bot"
	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
	"repro/internal/workload"
)

// RunSpec fully describes one benchmark run: which MLG, which workload,
// which deployment environment, for how long.
type RunSpec struct {
	Flavor    server.Flavor
	Workload  workload.Spec
	Env       env.Profile
	Duration  time.Duration
	Iteration int
	Seed      int64
	// ProbeEvery overrides the chat-probe interval (default 1 s).
	ProbeEvery time.Duration
	// WorldSeed overrides the terrain seed (default the paper's Control
	// seed).
	WorldSeed int64
	// SimWorkers sets the per-tick simulation parallelism of the server
	// under test — the terrain drains and the region-parallel entity tick
	// both run on it (0 = GOMAXPROCS, 1 = legacy serial). Simulation output
	// is bit-identical at any value — the golden checksum suite and the
	// serial-vs-parallel equivalence matrices enforce it — so this knob
	// trades wall-clock time only.
	SimWorkers int
}

// TickPoint is one tick of the run's tick-time series (Figure 9 data).
type TickPoint struct {
	// AtMS is the tick's start offset from run start, in virtual ms.
	AtMS float64
	// DurMS is the tick's busy duration in ms.
	DurMS float64
}

// RunResult aggregates everything one run produced.
type RunResult struct {
	Flavor      string
	Workload    string
	Environment string
	Iteration   int

	// TickMS is the tick-duration trace in milliseconds; Series adds
	// timestamps for time-series plots.
	TickMS []float64
	Series []TickPoint
	// TickSummary summarizes TickMS; ISR is the Instability Ratio over the
	// run (Equation 1).
	TickSummary metrics.Summary
	ISR         float64
	// Overloaded counts ticks above the 50 ms budget.
	Overloaded int

	// ResponseMS are completed chat-probe round trips in milliseconds.
	ResponseMS      []float64
	ResponseSummary metrics.Summary

	// Crashed reports abnormal termination (e.g. client timeouts under the
	// Lag workload on starved nodes).
	Crashed     bool
	CrashReason string

	// Net totals feed Table 8; Fig11 the tick-distribution plot.
	Net   server.NetTotals
	Fig11 server.Fig11Totals

	// FinalEntities and ItemsCollected describe the end state.
	FinalEntities  int
	ItemsCollected int64
	// Machine state for environment analysis.
	Throttled bool
	BusyHost  bool
}

// probeKey matches a chat echo back to its sending bot.
type probeKey struct {
	playerID int64
	sentNano int64
}

// Run executes one benchmark run on a virtual clock and returns its
// result. Runs are deterministic in (spec.Seed, spec fields).
func Run(spec RunSpec) RunResult {
	if spec.ProbeEvery <= 0 {
		spec.ProbeEvery = time.Second
	}
	worldSeed := spec.WorldSeed
	if worldSeed == 0 {
		worldSeed = world.PaperControlSeed
	}

	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := env.NewVirtualClock(start)
	machine := env.NewMachine(spec.Env, spec.Seed*2654435761+int64(spec.Iteration))

	w := workload.NewWorld(spec.Workload.Kind, worldSeed)
	scfg := server.DefaultConfig(spec.Flavor)
	scfg.Sim.Seed = spec.Seed
	scfg.Net.ClientTimeout = spec.Env.ConnTimeout
	scfg.Sim.Workers = spec.SimWorkers
	s := server.New(w, scfg, machine, clock)
	if err := workload.Install(s, spec.Workload); err != nil {
		return RunResult{Crashed: true, CrashReason: err.Error()}
	}

	// Warm-up: let the freshly installed world settle (fluid spread, wire
	// power-up, construct start-up cascades) before player emulation
	// connects — the paper's initialize step. No players are connected, so
	// no measurement and no crash semantics apply.
	for i := 0; i < 600; i++ {
		rec := s.Tick()
		if i >= 30 && rec.Backlog == 0 {
			break
		}
	}
	s.ResetStats()

	// Short runs pull the TNT ignition forward so the chain reaction fits
	// inside the measured window.
	if ticks := int(spec.Duration / server.TickBudget); spec.Workload.IgniteAfterTicks >= ticks {
		spec.Workload.IgniteAfterTicks = ticks / 3
		if spec.Workload.IgniteAfterTicks < 1 {
			spec.Workload.IgniteAfterTicks = 1
		}
	}

	// Player emulation: bots connect staggered a few ticks apart, as
	// Yardstick ramps its emulated players up, so 25 simultaneous join
	// bursts do not land on one tick. The first join still produces the
	// post-connect response-time outliers of MF1.
	const connectStaggerTicks = 5
	behavior := bot.Idle
	if spec.Workload.BotsMove {
		behavior = bot.RandomWalk
	}
	swarm := bot.NewSwarm(spec.Workload.Bots, behavior, spec.ProbeEvery, spec.Seed+77)
	botIDs := make([]int64, len(swarm.Bots))
	connected := make([]bool, len(swarm.Bots))
	connectBot := func(i int) {
		p := s.Connect(swarm.Bots[i].Name())
		botIDs[i] = p.ID
		connected[i] = true
	}
	connectBot(0)

	// Trigger the workload (TNT ignition) relative to player connect.
	workload.Arm(s, spec.Workload)

	sent := make(map[probeKey]time.Time)
	var responses []float64
	// Bots act at uniformly random offsets within each tick cycle, like
	// real clients whose inputs are not phase-locked to the server tick.
	sendJitter := rand.New(rand.NewSource(spec.Seed ^ 0x5ca1ab1e))

	res := RunResult{
		Flavor:      spec.Flavor.Name,
		Workload:    spec.Workload.Kind.String(),
		Environment: spec.Env.Name,
		Iteration:   spec.Iteration,
	}

	runStart := clock.Now()
	end := runStart.Add(spec.Duration)
	tickIndex := 0
	for clock.Now().Before(end) {
		tickStart := clock.Now()
		tickIndex++

		// Bots act somewhere inside the current tick cycle; their packets
		// arrive after the uplink latency and queue until the next tick —
		// the input-queue wait of the operational model.
		for i, b := range swarm.Bots {
			if !connected[i] {
				if tickIndex >= i*connectStaggerTicks {
					connectBot(i)
				}
				continue
			}
			sentAt := tickStart.Add(time.Duration(sendJitter.Int63n(int64(server.TickBudget))))
			for _, pkt := range b.Actions(sentAt) {
				arrival := sentAt.Add(machine.NetOneWay())
				s.Enqueue(botIDs[i], pkt, arrival)
				if chat, ok := pkt.(*protocol.Chat); ok {
					sent[probeKey{botIDs[i], chat.SentUnixNano}] = sentAt
				}
			}
		}

		rec := s.Tick()
		res.Series = append(res.Series, TickPoint{
			AtMS:  float64(tickStart.Sub(runStart)) / float64(time.Millisecond),
			DurMS: float64(rec.Dur) / float64(time.Millisecond),
		})

		// Complete chat probes: echo flush time plus downlink.
		for _, echo := range s.DrainChatEchoes() {
			key := probeKey{echo.PlayerID, echo.SentUnixNano}
			sentAt, ok := sent[key]
			if !ok {
				continue
			}
			delete(sent, key)
			recvAt := echo.ReadyAt.Add(machine.NetOneWay())
			responses = append(responses, float64(recvAt.Sub(sentAt))/float64(time.Millisecond))
		}

		if crashed, reason := s.Crashed(); crashed {
			res.Crashed = true
			res.CrashReason = reason
			break
		}
	}

	res.TickMS = metrics.DurationsToMS(s.TickDurations())
	res.TickSummary = metrics.Summarize(res.TickMS)
	res.ISR = metrics.ISR(res.TickMS, metrics.TickBudgetMS,
		metrics.ExpectedTicks(spec.Duration, server.TickBudget))
	for _, d := range res.TickMS {
		if d > metrics.TickBudgetMS {
			res.Overloaded++
		}
	}
	res.ResponseMS = responses
	res.ResponseSummary = metrics.Summarize(responses)
	res.Net = s.NetTotals()
	res.Fig11 = s.Fig11()
	res.FinalEntities = s.EntityWorld().Count()
	res.ItemsCollected = s.Engine().ItemsCollected
	res.Throttled = machine.Throttled()
	res.BusyHost = machine.BusyHost()
	return res
}

// RunIterations executes n iterations of the spec, varying the iteration
// index (and with it the machine placement), like the paper's 50-iteration
// MF3 experiment.
func RunIterations(spec RunSpec, n int) []RunResult {
	out := make([]RunResult, 0, n)
	for it := 0; it < n; it++ {
		s := spec
		s.Iteration = it
		out = append(out, Run(s))
	}
	return out
}

// ISRs extracts the ISR of each result.
func ISRs(results []RunResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.ISR
	}
	return out
}

// MeanTicks extracts the mean tick duration (ms) of each result.
func MeanTicks(results []RunResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.TickSummary.Mean
	}
	return out
}
