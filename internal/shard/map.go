// Package shard partitions one MLG world into disjoint chunk ranges, each
// owned by its own server.Server, and keeps the shards consistent: halo
// chunk mirrors and entity handoffs flow between neighbours over the same
// varint-framed protocol the players speak, and a gateway routes player
// connections to whichever shard owns their position. The partition reuses
// the engine's determinism contract — every simulation RNG draw is a pure
// function of position, tick and world seed — so a cluster of N shards
// produces, for entities that never cross a boundary, bit-identical
// per-tick counters (summed across shards) to a single server running the
// whole world.
package shard

import (
	"fmt"

	"repro/internal/mlg/world"
)

// HaloWidth is how many owned chunk columns on each side of a shard
// boundary are mirrored to the neighbouring shard every tick. One chunk
// (16 blocks) comfortably covers the largest cross-boundary read the
// engine performs: the TNT blast radius (4 blocks) and mob pathfinding
// lookahead both stay within it.
const HaloWidth = 1

// Map is the static chunk-range shard assignment (v1): the world is split
// along chunk-X into len(Splits)+1 contiguous ranges. Shard i owns chunk
// columns with Splits[i-1] <= X < Splits[i] (the first and last ranges are
// unbounded). Z is never split, matching the engine's region partition
// which already treats chunk columns as the ownership unit.
type Map struct {
	// Splits are the ascending chunk-X boundaries. Empty means one shard
	// owns everything.
	Splits []int32
}

// Validate rejects unordered split lists before they are used for routing.
func (m Map) Validate() error {
	for i := 1; i < len(m.Splits); i++ {
		if m.Splits[i] <= m.Splits[i-1] {
			return fmt.Errorf("shard: splits must be strictly ascending, got %v", m.Splits)
		}
	}
	return nil
}

// Count returns the number of shards in the map.
func (m Map) Count() int { return len(m.Splits) + 1 }

// ShardOf returns the index of the shard owning the chunk column.
func (m Map) ShardOf(cp world.ChunkPos) int {
	for i, s := range m.Splits {
		if cp.X < s {
			return i
		}
	}
	return len(m.Splits)
}

// ShardOfBlock returns the shard owning the block position.
func (m Map) ShardOfBlock(p world.Pos) int { return m.ShardOf(world.ChunkPosAt(p)) }

// Owns returns the ownership predicate for shard i, in the shape
// server.ShardConfig expects.
func (m Map) Owns(i int) func(world.ChunkPos) bool {
	return func(cp world.ChunkPos) bool { return m.ShardOf(cp) == i }
}

// HaloPeers returns, for an owned chunk column, the neighbouring shard
// indices that need a mirror of it: shards whose range starts within
// HaloWidth of the column. A column deep inside a shard returns nothing.
func (m Map) HaloPeers(owner int, cp world.ChunkPos) []int {
	var peers []int
	// Boundary below: shard owner-1 ends at Splits[owner-1].
	if owner > 0 && cp.X < m.Splits[owner-1]+HaloWidth {
		peers = append(peers, owner-1)
	}
	// Boundary above: shard owner+1 begins at Splits[owner].
	if owner < len(m.Splits) && cp.X >= m.Splits[owner]-HaloWidth {
		peers = append(peers, owner+1)
	}
	return peers
}
