package shard

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/protocol"
)

// Session is one directionless inter-shard link: both ends write through
// the protocol package's bounded async writer (the same machinery that
// keeps slow players from blocking the tick loop) and a reader goroutine
// sorts inbound packets into per-tick buckets delimited by ShardBarrier
// markers. The tick loop never touches the socket: SendTick enqueues,
// WaitBarrier blocks on the bucket, and a peer that stalls past the write
// deadline faults the session instead of wedging the shard.
type Session struct {
	conn       *protocol.Conn
	self, peer int

	// WaitTimeout bounds WaitBarrier; a peer that cannot produce its
	// barrier within it is treated as dead (failover territory), not
	// merely slow. Defaults to 30 s.
	WaitTimeout time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	ready   map[int64][]protocol.Packet
	pending []protocol.Packet
	err     error
}

// sessionWriter bounds the inter-shard writer queue. Mirror bursts after a
// failover resync can momentarily exceed player-sized queues, so the
// limits are an order of magnitude above the per-player defaults.
var sessionWriter = protocol.WriterConfig{
	MaxBatches:   256,
	MaxBytes:     8 << 20,
	WriteTimeout: 10 * time.Second,
}

// NewSession wraps rw (a net.Conn or an in-process pipe end) into an
// inter-shard session between shard self and shard peer of a shards-sized
// cluster. The hello handshake is asynchronous: a mismatched peer faults
// the session, surfacing on the next WaitBarrier.
func NewSession(rw io.ReadWriteCloser, self, peer, shards int) *Session {
	s := newSession(rw, self, peer)
	s.conn.StartWriter(sessionWriter)
	s.conn.WritePacket(&protocol.ShardHello{Shard: int32(self), Shards: int32(shards)})
	go s.readLoop(shards, true)
	return s
}

// AcceptSession is the listener side of a TCP shard mesh: the acceptor
// does not know which peer dialed until the hello arrives, so it reads the
// hello synchronously, learns the peer index, and answers with its own.
func AcceptSession(rw io.ReadWriteCloser, self, shards int) (*Session, error) {
	s := newSession(rw, self, -1)
	h, err := s.readHello(shards)
	if err != nil {
		s.conn.Close()
		return nil, err
	}
	s.peer = int(h.Shard)
	s.conn.StartWriter(sessionWriter)
	s.conn.WritePacket(&protocol.ShardHello{Shard: int32(self), Shards: int32(shards)})
	go s.readLoop(shards, false)
	return s, nil
}

func newSession(rw io.ReadWriteCloser, self, peer int) *Session {
	s := &Session{
		conn:        protocol.NewConn(rw),
		self:        self,
		peer:        peer,
		WaitTimeout: 30 * time.Second,
		ready:       make(map[int64][]protocol.Packet),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// readHello consumes and validates the peer's opening hello.
func (s *Session) readHello(shards int) (*protocol.ShardHello, error) {
	hello, _, err := s.conn.ReadPacket()
	if err != nil {
		return nil, err
	}
	h, ok := hello.(*protocol.ShardHello)
	switch {
	case !ok:
		return nil, fmt.Errorf("shard: peer opened with %#x, want hello", int32(hello.ID()))
	case int(h.Shards) != shards:
		return nil, fmt.Errorf("shard: peer cluster size %d, want %d", h.Shards, shards)
	case s.peer >= 0 && int(h.Shard) != s.peer:
		return nil, fmt.Errorf("shard: peer is %d, want %d", h.Shard, s.peer)
	}
	return h, nil
}

func (s *Session) readLoop(shards int, expectHello bool) {
	if expectHello {
		if _, err := s.readHello(shards); err != nil {
			s.fault(err)
			return
		}
	}
	for {
		p, _, err := s.conn.ReadPacket()
		if err != nil {
			s.fault(err)
			return
		}
		s.mu.Lock()
		if b, ok := p.(*protocol.ShardBarrier); ok {
			s.ready[b.Tick] = s.pending
			s.pending = nil
			s.cond.Broadcast()
		} else {
			s.pending = append(s.pending, p)
		}
		s.mu.Unlock()
	}
}

func (s *Session) fault(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Send enqueues one tick's outbound packets followed by its barrier. The
// batch boundary matches the tick boundary, so the writer flushes whole
// ticks and the peer's barrier bucket is never torn.
func (s *Session) Send(tick int64, pkts []protocol.Packet) error {
	s.conn.BeginBatch()
	handoffs := 0
	for _, p := range pkts {
		if _, ok := p.(*protocol.EntityHandoff); ok {
			handoffs++
		}
		if _, err := s.conn.WritePacket(p); err != nil {
			return err
		}
	}
	if _, err := s.conn.WritePacket(&protocol.ShardBarrier{Tick: tick, Handoffs: int32(handoffs)}); err != nil {
		return err
	}
	return s.conn.FlushBatch()
}

// WaitBarrier blocks until the peer's barrier for tick arrives and returns
// the packets that preceded it, in send order.
func (s *Session) WaitBarrier(tick int64) ([]protocol.Packet, error) {
	deadline := time.Now().Add(s.WaitTimeout)
	timer := time.AfterFunc(s.WaitTimeout, func() {
		s.fault(fmt.Errorf("shard: peer %d missed barrier for tick %d", s.peer, tick))
	})
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if pkts, ok := s.ready[tick]; ok {
			delete(s.ready, tick)
			return pkts, nil
		}
		if s.err != nil {
			return nil, s.err
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shard: peer %d missed barrier for tick %d", s.peer, tick)
		}
		s.cond.Wait()
	}
}

// Peer returns the peer shard index (learned from the hello on accepted
// sessions).
func (s *Session) Peer() int { return s.peer }

// Err returns the session's sticky fault, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close tears the session down; in-flight reads surface the close as a
// fault.
func (s *Session) Close() error { return s.conn.Close() }
