package shard

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

// Gateway fronts a shard cluster for ordinary players: clients speak the
// normal protocol to one address, and the gateway proxies each connection
// to whichever shard owns the player's position. Routing is re-evaluated
// on every PlayerMove — when a player walks across a shard boundary the
// gateway tears the upstream leg down and re-logs the player into the new
// owner, invisibly to the client (the replacement LoginSuccess is
// swallowed; position is client-authoritative, so the first forwarded move
// snaps the new shard to the player's real location). An upstream leg that
// dies without the client hanging up marks the shard dead, fires the
// failover callback, and retries until a standby answers.
type Gateway struct {
	cfg GatewayConfig

	mu    sync.Mutex
	addrs []string
	down  []bool
}

// GatewayConfig assembles a gateway.
type GatewayConfig struct {
	// Map is the shard assignment; Addrs[i] is shard i's player address.
	Map   Map
	Addrs []string
	// OnShardDown fires once per detected shard death, outside the
	// gateway's locks; a failover manager restores a standby and calls
	// SetAddr when it is serving.
	OnShardDown func(shard int)
	// RetryEvery paces re-dial attempts toward a dead shard (default
	// 100 ms).
	RetryEvery time.Duration
	// DialTimeout bounds each upstream dial (default 2 s).
	DialTimeout time.Duration
}

// NewGateway validates the topology and returns a gateway ready to Serve.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Addrs) != cfg.Map.Count() {
		return nil, fmt.Errorf("shard: %d addrs for %d shards", len(cfg.Addrs), cfg.Map.Count())
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 100 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	return &Gateway{cfg: cfg, addrs: append([]string(nil), cfg.Addrs...), down: make([]bool, cfg.Map.Count())}, nil
}

// SetAddr rewires shard i to a new address — the standby takeover step —
// and clears its down flag so routing resumes.
func (g *Gateway) SetAddr(i int, addr string) {
	g.mu.Lock()
	g.addrs[i] = addr
	g.down[i] = false
	g.mu.Unlock()
}

// addr returns shard i's current address.
func (g *Gateway) addr(i int) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addrs[i]
}

// markDown flips shard i's down flag; returns true if this call was the
// transition (the caller then fires OnShardDown exactly once).
func (g *Gateway) markDown(i int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.down[i] {
		return false
	}
	g.down[i] = true
	return true
}

// Serve accepts player connections until the listener closes.
func (g *Gateway) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go g.handle(conn)
	}
}

// upstream is one gateway→shard leg for a single player.
type upstream struct {
	shard int
	conn  *protocol.Conn
}

// dialShard logs the player into shard i and returns the leg plus the
// shard's LoginSuccess.
func (g *Gateway) dialShard(i int, name string) (*upstream, *protocol.LoginSuccess, error) {
	nc, err := net.DialTimeout("tcp", g.addr(i), g.cfg.DialTimeout)
	if err != nil {
		return nil, nil, err
	}
	c := protocol.NewConn(nc)
	if _, err := c.WritePacket(&protocol.Handshake{Version: protocol.ProtocolVersion}); err != nil {
		c.Close()
		return nil, nil, err
	}
	if _, err := c.WritePacket(&protocol.Login{Name: name}); err != nil {
		c.Close()
		return nil, nil, err
	}
	pkt, _, err := c.ReadPacket()
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	ls, ok := pkt.(*protocol.LoginSuccess)
	if !ok {
		c.Close()
		return nil, nil, fmt.Errorf("shard %d answered login with %#x", i, int32(pkt.ID()))
	}
	return &upstream{shard: i, conn: c}, ls, nil
}

// dialOwner keeps dialing the shard owning pos — following failover
// re-addressing and falling back to retries — until it answers or the
// client is gone.
func (g *Gateway) dialOwner(shard int, name string, clientGone <-chan struct{}) (*upstream, *protocol.LoginSuccess, error) {
	for {
		up, ls, err := g.dialShard(shard, name)
		if err == nil {
			return up, ls, nil
		}
		if g.markDown(shard) && g.cfg.OnShardDown != nil {
			go g.cfg.OnShardDown(shard)
		}
		select {
		case <-clientGone:
			return nil, nil, fmt.Errorf("client gone while shard %d down", shard)
		case <-time.After(g.cfg.RetryEvery):
		}
	}
}

func (g *Gateway) handle(raw net.Conn) {
	client := protocol.NewConn(raw)
	defer client.Close()

	// The client's handshake and login terminate at the gateway; each
	// upstream leg replays them.
	pkt, _, err := client.ReadPacket()
	if err != nil {
		return
	}
	hs, ok := pkt.(*protocol.Handshake)
	if !ok || hs.Version != protocol.ProtocolVersion {
		client.WritePacket(&protocol.Disconnect{Reason: "bad handshake"})
		return
	}
	pkt, _, err = client.ReadPacket()
	if err != nil {
		return
	}
	login, ok := pkt.(*protocol.Login)
	if !ok {
		client.WritePacket(&protocol.Disconnect{Reason: "login expected"})
		return
	}

	clientGone := make(chan struct{})
	defer close(clientGone)

	// Spawn placement is identical on every shard, so probe shard 0 (or
	// the first shard standing in for it), then move to the owner.
	up, ls, err := g.dialOwner(0, login.Name, clientGone)
	if err != nil {
		return
	}
	if owner := g.cfg.Map.ShardOfBlock(blockPos(ls.X, ls.Y, ls.Z)); owner != up.shard {
		up.conn.Close()
		if up, ls, err = g.dialOwner(owner, login.Name, clientGone); err != nil {
			return
		}
	}
	if _, err := client.WritePacket(ls); err != nil {
		up.conn.Close()
		return
	}

	// clientWrites serializes writes into the client socket: the
	// downstream pump changes identity on every re-route, and a torn frame
	// would desynchronize the client's stream forever.
	var clientWrites sync.Mutex
	var upMu sync.Mutex // guards up swaps during re-route

	// Downstream pump: decode whole frames off the upstream leg, re-emit
	// them to the client. Returns when its leg dies (re-route or shard
	// death).
	pump := func(u *upstream) {
		for {
			pkt, _, err := u.conn.ReadPacket()
			if err != nil {
				return
			}
			clientWrites.Lock()
			_, err = client.WritePacket(pkt)
			clientWrites.Unlock()
			if err != nil {
				return
			}
		}
	}
	go pump(up)

	// reroute replaces the upstream leg, replaying the login on the new
	// shard. The replacement LoginSuccess is swallowed: the client keeps
	// its original player ID, and the entity IDs it sees switch to the new
	// shard's — acceptable because clients treat entity IDs as opaque
	// per-session handles.
	reroute := func(dest int) error {
		next, _, err := g.dialOwner(dest, login.Name, clientGone)
		if err != nil {
			return err
		}
		upMu.Lock()
		up.conn.Close()
		up = next
		upMu.Unlock()
		go pump(next)
		return nil
	}

	// Upstream pump: forward client traffic, watching PlayerMove for
	// boundary crossings and re-routing when the owner changes.
	for {
		pkt, _, err := client.ReadPacket()
		if err != nil {
			return
		}
		if mv, ok := pkt.(*protocol.PlayerMove); ok {
			if dest := g.cfg.Map.ShardOfBlock(blockPos(mv.X, mv.Y, mv.Z)); dest != up.shard {
				if err := reroute(dest); err != nil {
					return
				}
			}
		}
		upMu.Lock()
		_, err = up.conn.WritePacket(pkt)
		shardIdx := up.shard
		upMu.Unlock()
		if err != nil {
			// The leg died under us: shard death, not a client action. Mark
			// it, let failover bring a standby up, and re-route to the same
			// index. The dropped packet is not replayed — client packets are
			// position updates and probes, superseded by the next ones.
			if g.markDown(shardIdx) && g.cfg.OnShardDown != nil {
				go g.cfg.OnShardDown(shardIdx)
			}
			if err := reroute(shardIdx); err != nil {
				return
			}
		}
	}
}

// blockPos converts continuous coordinates to the containing block.
func blockPos(x, y, z float64) world.Pos {
	return world.Pos{X: floori(x), Y: floori(y), Z: floori(z)}
}

func floori(f float64) int {
	i := int(f)
	if f < 0 && float64(i) != f {
		i--
	}
	return i
}
