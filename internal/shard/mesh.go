package shard

import (
	"fmt"
	"net"
	"time"
)

// ConnectMesh wires one shard process into the cluster's full session mesh
// over TCP: the shard accepts links from every higher-indexed peer on ln
// and dials every lower-indexed peer at peerAddrs[j], retrying until the
// peer process is listening. It returns once all Count()-1 links are
// attached to the endpoint, or fails after timeout. Call it before the
// tick loop starts — the endpoint's session table is not tick-safe to
// mutate afterwards.
func ConnectMesh(ep *Endpoint, ln net.Listener, peerAddrs []string, timeout time.Duration) error {
	n := ep.Map.Count()
	if len(peerAddrs) != n {
		return fmt.Errorf("shard: %d peer addrs for %d shards", len(peerAddrs), n)
	}
	if n == 1 {
		return nil
	}
	self := ep.Index
	deadline := time.Now().Add(timeout)

	type result struct {
		s   *Session
		err error
	}
	results := make(chan result, n-1)

	go func() {
		for i := self + 1; i < n; i++ {
			conn, err := ln.Accept()
			if err != nil {
				results <- result{err: err}
				return
			}
			s, err := AcceptSession(conn, self, n)
			results <- result{s: s, err: err}
		}
	}()

	for j := 0; j < self; j++ {
		go func(j int) {
			for {
				conn, err := net.DialTimeout("tcp", peerAddrs[j], time.Second)
				if err == nil {
					results <- result{s: NewSession(conn, self, j, n)}
					return
				}
				if time.Now().After(deadline) {
					results <- result{err: fmt.Errorf("shard: dialing peer %d: %w", j, err)}
					return
				}
				time.Sleep(100 * time.Millisecond)
			}
		}(j)
	}

	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for linked := 0; linked < n-1; linked++ {
		select {
		case r := <-results:
			if r.err != nil {
				return r.err
			}
			ep.SetSession(r.s.Peer(), r.s)
		case <-timer.C:
			return fmt.Errorf("shard %d: mesh incomplete after %v", self, timeout)
		}
	}
	return nil
}
