package shard

import (
	"fmt"
	"sort"

	"repro/internal/mlg/entity"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
)

// Endpoint is one shard's half of the inter-shard exchange: after every
// local tick it drains departing entities toward their new owners, mirrors
// changed boundary chunks and halo entity ghosts to its neighbours, and
// applies the symmetric traffic its peers produced. The exchange is split
// into a send phase and an apply phase so a lockstep driver (or the
// after-tick hook of a wall-clock shard) can fan all sends out before any
// shard blocks on a barrier — sends are async, so the two-phase shape is
// deadlock-free whatever the shard order.
type Endpoint struct {
	S     *server.Server
	Map   Map
	Index int

	sessions map[int]*Session
	// lastMirror remembers, per peer, the content fingerprint of each
	// boundary chunk as last mirrored; unchanged chunks are not resent.
	lastMirror map[int]map[world.ChunkPos]uint64
	// ghosts holds the halo entity mirrors most recently received from
	// each peer — display-only state, never simulated.
	ghosts  map[int][]protocol.EntityMirror
	scratch []byte
}

// NewEndpoint wraps a shard server for inter-shard exchange. Sessions are
// attached afterwards with SetSession as links come up.
func NewEndpoint(s *server.Server, m Map, index int) *Endpoint {
	return &Endpoint{
		S:          s,
		Map:        m,
		Index:      index,
		sessions:   make(map[int]*Session),
		lastMirror: make(map[int]map[world.ChunkPos]uint64),
		ghosts:     make(map[int][]protocol.EntityMirror),
	}
}

// SetSession attaches (or replaces) the link to a peer shard and forgets
// what was mirrored over the previous link, so a restored peer receives a
// full boundary resync on the next tick.
func (ep *Endpoint) SetSession(peer int, sess *Session) {
	ep.sessions[peer] = sess
	ep.lastMirror[peer] = nil
}

// DropSession detaches a dead peer: the exchange skips it until failover
// hands back a replacement via SetSession.
func (ep *Endpoint) DropSession(peer int) {
	if sess := ep.sessions[peer]; sess != nil {
		sess.Close()
	}
	delete(ep.sessions, peer)
	delete(ep.ghosts, peer)
}

// Peers returns the attached peer indices in ascending order.
func (ep *Endpoint) Peers() []int {
	peers := make([]int, 0, len(ep.sessions))
	for p := range ep.sessions {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	return peers
}

// Ghosts returns the halo entity mirrors last received from peer shards —
// entities standing just across a boundary, for client visibility only.
func (ep *Endpoint) Ghosts() []protocol.EntityMirror {
	var out []protocol.EntityMirror
	for _, p := range ep.Peers() {
		out = append(out, ep.ghosts[p]...)
	}
	return out
}

// SendTick runs the shard's outbound half for the tick that just finished:
// departure sweep, boundary chunk mirrors, halo ghosts, barrier. Handoffs
// whose destination link is down are re-inserted locally rather than lost —
// the entity freezes at the boundary until failover restores the peer.
func (ep *Endpoint) SendTick(tick int64) error {
	ents := ep.S.EntityWorld()
	outbound := make(map[int][]protocol.Packet)

	for _, h := range ents.DrainDepartures(ep.Map.Owns(ep.Index)) {
		dest := ep.Map.ShardOfBlock(h.Pos.BlockPos())
		if dest == ep.Index || ep.sessions[dest] == nil {
			ents.Arrive(h)
			continue
		}
		outbound[dest] = append(outbound[dest], &protocol.EntityHandoff{
			Kind: uint8(h.Kind),
			X:    h.Pos.X, Y: h.Pos.Y, Z: h.Pos.Z,
			VX: h.Vel.X, VY: h.Vel.Y, VZ: h.Vel.Z,
			OnGround:       h.OnGround,
			Age:            int32(h.Age),
			ItemType:       uint8(h.ItemType),
			Fuse:           int32(h.Fuse),
			SeedKey:        h.SeedKey,
			WanderCooldown: int32(h.WanderCooldown),
		})
	}

	w := ep.S.World()
	for _, cp := range w.LoadedChunks() {
		if ep.Map.ShardOf(cp) != ep.Index {
			continue
		}
		peers := ep.Map.HaloPeers(ep.Index, cp)
		if len(peers) == 0 {
			continue
		}
		c := w.ChunkIfLoaded(cp)
		if c == nil {
			continue
		}
		var sum uint64
		sum, ep.scratch = c.StateSum(ep.scratch)
		var rle []byte
		for _, peer := range peers {
			if ep.sessions[peer] == nil {
				continue
			}
			if ep.lastMirror[peer] == nil {
				ep.lastMirror[peer] = make(map[world.ChunkPos]uint64)
			}
			if ep.lastMirror[peer][cp] == sum {
				continue
			}
			if rle == nil {
				rle = c.AppendRLE(nil)
			}
			ep.lastMirror[peer][cp] = sum
			outbound[peer] = append(outbound[peer], &protocol.ChunkMirror{
				ChunkX: cp.X, ChunkZ: cp.Z, Data: rle,
			})
		}
	}

	ents.Entities(func(e *entity.Entity) {
		cp := world.ChunkPosAt(e.Pos.BlockPos())
		for _, peer := range ep.Map.HaloPeers(ep.Index, cp) {
			if ep.sessions[peer] == nil {
				continue
			}
			outbound[peer] = append(outbound[peer], &protocol.EntityMirror{
				Kind: uint8(e.Kind), X: e.Pos.X, Y: e.Pos.Y, Z: e.Pos.Z,
			})
		}
	})

	for _, peer := range ep.Peers() {
		if err := ep.sessions[peer].Send(tick, outbound[peer]); err != nil {
			return fmt.Errorf("shard %d → %d: %w", ep.Index, peer, err)
		}
	}
	return nil
}

// ApplyTick blocks until every attached peer has delivered its barrier for
// the tick, then applies the traffic in ascending peer order: chunk mirrors
// into the halo copies, handoffs into the entity store, ghosts into the
// display set. Deterministic given deterministic peers.
func (ep *Endpoint) ApplyTick(tick int64) error {
	ents := ep.S.EntityWorld()
	w := ep.S.World()
	for _, peer := range ep.Peers() {
		pkts, err := ep.sessions[peer].WaitBarrier(tick)
		if err != nil {
			return fmt.Errorf("shard %d ← %d: %w", ep.Index, peer, err)
		}
		var ghosts []protocol.EntityMirror
		for _, p := range pkts {
			switch p := p.(type) {
			case *protocol.ChunkMirror:
				cp := world.ChunkPos{X: p.ChunkX, Z: p.ChunkZ}
				if ep.Map.ShardOf(cp) == ep.Index {
					return fmt.Errorf("shard %d ← %d: mirror for owned chunk %v", ep.Index, peer, cp)
				}
				if err := w.ApplyMirror(cp, p.Data); err != nil {
					return fmt.Errorf("shard %d ← %d: mirror %v: %w", ep.Index, peer, cp, err)
				}
			case *protocol.EntityHandoff:
				ents.Arrive(entity.Handoff{
					Kind:           entity.Type(p.Kind),
					Pos:            entity.Vec3{X: p.X, Y: p.Y, Z: p.Z},
					Vel:            entity.Vec3{X: p.VX, Y: p.VY, Z: p.VZ},
					OnGround:       p.OnGround,
					Age:            int(p.Age),
					ItemType:       world.BlockID(p.ItemType),
					Fuse:           int(p.Fuse),
					SeedKey:        p.SeedKey,
					WanderCooldown: int(p.WanderCooldown),
				})
			case *protocol.EntityMirror:
				ghosts = append(ghosts, *p)
			default:
				return fmt.Errorf("shard %d ← %d: unexpected packet %#x", ep.Index, peer, int32(p.ID()))
			}
		}
		ep.ghosts[peer] = ghosts
	}
	return nil
}

// Exchange runs both halves back to back — the wall-clock shard's
// after-tick hook, where every shard sends before it waits.
func (ep *Endpoint) Exchange(tick int64) error {
	if err := ep.SendTick(tick); err != nil {
		return err
	}
	return ep.ApplyTick(tick)
}
