package shard

import (
	"fmt"
	"net"
	"sort"

	"repro/internal/mlg"
	"repro/internal/mlg/persist"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
)

// A cluster is drivable wherever a single server is.
var _ mlg.Node = (*Cluster)(nil)

// Cluster drives N shard servers in lockstep inside one process: every
// shard ticks the same tick number, then all exchange traffic flows, then
// the next tick begins. The inter-shard sessions run over in-process pipes
// but through the full packet codec and async writer queues, so the
// lockstep cluster exercises the identical wire path a multi-process
// deployment uses — it is the reference implementation the equivalence and
// failover suites pin, and it satisfies mlg.Node so harnesses drive it
// exactly like a single server.
type Cluster struct {
	cfg    ClusterConfig
	shards []*server.Server
	eps    []*Endpoint
	dead   []bool
	tick   int64
	err    error
}

// ClusterConfig assembles a cluster.
type ClusterConfig struct {
	// Map is the chunk-range shard assignment; Map.Count() shards are
	// built.
	Map Map
	// Build constructs one bare shard server with the given ownership
	// predicate wired into its ShardConfig. Called again during failover,
	// so it must not install workload state — Install does that.
	Build func(i int, owns func(world.ChunkPos) bool) (*server.Server, error)
	// Install populates a freshly built shard with the workload. Skipped
	// on failover restores, which recover state from the snapshot instead.
	Install func(s *server.Server, i int) error
	// Stores, when non-nil, holds the per-shard snapshot stores failover
	// restores from (Stores[i] belongs to shard i). The shards themselves
	// snapshot through their own PersistConfig — Build wires that.
	Stores []*persist.Store
	// Hooks is the cluster-level hook set; AfterTick fires once per
	// cluster tick with the merged record.
	Hooks server.Hooks
}

// NewCluster builds the shards, installs the workload on each, and links
// every pair with an in-process session.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Map.Count()
	c := &Cluster{
		cfg:    cfg,
		shards: make([]*server.Server, n),
		eps:    make([]*Endpoint, n),
		dead:   make([]bool, n),
	}
	for i := 0; i < n; i++ {
		s, err := cfg.Build(i, cfg.Map.Owns(i))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if cfg.Install != nil {
			if err := cfg.Install(s, i); err != nil {
				return nil, fmt.Errorf("shard %d install: %w", i, err)
			}
		}
		c.shards[i] = s
		c.eps[i] = NewEndpoint(s, cfg.Map, i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.link(i, j)
		}
	}
	return c, nil
}

// link joins shards i and j with a fresh in-process session pair.
func (c *Cluster) link(i, j int) {
	n := c.cfg.Map.Count()
	a, b := net.Pipe()
	c.eps[i].SetSession(j, NewSession(a, i, j, n))
	c.eps[j].SetSession(i, NewSession(b, j, i, n))
}

// Shard returns shard i's server (nil while the shard is dead).
func (c *Cluster) Shard(i int) *server.Server {
	if c.dead[i] {
		return nil
	}
	return c.shards[i]
}

// Endpoint returns shard i's exchange endpoint (nil while dead), for
// inspecting ghosts and sessions in tests.
func (c *Cluster) Endpoint(i int) *Endpoint {
	if c.dead[i] {
		return nil
	}
	return c.eps[i]
}

// Map returns the cluster's shard map.
func (c *Cluster) Map() Map { return c.cfg.Map }

// Err returns the first exchange error the cluster hit, if any.
func (c *Cluster) Err() error { return c.err }

// setErr records the first error.
func (c *Cluster) setErr(err error) {
	if c.err == nil && err != nil {
		c.err = err
	}
}

// Tick advances every live shard one tick in lockstep and returns the
// merged record: counters summed across shards (the quantities a
// single-server run must match), durations the per-shard maximum.
func (c *Cluster) Tick() server.TickRecord {
	var recs []server.TickRecord
	for i, s := range c.shards {
		if !c.dead[i] {
			recs = append(recs, s.Tick())
		}
	}
	if len(recs) == 0 {
		return server.TickRecord{}
	}
	tick := recs[0].Tick
	c.tick = tick
	for i := range c.shards {
		if !c.dead[i] {
			c.setErr(c.eps[i].SendTick(tick))
		}
	}
	for i := range c.shards {
		if !c.dead[i] {
			c.setErr(c.eps[i].ApplyTick(tick))
		}
	}
	merged := mergeRecords(recs)
	if c.cfg.Hooks.AfterTick != nil {
		c.cfg.Hooks.AfterTick(merged)
	}
	return merged
}

func mergeRecords(recs []server.TickRecord) server.TickRecord {
	m := recs[0]
	for _, r := range recs[1:] {
		if r.Dur > m.Dur {
			m.Dur = r.Dur
		}
		if r.WaitBefore > m.WaitBefore {
			m.WaitBefore = r.WaitBefore
		}
		if r.WaitAfter > m.WaitAfter {
			m.WaitAfter = r.WaitAfter
		}
		m.Players += r.Players
		m.Entities += r.Entities
		m.Backlog += r.Backlog
		m.Crashed = m.Crashed || r.Crashed
		m.Sim = m.Sim.Add(r.Sim)
		m.Ent = m.Ent.Add(r.Ent)
		m.SimRegions += r.SimRegions
		m.EntRegions += r.EntRegions
		m.SimParallel = m.SimParallel || r.SimParallel
		m.EntParallel = m.EntParallel || r.EntParallel
		m.NetDrops += r.NetDrops
		m.NetKeyframes += r.NetKeyframes
		m.NetQueuedBytes += r.NetQueuedBytes
	}
	return m
}

// Connect joins a player on the shard owning their spawn position. The
// spawn point is computed by the first live shard (spawn logic is
// identical everywhere), and the connection moves to the owner when that
// is a different shard — the same probe-then-route dance the TCP gateway
// performs with LoginSuccess.
func (c *Cluster) Connect(name string) *server.Player {
	first := -1
	for i := range c.shards {
		if !c.dead[i] {
			first = i
			break
		}
	}
	if first < 0 {
		return nil
	}
	p := c.shards[first].Connect(name)
	owner := c.cfg.Map.ShardOfBlock(p.Pos.BlockPos())
	if owner == first || c.dead[owner] {
		return p
	}
	c.shards[first].Disconnect(p.ID)
	return c.shards[owner].Connect(name)
}

// Snapshot returns the cluster's merged state fingerprint. Population and
// counters are summed; EntitySum is the sum of the shards' order-agnostic
// entity state sums (a different basis than a single server's ID-ordered
// hash — cluster snapshots compare against cluster snapshots); Chunks
// holds every shard's owned chunks in world iteration order, so the merged
// set matches a single server's ChunkStates over the same loaded area.
func (c *Cluster) Snapshot() server.Snapshot {
	var snap server.Snapshot
	snap.Tick = c.tick
	for i, s := range c.shards {
		if c.dead[i] {
			continue
		}
		ss := s.Snapshot()
		snap.Players += ss.Players
		snap.Entities += ss.Entities
		snap.Mobs += ss.Mobs
		snap.Items += ss.Items
		snap.TNT += ss.TNT
		snap.ItemsCollected += ss.ItemsCollected
		snap.EntitySum += s.EntityWorld().StateSum()
		for _, cs := range ss.Chunks {
			if c.cfg.Map.ShardOf(cs.Pos) == i {
				snap.Chunks = append(snap.Chunks, cs)
			}
		}
	}
	sort.Slice(snap.Chunks, func(a, b int) bool {
		ca, cb := snap.Chunks[a].Pos, snap.Chunks[b].Pos
		if ca.Z != cb.Z {
			return ca.Z < cb.Z
		}
		return ca.X < cb.X
	})
	return snap
}

// Hooks returns the cluster-level hook set.
func (c *Cluster) Hooks() server.Hooks { return c.cfg.Hooks }

// KillShard simulates a shard process dying mid-run: the server object is
// abandoned unflushed and every peer drops its link. Entities that try to
// hand off toward the dead range freeze at the boundary (their current
// owner keeps simulating them) until RestoreShard brings a standby back.
func (c *Cluster) KillShard(i int) {
	if c.dead[i] {
		return
	}
	c.dead[i] = true
	for j := range c.shards {
		if j != i && !c.dead[j] {
			c.eps[j].DropSession(i)
		}
	}
	for _, p := range c.eps[i].Peers() {
		c.eps[i].DropSession(p)
	}
}

// RestoreShard brings a standby up for a dead shard: build a bare server,
// restore the newest good snapshot from the shard's store, replay the gap
// to the cluster's current tick input-free (the Crash scenario contract:
// gap ticks must not have depended on client inputs or cross-boundary
// traffic), then relink every live peer — which resets their mirror
// memory, so the next tick carries a full boundary resync.
func (c *Cluster) RestoreShard(i int) error {
	if !c.dead[i] {
		return fmt.Errorf("shard %d is not dead", i)
	}
	if c.cfg.Stores == nil || c.cfg.Stores[i] == nil {
		return fmt.Errorf("shard %d has no snapshot store", i)
	}
	s, err := c.cfg.Build(i, c.cfg.Map.Owns(i))
	if err != nil {
		return err
	}
	res, err := c.cfg.Stores[i].LoadLatest()
	if err != nil {
		return err
	}
	if err := s.RestoreSnapshot(res); err != nil {
		return err
	}
	for t := res.Tick; t < c.tick; t++ {
		s.Tick()
	}
	c.shards[i] = s
	c.eps[i] = NewEndpoint(s, c.cfg.Map, i)
	c.dead[i] = false
	for j := range c.shards {
		if j != i && !c.dead[j] {
			c.link(min(i, j), max(i, j))
		}
	}
	return nil
}
