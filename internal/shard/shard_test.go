package shard_test

// The sharding suite pins the contract the shard package makes: a cluster
// of N chunk-range shards is observationally equivalent to one server
// owning the whole world, for every entity that never crosses a boundary —
// and entities that do cross arrive on the new owner with their state
// intact. The equivalence matrix runs the Farm workload at Scale 2, whose
// two construct districts sit ~500 blocks apart, so a split at chunk X=16
// gives each shard one fully active district: both shards spawn, path,
// collect and despawn real traffic while the per-tick counters (summed
// across shards) must stay bit-identical to the single-shard run.

import (
	"net"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/entity"
	"repro/internal/mlg/persist"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
	"repro/internal/shard"
	"repro/internal/workload"
)

var epoch = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

// equivSplit puts Farm Scale 2's district 0 (chunks ~-2..3) on shard 0 and
// district 1 (chunks ~30..35) on shard 1.
const equivSplit = 16

// buildFn returns a ClusterConfig.Build closure for the given flavor and
// workload; every shard gets its own world instance with the same seed.
func buildFn(f server.Flavor, k workload.Kind, m shard.Map, stores []*persist.Store) func(int, func(world.ChunkPos) bool) (*server.Server, error) {
	return func(i int, owns func(world.ChunkPos) bool) (*server.Server, error) {
		w := workload.NewWorld(k, world.PaperControlSeed)
		cfg := server.DefaultConfig(f)
		cfg.Sim.Seed = 1234
		cfg.Shard = server.ShardConfig{Count: m.Count(), Index: i, Owns: owns}
		if stores != nil {
			cfg.Persist = server.PersistConfig{Store: stores[i], Every: 10, Sync: true}
		}
		return server.New(w, cfg, env.NewMachine(env.DAS5SixteenCore, 1), env.NewVirtualClock(epoch)), nil
	}
}

// refServer builds the single-shard reference: one server owning every
// chunk, but under the same ShardConfig regime as the cluster's members
// (ownership predicate installed, natural spawning off), so the comparison
// isolates the partition itself rather than config differences.
func refServer(t testing.TB, f server.Flavor, k workload.Kind, spec *workload.Spec) *server.Server {
	one := shard.Map{}
	s, err := buildFn(f, k, one, nil)(0, one.Owns(0))
	if err != nil {
		t.Fatal(err)
	}
	if spec != nil {
		if err := workload.Install(s, *spec); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func newFarmCluster(t testing.TB, f server.Flavor, spec workload.Spec, stores []*persist.Store) *shard.Cluster {
	m := shard.Map{Splits: []int32{equivSplit}}
	c, err := shard.NewCluster(shard.ClusterConfig{
		Map:   m,
		Build: buildFn(f, workload.Farm, m, stores),
		Install: func(s *server.Server, i int) error {
			return workload.Install(s, spec)
		},
		Stores: stores,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sameChunks compares chunk fingerprints on (Pos, NonAir, Sum). Revision is
// a cache key, not content (see world.ChunkState), and a restored shard's
// revisions legitimately differ from a never-killed twin's.
func sameChunks(t *testing.T, what string, a, b []world.ChunkState) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d chunks vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || a[i].NonAir != b[i].NonAir || a[i].Sum != b[i].Sum {
			t.Fatalf("%s: chunk %d diverged: %+v vs %+v", what, i, a[i], b[i])
		}
	}
}

func TestMapRouting(t *testing.T) {
	m := shard.Map{Splits: []int32{0, 10}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Count() != 3 {
		t.Fatalf("Count() = %d, want 3", m.Count())
	}
	for _, tc := range []struct {
		x    int32
		want int
	}{{-100, 0}, {-1, 0}, {0, 1}, {9, 1}, {10, 2}, {100, 2}} {
		if got := m.ShardOf(world.ChunkPos{X: tc.x}); got != tc.want {
			t.Errorf("ShardOf(chunk %d) = %d, want %d", tc.x, got, tc.want)
		}
	}
	// Block-level routing: chunk 0 starts at block 0, chunk -1 at block -16.
	if got := m.ShardOfBlock(world.Pos{X: -1}); got != 0 {
		t.Errorf("ShardOfBlock(-1) = %d, want 0", got)
	}
	if got := m.ShardOfBlock(world.Pos{X: 0}); got != 1 {
		t.Errorf("ShardOfBlock(0) = %d, want 1", got)
	}
	// Halo membership: shard 1 owns chunks 0..9; chunk 0 borders shard 0,
	// chunk 9 borders shard 2, chunk 5 borders nobody.
	if got := m.HaloPeers(1, world.ChunkPos{X: 0}); len(got) != 1 || got[0] != 0 {
		t.Errorf("HaloPeers(1, chunk 0) = %v, want [0]", got)
	}
	if got := m.HaloPeers(1, world.ChunkPos{X: 9}); len(got) != 1 || got[0] != 2 {
		t.Errorf("HaloPeers(1, chunk 9) = %v, want [2]", got)
	}
	if got := m.HaloPeers(1, world.ChunkPos{X: 5}); len(got) != 0 {
		t.Errorf("HaloPeers(1, chunk 5) = %v, want none", got)
	}
	if err := (shard.Map{Splits: []int32{5, 5}}).Validate(); err == nil {
		t.Error("Validate accepted non-ascending splits")
	}
}

func TestSessionBarrier(t *testing.T) {
	a, b := net.Pipe()
	sa := shard.NewSession(a, 0, 1, 2)
	sb := shard.NewSession(b, 1, 0, 2)
	defer sa.Close()
	defer sb.Close()

	out := []protocol.Packet{
		&protocol.EntityHandoff{Kind: 2, X: 1, SeedKey: 42},
		&protocol.EntityMirror{Kind: 1, X: 3, Y: 4, Z: 5},
	}
	if err := sa.Send(7, out); err != nil {
		t.Fatal(err)
	}
	if err := sb.Send(7, nil); err != nil {
		t.Fatal(err)
	}
	got, err := sb.WaitBarrier(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d packets, want 2", len(got))
	}
	h, ok := got[0].(*protocol.EntityHandoff)
	if !ok || h.SeedKey != 42 {
		t.Fatalf("packet 0 = %#v, want the handoff first (send order)", got[0])
	}
	empty, err := sa.WaitBarrier(7)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty barrier: %v packets, err %v", len(empty), err)
	}

	// Ticks are independent buckets: a later tick's barrier does not
	// satisfy a wait for an earlier one that never arrives.
	if err := sa.Send(9, nil); err != nil {
		t.Fatal(err)
	}
	sb.WaitTimeout = 50 * time.Millisecond
	if _, err := sb.WaitBarrier(8); err == nil {
		t.Fatal("WaitBarrier(8) succeeded without a barrier for tick 8")
	}
}

func TestSessionHelloMismatch(t *testing.T) {
	a, b := net.Pipe()
	sa := shard.NewSession(a, 0, 1, 2)
	sb := shard.NewSession(b, 1, 0, 3) // wrong cluster size
	defer sa.Close()
	defer sb.Close()
	sa.WaitTimeout = time.Second
	if _, err := sa.WaitBarrier(1); err == nil {
		t.Fatal("session accepted a peer from a different cluster size")
	}
}

// TestClusterEquivalence is the tentpole differential: a 2-shard cluster
// must produce, tick for tick, the same summed simulation and entity
// counters as the single-shard reference, the same entity state sum, and
// the same terrain fingerprints — for a workload whose entities never cross
// the shard boundary. Both shards host a live construct district, so the
// equality is between two genuinely active partitions, not one busy shard
// plus a spectator.
func TestClusterEquivalence(t *testing.T) {
	spec := workload.Farm.DefaultSpec()
	spec.Scale = 2
	for _, f := range server.Flavors() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			single := refServer(t, f, workload.Farm, &spec)
			cluster := newFarmCluster(t, f, spec, nil)
			single.Connect("eq")
			cluster.Connect("eq")

			for i := 0; i < 90; i++ {
				rs := single.Tick()
				rc := cluster.Tick()
				if err := cluster.Err(); err != nil {
					t.Fatalf("tick %d: exchange fault: %v", i+1, err)
				}
				if rs.Sim != rc.Sim {
					t.Fatalf("tick %d: sim counters diverged\nsingle:  %+v\ncluster: %+v", i+1, rs.Sim, rc.Sim)
				}
				if rs.Ent != rc.Ent {
					t.Fatalf("tick %d: entity counters diverged\nsingle:  %+v\ncluster: %+v", i+1, rs.Ent, rc.Ent)
				}
				if rs.Entities != rc.Entities {
					t.Fatalf("tick %d: entity count %d vs %d", i+1, rs.Entities, rc.Entities)
				}
				sum := cluster.Shard(0).EntityWorld().StateSum() + cluster.Shard(1).EntityWorld().StateSum()
				if ss := single.EntityWorld().StateSum(); ss != sum {
					t.Fatalf("tick %d: entity state sum %#x vs cluster %#x", i+1, ss, sum)
				}
			}

			// Both shards must have hosted real entity traffic: a vacuous
			// equality (one empty shard) would not pin the partition.
			for i := 0; i < 2; i++ {
				if n := cluster.Shard(i).EntityWorld().Count(); n == 0 {
					t.Fatalf("shard %d hosted no entities; the differential is vacuous", i)
				}
			}

			ss, cs := single.Snapshot(), cluster.Snapshot()
			if ss.Players != cs.Players || ss.Entities != cs.Entities || ss.Mobs != cs.Mobs ||
				ss.Items != cs.Items || ss.TNT != cs.TNT || ss.ItemsCollected != cs.ItemsCollected {
				t.Fatalf("final populations diverged\nsingle:  %+v\ncluster: %+v", ss, cs)
			}
			sameChunks(t, "final terrain", ss.Chunks, cs.Chunks)
		})
	}
}

// TestClusterHandoff pushes an entity across the shard boundary and pins
// the state-intact contract: a twin single-shard server runs the identical
// scenario, and the cluster's summed entity state fingerprint — which
// covers position, velocity, age, spawn identity and AI timers — must
// match the twin's on every tick before, during and after the migration.
func TestClusterHandoff(t *testing.T) {
	m := shard.Map{Splits: []int32{equivSplit}}
	cluster, err := shard.NewCluster(shard.ClusterConfig{
		Map:   m,
		Build: buildFn(server.Vanilla, workload.Control, m, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	single := refServer(t, server.Vanilla, workload.Control, nil)

	// One item just inside shard 0, flung toward shard 1's range.
	boundaryX := equivSplit * world.ChunkSize
	spawn := world.Pos{X: boundaryX - 2, Y: 40, Z: 8}
	kick := func(ents *entity.World) {
		ents.SpawnItem(spawn, world.Stone)
		ents.Entities(func(e *entity.Entity) { e.Vel = entity.Vec3{X: 6} })
	}
	kick(single.EntityWorld())
	kick(cluster.Shard(0).EntityWorld())

	crossedAt := -1
	for i := 0; i < 12; i++ {
		single.Tick()
		cluster.Tick()
		if err := cluster.Err(); err != nil {
			t.Fatalf("tick %d: exchange fault: %v", i+1, err)
		}
		n0 := cluster.Shard(0).EntityWorld().Count()
		n1 := cluster.Shard(1).EntityWorld().Count()
		if n0+n1 != 1 {
			t.Fatalf("tick %d: item lost in transit: %d on shard 0, %d on shard 1", i+1, n0, n1)
		}
		if crossedAt < 0 && n1 == 1 {
			crossedAt = i + 1
		}
		sum := cluster.Shard(0).EntityWorld().StateSum() + cluster.Shard(1).EntityWorld().StateSum()
		if ss := single.EntityWorld().StateSum(); ss != sum {
			t.Fatalf("tick %d: entity state diverged across the handoff: single %#x, cluster %#x", i+1, ss, sum)
		}
	}
	if crossedAt < 0 {
		t.Fatal("item never crossed the shard boundary")
	}

	// The arrival kept the item simulating as an item on the new owner.
	found := 0
	cluster.Shard(1).EntityWorld().Entities(func(e *entity.Entity) {
		found++
		if e.Kind != entity.Item || e.ItemType != world.Stone {
			t.Fatalf("arrived entity is %v/%v, want Item/Stone", e.Kind, e.ItemType)
		}
		if bx := e.Pos.BlockPos().X; bx < boundaryX {
			t.Fatalf("arrived entity at block X=%d, still left of the boundary %d", bx, boundaryX)
		}
	})
	if found != 1 {
		t.Fatalf("shard 1 holds %d entities, want 1", found)
	}
	t.Logf("handoff at tick %d", crossedAt)
}

// TestClusterMirror pins the halo protocol: a terrain change in a boundary
// chunk appears in the neighbour's halo copy after one exchange, and a
// subsequent change propagates too (the mirror dedup must not swallow it).
func TestClusterMirror(t *testing.T) {
	m := shard.Map{Splits: []int32{equivSplit}}
	cluster, err := shard.NewCluster(shard.ClusterConfig{
		Map:   m,
		Build: buildFn(server.Vanilla, workload.Control, m, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A block in shard 1's first owned chunk column (chunk X=16), which is
	// inside the halo shard 0 must see.
	p := world.Pos{X: equivSplit*world.ChunkSize + 2, Y: 10, Z: 3}
	cluster.Shard(1).World().SetBlock(p, world.B(world.Stone))
	cluster.Tick()
	if err := cluster.Err(); err != nil {
		t.Fatal(err)
	}
	if got := cluster.Shard(0).World().Block(p).ID; got != world.Stone {
		t.Fatalf("halo copy holds %v after exchange, want Stone", got)
	}
	cluster.Shard(1).World().SetBlock(p, world.B(world.Air))
	cluster.Tick()
	if got := cluster.Shard(0).World().Block(p).ID; got != world.Air {
		t.Fatalf("halo copy holds %v after second exchange, want Air", got)
	}

	// Halo entity ghosts: an entity standing in the boundary chunk shows up
	// in the neighbour's display-only ghost set after the next exchange.
	cluster.Shard(1).EntityWorld().SpawnItem(p.Up(), world.Stone)
	cluster.Tick()
	ghosts := cluster.Endpoint(0).Ghosts()
	if len(ghosts) != 1 || entity.Type(ghosts[0].Kind) != entity.Item {
		t.Fatalf("ghosts = %+v, want one item mirror", ghosts)
	}
}

// TestClusterFailover is the recovery differential: a cluster that loses a
// shard mid-run — and brings a standby back from the shard's newest
// snapshot, replaying the gap — must re-converge to lockstep equality with
// a twin cluster that never crashed. The boundary is quiescent around the
// kill window (Farm's districts sit far from the split), which is exactly
// the input-free-replay contract RestoreShard documents.
func TestClusterFailover(t *testing.T) {
	spec := workload.Farm.DefaultSpec()
	spec.Scale = 2

	stores := make([]*persist.Store, 2)
	for i := range stores {
		st, err := persist.NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	control := newFarmCluster(t, server.Vanilla, spec, nil)
	subject := newFarmCluster(t, server.Vanilla, spec, stores)

	compare := func(tick int, rc, rs server.TickRecord) {
		t.Helper()
		if rc.Sim != rs.Sim || rc.Ent != rs.Ent || rc.Entities != rs.Entities {
			t.Fatalf("tick %d: records diverged\ncontrol: %+v %+v\nsubject: %+v %+v",
				tick, rc.Sim, rc.Ent, rs.Sim, rs.Ent)
		}
	}

	const killAfter, deadTicks, total = 37, 2, 60
	for i := 0; i < killAfter; i++ {
		compare(i+1, control.Tick(), subject.Tick())
	}
	subject.KillShard(1)
	if subject.Shard(1) != nil || subject.Endpoint(1) != nil {
		t.Fatal("killed shard still reachable")
	}
	// The cluster keeps ticking with the survivor while the shard is down;
	// the control ticks alongside to stay tick-aligned.
	for i := 0; i < deadTicks; i++ {
		control.Tick()
		subject.Tick()
	}
	if err := subject.RestoreShard(1); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for i := killAfter + deadTicks; i < total; i++ {
		compare(i+1, control.Tick(), subject.Tick())
	}
	if err := subject.Err(); err != nil {
		t.Fatalf("exchange fault: %v", err)
	}

	cs, ss := control.Snapshot(), subject.Snapshot()
	if cs.Tick != ss.Tick || cs.Entities != ss.Entities || cs.Mobs != ss.Mobs ||
		cs.Items != ss.Items || cs.ItemsCollected != ss.ItemsCollected || cs.EntitySum != ss.EntitySum {
		t.Fatalf("post-failover state diverged\ncontrol: %+v\nsubject: %+v", cs, ss)
	}
	sameChunks(t, "post-failover terrain", cs.Chunks, ss.Chunks)
}

// BenchmarkShardHandoff measures the full inter-shard migration path: the
// departure sweep on the old owner, the wire round trip through the packet
// codec and async writer, and the arrival insert on the new owner — 64
// entities per operation.
func BenchmarkShardHandoff(b *testing.B) {
	m := shard.Map{Splits: []int32{equivSplit}}
	cluster, err := shard.NewCluster(shard.ClusterConfig{
		Map:   m,
		Build: buildFn(server.Vanilla, workload.Control, m, nil),
	})
	if err != nil {
		b.Fatal(err)
	}
	ents0 := cluster.Shard(0).EntityWorld()
	ents1 := cluster.Shard(1).EntityWorld()
	ep0, ep1 := cluster.Endpoint(0), cluster.Endpoint(1)
	// Deep inside shard 1's range, clear of the halo, so the bench isolates
	// handoffs from mirror traffic.
	dst := world.Pos{X: (equivSplit + 14) * world.ChunkSize, Y: 40, Z: 8}
	everything := func(world.ChunkPos) bool { return false }

	const batch = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			ents0.SpawnItem(dst, world.Stone)
		}
		tick := int64(i + 1)
		if err := ep0.SendTick(tick); err != nil {
			b.Fatal(err)
		}
		if err := ep1.SendTick(tick); err != nil {
			b.Fatal(err)
		}
		if err := ep0.ApplyTick(tick); err != nil {
			b.Fatal(err)
		}
		if err := ep1.ApplyTick(tick); err != nil {
			b.Fatal(err)
		}
		if n := ents1.Count(); n != batch {
			b.Fatalf("op %d: %d arrivals, want %d", i, n, batch)
		}
		ents1.DrainDepartures(everything) // reset for the next op
	}
	b.ReportMetric(batch, "handoffs/op")
}
