package scenario

import (
	"fmt"
	"strings"

	"repro/internal/mlg/persist"
	"repro/internal/mlg/server"
)

// Crash-and-restart steps: the persistence layer under the model checker.
//
// A Crash step kills a twin mid-run — the server object is abandoned where
// it stands, nothing is flushed — and rebuilds it from its snapshot
// directory, exactly the way cmd/mlgserver restarts after a power cut. The
// reference twin (Index 0) never crashes, so the lockstep comparison after
// the step proves the restart is output-invisible: the restored twin must
// produce bit-identical tick records and state fingerprints versus the twin
// that never died.
//
// Corruption modes additionally damage the newest snapshot before the
// restart (torn tail, flipped bit, or a fault injected into an in-flight
// write), forcing the store's fallback path: the twin must come back from
// the previous good snapshot and re-converge by replaying the gap.

// CrashMode selects what the simulated power cut does to the snapshot
// directory.
type CrashMode int

const (
	// CrashClean leaves every snapshot intact: restart restores the newest
	// one. With SnapshotEvery=1 the restore lands on the crash tick and no
	// replay is needed, so CrashClean is safe anywhere in a script.
	CrashClean CrashMode = iota
	// CrashTruncateLatest tears the tail off the newest snapshot file, as a
	// crash mid-write would. Restart must fall back to the previous good
	// snapshot and replay the gap — the replayed ticks re-run without
	// client inputs, so corruption modes belong after input-free ticks
	// (Quiet, or any step whose final tick enqueues nothing).
	CrashTruncateLatest
	// CrashBitFlipLatest flips one bit mid-file (storage rot); detection is
	// the section checksum rather than a short read.
	CrashBitFlipLatest
	// CrashMidSnapshot injects the fault into an in-flight snapshot write:
	// the store's fault point truncates the bytes as they land, so the
	// newest file on disk is torn the way a kill -9 between write and fsync
	// would leave it.
	CrashMidSnapshot
)

func (m CrashMode) String() string {
	switch m {
	case CrashClean:
		return "clean"
	case CrashTruncateLatest:
		return "truncate-latest"
	case CrashBitFlipLatest:
		return "bitflip-latest"
	case CrashMidSnapshot:
		return "mid-snapshot"
	}
	return fmt.Sprintf("mode%d", int(m))
}

// Crash kills every non-reference twin with the given corruption mode,
// restarts it from its snapshot directory, and runs ticks ticks of lockstep
// comparison against the never-crashed reference. Requires
// Scenario.SnapshotEvery > 0.
func Crash(mode CrashMode, ticks int) Step {
	return Step{
		Name:  fmt.Sprintf("crash(%s)", mode),
		Ticks: ticks,
		Before: func(tw *Twin) {
			if err := tw.CrashRestart(mode); err != nil {
				tw.fail = fmt.Sprintf("crash-restart (%s): %v", mode, err)
			}
		},
	}
}

// CrashRestart simulates a crash of this twin and restores it from its
// snapshot store. The reference twin (Index 0) is never crashed: it is the
// uninterrupted run the restored twins are compared against.
func (tw *Twin) CrashRestart(mode CrashMode) error {
	if tw.Index == 0 {
		return nil
	}
	if tw.store == nil {
		return fmt.Errorf("scenario has no snapshot store (set Scenario.SnapshotEvery)")
	}
	if len(tw.Records) == 0 {
		return fmt.Errorf("cannot crash before the first tick")
	}
	crashTick := tw.Records[len(tw.Records)-1].Tick

	switch mode {
	case CrashTruncateLatest:
		if err := persist.CorruptFile(tw.store.LatestPath(), persist.CorruptTruncate); err != nil {
			return err
		}
	case CrashBitFlipLatest:
		if err := persist.CorruptFile(tw.store.LatestPath(), persist.CorruptBitFlip); err != nil {
			return err
		}
	case CrashMidSnapshot:
		// Arm the store's fault point and take one more snapshot: the write
		// tears in flight, leaving a truncated newest file.
		tw.store.Fault = func(_ string, data []byte) []byte { return data[:len(data)/3] }
		tw.snap.Snapshot()
		tw.store.Fault = nil
	}

	// The old server dies here: no flush, no goodbye. Build the replacement
	// the way a fresh process start would — same config, bare world — and
	// restore the newest snapshot the store still trusts.
	s, clock := tw.rebuild(tw.Workers)
	res, err := tw.store.LoadLatest()
	if err != nil {
		return err
	}
	if err := s.RestoreSnapshot(res); err != nil {
		return err
	}

	// Re-converge: replay the gap between the restore point and the crash
	// tick. These ticks already happened (they are in tw.Records), so they
	// are not recorded again; they re-run input-free, which only matches the
	// original run when the gap ticks had no client inputs — the contract
	// corruption modes impose on scripts.
	for t := res.Tick; t < crashTick; t++ {
		s.Tick()
	}

	tw.S, tw.Clock = s, clock
	tw.snap = server.NewSnapshotter(s, tw.store, tw.snapCfg)
	// The rebuilt server inherited the twin's delivery hook through its
	// construction-time config; drop anything the replay ticks recorded.
	tw.deliveries = tw.deliveries[:0]

	// Scenario-connected players survive in the snapshot; recover their IDs
	// (join order is persisted) so later steps keep addressing them.
	tw.players = tw.players[:0]
	for _, id := range s.PlayerIDs() {
		if p := s.PlayerByID(id); p != nil && strings.HasPrefix(p.Name, "sc-") {
			tw.players = append(tw.players, id)
		}
	}
	return nil
}
