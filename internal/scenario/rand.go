package scenario

import (
	"fmt"
	"time"

	"repro/internal/mlg/server"
	"repro/internal/workload"
)

// rng is a splitmix64 stream: tiny, fast, and fully determined by its seed,
// so a scenario is reproduced exactly by re-running Generate with the seed
// printed on failure.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// pick returns a value in [lo, hi].
func (r *rng) pick(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// Generate derives a random scenario from seed: a workload, a flavor, and
// 6–14 steps drawn from the full step vocabulary, starting with a join wave
// and capped at roughly a hundred ticks. Identical seeds produce identical
// scenarios — the harness's model-checking loop runs Generate over fresh
// seeds and replays failures from the printed one.
func Generate(seed uint64) *Scenario {
	r := rng{s: seed}
	kinds := []workload.Kind{workload.Control, workload.Farm, workload.Lag}
	flavors := server.Flavors()

	sc := &Scenario{
		Name:     fmt.Sprintf("random-%#x", seed),
		Workload: kinds[r.intn(len(kinds))],
		Scale:    r.pick(1, 2),
		Flavor:   flavors[r.intn(len(flavors))],
		Seed:     int64(seed%0x7fffffff) + 1,
		Warmup:   r.pick(5, 20),
	}
	if sc.Workload == workload.Lag {
		// The Lag workload overloads the tick budget by design; generated
		// scenarios assert equivalence, so its duration/ISR bounds go slack.
		sc.MaxTickDur = 2 * time.Minute
		sc.MaxISR = 1.0
	}

	budget := 100 // total scripted ticks, keeps a round affordable
	nsteps := r.pick(6, 14)
	for i := 0; i < nsteps && budget > 0; i++ {
		ticks := r.pick(1, 8)
		if ticks > budget {
			ticks = budget
		}
		budget -= ticks
		var st Step
		if i == 0 {
			st = JoinWave(r.pick(1, 4), ticks)
		} else {
			switch r.intn(10) {
			case 0:
				st = JoinWave(r.pick(1, 3), ticks)
			case 1:
				st = LeaveWave(r.pick(1, 2), ticks)
			case 2:
				st = Churn(r.pick(1, 2), r.pick(1, 2), ticks)
			case 3:
				st = TeleportStorm(r.next(), r.pick(16, 96), ticks)
			case 4:
				st = Chase(r.intn(4), r.pick(-4, 4), r.pick(-4, 4), ticks)
			case 5:
				st = TNTBurst(r.pick(-24, 24), r.pick(-24, 24), r.pick(1, 2), r.pick(1, 4), ticks)
			case 6:
				st = DigStorm(r.next(), r.pick(2, 10), r.pick(4, 24), ticks)
			case 7:
				st = MobWave(r.next(), r.pick(1, 6), r.pick(4, 24), ticks)
			case 8:
				st = Reconfigure(r.pick(1, 2), ticks)
			case 9:
				// Clean crash-restart from the per-tick snapshot: safe at any
				// point in a random script (no replay gap). Corruption modes
				// need input-free gap ticks, which a random script cannot
				// guarantee, so only the curated library exercises them.
				st = Crash(CrashClean, ticks)
				sc.SnapshotEvery = 1
			}
		}
		sc.Steps = append(sc.Steps, st)
	}
	if budget > 0 && r.intn(2) == 0 {
		q := budget
		if q > 10 {
			q = 10
		}
		sc.Steps = append(sc.Steps, Quiet(q))
	}
	return sc
}
