package scenario

// ShrinkPrefix reduces a failing scenario to its shortest failing step
// prefix by bisection: invariants assert after every step, so if the full
// script fails at step k, some prefix of length <= k+1 fails too, and
// failure is monotone in prefix length. End-of-run failures (ISR,
// expectations) are the exception — for those the bisection still finds the
// shortest prefix that reproduces them. Returns the shrunk scenario and its
// failing result; if shrinking cannot reproduce the failure (flaky — which
// the deterministic engine should make impossible), the original scenario
// and result are returned unchanged.
func ShrinkPrefix(sc *Scenario, res *Result, opts Options) (*Scenario, *Result) {
	if !res.Failed || len(sc.Steps) == 0 {
		return sc, res
	}
	prefix := func(n int) *Scenario {
		cp := *sc
		cp.Steps = sc.Steps[:n]
		cp.Expect = nil // expectations assume the full script ran
		return &cp
	}
	// hi is the shortest prefix length known to fail; failures during
	// warmup or at step k imply the prefix of length k+1 fails as well.
	hi := len(sc.Steps)
	if res.Step >= 0 && res.Step < len(sc.Steps) {
		hi = res.Step + 1
	}
	best := Run(prefix(hi), opts)
	if !best.Failed {
		return sc, res // not reproducible under a truncated script
	}
	lo := 0 // longest prefix length known to pass
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if r := Run(prefix(mid), opts); r.Failed {
			hi, best = mid, r
		} else {
			lo = mid
		}
	}
	shrunk := prefix(hi)
	best.Scenario = shrunk
	best.ShrunkSteps = hi
	return shrunk, best
}

// RunRandom generates the scenario for seed, runs it, and shrinks any
// failure to a minimal prefix. The result carries the generator seed so the
// failure replays with -scenario.seed.
func RunRandom(seed uint64, opts Options) *Result {
	sc := Generate(seed)
	res := Run(sc, opts)
	res.GenSeed = seed
	if res.Failed {
		_, shrunk := ShrinkPrefix(sc, res, opts)
		if shrunk != res {
			shrunk.GenSeed = seed
			return shrunk
		}
	}
	return res
}
