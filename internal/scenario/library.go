package scenario

import (
	"fmt"
	"time"

	"repro/internal/mlg/server"
	"repro/internal/workload"
)

// Library returns the curated scenarios: hand-written scripts targeting the
// known escape paths of the region-parallel engine — the places where a
// parallel schedule could legally diverge from the serial one if a guard
// regressed. Each runs green today; a simulation change that breaks one
// names the step and tick where the schedules separated.
func Library() []*Scenario {
	return []*Scenario{
		GenerationHorizonChase(),
		CrossRegionTNT(),
		PackImbalance(),
		JoinLeaveWaves(),
		TeleportStormScenario(),
		ChurnDuringParallelDrain(),
		ReconfigureMidRun(),
		CrashMidCascade(),
		TornSnapshotFallback(),
	}
}

// ByName returns the curated scenario with the given name, or nil.
func ByName(name string) *Scenario {
	for _, sc := range Library() {
		if sc.Name == name {
			return sc
		}
	}
	return nil
}

// GenerationHorizonChase walks players off the generated map with mobs in
// tow: mob pathfinding near the generation frontier is the classic escape
// path (a parallel region whose AI touches an ungenerated chunk must re-tick
// serially, and that fallback must be output-invisible).
func GenerationHorizonChase() *Scenario {
	return &Scenario{
		Name:     "generation-horizon-chase",
		Workload: workload.Control,
		Flavor:   server.Vanilla,
		Seed:     41,
		Warmup:   6,
		Steps: []Step{
			JoinWave(3, 4),
			MobWave(0xC0FFEE, 6, 12, 4),
			Chase(0, 4, 0, 12),
			Chase(1, 0, 4, 12),
			MobWave(0xDECAF, 4, 10, 4),
			Chase(2, 3, 3, 10),
			Quiet(6),
		},
	}
}

// CrossRegionTNT detonates TNT cubes straddling chunk and region borders:
// blast waves crossing a region boundary must roll the parallel attempt
// back without leaking partial state.
func CrossRegionTNT() *Scenario {
	return &Scenario{
		Name:     "cross-region-tnt",
		Workload: workload.Control,
		Flavor:   server.Paper,
		Seed:     43,
		Warmup:   6,
		Steps: []Step{
			JoinWave(2, 3),
			// 8+ox with ox=7 puts the cube corner at x=15/z=15: the cube
			// spans four chunks; the second burst lands two chunks out so
			// the two craters sit in distinct simulation regions.
			TNTBurst(7, 7, 2, 3, 10),
			TNTBurst(-40, -40, 2, 3, 10),
			DigStorm(0xB1A57, 6, 10, 4),
			Quiet(10),
		},
	}
}

// PackImbalance runs the Farm workload at Scale 3 — three separated
// construct clusters of very different sizes once a TNT crater removes part
// of one — so the sized work-unit packer must balance unequal regions
// across workers without reordering effects.
func PackImbalance() *Scenario {
	sc := &Scenario{
		Name:     "pack-imbalance",
		Workload: workload.Farm,
		Scale:    3,
		Flavor:   server.Vanilla,
		Seed:     47,
		Warmup:   10,
		Steps: []Step{
			JoinWave(1, 4),
			TNTBurst(6, 6, 2, 3, 12),
			Quiet(20),
		},
		Expect: func(twins []*Twin) string {
			for _, tw := range twins {
				if tw.Workers <= 1 {
					continue
				}
				par := 0
				for _, r := range tw.Records {
					if r.SimParallel {
						par++
					}
				}
				if par == 0 {
					return fmt.Sprintf("workers=%d twin never drained terrain in parallel", tw.Workers)
				}
			}
			return ""
		},
	}
	return sc
}

// JoinLeaveWaves churns the population in bursts: join floods (chunk-send
// bursts, view-area generation) interleaved with mass departures.
func JoinLeaveWaves() *Scenario {
	return &Scenario{
		Name:     "join-leave-waves",
		Workload: workload.Control,
		Flavor:   server.Forge,
		Seed:     53,
		Warmup:   5,
		Steps: []Step{
			JoinWave(4, 4),
			LeaveWave(2, 3),
			JoinWave(3, 4),
			Churn(2, 2, 3),
			LeaveWave(5, 3),
			JoinWave(1, 4),
			Quiet(5),
		},
	}
}

// TeleportStormScenario scatters the population across a wide radius every
// few ticks: interest sets churn wholesale and view areas land on
// ungenerated terrain.
func TeleportStormScenario() *Scenario {
	return &Scenario{
		Name:     "teleport-storm",
		Workload: workload.Control,
		Flavor:   server.Vanilla,
		Seed:     59,
		Warmup:   5,
		Steps: []Step{
			JoinWave(4, 3),
			TeleportStorm(0xFEED, 80, 5),
			MobWave(0xFACE, 5, 16, 4),
			TeleportStorm(0xBEEF, 120, 5),
			TeleportStorm(0xCAFE, 40, 5),
			Quiet(6),
		},
	}
}

// ChurnDuringParallelDrain connects and disconnects players on the very
// ticks the TNT workload's explosion cascade is draining entities in
// parallel: the join/leave mutates the player set the exclusive phase
// consumes (item pickup, interest sets), and the churned set must read
// identically under every schedule. The expectation pins the scenario to
// its purpose: the churn steps must overlap region-parallel entity ticks.
func ChurnDuringParallelDrain() *Scenario {
	return &Scenario{
		Name:             "churn-during-parallel-drain",
		Workload:         workload.TNT,
		Scale:            2,
		Flavor:           server.Vanilla,
		Seed:             61,
		IgniteAfterTicks: 4,
		// Ignition at tick 4 plus the 80-tick fuse: explosions begin around
		// tick 84, so warmup ends with the cascade in full swing.
		Warmup: 86,
		Steps: []Step{
			Churn(2, 1, 2),
			Churn(1, 1, 2),
			Churn(2, 2, 2),
			Quiet(12),
		},
		Expect: func(twins []*Twin) string {
			for _, tw := range twins {
				if tw.Workers <= 1 {
					continue
				}
				overlap := 0
				for i, r := range tw.Records {
					if st := tw.StepOfTick[i]; st >= 0 && st <= 2 && r.EntParallel {
						overlap++
					}
				}
				if overlap == 0 {
					return fmt.Sprintf("workers=%d twin: no churn-step tick took the parallel entity path", tw.Workers)
				}
			}
			return ""
		},
	}
}

// CrashMidCascade power-cuts the non-reference twins in the middle of a TNT
// cascade — live fuses, blast waves and item storms in flight — and restarts
// them from their per-tick snapshots. The restored twins must stay in
// lockstep with the reference twin that never died, through the rest of the
// cascade and fresh player/mob activity layered on top.
func CrashMidCascade() *Scenario {
	return &Scenario{
		Name:          "crash-mid-cascade",
		Workload:      workload.Control,
		Flavor:        server.Paper,
		Seed:          71,
		Warmup:        5,
		SnapshotEvery: 1,
		Steps: []Step{
			JoinWave(2, 3),
			// Fuse 3 with 4 step ticks: the crash lands with craters half
			// carved and TNT entities mid-air.
			TNTBurst(6, 6, 2, 3, 4),
			Crash(CrashClean, 6),
			MobWave(0x5AFE, 4, 10, 4),
			Chase(0, 3, 2, 6),
			Crash(CrashClean, 4),
			Quiet(6),
		},
	}
}

// TornSnapshotFallback crashes twins with every corruption mode in turn:
// torn tail, in-flight fault injection, and a flipped bit. Each restart must
// detect the damaged newest snapshot by checksum, fall back to the previous
// good one, and re-converge with the reference by replaying the gap — which
// is why every corrupting crash sits behind a Quiet step (the replayed tick
// must have had no client inputs).
func TornSnapshotFallback() *Scenario {
	return &Scenario{
		Name:          "torn-snapshot-fallback",
		Workload:      workload.Farm,
		Scale:         2,
		Flavor:        server.Vanilla,
		Seed:          73,
		Warmup:        8,
		SnapshotEvery: 1,
		Steps: []Step{
			JoinWave(2, 3),
			DigStorm(0xFA11, 4, 8, 2),
			Quiet(4),
			Crash(CrashTruncateLatest, 5),
			Quiet(3),
			Crash(CrashMidSnapshot, 5),
			Quiet(2),
			Crash(CrashBitFlipLatest, 4),
			Quiet(4),
		},
	}
}

// ReconfigureMidRun restarts every twin with a different SimWorkers twice
// mid-script — serial twins go parallel and vice versa — proving the
// scheduler swap is invisible in all state.
func ReconfigureMidRun() *Scenario {
	return &Scenario{
		Name:     "reconfigure-mid-run",
		Workload: workload.Lag,
		Scale:    2,
		Flavor:   server.Paper,
		Seed:     67,
		Warmup:   8,
		// The Lag workload overloads the tick budget by design (its virtual
		// ticks run tens of seconds); only equivalence is asserted here, so
		// the duration and ISR bounds are slack.
		MaxTickDur: 2 * time.Minute,
		MaxISR:     1.0,
		Steps: []Step{
			JoinWave(2, 4),
			Reconfigure(1, 8),
			DigStorm(0xD16, 5, 12, 4),
			Reconfigure(2, 8),
			TNTBurst(10, -10, 2, 3, 10),
			Quiet(6),
		},
	}
}
