package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mlg/persist"
	"repro/internal/mlg/server"
	"repro/internal/workload"
)

// Meta-tests for the crash/restart machinery itself: the library scenarios
// prove recovery works; these prove the harness reports the failure modes
// honestly instead of crashing or silently passing.

// crashTestScenario is a small script with one corrupting crash behind a
// Quiet step.
func crashTestScenario(mode CrashMode) *Scenario {
	return &Scenario{
		Name:          "crash-meta",
		Workload:      workload.Control,
		Flavor:        server.Vanilla,
		Seed:          79,
		Warmup:        4,
		SnapshotEvery: 1,
		Steps: []Step{
			JoinWave(2, 3),
			Quiet(3),
			Crash(mode, 4),
			Quiet(3),
		},
	}
}

// A Crash step without a snapshot store must fail the scenario with a clear
// message, not panic.
func TestCrashWithoutStoreFailsCleanly(t *testing.T) {
	sc := crashTestScenario(CrashClean)
	sc.SnapshotEvery = 0
	res := Run(sc, Options{Workers: []int{1, 2}})
	if !res.Failed {
		t.Fatal("crash without a snapshot store passed")
	}
	if !strings.Contains(res.Detail, "no snapshot store") {
		t.Fatalf("unexpected detail: %s", res.Detail)
	}
}

// When every snapshot in the store is corrupt, the restart must fail the
// scenario with ErrNoSnapshot's message — a clean, attributable failure
// rather than a panic or a silent half-restore.
func TestCrashAllCorruptFailsCleanly(t *testing.T) {
	sc := crashTestScenario(CrashClean)
	const crashStep = 2
	opts := Options{
		Workers: []int{1, 2},
		Fault: func(step int, tw *Twin) {
			if step != crashStep || tw.Index == 0 || tw.store == nil {
				return
			}
			entries, err := os.ReadDir(tw.store.Dir())
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				path := filepath.Join(tw.store.Dir(), e.Name())
				if err := persist.CorruptFile(path, persist.CorruptTruncate); err != nil {
					t.Fatal(err)
				}
			}
		},
	}
	res := Run(sc, opts)
	if !res.Failed {
		t.Fatal("restart from an all-corrupt store passed")
	}
	if !strings.Contains(res.Detail, "no usable snapshot") {
		t.Fatalf("unexpected detail: %s", res.Detail)
	}
}

// Corrupting the newest snapshot must actually exercise the fallback path:
// after the run, the crashed twin's store resolves to a snapshot and the
// scenario still passes (re-convergence) — and a LoadLatest performed at
// crash time would have reported exactly one rejected file. We re-run the
// resolution here on the surviving store contents to pin the mechanism, not
// just the outcome.
func TestCrashCorruptionFallsBackToOlderSnapshot(t *testing.T) {
	for _, mode := range []CrashMode{CrashTruncateLatest, CrashBitFlipLatest, CrashMidSnapshot} {
		t.Run(mode.String(), func(t *testing.T) {
			sc := crashTestScenario(mode)
			var rejected int
			// Observe the fallback at the moment of the crash: LoadLatest on
			// the damaged store must skip the torn newest file.
			sc.Steps[2].Before = func(tw *Twin) {
				orig := Crash(mode, 4).Before
				orig(tw)
				if tw.Index == 0 || tw.fail != "" {
					return
				}
				res, err := tw.store.LoadLatest()
				if err != nil {
					tw.fail = err.Error()
					return
				}
				rejected += len(res.Skipped)
			}
			res := Run(sc, Options{Workers: []int{1, 2}})
			if res.Failed {
				t.Fatalf("corrupting crash did not re-converge: %s", res.String())
			}
			if rejected == 0 {
				t.Fatal("no snapshot file was rejected — the corruption never exercised the fallback path")
			}
		})
	}
}
