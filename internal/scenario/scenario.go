// Package scenario is the engine's scenario-simulation harness: a
// declarative layer over the virtual-time server that scripts adversarial
// multi-tick situations — join/leave waves, teleport storms, TNT griefing
// bursts, chunk-border chases, mid-run SimWorkers reconfiguration — and
// model-checks the region-parallel simulation against them.
//
// A Scenario is a typed script of per-tick Steps. The runner executes it
// against several twin servers in lockstep — identical except for their
// SimWorkers (by default 1, 2 and 4: the legacy serial paths versus two
// region-parallel schedules) — with zero real I/O, and asserts invariants
// after every tick and every step:
//
//   - serial-vs-parallel equivalence: per-tick counters, work, entity state
//     fingerprints and chunk contents identical across all worker counts
//     (server.Snapshot is the shared comparison path);
//   - interest-set correctness: every delivered entity update's chunk lies
//     within the receiving player's view distance;
//   - revision consistency: a chunk whose content changed must have advanced
//     its revision (stale revisions would poison revision-keyed caches);
//   - tick-duration and end-of-run ISR bounds;
//   - no crash (Server.Crashed).
//
// Scenarios come from the curated library (library.go) or from the seeded
// random generator (rand.go), which turns the harness into a model checker:
// failures shrink to the shortest failing step prefix and print a seed that
// replays them exactly (go test -run TestScenarioRandom -scenario.seed=N).
package scenario

import (
	"fmt"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/entity"
	"repro/internal/mlg/persist"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/protocol"
	"repro/internal/workload"
)

// Scenario is one declarative script: a workload world, a flavor, and a
// sequence of steps driven identically against every twin server.
type Scenario struct {
	Name     string
	Workload workload.Kind
	// Scale multiplies construct counts (Scale >= 2 lays out separated
	// clusters, so the region partitioners actually fan out).
	Scale  int
	Flavor server.Flavor
	// Seed seeds the servers' simulation RNGs.
	Seed int64
	// Warmup ticks run before the first step (workload settling). Invariants
	// are checked during warmup too.
	Warmup int
	// IgniteAfterTicks, when > 0, arms the workload's scheduled trigger (TNT
	// ignition) with this delay at scenario start.
	IgniteAfterTicks int
	// ClientTimeout, when > 0, enables the crash-on-starvation semantics.
	ClientTimeout time.Duration
	// SnapshotEvery, when > 0, attaches a persistence store to every twin
	// and snapshots each one every N ticks (synchronously, into a per-twin
	// temp directory). Required by Crash steps; SnapshotEvery=1 guarantees a
	// clean crash restores onto the exact crash tick with no replay gap.
	SnapshotEvery int
	Steps         []Step
	// MaxTickDur bounds every tick's busy duration (0 = 5s: a runaway
	// guard). MaxISR bounds the end-of-run Instability Ratio (0 = 0.9).
	MaxTickDur time.Duration
	MaxISR     float64
	// Expect, when set, runs after the last step with the full twin set and
	// returns "" or a failure description — curated scenarios use it to
	// assert they actually exercised the schedule they target (e.g. that the
	// parallel twin took the region-parallel entity path on a churn tick).
	Expect func(twins []*Twin) string
}

// TotalTicks returns the scripted tick count (warmup plus steps).
func (sc *Scenario) TotalTicks() int {
	n := sc.Warmup
	for _, st := range sc.Steps {
		n += st.Ticks
	}
	return n
}

// Step is one scripted phase: an optional one-shot action, an optional
// per-tick action, and the number of ticks the phase lasts. Actions are
// applied identically to every twin; any randomness must be baked into the
// closure at construction time so twins cannot diverge.
type Step struct {
	Name string
	// Ticks is how many server ticks the step runs (>= 1 for invariants to
	// observe its effects; 0 applies Before and asserts without ticking).
	Ticks int
	// Before runs once per twin, before the step's first tick.
	Before func(tw *Twin)
	// EachTick runs once per twin before each of the step's ticks.
	EachTick func(tw *Twin, tick int)
}

// delivery is one recorded entity-update delivery decision.
type delivery struct {
	player int64
	chunk  world.ChunkPos
}

// Twin is one server instance under scenario execution. All twins run the
// same script in tick lockstep; they differ only in SimWorkers.
type Twin struct {
	// Index is the twin's position in Options.Workers; Workers is its
	// current worker count (Reconfigure steps change it mid-run).
	Index   int
	Workers int
	S       *server.Server
	Clock   env.Clock

	// Records accumulates every tick record in order; StepOfTick holds the
	// step index each tick ran under (-1 = warmup). Expect hooks scan these.
	Records    []server.TickRecord
	StepOfTick []int

	allWorkers []int
	players    []int64 // scenario-connected player IDs, join order
	joined     int     // total joins so far (names stay unique)
	deliveries []delivery
	prevChunks map[world.ChunkPos]world.ChunkState

	// Persistence plumbing, wired when Scenario.SnapshotEvery > 0: the
	// twin's snapshot directory, its snapshotter, and the constructor Crash
	// steps use to stand up the replacement server after a simulated crash.
	store   *persist.Store
	snap    *server.Snapshotter
	snapCfg server.SnapshotterConfig
	rebuild func(workers int) (*server.Server, env.Clock)
	fail    string // set by a step that failed inside Before (e.g. Crash)
}

// Players returns the live scenario-connected player IDs in join order.
func (tw *Twin) Players() []int64 { return tw.players }

// enqueue queues a client packet arriving now (processed by the next tick).
func (tw *Twin) enqueue(pid int64, pkt protocol.Packet) {
	tw.S.Enqueue(pid, pkt, tw.Clock.Now())
}

// groundY returns the Y just above the highest solid block of the column,
// generating the chunk if needed — identical across twins, since their
// worlds are identical.
func (tw *Twin) groundY(x, z int) int {
	return tw.S.World().HighestSolidY(x, z) + 1
}

// anchor returns a deterministic reference position: the i-th live player
// (mod population), or world spawn when nobody is connected.
func (tw *Twin) anchor(i int) entity.Vec3 {
	if len(tw.players) == 0 {
		return entity.Vec3{X: 8.5, Y: float64(tw.groundY(8, 8)), Z: 8.5}
	}
	p := tw.S.PlayerByID(tw.players[i%len(tw.players)])
	return p.Pos
}

// connect joins one deterministically named player.
func (tw *Twin) connect() {
	tw.joined++
	p := tw.S.Connect(fmt.Sprintf("sc-%03d", tw.joined))
	tw.players = append(tw.players, p.ID)
}

// disconnect removes the oldest scenario player, if any.
func (tw *Twin) disconnect() {
	if len(tw.players) == 0 {
		return
	}
	tw.S.Disconnect(tw.players[0])
	tw.players = tw.players[1:]
}

// Reconfigure switches the twin's SimWorkers to the worker count shift
// positions ahead in the scenario's worker set — the serial twin restarts
// parallel, a parallel twin restarts serial — exercising the mid-run
// scheduler swap whose output must be invisible.
func (tw *Twin) Reconfigure(shift int) {
	n := tw.allWorkers[(tw.Index+shift)%len(tw.allWorkers)]
	tw.Workers = n
	tw.S.SetSimWorkers(n)
}

// --- Step constructors -------------------------------------------------

// JoinWave connects n players in one step and runs ticks ticks, covering
// the join burst (chunk sends, view-area generation).
func JoinWave(n, ticks int) Step {
	return Step{
		Name:  fmt.Sprintf("join-wave(%d)", n),
		Ticks: ticks,
		Before: func(tw *Twin) {
			for i := 0; i < n; i++ {
				tw.connect()
			}
		},
	}
}

// LeaveWave disconnects the n oldest players.
func LeaveWave(n, ticks int) Step {
	return Step{
		Name:  fmt.Sprintf("leave-wave(%d)", n),
		Ticks: ticks,
		Before: func(tw *Twin) {
			for i := 0; i < n; i++ {
				tw.disconnect()
			}
		},
	}
}

// Churn connects join players and disconnects leave players on the same
// tick — the join/disconnect-during-exclusive-phase case: the very next tick
// runs its parallel drains against the churned player set.
func Churn(join, leave, ticks int) Step {
	return Step{
		Name:  fmt.Sprintf("churn(+%d/-%d)", join, leave),
		Ticks: ticks,
		Before: func(tw *Twin) {
			for i := 0; i < join; i++ {
				tw.connect()
			}
			for i := 0; i < leave; i++ {
				tw.disconnect()
			}
		},
	}
}

// TeleportStorm teleports every player to an independent pseudo-random
// offset within radius blocks of spawn, derived from seed — interest sets
// churn wholesale and view areas land on ungenerated terrain.
func TeleportStorm(seed uint64, radius, ticks int) Step {
	return Step{
		Name:  fmt.Sprintf("teleport-storm(r=%d)", radius),
		Ticks: ticks,
		Before: func(tw *Twin) {
			r := rng{s: seed}
			for _, pid := range tw.players {
				x := float64(r.intn(2*radius)-radius) + 8.5
				z := float64(r.intn(2*radius)-radius) + 8.5
				y := float64(tw.groundY(int(x), int(z)))
				tw.enqueue(pid, &protocol.PlayerMove{X: x, Y: y, Z: z})
			}
		},
	}
}

// Chase walks one player (dx, dz) blocks per tick for ticks ticks — a
// chunk-border chase: the player repeatedly crosses chunk boundaries,
// dragging its interest set and the spawn/activation neighbourhood along,
// eventually into ungenerated terrain.
func Chase(player, dx, dz, ticks int) Step {
	return Step{
		Name:  fmt.Sprintf("chase(%+d,%+d)", dx, dz),
		Ticks: ticks,
		EachTick: func(tw *Twin, _ int) {
			if len(tw.players) == 0 {
				return
			}
			pid := tw.players[player%len(tw.players)]
			pos := tw.S.PlayerByID(pid).Pos
			x, z := pos.X+float64(dx), pos.Z+float64(dz)
			y := float64(tw.groundY(int(x), int(z)))
			tw.enqueue(pid, &protocol.PlayerMove{X: x, Y: y, Z: z})
		},
	}
}

// TNTBurst builds a size³ TNT cube on the surface at (ox, oz) relative to
// spawn and schedules its ignition fuse ticks out — the griefing burst:
// detonations, blast waves, item storms and cross-chunk craters.
func TNTBurst(ox, oz, size, fuse, ticks int) Step {
	return Step{
		Name:  fmt.Sprintf("tnt-burst(%d³@%d,%d)", size, ox, oz),
		Ticks: ticks,
		Before: func(tw *Twin) {
			w := tw.S.World()
			baseY := tw.groundY(8+ox, 8+oz)
			for dy := 0; dy < size; dy++ {
				for dz := 0; dz < size; dz++ {
					for dx := 0; dx < size; dx++ {
						w.SetBlock(world.Pos{X: 8 + ox + dx, Y: baseY + dy, Z: 8 + oz + dz},
							world.B(world.TNT))
					}
				}
			}
			tw.S.Engine().ScheduleIgnite(world.Pos{X: 8 + ox, Y: baseY, Z: 8 + oz}, fuse)
		},
	}
}

// DigStorm digs n surface blocks at pseudo-random offsets within radius of
// the anchor player, via PlayerAction packets — player-driven terrain
// mutation feeding the update queues and lighting recomputation.
func DigStorm(seed uint64, n, radius, ticks int) Step {
	return Step{
		Name:  fmt.Sprintf("dig-storm(%d)", n),
		Ticks: ticks,
		Before: func(tw *Twin) {
			if len(tw.players) == 0 {
				return
			}
			r := rng{s: seed}
			a := tw.anchor(0)
			pid := tw.players[0]
			for i := 0; i < n; i++ {
				x := int(a.X) + r.intn(2*radius) - radius
				z := int(a.Z) + r.intn(2*radius) - radius
				y := tw.groundY(x, z) - 1
				tw.enqueue(pid, &protocol.PlayerAction{
					Action: protocol.ActionDig, X: int32(x), Y: int32(y), Z: int32(z),
				})
			}
		},
	}
}

// MobWave spawns n mobs at pseudo-random surface offsets within radius of
// the anchor — wandering AI, pathfinding over mutable terrain, and (near
// the generation frontier) the choosePath terrain-generation escape path.
func MobWave(seed uint64, n, radius, ticks int) Step {
	return Step{
		Name:  fmt.Sprintf("mob-wave(%d)", n),
		Ticks: ticks,
		Before: func(tw *Twin) {
			r := rng{s: seed}
			a := tw.anchor(0)
			for i := 0; i < n; i++ {
				x := int(a.X) + r.intn(2*radius) - radius
				z := int(a.Z) + r.intn(2*radius) - radius
				tw.S.EntityWorld().SpawnMob(world.Pos{X: x, Y: tw.groundY(x, z), Z: z})
			}
		},
	}
}

// Reconfigure swaps every twin's SimWorkers shift positions through the
// worker set between ticks — the serial/parallel restart whose output must
// be invisible.
func Reconfigure(shift, ticks int) Step {
	return Step{
		Name:   fmt.Sprintf("reconfigure(shift=%d)", shift),
		Ticks:  ticks,
		Before: func(tw *Twin) { tw.Reconfigure(shift) },
	}
}

// Quiet runs ticks ticks with no new inputs — cascades settle, schedules
// fire, despawns age out.
func Quiet(ticks int) Step {
	return Step{Name: fmt.Sprintf("quiet(%d)", ticks), Ticks: ticks}
}
