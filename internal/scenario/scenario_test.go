package scenario

import (
	"flag"
	"testing"

	"repro/internal/mlg/world"
)

var (
	seedFlag = flag.Uint64("scenario.seed", 0,
		"replay one generated scenario from this seed instead of the random sweep")
	roundsFlag = flag.Int("scenario.rounds", 50,
		"number of random scenarios TestScenarioRandom runs")
)

// TestScenarioLibrary runs every curated scenario at SimWorkers 1/2/4.
func TestScenarioLibrary(t *testing.T) {
	for _, sc := range Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			if res := Run(sc, Options{}); res.Failed {
				t.Fatal(res.String())
			}
		})
	}
}

// TestScenarioRandom is the model-checking sweep: -scenario.rounds generated
// scenarios (fixed base seed, so CI runs are reproducible), each executed at
// SimWorkers 1/2/4 with shrink-on-failure. Replay a failure with
// -scenario.seed=N.
func TestScenarioRandom(t *testing.T) {
	if *seedFlag != 0 {
		res := RunRandom(*seedFlag, Options{})
		t.Log(res.String())
		if res.Failed {
			t.Fail()
		}
		return
	}
	rounds := *roundsFlag
	if testing.Short() && rounds > 8 {
		rounds = 8
	}
	const base = uint64(0x5eed0000)
	for i := 0; i < rounds; i++ {
		seed := base + uint64(i)
		res := RunRandom(seed, Options{})
		if res.Failed {
			t.Fatalf("random scenario failed (seed %d):\n%s", seed, res.String())
		}
	}
}

// TestScenarioChurnDuringExclusive pins the join/disconnect-during-
// parallel-drain coverage at the exact worker pair the equivalence matrix
// uses (1 vs 4), on top of the library run's default 1/2/4.
func TestScenarioChurnDuringExclusive(t *testing.T) {
	sc := ChurnDuringParallelDrain()
	if res := Run(sc, Options{Workers: []int{1, 4}}); res.Failed {
		t.Fatal(res.String())
	}
}

// TestScenarioMetaFaultInjection proves the harness actually catches
// divergence: a fault hook corrupts one twin's terrain at a known step, the
// run must fail at that step with a chunk-content diff, and shrinking must
// reduce the script to the minimal prefix containing the fault.
func TestScenarioMetaFaultInjection(t *testing.T) {
	const faultStep = 2
	sc := JoinLeaveWaves()
	opts := Options{
		Fault: func(step int, tw *Twin) {
			if step != faultStep || tw.Index != 1 {
				return
			}
			// Flip one surface block on the second twin only: the next
			// state comparison must see the chunk contents diverge.
			w := tw.S.World()
			p := world.Pos{X: 8, Y: w.HighestSolidY(8, 8), Z: 8}
			b := world.B(world.Gravel)
			if w.Block(p) == b {
				b = world.B(world.Stone)
			}
			w.SetBlock(p, b)
		},
	}
	res := Run(sc, opts)
	if !res.Failed {
		t.Fatal("injected terrain fault was not detected")
	}
	if res.Step != faultStep {
		t.Fatalf("fault detected at step %d (%s), want step %d\n%s",
			res.Step, res.StepName, faultStep, res.String())
	}

	shrunk, sres := ShrinkPrefix(sc, res, opts)
	if !sres.Failed {
		t.Fatal("shrink lost the failure")
	}
	if len(shrunk.Steps) != faultStep+1 {
		t.Fatalf("shrunk to %d steps, want %d (the minimal prefix containing the fault)",
			len(shrunk.Steps), faultStep+1)
	}

	// The shrunk scenario must replay deterministically.
	if re := Run(shrunk, opts); !re.Failed || re.Step != faultStep {
		t.Fatalf("shrunk scenario did not reproduce: %s", re.String())
	}
}

// TestScenarioMetaBrokenInvariant inverts an invariant bound — a tick
// duration ceiling no real tick can meet — and checks the harness reports
// it rather than passing vacuously.
func TestScenarioMetaBrokenInvariant(t *testing.T) {
	sc := JoinLeaveWaves()
	sc.MaxTickDur = 1 // a nanosecond: every tick must violate it
	res := Run(sc, Options{Workers: []int{1}})
	if !res.Failed {
		t.Fatal("impossible tick-duration bound not reported")
	}
	if res.Step != -1 {
		t.Fatalf("violation surfaced at step %d, want the first warmup tick", res.Step)
	}
}

// TestGenerateDeterministic guards the replay contract: the same seed must
// yield an identical script.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(12345), Generate(12345)
	if a.Name != b.Name || a.Workload != b.Workload || a.Scale != b.Scale ||
		a.Flavor != b.Flavor || a.Seed != b.Seed || a.Warmup != b.Warmup ||
		len(a.Steps) != len(b.Steps) {
		t.Fatalf("scenario headers diverged: %+v vs %+v", a, b)
	}
	for i := range a.Steps {
		if a.Steps[i].Name != b.Steps[i].Name || a.Steps[i].Ticks != b.Steps[i].Ticks {
			t.Fatalf("step %d diverged: %s/%d vs %s/%d", i,
				a.Steps[i].Name, a.Steps[i].Ticks, b.Steps[i].Name, b.Steps[i].Ticks)
		}
	}
}
