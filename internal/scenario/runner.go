package scenario

import (
	"fmt"
	"os"
	"time"

	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/persist"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/workload"
)

// Options configures one scenario execution.
type Options struct {
	// Workers is the SimWorkers value of each twin (default {1, 2, 4}; the
	// first should be 1 so the legacy serial paths anchor the comparison).
	Workers []int
	// Env is the machine profile (default env.DAS5SixteenCore);
	// MachineSeed seeds its jitter streams (all twins share one seed).
	Env         env.Profile
	MachineSeed int64
	// Fault, when set, runs before each step on every twin — meta-tests use
	// it to corrupt one twin's state and prove the harness catches it.
	Fault func(step int, tw *Twin)
}

func (o Options) workers() []int {
	if len(o.Workers) == 0 {
		return []int{1, 2, 4}
	}
	return o.Workers
}

// Result reports one scenario execution.
type Result struct {
	Scenario *Scenario
	// GenSeed is the generator seed when the scenario came from Generate
	// (RunRandom fills it in), 0 otherwise.
	GenSeed uint64
	Failed  bool
	// Step is the step index at failure: -1 = warmup, len(Steps) =
	// end-of-run checks. StepName and Tick (global tick number) locate it.
	Step     int
	StepName string
	Tick     int
	Detail   string
	// Ticks is how many ticks actually ran; ISR is the end-of-run
	// Instability Ratio of the first twin.
	Ticks int
	ISR   float64
	// ShrunkSteps is the length of the minimal failing step prefix when
	// shrinking ran, 0 otherwise.
	ShrunkSteps int
}

func (r *Result) String() string {
	if !r.Failed {
		return fmt.Sprintf("PASS %s (%d ticks, ISR %.3f)", r.Scenario.Name, r.Ticks, r.ISR)
	}
	loc := "end-of-run"
	switch {
	case r.Step < 0:
		loc = "warmup"
	case r.Step < len(r.Scenario.Steps):
		loc = fmt.Sprintf("step %d %q", r.Step, r.StepName)
	}
	msg := fmt.Sprintf("FAIL %s at %s, tick %d: %s", r.Scenario.Name, loc, r.Tick, r.Detail)
	if r.GenSeed != 0 {
		msg += fmt.Sprintf("\n  replay: go test ./internal/scenario -run TestScenarioRandom -scenario.seed=%d", r.GenSeed)
	}
	if r.ShrunkSteps > 0 {
		msg += fmt.Sprintf("\n  shrunk to %d-step prefix", r.ShrunkSteps)
	}
	return msg
}

// Run executes the scenario against lockstep twins and returns the first
// invariant violation, if any.
func Run(sc *Scenario, opts Options) *Result {
	res := &Result{Scenario: sc, Step: -1}
	workers := opts.workers()
	profile := opts.Env
	if profile.Name == "" {
		profile = env.DAS5SixteenCore
	}

	// mkServer builds one bare twin server — also how a Crash step stands up
	// the replacement process image before restoring its snapshot. The
	// delivery hook is part of the construction-time config, so a rebuilt
	// server observes deliveries into the same twin without re-registration.
	mkServer := func(tw *Twin, n int) (*server.Server, env.Clock) {
		w := workload.NewWorld(sc.Workload, world.PaperControlSeed)
		cfg := server.DefaultConfig(sc.Flavor)
		cfg.Sim.Seed = sc.Seed
		cfg.Sim.Workers = n
		cfg.Net.ClientTimeout = sc.ClientTimeout
		cfg.Hooks.EntityDelivery = func(pid int64, c world.ChunkPos) {
			tw.deliveries = append(tw.deliveries, delivery{player: pid, chunk: c})
		}
		clock := env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
		return server.New(w, cfg, env.NewMachine(profile, opts.MachineSeed), clock), clock
	}

	twins := make([]*Twin, len(workers))
	for i, n := range workers {
		tw := &Twin{Index: i, Workers: n, allWorkers: workers,
			prevChunks: map[world.ChunkPos]world.ChunkState{}}
		tw.S, tw.Clock = mkServer(tw, n)
		tw.rebuild = func(n int) (*server.Server, env.Clock) { return mkServer(tw, n) }
		if sc.SnapshotEvery > 0 {
			dir, err := os.MkdirTemp("", "scenario-snap-")
			if err != nil {
				res.Failed = true
				res.Detail = fmt.Sprintf("snapshot dir: %v", err)
				return res
			}
			defer os.RemoveAll(dir)
			st, err := persist.NewStore(dir)
			if err != nil {
				res.Failed = true
				res.Detail = fmt.Sprintf("snapshot store: %v", err)
				return res
			}
			tw.store = st
			// Sync: snapshots land on the tick boundary they were taken at,
			// so a Crash step knows exactly which ticks are on disk.
			tw.snapCfg = server.SnapshotterConfig{Every: sc.SnapshotEvery, Sync: true}
			tw.snap = server.NewSnapshotter(tw.S, st, tw.snapCfg)
		}

		spec := sc.Workload.DefaultSpec()
		if sc.Scale > 0 {
			spec.Scale = sc.Scale
		}
		spec.IgniteAfterTicks = sc.IgniteAfterTicks
		if err := workload.Install(tw.S, spec); err != nil {
			res.Failed = true
			res.Detail = fmt.Sprintf("workload install: %v", err)
			return res
		}
		if sc.IgniteAfterTicks > 0 {
			workload.Arm(tw.S, spec)
		}
		twins[i] = tw
	}

	maxDur := sc.MaxTickDur
	if maxDur <= 0 {
		maxDur = 5 * time.Second
	}
	maxISR := sc.MaxISR
	if maxISR <= 0 {
		maxISR = 0.9
	}

	tick := 0
	// runTicks drives all twins n lockstep ticks under step index step,
	// checking per-tick invariants; it returns false on failure (res filled).
	runTicks := func(step int, st *Step, n int) bool {
		for k := 0; k < n; k++ {
			if st != nil && st.EachTick != nil {
				for _, tw := range twins {
					st.EachTick(tw, k)
				}
			}
			recs := make([]server.TickRecord, len(twins))
			for i, tw := range twins {
				recs[i] = tw.S.Tick()
				tw.Records = append(tw.Records, recs[i])
				tw.StepOfTick = append(tw.StepOfTick, step)
				if tw.snap != nil {
					tw.snap.MaybeSnapshot(recs[i].Tick)
					if err := tw.snap.Err(); err != nil {
						res.Failed = true
						res.Detail = fmt.Sprintf("twin[%d] (workers=%d) snapshot write: %v", i, tw.Workers, err)
						return false
					}
				}
			}
			tick++
			res.Tick, res.Ticks = tick, tick
			for i, tw := range twins {
				if crashed, why := tw.S.Crashed(); crashed {
					res.Failed = true
					res.Detail = fmt.Sprintf("twin[%d] (workers=%d) crashed: %s", i, tw.Workers, why)
					return false
				}
				if recs[i].Dur > maxDur {
					res.Failed = true
					res.Detail = fmt.Sprintf("twin[%d] (workers=%d) tick duration %v exceeds bound %v",
						i, tw.Workers, recs[i].Dur, maxDur)
					return false
				}
				if d := diffRecords(&recs[0], &recs[i]); i > 0 && d != "" {
					res.Failed = true
					res.Detail = fmt.Sprintf("tick record diverged, twin[0] (workers=%d) vs twin[%d] (workers=%d): %s",
						twins[0].Workers, i, tw.Workers, d)
					return false
				}
				if d := tw.checkInterest(); d != "" {
					res.Failed = true
					res.Detail = fmt.Sprintf("twin[%d] (workers=%d) interest violation: %s", i, tw.Workers, d)
					return false
				}
			}
		}
		return true
	}

	// checkState compares full snapshots across twins and revision
	// consistency within each twin; returns false on failure.
	checkState := func() bool {
		base := twins[0].S.Snapshot()
		for i, tw := range twins {
			var snap server.Snapshot
			if i == 0 {
				snap = base
			} else {
				snap = tw.S.Snapshot()
			}
			if i > 0 {
				if d := base.Diff(&snap); d != "" {
					res.Failed = true
					res.Detail = fmt.Sprintf("state diverged, twin[0] (workers=%d) vs twin[%d] (workers=%d): %s",
						twins[0].Workers, i, tw.Workers, d)
					return false
				}
			}
			if d := tw.checkRevisions(snap.Chunks); d != "" {
				res.Failed = true
				res.Detail = fmt.Sprintf("twin[%d] (workers=%d) revision inconsistency: %s", i, tw.Workers, d)
				return false
			}
		}
		return true
	}

	if sc.Warmup > 0 {
		if !runTicks(-1, nil, sc.Warmup) || !checkState() {
			return res
		}
	}

	for si := range sc.Steps {
		st := &sc.Steps[si]
		res.Step, res.StepName = si, st.Name
		for i, tw := range twins {
			if opts.Fault != nil {
				opts.Fault(si, tw)
			}
			if st.Before != nil {
				st.Before(tw)
			}
			if tw.fail != "" {
				res.Failed = true
				res.Detail = fmt.Sprintf("twin[%d] (workers=%d) %s", i, tw.Workers, tw.fail)
				return res
			}
		}
		if !runTicks(si, st, st.Ticks) || !checkState() {
			return res
		}
	}

	res.Step, res.StepName = len(sc.Steps), "end-of-run"
	res.ISR = metrics.ISR(durationsMS(twins[0].Records), metrics.TickBudgetMS, len(twins[0].Records))
	if res.ISR > maxISR {
		res.Failed = true
		res.Detail = fmt.Sprintf("end-of-run ISR %.3f exceeds bound %.3f", res.ISR, maxISR)
		return res
	}
	if sc.Expect != nil {
		if d := sc.Expect(twins); d != "" {
			res.Failed = true
			res.Detail = "expectation failed: " + d
			return res
		}
	}
	return res
}

// diffRecords compares two tick records for schedule-independent fields and
// returns "" when equivalent. Start (wall position) and the
// SimRegions/SimParallel/EntRegions/EntParallel schedule attribution
// legitimately differ across worker counts and are excluded.
func diffRecords(a, b *server.TickRecord) string {
	switch {
	case a.Tick != b.Tick:
		return fmt.Sprintf("tick number %d vs %d", a.Tick, b.Tick)
	case a.Work != b.Work:
		return fmt.Sprintf("cost-model work %+v vs %+v", a.Work, b.Work)
	case a.Players != b.Players:
		return fmt.Sprintf("players %d vs %d", a.Players, b.Players)
	case a.Entities != b.Entities:
		return fmt.Sprintf("entities %d vs %d", a.Entities, b.Entities)
	case a.Backlog != b.Backlog:
		return fmt.Sprintf("backlog %d vs %d", a.Backlog, b.Backlog)
	case a.Sim != b.Sim:
		return fmt.Sprintf("sim counters %+v vs %+v", a.Sim, b.Sim)
	case a.Ent != b.Ent:
		return fmt.Sprintf("entity counters %+v vs %+v", a.Ent, b.Ent)
	}
	return ""
}

// checkInterest validates and clears the tick's recorded entity-update
// deliveries: each delivered chunk must lie within the receiving player's
// view distance. The check recomputes the predicate from player positions
// rather than trusting the server's own interest test.
func (tw *Twin) checkInterest() string {
	defer func() { tw.deliveries = tw.deliveries[:0] }()
	vd := tw.S.Config().Net.ViewDistance
	for _, d := range tw.deliveries {
		p := tw.S.PlayerByID(d.player)
		if p == nil {
			return fmt.Sprintf("update for chunk %v delivered to departed player %d", d.chunk, d.player)
		}
		pc := world.ChunkPosAt(world.Pos{X: int(p.Pos.X), Y: int(p.Pos.Y), Z: int(p.Pos.Z)})
		dx, dz := int(d.chunk.X-pc.X), int(d.chunk.Z-pc.Z)
		if dx < 0 {
			dx = -dx
		}
		if dz < 0 {
			dz = -dz
		}
		if dx > vd || dz > vd {
			return fmt.Sprintf("update for chunk %v delivered to player %d in chunk %v (view distance %d)",
				d.chunk, d.player, pc, vd)
		}
	}
	return ""
}

// checkRevisions enforces per-twin revision consistency against the
// previous step's chunk fingerprints: revisions never decrease, and a chunk
// whose content changed must have advanced its revision — a stale revision
// would poison any revision-keyed cache (e.g. encoded chunk payloads).
func (tw *Twin) checkRevisions(chunks []world.ChunkState) string {
	for _, c := range chunks {
		prev, ok := tw.prevChunks[c.Pos]
		if ok {
			if c.Revision < prev.Revision {
				return fmt.Sprintf("chunk %v revision went backwards: %d -> %d", c.Pos, prev.Revision, c.Revision)
			}
			if (c.Sum != prev.Sum || c.NonAir != prev.NonAir) && c.Revision == prev.Revision {
				return fmt.Sprintf("chunk %v content changed with revision stuck at %d", c.Pos, c.Revision)
			}
		}
		tw.prevChunks[c.Pos] = c
	}
	return ""
}

func durationsMS(recs []server.TickRecord) []float64 {
	out := make([]float64, len(recs))
	for i := range recs {
		out[i] = float64(recs[i].Dur) / float64(time.Millisecond)
	}
	return out
}
