package report

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestWriteCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "out.csv")
	header := []string{"a", "b"}
	rows := [][]string{{"1", "x"}, {"2", "y,z"}}
	if err := WriteCSV(path, header, rows); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0][0] != "a" || got[2][1] != "y,z" {
		t.Fatalf("csv content wrong: %v", got)
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{0: "0", 123.4: "123", 12.34: "12.3", 0.1234: "0.123"}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "v"}, [][]string{{"longer-name", "1"}, {"x", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) == 0 || !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("table format wrong:\n%s", out)
	}
}

func TestBoxRowMarkersInOrder(t *testing.T) {
	// Skewed sample so mean and median land on different columns.
	s := metrics.Summarize([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 1000})
	row := BoxRow("test", s, 1000, 60)
	if !strings.Contains(row, "█") || !strings.Contains(row, "|") || !strings.Contains(row, "◆") {
		t.Fatalf("missing markers: %q", row)
	}
	if !strings.Contains(row, "p95=") {
		t.Fatal("missing p95 annotation")
	}
}

func TestBoxRowDegenerate(t *testing.T) {
	// Must not panic on zero summaries or tiny widths.
	_ = BoxRow("zero", metrics.Summary{}, 0, 5)
	_ = BoxRow("one", metrics.Summarize([]float64{5}), 100, 25)
}

func TestSparkline(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	sl := Sparkline(vals, 8)
	if len([]rune(sl)) != 8 {
		t.Fatalf("sparkline length %d", len([]rune(sl)))
	}
	if []rune(sl)[0] == []rune(sl)[7] {
		t.Fatal("sparkline flat for rising data")
	}
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input should render empty")
	}
	// Downsampling keeps the spike visible.
	long := make([]float64, 1000)
	long[500] = 100
	sl = Sparkline(long, 40)
	if !strings.ContainsRune(sl, '█') {
		t.Fatal("spike lost in downsampling")
	}
}

func TestBarAndStacked(t *testing.T) {
	b := Bar("x", 50, 100, 20)
	if !strings.Contains(b, "██████████") {
		t.Fatalf("bar wrong: %q", b)
	}
	sr := StackedRow("y", []float64{0.5, 0.5}, []rune{'A', 'B'}, 10)
	if !strings.Contains(sr, "AAAAA") || !strings.Contains(sr, "BBBBB") {
		t.Fatalf("stacked row wrong: %q", sr)
	}
}
