// Package report renders benchmark results: CSV files for every table and
// figure (the Data Retrieval / aggregation role of Figure 5, components 9
// and 10) and ASCII plots (box rows, time series, bar charts) standing in
// for the paper's Data Visualization component.
package report

import (
	"encoding/csv"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/metrics"
)

// WriteCSV writes a header plus rows to path, creating parent directories.
func WriteCSV(path string, header []string, rows [][]string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// F formats a float with sensible precision for tables.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// BoxRow renders one labelled box-and-whisker row on a linear scale from 0
// to max: whiskers at P5/P95, box between P25 and P75, median bar, mean
// diamond — the presentation of Figures 7, 10 and 12.
func BoxRow(label string, s metrics.Summary, max float64, width int) string {
	if width < 20 {
		width = 20
	}
	if max <= 0 {
		max = 1
	}
	col := func(v float64) int {
		c := int(v / max * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := make([]rune, width)
	for i := range row {
		row[i] = ' '
	}
	lo, hi := col(s.P5), col(s.P95)
	for i := lo; i <= hi; i++ {
		row[i] = '-'
	}
	for i := col(s.P25); i <= col(s.P75); i++ {
		row[i] = '█'
	}
	row[col(s.Median)] = '|'
	row[col(s.Mean)] = '◆'
	return fmt.Sprintf("%-28s [%s] p95=%s max=%s", label, string(row), F(s.P95), F(s.Max))
}

// Sparkline renders values as a compact unicode sparkline.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width <= 0 || width > len(values) {
		width = len(values)
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	// Downsample by max within buckets (spikes matter).
	bucketed := make([]float64, width)
	per := float64(len(values)) / float64(width)
	for i := 0; i < width; i++ {
		lo, hi := int(float64(i)*per), int(float64(i+1)*per)
		if hi > len(values) {
			hi = len(values)
		}
		m := 0.0
		for _, v := range values[lo:hi] {
			if v > m {
				m = v
			}
		}
		bucketed[i] = m
	}
	var max float64
	for _, v := range bucketed {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	for _, v := range bucketed {
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// Bar renders a labelled horizontal bar scaled to max.
func Bar(label string, v, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	if width < 10 {
		width = 10
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return fmt.Sprintf("%-28s %s %s", label, strings.Repeat("█", n), F(v))
}

// StackedRow renders category shares as a proportional stacked bar, used
// for the Figure 11 tick-distribution plot. shares must be fractions
// summing to ~1; glyphs assigns one rune per category.
func StackedRow(label string, shares []float64, glyphs []rune, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	for i, s := range shares {
		n := int(s * float64(width))
		g := '?'
		if i < len(glyphs) {
			g = glyphs[i]
		}
		for j := 0; j < n; j++ {
			b.WriteRune(g)
		}
	}
	return fmt.Sprintf("%-28s %s", label, b.String())
}
