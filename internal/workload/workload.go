// Package workload builds the benchmark worlds of §3.3 (Table 2): Control
// (fresh terrain), TNT (a 16×16×14 TNT cuboid set to explode ~20 s in),
// Farm (the Table 3 resource-farm constructs), Lag (a lag machine of
// logic-gate constructs), plus the player-based Players workload of §3.4.1
// (25 bots moving randomly in a 32×32 area).
package workload

import (
	"fmt"

	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
)

// Kind identifies one benchmark workload.
type Kind int

// The five workloads of Figure 8.
const (
	Control Kind = iota
	TNT
	Farm
	Lag
	Players
)

// String returns the workload name as printed in the paper.
func (k Kind) String() string {
	switch k {
	case Control:
		return "Control"
	case TNT:
		return "TNT"
	case Farm:
		return "Farm"
	case Lag:
		return "Lag"
	case Players:
		return "Players"
	default:
		return fmt.Sprintf("workload(%d)", int(k))
	}
}

// All returns every workload in Figure 8 order.
func All() []Kind { return []Kind{Control, Farm, TNT, Lag, Players} }

// ByName resolves a workload by name.
func ByName(name string) (Kind, error) {
	for _, k := range All() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown workload %q", name)
}

// Spec parameterizes a workload instance.
type Spec struct {
	Kind Kind
	// Scale multiplies construct counts (the R8 workload-scaling knob;
	// Table 4's "Scale", default 1).
	Scale int
	// Bots is the number of emulated players to connect.
	Bots int
	// BotsMove makes bots walk randomly in MoveArea (Players workload);
	// idle bots only run the chat probe (environment-based workloads
	// connect "a single player that performs no actions", §3.3.1).
	BotsMove bool
	// MoveArea is the side of the square bots move in (§3.4.1: 32).
	MoveArea int
	// IgniteAfterTicks delays TNT ignition (TNT workload; paper: ~20 s
	// after a player connects = 400 ticks).
	IgniteAfterTicks int
}

// DefaultSpec returns the paper's configuration for the workload.
func (k Kind) DefaultSpec() Spec {
	s := Spec{Kind: k, Scale: 1, Bots: 1, MoveArea: 32, IgniteAfterTicks: 400}
	if k == Players {
		s.Bots = 25
		s.BotsMove = true
	}
	return s
}

// NewWorld creates the terrain world for the workload: realistic noise
// terrain for Control and Players, a flat construction arena for the
// construct worlds.
func NewWorld(k Kind, seed int64) *world.World {
	switch k {
	case Control, Players:
		return world.New(world.NewNoiseGenerator(seed))
	default:
		return world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	}
}

// Install builds the workload's constructs into the server's world and
// schedules its triggers. The server must be freshly created (tick 0).
func Install(s *server.Server, spec Spec) error {
	if spec.Scale < 1 {
		spec.Scale = 1
	}
	switch spec.Kind {
	case Control, Players:
		// Fresh world: terrain generation happens lazily on player join.
		return nil
	case TNT:
		installTNT(s, spec)
		return nil // ignition is scheduled separately by Arm
	case Farm:
		installFarms(s, spec)
		return nil
	case Lag:
		installLagMachine(s, spec)
		return nil
	default:
		return fmt.Errorf("unknown workload kind %d", spec.Kind)
	}
}

// installTNT builds the paper's TNT world: a 16-by-16-by-14 cuboid filled
// with TNT blocks per scale step. Ignition is scheduled by Arm.
func installTNT(s *server.Server, spec Spec) {
	w := s.World()
	for c := 0; c < spec.Scale; c++ {
		ox, oz := tntOrigin(c)
		w.EnsureArea(world.Pos{X: ox, Y: 0, Z: oz}, 2)
		for y := 12; y < 12+14; y++ {
			for z := oz; z < oz+16; z++ {
				for x := ox; x < ox+16; x++ {
					w.SetBlock(world.Pos{X: x, Y: y, Z: z}, world.B(world.TNT))
				}
			}
		}
	}
}

// tntOrigin places the c-th TNT cuboid. The first cuboid sits at the
// paper's position; additional cuboids (Scale > 1) are spaced 12 chunks
// apart so their chain reactions stay independent — independent enough, in
// fact, that the engine's region partitioner can drain each cascade on its
// own worker (craters plus their follow-up update waves never come within
// the partition's 3-chunk link distance of each other).
func tntOrigin(c int) (ox, oz int) {
	return 20 + c*192, 20
}

// Arm schedules the workload's triggers relative to now. For the TNT world
// this is the ignition "around 20 seconds after a player connects"
// (§3.3.1); call it right after player emulation connects. Other workloads
// need no arming.
func Arm(s *server.Server, spec Spec) {
	if spec.Kind != TNT {
		return
	}
	if spec.Scale < 1 {
		spec.Scale = 1
	}
	delay := spec.IgniteAfterTicks
	if delay <= 0 {
		delay = 400
	}
	for c := 0; c < spec.Scale; c++ {
		ox, oz := tntOrigin(c)
		s.Engine().ScheduleIgnite(world.Pos{X: ox + 8, Y: 18, Z: oz + 8}, delay)
	}
}

// FarmConstruct is one row of Table 3.
type FarmConstruct struct {
	Name             string
	Amount           int
	Author           string
	PopularityMViews float64
}

// Table3 returns the Farm-world construct inventory exactly as in Table 3.
func Table3() []FarmConstruct {
	return []FarmConstruct{
		{Name: "Entity Farm", Amount: 12, Author: "gnembon", PopularityMViews: 1.7},
		{Name: "Stone Farm", Amount: 4, Author: "Shulkercraft", PopularityMViews: 1.3},
		{Name: "Kelp Farm", Amount: 4, Author: "Mumbo Jumbo", PopularityMViews: 2.5},
		{Name: "Item Sorter", Amount: 1, Author: "Mysticat", PopularityMViews: 0.8},
	}
}
