package workload

import (
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
)

func newServerFor(t *testing.T, k Kind, f server.Flavor) *server.Server {
	t.Helper()
	w := NewWorld(k, world.PaperControlSeed)
	clock := env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
	m := env.NewMachine(env.DAS5TwoCore, 11)
	s := server.New(w, server.DefaultConfig(f), m, clock)
	if err := Install(s, k.DefaultSpec()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKindNamesAndLookup(t *testing.T) {
	for _, k := range All() {
		got, err := ByName(k.String())
		if err != nil || got != k {
			t.Errorf("ByName(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ByName("Chaos"); err == nil {
		t.Error("expected error for unknown workload")
	}
	if len(All()) != 5 {
		t.Error("expected the five Figure 8 workloads")
	}
}

func TestDefaultSpecs(t *testing.T) {
	for _, k := range All() {
		s := k.DefaultSpec()
		if k == Players {
			if s.Bots != 25 || !s.BotsMove || s.MoveArea != 32 {
				t.Errorf("Players spec wrong: %+v", s)
			}
		} else if s.Bots != 1 || s.BotsMove {
			// Environment-based workloads connect a single idle player
			// (§3.3.1).
			t.Errorf("%v spec wrong: %+v", k, s)
		}
	}
}

func TestTable3Inventory(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("Table 3 rows = %d, want 4", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Amount
	}
	if total != 21 {
		t.Fatalf("total constructs = %d, want 21 (12+4+4+1)", total)
	}
}

func TestNewWorldGenerators(t *testing.T) {
	if w := NewWorld(Control, 1); w.HighestSolidY(100, 100) == 10 && w.HighestSolidY(200, -50) == 10 {
		t.Error("Control world looks flat; expected noise terrain")
	}
	w := NewWorld(TNT, 1)
	if w.HighestSolidY(100, 100) != 10 || w.HighestSolidY(-5, 7) != 10 {
		t.Error("construct world should be flat")
	}
}

func TestTNTWorkloadExplodes(t *testing.T) {
	s := newServerFor(t, TNT, server.Vanilla)
	s.Connect("probe")
	Arm(s, TNT.DefaultSpec())
	w := s.World()

	// TNT cuboid present before ignition.
	tntBefore := countBlocks(w, world.TNT)
	if tntBefore != 16*16*14 {
		t.Fatalf("TNT blocks = %d, want %d", tntBefore, 16*16*14)
	}

	var peak time.Duration
	spec := TNT.DefaultSpec()
	for i := 0; i < spec.IgniteAfterTicks+1200; i++ {
		rec := s.Tick()
		if rec.Dur > peak {
			peak = rec.Dur
		}
	}
	tntAfter := countBlocks(w, world.TNT)
	if tntAfter > tntBefore/10 {
		t.Fatalf("chain reaction incomplete: %d of %d TNT left", tntAfter, tntBefore)
	}
	// The chain must overload the server hard (paper: multi-hundred-ms to
	// second-scale spikes).
	if peak < 200*time.Millisecond {
		t.Fatalf("TNT peak tick %v, want overload > 200ms", peak)
	}
}

func TestTNTQuietBeforeIgnition(t *testing.T) {
	s := newServerFor(t, TNT, server.Vanilla)
	s.Connect("probe")
	s.Tick() // join burst
	for i := 0; i < 100; i++ {
		rec := s.Tick()
		if rec.Dur > server.TickBudget {
			t.Fatalf("tick %d overloaded before ignition: %v", i, rec.Dur)
		}
	}
}

func TestFarmWorkloadProduces(t *testing.T) {
	s := newServerFor(t, Farm, server.Vanilla)
	s.Connect("probe")
	for i := 0; i < 2400; i++ { // two minutes of game time
		s.Tick()
	}
	if got := s.Engine().ItemsCollected; got == 0 {
		t.Fatal("farms collected no items in 2 minutes")
	}
	if s.EntityWorld().Count() == 0 {
		t.Fatal("no live entities in the farm world")
	}
}

func TestFarmClockPeriodRoughly4s(t *testing.T) {
	// Track cobblestone harvests over time: the stone farms fire every
	// ~80 ticks, so 2400 ticks should yield roughly 2400/80 × 4 farms
	// harvests; accept a broad band.
	s := newServerFor(t, Farm, server.Vanilla)
	s.Connect("probe")
	for i := 0; i < 2400; i++ {
		s.Tick()
	}
	collected := s.Engine().ItemsCollected
	if collected < 20 {
		t.Fatalf("harvest throughput too low: %d items", collected)
	}
}

func TestLagWorkloadAlternatesTicks(t *testing.T) {
	s := newServerFor(t, Lag, server.Vanilla)
	s.Connect("probe")
	// Warm up past the join burst and initial cascade.
	for i := 0; i < 60; i++ {
		s.Tick()
	}
	var evenBusy, oddBusy time.Duration
	var evenN, oddN int
	for i := 0; i < 200; i++ {
		rec := s.Tick()
		if rec.Tick%2 == 0 {
			evenBusy += rec.Dur
			evenN++
		} else {
			oddBusy += rec.Dur
			oddN++
		}
	}
	evenAvg := evenBusy / time.Duration(evenN)
	oddAvg := oddBusy / time.Duration(oddN)
	if evenAvg < 5*oddAvg {
		t.Fatalf("no heavy/light alternation: even avg %v, odd avg %v", evenAvg, oddAvg)
	}
	// Heavy ticks must be seriously overloaded.
	if evenAvg < 500*time.Millisecond {
		t.Fatalf("lag machine heavy ticks too light: %v", evenAvg)
	}
}

func TestLagSelfSustains(t *testing.T) {
	s := newServerFor(t, Lag, server.Vanilla)
	s.Connect("probe")
	for i := 0; i < 400; i++ {
		s.Tick()
	}
	// After 400 ticks the machine must still be producing updates.
	rec := s.Tick()
	if rec.Tick%2 == 1 {
		rec = s.Tick()
	}
	if rec.Work.BlockUpdateUS < 1000 {
		t.Fatalf("lag machine died out: redstone work %v µs", rec.Work.BlockUpdateUS)
	}
}

func TestControlStaysUnderBudget(t *testing.T) {
	s := newServerFor(t, Control, server.Vanilla)
	s.Connect("probe")
	s.Tick() // join burst may spike
	over := 0
	for i := 0; i < 300; i++ {
		if rec := s.Tick(); rec.Dur > server.TickBudget {
			over++
		}
	}
	if over > 15 {
		t.Fatalf("Control overloaded %d/300 ticks on the reference node", over)
	}
}

func TestInstallUnknownKind(t *testing.T) {
	s := newServerFor(t, Control, server.Vanilla)
	if err := Install(s, Spec{Kind: Kind(99)}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func countBlocks(w *world.World, id world.BlockID) int {
	n := 0
	for _, cp := range w.LoadedChunks() {
		c := w.ChunkIfLoaded(cp)
		for y := 0; y < world.Height; y++ {
			for z := 0; z < world.ChunkSize; z++ {
				for x := 0; x < world.ChunkSize; x++ {
					if c.At(x, y, z).ID == id {
						n++
					}
				}
			}
		}
	}
	return n
}
