package workload

import (
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
)

// Farm-world construction (Table 3). Each builder reconstructs the
// behaviour of a popular community design: the entity farm spawns and
// funnels mobs (gnembon's hostile mob farm), the stone farm generates
// cobblestone from a water+lava junction and harvests it with a
// clock-driven piston (Shulkercraft), the kelp farm grows kelp in a water
// column and harvests it with an observer-triggered piston (Mumbo Jumbo),
// and the item sorter is a hopper line absorbing drops (Mysticat).

const farmY = 12 // construction level: one above the flat-world surface

// farmClusterPitch separates scale copies of the farm district in X. The
// Table 3 constructs sit on a dense 14-block grid — one simulation region —
// so scaling builds whole additional districts 32 chunks away rather than
// growing the grid: the construct inventory multiplies exactly as before,
// and each district is an independent region for the parallel drains.
// Scale 1 is byte-identical to the historical layout.
const farmClusterPitch = 512

// installFarms builds the Table 3 inventory, one full district per scale
// step.
func installFarms(s *server.Server, spec Spec) {
	w := s.World()
	w.EnsureArea(world.Pos{X: 8, Y: 0, Z: 8}, 5)

	for cl := 0; cl < spec.Scale; cl++ {
		n := 0
		base := cl * farmClusterPitch
		place := func(build func(*world.World, world.Pos)) {
			// Spiral the constructs around spawn on a 14-block grid, inside
			// the players' view distance.
			gx, gz := n%5, n/5
			origin := world.Pos{X: base - 24 + gx*14, Y: farmY, Z: -24 + gz*14}
			build(w, origin)
			n++
		}
		for _, c := range Table3() {
			for i := 0; i < c.Amount; i++ {
				switch c.Name {
				case "Entity Farm":
					place(buildEntityFarm)
				case "Stone Farm":
					place(buildStoneFarm)
				case "Kelp Farm":
					place(buildKelpFarm)
				case "Item Sorter":
					place(buildItemSorter)
				}
			}
		}
	}
}

// platform lays a stone slab under a construct.
func platform(w *world.World, o world.Pos, sx, sz int) {
	for dz := -1; dz < sz+1; dz++ {
		for dx := -1; dx < sx+1; dx++ {
			w.SetBlock(world.Pos{X: o.X + dx, Y: o.Y - 1, Z: o.Z + dz}, world.B(world.Stone))
		}
	}
}

// buildEntityFarm: a spawner block, water channels that push mobs and
// drops, and a collection hopper. The spawner exercises dynamic spawn-point
// computation; the mobs exercise pathfinding over the platform.
func buildEntityFarm(w *world.World, o world.Pos) {
	platform(w, o, 7, 7)
	w.SetBlock(o.Add(3, 0, 3), world.B(world.Spawner))
	// Water channels along two edges push entities toward the hopper corner.
	for d := 0; d < 7; d++ {
		w.SetBlock(o.Add(d, 0, 6), world.Block{ID: world.Water, Meta: uint8(1 + d%7)})
		w.SetBlock(o.Add(6, 0, d), world.Block{ID: world.Water, Meta: uint8(1 + d%7)})
	}
	w.SetBlock(o.Add(6, -1, 6), world.B(world.Hopper))
}

// buildStoneFarm: water and lava meet over an air slot, forming
// cobblestone; a 10-repeater clock (period ≈ 4 s, matching the paper's
// "activated at a fixed interval of around 4 seconds") drives a piston that
// breaks the cobblestone into the hopper below.
func buildStoneFarm(w *world.World, o world.Pos) {
	platform(w, o, 10, 6)
	slot := o.Add(6, 0, 0)
	w.SetBlock(slot.North(), world.B(world.Water))
	w.SetBlock(slot.South(), world.B(world.Lava))
	// Containment so the fluids do not spread across the platform.
	for _, p := range []world.Pos{
		slot.North().North(), slot.North().East(), slot.North().West(),
		slot.South().South(), slot.South().East(), slot.South().West(),
	} {
		w.SetBlock(p, world.B(world.Glass))
	}
	w.SetBlock(slot.Down(), world.B(world.Hopper))
	// Piston breaks the generated cobblestone.
	w.SetBlock(slot.West(), world.B(world.Piston).WithFacing(world.DirEast))

	// Clock: two rows of 5 repeaters at max delay in a loop = 10 × 8 game
	// ticks = 4 s.
	rowZ, retZ := o.Z+2, o.Z+3
	x0 := o.X
	for i := 0; i < 5; i++ {
		w.SetBlock(world.Pos{X: x0 + i, Y: o.Y, Z: rowZ},
			world.Block{ID: world.Repeater, Meta: 3}.WithFacing(world.DirEast)) // delay 4
		w.SetBlock(world.Pos{X: x0 + 4 - i, Y: o.Y, Z: retZ},
			world.Block{ID: world.Repeater, Meta: 3}.WithFacing(world.DirWest))
	}
	// Corner wires joining the rows.
	w.SetBlock(world.Pos{X: x0 + 5, Y: o.Y, Z: rowZ}, world.B(world.RedstoneWire))
	w.SetBlock(world.Pos{X: x0 + 5, Y: o.Y, Z: retZ}, world.B(world.RedstoneWire))
	w.SetBlock(world.Pos{X: x0 - 1, Y: o.Y, Z: retZ}, world.B(world.RedstoneWire))
	w.SetBlock(world.Pos{X: x0 - 1, Y: o.Y, Z: rowZ}, world.B(world.RedstoneWire))
	// Tap: one wire from the corner toward the piston (which sits at
	// x0+5, o.Z and picks up the wire's power from the adjacent cell).
	w.SetBlock(world.Pos{X: x0 + 5, Y: o.Y, Z: o.Z + 1}, world.B(world.RedstoneWire))
	// Kick the loop with one powered repeater.
	w.SetBlock(world.Pos{X: x0, Y: o.Y, Z: rowZ},
		world.Block{ID: world.Repeater, Meta: 3}.WithFacing(world.DirEast).WithRepeaterPowered(true))
}

// buildKelpFarm: a kelp stalk in a glass-enclosed water column; an observer
// watches the growth cell and fires a piston that harvests the grown kelp
// into a hopper under the stalk (event-based activation, §3.3.1).
func buildKelpFarm(w *world.World, o world.Pos) {
	platform(w, o, 5, 5)
	base := o.Add(2, 0, 2)
	w.SetBlock(base.Down(), world.B(world.Hopper))
	w.SetBlock(base, world.Block{ID: world.Kelp, Meta: 0})
	grow := base.Up()

	// Water column: sources every level so harvested cells refill.
	for dy := 1; dy <= 5; dy++ {
		w.SetBlock(base.Add(0, dy, 0), world.B(world.Water))
	}
	// Glass containment around the column (skipping component positions).
	obs := grow.South()   // observer south of the growth cell, watching north
	piston := grow.East() // piston east of the growth cell, facing west into it
	wireA := obs.South()  // observer output (back) cell
	for dy := 0; dy <= 5; dy++ {
		for _, hp := range base.Add(0, dy, 0).NeighborsHorizontal() {
			if hp == obs || hp == piston {
				continue
			}
			w.SetBlock(hp, world.B(world.Glass))
		}
	}
	w.SetBlock(obs, world.B(world.Observer).WithFacing(world.DirNorth))
	w.SetBlock(piston, world.B(world.Piston).WithFacing(world.DirWest))
	// Wire from the observer's back around to the piston.
	w.SetBlock(wireA, world.B(world.RedstoneWire))
	w.SetBlock(wireA.East(), world.B(world.RedstoneWire))
	w.SetBlock(piston.South(), world.B(world.RedstoneWire))
}

// buildItemSorter: a hopper line with chests — absorbs stray drops and adds
// steady hopper tick load.
func buildItemSorter(w *world.World, o world.Pos) {
	platform(w, o, 8, 3)
	for i := 0; i < 8; i++ {
		w.SetBlock(o.Add(i, 0, 0), world.B(world.Hopper))
		w.SetBlock(o.Add(i, 0, 1), world.B(world.Chest))
	}
	// A feeding water stream above the hopper line.
	for i := 0; i < 8; i++ {
		w.SetBlock(o.Add(i, 2, 0), world.Block{ID: world.Water, Meta: uint8(1 + i%7)})
		w.SetBlock(o.Add(i, 1, 0), world.B(world.Glass))
	}
}
