package workload

import (
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
)

// Lag-machine construction (§3.3.1). The community design the paper uses
// "operates based on terrain simulation rules ... it uses many logic-gate
// constructs in a small area to cause a high volume of simulation rule
// activations". Our reconstruction uses the same principle: an array of
// rapid-pulser cells, each a pair of observers facing each other (every
// pulse of one is a block change the other observes, so the pair
// self-sustains), each fanning out into a redstone-wire mesh that must be
// repowered and depowered on every pulse.
//
// Because logic components evaluate on redstone ticks (every second game
// tick), the machine makes the game alternate between extremely heavy and
// nearly idle ticks — the pattern that maximizes the Instability Ratio
// (§5.3) and, on hardware-starved cloud nodes, starves client connections
// until the game crashes.

// lagCells is the number of pulser cells at scale 1, sized so heavy ticks
// reach the low seconds on a 2-core reference node.
const lagCells = 180

// lagMeshSide is the side of each cell's wire mesh.
const lagMeshSide = 10

// lagClusterPitch separates scale copies of the machine in X. One machine
// spans roughly 13 x 21 chunks of dense, every-tick-active redstone — a
// single simulation region by construction. Scaling up therefore builds
// whole additional machines 32 chunks away instead of extending the grid:
// the workload doubles exactly as before (2x cells, 2x rule activations),
// and each machine is an independent region the engine can drain on its own
// worker. Scale 1 is byte-identical to the historical layout.
const lagClusterPitch = 512

// installLagMachine builds the pulser-cell array, one full machine per
// scale step.
func installLagMachine(s *server.Server, spec Spec) {
	w := s.World()
	w.EnsureArea(world.Pos{X: 8, Y: 0, Z: 8}, 5)

	perRow := 8
	for cl := 0; cl < spec.Scale; cl++ {
		for c := 0; c < lagCells; c++ {
			ox := cl*lagClusterPitch - 64 + (c%perRow)*(lagMeshSide*2+6)
			oz := -64 + (c/perRow)*(lagMeshSide+4)
			buildLagCell(w, world.Pos{X: ox, Y: farmY, Z: oz})
		}
	}
}

// buildLagCell places one observer pair plus its fan-out meshes and kicks
// it into oscillation.
func buildLagCell(w *world.World, o world.Pos) {
	platform(w, o, lagMeshSide*2+4, lagMeshSide)

	a := o.Add(lagMeshSide+1, 0, lagMeshSide/2)
	b := a.East()
	// Wire meshes behind each observer's output (A outputs west, B east).
	for dz := 0; dz < lagMeshSide; dz++ {
		for dx := 0; dx < lagMeshSide; dx++ {
			w.SetBlock(world.Pos{X: a.X - 1 - dx, Y: o.Y, Z: o.Z + dz}, world.B(world.RedstoneWire))
			w.SetBlock(world.Pos{X: b.X + 1 + dx, Y: o.Y, Z: o.Z + dz}, world.B(world.RedstoneWire))
		}
	}
	// Placement order is the kick: A is placed first, so placing B is a
	// block change in the cell A watches — A pulses, B observes A's pulse,
	// and the pair oscillates from there.
	w.SetBlock(a, world.B(world.Observer).WithFacing(world.DirEast))
	w.SetBlock(b, world.B(world.Observer).WithFacing(world.DirWest))
}
