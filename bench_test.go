// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, plus ablation benches for the design choices DESIGN.md
// calls out. Each benchmark executes the same code path the cmd/experiments
// reproduction uses, at a reduced virtual duration so `go test -bench=.`
// stays tractable; cmd/experiments regenerates the full artifacts.
//
// Reported custom metrics: isr (Instability Ratio), tick_ms_mean, and where
// relevant resp_ms_p95, so benchmark output doubles as a compact regression
// record of the reproduced results.
package main

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/workload"
)

const benchDuration = 15 * time.Second

func benchSpec(k workload.Kind, f server.Flavor, p env.Profile) core.RunSpec {
	return core.RunSpec{
		Flavor:   f,
		Workload: k.DefaultSpec(),
		Env:      p,
		Duration: benchDuration,
		Seed:     7,
	}
}

func reportRun(b *testing.B, res core.RunResult) {
	b.ReportMetric(res.ISR, "isr")
	b.ReportMetric(res.TickSummary.Mean, "tick_ms_mean")
	if res.ResponseSummary.N > 0 {
		b.ReportMetric(res.ResponseSummary.P95, "resp_ms_p95")
	}
}

// BenchmarkFig1ResponseTime regenerates Figure 1: Minecraft response time on
// AWS under the Control and Farm workloads.
func BenchmarkFig1ResponseTime(b *testing.B) {
	for _, k := range []workload.Kind{workload.Control, workload.Farm} {
		b.Run(k.String(), func(b *testing.B) {
			var res core.RunResult
			for i := 0; i < b.N; i++ {
				res = core.Run(benchSpec(k, server.Vanilla, env.AWSLarge))
			}
			reportRun(b, res)
		})
	}
}

// BenchmarkFig6ISR regenerates Figure 6: the ISR metric itself — the
// analytic model and the metric evaluated over a long synthetic trace.
func BenchmarkFig6ISR(b *testing.B) {
	trace := metrics.SyntheticOutlierTrace(100_000, 25, 10, 50)
	b.ResetTimer()
	var isr float64
	for i := 0; i < b.N; i++ {
		isr = metrics.ISR(trace, 50, 136_000)
	}
	b.ReportMetric(isr, "isr")
	b.ReportMetric(metrics.ISRModel(10, 25), "isr_model")
}

// BenchmarkFig7 regenerates Figure 7 / MF1: response-time distributions of
// Minecraft and Forge under the environment-based workloads on AWS.
func BenchmarkFig7(b *testing.B) {
	for _, f := range []server.Flavor{server.Vanilla, server.Forge} {
		for _, k := range []workload.Kind{workload.Control, workload.Farm, workload.TNT} {
			b.Run(f.Name+"/"+k.String(), func(b *testing.B) {
				var res core.RunResult
				for i := 0; i < b.N; i++ {
					res = core.Run(benchSpec(k, f, env.AWSLarge))
				}
				reportRun(b, res)
			})
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 / MF2: ISR per MLG and workload on the
// cloud and self-hosted environments (Lag on AWS crashes, reported as isr=1).
func BenchmarkFig8(b *testing.B) {
	envs := []env.Profile{env.AWSLarge, env.DAS5TwoCore, env.DAS5SixteenCore}
	for _, p := range envs {
		for _, k := range []workload.Kind{workload.Control, workload.Farm, workload.Lag} {
			for _, f := range server.Flavors() {
				b.Run(p.Name+"/"+k.String()+"/"+f.Name, func(b *testing.B) {
					var res core.RunResult
					for i := 0; i < b.N; i++ {
						res = core.Run(benchSpec(k, f, p))
					}
					if res.Crashed {
						b.ReportMetric(1, "crashed")
					}
					reportRun(b, res)
				})
			}
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: tick-time series under the TNT
// workload on AWS (the series itself is the artifact; the bench validates
// its generation cost and shape).
func BenchmarkFig9(b *testing.B) {
	var res core.RunResult
	for i := 0; i < b.N; i++ {
		res = core.Run(benchSpec(workload.TNT, server.Vanilla, env.AWSLarge))
	}
	reportRun(b, res)
	b.ReportMetric(res.TickSummary.Max, "tick_ms_peak")
}

// BenchmarkFig10 regenerates Figure 10 / MF3: iteration-to-iteration ISR
// distributions of the Players workload per environment.
func BenchmarkFig10(b *testing.B) {
	for _, p := range []env.Profile{env.DAS5TwoCore, env.AzureD2, env.AWSLarge} {
		b.Run(p.Name, func(b *testing.B) {
			var iqr, med float64
			for i := 0; i < b.N; i++ {
				rs := core.RunIterations(benchSpec(workload.Players, server.Vanilla, p), 5)
				s := metrics.Summarize(core.ISRs(rs))
				iqr, med = s.IQR, s.Median
			}
			b.ReportMetric(med, "isr_median")
			b.ReportMetric(iqr, "isr_iqr")
		})
	}
}

// BenchmarkFig11 regenerates Figure 11 / MF4: the entity share of busy tick
// time on AWS.
func BenchmarkFig11(b *testing.B) {
	for _, f := range server.Flavors() {
		b.Run(f.Name, func(b *testing.B) {
			var entityShare float64
			for i := 0; i < b.N; i++ {
				res := core.Run(benchSpec(workload.TNT, f, env.AWSLarge))
				d := res.Fig11
				busy := d.PlayerUS + d.BlockUpdateUS + d.BlockAddRemoveUS + d.EntityUS + d.OtherUS
				if busy > 0 {
					entityShare = d.EntityUS / busy
				}
			}
			b.ReportMetric(entityShare*100, "entity_pct_of_busy")
		})
	}
}

// BenchmarkFig12 regenerates Figure 12 / MF5: TNT tick time and ISR across
// the AWS node-size ladder.
func BenchmarkFig12(b *testing.B) {
	for _, p := range env.NodeSizes() {
		b.Run(p.Name, func(b *testing.B) {
			var res core.RunResult
			for i := 0; i < b.N; i++ {
				res = core.Run(benchSpec(workload.TNT, server.Vanilla, p))
			}
			reportRun(b, res)
		})
	}
}

// BenchmarkTab2WorldSizes regenerates Table 2: building and serializing the
// workload worlds.
func BenchmarkTab2WorldSizes(b *testing.B) {
	for _, k := range []workload.Kind{workload.Control, workload.TNT, workload.Farm, workload.Lag} {
		b.Run(k.String(), func(b *testing.B) {
			var sizeMB float64
			for i := 0; i < b.N; i++ {
				w := workload.NewWorld(k, world.PaperControlSeed)
				clock := env.NewVirtualClock(time.Unix(0, 0))
				m := env.NewMachine(env.DAS5TwoCore, 1)
				s := server.New(w, server.DefaultConfig(server.Vanilla), m, clock)
				if err := workload.Install(s, k.DefaultSpec()); err != nil {
					b.Fatal(err)
				}
				w.EnsureArea(world.Pos{X: 8, Y: 0, Z: 8}, 5)
				n, err := w.SavedSize()
				if err != nil {
					b.Fatal(err)
				}
				sizeMB = float64(n) / 1e6
			}
			b.ReportMetric(sizeMB, "size_mb")
		})
	}
}

// BenchmarkTab8EntityTraffic regenerates Table 8: the entity-related share
// of network messages and bytes.
func BenchmarkTab8EntityTraffic(b *testing.B) {
	var msgPct, bytePct float64
	for i := 0; i < b.N; i++ {
		res := core.Run(benchSpec(workload.Farm, server.Vanilla, env.AWSLarge))
		if res.Net.Msgs > 0 {
			msgPct = float64(res.Net.EntityMsgs) / float64(res.Net.Msgs) * 100
			bytePct = float64(res.Net.EntityBytes) / float64(res.Net.Bytes) * 100
		}
	}
	b.ReportMetric(msgPct, "entity_msgs_pct")
	b.ReportMetric(bytePct, "entity_bytes_pct")
}

// --- Parallel orchestration benches ---

// BenchmarkRunIterations contrasts the serial iteration loop against the
// worker-pool scheduler on an 8-iteration Players grid (the MF3 shape).
// On >= 4 cores the parallel variants complete the same grid with >= 2x
// wall-clock speedup while producing bit-identical per-iteration results
// (guarded by TestParallelMatchesSerial in internal/core).
func BenchmarkRunIterations(b *testing.B) {
	spec := benchSpec(workload.Players, server.Vanilla, env.DAS5TwoCore)
	spec.Duration = 5 * time.Second
	const n = 8
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.RunIterations(spec, n)
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			if runtime.NumCPU() < workers {
				b.Logf("only %d CPUs; %d workers cannot show full speedup", runtime.NumCPU(), workers)
			}
			for i := 0; i < b.N; i++ {
				core.RunIterationsParallel(spec, n, workers)
			}
		})
	}
}

// BenchmarkRunCache measures the memoized grid drain: the second GetAll of
// an identical spec list is pure cache hits.
func BenchmarkRunCache(b *testing.B) {
	spec := benchSpec(workload.Control, server.Vanilla, env.DAS5TwoCore)
	spec.Duration = 2 * time.Second
	specs := make([]core.RunSpec, 16)
	for i := range specs {
		specs[i] = spec
		specs[i].Iteration = i % 4 // 4 distinct runs, 12 duplicates
	}
	cache := core.NewRunCache()
	cache.GetAll(specs, 0) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.GetAll(specs, 0)
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationActivation contrasts the Paper entity-activation range
// against a Paper variant with it disabled, under mob-heavy load.
func BenchmarkAblationActivation(b *testing.B) {
	run := func(b *testing.B, f server.Flavor) {
		var res core.RunResult
		for i := 0; i < b.N; i++ {
			res = core.Run(benchSpec(workload.Farm, f, env.DAS5TwoCore))
		}
		reportRun(b, res)
	}
	b.Run("activation-on", func(b *testing.B) { run(b, server.Paper) })
	noAct := server.Paper
	noAct.Name = "PaperMC-noact"
	noAct.ActivationRange = 0
	b.Run("activation-off", func(b *testing.B) { run(b, noAct) })
}

// BenchmarkAblationRedstoneBatch contrasts batched and naive wire updates
// under the Lag workload.
func BenchmarkAblationRedstoneBatch(b *testing.B) {
	run := func(b *testing.B, f server.Flavor) {
		var res core.RunResult
		for i := 0; i < b.N; i++ {
			res = core.Run(benchSpec(workload.Lag, f, env.DAS5TwoCore))
		}
		reportRun(b, res)
	}
	batched := server.Vanilla
	batched.Name = "Vanilla-batched"
	batched.RedstoneBatch = true
	b.Run("batch-off", func(b *testing.B) { run(b, server.Vanilla) })
	b.Run("batch-on", func(b *testing.B) { run(b, batched) })
}

// BenchmarkAblationExplosionMerge contrasts merged and per-explosion blast
// scans under the TNT workload.
func BenchmarkAblationExplosionMerge(b *testing.B) {
	run := func(b *testing.B, f server.Flavor) {
		var res core.RunResult
		for i := 0; i < b.N; i++ {
			res = core.Run(benchSpec(workload.TNT, f, env.DAS5TwoCore))
		}
		reportRun(b, res)
	}
	merged := server.Vanilla
	merged.Name = "Vanilla-merged"
	merged.ExplosionMerge = true
	b.Run("merge-off", func(b *testing.B) { run(b, server.Vanilla) })
	b.Run("merge-on", func(b *testing.B) { run(b, merged) })
}

// BenchmarkAblationVirtualVsWall contrasts the virtual-time engine against
// wall-clock ticking for the raw engine loop (no environment model). The
// virtual path is what makes hour-scale experiment grids tractable.
func BenchmarkAblationVirtualVsWall(b *testing.B) {
	b.Run("virtual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
			clock := env.NewVirtualClock(time.Unix(0, 0))
			m := env.NewMachine(env.DAS5TwoCore, 1)
			s := server.New(w, server.DefaultConfig(server.Vanilla), m, clock)
			s.Connect("bench")
			for t := 0; t < 40; t++ {
				s.Tick()
			}
		}
	})
	b.Run("wall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
			s := server.New(w, server.DefaultConfig(server.Vanilla), nil, fastClock{})
			s.Connect("bench")
			for t := 0; t < 40; t++ {
				s.Tick()
			}
		}
	})
}

// fastClock measures real time but skips the idle wait, so the wall-mode
// bench measures compute cost rather than sleeping 50 ms per tick.
type fastClock struct{}

func (fastClock) Now() time.Time        { return time.Now() }
func (fastClock) Sleep(d time.Duration) {}

// --- Micro-benchmarks of the hot engine paths ---

// BenchmarkEngineTickControl measures one steady-state Control tick.
func BenchmarkEngineTickControl(b *testing.B) {
	w := world.New(world.NewNoiseGenerator(world.PaperControlSeed))
	clock := env.NewVirtualClock(time.Unix(0, 0))
	m := env.NewMachine(env.DAS5TwoCore, 1)
	s := server.New(w, server.DefaultConfig(server.Vanilla), m, clock)
	s.Connect("bench")
	for t := 0; t < 100; t++ {
		s.Tick()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

// BenchmarkWorldSetBlock measures raw terrain mutation with listeners.
func BenchmarkWorldSetBlock(b *testing.B) {
	w := world.New(&world.FlatGenerator{SurfaceY: 10, Surface: world.Grass})
	w.EnsureArea(world.Pos{X: 0, Y: 0, Z: 0}, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := world.Pos{X: i % 32, Y: 20 + i%30, Z: (i / 32) % 32}
		w.SetBlock(p, world.B(world.Stone))
	}
}

// BenchmarkISRMetric measures the metric on a realistic 1200-tick trace.
func BenchmarkISRMetric(b *testing.B) {
	trace := metrics.SyntheticOutlierTrace(1200, 25, 10, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.ISR(trace, 50, 1632)
	}
}
