// Command scenario runs the scenario-simulation harness from the command
// line: the curated library, a single named scenario, or a sweep of
// generated random scenarios, each executed against lockstep twin servers
// at several SimWorkers values with invariants checked after every step.
//
// Usage:
//
//	scenario -list                 # list curated scenarios
//	scenario                       # run the curated library
//	scenario -run cross-region-tnt # run one curated scenario
//	scenario -rounds 200           # model-check 200 random scenarios
//	scenario -seed 0x5eed002a      # replay one generated scenario
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/scenario"
)

// interrupted reports whether SIGINT/SIGTERM has arrived: long sweeps check
// it between scenarios so an interrupt finishes the in-flight run, prints
// the summary so far, and exits cleanly instead of dying mid-scenario.
func interrupted(sig chan os.Signal) bool {
	select {
	case <-sig:
		return true
	default:
		return false
	}
}

func main() {
	var (
		list    = flag.Bool("list", false, "list curated scenarios and exit")
		run     = flag.String("run", "", "run one curated scenario by name")
		seed    = flag.String("seed", "", "replay one generated scenario from this seed (decimal or 0x hex)")
		rounds  = flag.Int("rounds", 0, "model-check this many random scenarios")
		base    = flag.Uint64("base", 0x5eed0000, "first seed of the random sweep")
		workers = flag.String("workers", "1,2,4", "comma-separated SimWorkers values for the twins")
	)
	flag.Parse()

	opts := scenario.Options{}
	for _, f := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			fmt.Fprintf(os.Stderr, "bad -workers entry %q\n", f)
			os.Exit(2)
		}
		opts.Workers = append(opts.Workers, n)
	}

	switch {
	case *list:
		for _, sc := range scenario.Library() {
			fmt.Printf("%-28s %s x%d, %s, %d steps, %d ticks\n",
				sc.Name, sc.Workload, max(1, sc.Scale), sc.Flavor.Name, len(sc.Steps), sc.TotalTicks())
		}

	case *run != "":
		sc := scenario.ByName(*run)
		if sc == nil {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (see -list)\n", *run)
			os.Exit(2)
		}
		exit(scenario.Run(sc, opts))

	case *seed != "":
		n, err := strconv.ParseUint(strings.TrimPrefix(*seed, "0x"), seedBase(*seed), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -seed %q: %v\n", *seed, err)
			os.Exit(2)
		}
		exit(scenario.RunRandom(n, opts))

	case *rounds > 0:
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		failed, ran := 0, 0
		for i := 0; i < *rounds; i++ {
			if interrupted(sig) {
				fmt.Printf("interrupted after %d/%d rounds\n", ran, *rounds)
				break
			}
			res := scenario.RunRandom(*base+uint64(i), opts)
			fmt.Println(res.String())
			ran++
			if res.Failed {
				failed++
			}
		}
		if failed > 0 {
			fmt.Printf("%d/%d random scenarios failed\n", failed, ran)
			os.Exit(1)
		}
		fmt.Printf("all %d random scenarios passed\n", ran)

	default:
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		failed := 0
		for _, sc := range scenario.Library() {
			if interrupted(sig) {
				fmt.Println("interrupted")
				break
			}
			res := scenario.Run(sc, opts)
			fmt.Println(res.String())
			if res.Failed {
				failed++
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
	}
}

func seedBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func exit(res *scenario.Result) {
	fmt.Println(res.String())
	if res.Failed {
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
