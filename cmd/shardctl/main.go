// Command shardctl exercises a sharded deployment end to end and exits
// nonzero when any check fails — the CI shard-smoke entry point.
//
// Usage:
//
//	shardctl [-bots 50] [-ticks 200] [-kill-at 100] [-takeover-within 40]
//	         [-split 16] [-world Farm] [-tick-every 10ms]
//
// The smoke builds a 2-shard cluster in-process (chunk columns split at
// -split), serves each shard on its own loopback TCP listener, fronts them
// with the player gateway, and connects -bots random-walk bots whose
// wander area straddles the shard boundary, so routing, halo mirrors,
// handoffs and boundary re-routes all carry live traffic. At -kill-at
// ticks the second shard is killed the hard way — its server abandoned,
// its listener closed, its inter-shard links dropped — and the smoke then
// asserts that failover (standby restores the newest snapshot, replays the
// gap, relinks, and takes the shard's address back over at the gateway)
// completes within -takeover-within ticks, that the cluster's exchange
// never faulted, and that the bots survived the takeover without their
// gateway connections dying.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/bot"
	"repro/internal/env"
	"repro/internal/mlg/persist"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/shard"
	"repro/internal/workload"
)

func main() {
	var (
		bots      = flag.Int("bots", 50, "swarm size")
		ticks     = flag.Int("ticks", 200, "total cluster ticks")
		killAt    = flag.Int("kill-at", 100, "tick at which shard 1 is killed")
		within    = flag.Int("takeover-within", 40, "ticks allowed for standby takeover")
		split     = flag.Int("split", 16, "chunk-X split between the two shards")
		worldName = flag.String("world", "Farm", "workload world")
		tickEvery = flag.Duration("tick-every", 10*time.Millisecond, "cluster tick pacing (compressed wall clock)")
	)
	flag.Parse()
	if err := run(*bots, *ticks, *killAt, *within, int32(*split), *worldName, *tickEvery); err != nil {
		log.Printf("shard-smoke: FAIL: %v", err)
		os.Exit(1)
	}
	log.Printf("shard-smoke: PASS")
}

func run(bots, ticks, killAt, within int, split int32, worldName string, tickEvery time.Duration) error {
	kind, err := workload.ByName(worldName)
	if err != nil {
		return err
	}
	spec := kind.DefaultSpec()
	smap := shard.Map{Splits: []int32{split}}

	// Per-shard snapshot stores: the failover path restores from these.
	stores := make([]*persist.Store, smap.Count())
	for i := range stores {
		dir, err := os.MkdirTemp("", fmt.Sprintf("shardctl-%d-", i))
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if stores[i], err = persist.NewStore(dir); err != nil {
			return err
		}
	}

	cluster, err := shard.NewCluster(shard.ClusterConfig{
		Map: smap,
		Build: func(i int, owns func(world.ChunkPos) bool) (*server.Server, error) {
			w := workload.NewWorld(kind, world.PaperControlSeed)
			cfg := server.DefaultConfig(server.Vanilla)
			cfg.Shard = server.ShardConfig{Count: smap.Count(), Index: i, Owns: owns}
			// Sync snapshots every 20 ticks: the failover restore point is
			// never more than a second of virtual time behind the kill.
			cfg.Persist = server.PersistConfig{Store: stores[i], Every: 20, Sync: true}
			return server.New(w, cfg, nil, env.RealClock{}), nil
		},
		Install: func(s *server.Server, i int) error {
			if err := workload.Install(s, spec); err != nil {
				return err
			}
			workload.Arm(s, spec)
			return nil
		},
		Stores: stores,
	})
	if err != nil {
		return err
	}

	// Each shard serves players on its own loopback listener; the gateway
	// fronts them on one address.
	listeners := make([]net.Listener, smap.Count())
	addrs := make([]string, smap.Count())
	serveShard := func(i int) error {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
		s := cluster.Shard(i)
		go s.Serve(ln)
		return nil
	}
	for i := 0; i < smap.Count(); i++ {
		if err := serveShard(i); err != nil {
			return err
		}
	}

	// Failover wiring: the gateway reports a dead shard; the tick loop
	// performs the restore between ticks (the cluster is not tick-safe to
	// mutate from another goroutine) and hands the new address back.
	shardDown := make(chan int, smap.Count())
	gw, err := shard.NewGateway(shard.GatewayConfig{
		Map:         smap,
		Addrs:       addrs,
		OnShardDown: func(i int) { shardDown <- i },
		RetryEvery:  20 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go gw.Serve(gln)
	log.Printf("gateway on %s, shards %v, split at chunk X=%d", gln.Addr(), addrs, split)

	// A few warmup ticks before bots connect, like every harness.
	for i := 0; i < 30; i++ {
		cluster.Tick()
	}

	// Bots: random walks straddling the boundary (block X = split*16), so
	// a share of them keeps crossing shards through the whole run.
	clients := make([]*bot.Client, 0, bots)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	boundaryX := float64(split) * world.ChunkSize
	for i := 0; i < bots; i++ {
		c, err := bot.Connect(gln.Addr().String(), bot.Config{
			Name:        fmt.Sprintf("smoke-%03d", i),
			Behavior:    bot.RandomWalk,
			AreaOriginX: boundaryX - 16,
			AreaOriginZ: 8,
			AreaSide:    32,
			BaseY:       40,
			Seed:        int64(i + 1),
		})
		if err != nil {
			return fmt.Errorf("bot %d connect: %w", i, err)
		}
		clients = append(clients, c)
	}
	log.Printf("%d bots connected through the gateway", bots)

	killTick, restoredTick := -1, -1
	for t := 0; t < ticks; t++ {
		cluster.Tick()
		time.Sleep(tickEvery)

		if t == killAt {
			log.Printf("tick %d: killing shard 1", t)
			cluster.KillShard(1)
			listeners[1].Close()
			killTick = t
		}

		// Apply failover between ticks.
		select {
		case i := <-shardDown:
			if cluster.Shard(i) != nil {
				break // stale signal from a retry burst
			}
			log.Printf("tick %d: gateway reported shard %d down; restoring standby", t, i)
			if err := cluster.RestoreShard(i); err != nil {
				return fmt.Errorf("restore shard %d: %w", i, err)
			}
			if err := serveShard(i); err != nil {
				return err
			}
			gw.SetAddr(i, addrs[i])
			restoredTick = t
			log.Printf("tick %d: shard %d standby serving on %s", t, i, addrs[i])
		default:
		}
	}

	if err := cluster.Err(); err != nil {
		return fmt.Errorf("cluster exchange fault: %w", err)
	}
	if killTick < 0 {
		return fmt.Errorf("kill tick %d never reached (ran %d ticks)", killAt, ticks)
	}
	if restoredTick < 0 {
		return fmt.Errorf("standby never took over after the kill at tick %d", killTick)
	}
	if restoredTick-killTick > within {
		return fmt.Errorf("takeover took %d ticks, budget %d", restoredTick-killTick, within)
	}
	alive := 0
	for _, c := range clients {
		select {
		case <-c.Done():
		default:
			alive++
		}
	}
	if alive < bots*9/10 {
		return fmt.Errorf("only %d/%d bots survived the takeover", alive, bots)
	}
	players := 0
	for i := 0; i < smap.Count(); i++ {
		if s := cluster.Shard(i); s != nil {
			players += s.PlayerCount()
		}
	}
	log.Printf("takeover in %d ticks; %d/%d bots alive; %d players across shards",
		restoredTick-killTick, alive, bots, players)
	return nil
}
