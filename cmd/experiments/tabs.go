package main

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/report"
	"repro/internal/workload"
)

// tab2 reproduces Table 2: the workload starting-point worlds and their
// serialized sizes. (Absolute sizes differ from the paper's Minecraft
// region files — our worlds are 64 blocks tall and RLE+gzip encoded — but
// the inventory and the relative ordering are the artifact.)
func tab2(c *ctx) (string, error) {
	props := map[workload.Kind]string{
		workload.Control: "Freshly generated world",
		workload.TNT:     "Entity actions, terrain updates",
		workload.Farm:    "Resource Farm constructs",
		workload.Lag:     "Complex simulated construct, stress test",
	}
	var rows [][]string
	for _, k := range []workload.Kind{workload.Control, workload.TNT, workload.Farm, workload.Lag} {
		w := workload.NewWorld(k, world.PaperControlSeed)
		clock := env.NewVirtualClock(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
		m := env.NewMachine(env.DAS5TwoCore, 1)
		s := server.New(w, server.DefaultConfig(server.Vanilla), m, clock)
		if err := workload.Install(s, k.DefaultSpec()); err != nil {
			return "", err
		}
		// Load the area a joining player would see, as the paper's worlds
		// include their generated spawn region.
		w.EnsureArea(world.Pos{X: 8, Y: 0, Z: 8}, 5)
		size, err := w.SavedSize()
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{k.String(), props[k],
			fmt.Sprintf("%.3f", float64(size)/1e6),
			fmt.Sprint(w.ChunkCount()), fmt.Sprint(w.NonAirBlocks())})
	}
	err := report.WriteCSV(filepath.Join(c.out, "tab2.csv"),
		[]string{"name", "properties", "size_mb", "chunks", "non_air_blocks"}, rows)
	return report.Table([]string{"Name", "Properties", "Size [MB]", "Chunks", "Blocks"}, rows), err
}

// tab3 reproduces Table 3: the simulated constructs in the Farm world.
func tab3(c *ctx) (string, error) {
	var rows [][]string
	for _, r := range workload.Table3() {
		rows = append(rows, []string{r.Name, fmt.Sprint(r.Amount), r.Author,
			fmt.Sprintf("%.1f", r.PopularityMViews)})
	}
	err := report.WriteCSV(filepath.Join(c.out, "tab3.csv"),
		[]string{"name", "amount", "author", "popularity_mviews"}, rows)
	return report.Table([]string{"Name", "Amount", "Author", "Popularity [1e6 views]"}, rows), err
}

// tab6 reproduces Table 6: comparison of ISR with existing variability
// metrics, plus an empirical demonstration on the clustered-vs-spread
// example traces.
func tab6(c *ctx) (string, error) {
	var rows [][]string
	for _, m := range metrics.Table6() {
		rows = append(rows, []string{m.Name,
			check(m.OrderDependent), check(m.IrregularSampling), check(m.Normalized)})
	}
	if err := report.WriteCSV(filepath.Join(c.out, "tab6.csv"),
		[]string{"metric", "order_dependent", "irregular_sampling", "normalized"}, rows); err != nil {
		return "", err
	}
	out := report.Table([]string{"Metric", "Order Dependent", "Irregular Sampling", "Normalized"}, rows)

	// Empirical demonstration: identical distributions, different orders.
	clustered := metrics.FrontLoadedOutlierTrace(1000, 5, 20, 50)
	spread := metrics.SpreadOutlierTrace(1000, 5, 20, 50)
	ne := 1095
	demo := [][]string{
		{"Standard deviation", report.F(metrics.StdDev(clustered)), report.F(metrics.StdDev(spread))},
		{"Allan variance", report.F(metrics.AllanVariance(clustered)), report.F(metrics.AllanVariance(spread))},
		{"Jitter (RFC3550)", report.F(metrics.RFC3550Jitter(clustered)), report.F(metrics.RFC3550Jitter(spread))},
		{"ISR", report.F(metrics.ISR(clustered, 50, ne)), report.F(metrics.ISR(spread, 50, ne))},
	}
	out += "\nempirical (same value distribution, different order):\n"
	out += report.Table([]string{"Metric", "clustered outliers", "spread outliers"}, demo)
	return out, nil
}

func check(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// tab7 reproduces Table 7: hardware recommendations from MLG hosting
// companies.
func tab7(c *ctx) (string, error) {
	var rows [][]string
	for _, r := range env.Table7() {
		v := "NP"
		if !r.VCPUsNP && r.VCPUs > 0 {
			v = fmt.Sprint(r.VCPUs)
		}
		speed := "NP"
		switch {
		case r.SpeedVar:
			speed = "V"
		case !r.SpeedNP && r.CPUSpeedGHz > 0:
			speed = fmt.Sprintf("%.1f", r.CPUSpeedGHz)
		}
		rows = append(rows, []string{r.Service, fmt.Sprintf("%.1f", r.RAMGB), v, speed})
	}
	vc, ram := env.ModalRecommendation()
	out := report.Table([]string{"Service", "RAM [GB]", "vCPU [#]", "CPU Speed [GHz]"}, rows)
	out += fmt.Sprintf("\nmost common published configuration: %d vCPU / %.0f GB RAM\n", vc, ram)
	err := report.WriteCSV(filepath.Join(c.out, "tab7.csv"),
		[]string{"service", "ram_gb", "vcpus", "cpu_speed_ghz"}, rows)
	return out, err
}

// tab8 reproduces Table 8: the entity-related share of network messages
// (computation column) and of bytes sent (communication column) on AWS.
func tab8(c *ctx) (string, error) {
	var rows [][]string
	for _, f := range server.Flavors() {
		for _, k := range tab8Kinds {
			r := c.run(f, k, env.AWSLarge, 0)
			var msgPct, bytePct float64
			if r.Net.Msgs > 0 {
				msgPct = float64(r.Net.EntityMsgs) / float64(r.Net.Msgs) * 100
			}
			if r.Net.Bytes > 0 {
				bytePct = float64(r.Net.EntityBytes) / float64(r.Net.Bytes) * 100
			}
			rows = append(rows, []string{f.Name, k.String(),
				fmt.Sprintf("%.1f", msgPct), fmt.Sprintf("%.1f", bytePct)})
		}
	}
	err := report.WriteCSV(filepath.Join(c.out, "tab8.csv"),
		[]string{"server", "workload", "entity_msgs_pct", "entity_bytes_pct"}, rows)
	return report.Table([]string{"Server", "Workload", "Computation [%msgs]", "Communication [%bytes]"}, rows), err
}
