package main

import (
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/workload"
)

// ctx carries experiment parameters and a cross-experiment run cache:
// several artifacts (Figures 7, 9, 11, Table 8) are different views of the
// same benchmark grid, so identical runs execute once. The cache is
// core.RunCache, keyed on the full RunSpec and safe for the parallel
// prewarm in main.
type ctx struct {
	out        string
	duration   time.Duration
	iterations int
	fig10Iters int
	workers    int
	cache      *core.RunCache
}

// spec builds the canonical RunSpec for one grid cell. Seeds hash the
// flavor name (FNV-1a) so flavors with equal-length names do not share a
// seed, mixed with the workload kind.
func (c *ctx) spec(f server.Flavor, k workload.Kind, p env.Profile, iter int) core.RunSpec {
	return core.RunSpec{
		Flavor:    f,
		Workload:  k.DefaultSpec(),
		Env:       p,
		Duration:  c.duration,
		Iteration: iter,
		Seed:      core.FlavorSeed(f.Name) + int64(k)*17,
	}
}

// run executes (or recalls) one benchmark run.
func (c *ctx) run(f server.Flavor, k workload.Kind, p env.Profile, iter int) core.RunResult {
	return c.cache.Get(c.spec(f, k, p, iter))
}

// pooledResponses pools response-time samples over the configured
// iteration count.
func (c *ctx) pooledResponses(f server.Flavor, k workload.Kind, p env.Profile) []float64 {
	var all []float64
	for it := 0; it < c.iterations; it++ {
		all = append(all, c.run(f, k, p, it).ResponseMS...)
	}
	return all
}

// --- Per-experiment grids ---
//
// Each experiment declares the spec list it will consume, so main can hand
// the whole figure/table grid to one parallel scheduler before the
// (serial, formatting-only) experiment bodies execute against a warm cache.
// The flavor/kind/env lists below are the single source of truth for both
// the grid declarations and the experiment bodies in figs.go/tabs.go — a
// cell added to a body automatically joins the parallel prewarm.

var (
	fig1Kinds   = []workload.Kind{workload.Control, workload.Farm}
	fig7Flavors = []server.Flavor{server.Vanilla, server.Forge}
	fig7Kinds   = []workload.Kind{workload.Control, workload.Farm, workload.TNT}
	fig8Envs    = []env.Profile{env.AWSLarge, env.DAS5TwoCore, env.DAS5SixteenCore}
	fig8Kinds   = []workload.Kind{workload.Control, workload.Farm, workload.TNT, workload.Lag, workload.Players}
	fig9Kinds   = []workload.Kind{workload.Control, workload.Farm, workload.TNT, workload.Players}
	fig10Envs   = []env.Profile{env.DAS5TwoCore, env.AzureD2, env.AWSLarge}
	fig11Kinds  = []workload.Kind{workload.TNT, workload.Farm, workload.Control}
	tab8Kinds   = []workload.Kind{workload.Control, workload.Farm, workload.TNT}
)

func (c *ctx) cross(flavors []server.Flavor, kinds []workload.Kind, envs []env.Profile, iters int) []core.RunSpec {
	var specs []core.RunSpec
	for _, p := range envs {
		for _, k := range kinds {
			for _, f := range flavors {
				for it := 0; it < iters; it++ {
					specs = append(specs, c.spec(f, k, p, it))
				}
			}
		}
	}
	return specs
}

func fig1Grid(c *ctx) []core.RunSpec {
	return c.cross([]server.Flavor{server.Vanilla}, fig1Kinds,
		[]env.Profile{env.AWSLarge}, c.iterations)
}

func fig7Grid(c *ctx) []core.RunSpec {
	return c.cross(fig7Flavors, fig7Kinds,
		[]env.Profile{env.AWSLarge}, c.iterations)
}

func fig8Grid(c *ctx) []core.RunSpec {
	return c.cross(server.Flavors(), fig8Kinds, fig8Envs, 1)
}

func fig9Grid(c *ctx) []core.RunSpec {
	return c.cross(server.Flavors(), fig9Kinds,
		[]env.Profile{env.AWSLarge}, 1)
}

func fig10Grid(c *ctx) []core.RunSpec {
	return c.cross(server.Flavors(),
		[]workload.Kind{workload.Players}, fig10Envs, c.fig10Iters)
}

func fig11Grid(c *ctx) []core.RunSpec {
	return c.cross(server.Flavors(), fig11Kinds,
		[]env.Profile{env.AWSLarge}, 1)
}

func fig12Grid(c *ctx) []core.RunSpec {
	return c.cross(server.Flavors(),
		[]workload.Kind{workload.TNT},
		env.NodeSizes(), 1)
}

func tab8Grid(c *ctx) []core.RunSpec {
	return c.cross(server.Flavors(), tab8Kinds,
		[]env.Profile{env.AWSLarge}, 1)
}
