package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/mlg/server"
	"repro/internal/workload"
)

// ctx carries experiment parameters and a cross-experiment run cache:
// several artifacts (Figures 7, 9, 11, Table 8) are different views of the
// same benchmark grid, so identical runs execute once.
type ctx struct {
	out        string
	duration   time.Duration
	iterations int
	fig10Iters int
	cache      map[string]cached
}

type cached struct {
	res core.RunResult
}

// run executes (or recalls) one benchmark run.
func (c *ctx) run(f server.Flavor, k workload.Kind, p env.Profile, iter int) core.RunResult {
	key := fmt.Sprintf("%s|%s|%s|%d|%v", f.Name, k, p.Name, iter, c.duration)
	if hit, ok := c.cache[key]; ok {
		return hit.res
	}
	spec := core.RunSpec{
		Flavor:    f,
		Workload:  k.DefaultSpec(),
		Env:       p,
		Duration:  c.duration,
		Iteration: iter,
		Seed:      int64(len(f.Name))*131 + int64(k)*17,
	}
	res := core.Run(spec)
	c.cache[key] = cached{res: res}
	return res
}

// pooledResponses pools response-time samples over the configured
// iteration count.
func (c *ctx) pooledResponses(f server.Flavor, k workload.Kind, p env.Profile) []float64 {
	var all []float64
	for it := 0; it < c.iterations; it++ {
		all = append(all, c.run(f, k, p, it).ResponseMS...)
	}
	return all
}
