// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) using the Meterstick reproduction: it runs the benchmark
// grid on the modelled deployment environments, writes one CSV per artifact
// under -out, and prints ASCII renditions of each plot.
//
// Usage:
//
//	experiments [-run fig8] [-out results] [-duration 60s] [-iterations 3]
//	            [-fig10-iters 50] [-parallel N] [-quick]
//
// -quick reduces durations and iteration counts for a fast smoke pass.
// -parallel sets the worker count for the benchmark-grid scheduler
// (default GOMAXPROCS; 1 executes the grid serially). Results are
// bit-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	var (
		runPat     = flag.String("run", "", "only run experiments whose id contains this substring")
		outDir     = flag.String("out", "results", "output directory for CSV files")
		duration   = flag.Duration("duration", 60*time.Second, "virtual duration of each run (paper: 60s)")
		iterations = flag.Int("iterations", 3, "iterations pooled for response-time experiments")
		fig10Iters = flag.Int("fig10-iters", 50, "iterations for the MF3 distribution experiment (paper: 50)")
		parallel   = flag.Int("parallel", 0, "grid scheduler workers (0 = GOMAXPROCS, 1 = serial)")
		quick      = flag.Bool("quick", false, "fast smoke mode: short runs, few iterations")
	)
	flag.Parse()

	c := &ctx{
		out:        *outDir,
		duration:   *duration,
		iterations: *iterations,
		fig10Iters: *fig10Iters,
		workers:    core.Workers(*parallel),
		cache:      core.NewRunCache(),
	}
	if *quick {
		c.duration = 20 * time.Second
		c.iterations = 1
		c.fig10Iters = 6
	}

	exps := experiments()

	// Gather the full benchmark grid of the selected experiments and drain
	// it through one parallel scheduler; the experiment bodies then only
	// format results out of the warm cache.
	var grid []core.RunSpec
	for _, e := range exps {
		if *runPat != "" && !strings.Contains(e.id, *runPat) {
			continue
		}
		if e.grid != nil {
			grid = append(grid, e.grid(c)...)
		}
	}
	if len(grid) > 0 {
		start := time.Now()
		fmt.Printf("prewarming %d grid runs on %d workers...\n", len(grid), c.workers)
		c.cache.GetAll(grid, c.workers)
		_, misses := c.cache.Stats()
		fmt.Printf("grid done: %d distinct runs in %v\n\n", misses, time.Since(start).Round(time.Millisecond))
	}

	ran := 0
	var summary strings.Builder
	for _, e := range exps {
		if *runPat != "" && !strings.Contains(e.id, *runPat) {
			continue
		}
		ran++
		start := time.Now()
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		text, err := e.run(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(text)
		fmt.Printf("-- %s done in %v --\n\n", e.id, time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(&summary, "== %s: %s ==\n%s\n", e.id, e.title, text)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; available:\n", *runPat)
		for _, e := range exps {
			fmt.Fprintf(os.Stderr, "  %-6s %s\n", e.id, e.title)
		}
		os.Exit(2)
	}
	if err := os.MkdirAll(c.out, 0o755); err == nil {
		os.WriteFile(filepath.Join(c.out, "summary.txt"), []byte(summary.String()), 0o644)
	}
}

// experiment is one reproducible paper artifact. grid (optional) declares
// the benchmark runs the artifact consumes, so main can schedule the whole
// selection in parallel before the formatting bodies run.
type experiment struct {
	id    string
	title string
	run   func(*ctx) (string, error)
	grid  func(*ctx) []core.RunSpec
}

func experiments() []experiment {
	return []experiment{
		{"fig1", "Minecraft response time in the AWS cloud", fig1, fig1Grid},
		{"fig6", "Numerical analysis of the Instability Ratio", fig6, nil},
		{"fig7", "Game response time under environment-based workloads (MF1)", fig7, fig7Grid},
		{"fig8", "ISR per MLG, workload and environment (MF2)", fig8, fig8Grid},
		{"fig9", "Tick time over time on AWS (MF2)", fig9, fig9Grid},
		{"fig10", "Tick time and ISR across 50 iterations of Players (MF3)", fig10, fig10Grid},
		{"fig11", "Tick-time distribution by operation (MF4)", fig11, fig11Grid},
		{"fig12", "Tick time and ISR vs AWS node size under TNT (MF5)", fig12, fig12Grid},
		{"tab2", "Workload worlds and their sizes", tab2, nil},
		{"tab3", "Farm-world simulated constructs", tab3, nil},
		{"tab6", "ISR vs existing variability metrics", tab6, nil},
		{"tab7", "Hardware recommendations of MLG hosting companies", tab7, nil},
		{"tab8", "Entity-related share of network traffic (MF4)", tab8, tab8Grid},
	}
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
